package mdes_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mdes"
)

// TestEngineFlightRecorder wires a flight recorder through the public
// API and checks the full loop: schedule, merge-on-release, snapshot
// meta, quantiles, and the HTTP surface.
func TestEngineFlightRecorder(t *testing.T) {
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	rec := mdes.NewFlightRecorder(mdes.FlightConfig{})
	eng, err := mdes.NewEngine(compiled,
		mdes.WithChecker(mdes.CheckerProbePlan),
		mdes.WithFlight(rec))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Flight() != rec {
		t.Fatal("Engine.Flight() did not return the attached recorder")
	}
	blocks := testBlocks(t, mdes.K5, 2000)
	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4); err != nil {
		t.Fatal(err)
	}

	snap := rec.Snapshot()
	if snap.Blocks != int64(len(blocks)) {
		t.Fatalf("recorder merged %d blocks, scheduled %d", snap.Blocks, len(blocks))
	}
	if snap.Machine != "K5" || len(snap.MachineHash) != 16 {
		t.Errorf("snapshot meta = %q / %q", snap.Machine, snap.MachineHash)
	}
	if snap.Checker == "" {
		t.Error("snapshot has no checker name")
	}
	foundList := false
	for _, q := range snap.Quantiles {
		if q.Count == 0 {
			continue
		}
		foundList = true
		if q.P50 <= 0 || q.P999 < q.P50 {
			t.Errorf("phase %s quantiles: p50 %d, p999 %d", q.Phase, q.P50, q.P999)
		}
	}
	if !foundList {
		t.Error("no phase recorded any latency samples")
	}

	srv, err := mdes.ServeMetrics("127.0.0.1:0", mdes.NewMetrics(compiled), mdes.WithFlightExporter(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	var health struct {
		Status string `json:"status"`
		Blocks int64  `json:"blocks"`
	}
	if err := json.Unmarshal([]byte(get("/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Blocks != int64(len(blocks)) {
		t.Errorf("/healthz = %+v", health)
	}
	var dump struct {
		MachineHash string `json:"machine_hash"`
	}
	if err := json.Unmarshal([]byte(get("/debug/flight")), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.MachineHash != snap.MachineHash {
		t.Errorf("/debug/flight hash %q, snapshot %q", dump.MachineHash, snap.MachineHash)
	}
	if out := get("/metrics"); !strings.Contains(out, "mdes_flight_blocks_total") {
		t.Errorf("/metrics missing flight series:\n%s", out)
	}
}

// TestFlightRecorderOverheadGate is the CI cost gate for the tentpole's
// "always-on" claim: with the flight recorder attached, block scheduling
// must cost < 2% wall-clock over a bare engine. Same methodology as
// TestEnabledMetricsOverheadGate: noise is one-sided, so compare minima
// over alternating rounds.
func TestFlightRecorderOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock gate; skipped in -short")
	}
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	blocks := testBlocks(t, mdes.K5, 20000)

	off, err := mdes.NewEngine(compiled, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatal(err)
	}
	on, err := mdes.NewEngine(compiled,
		mdes.WithChecker(mdes.CheckerProbePlan),
		mdes.WithFlight(mdes.NewFlightRecorder(mdes.FlightConfig{})))
	if err != nil {
		t.Fatal(err)
	}

	run := func(eng *mdes.Engine) time.Duration {
		t0 := time.Now()
		if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 1); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	run(off)
	run(on)

	// Noise is one-sided — preemption and cache pollution only ever
	// inflate a reading — so a measurement attempt that lands under the
	// bound proves the true cost is under it, while a noisy attempt can
	// only overstate. Take the min over alternating rounds and allow a
	// few attempts before declaring the budget blown.
	const (
		rounds   = 15
		attempts = 3
		bound    = 0.02
	)
	var overhead float64
	var minOff, minOn time.Duration
	for a := 0; a < attempts; a++ {
		minOff, minOn = time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			if d := run(off); d < minOff {
				minOff = d
			}
			if d := run(on); d < minOn {
				minOn = d
			}
		}
		overhead = float64(minOn)/float64(minOff) - 1
		t.Logf("attempt %d: flight off %v, on %v, overhead %.2f%%", a, minOff, minOn, overhead*100)
		if overhead < bound {
			return
		}
	}
	t.Fatalf("always-on flight recording cost %.2f%% (off %v, on %v, %d rounds x %d attempts); the bound is <2%%",
		overhead*100, minOff, minOn, rounds, attempts)
}
