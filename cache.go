package mdes

// The compiled-description cache: the flat arena format (lowlevel MDAR v4)
// behind a content-addressed on-disk store (internal/descache), so a cold
// process reaches a frozen Engine without re-running the HMDES parse →
// compile → optimize pipeline. A cache hit is checksum-verified, mapped
// (where the platform allows), and materialized zero-copy: the bulk
// payload — usages, cycle masks, probe-plan words, strings — aliases the
// mapped buffer, and the persisted probe plan makes CheckerProbePlan skip
// plan compilation too.

import (
	"fmt"

	"mdes/internal/descache"
	"mdes/internal/lowlevel"
	"mdes/internal/opt"
)

// Arena is a validated flat-arena description buffer (the MDAR v4 format):
// one contiguous checksummed []byte holding every description section as
// offset-indexed records, materializable as a deep copy (Arena.MDES) or as
// a zero-copy frozen view (Arena.FrozenMDES).
type Arena = lowlevel.Arena

// EncodeArena serializes a compiled description into the flat arena
// format, probe plan included. The round trip through OpenArena +
// Arena.MDES is lossless (identical v3 encoding and Fingerprint).
func EncodeArena(c *Compiled) ([]byte, error) { return c.EncodeArena() }

// OpenArena validates an arena buffer — header, FNV-64a checksum, one
// structural pass — and returns the typed view. After OpenArena succeeds,
// materializing costs no further validation.
func OpenArena(buf []byte) (*Arena, error) { return lowlevel.OpenArena(buf) }

// CacheOption configures LoadCached / EngineFromCache.
type CacheOption func(*cacheConfig)

type cacheConfig struct {
	tuned    bool
	maxBytes int64
	dir      Direction
}

// WithTuned makes LoadCached prefer a tuned layout (persisted by
// `mdreport -tune` under the description's fingerprint × profile address)
// when the cache holds one for the key. Tuned layouts schedule
// byte-identically to the untuned description — only probe order and
// therefore probe work differ — so opting in is safe whenever any profile
// has been accepted for this description.
func WithTuned() CacheOption {
	return func(c *cacheConfig) { c.tuned = true }
}

// WithCacheLimit bounds the cache directory to maxBytes; writes beyond the
// budget evict least-recently-used entries (descache GC). <= 0 (the
// default) means unbounded.
func WithCacheLimit(maxBytes int64) CacheOption {
	return func(c *cacheConfig) { c.maxBytes = maxBytes }
}

// WithCacheDirection compiles (and keys) the description for the given
// scheduling direction; the non-default direction becomes part of the
// cache key's flags so forward and backward artifacts never collide.
func WithCacheDirection(dir Direction) CacheOption {
	return func(c *cacheConfig) { c.dir = dir }
}

// cacheFormName renders a Form as its canonical key component.
func cacheFormName(form Form) string {
	if form == FormOR {
		return "or"
	}
	return "andor"
}

// cacheKeyFor derives the content address of one compiled description:
// HMDES source hash × form × level × checker-relevant flags.
func cacheKeyFor(source string, form Form, level Level, cfg cacheConfig) descache.Key {
	k := descache.Key{
		SourceHash: descache.HashSource(source),
		Form:       cacheFormName(form),
		Level:      level.String(),
	}
	if cfg.dir == Backward {
		k.Flags = "backward"
	}
	return k
}

// LoadCached returns the compiled, optimized description for an HMDES
// source, consulting (and populating) the content-addressed cache in
// cacheDir. On a hit the returned description is a frozen zero-copy view
// of the verified arena entry — no parse, compile, optimize, or Validate
// runs, and CheckerProbePlan engines adopt the persisted probe plan
// without recompiling it. On a miss (or a corrupt entry, which is
// re-verified and never trusted) the full pipeline runs and the result is
// stored atomically for the next cold start.
//
// The description a hit returns is backed by the cache entry's mapping for
// its whole lifetime; cache-backed descriptions are process-lifetime
// objects by design (the fleet cold-start path), not transient ones.
//
// file is used in error positions only, exactly as in Load.
func LoadCached(file, source string, form Form, level Level, cacheDir string, opts ...CacheOption) (*Compiled, error) {
	var cfg cacheConfig
	for _, o := range opts {
		o(&cfg)
	}
	store, err := descache.Open(cacheDir, cfg.maxBytes)
	if err != nil {
		return nil, err
	}
	key := cacheKeyFor(source, form, level, cfg)

	// A missing or corrupt tuned slot falls through to the untuned entry,
	// which in turn falls through to a full recompile: every failure mode
	// degrades to a slower load, never to an error or a stale description.
	if cfg.tuned {
		if e, _, _, err := store.GetTuned(key); err == nil {
			return e.Arena.FrozenMDES(), nil
		}
	}
	if e, err := store.Get(key); err == nil {
		return e.Arena.FrozenMDES(), nil
	}

	// Miss (or unreadable entry): run the pipeline and repopulate.
	machine, err := Load(file, source)
	if err != nil {
		return nil, err
	}
	c := Compile(machine, form)
	opt.Apply(c, level, cfg.dir)
	arena, err := c.EncodeArena()
	if err != nil {
		return nil, fmt.Errorf("mdes: cache: %w", err)
	}
	// A failed store (read-only cache directory, disk full) degrades to
	// uncached operation rather than failing the load.
	_, _ = store.Put(key, arena)
	return c, nil
}

// EngineFromCache builds an Engine from the cache: LoadCached followed by
// NewEngine. On a warm cache this reaches a serving engine in microseconds
// — the description is already validated (checksum + structural pass at
// open), already frozen, and for CheckerProbePlan carries its probe plan
// precompiled.
func EngineFromCache(file, source string, form Form, level Level, cacheDir string, cacheOpts []CacheOption, engineOpts ...EngineOption) (*Engine, error) {
	c, err := LoadCached(file, source, form, level, cacheDir, cacheOpts...)
	if err != nil {
		return nil, err
	}
	return NewEngine(c, engineOpts...)
}
