package mdes_test

import (
	"context"
	"fmt"
	"testing"

	"mdes"
)

func newCheckerEngine(t testing.TB, name mdes.BuiltinName, kind mdes.CheckerKind) *mdes.Engine {
	t.Helper()
	machine, err := mdes.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	eng, err := mdes.NewEngine(compiled, mdes.WithChecker(kind))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Every checker backend is a drop-in replacement for the default RU map:
// the greedy list scheduler must produce byte-identical schedules (same
// per-op issue cycles, same lengths) and identical attempt/conflict
// counters on every built-in machine, whichever backend performs the
// conflict probes. ResourceChecks legitimately differ — that counter
// measures backend work, which is the point of the ablation.
func TestCheckerBackendsEquivalent(t *testing.T) {
	for _, name := range []mdes.BuiltinName{mdes.PA7100, mdes.Pentium, mdes.SuperSPARC, mdes.K5} {
		blocks := testBlocks(t, name, 2000)

		ref := newCheckerEngine(t, name, mdes.CheckerRUMap)
		want, wantTotal, err := ref.ScheduleBlocks(context.Background(), blocks, 1)
		if err != nil {
			t.Fatal(err)
		}

		for _, kind := range mdes.CheckerKinds() {
			if kind == mdes.CheckerRUMap {
				continue
			}
			eng := newCheckerEngine(t, name, kind)
			if eng.CheckerKind() != kind {
				t.Fatalf("%s: engine reports kind %s, want %s", name, eng.CheckerKind(), kind)
			}
			got, total, err := eng.ScheduleBlocks(context.Background(), blocks, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			if total.Attempts != wantTotal.Attempts || total.Conflicts != wantTotal.Conflicts {
				t.Fatalf("%s/%s: attempts=%d conflicts=%d, rumap attempts=%d conflicts=%d",
					name, kind, total.Attempts, total.Conflicts,
					wantTotal.Attempts, wantTotal.Conflicts)
			}
			for bi, r := range got {
				if r.Length != want[bi].Length {
					t.Fatalf("%s/%s block %d: length %d, rumap %d",
						name, kind, bi, r.Length, want[bi].Length)
				}
				for oi, c := range r.Issue {
					if c != want[bi].Issue[oi] {
						t.Fatalf("%s/%s block %d op %d: cycle %d, rumap %d",
							name, kind, bi, oi, c, want[bi].Issue[oi])
					}
				}
			}
		}
	}
}

// The checkers must also be equivalent under concurrent scheduling: the
// automaton backend shares one memoized transition table across pooled
// contexts, the probe-plan backend shares one compiled plan with
// per-context probers and arenas, and racing builders must not perturb
// results. Every backend, on every built-in machine, must produce
// byte-identical schedules under a parallel fan-out.
func TestCheckerBackendsEquivalentParallel(t *testing.T) {
	for _, name := range []mdes.BuiltinName{mdes.PA7100, mdes.Pentium, mdes.SuperSPARC, mdes.K5} {
		blocks := testBlocks(t, name, 2000)

		ref := newCheckerEngine(t, name, mdes.CheckerRUMap)
		want, _, err := ref.ScheduleBlocks(context.Background(), blocks, 1)
		if err != nil {
			t.Fatal(err)
		}

		for _, kind := range mdes.CheckerKinds() {
			eng := newCheckerEngine(t, name, kind)
			got, _, err := eng.ScheduleBlocks(context.Background(), blocks, 8)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			for bi, r := range got {
				if r.Length != want[bi].Length {
					t.Fatalf("%s/%s block %d: length %d, rumap serial %d",
						name, kind, bi, r.Length, want[bi].Length)
				}
				for oi, c := range r.Issue {
					if c != want[bi].Issue[oi] {
						t.Fatalf("%s/%s block %d op %d: cycle %d, rumap serial %d",
							name, kind, bi, oi, c, want[bi].Issue[oi])
					}
				}
			}
		}
	}
}

// BenchmarkChecker is the backend ablation: the same workload scheduled
// through each conflict-checker backend. The rumap case must stay within
// noise of the pre-refactor scheduler (the interface is devirtualized for
// the default backend); the automaton case trades table-build time for
// memoized O(1) probes.
func BenchmarkChecker(b *testing.B) {
	for _, name := range []mdes.BuiltinName{mdes.SuperSPARC, mdes.K5} {
		blocks := testBlocks(b, name, 2000)
		for _, kind := range mdes.CheckerKinds() {
			eng := newCheckerEngine(b, name, kind)
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				var total mdes.Counters
				for i := 0; i < b.N; i++ {
					var err error
					_, total, err = eng.ScheduleBlocks(context.Background(), blocks, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(total.ResourceChecks)/float64(total.Attempts), "checks/attempt")
			})
		}
	}
}
