package mdes_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes"
)

func builtinSource(t testing.TB, name mdes.BuiltinName) string {
	t.Helper()
	src, err := mdes.BuiltinSource(name)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func freshCompiled(t testing.TB, name mdes.BuiltinName, form mdes.Form, level mdes.Level) *mdes.Compiled {
	t.Helper()
	machine, err := mdes.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	c := mdes.Compile(machine, form)
	mdes.Optimize(c, level)
	return c
}

// TestArenaEngineEquivalence is the acceptance gate for the cache path:
// an engine built from an arena round trip must produce byte-identical
// schedules (per-op issue cycles, lengths) and identical stats counters
// vs a freshly compiled description, across every checker backend and
// every built-in machine.
func TestArenaEngineEquivalence(t *testing.T) {
	for _, name := range []mdes.BuiltinName{mdes.PA7100, mdes.Pentium, mdes.SuperSPARC, mdes.K5} {
		blocks := testBlocks(t, name, 2000)
		for _, kind := range mdes.CheckerKinds() {
			fresh := freshCompiled(t, name, mdes.FormAndOr, mdes.LevelFull)
			refEng, err := mdes.NewEngine(fresh, mdes.WithChecker(kind))
			if err != nil {
				t.Fatal(err)
			}
			want, wantTotal, err := refEng.ScheduleBlocks(context.Background(), blocks, 1)
			if err != nil {
				t.Fatal(err)
			}

			arena, err := mdes.EncodeArena(freshCompiled(t, name, mdes.FormAndOr, mdes.LevelFull))
			if err != nil {
				t.Fatal(err)
			}
			a, err := mdes.OpenArena(arena)
			if err != nil {
				t.Fatal(err)
			}
			cached := a.FrozenMDES()
			if kind == mdes.CheckerProbePlan && cached.ArenaPlan() == nil {
				t.Fatalf("%s: arena view lost its probe plan", name)
			}
			eng, err := mdes.NewEngine(cached, mdes.WithChecker(kind))
			if err != nil {
				t.Fatal(err)
			}
			got, total, err := eng.ScheduleBlocks(context.Background(), blocks, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			if total != wantTotal {
				t.Fatalf("%s/%s: counters %+v, fresh %+v", name, kind, total, wantTotal)
			}
			for bi, r := range got {
				if r.Length != want[bi].Length {
					t.Fatalf("%s/%s block %d: length %d, fresh %d", name, kind, bi, r.Length, want[bi].Length)
				}
				for oi, c := range r.Issue {
					if c != want[bi].Issue[oi] {
						t.Fatalf("%s/%s block %d op %d: cycle %d, fresh %d", name, kind, bi, oi, c, want[bi].Issue[oi])
					}
				}
			}
		}
	}
}

// LoadCached: a cold call populates the store, a warm call returns a
// frozen view of the same description; both schedule identically.
func TestLoadCachedWarmMatchesCold(t *testing.T) {
	dir := t.TempDir()
	src := builtinSource(t, mdes.K5)

	cold, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Frozen() {
		t.Fatal("cold-path description should be mutable (it ran the pipeline)")
	}
	warm, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Frozen() {
		t.Fatal("warm-path description should be a frozen arena view")
	}
	coldFP, err := cold.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	warmFP, err := warm.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if coldFP != warmFP {
		t.Fatalf("fingerprint drift across the cache: %s vs %s", coldFP, warmFP)
	}

	blocks := testBlocks(t, mdes.K5, 1500)
	ce, err := mdes.NewEngine(cold, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatal(err)
	}
	we, err := mdes.NewEngine(warm, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatal(err)
	}
	want, wantTotal, err := ce.ScheduleBlocks(context.Background(), blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, total, err := we.ScheduleBlocks(context.Background(), blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Fatalf("counters %+v vs %+v", total, wantTotal)
	}
	for bi := range got {
		if got[bi].Length != want[bi].Length {
			t.Fatalf("block %d length %d vs %d", bi, got[bi].Length, want[bi].Length)
		}
	}
}

// Distinct forms, levels, and directions must occupy distinct cache
// entries.
func TestLoadCachedKeySeparation(t *testing.T) {
	dir := t.TempDir()
	src := builtinSource(t, mdes.Pentium)
	variants := []struct {
		form  mdes.Form
		level mdes.Level
		opts  []mdes.CacheOption
	}{
		{mdes.FormAndOr, mdes.LevelFull, nil},
		{mdes.FormOR, mdes.LevelFull, nil},
		{mdes.FormAndOr, mdes.LevelNone, nil},
		{mdes.FormAndOr, mdes.LevelFull, []mdes.CacheOption{mdes.WithCacheDirection(mdes.Backward)}},
	}
	for _, v := range variants {
		if _, err := mdes.LoadCached("pentium.mdes", src, v.form, v.level, dir, v.opts...); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(variants) {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("%d cache entries for %d variants: %v", len(ents), len(variants), names)
	}
}

// A corrupt cache entry must be rejected and transparently recompiled.
func TestLoadCachedCorruptEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	src := builtinSource(t, mdes.SuperSPARC)
	if _, err := mdes.LoadCached("ss.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir); err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*.mdar"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("glob: %v %v", ents, err)
	}
	data, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(ents[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := mdes.LoadCached("ss.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir)
	if err != nil {
		t.Fatalf("corrupt entry not recovered: %v", err)
	}
	want := freshCompiled(t, mdes.SuperSPARC, mdes.FormAndOr, mdes.LevelFull)
	var a, b bytes.Buffer
	if err := c.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := want.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("recovered description differs from a fresh compile")
	}
}

// EngineFromCache on a warm store must reach a serving engine whose
// results match a pipeline-built engine.
func TestEngineFromCache(t *testing.T) {
	dir := t.TempDir()
	src := builtinSource(t, mdes.K5)
	// Warm the store.
	if _, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir); err != nil {
		t.Fatal(err)
	}
	eng, err := mdes.EngineFromCache("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir, nil,
		mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Compiled().Frozen() {
		t.Fatal("cache-built engine serves an unfrozen description")
	}
	blocks := testBlocks(t, mdes.K5, 1000)
	ref := newCheckerEngine(t, mdes.K5, mdes.CheckerProbePlan)
	want, wantTotal, err := ref.ScheduleBlocks(context.Background(), blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, total, err := eng.ScheduleBlocks(context.Background(), blocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Fatalf("counters %+v vs %+v", total, wantTotal)
	}
	for bi := range got {
		if got[bi].Length != want[bi].Length {
			t.Fatalf("block %d: length %d vs %d", bi, got[bi].Length, want[bi].Length)
		}
	}
}

// WithTuned prefers a tuned slot when one exists and falls back to the
// base entry otherwise. The "tuned" layout here is the description itself
// re-stored under a tuned name — the preference mechanics are what's under
// test; mdtune's equivalence gates own layout correctness.
func TestLoadCachedWithTuned(t *testing.T) {
	dir := t.TempDir()
	src := builtinSource(t, mdes.K5)
	base, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir)
	if err != nil {
		t.Fatal(err)
	}
	// No tuned slot yet: WithTuned silently serves the base entry.
	c, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir, mdes.WithTuned())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Frozen() {
		t.Fatal("expected a warm hit")
	}

	// Store a tuned slot by renaming a copy of the base entry.
	ents, err := filepath.Glob(filepath.Join(dir, "*.mdar"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("glob: %v %v", ents, err)
	}
	data, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	tunedPath := strings.TrimSuffix(ents[0], ".mdar") + ".tuned-" + fp + "-0123456789abcdef.mdar"
	if err := os.WriteFile(tunedPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir, mdes.WithTuned())
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := got.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Fatalf("tuned hit fingerprint %s, want %s", gotFP, fp)
	}
	// Without WithTuned the base entry still serves.
	if _, err := mdes.LoadCached("k5.mdes", src, mdes.FormAndOr, mdes.LevelFull, dir); err != nil {
		t.Fatal(err)
	}
}
