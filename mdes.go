// Package mdes is a machine-description (MDES) facility for
// instruction-level-parallelism compilers, reproducing Gyllenhaal, Hwu &
// Rau, "Optimization of Machine Descriptions for Efficient Use" (MICRO-29,
// 1996).
//
// The package implements the paper's two-tier model:
//
//   - a high-level MDES language in which compiler writers describe a
//     processor's execution constraints readably and maintainably
//     (resources, shared OR-trees, AND/OR-tree operation classes,
//     latencies);
//   - a compiler from that language to a low-level representation tuned
//     for the scheduler's inner loop, via the paper's transformations:
//     redundancy elimination (CSE/copy-propagation/dead-code removal),
//     dominated-option pruning, bit-vector packing, per-resource
//     usage-time shifting, time-zero-first check ordering, AND/OR-tree
//     conflict-detection ordering, and common-usage hoisting;
//   - an instrumented multi-platform list scheduler driven by the
//     compiled description.
//
// Four detailed machine descriptions ship with the package — HP PA7100,
// Intel Pentium, Sun SuperSPARC, and AMD-K5 — with reservation-table
// option counts matching the paper's Tables 1-4.
//
// # Quick start
//
//	machine, err := mdes.Builtin(mdes.SuperSPARC)
//	if err != nil { ... }
//	compiled := mdes.Compile(machine, mdes.FormAndOr)
//	mdes.Optimize(compiled, mdes.LevelFull)
//	s := mdes.NewScheduler(compiled)
//	result, err := s.ScheduleBlock(block)
//
// Custom machines are authored in the MDES language and loaded with Load:
//
//	machine, err := mdes.Load("mymachine.mdes", source)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and the experiment index reproducing the paper's tables
// and figures.
package mdes

import (
	"io"

	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/query"
	"mdes/internal/restable"
	"mdes/internal/sched"
	"mdes/internal/stats"
)

// Machine is an analyzed high-level machine description.
type Machine = hmdes.Machine

// MachineOperation is a machine operation's scheduling attributes.
type MachineOperation = hmdes.Operation

// Compiled is the low-level compiled machine description used by the
// scheduler.
type Compiled = lowlevel.MDES

// Form selects the constraint representation of a compiled description.
type Form = lowlevel.Form

// Representation forms.
const (
	// FormOR is the traditional representation: a flat, prioritized list
	// of fully-enumerated reservation-table options per operation class.
	FormOR = lowlevel.FormOR
	// FormAndOr is the paper's AND/OR-tree representation.
	FormAndOr = lowlevel.FormAndOr
)

// Level selects how much of the optimization pipeline to run.
type Level = opt.Level

// Optimization levels (cumulative, in the paper's section order).
const (
	LevelNone       = opt.LevelNone
	LevelRedundancy = opt.LevelRedundancy
	LevelBitVector  = opt.LevelBitVector
	LevelTimeShift  = opt.LevelTimeShift
	LevelFull       = opt.LevelFull
)

// Direction configures the usage-time shift for forward or backward list
// scheduling.
type Direction = opt.Direction

// Shift directions.
const (
	Forward  = opt.Forward
	Backward = opt.Backward
)

// Report summarizes one optimization pass's effect.
type Report = opt.Report

// Scheduler is the MDES-driven list scheduler.
type Scheduler = sched.Scheduler

// Result is one block's scheduling outcome.
type Result = sched.Result

// Block, IROperation and Graph are the scheduler's input IR.
type (
	Block       = ir.Block
	IROperation = ir.Operation
	Graph       = ir.Graph
	MemKind     = ir.MemKind
)

// Memory behaviour of an IR operation.
const (
	MemNone  = ir.MemNone
	MemLoad  = ir.MemLoad
	MemStore = ir.MemStore
)

// Counters are the paper's instrumentation: scheduling attempts, options
// checked, resource checks.
type Counters = stats.Counters

// Histogram collects per-attempt distributions (Figure 2).
type Histogram = stats.Histogram

// SizeStats is the byte-accounting breakdown of a compiled description.
type SizeStats = lowlevel.SizeStats

// Built-in machine names.
const (
	PA7100     = machines.PA7100
	Pentium    = machines.Pentium
	SuperSPARC = machines.SuperSPARC
	K5         = machines.K5
)

// BuiltinName identifies a built-in machine description.
type BuiltinName = machines.Name

// Builtins lists the built-in machine descriptions.
func Builtins() []BuiltinName {
	return append([]BuiltinName(nil), machines.All...)
}

// Builtin loads one of the built-in machine descriptions.
func Builtin(name BuiltinName) (*Machine, error) {
	return machines.Load(name)
}

// BuiltinSource returns the high-level MDES source text of a built-in
// machine, a starting point for authoring new descriptions.
func BuiltinSource(name BuiltinName) (string, error) {
	return machines.Source(name)
}

// Load parses and analyzes a machine description written in the high-level
// MDES language. The file name is used in error positions only.
func Load(file, source string) (*Machine, error) {
	return hmdes.Load(file, source)
}

// Compile lowers an analyzed machine into the requested low-level form,
// unoptimized. Run Optimize to apply the paper's transformations.
func Compile(m *Machine, form Form) *Compiled {
	return lowlevel.Compile(m, form)
}

// Optimize runs the transformation pipeline up to level, tuned for a
// forward scheduler, and returns one report per executed pass.
func Optimize(c *Compiled, level Level) []Report {
	return opt.Apply(c, level, opt.Forward)
}

// OptimizeFor is Optimize with an explicit scheduling direction for the
// usage-time shift (§7).
func OptimizeFor(c *Compiled, level Level, dir Direction) []Report {
	return opt.Apply(c, level, dir)
}

// DecodeCompiled reads a compiled description serialized with
// Compiled.Encode — the fast-load path a compiler uses at startup (the
// paper's low-level representation is designed to load without re-running
// any sharing analysis).
func DecodeCompiled(r io.Reader) (*Compiled, error) {
	return lowlevel.Decode(r)
}

// NewScheduler returns a list scheduler driven by the compiled description.
func NewScheduler(c *Compiled) *Scheduler {
	return sched.New(c)
}

// NewHistogram returns an empty histogram for Scheduler.OptionsHist.
func NewHistogram() *Histogram {
	return stats.NewHistogram()
}

// Query is the execution-constraint query interface for compiler modules
// other than the scheduler (if-conversion, height reduction, resource
// pressure heuristics — the use cases the paper's introduction motivates).
type Query = query.Q

// NewQuery returns a query interface over the compiled description.
func NewQuery(c *Compiled) *Query {
	return query.New(c)
}

// RenderClass renders a class's AND/OR-tree (and optionally its expanded
// OR-tree) as ASCII reservation tables, the format of the paper's figures.
func RenderClass(m *Machine, class string, expanded bool) (string, bool) {
	tree, ok := m.Classes[class]
	if !ok {
		return "", false
	}
	if expanded {
		return restable.RenderORTree(m.Resources, tree.Expand()), true
	}
	return restable.RenderAndOrTree(m.Resources, tree), true
}
