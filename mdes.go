// Package mdes is a machine-description (MDES) facility for
// instruction-level-parallelism compilers, reproducing Gyllenhaal, Hwu &
// Rau, "Optimization of Machine Descriptions for Efficient Use" (MICRO-29,
// 1996).
//
// The package implements the paper's two-tier model:
//
//   - a high-level MDES language in which compiler writers describe a
//     processor's execution constraints readably and maintainably
//     (resources, shared OR-trees, AND/OR-tree operation classes,
//     latencies);
//   - a compiler from that language to a low-level representation tuned
//     for the scheduler's inner loop, via the paper's transformations:
//     redundancy elimination (CSE/copy-propagation/dead-code removal),
//     dominated-option pruning, bit-vector packing, per-resource
//     usage-time shifting, time-zero-first check ordering, AND/OR-tree
//     conflict-detection ordering, and common-usage hoisting;
//   - an instrumented multi-platform list scheduler driven by the
//     compiled description.
//
// Four detailed machine descriptions ship with the package — HP PA7100,
// Intel Pentium, Sun SuperSPARC, and AMD-K5 — with reservation-table
// option counts matching the paper's Tables 1-4.
//
// # Quick start
//
//	machine, err := mdes.Builtin(mdes.SuperSPARC)
//	if err != nil { ... }
//	compiled := mdes.Compile(machine, mdes.FormAndOr)
//	mdes.Optimize(compiled, mdes.LevelFull)
//	s := mdes.NewScheduler(compiled)
//	result, err := s.ScheduleBlock(block)
//
// For concurrent serving — one compiled description, many goroutines —
// wrap the optimized description in an Engine, which freezes it
// (immutable, race-free to share) and pools per-goroutine contexts:
//
//	engine, err := mdes.NewEngine(compiled)
//	results, total, err := engine.ScheduleBlocks(ctx, blocks, 8)
//
// Custom machines are authored in the MDES language and loaded with Load:
//
//	machine, err := mdes.Load("mymachine.mdes", source)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and the experiment index reproducing the paper's tables
// and figures.
package mdes

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"mdes/internal/check"
	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/obs"
	"mdes/internal/obs/flight"
	"mdes/internal/obs/profile"
	"mdes/internal/opt"
	"mdes/internal/query"
	"mdes/internal/resctx"
	"mdes/internal/restable"
	"mdes/internal/sched"
	"mdes/internal/stats"
)

// Machine is an analyzed high-level machine description.
type Machine = hmdes.Machine

// MachineOperation is a machine operation's scheduling attributes.
type MachineOperation = hmdes.Operation

// Compiled is the low-level compiled machine description used by the
// scheduler.
type Compiled = lowlevel.MDES

// Form selects the constraint representation of a compiled description.
type Form = lowlevel.Form

// Representation forms.
const (
	// FormOR is the traditional representation: a flat, prioritized list
	// of fully-enumerated reservation-table options per operation class.
	FormOR = lowlevel.FormOR
	// FormAndOr is the paper's AND/OR-tree representation.
	FormAndOr = lowlevel.FormAndOr
)

// Level selects how much of the optimization pipeline to run.
type Level = opt.Level

// Optimization levels (cumulative, in the paper's section order).
const (
	LevelNone       = opt.LevelNone
	LevelRedundancy = opt.LevelRedundancy
	LevelBitVector  = opt.LevelBitVector
	LevelTimeShift  = opt.LevelTimeShift
	LevelFull       = opt.LevelFull
)

// Direction configures the usage-time shift for forward or backward list
// scheduling.
type Direction = opt.Direction

// Shift directions.
const (
	Forward  = opt.Forward
	Backward = opt.Backward
)

// Report summarizes one optimization pass's effect.
type Report = opt.Report

// Ledger is the translator's pass ledger: per-pass wall time, before and
// after size metrics, and change attribution for one Optimize run.
type Ledger = obs.Ledger

// PassMetrics is one pass's ledger entry.
type PassMetrics = obs.PassMetrics

// SizeMetrics is the ledger's plain-data size measurement.
type SizeMetrics = obs.SizeMetrics

// Scheduler is the MDES-driven list scheduler.
type Scheduler = sched.Scheduler

// Result is one block's scheduling outcome.
type Result = sched.Result

// Block, IROperation and Graph are the scheduler's input IR.
type (
	Block       = ir.Block
	IROperation = ir.Operation
	Graph       = ir.Graph
	MemKind     = ir.MemKind
)

// Memory behaviour of an IR operation.
const (
	MemNone  = ir.MemNone
	MemLoad  = ir.MemLoad
	MemStore = ir.MemStore
)

// Counters are the paper's instrumentation: scheduling attempts, options
// checked, resource checks.
type Counters = stats.Counters

// Histogram collects per-attempt distributions (Figure 2).
type Histogram = stats.Histogram

// SizeStats is the byte-accounting breakdown of a compiled description.
type SizeStats = lowlevel.SizeStats

// Built-in machine names.
const (
	PA7100     = machines.PA7100
	Pentium    = machines.Pentium
	SuperSPARC = machines.SuperSPARC
	K5         = machines.K5
)

// BuiltinName identifies a built-in machine description.
type BuiltinName = machines.Name

// Builtins lists the built-in machine descriptions.
func Builtins() []BuiltinName {
	return append([]BuiltinName(nil), machines.All...)
}

// Builtin loads one of the built-in machine descriptions.
func Builtin(name BuiltinName) (*Machine, error) {
	return machines.Load(name)
}

// BuiltinSource returns the high-level MDES source text of a built-in
// machine, a starting point for authoring new descriptions.
func BuiltinSource(name BuiltinName) (string, error) {
	return machines.Source(name)
}

// Load parses and analyzes a machine description written in the high-level
// MDES language. The file name is used in error positions only.
func Load(file, source string) (*Machine, error) {
	return hmdes.Load(file, source)
}

// Compile lowers an analyzed machine into the requested low-level form,
// unoptimized. Run Optimize to apply the paper's transformations.
func Compile(m *Machine, form Form) *Compiled {
	return lowlevel.Compile(m, form)
}

// Optimize runs the transformation pipeline up to level, tuned for a
// forward scheduler, and returns one report per executed pass.
func Optimize(c *Compiled, level Level) []Report {
	return opt.Apply(c, level, opt.Forward)
}

// OptimizeFor is Optimize with an explicit scheduling direction for the
// usage-time shift (§7).
func OptimizeFor(c *Compiled, level Level, dir Direction) []Report {
	return opt.Apply(c, level, dir)
}

// OptimizeWithLedger is Optimize additionally returning the translator's
// pass ledger: per-pass wall time, before/after size metrics, and change
// attribution. Publish it into a Metrics registry with
// Metrics.SetTranslator to ship it through every exporter, or render it
// directly with FormatLedger.
func OptimizeWithLedger(c *Compiled, level Level, dir Direction) (*Ledger, []Report) {
	return opt.ApplyLedger(c, level, dir)
}

// FormatLedger renders a pass ledger as an aligned table.
func FormatLedger(l *Ledger) string {
	return obs.FormatLedger(l)
}

// DecodeCompiled reads a compiled description serialized with
// Compiled.Encode — the fast-load path a compiler uses at startup (the
// paper's low-level representation is designed to load without re-running
// any sharing analysis).
func DecodeCompiled(r io.Reader) (*Compiled, error) {
	return lowlevel.Decode(r)
}

// NewScheduler returns a list scheduler driven by the compiled description.
// The scheduler is single-goroutine; for concurrent scheduling over one
// shared description use NewEngine.
func NewScheduler(c *Compiled) *Scheduler {
	return sched.New(c)
}

// Metrics is a lock-free observability registry: per-phase attempt,
// conflict, and backtrack counters with log2 Check-latency histograms,
// per-opcode-class attempt/option/check counters, and conflicts by
// blocking resource. Attach one to an Engine with WithMetrics; read it
// with Metrics.Snapshot, FormatMetrics, or ServeMetrics.
type Metrics = obs.Registry

// MetricsSnapshot is a consistent point-in-time read of a Metrics
// registry.
type MetricsSnapshot = obs.Snapshot

// Tracer receives structured scheduling trace records; attach one to an
// Engine with WithTracer. Build one with NewJSONLTracer or NewRingTracer,
// or implement obs-level sinks directly.
type Tracer = obs.Tracer

// TraceRecord is one block's complete trace: every issue attempt with
// its candidate cycle and chosen option, conflict attributions naming
// the blocking resource, and the block's final length and counters.
type TraceRecord = obs.BlockRecord

// TraceRing is an in-memory flight recorder retaining the most recent
// trace records.
type TraceRing = obs.RingSink

// NewMetrics returns an observability registry sized for the compiled
// description's opcode classes and resources.
func NewMetrics(c *Compiled) *Metrics {
	return obs.NewRegistry(c.ConstraintNames(), c.ResourceNames)
}

// NewJSONLTracer returns a tracer writing one JSON line per scheduled
// block to w. sampleEvery keeps 1 in n blocks (<= 1 keeps every block).
// Records are written under a mutex, so lines from concurrent scheduling
// goroutines never interleave.
func NewJSONLTracer(w io.Writer, sampleEvery int) Tracer {
	return obs.New(obs.NewJSONLSink(w), obs.SampleEvery(sampleEvery))
}

// NewRingTracer returns a tracer retaining the last n block records in
// memory, plus the ring to inspect them with.
func NewRingTracer(n int, sampleEvery int) (Tracer, *TraceRing) {
	ring := obs.NewRingSink(n)
	return obs.New(ring, obs.SampleEvery(sampleEvery)), ring
}

// FormatMetrics renders a registry's current state as human-readable
// tables (per-phase counters, hottest opcode classes, conflicts by
// resource, Check-latency histograms).
func FormatMetrics(m *Metrics) string {
	return obs.FormatRegistry(m)
}

// FlightRecorder is the always-on flight recorder: a bounded record of
// recent per-block scheduling events (latency, attempts, conflicts,
// backtracks) with streaming tail-latency quantiles and anomaly
// triggers. Attach one to an Engine with WithFlight; read it with
// FlightRecorder.Snapshot or WriteDump, or serve it through
// ServeMetrics with WithFlightExporter.
type FlightRecorder = flight.Recorder

// FlightConfig parameterizes a FlightRecorder; the zero value is a
// sensible always-on configuration.
type FlightConfig = flight.Config

// FlightSnapshot is a point-in-time copy of a FlightRecorder.
type FlightSnapshot = flight.Snapshot

// FlightEntry is one block's flight record.
type FlightEntry = flight.Entry

// NewFlightRecorder returns a flight recorder (zero cfg for defaults).
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	return flight.NewRecorder(cfg)
}

// ConflictProfile is the mergeable conflict-attribution profile: observed
// probe, first-block, and conflict frequencies per constraint, per
// OR-tree position, and per option, plus conflicts by blocking resource.
// Attach one to an Engine with WithProfile; read it with Snapshot,
// FormatProfile, or serve it live with WithProfileExporter. A snapshot
// feeds ReorderFromProfile (and `mdreport -tune`), which re-sorts the
// description's conflict checks by the observed frequencies.
type ConflictProfile = profile.Profile

// ProfileSnapshot is a point-in-time copy of a ConflictProfile.
type ProfileSnapshot = profile.Snapshot

// NewConflictProfile returns an empty profile shaped like the compiled
// description. The description must be the one the engine schedules with
// (profile indices follow its constraint/tree/option order).
func NewConflictProfile(c *Compiled) *ConflictProfile {
	return profile.New(c)
}

// FormatProfile renders a profile snapshot as aligned tables: hottest
// constraints with per-tree first-block counts, and the top conflicting
// resources. topN bounds both tables (<= 0 for the default).
func FormatProfile(s ProfileSnapshot, topN int) string {
	return profile.FormatSnapshot(&s, topN)
}

// ReorderFromProfile re-sorts the description's conflict checks by a
// profile's observed frequencies: OR-trees within each constraint by
// first-block frequency, usage checks within each option by attributed
// resource conflicts. Schedule-preserving by construction; run it on a
// freshly compiled (unfrozen) description and verify with the tuning
// loop (`mdreport -tune`).
func ReorderFromProfile(c *Compiled, s *ProfileSnapshot) Report {
	return opt.ReorderFromProfile(c, s)
}

// ServerOption configures ServeMetrics endpoints.
type ServerOption = obs.ServerOption

// WithFlightExporter attaches a flight recorder to a ServeMetrics
// server: its tail-latency quantiles are appended to /metrics, its dump
// is served at /debug/flight, and /healthz reports its block and
// anomaly counts.
func WithFlightExporter(f *FlightRecorder) ServerOption {
	return obs.WithFlightExporter(f)
}

// WithProfileExporter attaches a conflict profile to a ServeMetrics
// server: its live snapshot is served as JSON at /debug/profile.
func WithProfileExporter(p *ConflictProfile) ServerOption {
	return obs.WithProfileExporter(p)
}

// ServeMetrics starts an HTTP server on addr exposing the registry at
// /metrics (Prometheus text format) and /metrics.json (expvar JSON),
// a /healthz liveness probe, plus the standard pprof profiles under
// /debug/pprof/. With WithFlightExporter the flight recorder is served
// at /debug/flight. Close the returned server to stop it gracefully.
func ServeMetrics(addr string, m *Metrics, opts ...ServerOption) (*obs.Server, error) {
	return obs.ServeMetrics(addr, m, opts...)
}

// CheckerKind selects the conflict-detection backend an Engine's sessions
// probe (see internal/check): the default packed RU map, the paper §10
// finite-state-automaton baseline, or the flat probe-plan compilation of
// the description. Backends differ in capability and speed, not in the
// schedules they produce — the automaton cannot release reservations,
// attribute conflicts to a blocking operation, or probe backward, so
// backward/operation-driven scheduling and modulo scheduling refuse it.
type CheckerKind = check.Kind

// Selectable checker backends.
const (
	// CheckerRUMap is the default backend: the paper's packed AND/OR-tree
	// reservation-table check against the per-cycle RU map.
	CheckerRUMap = check.KindRUMap
	// CheckerAutomaton is the §10 baseline: memoized transitions of a
	// lazily-built collision DFA shared across all of the engine's
	// contexts. Requires at most 64 resources and a description optimized
	// with non-negative usage times.
	CheckerAutomaton = check.KindAutomaton
	// CheckerProbePlan compiles the description's AND/OR-trees into flat
	// span arrays of packed probe words walked by slice iteration, adds
	// batch multi-cycle probing (check.BatchProber), and switches the
	// engine's schedulers onto their allocation-free flat paths. Probe
	// order and accounting are identical to CheckerRUMap, so schedules
	// and counters are byte-identical; only the cost per probe changes.
	CheckerProbePlan = check.KindProbePlan
)

// CheckerKinds returns every selectable backend, default first.
func CheckerKinds() []CheckerKind { return check.Kinds() }

// ParseCheckerKind resolves a backend name ("rumap", "automaton",
// "probeplan") — the values the tools accept for their -checker flag.
func ParseCheckerKind(s string) (CheckerKind, error) { return check.ParseKind(s) }

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithChecker selects the engine's conflict-detection backend. The
// default is CheckerRUMap; NewEngine fails if the compiled description is
// not eligible for the requested backend (e.g. the automaton's 64-resource
// and non-negative-usage-time limits).
func WithChecker(kind CheckerKind) EngineOption {
	return func(e *Engine) { e.checker = kind }
}

// WithMetrics attaches an observability registry: every context the
// engine borrows carries a local metrics buffer merged into m on
// release, and m's in-flight gauge tracks live sessions. The registry
// should be sized for the same compiled description (NewMetrics).
func WithMetrics(m *Metrics) EngineOption {
	return func(e *Engine) { e.metrics = m }
}

// WithTracer attaches a structured tracer: every scheduled block emits
// one TraceRecord (subject to the tracer's sampling).
func WithTracer(t Tracer) EngineOption {
	return func(e *Engine) { e.tracer = t }
}

// WithFlight attaches an always-on flight recorder: every context the
// engine borrows carries a local flight ring recording one compact
// entry per scheduled block, merged into rec on release. NewEngine
// stamps rec with the machine name, the compiled description's content
// fingerprint, and the checker backend.
func WithFlight(rec *FlightRecorder) EngineOption {
	return func(e *Engine) { e.flight = rec }
}

// WithProfile attaches a conflict-attribution profile: every context the
// engine borrows carries a local profile buffer (plain stores, no locks)
// merged into p on release. NewEngine stamps p with the machine name, the
// compiled description's content fingerprint, and the checker backend, so
// the persisted profile artifact names exactly which description produced
// its evidence. The profile should be shaped by the same compiled
// description (NewConflictProfile).
func WithProfile(p *ConflictProfile) EngineOption {
	return func(e *Engine) { e.profile = p }
}

// Engine serves one frozen compiled machine description to any number of
// concurrent clients — the session layer between the paper's
// compile-once artifact and a production service's many inner loops.
//
// NewEngine freezes the description (validate-once, then immutable and
// data-race-free to share); every scheduling or query session borrows a
// pooled per-goroutine context holding all mutable state (RU map,
// counters, scratch), so the steady state allocates no per-block
// scheduling structures and needs no locks on the hot path.
//
// Observability is opt-in per engine (WithMetrics, WithTracer) and costs
// nothing when absent: with neither option the scheduling hot path
// performs only nil checks.
type Engine struct {
	compiled *Compiled
	pool     *resctx.Pool
	checker  CheckerKind
	metrics  *obs.Registry
	tracer   obs.Tracer
	flight   *flight.Recorder
	profile  *profile.Profile
	blockSeq atomic.Int64
}

// NewEngine freezes the compiled description and returns an engine
// serving it. The description must be fully optimized before this call:
// Optimize panics on a frozen MDES.
func NewEngine(c *Compiled, opts ...EngineOption) (*Engine, error) {
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	e := &Engine{compiled: c}
	for _, o := range opts {
		o(e)
	}
	factory, err := check.NewFactory(c, e.checker)
	if err != nil {
		return nil, err
	}
	e.pool = resctx.NewPoolFor(factory)
	if e.metrics != nil {
		e.metrics.SetBackend(e.checker.String())
		e.pool.SetMetrics(e.metrics)
	}
	if e.flight != nil {
		fp, err := c.Fingerprint()
		if err != nil {
			return nil, err
		}
		e.flight.SetMeta(c.MachineName, fp, e.checker.String())
		e.pool.SetFlight(e.flight)
	}
	if e.profile != nil {
		fp, err := c.Fingerprint()
		if err != nil {
			return nil, err
		}
		e.profile.SetMeta(c.MachineName, fp, e.checker.String())
		e.pool.SetProfile(e.profile)
	}
	return e, nil
}

// CheckerKind returns the engine's conflict-detection backend.
func (e *Engine) CheckerKind() CheckerKind { return e.checker }

// Compiled returns the engine's frozen description.
func (e *Engine) Compiled() *Compiled { return e.compiled }

// Metrics returns the registry attached with WithMetrics, or nil.
func (e *Engine) Metrics() *Metrics { return e.pool.Metrics() }

// Flight returns the flight recorder attached with WithFlight, or nil.
func (e *Engine) Flight() *FlightRecorder { return e.flight }

// Profile returns the conflict profile attached with WithProfile, or nil.
func (e *Engine) Profile() *ConflictProfile { return e.profile }

// Totals returns the instrumentation counters aggregated across every
// completed session (scheduling call or closed query) so far.
func (e *Engine) Totals() Counters { return e.pool.Totals() }

// ScheduleBlock schedules one block on a borrowed context. Trace records
// from this entry point are numbered by a per-engine sequence.
func (e *Engine) ScheduleBlock(b *Block) (*Result, error) {
	cx := e.pool.Get()
	defer cx.Release()
	s := sched.NewWithContext(e.compiled, cx)
	if e.tracer != nil {
		s.Tracer = e.tracer
		s.BlockID = e.blockSeq.Add(1) - 1
	}
	return s.ScheduleBlock(b)
}

// ScheduleBlocks schedules every block, fanning the work out over a pool
// of parallelism goroutines, each driving the shared frozen description
// through its own borrowed context. Blocks are independent scheduling
// problems (each starts from an empty RU map), so results — issue cycles,
// schedule lengths, per-block counters — are identical to a serial run
// regardless of parallelism; only wall-clock time changes. parallelism
// <= 0 uses GOMAXPROCS. The first error cancels the remaining work, as
// does ctx; on error the partial results are discarded.
//
// The returned Counters are the sum over all blocks (deterministic,
// unlike the interleaving).
func (e *Engine) ScheduleBlocks(ctx context.Context, blocks []*Block, parallelism int) ([]*Result, Counters, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(blocks) {
		parallelism = len(blocks)
	}
	results := make([]*Result, len(blocks))
	if len(blocks) == 0 {
		return results, Counters{}, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cx := e.pool.Get()
			defer cx.Release()
			s := sched.NewWithContext(e.compiled, cx)
			s.Tracer = e.tracer
			for bi := range next {
				s.BlockID = int64(bi)
				r, err := s.ScheduleBlock(blocks[bi])
				if err != nil {
					fail(fmt.Errorf("block %d: %w", bi, err))
					return
				}
				results[bi] = r
			}
		}()
	}
feed:
	for bi := range blocks {
		select {
		case next <- bi:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, Counters{}, firstErr
	}
	var total Counters
	for _, r := range results {
		total.Add(r.Counters)
	}
	return results, total, nil
}

// Query returns a query session over the engine's frozen description on a
// borrowed context. Call Close on the returned Query to recycle the
// context; each goroutine must use its own Query.
func (e *Engine) Query() *Query {
	return query.NewWithContext(e.compiled, e.pool.Get())
}

// NewHistogram returns an empty histogram for Scheduler.OptionsHist.
func NewHistogram() *Histogram {
	return stats.NewHistogram()
}

// Query is the execution-constraint query interface for compiler modules
// other than the scheduler (if-conversion, height reduction, resource
// pressure heuristics — the use cases the paper's introduction motivates).
type Query = query.Q

// NewQuery returns a query interface over the compiled description.
func NewQuery(c *Compiled) *Query {
	return query.New(c)
}

// RenderClass renders a class's AND/OR-tree (and optionally its expanded
// OR-tree) as ASCII reservation tables, the format of the paper's figures.
func RenderClass(m *Machine, class string, expanded bool) (string, bool) {
	tree, ok := m.Classes[class]
	if !ok {
		return "", false
	}
	if expanded {
		return restable.RenderORTree(m.Resources, tree.Expand()), true
	}
	return restable.RenderAndOrTree(m.Resources, tree), true
}
