package mdes_test

import (
	"context"
	"fmt"
	"testing"

	"mdes"
	"mdes/internal/workload"
)

// BenchmarkScheduleBlocksParallel measures Engine.ScheduleBlocks wall-clock
// over the multi-block workload corpus at parallelism 1, 2, 4 and 8: one
// frozen compiled description, N goroutines borrowing pooled contexts —
// once through the default RU-map backend and once through the probe-plan
// compilation, whose flat scheduler path is the refactor's headline number
// (>= 2x blocks/s on K5). Per-block results are identical at every level
// and across backends (asserted once per sub-benchmark); speedup tracks
// min(parallelism, GOMAXPROCS) since block scheduling is CPU-bound and
// share-nothing. EXPERIMENTS.md records representative numbers.
func BenchmarkScheduleBlocksParallel(b *testing.B) {
	for _, name := range []mdes.BuiltinName{mdes.SuperSPARC, mdes.K5} {
		machine, err := mdes.Builtin(name)
		if err != nil {
			b.Fatal(err)
		}
		compiled := mdes.Compile(machine, mdes.FormAndOr)
		mdes.Optimize(compiled, mdes.LevelFull)
		prog, err := workload.GenerateParallel(workload.Config{Machine: name, NumOps: 20000, Seed: 1996}, 4)
		if err != nil {
			b.Fatal(err)
		}
		blocks := make([]*mdes.Block, len(prog.Blocks))
		copy(blocks, prog.Blocks)

		ref, err := mdes.NewEngine(compiled)
		if err != nil {
			b.Fatal(err)
		}
		serial, _, err := ref.ScheduleBlocks(context.Background(), blocks, 1)
		if err != nil {
			b.Fatal(err)
		}

		for _, kind := range []mdes.CheckerKind{mdes.CheckerRUMap, mdes.CheckerProbePlan} {
			eng, err := mdes.NewEngine(compiled, mdes.WithChecker(kind))
			if err != nil {
				b.Fatal(err)
			}
			for _, par := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/p%d", name, kind, par), func(b *testing.B) {
					var results []*mdes.Result
					for i := 0; i < b.N; i++ {
						var err error
						results, _, err = eng.ScheduleBlocks(context.Background(), blocks, par)
						if err != nil {
							b.Fatal(err)
						}
					}
					for bi, r := range results {
						if r.Length != serial[bi].Length {
							b.Fatalf("block %d: parallel length %d != serial %d", bi, r.Length, serial[bi].Length)
						}
					}
					b.ReportMetric(float64(len(blocks))*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
				})
			}
		}
	}
}
