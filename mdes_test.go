package mdes

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuiltins(t *testing.T) {
	names := Builtins()
	if len(names) != 4 {
		t.Fatalf("Builtins = %v", names)
	}
	for _, n := range names {
		m, err := Builtin(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(m.OpNames) == 0 {
			t.Fatalf("%s has no operations", n)
		}
		src, err := BuiltinSource(n)
		if err != nil || !strings.Contains(src, "machine") {
			t.Fatalf("%s source: %v", n, err)
		}
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	machine, err := Builtin(SuperSPARC)
	if err != nil {
		t.Fatal(err)
	}
	compiled := Compile(machine, FormAndOr)
	reports := Optimize(compiled, LevelFull)
	if len(reports) == 0 {
		t.Fatalf("no optimization reports")
	}
	s := NewScheduler(compiled)
	s.OptionsHist = NewHistogram()
	block := &Block{Ops: []*IROperation{
		{Opcode: "LD", Dests: []int{1}, Srcs: []int{0}},
		{Opcode: "ADD1", Dests: []int{2}, Srcs: []int{1}},
		{Opcode: "ST", Srcs: []int{2, 3}},
	}}
	res, err := s.ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if res.Length == 0 || res.Counters.Attempts < 3 {
		t.Fatalf("result = %+v", res)
	}
	if s.OptionsHist.Total() != res.Counters.Attempts {
		t.Fatalf("histogram mismatch")
	}
}

func TestLoadCustomMachine(t *testing.T) {
	src := `machine Tiny {
	  resource P[2];
	  class op { one_of P[0..1] @ 0; }
	  operation NOP class op latency 1;
	}`
	m, err := Load("tiny.mdes", src)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m, FormOR)
	if c.Size().Total() == 0 {
		t.Fatalf("empty compiled description")
	}
	if _, err := Load("bad.mdes", "machine {"); err == nil {
		t.Fatalf("bad source accepted")
	}
}

func TestOptimizeForBackward(t *testing.T) {
	machine, _ := Builtin(K5)
	c := Compile(machine, FormAndOr)
	if reports := OptimizeFor(c, LevelFull, Backward); len(reports) == 0 {
		t.Fatalf("no reports")
	}
}

func TestRenderClass(t *testing.T) {
	machine, _ := Builtin(SuperSPARC)
	out, ok := RenderClass(machine, "load", false)
	if !ok || !strings.Contains(out, "AND of") {
		t.Fatalf("render: %v\n%s", ok, out)
	}
	out, ok = RenderClass(machine, "load", true)
	if !ok || !strings.Contains(out, "Option 6:") {
		t.Fatalf("expanded render: %v\n%s", ok, out)
	}
	if _, ok := RenderClass(machine, "nope", false); ok {
		t.Fatalf("unknown class rendered")
	}
}

func TestCompiledEncodeDecode(t *testing.T) {
	machine, _ := Builtin(PA7100)
	c := Compile(machine, FormAndOr)
	Optimize(c, LevelFull)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != c.Size() {
		t.Fatalf("size changed after round trip")
	}
	// The decoded description drives the scheduler identically.
	block := &Block{Ops: []*IROperation{
		{Opcode: "LD", Dests: []int{1}, Srcs: []int{0}, Mem: MemLoad},
		{Opcode: "ADD", Dests: []int{2}, Srcs: []int{1}},
	}}
	r1, err := NewScheduler(c).ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewScheduler(back).ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Issue {
		if r1.Issue[i] != r2.Issue[i] {
			t.Fatalf("decoded MDES schedules differently: %v vs %v", r1.Issue, r2.Issue)
		}
	}
}

func TestPublicQueryAPI(t *testing.T) {
	machine, _ := Builtin(SuperSPARC)
	c := Compile(machine, FormAndOr)
	Optimize(c, LevelFull)
	q := NewQuery(c)
	ok, err := q.CanIssueTogether("ADD1", "LD")
	if err != nil || !ok {
		t.Fatalf("CanIssueTogether = %v, %v", ok, err)
	}
	if w := q.IssueWidth(8); w != 3 {
		t.Fatalf("IssueWidth = %d", w)
	}
}
