// Ablation benchmarks for the related-work comparisons of §10 (DESIGN.md
// experiment index): the finite-state-automaton baseline versus
// reservation tables, and Eichenberger-Davidson usage minimization versus
// the usage-time transformation.
package mdes_test

import (
	"math/rand"
	"testing"

	"mdes/internal/automata"
	"mdes/internal/eichen"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// issueStream builds a deterministic (class, arrival) stream for ablation
// scheduling runs.
func issueStream(m *lowlevel.MDES, n int, seed int64) ([]int, []int) {
	r := rand.New(rand.NewSource(seed))
	classes := make([]int, n)
	arrivals := make([]int, n)
	for i := range classes {
		classes[i] = r.Intn(len(m.Constraints))
		arrivals[i] = i / 3
	}
	return classes, arrivals
}

// BenchmarkAblation_Automaton compares hazard detection through the
// collision automaton against the reservation-table RU map on identical
// issue streams (fully optimized AND/OR SuperSPARC). It reports the
// automaton's state count and the RU map's checks for the same work.
func BenchmarkAblation_Automaton(b *testing.B) {
	m, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		b.Fatal(err)
	}
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	opt.Apply(ll, opt.LevelFull, opt.Forward)
	classes, arrivals := issueStream(ll, 5000, 11)

	b.Run("reservation-tables", func(b *testing.B) {
		var checks int64
		for i := 0; i < b.N; i++ {
			ru := rumap.New(ll.NumResources)
			var c stats.Counters
			floor := 0
			for k, class := range classes {
				cy := arrivals[k]
				if floor > cy {
					cy = floor
				}
				for {
					sel, ok := ru.Check(ll.Constraints[class], cy, &c)
					if ok {
						ru.Reserve(sel)
						break
					}
					cy++
				}
				floor = cy
			}
			checks = c.ResourceChecks
		}
		b.ReportMetric(float64(checks)/float64(len(classes)), "checks/op")
	})

	b.Run("automaton", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			a, err := automata.New(ll)
			if err != nil {
				b.Fatal(err)
			}
			st := a.Start()
			cycle := 0
			for k, class := range classes {
				for cycle < arrivals[k] {
					st = a.Advance(st)
					cycle++
				}
				for {
					next, ok := a.TryIssue(st, class)
					if ok {
						st = next
						break
					}
					st = a.Advance(st)
					cycle++
				}
			}
			states = a.States()
		}
		b.ReportMetric(float64(states), "dfa-states")
	})
}

// BenchmarkAblation_Eichenberger compares the E&D reduction against this
// paper's usage-time transformation on the OR-form Pentium description:
// both drive checks/option toward one, by different means.
func BenchmarkAblation_Eichenberger(b *testing.B) {
	load := func() *lowlevel.MDES {
		m, err := machines.Load(machines.Pentium)
		if err != nil {
			b.Fatal(err)
		}
		ll := lowlevel.Compile(m, lowlevel.FormOR)
		opt.EliminateRedundant(ll)
		opt.PruneDominatedOptions(ll)
		return ll
	}
	checksPerOption := func(ll *lowlevel.MDES) float64 {
		classes, arrivals := issueStream(ll, 5000, 13)
		ru := rumap.New(ll.NumResources)
		var c stats.Counters
		floor := 0
		for k, class := range classes {
			cy := arrivals[k]
			if floor > cy {
				cy = floor
			}
			for {
				sel, ok := ru.Check(ll.Constraints[class], cy, &c)
				if ok {
					ru.Reserve(sel)
					break
				}
				cy++
			}
			floor = cy
		}
		return c.ChecksPerOption()
	}

	b.Run("eichenberger-davidson", func(b *testing.B) {
		var cpo float64
		for i := 0; i < b.N; i++ {
			ll := load()
			eichen.Reduce(ll)
			opt.PackBitVectors(ll)
			cpo = checksPerOption(ll)
		}
		b.ReportMetric(cpo, "checks/option")
	})

	b.Run("usage-time-shift", func(b *testing.B) {
		var cpo float64
		for i := 0; i < b.N; i++ {
			ll := load()
			opt.PackBitVectors(ll)
			opt.ShiftUsageTimes(ll, opt.Forward)
			opt.SortUsagesTimeZeroFirst(ll)
			cpo = checksPerOption(ll)
		}
		b.ReportMetric(cpo, "checks/option")
	})

	b.Run("combined", func(b *testing.B) {
		var cpo float64
		for i := 0; i < b.N; i++ {
			ll := load()
			eichen.Reduce(ll)
			opt.PackBitVectors(ll)
			opt.ShiftUsageTimes(ll, opt.Forward)
			opt.SortUsagesTimeZeroFirst(ll)
			cpo = checksPerOption(ll)
		}
		b.ReportMetric(cpo, "checks/option")
	})
}
