package mdes_test

import (
	"context"
	"errors"
	"testing"

	"mdes"
	"mdes/internal/workload"
)

func newTestEngine(t testing.TB, name mdes.BuiltinName) *mdes.Engine {
	t.Helper()
	machine, err := mdes.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	eng, err := mdes.NewEngine(compiled)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testBlocks(t testing.TB, name mdes.BuiltinName, numOps int) []*mdes.Block {
	t.Helper()
	prog, err := workload.Generate(workload.Config{Machine: name, NumOps: numOps, Seed: 1996})
	if err != nil {
		t.Fatal(err)
	}
	return prog.Blocks
}

// ScheduleBlocks must produce identical per-block results at every
// parallelism level, equal to the plain serial scheduler's.
func TestEngineScheduleBlocksMatchesSerial(t *testing.T) {
	for _, name := range []mdes.BuiltinName{mdes.SuperSPARC, mdes.K5} {
		eng := newTestEngine(t, name)
		blocks := testBlocks(t, name, 2000)

		s := mdes.NewScheduler(eng.Compiled())
		serial, serialTotal, err := s.ScheduleAll(blocks)
		if err != nil {
			t.Fatal(err)
		}

		for _, par := range []int{1, 2, 4, 8} {
			results, total, err := eng.ScheduleBlocks(context.Background(), blocks, par)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", name, par, err)
			}
			if total != serialTotal {
				t.Fatalf("%s parallelism %d: counters %+v, serial %+v", name, par, total, serialTotal)
			}
			for bi, r := range results {
				if r.Length != serial[bi].Length {
					t.Fatalf("%s parallelism %d block %d: length %d, serial %d",
						name, par, bi, r.Length, serial[bi].Length)
				}
				for oi, c := range r.Issue {
					if c != serial[bi].Issue[oi] {
						t.Fatalf("%s parallelism %d block %d op %d: cycle %d, serial %d",
							name, par, bi, oi, c, serial[bi].Issue[oi])
					}
				}
			}
		}

		// Totals must have accumulated every released context's counters:
		// 4 runs over the same blocks.
		if got, want := eng.Totals().Attempts, 4*serialTotal.Attempts; got != want {
			t.Fatalf("%s engine totals attempts = %d, want %d", name, got, want)
		}
	}
}

func TestEngineScheduleBlocksEmptyAndDefaults(t *testing.T) {
	eng := newTestEngine(t, mdes.SuperSPARC)
	results, total, err := eng.ScheduleBlocks(context.Background(), nil, 0)
	if err != nil || len(results) != 0 || total.Attempts != 0 {
		t.Fatalf("empty schedule: results=%v total=%+v err=%v", results, total, err)
	}
	blocks := testBlocks(t, mdes.SuperSPARC, 200)
	// parallelism 0 → GOMAXPROCS; must still work.
	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEngineScheduleBlocksCancellation(t *testing.T) {
	eng := newTestEngine(t, mdes.SuperSPARC)
	blocks := testBlocks(t, mdes.SuperSPARC, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := eng.ScheduleBlocks(ctx, blocks, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestEngineScheduleBlocksPropagatesError(t *testing.T) {
	eng := newTestEngine(t, mdes.SuperSPARC)
	blocks := testBlocks(t, mdes.SuperSPARC, 300)
	// An opcode missing from the MDES must surface as an error, not a hang.
	bad := &mdes.Block{Ops: []*mdes.IROperation{{Opcode: "NOSUCH"}}}
	blocks = append(blocks, bad)
	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4); err == nil {
		t.Fatal("expected error for unknown opcode")
	}
}

func TestEngineQuerySessions(t *testing.T) {
	eng := newTestEngine(t, mdes.SuperSPARC)
	q := eng.Query()
	ok, err := q.CanIssueTogether("ADD1", "LD")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ADD1 + LD should dual-issue on SuperSPARC")
	}
	if q.Counters().Attempts == 0 {
		t.Fatal("query session recorded no attempts")
	}
	q.Close()
	if eng.Totals().Attempts == 0 {
		t.Fatal("closed query did not fold counters into engine totals")
	}
}

// NewEngine must reject descriptions that fail validation.
func TestNewEngineValidates(t *testing.T) {
	machine, err := mdes.Builtin(mdes.SuperSPARC)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	compiled.Trees[0].Options = nil // corrupt: tree with no options
	if _, err := mdes.NewEngine(compiled); err == nil {
		t.Fatal("NewEngine accepted an invalid description")
	}
}
