package mdes_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"mdes"
	"mdes/internal/obs"
	"mdes/internal/sched"
)

// Totals must reflect completed sessions exactly once: borrowing and
// releasing idle sessions after a scheduling run must not change them,
// and re-running the same blocks must exactly double them.
func TestEngineTotalsStableAcrossSessionReuse(t *testing.T) {
	eng := newTestEngine(t, mdes.K5)
	blocks := testBlocks(t, mdes.K5, 1500)

	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4); err != nil {
		t.Fatal(err)
	}
	after := eng.Totals()
	if after.Attempts == 0 {
		t.Fatal("no attempts recorded")
	}

	// Idle sessions (borrow + release with no work) must not disturb the
	// totals, no matter how often contexts are recycled.
	for i := 0; i < 10; i++ {
		eng.Query().Close()
	}
	if got := eng.Totals(); got != after {
		t.Fatalf("idle sessions changed totals: %+v -> %+v", after, got)
	}

	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4); err != nil {
		t.Fatal(err)
	}
	got := eng.Totals()
	want := after
	want.Add(after)
	if got != want {
		t.Fatalf("second identical run: totals %+v, want exactly double %+v", got, want)
	}
}

// Under the 8-goroutine stress run, every JSONL trace line must parse,
// carry its block ID, and describe exactly one block: records from
// concurrent goroutines may appear in any order but must never
// interleave within one record.
func TestTraceOrderingUnderParallelStress(t *testing.T) {
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)

	var buf syncBuffer
	eng, err := mdes.NewEngine(compiled, mdes.WithTracer(mdes.NewJSONLTracer(&buf, 1)))
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(t, mdes.K5, 2000)

	results, _, err := eng.ScheduleBlocks(context.Background(), blocks, 8)
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[int64]int)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec mdes.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line does not parse (interleaved write?): %v\n%s", err, sc.Text())
		}
		seen[rec.Block]++
		if rec.Block < 0 || rec.Block >= int64(len(blocks)) {
			t.Fatalf("record names unknown block %d", rec.Block)
		}
		if rec.Ops != len(blocks[rec.Block].Ops) {
			t.Fatalf("block %d record has %d ops, block has %d", rec.Block, rec.Ops, len(blocks[rec.Block].Ops))
		}
		if rec.Length != results[rec.Block].Length {
			t.Fatalf("block %d record length %d, result %d", rec.Block, rec.Length, results[rec.Block].Length)
		}
		if rec.Counters != results[rec.Block].Counters {
			t.Fatalf("block %d record counters %+v, result %+v", rec.Block, rec.Counters, results[rec.Block].Counters)
		}
		// Internal consistency: the successful attempts must place every
		// op exactly once, all events must belong to this block's ops, and
		// the attempt events must sum to the record's counters.
		issued := make(map[int]bool)
		var attempts, options int64
		for _, ev := range rec.Events {
			if ev.Op < 0 || ev.Op >= rec.Ops {
				t.Fatalf("block %d event for op %d outside 0..%d", rec.Block, ev.Op, rec.Ops-1)
			}
			switch ev.Kind {
			case "attempt":
				attempts++
				options += int64(ev.Options)
				if ev.OK {
					if issued[ev.Op] {
						t.Fatalf("block %d op %d issued twice", rec.Block, ev.Op)
					}
					issued[ev.Op] = true
				}
			case "conflict":
				if ev.Res == "" {
					t.Fatalf("block %d conflict event without resource", rec.Block)
				}
			default:
				t.Fatalf("block %d unknown event kind %q", rec.Block, ev.Kind)
			}
		}
		if len(issued) != rec.Ops {
			t.Fatalf("block %d: %d ops issued in trace, want %d", rec.Block, len(issued), rec.Ops)
		}
		if attempts != rec.Counters.Attempts || options != rec.Counters.OptionsChecked {
			t.Fatalf("block %d: trace events sum to attempts=%d options=%d, counters say %+v",
				rec.Block, attempts, options, rec.Counters)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(blocks) {
		t.Fatalf("trace covers %d blocks, want %d", len(seen), len(blocks))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("block %d traced %d times", id, n)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the stress test's shared
// JSONL writer (the sink serializes records, but Write itself must also be
// safe for the race detector).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Bytes()
}

// Figure 2's per-attempt options-checked distribution must be
// reconstructible from trace events alone: rebuilding the histogram from
// the attempt events of a fully-sampled trace must match the scheduler's
// own OptionsHist sample for sample.
func TestFigure2FromTraceEvents(t *testing.T) {
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	blocks := testBlocks(t, mdes.K5, 1500)

	// Reference distribution: the scheduler's own Figure 2 sampling.
	ref := mdes.NewHistogram()
	s := mdes.NewScheduler(compiled)
	s.OptionsHist = ref
	for _, b := range blocks {
		if _, err := s.ScheduleBlock(b); err != nil {
			t.Fatal(err)
		}
	}

	// Same workload through a traced engine; rebuild from events alone.
	tracer, ring := mdes.NewRingTracer(len(blocks), 1)
	eng, err := mdes.NewEngine(compiled, mdes.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 8); err != nil {
		t.Fatal(err)
	}
	rebuilt := mdes.NewHistogram()
	for _, rec := range ring.Snapshot() {
		for _, ev := range rec.Events {
			if ev.Kind == "attempt" {
				rebuilt.Observe(ev.Options)
			}
		}
	}

	if rebuilt.Total() != ref.Total() {
		t.Fatalf("rebuilt %d samples, reference %d", rebuilt.Total(), ref.Total())
	}
	for v := 0; v <= ref.Max(); v++ {
		if rebuilt.Count(v) != ref.Count(v) {
			t.Fatalf("options=%d: rebuilt count %d, reference %d", v, rebuilt.Count(v), ref.Count(v))
		}
	}
}

// Metrics attached with WithMetrics must agree with the engine's counter
// totals and attribute every scheduling attempt to the list phase.
func TestEngineMetricsAgreeWithTotals(t *testing.T) {
	machine, err := mdes.Builtin(mdes.SuperSPARC)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	metrics := mdes.NewMetrics(compiled)
	eng, err := mdes.NewEngine(compiled, mdes.WithMetrics(metrics))
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(t, mdes.SuperSPARC, 1000)
	if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4); err != nil {
		t.Fatal(err)
	}
	totals := eng.Totals()
	snap := metrics.Snapshot()
	list := snap.Phases[obs.PhaseList]
	if list.Attempts != totals.Attempts || list.OptionsChecked != totals.OptionsChecked ||
		list.ResourceChecks != totals.ResourceChecks || list.Conflicts != totals.Conflicts {
		t.Fatalf("list phase %+v disagrees with totals %+v", list, totals)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight after run = %d", snap.InFlight)
	}
	var classAttempts int64
	for _, c := range snap.Classes {
		classAttempts += c.Attempts
	}
	if classAttempts != totals.Attempts {
		t.Fatalf("class attribution sums to %d, totals %d", classAttempts, totals.Attempts)
	}
	var resConflicts int64
	for _, r := range snap.Resources {
		resConflicts += r.Conflicts
	}
	if resConflicts != totals.Conflicts {
		t.Fatalf("resource attribution sums to %d conflicts, totals %d", resConflicts, totals.Conflicts)
	}
	if out := mdes.FormatMetrics(metrics); len(out) == 0 {
		t.Fatal("FormatMetrics returned nothing")
	}
}

// Enabled metrics must cost less than 5% of scheduling throughput. The
// budget holds because check-latency timestamps are sampled (one attempt
// in obs.TimestampPeriod pays the two clock readings; the histogram
// weights each sample back up) while counting accounting stays exact.
// The gate interleaves disabled and enabled runs and compares the
// fastest of each, so scheduler noise cancels instead of accumulating.
func TestEnabledMetricsOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock gate; skipped in -short")
	}
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	blocks := testBlocks(t, mdes.K5, 20000)

	disabled, err := mdes.NewEngine(compiled, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatal(err)
	}
	enabled, err := mdes.NewEngine(compiled,
		mdes.WithChecker(mdes.CheckerProbePlan),
		mdes.WithMetrics(mdes.NewMetrics(compiled)))
	if err != nil {
		t.Fatal(err)
	}

	overheadGate(t, disabled, enabled, blocks, "metrics")
}

// overheadGate asserts that the enabled engine schedules the workload
// within 5% of the disabled engine's wall clock.
//
// Timing noise here is one-sided — preemption, cache pollution, and a
// busy neighbour on a shared box only ever inflate a reading — so the
// minimum over many alternating rounds is the best estimate of each
// engine's true cost, and alternating cancels slow drift. One 15-round
// set is stable to well under the 5% bound on a quiet machine, but a
// whole set can land in a noisy window; because noise only inflates,
// the best of up to three independent sets is still a sound upper
// bound on the true overhead, and retrying drops the flake rate to
// roughly the cube of a single set's.
func overheadGate(t *testing.T, disabled, enabled *mdes.Engine, blocks []*mdes.Block, label string) {
	t.Helper()
	run := func(eng *mdes.Engine) time.Duration {
		t0 := time.Now()
		if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 1); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	// Warm both pools and the plan before timing.
	run(disabled)
	run(enabled)

	const rounds, sets = 15, 3
	var minDis, minEn time.Duration
	var overhead float64
	for set := 0; set < sets; set++ {
		minDis, minEn = time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			if d := run(disabled); d < minDis {
				minDis = d
			}
			if d := run(enabled); d < minEn {
				minEn = d
			}
		}
		overhead = float64(minEn)/float64(minDis) - 1
		t.Logf("disabled %v, %s %v, overhead %.2f%%", minDis, label, minEn, overhead*100)
		if overhead < 0.05 {
			return
		}
	}
	t.Fatalf("enabled %s cost %.2f%% (disabled %v, enabled %v; best of %d sets of %d rounds); the bound is <5%%",
		label, overhead*100, minDis, minEn, sets, rounds)
}

// The conflict-attribution profiler is held to the same bound as enabled
// metrics, with the same interleaved min-of-rounds methodology: journaled
// locals keep pool-release cost proportional to observed activity, and
// the hot path is plain int64 stores, so attaching a profile must cost
// less than 5% of scheduling throughput.
func TestEnabledProfileOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock gate; skipped in -short")
	}
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	blocks := testBlocks(t, mdes.K5, 20000)

	disabled, err := mdes.NewEngine(compiled, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatal(err)
	}
	enabled, err := mdes.NewEngine(compiled,
		mdes.WithChecker(mdes.CheckerProbePlan),
		mdes.WithProfile(mdes.NewConflictProfile(compiled)))
	if err != nil {
		t.Fatal(err)
	}

	overheadGate(t, disabled, enabled, blocks, "profiled")
	if got := enabled.Profile().Snapshot(); got.Merges == 0 {
		t.Fatal("profiled engine merged nothing; the gate measured a disabled profile")
	}
}

// With observability disabled (no WithMetrics, no WithTracer), the engine
// path must allocate exactly what the raw scheduler allocates per block —
// the nil fast path adds zero allocations.
func TestDisabledObservabilityAllocs(t *testing.T) {
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	eng, err := mdes.NewEngine(compiled)
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(t, mdes.K5, 500)
	block := blocks[0]
	for _, b := range blocks {
		if len(b.Ops) > len(block.Ops) {
			block = b
		}
	}

	// Warm the pool so steady-state measurements exclude pool growth.
	if _, err := eng.ScheduleBlock(block); err != nil {
		t.Fatal(err)
	}
	raw := sched.New(compiled)
	if _, err := raw.ScheduleBlock(block); err != nil {
		t.Fatal(err)
	}

	engineAllocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.ScheduleBlock(block); err != nil {
			t.Fatal(err)
		}
	})
	rawAllocs := testing.AllocsPerRun(200, func() {
		if _, err := raw.ScheduleBlock(block); err != nil {
			t.Fatal(err)
		}
	})
	if engineAllocs > rawAllocs {
		t.Fatalf("disabled-observability engine allocates %.1f/op, raw scheduler %.1f/op",
			engineAllocs, rawAllocs)
	}
}
