package mdes_test

import (
	"bytes"
	"testing"
	"time"

	"mdes"
)

// Cold-start measurements: how fast a process reaches a serving Engine
// from nothing. Three paths per machine, slowest to fastest:
//
//   - pipeline: HMDES parse → Compile → Optimize(LevelFull) → NewEngine
//   - v3decode: DecodeCompiled (per-record varint decode + Validate) → NewEngine
//   - arena:    OpenArena (header + checksum + one structural pass) →
//     FrozenMDES (zero-copy view, probe plan adopted) → NewEngine
//
// FormOR is the form the paper's cold-start numbers are quoted for (the
// K5 OR pipeline is the ~30 ms baseline); the arena path must beat it by
// 50× or more (TestColdStartSpeedupGate). All three paths end in a
// CheckerProbePlan engine so the comparison includes plan compilation —
// the arena path skips it by adopting the persisted plan.

type coldPaths struct {
	source string
	v3     []byte
	arena  []byte
}

func coldPrep(tb testing.TB, name mdes.BuiltinName, form mdes.Form) coldPaths {
	tb.Helper()
	src := builtinSource(tb, name)
	c := freshCompiled(tb, name, form, mdes.LevelFull)
	var v3 bytes.Buffer
	if err := c.Encode(&v3); err != nil {
		tb.Fatal(err)
	}
	arena, err := mdes.EncodeArena(c)
	if err != nil {
		tb.Fatal(err)
	}
	return coldPaths{source: src, v3: v3.Bytes(), arena: arena}
}

func coldPipeline(tb testing.TB, name mdes.BuiltinName, source string, form mdes.Form) *mdes.Engine {
	tb.Helper()
	machine, err := mdes.Load(string(name)+".hmdes", source)
	if err != nil {
		tb.Fatal(err)
	}
	c := mdes.Compile(machine, form)
	mdes.Optimize(c, mdes.LevelFull)
	eng, err := mdes.NewEngine(c, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func coldV3(tb testing.TB, v3 []byte) *mdes.Engine {
	tb.Helper()
	c, err := mdes.DecodeCompiled(bytes.NewReader(v3))
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := mdes.NewEngine(c, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func coldArena(tb testing.TB, arena []byte) *mdes.Engine {
	tb.Helper()
	a, err := mdes.OpenArena(arena)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := mdes.NewEngine(a.FrozenMDES(), mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// BenchmarkColdStart measures time-to-Engine for every builtin machine
// over the three cold-start paths (FormOR, LevelFull — the paper's
// pipeline configuration). Run with:
//
//	go test -bench ColdStart -benchtime 10x .
func BenchmarkColdStart(b *testing.B) {
	for _, name := range []mdes.BuiltinName{mdes.PA7100, mdes.Pentium, mdes.SuperSPARC, mdes.K5} {
		p := coldPrep(b, name, mdes.FormOR)
		b.Run(string(name)+"/pipeline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coldPipeline(b, name, p.source, mdes.FormOR)
			}
		})
		b.Run(string(name)+"/v3decode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coldV3(b, p.v3)
			}
		})
		b.Run(string(name)+"/arena", func(b *testing.B) {
			b.SetBytes(int64(len(p.arena)))
			for i := 0; i < b.N; i++ {
				coldArena(b, p.arena)
			}
		})
	}
}

// minTime returns the minimum wall time of rounds runs of fn — min-of-N
// is the standard noise-robust estimator for cold-start latencies.
func minTime(rounds int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestColdStartSpeedupGate is the PR's acceptance gate: on K5 (the
// largest builtin) at FormOR/LevelFull, opening a warm arena and
// reaching a serving probe-plan Engine must be at least 50× faster than
// running the full pipeline. Measured headroom on the seeding machine is
// ~70×, so the gate has ~1.4× slack for runner noise; both sides are
// min-of-N on the same process so the ratio is stable across hardware.
func TestColdStartSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	p := coldPrep(t, mdes.K5, mdes.FormOR)

	// Warm up both paths once (page cache, lazy init) before timing.
	coldPipeline(t, mdes.K5, p.source, mdes.FormOR)
	coldArena(t, p.arena)

	pipeline := minTime(3, func() { coldPipeline(t, mdes.K5, p.source, mdes.FormOR) })
	arena := minTime(15, func() { coldArena(t, p.arena) })

	ratio := float64(pipeline) / float64(arena)
	t.Logf("k5/or/full: pipeline %v, arena open %v, speedup %.1fx (arena %d bytes)",
		pipeline, arena, ratio, len(p.arena))
	if ratio < 50 {
		t.Fatalf("cold-start speedup %.1fx, gate requires >= 50x (pipeline %v, arena %v)",
			ratio, pipeline, arena)
	}
}
