// Command mdesd is the multi-tenant machine-description scheduling
// daemon: clients upload HMDES sources (or reference already-cached
// compiled arenas by content address) into per-tenant versioned
// registries, then schedule instruction blocks over HTTP against frozen
// engines with per-tenant admission control and observability.
//
// Usage:
//
//	mdesd -addr 127.0.0.1:7077 -cachedir /var/cache/mdes
//	mdesd -addr :0 -checker automaton -max-inflight 64 -timeout 5s
//
// Endpoints:
//
//	POST /v1/tenants/{tenant}/descriptions   upload / activate a description
//	GET  /v1/tenants/{tenant}/descriptions   list registered versions
//	POST /v1/tenants/{tenant}/schedule       schedule a batch of blocks
//	GET  /v1/tenants/{tenant}/stats          aggregated counters
//	     /v1/tenants/{tenant}/obs/...        engine metrics, flight, profile
//	GET  /healthz, GET /metrics              daemon health and counters
//
// SIGINT/SIGTERM drain gracefully: new requests are shed with 503,
// in-flight requests complete, every description version drains.
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunMDesd(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdesd:", err)
		os.Exit(1)
	}
}
