// Command mdviz renders reservation tables and AND/OR-trees as ASCII art,
// regenerating the paper's illustrative figures:
//
//	mdviz -m supersparc -class load -form or          # Figure 1 / 3a
//	mdviz -m supersparc -class load -form andor       # Figure 3b
//	mdviz -m supersparc -class load -form or -shift   # Figure 5
//	mdviz -m supersparc -class ialu2 -form andor -sort  # Figure 6
//	mdviz -m supersparc -share                        # Figure 4 (tree sharing)
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunMDViz(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdviz:", err)
		os.Exit(1)
	}
}
