// Command mdtrace records scheduling runs as versioned, content-addressed
// binary traces and replays them, asserting byte-identical schedules — the
// reproducibility half of the observability layer (the flight recorder
// names anomalous blocks; a trace makes the run they came from a portable,
// verifiable artifact).
//
// Usage:
//
//	mdtrace record -machine k5 -checker probeplan -o k5.mdtr
//	mdtrace dump k5.mdtr
//	mdtrace replay k5.mdtr
//	mdtrace replay -checker rumap k5.mdtr   # cross-backend equivalence
//	mdtrace diff a.mdtr b.mdtr
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunMdtrace(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdtrace:", err)
		os.Exit(1)
	}
}
