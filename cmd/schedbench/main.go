// Command schedbench regenerates the paper's evaluation: every table
// (1-15) and the Figure 2 distribution, by compiling each built-in machine
// description at the relevant representation and optimization level and
// driving the instrumented list scheduler over that machine's synthetic
// workload.
//
// Usage:
//
//	schedbench                      # everything
//	schedbench -table 5            # one table
//	schedbench -fig2               # Figure 2 only
//	schedbench -ops 50000 -seed 7  # workload scale
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunSchedbench(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
