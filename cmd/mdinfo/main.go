// Command mdinfo inspects a machine description: its resources, classes,
// operations, and the option breakdown of the paper's Tables 1-4 —
// including, with -sched, the share of scheduling attempts each
// option-count class receives under the synthetic workload.
//
// Usage:
//
//	mdinfo -m supersparc
//	mdinfo -m k5 -sched -ops 50000
//	mdinfo -in mymachine.mdes
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunMDInfo(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdinfo:", err)
		os.Exit(1)
	}
}
