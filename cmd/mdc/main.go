// Command mdc is the MDES compiler: it translates a high-level machine
// description into the low-level representation, runs the optimization
// pipeline, and reports what each transformation did and what the result
// costs in memory.
//
// Usage:
//
//	mdc -m supersparc -form andor -level full
//	mdc -in mymachine.mdes -form or -level time-shift -dir backward
//	mdc -m k5 -level full -o k5.lmdes
//	mdc -m k5 -dump
//	mdc -in mymachine.mdes -emit
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunMDC(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdc:", err)
		os.Exit(1)
	}
}
