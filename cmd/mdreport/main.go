// Command mdreport renders the translator's pass ledger and the paper's
// per-machine tables (5, 7-12) for any machine description, emits the
// report as JSON, and gates optimized MDES size and resource-check counts
// against checked-in budgets — the CI size-regression gate.
//
// Usage:
//
//	mdreport                                  # all builtin machines, tables
//	mdreport -m k5 -json                      # one machine, JSON report
//	mdreport -in mymachine.mdes               # any user description
//	mdreport -check budgets.json              # fail on size/check regression
//	mdreport -seed-budgets budgets.json       # (re)derive budgets with headroom
//	mdreport -out artifacts/                  # per-machine JSON ledgers for CI
package main

import (
	"fmt"
	"os"

	"mdes/internal/tools"
)

func main() {
	if err := tools.RunMDReport(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdreport:", err)
		os.Exit(1)
	}
}
