// Concurrent: serve one frozen compiled machine description to many
// goroutines at once. An Engine freezes the description (compile-once,
// validate-once, immutable thereafter) and pools per-goroutine scheduling
// contexts, so a multi-block workload fans out across a goroutine pool
// with results identical to a serial run, and concurrent query sessions
// probe the same description at the same time.
package main

import (
	"context"
	"fmt"
	"log"

	"mdes"
	"mdes/internal/workload"
)

func main() {
	// 1. Compile and fully optimize the description, then hand it to an
	// Engine. NewEngine freezes it: from here on it is shared immutable
	// data — run Optimize before, never after.
	machine, err := mdes.Builtin(mdes.SuperSPARC)
	if err != nil {
		log.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	engine, err := mdes.NewEngine(compiled)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A multi-block workload (here synthetic; in a compiler, the
	// function's basic blocks).
	prog, err := workload.Generate(workload.Config{Machine: mdes.SuperSPARC, NumOps: 4000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fan the blocks out over four goroutines, each borrowing a pooled
	// context against the shared frozen description. Results are
	// deterministic: identical to parallelism 1 at any level.
	results, total, err := engine.ScheduleBlocks(context.Background(), prog.Blocks, 4)
	if err != nil {
		log.Fatal(err)
	}
	cycles := 0
	for _, r := range results {
		cycles += r.Length
	}
	fmt.Printf("scheduled %d blocks (%d ops) in %d total cycles\n",
		len(results), prog.NumOps, cycles)
	fmt.Printf("workload counters: %v\n", total)

	// 4. Query sessions borrow from the same pool; Close recycles the
	// context and folds its counters into the engine totals.
	q := engine.Query()
	if ok, _ := q.CanIssueTogether("ADD1", "LD"); ok {
		fmt.Println("ADD1 + LD dual-issue: yes")
	}
	q.Close()
	fmt.Printf("engine totals since start: %v\n", engine.Totals())
}
