// Quickstart: load the built-in SuperSPARC description, compile and
// optimize it, and schedule a small basic block, printing the schedule and
// the instrumentation counters the paper's evaluation is built on.
package main

import (
	"fmt"
	"log"

	"mdes"
)

func main() {
	// 1. Load a built-in machine description (authored in the high-level
	// MDES language; see mdes.BuiltinSource to read it).
	machine, err := mdes.Builtin(mdes.SuperSPARC)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile to the low-level AND/OR-tree representation and run the
	// full optimization pipeline.
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	for _, report := range mdes.Optimize(compiled, mdes.LevelFull) {
		fmt.Println("pass:", report)
	}
	size := compiled.Size()
	fmt.Printf("compiled MDES: %d trees, %d options, %d bytes\n\n",
		size.NumTrees, size.NumOptions, size.Total())

	// 3. Build a basic block: a load feeding an add chain, a cascaded
	// (same-cycle) consumer, a store, and a branch.
	block := &mdes.Block{Ops: []*mdes.IROperation{
		{Opcode: "LD", Dests: []int{1}, Srcs: []int{0}, Mem: mdes.MemLoad},
		{Opcode: "ADD1", Dests: []int{2}, Srcs: []int{1}},
		{Opcode: "SUB1", Dests: []int{3}, Srcs: []int{2}, Cascaded: true},
		{Opcode: "ADD2", Dests: []int{4}, Srcs: []int{2, 3}},
		{Opcode: "ST", Srcs: []int{4, 0}, Mem: mdes.MemStore},
		{Opcode: "BR", Srcs: []int{4}, Branch: true},
	}}

	// 4. Schedule it.
	s := mdes.NewScheduler(compiled)
	s.OptionsHist = mdes.NewHistogram()
	result, err := s.ScheduleBlock(block)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("schedule:")
	for i, op := range block.Ops {
		fmt.Printf("  cycle %d: %s\n", result.Issue[i], op)
	}
	fmt.Printf("\nlength %d cycles; %d attempts, %.2f options/attempt, %.2f checks/attempt\n",
		result.Length,
		result.Counters.Attempts,
		result.Counters.OptionsPerAttempt(),
		result.Counters.ChecksPerAttempt())

	// The cascaded SUB1 executes in the same cycle as its producer ADD1,
	// using the SuperSPARC's second IALU (paper §2).
	if result.Issue[2] == result.Issue[1] {
		fmt.Println("cascaded SUB1 issued in the same cycle as ADD1 ✓")
	}
}
