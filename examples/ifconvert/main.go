// Ifconvert: the paper's introduction argues that ILP transformations
// such as predication "also need to use execution constraints to avoid
// over-subscription of processor resources" — merging both sides of a
// branch is only a win if the merged block's operations actually fit the
// machine. This example drives that decision with the MDES query API on
// two targets and shows the answer differing per machine, exactly the
// accuracy-vs-portability problem the paper's two-tier model solves.
package main

import (
	"fmt"
	"log"

	"mdes"
)

// The candidate: if-convert a diamond whose two sides each hold one load
// and one ALU op. Predicated, the merged block issues all four in the
// cycles the branch-free schedule allows; the decision heuristic asks the
// MDES whether the merged first cycle over-subscribes resources.
func main() {
	thenSide := []string{"LD", "ADD1"} // taken path
	elseSide := []string{"LD", "SLL1"} // fall-through path

	for _, target := range []mdes.BuiltinName{mdes.SuperSPARC, mdes.PA7100} {
		machine, err := mdes.Builtin(target)
		if err != nil {
			log.Fatal(err)
		}
		// PA7100 uses different opcode names.
		ops := append(append([]string{}, thenSide...), elseSide...)
		if target == mdes.PA7100 {
			ops = []string{"LD", "ADD", "LD", "SH"}
		}
		compiled := mdes.Compile(machine, mdes.FormAndOr)
		mdes.Optimize(compiled, mdes.LevelFull)
		q := mdes.NewQuery(compiled)

		fmt.Printf("=== %s ===\n", target)
		fmt.Printf("merged ops: %v\n", ops)

		// Over-subscription probe: can the two loads dual-issue at all?
		loadsTogether, err := q.CanIssueTogether(ops[0], ops[2])
		if err != nil {
			log.Fatal(err)
		}
		width := q.IssueWidth(8)
		dist, err := q.MinIssueDistance(ops[0], ops[2], 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("issue width %d; loads co-issue: %v (min separation %d cycle)\n",
			width, loadsTogether, dist)

		// Estimate the merged block's resource-limited height: schedule it.
		s := mdes.NewScheduler(compiled)
		block := &mdes.Block{Ops: []*mdes.IROperation{
			{Opcode: ops[0], Dests: []int{1}, Srcs: []int{0}, Mem: mdes.MemLoad},
			{Opcode: ops[1], Dests: []int{2}, Srcs: []int{1}},
			{Opcode: ops[2], Dests: []int{3}, Srcs: []int{0}, Mem: mdes.MemLoad},
			{Opcode: ops[3], Dests: []int{4}, Srcs: []int{3}},
		}}
		res, err := s.ScheduleBlock(block)
		if err != nil {
			log.Fatal(err)
		}
		// The branchy version: each side is its side's chain plus roughly a
		// branch cycle; assume the sides are balanced two-op chains.
		sideLen := 1 + q.MustLatency(ops[0])
		fmt.Printf("merged schedule: %d cycles; per-side chain: ~%d cycles + branch\n",
			res.Length, sideLen)
		if res.Length <= sideLen+1 {
			fmt.Println("decision: IF-CONVERT (merged block fits the machine)")
		} else {
			fmt.Println("decision: KEEP BRANCH (merged block over-subscribes resources)")
		}
		fmt.Println()
	}
}
