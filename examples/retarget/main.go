// Retarget: the paper's central motivation is that a generic,
// MDES-driven scheduler can be retargeted to a new processor by writing a
// description in the high-level language — no compiler changes. This
// example authors a description for a fictional dual-cluster VLIW from
// scratch, compiles it, and schedules the same source block for it and for
// the SuperSPARC, comparing the schedules.
package main

import (
	"fmt"
	"log"

	"mdes"
)

// vliwSource describes a two-cluster machine: each cluster has one ALU and
// one register write port; a single shared memory unit and a barrel
// shifter that any cluster may use one cycle after issue.
const vliwSource = `
machine DualClusterVLIW {
    resource Cluster[2];   // issue slot per cluster
    resource ALU[2];       // one per cluster
    resource WrPt[2];      // one per cluster
    resource M;            // shared memory port
    resource SH;           // shared late shifter

    tree Slot0 { option { Cluster[0] @ 0; ALU[0] @ 0; WrPt[0] @ 1; } }
    tree Slot1 { option { Cluster[1] @ 0; ALU[1] @ 0; WrPt[1] @ 1; } }

    class alu {
        tree {
            option { Cluster[0] @ 0; ALU[0] @ 0; WrPt[0] @ 1; }
            option { Cluster[1] @ 0; ALU[1] @ 0; WrPt[1] @ 1; }
        }
    }
    class load {
        use M @ 0;
        tree {
            option { Cluster[0] @ 0; WrPt[0] @ 2; }
            option { Cluster[1] @ 0; WrPt[1] @ 2; }
        }
    }
    class store {
        use M @ 0;
        one_of Cluster[0..1] @ 0;
    }
    class shift {
        use SH @ 1;
        tree {
            option { Cluster[0] @ 0; WrPt[0] @ 2; }
            option { Cluster[1] @ 0; WrPt[1] @ 2; }
        }
    }
    class branch {
        use Cluster[1] @ 0;
    }

    operation ADD class alu latency 1;
    operation LD  class load latency 2;
    operation ST  class store latency 1;
    operation SHL class shift latency 2;
    operation BR  class branch latency 1;
}
`

func buildBlock(opcodes map[string]string) *mdes.Block {
	// A generic block expressed with role names, mapped per machine.
	return &mdes.Block{Ops: []*mdes.IROperation{
		{Opcode: opcodes["load"], Dests: []int{1}, Srcs: []int{0}, Mem: mdes.MemLoad},
		{Opcode: opcodes["alu"], Dests: []int{2}, Srcs: []int{1}},
		{Opcode: opcodes["shift"], Dests: []int{3}, Srcs: []int{1}},
		{Opcode: opcodes["alu2"], Dests: []int{4}, Srcs: []int{2}},
		{Opcode: opcodes["store"], Srcs: []int{4, 0}, Mem: mdes.MemStore},
		{Opcode: opcodes["branch"], Srcs: []int{4}, Branch: true},
	}}
}

func scheduleFor(name string, machine *mdes.Machine, opcodes map[string]string) {
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	s := mdes.NewScheduler(compiled)
	block := buildBlock(opcodes)
	result, err := s.ScheduleBlock(block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%d cycles):\n", name, result.Length)
	for i, op := range block.Ops {
		fmt.Printf("  cycle %d: %s\n", result.Issue[i], op)
	}
	fmt.Println()
}

func main() {
	// The custom machine: authored above, loaded like any description.
	vliw, err := mdes.Load("vliw.mdes", vliwSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Retargeting the same scheduler to two machines.")
	fmt.Println()
	scheduleFor("DualClusterVLIW", vliw, map[string]string{
		"load": "LD", "alu": "ADD", "alu2": "ADD", "shift": "SHL",
		"store": "ST", "branch": "BR",
	})

	sparc, err := mdes.Builtin(mdes.SuperSPARC)
	if err != nil {
		log.Fatal(err)
	}
	scheduleFor("SuperSPARC", sparc, map[string]string{
		"load": "LD", "alu": "ADD1", "alu2": "SUB1", "shift": "SLL1",
		"store": "ST", "branch": "BR",
	})

	// Render the VLIW load class the way the paper's figures draw
	// reservation tables.
	if out, ok := mdes.RenderClass(vliw, "load", false); ok {
		fmt.Println("VLIW load constraint:")
		fmt.Print(out)
	}
}
