// Modulo: software-pipeline a loop with iterative modulo scheduling
// (Rau's IMS, the paper's reference [12]) on the SuperSPARC description —
// the "advanced scheduling technique" the paper names as raising
// scheduling attempts per operation, and the one whose unscheduling step
// needs reservation tables rather than finite-state automata (§10).
package main

import (
	"fmt"
	"log"

	"mdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/modsched"
	"mdes/internal/opt"
)

func main() {
	machine, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		log.Fatal(err)
	}
	compiled := lowlevel.Compile(machine, lowlevel.FormAndOr)
	opt.Apply(compiled, opt.LevelFull, opt.Forward)

	// A reduction-style loop body (r0 = &A[i], r7 = &B[i]):
	//   t = A[i]; s = s + t; u = s << 1; B[i] = u
	// with the accumulator recurrence s -> s carried across iterations.
	loop := &modsched.Loop{
		Body: &ir.Block{Ops: []*ir.Operation{
			{Opcode: "LD", Dests: []int{1}, Srcs: []int{0}, Mem: ir.MemLoad}, // 0: t = A[i]
			{Opcode: "ADD2", Dests: []int{2}, Srcs: []int{1, 2}},             // 1: s += t
			{Opcode: "SLL1", Dests: []int{3}, Srcs: []int{2}},                // 2: u = s << 1
			{Opcode: "ST", Srcs: []int{3, 7}, Mem: ir.MemStore},              // 3: B[i] = u
		}},
		Carried: []modsched.Dep{
			{From: 1, To: 1, MinDist: 1, Omega: 1}, // accumulator recurrence
		},
	}

	s := modsched.New(compiled)
	mii, err := s.MII(loop)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := s.Schedule(loop)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loop of %d operations on %s\n", len(loop.Body.Ops), compiled.MachineName)
	fmt.Printf("MII = %d, achieved II = %d (tried %d candidate II values)\n\n", mii, sched.II, sched.TriedIIs)
	fmt.Println("modulo schedule (cycle, slot within II):")
	for i, op := range loop.Body.Ops {
		c := sched.Issue[i]
		slot := ((c % sched.II) + sched.II) % sched.II
		fmt.Printf("  op %d %-5s issue %2d  (slot %d, stage %d)\n",
			i, op.Opcode, c, slot, c/sched.II)
	}
	fmt.Printf("\nsearch cost: %d attempts, %.2f options/attempt, %d evictions\n",
		sched.Counters.Attempts, sched.Counters.OptionsPerAttempt(), sched.Evictions)

	// Contrast: acyclic list scheduling of the same body runs at the
	// body's critical-path length per iteration; the pipelined loop
	// initiates one iteration every II cycles.
	ls := mdes.NewScheduler(compiled)
	res, err := ls.ScheduleBlock(loop.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlist-scheduled iteration length: %d cycles; pipelined initiation interval: %d cycles\n",
		res.Length, sched.II)
}
