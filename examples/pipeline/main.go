// Pipeline ablation: walk the K5 description through each optimization
// level in both representations, showing how every transformation in the
// paper changes the MDES footprint and the scheduler's work — the
// per-machine story behind the paper's Tables 14 and 15.
package main

import (
	"fmt"
	"log"

	"mdes"
	"mdes/internal/experiments"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/textutil"
)

func main() {
	const target = machines.K5
	params := experiments.Params{NumOps: 10000, Seed: 1996}

	fmt.Printf("Ablation over optimization levels, %s MDES, %d synthetic ops\n\n", target, params.NumOps)

	levels := []opt.Level{
		opt.LevelNone, opt.LevelRedundancy, opt.LevelBitVector,
		opt.LevelTimeShift, opt.LevelFull,
	}
	for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
		t := textutil.NewTable("Level", "Bytes", "Trees", "Options", "Opt/Att", "Chk/Att", "Chk/Opt")
		for _, lvl := range levels {
			res, err := experiments.Run(experiments.RunConfig{
				Machine: target, Form: form, Level: lvl, Params: params,
			})
			if err != nil {
				log.Fatal(err)
			}
			t.Row(lvl.String(), res.SizeTotal, res.Size.NumTrees, res.Size.NumOptions,
				res.Counters.OptionsPerAttempt(),
				res.Counters.ChecksPerAttempt(),
				res.Counters.ChecksPerOption())
		}
		fmt.Printf("%s representation:\n%s\n", form, t.String())
	}

	// The same walk through the public API for a single level, showing
	// what each pass reports.
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		log.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	fmt.Println("pass-by-pass reports (AND/OR, full):")
	for _, r := range mdes.Optimize(compiled, mdes.LevelFull) {
		fmt.Println(" ", r)
	}
}
