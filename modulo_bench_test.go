// Benchmark for the iterative-modulo-scheduling extension: the paper
// predicts its benefits "should only increase as more scheduling attempts
// are required" (§4) and names iterative modulo scheduling as the
// technique requiring them — this measures exactly that amplification.
package mdes_test

import (
	"math/rand"
	"testing"

	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/modsched"
	"mdes/internal/opt"
)

// randomLoops builds deterministic pipelineable loop bodies for the
// SuperSPARC.
func randomLoops(n int) []*modsched.Loop {
	r := rand.New(rand.NewSource(21))
	var loops []*modsched.Loop
	for k := 0; k < n; k++ {
		size := 4 + r.Intn(6)
		body := &ir.Block{}
		reg := 8
		for i := 0; i < size; i++ {
			src := 1 + r.Intn(reg-1)
			var op *ir.Operation
			switch r.Intn(5) {
			case 0:
				op = &ir.Operation{Opcode: "LD", Dests: []int{reg}, Srcs: []int{0}, Mem: ir.MemLoad}
			case 1:
				op = &ir.Operation{Opcode: "ST", Srcs: []int{src, 0}, Mem: ir.MemStore}
			case 2:
				op = &ir.Operation{Opcode: "SLL1", Dests: []int{reg}, Srcs: []int{src}}
			default:
				op = &ir.Operation{Opcode: "ADD1", Dests: []int{reg}, Srcs: []int{src}}
			}
			if len(op.Dests) > 0 {
				reg++
			}
			body.Ops = append(body.Ops, op)
		}
		loop := &modsched.Loop{Body: body}
		// One modest recurrence per loop.
		last := len(body.Ops) - 1
		loop.Carried = append(loop.Carried, modsched.Dep{From: last, To: 0, MinDist: 1, Omega: 2})
		loops = append(loops, loop)
	}
	return loops
}

// BenchmarkModuloScheduling compares the unoptimized OR representation
// against the fully optimized AND/OR representation under iterative modulo
// scheduling, reporting checks per attempt.
func BenchmarkModuloScheduling(b *testing.B) {
	m, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		b.Fatal(err)
	}
	loops := randomLoops(60)
	run := func(b *testing.B, form lowlevel.Form, lvl opt.Level) {
		var checksPerAttempt float64
		for i := 0; i < b.N; i++ {
			ll := lowlevel.Compile(m, form)
			opt.Apply(ll, lvl, opt.Forward)
			s := modsched.New(ll)
			var attempts, checks int64
			for _, l := range loops {
				sched, err := s.Schedule(l)
				if err != nil {
					b.Fatal(err)
				}
				attempts += sched.Counters.Attempts
				checks += sched.Counters.ResourceChecks
			}
			checksPerAttempt = float64(checks) / float64(attempts)
		}
		b.ReportMetric(checksPerAttempt, "checks/attempt")
	}
	b.Run("or-unoptimized", func(b *testing.B) { run(b, lowlevel.FormOR, opt.LevelNone) })
	b.Run("andor-full", func(b *testing.B) { run(b, lowlevel.FormAndOr, opt.LevelFull) })
}
