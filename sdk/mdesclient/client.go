package mdesclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// APIError is a structured error response from the daemon.
type APIError struct {
	Status      int
	Code        string
	Message     string
	Diagnostics []Diagnostic
	// retryAfter is the server-provided Retry-After floor, when present.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	if len(e.Diagnostics) > 0 {
		d := e.Diagnostics[0]
		return fmt.Sprintf("mdesd: %s (%d %s): %s:%d:%d: %s",
			e.Code, e.Status, http.StatusText(e.Status), d.File, d.Line, d.Col, d.Msg)
	}
	return fmt.Sprintf("mdesd: %s (%d %s): %s", e.Code, e.Status, http.StatusText(e.Status), e.Message)
}

// Retryable reports whether the request that produced this error may be
// retried: the daemon shed it (429 queue overflow, 503 draining or
// admission timeout), not rejected it.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry configures the retry policy: up to maxRetries re-sends of a
// shed (429/503) or transport-failed request, exponential backoff
// starting at base with full jitter. maxRetries 0 disables retry.
func WithRetry(maxRetries int, base time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.backoffBase = maxRetries, base }
}

// Client is a thin client for one mdesd daemon.
//
// All methods are safe for concurrent use. Requests shed by the daemon's
// admission control (429) or hit during a drain (503) are retried with
// exponential backoff and full jitter, honoring Retry-After when the
// daemon provides one; context cancellation always wins.
type Client struct {
	base        string
	hc          *http.Client
	maxRetries  int
	backoffBase time.Duration
	rnd         func(time.Duration) time.Duration
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7077"). The default policy retries shed requests up
// to 5 times starting at 50ms backoff.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          &http.Client{Timeout: 60 * time.Second},
		maxRetries:  5,
		backoffBase: 50 * time.Millisecond,
	}
	c.rnd = func(d time.Duration) time.Duration {
		if d <= 0 {
			return 0
		}
		return time.Duration(rand.Int63n(int64(d)))
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Upload registers a description version with the tenant's registry.
func (c *Client) Upload(ctx context.Context, tenant string, req UploadRequest) (*UploadResponse, error) {
	var resp UploadResponse
	if err := c.do(ctx, http.MethodPost, c.tenantPath(tenant, "descriptions"), &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Schedule schedules a batch of blocks against the tenant's active
// description version.
func (c *Client) Schedule(ctx context.Context, tenant string, blocks []Block) (*ScheduleResponse, error) {
	var resp ScheduleResponse
	req := ScheduleRequest{Blocks: blocks}
	if err := c.do(ctx, http.MethodPost, c.tenantPath(tenant, "schedule"), &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Versions lists the tenant's registered description versions.
func (c *Client) Versions(ctx context.Context, tenant string) (*ListResponse, error) {
	var resp ListResponse
	if err := c.do(ctx, http.MethodGet, c.tenantPath(tenant, "descriptions"), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats reports the tenant's aggregated scheduling counters.
func (c *Client) Stats(ctx context.Context, tenant string) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(ctx, http.MethodGet, c.tenantPath(tenant, "stats"), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, c.base+"/healthz", nil, nil)
}

func (c *Client) tenantPath(tenant, leaf string) string {
	return c.base + "/v1/tenants/" + tenant + "/" + leaf
}

// do sends one request with the retry policy. body and out may be nil.
func (c *Client) do(ctx context.Context, method, url string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("mdesclient: encode: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, url, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var apiErr *APIError
		retryable := !errors.As(err, &apiErr) || apiErr.Retryable()
		if !retryable || attempt >= c.maxRetries || ctx.Err() != nil {
			return lastErr
		}
		delay := c.backoffBase << uint(attempt)
		if apiErr != nil && apiErr.Status == http.StatusTooManyRequests {
			// Honor a server-provided Retry-After floor when present.
			if apiErr.retryAfter > delay {
				delay = apiErr.retryAfter
			}
		}
		select {
		case <-time.After(delay/2 + c.rnd(delay/2)):
		case <-ctx.Done():
			return lastErr
		}
	}
}

func (c *Client) once(ctx context.Context, method, url string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("mdesclient: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("mdesclient: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("mdesclient: decode response: %w", err)
	}
	return nil
}

// decodeAPIError parses the daemon's structured error body, falling back
// to the raw text for non-daemon intermediaries.
func decodeAPIError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(data))}
	var body ErrorBody
	if err := json.Unmarshal(data, &body); err == nil && body.Code != "" {
		apiErr.Code, apiErr.Message, apiErr.Diagnostics = body.Code, body.Error, body.Diagnostics
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}
