// Package mdesclient is the thin Go client SDK for the mdesd scheduling
// daemon (cmd/mdesd): upload HMDES machine descriptions into a tenant's
// versioned registry, then issue schedule and query requests against the
// tenant's active description version.
//
// The package also defines the daemon's JSON wire format. The server side
// (internal/server) imports these types rather than the other way around,
// so the SDK stays importable from outside the module while the request
// decoder — with its hard capacity limits — remains internal.
package mdesclient

// Wire format versioning: the daemon serves its API under /v1/; breaking
// wire changes bump the path prefix, not these structs.

// UploadRequest registers (and optionally activates) one compiled
// description version in a tenant's registry. Exactly one of Source or
// SourceHash must be set: Source carries the HMDES text through the full
// parse → compile → optimize pipeline (consulting the daemon's
// content-addressed cache), while SourceHash references an
// already-cached arena by its content address and never compiles.
type UploadRequest struct {
	// Source is the high-level HMDES source text.
	Source string `json:"source,omitempty"`
	// SourceHash is the 16-hex-digit FNV-64a hash of a source already in
	// the daemon's description cache (descache.HashSource).
	SourceHash string `json:"source_hash,omitempty"`
	// Form is the constraint representation: "or" or "andor" (default).
	Form string `json:"form,omitempty"`
	// Level is the optimization level: "none", "redundancy",
	// "bit-vector", "time-shift" or "full" (default).
	Level string `json:"level,omitempty"`
	// Activate atomically makes this version the tenant's active one;
	// the previously active version drains and retires.
	Activate bool `json:"activate,omitempty"`
}

// UploadResponse describes the registered version.
type UploadResponse struct {
	// Key is the version's registry key: the content address
	// hash(source) × form × level (the descache entry ID).
	Key string `json:"key"`
	// SourceHash is the content address of the HMDES source.
	SourceHash string `json:"source_hash"`
	// Fingerprint is the compiled description's content fingerprint;
	// every ScheduleResponse echoes the fingerprint of the version that
	// served it, so clients can pin results to exactly one description.
	Fingerprint string `json:"fingerprint"`
	// Machine is the description's machine name.
	Machine string `json:"machine"`
	// Active reports whether this version is now the tenant's active one.
	Active bool `json:"active"`
	// Cached reports whether the version was served from the compiled-
	// description cache (true) or compiled by this request (false).
	Cached bool `json:"cached"`
}

// Op is one assembly operation of a schedule request, mirroring the
// scheduler's input IR.
type Op struct {
	Opcode string `json:"opcode"`
	Dests  []int  `json:"dests,omitempty"`
	Srcs   []int  `json:"srcs,omitempty"`
	// Mem classifies memory behaviour: "", "load" or "store".
	Mem      string `json:"mem,omitempty"`
	Branch   bool   `json:"branch,omitempty"`
	Cascaded bool   `json:"cascaded,omitempty"`
}

// Block is one basic block to schedule.
type Block struct {
	Ops []Op `json:"ops"`
}

// ScheduleRequest schedules a batch of independent basic blocks against
// the tenant's active description version. All blocks of one request are
// served by the same frozen engine (one version acquire per request), so
// one response never mixes descriptions.
type ScheduleRequest struct {
	Blocks []Block `json:"blocks"`
}

// BlockResult is one block's scheduling outcome.
type BlockResult struct {
	// Issue[i] is the cycle operation i was issued.
	Issue []int `json:"issue"`
	// Length is the schedule length in cycles.
	Length int `json:"length"`
}

// Counters are the paper's instrumentation counters summed over the
// request's blocks.
type Counters struct {
	Attempts       int64 `json:"attempts"`
	OptionsChecked int64 `json:"options_checked"`
	ResourceChecks int64 `json:"resource_checks"`
	Conflicts      int64 `json:"conflicts"`
	Backtracks     int64 `json:"backtracks"`
}

// ScheduleResponse is the outcome of one schedule request.
type ScheduleResponse struct {
	// Fingerprint identifies the description version that scheduled this
	// request; clients comparing against a local replay must first check
	// it matches their local compile.
	Fingerprint string `json:"fingerprint"`
	// Key is the serving version's registry key.
	Key      string        `json:"key"`
	Results  []BlockResult `json:"results"`
	Counters Counters      `json:"counters"`
}

// VersionInfo describes one registered version in a listing.
type VersionInfo struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
	Machine     string `json:"machine"`
	Active      bool   `json:"active"`
	// Retired marks a version that was active and has been hot-swapped
	// out; Drained additionally means its last in-flight request has
	// completed (its engine pool is quiescent).
	Retired bool `json:"retired"`
	Drained bool `json:"drained"`
	// InFlight is the number of requests currently scheduled against
	// this version.
	InFlight int64 `json:"in_flight"`
}

// ListResponse lists a tenant's registered versions.
type ListResponse struct {
	Tenant   string        `json:"tenant"`
	Versions []VersionInfo `json:"versions"`
}

// StatsResponse reports a tenant's aggregated scheduling counters.
type StatsResponse struct {
	Tenant      string   `json:"tenant"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Blocks      int64    `json:"blocks"`
	Counters    Counters `json:"counters"`
}

// Diagnostic is one positioned language error from the HMDES analyzer,
// serialized when an upload's source is rejected.
type Diagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// ErrorBody is the daemon's structured error response. Every failure the
// daemon can encounter — malformed requests, oversized bodies, admission
// rejection, draining shutdown, cache faults — is reported through this
// shape; the daemon never answers a fault with anything else.
type ErrorBody struct {
	// Code is a stable machine-readable error class:
	// "bad_request", "bad_source", "bad_block", "too_large",
	// "not_found", "no_description", "overloaded", "timeout",
	// "draining", "internal".
	Code string `json:"code"`
	// Error is the human-readable message.
	Error string `json:"error"`
	// Diagnostics carries positioned analyzer errors for "bad_source".
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}
