package mdesclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func shedTwiceThenServe(t *testing.T, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= 2 {
			w.Header().Set("Content-Type", "application/json")
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(ErrorBody{Code: "overloaded", Error: "busy"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(StatsResponse{Tenant: "t", Blocks: 7})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestClientRetriesShedRequests(t *testing.T) {
	ts, hits := shedTwiceThenServe(t, http.StatusTooManyRequests, "")
	c := New(ts.URL, WithRetry(5, time.Millisecond))
	st, err := c.Stats(context.Background(), "t")
	if err != nil {
		t.Fatalf("stats after retries: %v", err)
	}
	if st.Blocks != 7 {
		t.Fatalf("blocks = %d, want 7", st.Blocks)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3 (two shed + one served)", hits.Load())
	}
}

func TestClientRetries503(t *testing.T) {
	ts, hits := shedTwiceThenServe(t, http.StatusServiceUnavailable, "")
	c := New(ts.URL, WithRetry(5, time.Millisecond))
	if _, err := c.Stats(context.Background(), "t"); err != nil {
		t.Fatalf("stats after 503 retries: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
}

func TestClientDoesNotRetryRejections(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(ErrorBody{Code: "bad_request", Error: "nope", Diagnostics: []Diagnostic{{File: "f", Line: 3, Col: 9, Msg: "boom"}}})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(5, time.Millisecond))
	_, err := c.Stats(context.Background(), "t")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %T: %v", err, err)
	}
	if apiErr.Retryable() {
		t.Fatalf("400 reported retryable")
	}
	if apiErr.Code != "bad_request" || len(apiErr.Diagnostics) != 1 || apiErr.Diagnostics[0].Line != 3 {
		t.Fatalf("structured error lost: %+v", apiErr)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", hits.Load())
	}
}

func TestClientContextCancelsRetryLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorBody{Code: "overloaded", Error: "busy"})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(1000, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(ctx, "t")
	if err == nil {
		t.Fatalf("want error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retry loop ignored context for %s", time.Since(start))
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	ts, _ := shedTwiceThenServe(t, http.StatusTooManyRequests, "1")
	c := New(ts.URL, WithRetry(5, time.Millisecond))
	start := time.Now()
	if _, err := c.Stats(context.Background(), "t"); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// Two shed responses, each with Retry-After: 1 — the backoff floor is
	// at least 500ms per retry (delay/2 fixed + jitter).
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("Retry-After ignored: completed in %s", elapsed)
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	// Point at a closed port: every attempt fails at the transport layer
	// and must be retried until the budget runs out.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	c := New(url, WithRetry(2, time.Millisecond))
	start := time.Now()
	err := c.Health(context.Background())
	if err == nil {
		t.Fatalf("health against closed port succeeded")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("transport retries took %s", time.Since(start))
	}
}
