package mdes_test

import (
	"context"
	"io"
	"testing"

	"mdes"
	"mdes/internal/workload"
)

// BenchmarkObsOverhead measures the cost of the observability layer on
// the parallel scheduling hot path, relative to the disabled baseline:
//
//	disabled     no metrics, no tracer — the nil fast path
//	metrics      per-phase/per-class registry attached (sampled timestamps +
//	             local counter bumps per Check, one merge per context
//	             release); TestEnabledMetricsOverheadGate enforces that this
//	             variant stays within 5% of disabled on the flat serial path
//	trace-ring   full tracing into an in-memory ring on top of metrics
//	trace-jsonl  full tracing serialized to a discarded JSONL stream
func BenchmarkObsOverhead(b *testing.B) {
	machine, err := mdes.Builtin(mdes.K5)
	if err != nil {
		b.Fatal(err)
	}
	compiled := mdes.Compile(machine, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	prog, err := workload.GenerateParallel(workload.Config{Machine: mdes.K5, NumOps: 20000, Seed: 1996}, 4)
	if err != nil {
		b.Fatal(err)
	}
	blocks := make([]*mdes.Block, len(prog.Blocks))
	copy(blocks, prog.Blocks)

	variants := []struct {
		name string
		opts func() []mdes.EngineOption
	}{
		{"disabled", func() []mdes.EngineOption { return nil }},
		{"metrics", func() []mdes.EngineOption {
			return []mdes.EngineOption{mdes.WithMetrics(mdes.NewMetrics(compiled))}
		}},
		{"trace-ring", func() []mdes.EngineOption {
			tracer, _ := mdes.NewRingTracer(1024, 1)
			return []mdes.EngineOption{
				mdes.WithMetrics(mdes.NewMetrics(compiled)),
				mdes.WithTracer(tracer),
			}
		}},
		{"trace-jsonl", func() []mdes.EngineOption {
			return []mdes.EngineOption{mdes.WithTracer(mdes.NewJSONLTracer(io.Discard, 1))}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			eng, err := mdes.NewEngine(compiled, v.opts()...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(blocks))*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}
