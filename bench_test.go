// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// performs the full experiment — compile the machine descriptions at the
// relevant representation/optimization level and drive the instrumented
// list scheduler over the machine's synthetic workload — and reports the
// paper's metric as a custom benchmark unit alongside time and allocations.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// cmd/schedbench prints the same rows as human-readable tables.
package mdes_test

import (
	"testing"

	"mdes/internal/experiments"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

// benchParams keeps per-iteration work bounded; metric shapes are stable
// from a few thousand ops up.
var benchParams = experiments.Params{NumOps: 5000, Seed: 1996}

func benchBreakdown(b *testing.B, name machines.Name, keyClass int) {
	var pct float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Breakdown(name, benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Options == keyClass {
				pct = r.AttemptsPercent
			}
		}
	}
	b.ReportMetric(pct, "%attempts@key-class")
}

// BenchmarkTable1_SuperSPARCBreakdown regenerates Table 1 (key class: the
// 48-option one-source IALU ops, paper 50.29% of attempts).
func BenchmarkTable1_SuperSPARCBreakdown(b *testing.B) {
	benchBreakdown(b, machines.SuperSPARC, 48)
}

// BenchmarkTable2_PA7100Breakdown regenerates Table 2 (key class: the
// two-option ops, paper 81.19%).
func BenchmarkTable2_PA7100Breakdown(b *testing.B) {
	benchBreakdown(b, machines.PA7100, 2)
}

// BenchmarkTable3_PentiumBreakdown regenerates Table 3 (key class: the
// two-option pairable ops, paper 54.58%).
func BenchmarkTable3_PentiumBreakdown(b *testing.B) {
	benchBreakdown(b, machines.Pentium, 2)
}

// BenchmarkTable4_K5Breakdown regenerates Table 4 (key class: the
// 32-option one-Rop two-unit ops, paper 74.72%).
func BenchmarkTable4_K5Breakdown(b *testing.B) {
	benchBreakdown(b, machines.K5, 32)
}

// BenchmarkFigure2_OptionsCheckedDistribution regenerates Figure 2 and
// reports the peak at one option checked (paper 38.02%).
func BenchmarkFigure2_OptionsCheckedDistribution(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure2(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		peak = f.Hist.Percent(1)
	}
	b.ReportMetric(peak, "%attempts@1option")
}

// BenchmarkTable5_OriginalScheduling regenerates Table 5 and reports the
// SuperSPARC checks reduction from the AND/OR representation (paper 84.5%).
func BenchmarkTable5_OriginalScheduling(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.SuperSPARC {
				reduction = r.ChecksReducedPercent()
			}
		}
	}
	b.ReportMetric(reduction, "%checks-reduced-supersparc")
}

// BenchmarkTable6_OriginalMemory regenerates Table 6 and reports the K5's
// size reduction from the AND/OR representation (paper 98.6%).
func BenchmarkTable6_OriginalMemory(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.K5 {
				reduction = r.ReductionPercent()
			}
		}
	}
	b.ReportMetric(reduction, "%size-reduced-k5")
}

// BenchmarkTable7_RedundancyElimination regenerates Table 7 and reports
// the Pentium OR-form shrink from CSE/copy-prop/dead-code removal.
func BenchmarkTable7_RedundancyElimination(b *testing.B) {
	var shrink float64
	for i := 0; i < b.N; i++ {
		before, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		after, err := experiments.Table7()
		if err != nil {
			b.Fatal(err)
		}
		for i := range before {
			if before[i].Machine == machines.Pentium {
				shrink = 100 * float64(before[i].ORBytes-after[i].ORBytes) / float64(before[i].ORBytes)
			}
		}
	}
	b.ReportMetric(shrink, "%pentium-or-shrink")
}

// BenchmarkTable8_DominatedOptionPruning regenerates Table 8 and reports
// the PA7100 options/attempt after pruning the duplicated memory option.
func BenchmarkTable8_DominatedOptionPruning(b *testing.B) {
	var after float64
	for i := 0; i < b.N; i++ {
		row, err := experiments.Table8(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		after = row.OptionsAfter
	}
	b.ReportMetric(after, "options/attempt-after")
}

// BenchmarkTable9_BitVectorSize regenerates Table 9 and reports the
// Pentium OR-form size reduction from packing.
func BenchmarkTable9_BitVectorSize(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table9()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.Pentium {
				reduction = 100 * (r.ORBefore - r.ORAfter) / r.ORBefore
			}
		}
	}
	b.ReportMetric(reduction, "%pentium-size-reduced")
}

// BenchmarkTable10_BitVectorChecks regenerates Table 10 and reports the
// Pentium checks/attempt reduction (paper 42.1%).
func BenchmarkTable10_BitVectorChecks(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table10(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.Pentium {
				reduction = 100 * (r.ORBefore - r.ORAfter) / r.ORBefore
			}
		}
	}
	b.ReportMetric(reduction, "%pentium-checks-reduced")
}

// BenchmarkTable11_TimeShiftSize regenerates Table 11 and reports the
// SuperSPARC OR-form size reduction (paper 37.1%).
func BenchmarkTable11_TimeShiftSize(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table11()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.SuperSPARC {
				reduction = 100 * (r.ORBefore - r.ORAfter) / r.ORBefore
			}
		}
	}
	b.ReportMetric(reduction, "%supersparc-size-reduced")
}

// BenchmarkTable12_TimeShiftChecks regenerates Table 12 and reports the
// K5 AND/OR checks/option after the transformation (paper 1.01).
func BenchmarkTable12_TimeShiftChecks(b *testing.B) {
	var cpo float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table12(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.K5 {
				cpo = r.AOChecksPerOption
			}
		}
	}
	b.ReportMetric(cpo, "k5-checks/option")
}

// BenchmarkTable13_AndOrOrdering regenerates Table 13 and reports the
// SuperSPARC options/attempt reduction from conflict-detection ordering
// (paper 32.2%).
func BenchmarkTable13_AndOrOrdering(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table13(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.SuperSPARC {
				reduction = 100 * (r.OptionsBefore - r.OptionsAfter) / r.OptionsBefore
			}
		}
	}
	b.ReportMetric(reduction, "%supersparc-options-reduced")
}

// BenchmarkTable14_AggregateSize regenerates Table 14 and reports the K5's
// aggregate size reduction for the fully optimized AND/OR form (paper
// 99.0%).
func BenchmarkTable14_AggregateSize(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table14()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.K5 {
				reduction = r.AOReduction()
			}
		}
	}
	b.ReportMetric(reduction, "%k5-size-reduced")
}

// BenchmarkTable15_AggregateChecks regenerates Table 15 and reports the
// SuperSPARC aggregate checks reduction (paper 90.1%).
func BenchmarkTable15_AggregateChecks(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table15(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Machine == machines.SuperSPARC {
				reduction = r.AOReduction()
			}
		}
	}
	b.ReportMetric(reduction, "%supersparc-checks-reduced")
}

// BenchmarkSchedulerThroughput measures raw scheduler speed — operations
// scheduled per second — for each machine, comparing the unoptimized
// traditional OR representation against the fully optimized AND/OR form.
// This is the paper's actual payoff: resource-constraint checking is in
// the compiler's inner loop, so fewer checks is compile-time speed.
func BenchmarkSchedulerThroughput(b *testing.B) {
	configs := []struct {
		tag   string
		form  lowlevel.Form
		level opt.Level
	}{
		{"or-unoptimized", lowlevel.FormOR, opt.LevelNone},
		{"andor-full", lowlevel.FormAndOr, opt.LevelFull},
	}
	for _, name := range machines.All {
		for _, cfg := range configs {
			b.Run(string(name)+"/"+cfg.tag, func(b *testing.B) {
				var totalOps int
				for i := 0; i < b.N; i++ {
					res, err := experiments.Run(experiments.RunConfig{
						Machine: name,
						Form:    cfg.form,
						Level:   cfg.level,
						Params:  benchParams,
					})
					if err != nil {
						b.Fatal(err)
					}
					totalOps = res.TotalOps
				}
				b.ReportMetric(float64(totalOps)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			})
		}
	}
}

// BenchmarkCompileAndOptimize measures MDES compilation itself (parse,
// analyze, compile, full pipeline) for the largest description.
func BenchmarkCompileAndOptimize(b *testing.B) {
	for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
		b.Run(form.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, ll, err := experiments.CompileMachine(machines.K5, form, opt.LevelFull)
				if err != nil {
					b.Fatal(err)
				}
				_ = ll
			}
		})
	}
}
