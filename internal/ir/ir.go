// Package ir provides the small assembly-level intermediate representation
// the multi-platform list scheduler consumes: operations with register
// operands grouped into basic blocks, and the dependence DAG (flow, anti,
// output, memory and control edges) built from them.
package ir

import "fmt"

// MemKind classifies an operation's memory behaviour.
type MemKind int

const (
	MemNone MemKind = iota
	MemLoad
	MemStore
)

// Operation is one assembly operation.
type Operation struct {
	ID     int
	Opcode string // must name an operation in the target MDES
	Dests  []int  // destination register numbers
	Srcs   []int  // source register numbers
	Mem    MemKind
	Branch bool
	// Cascaded marks an operation the code generator has identified as a
	// cascade candidate (e.g. the SuperSPARC's same-cycle flow-dependent
	// IALU pairing; paper §2): its flow edges carry distance 0 and the
	// scheduler uses the opcode's cascaded reservation class.
	Cascaded bool
}

func (o *Operation) String() string {
	return fmt.Sprintf("%d:%s d%v s%v", o.ID, o.Opcode, o.Dests, o.Srcs)
}

// Block is a basic block: a straight-line operation sequence, optionally
// ending in a branch.
type Block struct {
	Ops []*Operation
}

// DepKind classifies dependence edges.
type DepKind int

const (
	DepFlow DepKind = iota
	DepAnti
	DepOutput
	DepMem
	DepControl
)

func (k DepKind) String() string {
	switch k {
	case DepFlow:
		return "flow"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	case DepMem:
		return "mem"
	case DepControl:
		return "control"
	}
	return "?"
}

// Edge is a dependence from one operation to another with a minimum issue
// distance in cycles: issue(To) >= issue(From) + MinDist.
type Edge struct {
	From, To int
	Kind     DepKind
	MinDist  int
}

// Graph is the dependence DAG over one block's operations.
type Graph struct {
	Block *Block
	// Succs[i] and Preds[i] list the edges leaving/entering operation i
	// (indices are positions within Block.Ops, which equal Operation.IDs
	// assigned by Renumber).
	Succs [][]Edge
	Preds [][]Edge
}

// Renumber assigns sequential IDs matching slice positions. IDs are
// display/debug metadata only — the graph builder and schedulers identify
// operations by slice position. Call it when constructing a block; the
// read paths never mutate a block, so one block can be scheduled from
// many goroutines concurrently.
func (b *Block) Renumber() {
	for i, op := range b.Ops {
		op.ID = i
	}
}

// LatencyFunc returns the result latency of an opcode.
type LatencyFunc func(opcode string) int

// Timing provides dependence distances with operand-level precision:
// FlowDist may account for source-operand sample times and forwarding
// paths (bypasses), not just producer latency.
type Timing interface {
	FlowDist(producer, consumer *Operation) int
	Latency(opcode string) int
}

// latencyTiming adapts a plain LatencyFunc: flow distance = producer
// latency.
type latencyTiming struct{ lat LatencyFunc }

func (t latencyTiming) FlowDist(producer, _ *Operation) int { return t.lat(producer.Opcode) }
func (t latencyTiming) Latency(opcode string) int           { return t.lat(opcode) }

// BuildGraph constructs the dependence DAG for a block:
//
//   - flow (true) dependences from each register's last writer to its
//     readers, with distance = the writer's latency — except into cascaded
//     consumers, where the distance is 0 (same-cycle execution);
//   - anti dependences from readers to the next writer, distance 0;
//   - output dependences between successive writers, distance 1;
//   - memory edges: store→{load,store} distance 1, load→store distance 0
//     (no alias analysis: all memory operations conflict);
//   - control edges from every operation to the block's final branch,
//     distance 0, and from the branch to nothing (branches end blocks).
func BuildGraph(b *Block, latency LatencyFunc) *Graph {
	return BuildGraphTiming(b, latencyTiming{lat: latency})
}

// BuildGraphTiming is BuildGraph with operand-level flow distances. It
// treats the block as read-only (no renumbering), so shared blocks may be
// graphed and scheduled concurrently.
func BuildGraphTiming(b *Block, tm Timing) *Graph {
	g := &Graph{
		Block: b,
		Succs: make([][]Edge, len(b.Ops)),
		Preds: make([][]Edge, len(b.Ops)),
	}
	add := func(from, to int, kind DepKind, dist int) {
		if from == to {
			return
		}
		e := Edge{From: from, To: to, Kind: kind, MinDist: dist}
		g.Succs[from] = append(g.Succs[from], e)
		g.Preds[to] = append(g.Preds[to], e)
	}

	lastWriter := map[int]int{}     // reg -> op index
	readersSince := map[int][]int{} // reg -> readers since last write
	lastStore := -1
	var loadsSince []int

	for i, op := range b.Ops {
		// Flow and anti dependences via registers.
		for _, r := range op.Srcs {
			if w, ok := lastWriter[r]; ok {
				dist := tm.FlowDist(b.Ops[w], op)
				if op.Cascaded {
					dist = 0
				}
				add(w, i, DepFlow, dist)
			}
			readersSince[r] = append(readersSince[r], i)
		}
		for _, r := range op.Dests {
			for _, rd := range readersSince[r] {
				add(rd, i, DepAnti, 0)
			}
			if w, ok := lastWriter[r]; ok {
				add(w, i, DepOutput, 1)
			}
			lastWriter[r] = i
			readersSince[r] = nil
		}
		// Memory ordering.
		switch op.Mem {
		case MemLoad:
			if lastStore >= 0 {
				add(lastStore, i, DepMem, 1)
			}
			loadsSince = append(loadsSince, i)
		case MemStore:
			if lastStore >= 0 {
				add(lastStore, i, DepMem, 1)
			}
			for _, l := range loadsSince {
				add(l, i, DepMem, 0)
			}
			lastStore = i
			loadsSince = nil
		}
		// Control: everything before a branch must issue no later.
		if op.Branch {
			for j := 0; j < i; j++ {
				add(j, i, DepControl, 0)
			}
		}
	}
	return g
}

// Height returns, per operation, the latency-weighted longest path to any
// DAG sink — the classic list-scheduling priority.
func (g *Graph) Height(latency LatencyFunc) []int {
	n := len(g.Block.Ops)
	h := make([]int, n)
	// Operations are in topological order (edges only go forward).
	for i := n - 1; i >= 0; i-- {
		best := latency(g.Block.Ops[i].Opcode)
		for _, e := range g.Succs[i] {
			if v := e.MinDist + h[e.To]; v > best {
				best = v
			}
		}
		h[i] = best
	}
	return h
}

// Validate checks that edges are forward-only and acyclic by construction.
func (g *Graph) Validate() error {
	for i, edges := range g.Succs {
		for _, e := range edges {
			if e.From != i {
				return fmt.Errorf("ir: edge bookkeeping broken at op %d", i)
			}
			if e.To <= e.From {
				return fmt.Errorf("ir: backward edge %d -> %d", e.From, e.To)
			}
			if e.MinDist < 0 {
				return fmt.Errorf("ir: negative distance on %d -> %d", e.From, e.To)
			}
		}
	}
	return nil
}

// CheckSchedule verifies that issue cycles respect every dependence edge;
// it is used by tests and by the scheduler's self-check mode.
func (g *Graph) CheckSchedule(issue []int) error {
	if len(issue) != len(g.Block.Ops) {
		return fmt.Errorf("ir: schedule length %d != %d ops", len(issue), len(g.Block.Ops))
	}
	for i, edges := range g.Succs {
		for _, e := range edges {
			if issue[e.To] < issue[i]+e.MinDist {
				return fmt.Errorf("ir: %s edge %d->%d violated: %d < %d+%d",
					e.Kind, i, e.To, issue[e.To], issue[i], e.MinDist)
			}
		}
	}
	return nil
}
