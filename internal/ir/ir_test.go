package ir

import (
	"testing"
)

func lat1(string) int { return 1 }

func op(opcode string, dests, srcs []int) *Operation {
	return &Operation{Opcode: opcode, Dests: dests, Srcs: srcs}
}

func TestFlowDependence(t *testing.T) {
	b := &Block{Ops: []*Operation{
		op("ADD", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{1}),
	}}
	g := BuildGraph(b, func(string) int { return 3 })
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Succs[0]) != 1 {
		t.Fatalf("edges from op0 = %v", g.Succs[0])
	}
	e := g.Succs[0][0]
	if e.Kind != DepFlow || e.MinDist != 3 || e.To != 1 {
		t.Fatalf("edge = %+v", e)
	}
	if len(g.Preds[1]) != 1 {
		t.Fatalf("preds of op1 = %v", g.Preds[1])
	}
}

func TestCascadedFlowDistanceZero(t *testing.T) {
	b := &Block{Ops: []*Operation{
		op("ADD", []int{1}, []int{0}),
		{Opcode: "ADD", Dests: []int{2}, Srcs: []int{1}, Cascaded: true},
	}}
	g := BuildGraph(b, lat1)
	if g.Succs[0][0].MinDist != 0 {
		t.Fatalf("cascaded consumer distance = %d, want 0", g.Succs[0][0].MinDist)
	}
}

func TestAntiAndOutputDependences(t *testing.T) {
	b := &Block{Ops: []*Operation{
		op("ADD", []int{1}, []int{0}), // writes r1
		op("ADD", []int{2}, []int{1}), // reads r1
		op("ADD", []int{1}, []int{3}), // rewrites r1: anti from op1, output from op0
	}}
	g := BuildGraph(b, lat1)
	var anti, output bool
	for _, e := range g.Preds[2] {
		if e.Kind == DepAnti && e.From == 1 && e.MinDist == 0 {
			anti = true
		}
		if e.Kind == DepOutput && e.From == 0 && e.MinDist == 1 {
			output = true
		}
	}
	if !anti || !output {
		t.Fatalf("preds of op2 = %v", g.Preds[2])
	}
}

func TestMemoryOrdering(t *testing.T) {
	b := &Block{Ops: []*Operation{
		{Opcode: "LD", Dests: []int{1}, Srcs: []int{0}, Mem: MemLoad},
		{Opcode: "ST", Srcs: []int{1, 2}, Mem: MemStore},
		{Opcode: "LD", Dests: []int{3}, Srcs: []int{0}, Mem: MemLoad},
		{Opcode: "ST", Srcs: []int{3, 4}, Mem: MemStore},
	}}
	g := BuildGraph(b, lat1)
	find := func(from, to int, kind DepKind) *Edge {
		for _, e := range g.Succs[from] {
			if e.To == to && e.Kind == kind {
				return &e
			}
		}
		return nil
	}
	if e := find(0, 1, DepMem); e == nil || e.MinDist != 0 {
		t.Fatalf("load->store edge missing/wrong: %v", g.Succs[0])
	}
	if e := find(1, 2, DepMem); e == nil || e.MinDist != 1 {
		t.Fatalf("store->load edge missing/wrong: %v", g.Succs[1])
	}
	if e := find(1, 3, DepMem); e == nil || e.MinDist != 1 {
		t.Fatalf("store->store edge missing: %v", g.Succs[1])
	}
}

func TestBranchControlEdges(t *testing.T) {
	b := &Block{Ops: []*Operation{
		op("ADD", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{0}),
		{Opcode: "BR", Branch: true},
	}}
	g := BuildGraph(b, lat1)
	if len(g.Preds[2]) != 2 {
		t.Fatalf("branch preds = %v", g.Preds[2])
	}
	for _, e := range g.Preds[2] {
		if e.Kind != DepControl || e.MinDist != 0 {
			t.Fatalf("control edge = %+v", e)
		}
	}
}

func TestHeight(t *testing.T) {
	// Chain: op0 -(2)-> op1 -(1)-> op2, latencies 2,1,1.
	latency := func(opc string) int {
		if opc == "MUL" {
			return 2
		}
		return 1
	}
	b := &Block{Ops: []*Operation{
		op("MUL", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{1}),
		op("ADD", []int{3}, []int{2}),
	}}
	g := BuildGraph(b, latency)
	h := g.Height(latency)
	// h[2]=1, h[1]=1+1=2, h[0]=2+2=4.
	if h[0] != 4 || h[1] != 2 || h[2] != 1 {
		t.Fatalf("heights = %v", h)
	}
}

func TestHeightIndependentOps(t *testing.T) {
	b := &Block{Ops: []*Operation{
		op("ADD", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{0}),
	}}
	g := BuildGraph(b, lat1)
	h := g.Height(lat1)
	if h[0] != 1 || h[1] != 1 {
		t.Fatalf("heights = %v", h)
	}
	if len(g.Succs[0]) != 0 {
		t.Fatalf("independent readers got edges: %v", g.Succs[0])
	}
}

func TestCheckSchedule(t *testing.T) {
	b := &Block{Ops: []*Operation{
		op("ADD", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{1}),
	}}
	g := BuildGraph(b, lat1)
	if err := g.CheckSchedule([]int{0, 1}); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
	if err := g.CheckSchedule([]int{0, 0}); err == nil {
		t.Fatalf("illegal schedule accepted")
	}
	if err := g.CheckSchedule([]int{0}); err == nil {
		t.Fatalf("short schedule accepted")
	}
}

func TestRenumber(t *testing.T) {
	b := &Block{Ops: []*Operation{op("A", nil, nil), op("B", nil, nil)}}
	b.Ops[0].ID = 99
	b.Renumber()
	if b.Ops[0].ID != 0 || b.Ops[1].ID != 1 {
		t.Fatalf("IDs = %d, %d", b.Ops[0].ID, b.Ops[1].ID)
	}
}

func TestStringers(t *testing.T) {
	o := op("ADD", []int{1}, []int{2, 3})
	if o.String() == "" {
		t.Fatalf("empty op string")
	}
	kinds := []DepKind{DepFlow, DepAnti, DepOutput, DepMem, DepControl, DepKind(9)}
	want := []string{"flow", "anti", "output", "mem", "control", "?"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("DepKind(%d).String() = %q", k, k.String())
		}
	}
}
