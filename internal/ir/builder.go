package ir

// Builder is a reusable dependence-graph constructor: it produces exactly
// the edges, in exactly the order, of BuildGraphTiming, but keeps every
// piece of construction scratch — per-register writer/reader tables,
// edge-list backings, the Graph itself — alive between blocks, so
// steady-state graph building allocates only when a block needs more
// capacity than any before it.
//
// Register tables are epoch-stamped instead of cleared: each Build bumps
// an epoch counter and a table entry is live only when its stamp matches,
// so resetting costs nothing regardless of how many registers earlier
// blocks touched. Blocks with negative register numbers (outside the
// dense table) fall back to the map-based BuildGraphTiming.
//
// The returned Graph borrows the builder's backings and is valid until
// the next Build. A Builder serves one goroutine at a time.
type Builder struct {
	graph Graph
	succs [][]Edge
	preds [][]Edge

	lastWriter  []int32
	writerEpoch []uint32
	readers     [][]int32
	readerEpoch []uint32
	epoch       uint32

	loadsSince []int32
}

// Build constructs the block's dependence graph (see BuildGraphTiming for
// the edge rules), reusing the builder's scratch.
func (bl *Builder) Build(b *Block, tm Timing) *Graph {
	n := len(b.Ops)
	maxReg := -1
	for _, op := range b.Ops {
		for _, r := range op.Srcs {
			if r < 0 {
				return BuildGraphTiming(b, tm)
			}
			if r > maxReg {
				maxReg = r
			}
		}
		for _, r := range op.Dests {
			if r < 0 {
				return BuildGraphTiming(b, tm)
			}
			if r > maxReg {
				maxReg = r
			}
		}
	}
	for len(bl.lastWriter) <= maxReg {
		bl.lastWriter = append(bl.lastWriter, 0)
		bl.writerEpoch = append(bl.writerEpoch, 0)
		bl.readers = append(bl.readers, nil)
		bl.readerEpoch = append(bl.readerEpoch, 0)
	}
	bl.epoch++
	if bl.epoch == 0 {
		// Stamp wrap: stale entries could alias the fresh epoch, so clear
		// every stamp once per 2^32 builds.
		for i := range bl.writerEpoch {
			bl.writerEpoch[i] = 0
			bl.readerEpoch[i] = 0
		}
		bl.epoch = 1
	}
	epoch := bl.epoch

	if cap(bl.succs) < n {
		// Carry the old edge-list backings into the wider table so their
		// accumulated capacity is not lost.
		succs := make([][]Edge, n)
		preds := make([][]Edge, n)
		copy(succs, bl.succs[:cap(bl.succs)])
		copy(preds, bl.preds[:cap(bl.preds)])
		bl.succs, bl.preds = succs, preds
	}
	bl.succs = bl.succs[:n]
	bl.preds = bl.preds[:n]
	for i := 0; i < n; i++ {
		bl.succs[i] = bl.succs[i][:0]
		bl.preds[i] = bl.preds[i][:0]
	}

	add := func(from, to int, kind DepKind, dist int) {
		if from == to {
			return
		}
		e := Edge{From: from, To: to, Kind: kind, MinDist: dist}
		bl.succs[from] = append(bl.succs[from], e)
		bl.preds[to] = append(bl.preds[to], e)
	}

	lastStore := -1
	bl.loadsSince = bl.loadsSince[:0]

	for i, op := range b.Ops {
		for _, r := range op.Srcs {
			if bl.writerEpoch[r] == epoch {
				w := int(bl.lastWriter[r])
				dist := tm.FlowDist(b.Ops[w], op)
				if op.Cascaded {
					dist = 0
				}
				add(w, i, DepFlow, dist)
			}
			if bl.readerEpoch[r] != epoch {
				bl.readers[r] = bl.readers[r][:0]
				bl.readerEpoch[r] = epoch
			}
			bl.readers[r] = append(bl.readers[r], int32(i))
		}
		for _, r := range op.Dests {
			if bl.readerEpoch[r] == epoch {
				for _, rd := range bl.readers[r] {
					add(int(rd), i, DepAnti, 0)
				}
			}
			if bl.writerEpoch[r] == epoch {
				add(int(bl.lastWriter[r]), i, DepOutput, 1)
			}
			bl.lastWriter[r] = int32(i)
			bl.writerEpoch[r] = epoch
			bl.readers[r] = bl.readers[r][:0]
			bl.readerEpoch[r] = epoch
		}
		switch op.Mem {
		case MemLoad:
			if lastStore >= 0 {
				add(lastStore, i, DepMem, 1)
			}
			bl.loadsSince = append(bl.loadsSince, int32(i))
		case MemStore:
			if lastStore >= 0 {
				add(lastStore, i, DepMem, 1)
			}
			for _, l := range bl.loadsSince {
				add(int(l), i, DepMem, 0)
			}
			lastStore = i
			bl.loadsSince = bl.loadsSince[:0]
		}
		if op.Branch {
			for j := 0; j < i; j++ {
				add(j, i, DepControl, 0)
			}
		}
	}

	bl.graph = Graph{Block: b, Succs: bl.succs, Preds: bl.preds}
	return &bl.graph
}
