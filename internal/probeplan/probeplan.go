// Package probeplan compiles a frozen low-level MDES into a flat probe
// program: every constraint's AND-of-OR-trees is lowered into contiguous
// span arrays of packed probe words that the checker walks by slice
// iteration, with no per-node pointer chasing on the hot path.
//
// The compilation is a pure re-layout, not a re-optimization: each option
// emits exactly the probe sequence the description already carries — one
// word per CycleMask when the option is bit-vector packed, one single-bit
// word per scalar Usage otherwise — so a probe-plan Check performs the
// same Attempts, OptionsChecked, ResourceChecks and Conflicts accounting
// as the RU-map reference walk, and the differential harness can require
// byte-identical schedules *and* identical probe counts across the two
// backends. What changes is only where the bytes live: spans index into
// three flat arrays (constraint → trees → options → words) instead of
// `[]*Tree` / `[]*Option` pointer graphs, and the reservation window is a
// single row-major []uint64 instead of a slice of bitsets.
package probeplan

import (
	"fmt"

	"mdes/internal/bitset"
	"mdes/internal/lowlevel"
)

// Word is one packed probe: test Mask against word Widx of the reservation
// row at (issue + Time). For scalar (unpacked) options Mask has exactly one
// bit set; for packed options it is the option's CycleMask verbatim. It is
// an alias of lowlevel.PlanWord — the same probe words are persisted
// verbatim inside the flat arena format (lowlevel.ArenaPlan), so an
// arena-backed description's spans are adopted without conversion.
type Word = lowlevel.PlanWord

// Plan is the compiled probe program for one frozen MDES. It is immutable
// after Compile and shared read-only by any number of Probers.
type Plan struct {
	// NumRes and RowWords size the reservation rows every Prober keeps:
	// RowWords 64-bit words per cycle.
	NumRes   int
	RowWords int

	// Flat span arrays, all half-open index ranges:
	//
	//	constraint ci  → trees   treeStart[conStart[ci]   : conStart[ci+1]]
	//	plan tree  ti  → options optStart[treeStart-range]
	//	plan option oi → words   words[optStart[oi] : optStart[oi+1]]
	//
	// conStart/treeStart/optStart each carry one trailing sentinel so a
	// span's end is always the next entry.
	words     []Word
	optStart  []int32
	treeStart []int32
	conStart  []int32

	// cons is the positional copy of MDES.Constraints the plan was emitted
	// from; probes verify the incoming constraint pointer against it before
	// trusting Constraint.Index.
	cons []*lowlevel.Constraint

	// maxTrees is the widest constraint, sizing per-Prober scratch.
	maxTrees int
}

// Compile lowers a compiled MDES into a flat probe plan. It fails when a
// constraint's recorded Index disagrees with its position in
// m.Constraints — hand-assembled descriptions and sub-MDES views that
// reuse another description's constraint pointers cannot be planned,
// because the probe path maps *Constraint to its spans through that index.
func Compile(m *lowlevel.MDES) (*Plan, error) {
	p := &Plan{
		NumRes:   m.NumResources,
		RowWords: (m.NumResources + bitset.WordBits - 1) / bitset.WordBits,
		cons:     make([]*lowlevel.Constraint, len(m.Constraints)),
	}
	if p.RowWords == 0 {
		p.RowWords = 1
	}
	// Arena-backed descriptions carry their probe plan precompiled
	// (lowlevel.ArenaPlan, persisted in the MDAR buffer and aliased at
	// open): adopt the spans verbatim and skip emission entirely. The
	// constraint-index verification below still runs — the plan's spans
	// are positional, so the same stale-Index contract applies.
	if ap := m.ArenaPlan(); ap != nil && ap.RowWords == p.RowWords {
		for ci, con := range m.Constraints {
			if con.Index != ci {
				return nil, fmt.Errorf("probeplan: constraint %d (%s) carries index %d: description was assembled outside Compile/Decode and cannot be planned",
					ci, con.Name, con.Index)
			}
			p.cons[ci] = con
			if len(con.Trees) > p.maxTrees {
				p.maxTrees = len(con.Trees)
			}
		}
		p.words = ap.Words
		p.optStart = ap.OptStart
		p.treeStart = ap.TreeStart
		p.conStart = ap.ConStart
		return p, nil
	}
	for ci, con := range m.Constraints {
		if con.Index != ci {
			return nil, fmt.Errorf("probeplan: constraint %d (%s) carries index %d: description was assembled outside Compile/Decode and cannot be planned",
				ci, con.Name, con.Index)
		}
		p.cons[ci] = con
		p.conStart = append(p.conStart, int32(len(p.treeStart)))
		if len(con.Trees) > p.maxTrees {
			p.maxTrees = len(con.Trees)
		}
		for _, tree := range con.Trees {
			p.treeStart = append(p.treeStart, int32(len(p.optStart)))
			for _, o := range tree.Options {
				p.optStart = append(p.optStart, int32(len(p.words)))
				if o.Masks != nil {
					for _, cm := range o.Masks {
						p.words = append(p.words, Word{Time: cm.Time, Widx: cm.Word, Mask: cm.Mask})
					}
				} else {
					for _, u := range o.Usages {
						p.words = append(p.words, Word{
							Time: u.Time,
							Widx: u.Res / bitset.WordBits,
							Mask: 1 << uint(u.Res%bitset.WordBits),
						})
					}
				}
			}
		}
	}
	// Trailing sentinels: every span's end is the next start.
	p.conStart = append(p.conStart, int32(len(p.treeStart)))
	p.treeStart = append(p.treeStart, int32(len(p.optStart)))
	p.optStart = append(p.optStart, int32(len(p.words)))
	return p, nil
}

// NumWords returns the total number of probe words in the plan (a size
// statistic for reports and tests).
func (p *Plan) NumWords() int { return len(p.words) }

// MaxTrees returns the widest constraint's tree count.
func (p *Plan) MaxTrees() int { return p.maxTrees }

// spanFor maps a constraint pointer to its tree span, panicking when the
// pointer is not the plan's constraint at its recorded index — the same
// contract violation rumap surfaces as a double-reservation panic, caught
// here before any probe trusts a stale Index.
func (p *Plan) spanFor(con *lowlevel.Constraint) (lo, hi int32) {
	ci := con.Index
	if ci < 0 || ci >= len(p.cons) || p.cons[ci] != con {
		panic(fmt.Sprintf("probeplan: constraint %q is not part of the planned description", con.Name))
	}
	return p.conStart[ci], p.conStart[ci+1]
}
