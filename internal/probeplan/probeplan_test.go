package probeplan

import (
	"strings"
	"testing"

	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/opt"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// tinySrc has a real structural hazard (one ALU, two decoders) plus an
// alternative class, so probes exercise both option fallback and conflict.
const tinySrc = `
machine Tiny {
    resource Decoder[2];
    resource ALU;
    resource MEM;

    class alu {
        use ALU @ 0;
        one_of Decoder[0..1] @ 0;
    }
    class mem {
        use MEM @ 0;
        use MEM @ 1;
        use ALU @ 1;
        one_of Decoder[0..1] @ 0;
    }
    operation ADD class alu latency 1;
    operation LD class mem latency 2;
}
`

// negSrc reserves a slot before the issue cycle, exercising the downward
// window growth path.
const negSrc = `
machine Neg {
    resource Decoder;
    resource ALU;

    class alu {
        use Decoder @ -1;
        use ALU @ 0;
    }
    operation ADD class alu latency 1;
}
`

func compile(t *testing.T, src string, form lowlevel.Form) *lowlevel.MDES {
	t.Helper()
	m, err := hmdes.Load("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return lowlevel.Compile(m, form)
}

func mustPlan(t *testing.T, m *lowlevel.MDES) *Plan {
	t.Helper()
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The plan must emit exactly the probe sequence the description carries:
// one word per scalar usage on the unpacked form, one word per cycle mask
// after bit-vector packing — never a re-packed or merged layout of its own.
func TestCompileEmitsDescriptionVerbatim(t *testing.T) {
	ll := compile(t, tinySrc, lowlevel.FormAndOr)
	wantScalar := 0
	for _, con := range ll.Constraints {
		for _, tree := range con.Trees {
			for _, o := range tree.Options {
				wantScalar += len(o.Usages)
			}
		}
	}
	p := mustPlan(t, ll)
	if p.NumWords() != wantScalar {
		t.Fatalf("scalar plan has %d words, description has %d usages", p.NumWords(), wantScalar)
	}

	// Packing merges same-cycle usages within one option, so the shrink is
	// visible on the OR form, whose options carry full cross-product usage
	// lists (the AND/OR form holds one usage per option here).
	ll = compile(t, tinySrc, lowlevel.FormOR)
	scalarOR := mustPlan(t, ll).NumWords()
	opt.PackBitVectors(ll)
	wantPacked := 0
	for _, con := range ll.Constraints {
		for _, tree := range con.Trees {
			for _, o := range tree.Options {
				if o.Masks != nil {
					wantPacked += len(o.Masks)
				} else {
					wantPacked += len(o.Usages)
				}
			}
		}
	}
	p = mustPlan(t, ll)
	if p.NumWords() != wantPacked {
		t.Fatalf("packed plan has %d words, description has %d masks", p.NumWords(), wantPacked)
	}
	if wantPacked >= scalarOR {
		t.Fatalf("packing did not shrink the probe program (%d -> %d)", scalarOR, wantPacked)
	}
	if p.MaxTrees() < 1 {
		t.Fatalf("MaxTrees = %d", p.MaxTrees())
	}
}

// Check must agree with the RU-map reference walk probe for probe — the
// same answers and the exact same counter accounting — across a mixed
// sequence of reserves and releases on both forms and both packing levels.
func TestCheckMatchesRUMap(t *testing.T) {
	for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
		for _, packed := range []bool{false, true} {
			ll := compile(t, tinySrc, form)
			if packed {
				opt.PackBitVectors(ll)
			}
			p := mustPlan(t, ll)
			pb := NewProber(p)
			ru := rumap.New(ll.NumResources)

			var cp, cr stats.Counters
			var selsP, selsR []rumap.Selection
			step := func(ci, cycle int) {
				con := ll.Constraints[ci]
				sp, okP := pb.Check(con, cycle, &cp)
				sr, okR := ru.Check(con, cycle, &cr)
				if okP != okR {
					t.Fatalf("form=%v packed=%v con=%d cycle=%d: probeplan=%v rumap=%v",
						form, packed, ci, cycle, okP, okR)
				}
				if cp != cr {
					t.Fatalf("form=%v packed=%v con=%d cycle=%d: counters diverged: plan=%+v rumap=%+v",
						form, packed, ci, cycle, cp, cr)
				}
				if okP {
					if len(sp.Chosen) != len(sr.Chosen) {
						t.Fatalf("selection widths diverged: %d vs %d", len(sp.Chosen), len(sr.Chosen))
					}
					for i := range sp.Chosen {
						if sp.Chosen[i] != sr.Chosen[i] {
							t.Fatalf("choice %d diverged: %d vs %d", i, sp.Chosen[i], sr.Chosen[i])
						}
					}
					pb.Reserve(sp)
					ru.Reserve(sr)
					selsP = append(selsP, sp)
					selsR = append(selsR, sr)
				}
			}
			// Saturate cycle 0, spill into later cycles, release, re-probe.
			for i := 0; i < 6; i++ {
				step(i%len(ll.Constraints), i/2)
			}
			for i := range selsP {
				pb.Release(selsP[i])
				ru.Release(selsR[i])
			}
			step(0, 0)

			// The reserved-slot sets must match exactly.
			got := pb.AppendReservedSlots(nil)
			want := ru.AppendReservedSlots(nil)
			if len(got) != len(want) {
				t.Fatalf("slot counts diverged: %d vs %d", len(got), len(want))
			}
			wantSet := map[[2]int]bool{}
			for _, s := range want {
				wantSet[s] = true
			}
			for _, s := range got {
				if !wantSet[s] {
					t.Fatalf("probeplan holds slot %v the rumap does not", s)
				}
			}
		}
	}
}

// CheckWindow must be accounting-equivalent to the serial Check loop it
// replaces: the same first feasible cycle, the same selection, and the
// same counter deltas, whether or not the window contains a feasible cycle.
func TestCheckWindowMatchesSerial(t *testing.T) {
	ll := compile(t, tinySrc, lowlevel.FormAndOr)
	opt.PackBitVectors(ll)
	p := mustPlan(t, ll)
	batch := NewProber(p)
	serial := NewProber(p)
	con := ll.Constraints[0]

	// Fill cycles 0..2 so windows start with conflicts.
	for cycle := 0; cycle < 3; cycle++ {
		var c stats.Counters
		sb, ok := batch.Check(con, cycle, &c)
		if !ok {
			t.Fatalf("setup probe at %d failed", cycle)
		}
		batch.Reserve(sb)
		ss, _ := serial.Check(con, cycle, &c)
		serial.Reserve(ss)
	}

	for _, w := range [][2]int{{0, 6}, {0, 2}, {2, 2}, {-3, 1}, {3, 64}} {
		var cb, cs stats.Counters
		selB, atB, okB := batch.CheckWindow(con, w[0], w[1], &cb)

		okS := false
		atS := 0
		var selS rumap.Selection
		for cycle := w[0]; cycle < w[1]; cycle++ {
			if sel, ok := serial.Check(con, cycle, &cs); ok {
				selS, atS, okS = sel, cycle, true
				break
			}
		}
		if okB != okS || (okB && atB != atS) {
			t.Fatalf("window %v: batch=(%v,%d) serial=(%v,%d)", w, okB, atB, okS, atS)
		}
		if cb != cs {
			t.Fatalf("window %v: counters diverged: batch=%+v serial=%+v", w, cb, cs)
		}
		if okB {
			for i := range selB.Chosen {
				if selB.Chosen[i] != selS.Chosen[i] {
					t.Fatalf("window %v: choice %d diverged", w, i)
				}
			}
		}
	}
}

// Reserving a pre-issue slot must grow the window downward without
// disturbing existing reservations.
func TestNegativeCycleGrowth(t *testing.T) {
	ll := compile(t, negSrc, lowlevel.FormAndOr)
	p := mustPlan(t, ll)
	pb := NewProber(p)
	con := ll.Constraints[0]

	var c stats.Counters
	sel, ok := pb.Check(con, 0, &c)
	if !ok {
		t.Fatal("probe at 0 failed on empty window")
	}
	pb.Reserve(sel)
	// Decoder (res 0) is used at -1, ALU (res 1) at 0.
	if !pb.Busy(0, -1) || !pb.Busy(1, 0) {
		t.Fatalf("expected Decoder@-1 and ALU@0 busy")
	}
	// Issue far below the window: another downward growth.
	sel2, ok := pb.Check(con, -40, &c)
	if !ok {
		t.Fatal("probe at -40 failed")
	}
	pb.Reserve(sel2)
	if !pb.Busy(0, -41) || !pb.Busy(1, -40) {
		t.Fatalf("expected reservations at -41/-40 after growth")
	}
	if !pb.Busy(0, -1) || !pb.Busy(1, 0) {
		t.Fatalf("downward growth corrupted existing reservations")
	}
	if _, ok := pb.Check(con, -40, &c); ok {
		t.Fatalf("double issue at -40 accepted")
	}
}

func TestDoubleReservationPanics(t *testing.T) {
	ll := compile(t, tinySrc, lowlevel.FormAndOr)
	pb := NewProber(mustPlan(t, ll))
	var c stats.Counters
	sel, ok := pb.Check(ll.Constraints[0], 0, &c)
	if !ok {
		t.Fatal("probe failed")
	}
	pb.Reserve(sel)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("double Reserve did not panic")
		}
		if !strings.Contains(r.(string), "double reservation") {
			t.Fatalf("panic = %v", r)
		}
	}()
	pb.Reserve(sel)
}

// Selections must stay valid while later probes append to the arena — the
// query layer retains several before releasing them — and only Reset may
// invalidate them.
func TestSelectionsSurviveArenaGrowth(t *testing.T) {
	ll := compile(t, tinySrc, lowlevel.FormAndOr)
	pb := NewProber(mustPlan(t, ll))
	var c stats.Counters

	var sels []rumap.Selection
	var want [][]int
	for cycle := 0; cycle < 50; cycle++ {
		for ci := range ll.Constraints {
			sel, ok := pb.Check(ll.Constraints[ci], cycle, &c)
			if !ok {
				continue
			}
			pb.Reserve(sel)
			sels = append(sels, sel)
			want = append(want, append([]int(nil), sel.Chosen...))
		}
	}
	if len(sels) < 20 {
		t.Fatalf("only %d selections; arena growth not exercised", len(sels))
	}
	for i, sel := range sels {
		for j := range sel.Chosen {
			if sel.Chosen[j] != want[i][j] {
				t.Fatalf("selection %d corrupted by arena growth", i)
			}
		}
	}
}

// Hand-assembled descriptions whose constraints never went through
// Compile/Decode carry stale indices; the planner must reject them rather
// than probe through a wrong span table.
func TestCompileRejectsStaleIndex(t *testing.T) {
	ll := compile(t, tinySrc, lowlevel.FormAndOr)
	ll.Constraints[1].Index = 7
	defer func() { ll.Constraints[1].Index = 1 }()
	if _, err := Compile(ll); err == nil {
		t.Fatalf("Compile accepted a constraint with a stale index")
	}
}

// A constraint pointer from a different description must be caught at
// probe time even when its index happens to be in range.
func TestProbeRejectsForeignConstraint(t *testing.T) {
	ll := compile(t, tinySrc, lowlevel.FormAndOr)
	other := compile(t, tinySrc, lowlevel.FormAndOr)
	pb := NewProber(mustPlan(t, ll))
	defer func() {
		if recover() == nil {
			t.Fatalf("foreign constraint probe did not panic")
		}
	}()
	var c stats.Counters
	pb.Check(other.Constraints[0], 0, &c)
}
