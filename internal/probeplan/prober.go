package probeplan

import (
	"fmt"
	"math/bits"

	"mdes/internal/bitset"
	"mdes/internal/lowlevel"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// Prober is the per-context mutable half of the probe plan: a single
// row-major reservation window ([]uint64, Plan.RowWords words per cycle)
// plus the selection arena. A Prober serves one goroutine at a time; the
// Plan it walks is shared read-only.
//
// Selections returned by Check and CheckWindow borrow their Chosen slices
// from an append-only arena owned by the Prober and stay valid until the
// next Reset — long enough for the query layer, which retains several
// selections across probes before releasing them, and exactly the
// per-block lifetime the schedulers need. Reset recycles the arena; no
// steady-state Check allocates.
type Prober struct {
	plan *Plan

	// rows is the reservation window: nrows cycles starting at absolute
	// cycle base, plan.RowWords words each. A probe outside the window is
	// free (but still accounted), exactly like the RU map's lazy rows; the
	// window may extend to negative cycles for decode-stage usages.
	rows  []uint64
	base  int
	nrows int

	// chosen is the selection arena; scratch is one constraint's worth of
	// per-tree choices, copied into the arena only on success. zero is a
	// permanently-zero row used to extend the window upward.
	chosen  []int
	scratch []int
	zero    []uint64

	// The most recent failed Check stashes which tree it died on and the
	// plan word that blocked that tree's highest-priority option: the
	// failing probe already walked exactly the span Explain would re-walk,
	// so Explain reduces to one FirstBlocked on the stashed word, as long
	// as the window state is unchanged (any Reserve/Release/Reset
	// invalidates). The stash itself is five stores on the already-taken
	// failure branch, costing the metrics-off hot path nothing measurable.
	lastCon   *lowlevel.Constraint
	lastIssue int
	lastTi    int32
	lastTlo   int32
	lastWi    int32
	lastValid bool
}

// NewProber returns an empty prober over the compiled plan.
func NewProber(p *Plan) *Prober {
	return &Prober{
		plan:    p,
		scratch: make([]int, p.maxTrees),
		zero:    make([]uint64, p.RowWords),
	}
}

// Reset clears all reservations and recycles the selection arena,
// retaining storage. Selections from before the Reset become invalid.
func (p *Prober) Reset() {
	for i := range p.rows {
		p.rows[i] = 0
	}
	p.chosen = p.chosen[:0]
	p.lastValid = false
}

// Check tests whether the constraint can be satisfied at cycle issue,
// walking the plan's flat spans with the same scan order, short-circuit
// behavior and counter accounting as rumap.Map.Check. On success nothing
// is reserved until Reserve is called with the returned Selection.
func (p *Prober) Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (rumap.Selection, bool) {
	c.Attempts++
	tlo, thi := p.plan.spanFor(con)
	scratch := p.scratch[:thi-tlo]
	for ti := tlo; ti < thi; ti++ {
		olo, ohi := p.plan.treeStart[ti], p.plan.treeStart[ti+1]
		found := -1
		firstWi := int32(-1)
		for oi := olo; oi < ohi; oi++ {
			c.OptionsChecked++
			bw := p.optionProbe(oi, issue, c)
			if bw < 0 {
				found = int(oi - olo)
				break
			}
			if oi == olo {
				firstWi = bw
			}
		}
		if found < 0 {
			c.Conflicts++
			p.lastCon, p.lastIssue = con, issue
			p.lastTi, p.lastTlo = ti, tlo
			p.lastWi = firstWi
			p.lastValid = true
			return rumap.Selection{}, false
		}
		scratch[ti-tlo] = found
	}
	return p.commit(con, issue, scratch), true
}

// CheckWindow probes the half-open window of candidate issue cycles
// [lo, hi) in one flat pass, sliding the plan's packed words across the
// reservation rows, and returns the first satisfiable cycle. It is
// accounting-equivalent to calling Check on each cycle in order and
// stopping at the first success — one Attempt per cycle probed, the same
// short-circuits — so batch and serial paths produce identical counters
// as well as identical selections.
func (p *Prober) CheckWindow(con *lowlevel.Constraint, lo, hi int, c *stats.Counters) (rumap.Selection, int, bool) {
	tlo, thi := p.plan.spanFor(con)
	scratch := p.scratch[:thi-tlo]
	words := p.plan.words
	optStart, treeStart := p.plan.optStart, p.plan.treeStart
	rows, rowWords, base, nrows := p.rows, p.plan.RowWords, p.base, p.nrows
issue:
	for issue := lo; issue < hi; issue++ {
		c.Attempts++
		for ti := tlo; ti < thi; ti++ {
			found := -1
			for oi := treeStart[ti]; oi < treeStart[ti+1]; oi++ {
				c.OptionsChecked++
				free := true
				for wi := optStart[oi]; wi < optStart[oi+1]; wi++ {
					c.ResourceChecks++
					w := words[wi]
					r := issue + int(w.Time) - base
					if uint(r) < uint(nrows) && rows[r*rowWords+int(w.Widx)]&w.Mask != 0 {
						free = false
						break
					}
				}
				if free {
					found = int(oi - treeStart[ti])
					break
				}
			}
			if found < 0 {
				c.Conflicts++
				continue issue
			}
			scratch[ti-tlo] = found
		}
		return p.commit(con, issue, scratch), issue, true
	}
	return rumap.Selection{}, 0, false
}

// commit copies one successful probe's per-tree choices into the arena and
// builds its Selection; the full-capacity slice expression pins the arena
// segment so later appends can never alias it.
func (p *Prober) commit(con *lowlevel.Constraint, issue int, scratch []int) rumap.Selection {
	start := len(p.chosen)
	p.chosen = append(p.chosen, scratch...)
	return rumap.Selection{Constraint: con, Issue: issue, Chosen: p.chosen[start:len(p.chosen):len(p.chosen)]}
}

// optionProbe walks one option's word span, accounting one resource check
// per word; a probe outside the reservation window is free. It returns the
// index of the first blocking plan word, or -1 if the option is free.
func (p *Prober) optionProbe(opt int32, issue int, c *stats.Counters) int32 {
	words := p.plan.words
	rowWords := p.plan.RowWords
	for wi := p.plan.optStart[opt]; wi < p.plan.optStart[opt+1]; wi++ {
		c.ResourceChecks++
		w := words[wi]
		r := issue + int(w.Time) - p.base
		if uint(r) < uint(p.nrows) && bitset.WordIntersects(p.rows, r*rowWords+int(w.Widx), w.Mask) {
			return wi
		}
	}
	return -1
}

// Reserve applies a successful Selection, growing the reservation window
// as needed; it panics on a double reservation, since the caller must
// have checked first.
func (p *Prober) Reserve(sel rumap.Selection) {
	p.lastValid = false
	tlo, _ := p.plan.spanFor(sel.Constraint)
	for i, choice := range sel.Chosen {
		opt := p.plan.treeStart[tlo+int32(i)] + int32(choice)
		for wi := p.plan.optStart[opt]; wi < p.plan.optStart[opt+1]; wi++ {
			w := p.plan.words[wi]
			idx := p.rowIndex(sel.Issue+int(w.Time))*p.plan.RowWords + int(w.Widx)
			if bitset.WordIntersects(p.rows, idx, w.Mask) {
				panic(fmt.Sprintf("probeplan: double reservation at cycle %d", sel.Issue+int(w.Time)))
			}
			bitset.WordOr(p.rows, idx, w.Mask)
		}
	}
}

// Release undoes a previous Reserve; slots outside the current window
// were never materialized and need no clearing.
func (p *Prober) Release(sel rumap.Selection) {
	p.lastValid = false
	tlo, _ := p.plan.spanFor(sel.Constraint)
	for i, choice := range sel.Chosen {
		opt := p.plan.treeStart[tlo+int32(i)] + int32(choice)
		for wi := p.plan.optStart[opt]; wi < p.plan.optStart[opt+1]; wi++ {
			w := p.plan.words[wi]
			r := sel.Issue + int(w.Time) - p.base
			if uint(r) < uint(p.nrows) {
				bitset.WordAndNot(p.rows, r*p.plan.RowWords+int(w.Widx), w.Mask)
			}
		}
	}
}

// Explain attributes a failed Check exactly as rumap.Map.ExplainConflict:
// the first unsatisfiable tree's highest-priority option names the
// blocking slot; provenance falls back from the option to the tree.
func (p *Prober) Explain(con *lowlevel.Constraint, issue int) (rumap.Conflict, bool) {
	if p.lastValid && p.lastCon == con && p.lastIssue == issue && p.lastWi >= 0 {
		w := p.plan.words[p.lastWi]
		r := issue + int(w.Time) - p.base
		row := p.rows[r*p.plan.RowWords : (r+1)*p.plan.RowWords]
		if b := bitset.FirstBlocked(row, int(w.Widx), w.Mask); b >= 0 {
			tree := con.Trees[p.lastTi-p.lastTlo]
			src := tree.Options[0].Src
			if src == "" {
				src = tree.Src
			}
			return rumap.Conflict{Res: b, Time: int(w.Time), Tree: tree.Name, Src: src}, true
		}
	}
	tlo, thi := p.plan.spanFor(con)
	for ti := tlo; ti < thi; ti++ {
		satisfiable := false
		for oi := p.plan.treeStart[ti]; oi < p.plan.treeStart[ti+1]; oi++ {
			if p.optionFree(oi, issue) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			tree := con.Trees[ti-tlo]
			res, time, ok := p.optionBlocker(p.plan.treeStart[ti], issue)
			if !ok {
				return rumap.Conflict{}, false
			}
			src := tree.Options[0].Src
			if src == "" {
				src = tree.Src
			}
			return rumap.Conflict{Res: res, Time: time, Tree: tree.Name, Src: src}, true
		}
	}
	return rumap.Conflict{}, false
}

// BlockerRes returns the resource index Explain would attribute the most
// recent failed Check to, or -1: the provenance-free slice of Explain for
// metrics attribution, which needs only the resource — no tree name, no
// source string, no Conflict construction. The stashed blocking word makes
// the common case one FirstBlocked.
func (p *Prober) BlockerRes(con *lowlevel.Constraint, issue int) int {
	if p.lastValid && p.lastCon == con && p.lastIssue == issue && p.lastWi >= 0 {
		w := p.plan.words[p.lastWi]
		r := issue + int(w.Time) - p.base
		row := p.rows[r*p.plan.RowWords : (r+1)*p.plan.RowWords]
		if b := bitset.FirstBlocked(row, int(w.Widx), w.Mask); b >= 0 {
			return b
		}
	}
	if conf, ok := p.Explain(con, issue); ok {
		return conf.Res
	}
	return -1
}

// BlockerTreeRes returns the position (within the constraint) of the tree
// the most recent failed Check died on and the resource that blocked it:
// the conflict-profile slice of Explain, attributing tree + resource with
// no provenance strings. The stash makes the common case one FirstBlocked;
// res is -1 when the blocking slot cannot be pinned to a single resource
// (e.g. the blocking probe fell outside the stashed word's row).
func (p *Prober) BlockerTreeRes(con *lowlevel.Constraint, issue int) (int, int) {
	if p.lastValid && p.lastCon == con && p.lastIssue == issue {
		ti := int(p.lastTi - p.lastTlo)
		if p.lastWi >= 0 {
			w := p.plan.words[p.lastWi]
			r := issue + int(w.Time) - p.base
			if uint(r) < uint(p.nrows) {
				row := p.rows[r*p.plan.RowWords : (r+1)*p.plan.RowWords]
				if b := bitset.FirstBlocked(row, int(w.Widx), w.Mask); b >= 0 {
					return ti, b
				}
			}
		}
		return ti, -1
	}
	tlo, thi := p.plan.spanFor(con)
	for ti := tlo; ti < thi; ti++ {
		satisfiable := false
		for oi := p.plan.treeStart[ti]; oi < p.plan.treeStart[ti+1]; oi++ {
			if p.optionFree(oi, issue) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			res, _, ok := p.optionBlocker(p.plan.treeStart[ti], issue)
			if !ok {
				return int(ti - tlo), -1
			}
			return int(ti - tlo), res
		}
	}
	return -1, -1
}

// optionFree is optionProbe without instrumentation (Explain slow path).
func (p *Prober) optionFree(opt int32, issue int) bool {
	for wi := p.plan.optStart[opt]; wi < p.plan.optStart[opt+1]; wi++ {
		w := p.plan.words[wi]
		r := issue + int(w.Time) - p.base
		if uint(r) < uint(p.nrows) && bitset.WordIntersects(p.rows, r*p.plan.RowWords+int(w.Widx), w.Mask) {
			return false
		}
	}
	return true
}

// optionBlocker returns the first busy (resource, relative time) slot
// blocking the option at issue.
func (p *Prober) optionBlocker(opt int32, issue int) (res, time int, found bool) {
	for wi := p.plan.optStart[opt]; wi < p.plan.optStart[opt+1]; wi++ {
		w := p.plan.words[wi]
		r := issue + int(w.Time) - p.base
		if uint(r) < uint(p.nrows) {
			row := p.rows[r*p.plan.RowWords : (r+1)*p.plan.RowWords]
			if b := bitset.FirstBlocked(row, int(w.Widx), w.Mask); b >= 0 {
				return b, int(w.Time), true
			}
		}
	}
	return 0, 0, false
}

// rowIndex returns the window-relative row for an absolute cycle, growing
// the window as needed: downward by amortized-doubling prepend (like the
// RU map), upward through append's own growth.
func (p *Prober) rowIndex(cycle int) int {
	rw := p.plan.RowWords
	if p.nrows == 0 {
		p.base = cycle
		p.rows = append(p.rows, p.zero...)
		p.nrows = 1
		return 0
	}
	if cycle < p.base {
		grow := p.nrows
		if grow < p.base-cycle {
			grow = p.base - cycle
		}
		fresh := make([]uint64, (grow+p.nrows)*rw)
		copy(fresh[grow*rw:], p.rows)
		p.rows = fresh
		p.base -= grow
		p.nrows += grow
	}
	for cycle >= p.base+p.nrows {
		p.rows = append(p.rows, p.zero...)
		p.nrows++
	}
	return cycle - p.base
}

// Busy reports whether resource res is reserved at cycle (test support).
func (p *Prober) Busy(res, cycle int) bool {
	r := cycle - p.base
	if uint(r) >= uint(p.nrows) {
		return false
	}
	return p.rows[r*p.plan.RowWords+res/bitset.WordBits]&(1<<uint(res%bitset.WordBits)) != 0
}

// AppendReservedSlots appends every (resource, cycle) currently reserved
// to dst, matching rumap.Map.AppendReservedSlots for cross-backend
// reservation comparisons in tests.
func (p *Prober) AppendReservedSlots(dst [][2]int) [][2]int {
	for r := 0; r < p.nrows; r++ {
		cycle := p.base + r
		row := p.rows[r*p.plan.RowWords : (r+1)*p.plan.RowWords]
		for wi, w := range row {
			for w != 0 {
				dst = append(dst, [2]int{wi*bitset.WordBits + bits.TrailingZeros64(w), cycle})
				w &= w - 1
			}
		}
	}
	return dst
}
