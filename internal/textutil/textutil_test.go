package textutil

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.Row("alpha", 12)
	tb.Row("b", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "3.14") || strings.Contains(lines[3], "3.14159") {
		t.Fatalf("float not formatted to 2 decimals: %q", lines[3])
	}
	// All rows equal width at the separator.
	if len(lines[1]) < len(lines[0])-2 {
		t.Fatalf("separator too short: %q vs %q", lines[1], lines[0])
	}
}

func TestTableWideCell(t *testing.T) {
	tb := NewTable("A", "B")
	tb.Row("averyveryverylongname", 1)
	out := tb.String()
	if !strings.Contains(out, "averyveryverylongname") {
		t.Fatalf("wide cell truncated:\n%s", out)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(200, 100); got != "50.0%" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(100, 110); got != "-10.0%" {
		t.Fatalf("negative Percent = %q", got)
	}
	if got := Percent(0, 5); got != "n/a" {
		t.Fatalf("zero-base Percent = %q", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(200, 100, 10); got != "##########" {
		t.Fatalf("clamped Bar = %q", got)
	}
	if got := Bar(-1, 100, 10); got != "" {
		t.Fatalf("negative Bar = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Fatalf("zero-max Bar = %q", got)
	}
}
