// Package textutil renders aligned ASCII tables for the experiment harness
// and command-line tools.
package textutil

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v, floats with two
// decimals.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numbers, left-align first column.
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Percent formats a ratio change as the paper does: positive = reduction.
func Percent(before, after float64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*(before-after)/before)
}

// Bar renders a simple horizontal bar of width proportional to value/max.
func Bar(value, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}
