package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"mdes/internal/textutil"
)

// SizeMetrics is a point-in-time size measurement of a machine
// description under the byte-accounting model of lowlevel/size.go,
// copied into plain data so the ledger (and everything importing obs)
// carries no dependency on the representation packages.
type SizeMetrics struct {
	Options      int `json:"options"`
	Trees        int `json:"trees"`
	Classes      int `json:"classes"`
	ScalarUsages int `json:"scalar_usages"`
	MaskWords    int `json:"mask_words"`
	OptionBytes  int `json:"option_bytes"`
	TreeBytes    int `json:"tree_bytes"`
	AndBytes     int `json:"and_bytes"`
	BindingBytes int `json:"binding_bytes"`
	TotalBytes   int `json:"total_bytes"`
}

// PassMetrics is one optimization pass's ledger entry: wall time, the
// size measured immediately before and after the pass, and the pass's
// own change attribution (nonzero opt.Report counts).
type PassMetrics struct {
	Pass    string         `json:"pass"`
	WallNs  int64          `json:"wall_ns"`
	Before  SizeMetrics    `json:"before"`
	After   SizeMetrics    `json:"after"`
	Changes map[string]int `json:"changes,omitempty"`
}

// DeltaBytes is the pass's size effect in accounted bytes (negative =
// shrink).
func (p PassMetrics) DeltaBytes() int { return p.After.TotalBytes - p.Before.TotalBytes }

// Ledger is the translator's pass ledger: everything one opt.Apply run
// did to a description, with per-pass wall time and size attribution.
// It is pure data — safe to marshal, copy, and publish into a Registry.
type Ledger struct {
	// Machine is the description name as reported by the caller ("" when
	// unknown); Form is "OR" or "AND/OR" at Apply entry.
	Machine   string `json:"machine,omitempty"`
	Form      string `json:"form"`
	Level     string `json:"level"`
	Direction string `json:"direction"`

	WallNs int64         `json:"wall_ns"`
	Before SizeMetrics   `json:"before"`
	After  SizeMetrics   `json:"after"`
	Passes []PassMetrics `json:"passes"`
}

// DeltaBytes is the whole run's size effect in accounted bytes.
func (l *Ledger) DeltaBytes() int { return l.After.TotalBytes - l.Before.TotalBytes }

// MarshalJSON is the stable export form; it is the plain struct (the
// method exists to pin that contract in one place).
func (l *Ledger) MarshalJSON() ([]byte, error) {
	type plain Ledger
	return json.Marshal((*plain)(l))
}

// FormatLedger renders the ledger as an aligned table: one row per pass
// with wall time, the running size, and the per-pass delta, then a
// summary line. This is the renderer behind mdreport, mdinfo -stats,
// and schedbench -report.
func FormatLedger(l *Ledger) string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	name := l.Machine
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "Translator ledger: %s form=%s level=%s dir=%s\n",
		name, l.Form, l.Level, l.Direction)
	t := textutil.NewTable("Pass", "µs", "Options", "Trees", "Usages", "Words", "Bytes", "ΔBytes", "Changes")
	t.Row("(input)", "", l.Before.Options, l.Before.Trees,
		l.Before.ScalarUsages, l.Before.MaskWords, l.Before.TotalBytes, "", "")
	for _, p := range l.Passes {
		t.Row(p.Pass, fmt.Sprintf("%.1f", float64(p.WallNs)/1e3),
			p.After.Options, p.After.Trees, p.After.ScalarUsages, p.After.MaskWords,
			p.After.TotalBytes, p.DeltaBytes(), changesString(p.Changes))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "total: %.1fµs, %d -> %d bytes (%s)\n",
		float64(l.WallNs)/1e3, l.Before.TotalBytes, l.After.TotalBytes,
		textutil.Percent(float64(l.Before.TotalBytes), float64(l.After.TotalBytes)))
	return b.String()
}

// changesString flattens a Changes map deterministically (sorted keys).
func changesString(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

// SetTranslator publishes the translator's pass ledger into the
// registry, making it part of every Snapshot and exporter output.
// Passing nil clears it. The scheduler hot path never touches this.
func (r *Registry) SetTranslator(l *Ledger) { r.translator.Store(l) }

// Translator returns the published ledger, or nil.
func (r *Registry) Translator() *Ledger { return r.translator.Load() }
