package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format.
func WritePrometheus(b *strings.Builder, s Snapshot) {
	b.WriteString("# TYPE mdes_attempts_total counter\n")
	b.WriteString("# TYPE mdes_options_checked_total counter\n")
	b.WriteString("# TYPE mdes_resource_checks_total counter\n")
	b.WriteString("# TYPE mdes_conflicts_total counter\n")
	b.WriteString("# TYPE mdes_backtracks_total counter\n")
	for _, p := range s.Phases {
		if p.Attempts == 0 && p.Backtracks == 0 {
			continue
		}
		fmt.Fprintf(b, "mdes_attempts_total{phase=%q} %d\n", p.Phase, p.Attempts)
		fmt.Fprintf(b, "mdes_options_checked_total{phase=%q} %d\n", p.Phase, p.OptionsChecked)
		fmt.Fprintf(b, "mdes_resource_checks_total{phase=%q} %d\n", p.Phase, p.ResourceChecks)
		fmt.Fprintf(b, "mdes_conflicts_total{phase=%q} %d\n", p.Phase, p.Conflicts)
		fmt.Fprintf(b, "mdes_backtracks_total{phase=%q} %d\n", p.Phase, p.Backtracks)
	}
	b.WriteString("# TYPE mdes_check_duration_ns histogram\n")
	for _, p := range s.Phases {
		if p.Attempts == 0 {
			continue
		}
		var cum int64
		for i, n := range p.CheckNs {
			cum += n
			if n == 0 && i != len(p.CheckNs)-1 {
				continue
			}
			fmt.Fprintf(b, "mdes_check_duration_ns_bucket{phase=%q,le=\"%d\"} %d\n",
				p.Phase, BucketUpperBound(i), cum)
		}
		fmt.Fprintf(b, "mdes_check_duration_ns_bucket{phase=%q,le=\"+Inf\"} %d\n", p.Phase, cum)
		fmt.Fprintf(b, "mdes_check_duration_ns_sum{phase=%q} %d\n", p.Phase, p.CheckNsSum)
		fmt.Fprintf(b, "mdes_check_duration_ns_count{phase=%q} %d\n", p.Phase, cum)
	}
	b.WriteString("# TYPE mdes_class_attempts_total counter\n")
	b.WriteString("# TYPE mdes_class_conflicts_total counter\n")
	for _, c := range s.Classes {
		if c.Attempts == 0 {
			continue
		}
		fmt.Fprintf(b, "mdes_class_attempts_total{class=%q} %d\n", c.Class, c.Attempts)
		fmt.Fprintf(b, "mdes_class_conflicts_total{class=%q} %d\n", c.Class, c.Conflicts)
	}
	b.WriteString("# TYPE mdes_resource_conflicts_total counter\n")
	for _, r := range s.Resources {
		if r.Conflicts == 0 {
			continue
		}
		fmt.Fprintf(b, "mdes_resource_conflicts_total{resource=%q} %d\n", r.Resource, r.Conflicts)
	}
	b.WriteString("# TYPE mdes_contexts_in_flight gauge\n")
	fmt.Fprintf(b, "mdes_contexts_in_flight %d\n", s.InFlight)
	b.WriteString("# TYPE mdes_context_merges_total counter\n")
	fmt.Fprintf(b, "mdes_context_merges_total %d\n", s.Merges)
	if s.Backend != "" {
		b.WriteString("# TYPE mdes_checker_backend gauge\n")
		fmt.Fprintf(b, "mdes_checker_backend{backend=%q} 1\n", s.Backend)
	}

	if l := s.Translator; l != nil {
		b.WriteString("# TYPE mdes_translator_pass_duration_ns gauge\n")
		b.WriteString("# TYPE mdes_translator_pass_delta_bytes gauge\n")
		for _, p := range l.Passes {
			fmt.Fprintf(b, "mdes_translator_pass_duration_ns{pass=%q} %d\n", p.Pass, p.WallNs)
			fmt.Fprintf(b, "mdes_translator_pass_delta_bytes{pass=%q} %d\n", p.Pass, p.DeltaBytes())
		}
		b.WriteString("# TYPE mdes_translator_duration_ns gauge\n")
		fmt.Fprintf(b, "mdes_translator_duration_ns{level=%q} %d\n", l.Level, l.WallNs)
		b.WriteString("# TYPE mdes_translator_size gauge\n")
		for _, side := range []struct {
			when string
			m    SizeMetrics
		}{{"before", l.Before}, {"after", l.After}} {
			for _, v := range []struct {
				metric string
				n      int
			}{
				{"options", side.m.Options},
				{"trees", side.m.Trees},
				{"classes", side.m.Classes},
				{"scalar_usages", side.m.ScalarUsages},
				{"mask_words", side.m.MaskWords},
				{"total_bytes", side.m.TotalBytes},
			} {
				fmt.Fprintf(b, "mdes_translator_size{when=%q,metric=%q} %d\n",
					side.when, v.metric, v.n)
			}
		}
	}
}

// ExpvarVar returns an expvar.Var rendering the registry's snapshot as
// JSON, for callers that want to expvar.Publish it under their own name.
func ExpvarVar(r *Registry) expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// Handler returns a mux exposing the registry:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  the full Snapshot as JSON (expvar-style)
//	/debug/vars    the process-wide expvar handler
//	/debug/pprof/  the standard pprof handlers
func Handler(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		WritePrometheus(&b, r.Snapshot())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, ExpvarVar(r).String())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	// Addr is the bound address (host:port), useful with ":0".
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// ServeMetrics binds addr (e.g. ":8080", "127.0.0.1:0") and serves
// Handler(r) on it in a background goroutine until Close.
func ServeMetrics(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// TopClasses returns the snapshot's classes with attempts, sorted by
// attempts descending, truncated to n (n <= 0 keeps all).
func TopClasses(s Snapshot, n int) []ClassSnapshot {
	var out []ClassSnapshot
	for _, c := range s.Classes {
		if c.Attempts > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Attempts != out[b].Attempts {
			return out[a].Attempts > out[b].Attempts
		}
		return out[a].Class < out[b].Class
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
