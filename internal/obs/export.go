package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format.
func WritePrometheus(b *strings.Builder, s Snapshot) {
	b.WriteString("# TYPE mdes_attempts_total counter\n")
	b.WriteString("# TYPE mdes_options_checked_total counter\n")
	b.WriteString("# TYPE mdes_resource_checks_total counter\n")
	b.WriteString("# TYPE mdes_conflicts_total counter\n")
	b.WriteString("# TYPE mdes_backtracks_total counter\n")
	for _, p := range s.Phases {
		if p.Attempts == 0 && p.Backtracks == 0 {
			continue
		}
		fmt.Fprintf(b, "mdes_attempts_total{phase=%q} %d\n", p.Phase, p.Attempts)
		fmt.Fprintf(b, "mdes_options_checked_total{phase=%q} %d\n", p.Phase, p.OptionsChecked)
		fmt.Fprintf(b, "mdes_resource_checks_total{phase=%q} %d\n", p.Phase, p.ResourceChecks)
		fmt.Fprintf(b, "mdes_conflicts_total{phase=%q} %d\n", p.Phase, p.Conflicts)
		fmt.Fprintf(b, "mdes_backtracks_total{phase=%q} %d\n", p.Phase, p.Backtracks)
	}
	b.WriteString("# TYPE mdes_check_duration_ns histogram\n")
	for _, p := range s.Phases {
		if p.Attempts == 0 {
			continue
		}
		var cum int64
		for i, n := range p.CheckNs {
			cum += n
			if n == 0 && i != len(p.CheckNs)-1 {
				continue
			}
			fmt.Fprintf(b, "mdes_check_duration_ns_bucket{phase=%q,le=\"%d\"} %d\n",
				p.Phase, BucketUpperBound(i), cum)
		}
		fmt.Fprintf(b, "mdes_check_duration_ns_bucket{phase=%q,le=\"+Inf\"} %d\n", p.Phase, cum)
		fmt.Fprintf(b, "mdes_check_duration_ns_sum{phase=%q} %d\n", p.Phase, p.CheckNsSum)
		fmt.Fprintf(b, "mdes_check_duration_ns_count{phase=%q} %d\n", p.Phase, cum)
	}
	b.WriteString("# TYPE mdes_class_attempts_total counter\n")
	b.WriteString("# TYPE mdes_class_conflicts_total counter\n")
	for _, c := range s.Classes {
		if c.Attempts == 0 {
			continue
		}
		fmt.Fprintf(b, "mdes_class_attempts_total{class=%q} %d\n", c.Class, c.Attempts)
		fmt.Fprintf(b, "mdes_class_conflicts_total{class=%q} %d\n", c.Class, c.Conflicts)
	}
	b.WriteString("# TYPE mdes_resource_conflicts_total counter\n")
	for _, r := range s.Resources {
		if r.Conflicts == 0 {
			continue
		}
		fmt.Fprintf(b, "mdes_resource_conflicts_total{resource=%q} %d\n", r.Resource, r.Conflicts)
	}
	b.WriteString("# TYPE mdes_contexts_in_flight gauge\n")
	fmt.Fprintf(b, "mdes_contexts_in_flight %d\n", s.InFlight)
	b.WriteString("# TYPE mdes_context_merges_total counter\n")
	fmt.Fprintf(b, "mdes_context_merges_total %d\n", s.Merges)
	if s.Backend != "" {
		b.WriteString("# TYPE mdes_checker_backend gauge\n")
		fmt.Fprintf(b, "mdes_checker_backend{backend=%q} 1\n", s.Backend)
	}

	if l := s.Translator; l != nil {
		b.WriteString("# TYPE mdes_translator_pass_duration_ns gauge\n")
		b.WriteString("# TYPE mdes_translator_pass_delta_bytes gauge\n")
		for _, p := range l.Passes {
			fmt.Fprintf(b, "mdes_translator_pass_duration_ns{pass=%q} %d\n", p.Pass, p.WallNs)
			fmt.Fprintf(b, "mdes_translator_pass_delta_bytes{pass=%q} %d\n", p.Pass, p.DeltaBytes())
		}
		b.WriteString("# TYPE mdes_translator_duration_ns gauge\n")
		fmt.Fprintf(b, "mdes_translator_duration_ns{level=%q} %d\n", l.Level, l.WallNs)
		b.WriteString("# TYPE mdes_translator_size gauge\n")
		for _, side := range []struct {
			when string
			m    SizeMetrics
		}{{"before", l.Before}, {"after", l.After}} {
			for _, v := range []struct {
				metric string
				n      int
			}{
				{"options", side.m.Options},
				{"trees", side.m.Trees},
				{"classes", side.m.Classes},
				{"scalar_usages", side.m.ScalarUsages},
				{"mask_words", side.m.MaskWords},
				{"total_bytes", side.m.TotalBytes},
			} {
				fmt.Fprintf(b, "mdes_translator_size{when=%q,metric=%q} %d\n",
					side.when, v.metric, v.n)
			}
		}
	}
}

// ExpvarVar returns an expvar.Var rendering the registry's snapshot as
// JSON, for callers that want to expvar.Publish it under their own name.
func ExpvarVar(r *Registry) expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// FlightExporter is the export surface of a flight recorder
// (internal/obs/flight.Recorder satisfies it). obs cannot import the
// flight package — flight imports obs for the Phase enum — so the
// endpoint layer takes the recorder through this interface instead.
type FlightExporter interface {
	// WritePrometheus appends the recorder's metrics (per-phase latency
	// quantile summaries, anomaly counters, worst-block exemplars) in
	// Prometheus text exposition format.
	WritePrometheus(b *strings.Builder)
	// WriteDump writes the full recorder state (meta, quantiles, recent
	// and anomalous entries) as indented JSON.
	WriteDump(w io.Writer) error
	// Status reports the merged block count and anomaly count, for
	// health endpoints.
	Status() (blocks, anomalies int64)
}

// ProfileExporter is the export surface of a conflict-attribution
// profile (internal/obs/profile.Profile satisfies it). Same structural
// pattern as FlightExporter: the profile package stays import-free of
// obs, so the endpoint layer takes it through this interface.
type ProfileExporter interface {
	// WriteSnapshot writes the current profile snapshot as indented JSON.
	WriteSnapshot(w io.Writer) error
}

// ServerOption configures Handler and ServeMetrics.
type ServerOption func(*serverConfig)

type serverConfig struct {
	flight  FlightExporter
	profile ProfileExporter
}

// WithFlightExporter attaches a flight recorder to the endpoint: its
// latency quantiles are appended to /metrics, its dump is served at
// /debug/flight, and /healthz reports its block and anomaly counts.
func WithFlightExporter(f FlightExporter) ServerOption {
	return func(c *serverConfig) { c.flight = f }
}

// WithProfileExporter attaches a conflict-attribution profile to the
// endpoint: its live snapshot is served as JSON at /debug/profile.
func WithProfileExporter(p ProfileExporter) ServerOption {
	return func(c *serverConfig) { c.profile = p }
}

// Handler returns a mux exposing the registry:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  the full Snapshot as JSON (expvar-style)
//	/healthz       liveness probe (JSON status)
//	/debug/flight  flight-recorder dump (with WithFlightExporter)
//	/debug/profile conflict-attribution profile snapshot (with WithProfileExporter)
//	/debug/vars    the process-wide expvar handler
//	/debug/pprof/  the standard pprof handlers
func Handler(r *Registry, opts ...ServerOption) *http.ServeMux {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		WritePrometheus(&b, r.Snapshot())
		if cfg.flight != nil {
			cfg.flight.WritePrometheus(&b)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, ExpvarVar(r).String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.flight != nil {
			blocks, anomalies := cfg.flight.Status()
			fmt.Fprintf(w, "{\"status\":\"ok\",\"blocks\":%d,\"anomalies\":%d}\n", blocks, anomalies)
			return
		}
		fmt.Fprint(w, "{\"status\":\"ok\"}\n")
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.flight == nil {
			http.Error(w, "flight recorder not configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.flight.WriteDump(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.profile == nil {
			http.Error(w, "conflict profile not configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.profile.WriteSnapshot(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	// Addr is the bound address (host:port), useful with ":0".
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// shutdownGrace bounds how long Close waits for in-flight requests
// before cutting them off.
const shutdownGrace = 5 * time.Second

// Close stops the endpoint: the listener closes immediately (no new
// connections), in-flight requests get a bounded grace period, then any
// stragglers are cut off.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown stops the endpoint gracefully: the listener closes
// immediately and in-flight requests are allowed to complete until ctx
// expires, at which point they are forcibly closed.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Grace expired (or ctx canceled): cut off the stragglers so
		// Close always leaves the port free.
		if cerr := s.srv.Close(); cerr != nil && err == context.DeadlineExceeded {
			err = cerr
		}
	}
	return err
}

// ServeMetrics binds addr (e.g. ":8080", "127.0.0.1:0") and serves
// Handler(r, opts...) on it in a background goroutine until Close. The
// server carries conservative read/write timeouts: it exposes
// diagnostics, so a stuck client must never pin a connection forever.
func ServeMetrics(addr string, r *Registry, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(r, opts...),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// TopClasses returns the snapshot's classes with attempts, sorted by
// attempts descending, truncated to n (n <= 0 keeps all).
func TopClasses(s Snapshot, n int) []ClassSnapshot {
	var out []ClassSnapshot
	for _, c := range s.Classes {
		if c.Attempts > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Attempts != out[b].Attempts {
			return out[a].Attempts > out[b].Attempts
		}
		return out[a].Class < out[b].Class
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
