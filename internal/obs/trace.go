package obs

import (
	"sync/atomic"

	"mdes/internal/stats"
)

// Event is one trace event within a block record.
type Event struct {
	// Kind is "attempt" (one Check call) or "conflict" (the attribution
	// of a failed attempt to its blocking resource).
	Kind string `json:"kind"`
	// Op is the operation's index within the block.
	Op     int    `json:"op"`
	Opcode string `json:"opcode"`
	// Cycle is the candidate issue cycle of the attempt.
	Cycle int `json:"cycle"`
	// Options is the number of reservation-table options checked during
	// the attempt (the per-attempt quantity of the paper's Figure 2).
	Options int `json:"options,omitempty"`
	// Choice is the chosen option index within the constraint's first
	// OR-tree, for successful attempts.
	Choice int `json:"choice,omitempty"`
	// OK reports whether the attempt succeeded (the operation issued).
	OK bool `json:"ok"`
	// Res names the blocking resource of a conflict event.
	Res string `json:"res,omitempty"`
	// Time is the blocking usage's time relative to the issue cycle.
	Time int `json:"time,omitempty"`
	// Src is the HMDES provenance of the blocked option — which
	// reservation/table option the conflicting usage was compiled from
	// (lowlevel.Option.Src syntax).
	Src string `json:"src,omitempty"`
}

// BlockRecord is one block's complete trace. A record is accumulated
// privately by the goroutine scheduling the block and handed to the sink
// as one unit, so events of concurrent blocks never interleave within a
// record.
type BlockRecord struct {
	// Block identifies the block: Engine.ScheduleBlocks uses the block's
	// index within the batch; single-block entry points use a
	// monotonically increasing sequence.
	Block   int64  `json:"block"`
	Machine string `json:"machine"`
	// Ops is the number of operations in the block.
	Ops int `json:"ops"`
	// Length is the schedule length in cycles, or -1 if scheduling
	// failed.
	Length   int            `json:"length"`
	Counters stats.Counters `json:"counters"`
	Events   []Event        `json:"events"`
}

// Sink receives completed block records. Emit must be safe for
// concurrent use and must treat each record as one atomic unit.
type Sink interface {
	Emit(rec *BlockRecord)
}

// Tracer produces per-block trace recorders. StartBlock returns nil when
// the block is not sampled; callers skip all event recording for nil.
// Implementations must be safe for concurrent use.
type Tracer interface {
	StartBlock(block int64, machine string, numOps int) *BlockTrace
}

// BlockTrace records one block's events. It is single-goroutine (owned
// by the scheduler driving the block) until Finish hands the completed
// record to the sink.
type BlockTrace struct {
	rec  BlockRecord
	sink Sink
}

// Attempt records one Check call: candidate cycle, options checked,
// chosen option (first OR-tree) when successful.
func (t *BlockTrace) Attempt(op int, opcode string, cycle, options, choice int, ok bool) {
	t.rec.Events = append(t.rec.Events, Event{
		Kind: "attempt", Op: op, Opcode: opcode, Cycle: cycle,
		Options: options, Choice: choice, OK: ok,
	})
}

// Conflict records the blocking resource, relative usage time, and HMDES
// provenance of a failed attempt's blocked option.
func (t *BlockTrace) Conflict(op int, opcode string, cycle int, res string, time int, src string) {
	t.rec.Events = append(t.rec.Events, Event{
		Kind: "conflict", Op: op, Opcode: opcode, Cycle: cycle,
		Res: res, Time: time, Src: src,
	})
}

// Finish completes the record (length < 0 marks a failed schedule) and
// emits it to the sink. The BlockTrace must not be used after Finish.
func (t *BlockTrace) Finish(length int, c stats.Counters) {
	t.rec.Length = length
	t.rec.Counters = c
	t.sink.Emit(&t.rec)
}

// tracer is the standard Tracer: every sampled block gets a fresh
// recorder emitting into one shared sink.
type tracer struct {
	sink  Sink
	every uint64
	seq   atomic.Uint64
}

// TracerOption configures New.
type TracerOption func(*tracer)

// SampleEvery keeps 1 in n blocks (n <= 1 keeps every block). Sampling
// is round-robin over StartBlock calls, so concurrent goroutines share
// one sampling sequence.
func SampleEvery(n int) TracerOption {
	return func(t *tracer) {
		if n > 1 {
			t.every = uint64(n)
		}
	}
}

// New returns a Tracer emitting into sink.
func New(sink Sink, opts ...TracerOption) Tracer {
	t := &tracer{sink: sink, every: 1}
	for _, o := range opts {
		o(t)
	}
	return t
}

func (t *tracer) StartBlock(block int64, machine string, numOps int) *BlockTrace {
	if t.every > 1 && (t.seq.Add(1)-1)%t.every != 0 {
		return nil
	}
	return &BlockTrace{
		rec:  BlockRecord{Block: block, Machine: machine, Ops: numOps, Length: -1},
		sink: t.sink,
	}
}
