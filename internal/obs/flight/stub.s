// Empty assembly file so the compiler accepts the body-less Nanotime
// declaration in nanotime.go (go:linkname pull).
