// Package flight is the always-on flight recorder: a bounded,
// allocation-free record of recent block-scheduling events that a
// long-running service can afford to leave enabled and inspect the moment
// something goes wrong.
//
// The paper's instrumentation (Tables 5-13) answers "where does the
// scheduler spend its probes" in aggregate; the metrics registry
// (internal/obs) serves those aggregates live. What neither can answer is
// "what just went wrong": which block blew the tail latency, what its
// conflict profile looked like, and what the blocks around it were doing.
// The flight recorder closes that gap with the black-box pattern:
//
//   - Each borrowed scheduling context carries a Local — a fixed ring of
//     per-block Entry records written with plain stores, no locks, no
//     atomics, no allocations (the same single-writer discipline as
//     obs.Local). One Entry costs two clock readings and a ring store per
//     block, which is why the recorder can stay always-on (the <2%
//     overhead gate at the repository root enforces it).
//   - On pool release the Local is merged into the shared Recorder: a
//     larger global ring plus per-phase streaming latency histograms from
//     which tail quantiles (p50/p95/p99/p999) and worst-block exemplars
//     are served.
//   - Anomaly triggers arm themselves from the merged history: a block
//     whose wall time exceeds a configurable multiple of the running
//     latency quantile, whose backtrack depth spikes, or whose conflict
//     rate jumps above a multiple of the running mean is flagged at
//     record time (three atomic loads on the hot path), retained in a
//     dedicated anomaly ring, and — when an AutoDump writer is configured
//     — triggers a rate-limited JSON dump of the whole recorder state.
//
// Dumps are served on demand through obs.ServeMetrics (/debug/flight) and
// the quantiles through the Prometheus and JSON exporters; Entry.Block IDs
// cross-reference trace recordings (internal/trace) so an anomalous block
// can be replayed deterministically.
package flight

import (
	"math/bits"

	"mdes/internal/obs"
)

// Trigger is a bitmask of the anomaly conditions an Entry tripped.
type Trigger uint8

// Anomaly triggers.
const (
	// TrigLatency fires when a block's wall time exceeds
	// Config.LatencyFactor times the running LatencyQuantile estimate.
	TrigLatency Trigger = 1 << iota
	// TrigBacktrack fires when a block's backtrack count reaches
	// Config.BacktrackDepth.
	TrigBacktrack
	// TrigConflict fires when a block's conflict rate exceeds
	// Config.ConflictFactor times the running mean conflict rate.
	TrigConflict

	numTriggers = 3
)

var triggerNames = [numTriggers]string{"latency", "backtrack", "conflict"}

func (t Trigger) String() string {
	if t == 0 {
		return "none"
	}
	s := ""
	for i := 0; i < numTriggers; i++ {
		if t&(1<<i) != 0 {
			if s != "" {
				s += "+"
			}
			s += triggerNames[i]
		}
	}
	return s
}

// Entry is one block's flight record: a compact, fixed-size event. The
// recorder-wide constants (machine name, description fingerprint, checker
// backend) live on the Recorder, not per entry.
type Entry struct {
	// Seq is the global merge sequence number, assigned when the entry
	// reaches the Recorder (0 while still in a Local ring).
	Seq int64 `json:"seq"`
	// Block is the scheduler's block ID (the block's index within its
	// batch for Engine.ScheduleBlocks), cross-referencing trace records.
	Block int64 `json:"block"`
	// Phase is the scheduler phase that ran the block (obs.Phase).
	Phase obs.Phase `json:"-"`
	// Ops is the number of operations in the block.
	Ops int32 `json:"ops"`
	// Length is the schedule length in cycles, -1 for a failed schedule.
	Length int32 `json:"length"`
	// WallNs is the block's scheduling wall time.
	WallNs int64 `json:"wall_ns"`
	// Attempts/Options/Checks/Conflicts/Backtracks are the block's own
	// counters (the paper's accounting, per block).
	Attempts   int64 `json:"attempts"`
	Options    int64 `json:"options"`
	Checks     int64 `json:"checks"`
	Conflicts  int64 `json:"conflicts"`
	Backtracks int64 `json:"backtracks"`
	// Trigger is the set of anomaly conditions the entry tripped (0 for a
	// normal block).
	Trigger Trigger `json:"-"`
}

// entryJSON is Entry with the enum fields rendered as names, for dumps.
type entryJSON struct {
	Entry
	PhaseName   string `json:"phase"`
	TriggerName string `json:"trigger,omitempty"`
}

func (e Entry) toJSON() entryJSON {
	j := entryJSON{Entry: e, PhaseName: e.Phase.String()}
	if e.Trigger != 0 {
		j.TriggerName = e.Trigger.String()
	}
	return j
}

// Local is the per-context flight ring: single-goroutine, written with
// plain stores on the scheduling hot path and merged into the shared
// Recorder when the owning context is released (resctx.Pool.Put), exactly
// like obs.Local. A nil Local costs one pointer comparison per block.
type Local struct {
	rec     *Recorder
	entries []Entry
	next    int
	n       int
}

// Record stores one block's entry in the ring, evicting the oldest when
// full, and evaluates the recorder's armed anomaly triggers against it.
// The fast path is a ring store plus at most three atomic threshold
// loads; only an actual anomaly takes the recorder's lock. The entry is
// taken by pointer purely to keep the per-block cost down (one 96-byte
// copy instead of two); Record does not retain it. Seq and Trigger are
// assigned here and on merge — caller-set values are overwritten.
func (l *Local) Record(e *Entry) {
	e.Seq = 0
	e.Trigger = l.rec.classify(e)
	if e.Trigger != 0 {
		l.rec.noteAnomaly(*e)
	}
	if l.n < len(l.entries) {
		l.entries[l.n] = *e
		l.n++
		return
	}
	l.entries[l.next] = *e
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
	}
}

// drainInto appends the ring's entries, oldest first, to dst and resets
// the ring for reuse.
func (l *Local) drainInto(dst []Entry) []Entry {
	if l.n == len(l.entries) {
		dst = append(dst, l.entries[l.next:]...)
		dst = append(dst, l.entries[:l.next]...)
	} else {
		dst = append(dst, l.entries[:l.n]...)
	}
	l.next, l.n = 0, 0
	return dst
}

// Len returns the number of entries currently retained in the ring.
func (l *Local) Len() int { return l.n }

// latency histogram: log2 octaves split into 8 sub-buckets each, giving
// ~12.5% value resolution — fine enough for p999 while staying a flat
// int64 array that merges and snapshots trivially.
const (
	subBits    = 3
	subBuckets = 1 << subBits
	numBuckets = 64 * subBuckets
)

// bucketOf maps a ns reading to its histogram bucket.
func bucketOf(ns int64) int {
	if ns < subBuckets {
		if ns < 0 {
			ns = 0
		}
		return int(ns)
	}
	e := bits.Len64(uint64(ns)) - 1 // top bit position, >= subBits
	sub := (ns >> (uint(e) - subBits)) & (subBuckets - 1)
	b := (e-subBits+1)*subBuckets + int(sub)
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// boundOf returns an inclusive upper bound of bucket b's value range.
func boundOf(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	e := b/subBuckets + subBits - 1
	sub := int64(b%subBuckets) + 1
	return int64(1)<<uint(e) + sub<<(uint(e)-subBits) - 1
}

// hist is one phase's streaming latency histogram.
type hist struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
	max     int64
}

func (h *hist) observe(ns int64) {
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1).
func (h *hist) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			v := boundOf(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
