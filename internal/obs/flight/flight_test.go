package flight

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"

	"mdes/internal/obs"
)

// The histogram mapping must be monotonic and every bucket's bound an
// upper bound of the values it holds — otherwise quantiles could
// under-report tail latency.
func TestBucketBounds(t *testing.T) {
	prev := 0
	for _, ns := range []int64{0, 1, 3, 7, 8, 9, 100, 1000, 4095, 4096, 1 << 20, 1 << 40, 1<<62 + 1} {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d, below previous bucket %d: not monotonic", ns, b, prev)
		}
		prev = b
		if bound := boundOf(b); bound < ns {
			t.Fatalf("boundOf(bucketOf(%d)) = %d, not an upper bound", ns, bound)
		}
		if b > 0 && boundOf(b-1) >= ns {
			t.Fatalf("value %d also fits bucket %d (bound %d): buckets overlap", ns, b-1, boundOf(b-1))
		}
	}
	if b := bucketOf(-5); b != 0 {
		t.Fatalf("negative reading in bucket %d, want 0", b)
	}
	if b := bucketOf(1 << 62); b >= numBuckets {
		t.Fatalf("bucket %d out of range", b)
	}
}

// Quantiles are upper-bound estimates with ~12.5% bucket resolution:
// never below the exact order statistic, never far above it.
func TestHistQuantile(t *testing.T) {
	var h hist
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	const n = 1000
	for i := int64(1); i <= n; i++ {
		h.observe(i)
	}
	if h.count != n || h.max != n {
		t.Fatalf("count %d max %d after %d observations", h.count, h.max, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := int64(q * n)
		got := h.quantile(q)
		if got < exact {
			t.Fatalf("q%.3f = %d, below exact %d: not an upper bound", q, got, exact)
		}
		if float64(got) > float64(exact)*1.2+2 {
			t.Fatalf("q%.3f = %d, more than ~12.5%% above exact %d", q, got, exact)
		}
	}
	if h.quantile(1.0) != n {
		t.Fatalf("q1.0 = %d, want capped at max %d", h.quantile(1.0), n)
	}
}

func TestTriggerString(t *testing.T) {
	for _, tc := range []struct {
		t    Trigger
		want string
	}{
		{0, "none"},
		{TrigLatency, "latency"},
		{TrigBacktrack, "backtrack"},
		{TrigLatency | TrigConflict, "latency+conflict"},
		{TrigLatency | TrigBacktrack | TrigConflict, "latency+backtrack+conflict"},
	} {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("Trigger(%b).String() = %q, want %q", tc.t, got, tc.want)
		}
	}
}

// A full Local evicts oldest-first and drains in order.
func TestLocalRingWrap(t *testing.T) {
	r := NewRecorder(Config{PerContext: 4})
	l := r.NewLocal()
	for i := int64(0); i < 7; i++ {
		l.Record(&Entry{Block: i, Phase: obs.PhaseList})
	}
	if l.Len() != 4 {
		t.Fatalf("ring holds %d entries, want 4", l.Len())
	}
	got := l.drainInto(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d entries, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(3 + i); e.Block != want {
			t.Fatalf("drained[%d].Block = %d, want %d (oldest-first after eviction)", i, e.Block, want)
		}
	}
	if l.Len() != 0 {
		t.Fatal("drainInto must reset the ring")
	}
}

// mergeEntries pushes entries through a fresh Local so the recorder's
// history (and so its armed thresholds) reflects them.
func mergeEntries(r *Recorder, entries ...Entry) {
	l := r.NewLocal()
	for _, e := range entries {
		l.Record(&e)
	}
	r.Merge(l)
}

func TestAnomalyTriggers(t *testing.T) {
	r := NewRecorder(Config{
		MinBlocks:       4,
		LatencyFactor:   2,
		LatencyQuantile: 0.5,
		BacktrackDepth:  5,
		ConflictFactor:  2,
		MinAttempts:     10,
	})
	// Before any history merges, latency and conflict triggers are
	// disarmed; only the backtrack-depth constant can fire.
	l := r.NewLocal()
	l.Record(&Entry{Phase: obs.PhaseList, WallNs: 1 << 40, Attempts: 100, Conflicts: 100})
	if n := r.AnomalyCount(); n != 0 {
		t.Fatalf("unarmed recorder flagged %d anomalies", n)
	}
	l.Record(&Entry{Phase: obs.PhaseList, Backtracks: 5})
	if n := r.AnomalyCount(); n != 1 {
		t.Fatalf("backtrack depth flagged %d anomalies, want 1", n)
	}

	// Arm from history: 8 normal blocks (1µs, conflict rate 0.1).
	normals := make([]Entry, 8)
	for i := range normals {
		normals[i] = Entry{Block: int64(i), Phase: obs.PhaseList, WallNs: 1000, Attempts: 100, Conflicts: 10}
	}
	mergeEntries(r, normals...)

	l2 := r.NewLocal()
	l2.Record(&Entry{Block: 100, Phase: obs.PhaseList, WallNs: 1000, Attempts: 100, Conflicts: 10})
	if n := r.AnomalyCount(); n != 1 {
		t.Fatalf("normal block flagged as anomaly (count %d)", n)
	}
	l2.Record(&Entry{Block: 101, Phase: obs.PhaseList, WallNs: 1 << 30})
	l2.Record(&Entry{Block: 102, Phase: obs.PhaseList, WallNs: 1000, Attempts: 100, Conflicts: 50})
	l2.Record(&Entry{Block: 103, Phase: obs.PhaseList, WallNs: 1000, Attempts: 5, Conflicts: 5})
	r.Merge(l2)

	s := r.Snapshot()
	if s.Anomalies["latency"] != 1 {
		t.Fatalf("latency anomalies = %d, want 1 (snapshot %+v)", s.Anomalies["latency"], s.Anomalies)
	}
	if s.Anomalies["conflict"] != 1 {
		t.Fatalf("conflict anomalies = %d, want 1 (the %d-attempt block is under MinAttempts)", s.Anomalies["conflict"], 5)
	}
	if s.Anomalies["backtrack"] != 1 {
		t.Fatalf("backtrack anomalies = %d, want 1", s.Anomalies["backtrack"])
	}
	if len(s.Anomalous) != 3 {
		t.Fatalf("anomaly ring holds %d entries, want 3", len(s.Anomalous))
	}
}

func TestAutoDumpRateLimited(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(Config{BacktrackDepth: 1, AutoDump: &buf})
	l := r.NewLocal()
	for i := 0; i < 5; i++ {
		l.Record(&Entry{Phase: obs.PhaseList, Backtracks: 1})
	}
	if d := r.Snapshot().Dumps; d != 1 {
		t.Fatalf("%d auto-dumps for one anomaly burst, want 1 (rate limit)", d)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("auto-dump is not valid JSON: %v", err)
	}
}

func TestSnapshotRecentOrderAndMeta(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4})
	r.SetMeta("K5", "deadbeef00000000", "probeplan")
	entries := make([]Entry, 6)
	for i := range entries {
		entries[i] = Entry{Block: int64(i), Phase: obs.PhaseList, WallNs: int64(100 * (i + 1))}
	}
	mergeEntries(r, entries...)

	s := r.Snapshot()
	if s.Machine != "K5" || s.MachineHash != "deadbeef00000000" || s.Checker != "probeplan" {
		t.Fatalf("meta %q/%q/%q not preserved", s.Machine, s.MachineHash, s.Checker)
	}
	if s.Blocks != 6 || s.Merges != 1 {
		t.Fatalf("blocks %d merges %d, want 6 and 1", s.Blocks, s.Merges)
	}
	if len(s.Recent) != 4 {
		t.Fatalf("recent ring holds %d, want capacity 4", len(s.Recent))
	}
	for i, e := range s.Recent {
		want := int64(2 + i)
		if e.Block != want {
			t.Fatalf("recent[%d].Block = %d, want %d (oldest-first)", i, e.Block, want)
		}
		if e.Seq != want+1 {
			t.Fatalf("recent[%d].Seq = %d, want %d (merge order)", i, e.Seq, want+1)
		}
	}
	if len(s.Quantiles) != 1 || s.Quantiles[0].Phase != obs.PhaseList.String() {
		t.Fatalf("quantiles %+v, want one entry for the list phase", s.Quantiles)
	}
	if q := s.Quantiles[0]; q.Count != 6 || q.MaxNs != 600 || len(q.Exemplars) == 0 {
		t.Fatalf("phase summary %+v: want count 6, max 600, exemplars", q)
	}
	if s.Quantiles[0].Exemplars[0].WallNs != 600 {
		t.Fatalf("worst exemplar %+v, want the 600ns block", s.Quantiles[0].Exemplars[0])
	}
}

func TestWriteDumpAndPrometheus(t *testing.T) {
	r := NewRecorder(Config{})
	r.SetMeta("K5", "deadbeef00000000", "rumap")
	mergeEntries(r,
		Entry{Block: 1, Phase: obs.PhaseList, WallNs: 1000, Attempts: 10},
		Entry{Block: 2, Phase: obs.PhaseOpDriven, WallNs: 2000, Attempts: 20})

	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if s.Blocks != 2 || len(s.Recent) != 2 {
		t.Fatalf("dump snapshot %+v, want 2 blocks", s)
	}
	if s.Recent[0].PhaseName != obs.PhaseList.String() {
		t.Fatalf("dump entry phase %q, want %q", s.Recent[0].PhaseName, obs.PhaseList)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`mdes_block_schedule_ns{phase="list",quantile="0.999"}`,
		`mdes_block_schedule_ns_count{phase="list"} 1`,
		`mdes_flight_blocks_total 2`,
		`mdes_flight_anomalies_total{trigger="latency"} 0`,
		`mdes_flight_worst_block_ns{phase="list",block="1"} 1000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

// Eight recording goroutines merging against concurrent dumpers: run
// under -race by CI. Every entry must be counted exactly once.
func TestMergeUnderConcurrentDump(t *testing.T) {
	r := NewRecorder(Config{Capacity: 64, PerContext: 16, BacktrackDepth: 8, AutoDump: io.Discard})
	const (
		writers         = 8
		mergesPerWriter = 25
		entriesPerMerge = 16
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.WriteDump(io.Discard)
				var b strings.Builder
				r.WritePrometheus(&b)
				r.Status()
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for m := 0; m < mergesPerWriter; m++ {
				l := r.NewLocal()
				for i := 0; i < entriesPerMerge; i++ {
					l.Record(&Entry{
						Block:      int64(w*1000 + m*100 + i),
						Phase:      obs.Phase(i % int(obs.NumPhases)),
						WallNs:     int64(i + 1),
						Attempts:   int64(i),
						Backtracks: int64(i), // some trip the backtrack trigger
					})
				}
				r.Merge(l)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got, want := r.Blocks(), int64(writers*mergesPerWriter*entriesPerMerge); got != want {
		t.Fatalf("recorder merged %d blocks, want %d: entries lost or double-counted", got, want)
	}
	s := r.Snapshot()
	if len(s.Recent) != 64 {
		t.Fatalf("recent ring holds %d, want full capacity 64", len(s.Recent))
	}
	for i := 1; i < len(s.Recent); i++ {
		if s.Recent[i].Seq <= s.Recent[i-1].Seq {
			t.Fatalf("recent ring out of merge order at %d: seq %d then %d", i, s.Recent[i-1].Seq, s.Recent[i].Seq)
		}
	}
}
