package flight

import _ "unsafe" // for go:linkname

// Nanotime returns the runtime's raw monotonic clock in nanoseconds.
// The flight recorder times every block it records, so the clock read is
// the dominant per-block cost; runtime.nanotime reads one clock where
// time.Now reads the monotonic and wall clocks both, and skipping the
// time.Time round-trip roughly halves the hot-path timing cost (the <2%
// overhead gate at the repository root is what this buys). Readings are
// only meaningful as differences.
//
//go:linkname Nanotime runtime.nanotime
func Nanotime() int64
