package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdes/internal/obs"
)

// Config parameterizes a Recorder. The zero value is a sensible always-on
// configuration; every field has a default.
type Config struct {
	// PerContext is each context ring's capacity (default 256 entries).
	PerContext int
	// Capacity is the merged global ring's capacity (default 4096).
	Capacity int
	// AnomalyCapacity bounds the dedicated anomaly ring (default 128).
	AnomalyCapacity int

	// LatencyQuantile (default 0.999) and LatencyFactor (default 8): a
	// block whose wall time exceeds LatencyFactor times the running
	// LatencyQuantile estimate for its phase trips TrigLatency. The
	// trigger arms only once the phase has MinBlocks merged entries.
	// LatencyFactor <= 0 disables the trigger.
	LatencyQuantile float64
	LatencyFactor   float64

	// BacktrackDepth trips TrigBacktrack when a block's backtrack count
	// reaches it (default 64; <= 0 disables).
	BacktrackDepth int64

	// ConflictFactor trips TrigConflict when a block's conflict rate
	// exceeds ConflictFactor times the running mean conflict rate
	// (default 4; <= 0 disables). Blocks with fewer than MinAttempts
	// attempts are exempt (default 32).
	ConflictFactor float64
	MinAttempts    int64

	// MinBlocks is the merged-history size required before the
	// latency and conflict triggers arm (default 512).
	MinBlocks int64

	// AutoDump, when non-nil, receives one JSON dump of the full
	// recorder state per anomaly burst. Dumps are rate-limited to one
	// per DumpInterval (default 10s). The writer must be safe for
	// concurrent use if schedulers run concurrently.
	AutoDump     io.Writer
	DumpInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.PerContext <= 0 {
		c.PerContext = 256
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.AnomalyCapacity <= 0 {
		c.AnomalyCapacity = 128
	}
	if c.LatencyQuantile <= 0 || c.LatencyQuantile > 1 {
		c.LatencyQuantile = 0.999
	}
	if c.LatencyFactor == 0 {
		c.LatencyFactor = 8
	}
	if c.BacktrackDepth == 0 {
		c.BacktrackDepth = 64
	}
	if c.ConflictFactor == 0 {
		c.ConflictFactor = 4
	}
	if c.MinAttempts <= 0 {
		c.MinAttempts = 32
	}
	if c.MinBlocks <= 0 {
		c.MinBlocks = 512
	}
	if c.DumpInterval <= 0 {
		c.DumpInterval = 10 * time.Second
	}
	return c
}

// exemplarsPerPhase is how many worst-block exemplars each phase retains.
const exemplarsPerPhase = 4

// Exemplar names one of a phase's worst blocks: the trace ID to replay.
type Exemplar struct {
	Block  int64 `json:"block"`
	Seq    int64 `json:"seq"`
	WallNs int64 `json:"wall_ns"`
}

// Recorder is the shared flight recorder one engine's contexts merge
// into: a bounded global ring of recent entries, a dedicated anomaly
// ring, and per-phase streaming latency histograms serving tail
// quantiles. All methods are safe for concurrent use.
type Recorder struct {
	cfg Config

	// Identity labels (SetMeta): constant after engine construction.
	machine     atomic.Pointer[string]
	machineHash atomic.Pointer[string]
	checker     atomic.Pointer[string]

	// Armed thresholds, read lock-free by Local.Record on the hot path.
	// latThreshold[p] is the ns bound for phase p (0 = disarmed);
	// conflictMilli is the per-mille conflict-rate bound (0 = disarmed).
	latThreshold  [obs.NumPhases]atomic.Int64
	conflictMilli atomic.Int64

	anomalies  [numTriggers]atomic.Int64
	dumps      atomic.Int64
	lastDumpNs atomic.Int64

	mu        sync.Mutex
	ring      []Entry
	next      int
	n         int
	seq       int64
	merges    int64
	blocks    int64
	attempts  int64
	conflicts int64
	lat       [obs.NumPhases]hist
	worst     [obs.NumPhases][]Exemplar
	anomRing  []Entry
	anomNext  int
	anomN     int
	scratch   []Entry
}

// NewRecorder returns a flight recorder with the given configuration
// (zero value for defaults).
func NewRecorder(cfg Config) *Recorder {
	c := cfg.withDefaults()
	return &Recorder{
		cfg:      c,
		ring:     make([]Entry, c.Capacity),
		anomRing: make([]Entry, c.AnomalyCapacity),
	}
}

// SetMeta records the identity of what is being observed: the machine
// name, the compiled description's content fingerprint, and the checker
// backend (mdes.NewEngine sets them). Dumps and exporters report them so
// a flight dump is attributable to an exact description.
func (r *Recorder) SetMeta(machine, machineHash, checker string) {
	r.machine.Store(&machine)
	r.machineHash.Store(&machineHash)
	r.checker.Store(&checker)
}

func loadStr(p *atomic.Pointer[string]) string {
	if s := p.Load(); s != nil {
		return *s
	}
	return ""
}

// NewLocal returns an empty per-context ring merging into this recorder.
func (r *Recorder) NewLocal() *Local {
	return &Local{rec: r, entries: make([]Entry, r.cfg.PerContext)}
}

// classify evaluates the armed anomaly triggers against an entry. It is
// called on the hot path and performs at most three atomic loads.
func (r *Recorder) classify(e *Entry) Trigger {
	var t Trigger
	if th := r.latThreshold[e.Phase].Load(); th > 0 && e.WallNs > th {
		t |= TrigLatency
	}
	if d := r.cfg.BacktrackDepth; d > 0 && e.Backtracks >= d {
		t |= TrigBacktrack
	}
	if m := r.conflictMilli.Load(); m > 0 && e.Attempts >= r.cfg.MinAttempts &&
		e.Conflicts*1000 > m*e.Attempts {
		t |= TrigConflict
	}
	return t
}

// noteAnomaly retains an anomalous entry in the anomaly ring, counts it,
// and fires the rate-limited auto-dump when one is configured.
func (r *Recorder) noteAnomaly(e Entry) {
	for i := 0; i < numTriggers; i++ {
		if e.Trigger&(1<<i) != 0 {
			r.anomalies[i].Add(1)
		}
	}
	r.mu.Lock()
	if r.anomN < len(r.anomRing) {
		r.anomRing[r.anomN] = e
		r.anomN++
	} else {
		r.anomRing[r.anomNext] = e
		r.anomNext = (r.anomNext + 1) % len(r.anomRing)
	}
	r.mu.Unlock()

	if r.cfg.AutoDump == nil {
		return
	}
	now := time.Now().UnixNano()
	last := r.lastDumpNs.Load()
	if now-last < int64(r.cfg.DumpInterval) || !r.lastDumpNs.CompareAndSwap(last, now) {
		return
	}
	r.dumps.Add(1)
	// Best effort: an auto-dump failure must never affect scheduling.
	_ = r.WriteDump(r.cfg.AutoDump)
}

// Merge folds a Local's ring into the recorder: entries enter the global
// ring in local order with merge sequence numbers, the per-phase latency
// histograms and worst-block exemplars absorb them, and the anomaly
// thresholds re-arm from the enlarged history. Called on context release
// (resctx.Pool.Put), never on the per-block hot path. Merging an empty or
// nil Local is free.
func (r *Recorder) Merge(l *Local) {
	if l == nil || l.n == 0 {
		return
	}
	r.mu.Lock()
	r.scratch = l.drainInto(r.scratch[:0])
	for i := range r.scratch {
		e := &r.scratch[i]
		r.seq++
		e.Seq = r.seq
		if r.n < len(r.ring) {
			r.ring[r.n] = *e
			r.n++
		} else {
			r.ring[r.next] = *e
			r.next = (r.next + 1) % len(r.ring)
		}
		if int(e.Phase) < int(obs.NumPhases) {
			r.lat[e.Phase].observe(e.WallNs)
			r.noteWorst(e)
		}
		r.blocks++
		r.attempts += e.Attempts
		r.conflicts += e.Conflicts
	}
	r.merges++
	r.rearmLocked()
	r.mu.Unlock()
}

// noteWorst keeps the per-phase worst-block exemplars sorted by wall time
// descending. Called with mu held.
func (r *Recorder) noteWorst(e *Entry) {
	w := r.worst[e.Phase]
	if len(w) == exemplarsPerPhase && e.WallNs <= w[len(w)-1].WallNs {
		return
	}
	w = append(w, Exemplar{Block: e.Block, Seq: e.Seq, WallNs: e.WallNs})
	sort.Slice(w, func(a, b int) bool { return w[a].WallNs > w[b].WallNs })
	if len(w) > exemplarsPerPhase {
		w = w[:exemplarsPerPhase]
	}
	r.worst[e.Phase] = w
}

// rearmLocked recomputes the lock-free trigger thresholds from the merged
// history. Called with mu held.
func (r *Recorder) rearmLocked() {
	if r.cfg.LatencyFactor > 0 {
		for p := 0; p < int(obs.NumPhases); p++ {
			if r.lat[p].count >= r.cfg.MinBlocks {
				q := r.lat[p].quantile(r.cfg.LatencyQuantile)
				r.latThreshold[p].Store(int64(r.cfg.LatencyFactor * float64(q)))
			}
		}
	}
	if r.cfg.ConflictFactor > 0 && r.blocks >= r.cfg.MinBlocks && r.attempts > 0 {
		mean := float64(r.conflicts) / float64(r.attempts)
		milli := int64(r.cfg.ConflictFactor * mean * 1000)
		if milli >= 1000 {
			milli = 0 // a rate can't exceed 1: disarm instead of never firing
		}
		if milli > 0 {
			r.conflictMilli.Store(milli)
		}
	}
}

// PhaseQuantiles is one phase's streaming tail-latency summary.
type PhaseQuantiles struct {
	Phase     string     `json:"phase"`
	Count     int64      `json:"count"`
	SumNs     int64      `json:"sum_ns"`
	MaxNs     int64      `json:"max_ns"`
	P50       int64      `json:"p50_ns"`
	P95       int64      `json:"p95_ns"`
	P99       int64      `json:"p99_ns"`
	P999      int64      `json:"p999_ns"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of the recorder, the document
// /debug/flight serves and AutoDump writes.
type Snapshot struct {
	Machine     string           `json:"machine,omitempty"`
	MachineHash string           `json:"machine_hash,omitempty"`
	Checker     string           `json:"checker,omitempty"`
	Blocks      int64            `json:"blocks"`
	Merges      int64            `json:"merges"`
	Anomalies   map[string]int64 `json:"anomalies,omitempty"`
	Dumps       int64            `json:"dumps"`
	Quantiles   []PhaseQuantiles `json:"quantiles,omitempty"`
	Recent      []entryJSON      `json:"recent"`
	Anomalous   []entryJSON      `json:"anomalous,omitempty"`
}

// Snapshot copies the recorder's state: identity, totals, per-phase
// quantiles with exemplars, the recent-entry ring (oldest first), and the
// anomaly ring. Entries still in borrowed Locals are not included until
// their context is released, mirroring the metrics registry's contract.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Machine:     loadStr(&r.machine),
		MachineHash: loadStr(&r.machineHash),
		Checker:     loadStr(&r.checker),
		Dumps:       r.dumps.Load(),
	}
	for i := 0; i < numTriggers; i++ {
		if n := r.anomalies[i].Load(); n > 0 {
			if s.Anomalies == nil {
				s.Anomalies = map[string]int64{}
			}
			s.Anomalies[triggerNames[i]] = n
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Blocks, s.Merges = r.blocks, r.merges
	for p := 0; p < int(obs.NumPhases); p++ {
		h := &r.lat[p]
		if h.count == 0 {
			continue
		}
		s.Quantiles = append(s.Quantiles, PhaseQuantiles{
			Phase:     obs.Phase(p).String(),
			Count:     h.count,
			SumNs:     h.sum,
			MaxNs:     h.max,
			P50:       h.quantile(0.50),
			P95:       h.quantile(0.95),
			P99:       h.quantile(0.99),
			P999:      h.quantile(0.999),
			Exemplars: append([]Exemplar(nil), r.worst[p]...),
		})
	}
	s.Recent = make([]entryJSON, 0, r.n)
	if r.n == len(r.ring) {
		for _, e := range r.ring[r.next:] {
			s.Recent = append(s.Recent, e.toJSON())
		}
		for _, e := range r.ring[:r.next] {
			s.Recent = append(s.Recent, e.toJSON())
		}
	} else {
		for _, e := range r.ring[:r.n] {
			s.Recent = append(s.Recent, e.toJSON())
		}
	}
	if r.anomN > 0 {
		s.Anomalous = make([]entryJSON, 0, r.anomN)
		if r.anomN == len(r.anomRing) {
			for _, e := range r.anomRing[r.anomNext:] {
				s.Anomalous = append(s.Anomalous, e.toJSON())
			}
			for _, e := range r.anomRing[:r.anomNext] {
				s.Anomalous = append(s.Anomalous, e.toJSON())
			}
		} else {
			for _, e := range r.anomRing[:r.anomN] {
				s.Anomalous = append(s.Anomalous, e.toJSON())
			}
		}
	}
	return s
}

// Blocks returns the number of merged entries so far.
func (r *Recorder) Blocks() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.blocks
}

// AnomalyCount returns the total anomalies flagged so far.
func (r *Recorder) AnomalyCount() int64 {
	var n int64
	for i := 0; i < numTriggers; i++ {
		n += r.anomalies[i].Load()
	}
	return n
}

// Status reports the totals /healthz includes.
func (r *Recorder) Status() (blocks, anomalies int64) {
	return r.Blocks(), r.AnomalyCount()
}

// WriteDump writes the full snapshot as indented JSON — the on-demand
// dump (/debug/flight, schedbench -flightdump) and the anomaly auto-dump.
func (r *Recorder) WriteDump(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WritePrometheus renders the recorder's quantiles and anomaly counters
// in the Prometheus text exposition format; obs.Handler appends it to
// /metrics when a flight recorder is attached to the server.
func (r *Recorder) WritePrometheus(b *strings.Builder) {
	s := r.Snapshot()
	b.WriteString("# TYPE mdes_block_schedule_ns summary\n")
	for _, q := range s.Quantiles {
		for _, v := range []struct {
			q  string
			ns int64
		}{{"0.5", q.P50}, {"0.95", q.P95}, {"0.99", q.P99}, {"0.999", q.P999}} {
			fmt.Fprintf(b, "mdes_block_schedule_ns{phase=%q,quantile=%q} %d\n", q.Phase, v.q, v.ns)
		}
		fmt.Fprintf(b, "mdes_block_schedule_ns_sum{phase=%q} %d\n", q.Phase, q.SumNs)
		fmt.Fprintf(b, "mdes_block_schedule_ns_count{phase=%q} %d\n", q.Phase, q.Count)
	}
	b.WriteString("# TYPE mdes_block_schedule_max_ns gauge\n")
	for _, q := range s.Quantiles {
		fmt.Fprintf(b, "mdes_block_schedule_max_ns{phase=%q} %d\n", q.Phase, q.MaxNs)
	}
	b.WriteString("# TYPE mdes_flight_worst_block_ns gauge\n")
	for _, q := range s.Quantiles {
		for _, ex := range q.Exemplars {
			fmt.Fprintf(b, "mdes_flight_worst_block_ns{phase=%q,block=\"%d\"} %d\n", q.Phase, ex.Block, ex.WallNs)
		}
	}
	b.WriteString("# TYPE mdes_flight_blocks_total counter\n")
	fmt.Fprintf(b, "mdes_flight_blocks_total %d\n", s.Blocks)
	b.WriteString("# TYPE mdes_flight_anomalies_total counter\n")
	for i := 0; i < numTriggers; i++ {
		fmt.Fprintf(b, "mdes_flight_anomalies_total{trigger=%q} %d\n", triggerNames[i], r.anomalies[i].Load())
	}
	b.WriteString("# TYPE mdes_flight_dumps_total counter\n")
	fmt.Fprintf(b, "mdes_flight_dumps_total %d\n", s.Dumps)
}
