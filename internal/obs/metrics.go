package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumLatencyBuckets is the number of log2 ns buckets in the check-latency
// histograms: bucket 0 holds 0ns, bucket i holds durations in
// [2^(i-1), 2^i) ns, and the last bucket absorbs everything longer.
const NumLatencyBuckets = 40

// latencyBucket maps a duration in ns to its log2 bucket.
func latencyBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return b
}

// BucketUpperBound returns the exclusive ns upper bound of bucket i
// (inclusive 0 for bucket 0), for rendering and Prometheus exposition.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << uint(i)
}

// phaseCounters is one phase's registry slot (all atomic).
type phaseCounters struct {
	attempts   atomic.Int64
	options    atomic.Int64
	checks     atomic.Int64
	conflicts  atomic.Int64
	backtracks atomic.Int64
	// checkNs is the log2 histogram of per-Check wall time; checkNsSum is
	// the total ns, for means and Prometheus _sum.
	checkNs    [NumLatencyBuckets]atomic.Int64
	checkNsSum atomic.Int64
}

// classCounters is one opcode class's registry slot.
type classCounters struct {
	attempts  atomic.Int64
	options   atomic.Int64
	conflicts atomic.Int64
}

// Registry aggregates scheduling metrics for one compiled machine
// description: per-phase attempt/option/check/conflict/backtrack counters
// with check-latency histograms, per-opcode-class attempt attribution,
// and conflicts keyed by the blocking resource. All fields are atomic, so
// exporters may read at any time; but the hot path never writes here —
// schedulers bump a per-context Local and the pool merges it on release,
// keeping the fast path lock-free and contention-free.
type Registry struct {
	classNames    []string
	resourceNames []string

	phases       [NumPhases]phaseCounters
	classes      []classCounters
	resConflicts []atomic.Int64
	merges       atomic.Int64
	inFlight     atomic.Int64

	// translator is the published pass ledger (see SetTranslator): a
	// single pointer swap, written once at compile time and only read by
	// exporters, never by the scheduler hot path.
	translator atomic.Pointer[Ledger]

	// backend is the name of the conflict-checker backend the observed
	// engine runs (see SetBackend); written once at construction.
	backend atomic.Pointer[string]
}

// SetBackend records which conflict-checker backend produced the metrics
// (mdes.NewEngine sets it from the selected check.Kind); exporters and
// FormatSnapshot report it so ablation runs are attributable.
func (r *Registry) SetBackend(name string) { r.backend.Store(&name) }

// Backend returns the recorded checker-backend name, or "".
func (r *Registry) Backend() string {
	if p := r.backend.Load(); p != nil {
		return *p
	}
	return ""
}

// AddInFlight adjusts the gauge of currently-borrowed contexts observing
// into this registry (resctx.Pool bumps it on Get/Put).
func (r *Registry) AddInFlight(delta int64) { r.inFlight.Add(delta) }

// NewRegistry returns a registry for a description with the given opcode
// class (constraint) names and resource names; the names key the
// per-class and conflicts-by-resource breakdowns.
func NewRegistry(classNames, resourceNames []string) *Registry {
	return &Registry{
		classNames:    append([]string(nil), classNames...),
		resourceNames: append([]string(nil), resourceNames...),
		classes:       make([]classCounters, len(classNames)),
		resConflicts:  make([]atomic.Int64, len(resourceNames)),
	}
}

// ClassNames returns the registered opcode-class names.
func (r *Registry) ClassNames() []string { return r.classNames }

// ResourceNames returns the registered resource names.
func (r *Registry) ResourceNames() []string { return r.resourceNames }

// NewLocal returns an empty Local sized for this registry.
func (r *Registry) NewLocal() *Local {
	return &Local{
		classes:      make([]localClass, len(r.classNames)),
		resConflicts: make([]int64, len(r.resourceNames)),
	}
}

// Merge folds a Local's counts into the registry's atomics. It is called
// on context release (resctx.Pool.Put), not on the hot path. Untouched
// locals merge for free.
func (r *Registry) Merge(l *Local) {
	if l == nil || !l.dirty {
		return
	}
	for p := range l.phases {
		lp, rp := &l.phases[p], &r.phases[p]
		if lp.attempts == 0 && lp.backtracks == 0 {
			continue
		}
		rp.attempts.Add(lp.attempts)
		rp.options.Add(lp.options)
		rp.checks.Add(lp.checks)
		rp.conflicts.Add(lp.conflicts)
		rp.backtracks.Add(lp.backtracks)
		rp.checkNsSum.Add(lp.checkNsSum)
		for b, n := range lp.checkNs {
			if n != 0 {
				rp.checkNs[b].Add(n)
			}
		}
	}
	for ci := range l.classes {
		lc := &l.classes[ci]
		if lc.attempts == 0 {
			continue
		}
		rc := &r.classes[ci]
		rc.attempts.Add(lc.attempts)
		rc.options.Add(lc.options)
		rc.conflicts.Add(lc.conflicts)
	}
	for ri, n := range l.resConflicts {
		if n != 0 {
			r.resConflicts[ri].Add(n)
		}
	}
	r.merges.Add(1)
}

// localPhase mirrors phaseCounters without atomics.
type localPhase struct {
	attempts   int64
	options    int64
	checks     int64
	conflicts  int64
	backtracks int64
	checkNs    [NumLatencyBuckets]int64
	checkNsSum int64
}

type localClass struct {
	attempts  int64
	options   int64
	conflicts int64
}

// TimestampPeriod is the check-latency sampling period: schedulers
// timestamp one attempt in every TimestampPeriod (asking SampleTime
// before taking the two time.Now readings) and the histogram weights
// each sample by the period, so the latency distribution and _sum
// extrapolate to all attempts while the per-Check clock cost drops by
// the same factor. Counting accounting (attempts, options, checks,
// conflicts) is never sampled. A power of two keeps the modulo free.
const TimestampPeriod = 256

// Local is the per-context (single-goroutine) accumulation buffer the
// schedulers write on the hot path: plain integer adds, no atomics, no
// locks, no allocations. A Local is merged into its Registry when the
// owning context is released and is then reset for reuse.
type Local struct {
	phases       [NumPhases]localPhase
	classes      []localClass
	resConflicts []int64
	dirty        bool
	tick         uint32
}

// SampleTime reports whether the caller should timestamp this attempt:
// true once per TimestampPeriod calls, starting with the first, so even
// short runs record at least one latency sample. Callers pass ns < 0 to
// Attempt for the attempts they did not time.
func (l *Local) SampleTime() bool {
	l.tick++
	return l.tick%TimestampPeriod == 1
}

// Attempt records one instrumented Check: the phase that performed it,
// the opcode class (constraint index) it was for, the options and
// resource probes it consumed, its wall time, and whether it succeeded.
// A negative or out-of-range class is accounted to the phase only. A
// negative ns marks an untimed attempt (see SampleTime): counting
// accounting proceeds as usual and the latency histogram is untouched;
// a timed attempt adds TimestampPeriod observations of its measurement,
// extrapolating the sampled clock readings back to all attempts.
func (l *Local) Attempt(p Phase, class int, options, checks, ns int64, ok bool) {
	l.dirty = true
	lp := &l.phases[p]
	lp.attempts++
	lp.options += options
	lp.checks += checks
	if ns >= 0 {
		lp.recordNs(ns)
	}
	if !ok {
		lp.conflicts++
	}
	if class >= 0 && class < len(l.classes) {
		lc := &l.classes[class]
		lc.attempts++
		lc.options += options
		if !ok {
			lc.conflicts++
		}
	}
}

// recordNs folds one sampled latency measurement into the histogram,
// weighted back up by the sampling period. Out of line so the common
// untimed Attempt call stays within the inlining budget.
//
//go:noinline
func (lp *localPhase) recordNs(ns int64) {
	lp.checkNs[latencyBucket(ns)] += TimestampPeriod
	lp.checkNsSum += ns * TimestampPeriod
}

// ConflictAt attributes a failed attempt to the blocking resource.
func (l *Local) ConflictAt(res int) {
	if res >= 0 && res < len(l.resConflicts) {
		l.dirty = true
		l.resConflicts[res]++
	}
}

// Backtrack records n unscheduled (evicted) operations in phase p.
func (l *Local) Backtrack(p Phase, n int64) {
	if n == 0 {
		return
	}
	l.dirty = true
	l.phases[p].backtracks += n
}

// Reset zeroes the Local, retaining storage.
func (l *Local) Reset() {
	if !l.dirty {
		return
	}
	l.phases = [NumPhases]localPhase{}
	for i := range l.classes {
		l.classes[i] = localClass{}
	}
	for i := range l.resConflicts {
		l.resConflicts[i] = 0
	}
	l.dirty = false
}

// PhaseSnapshot is one phase's metrics at snapshot time.
type PhaseSnapshot struct {
	Phase          string                   `json:"phase"`
	Attempts       int64                    `json:"attempts"`
	OptionsChecked int64                    `json:"options_checked"`
	ResourceChecks int64                    `json:"resource_checks"`
	Conflicts      int64                    `json:"conflicts"`
	Backtracks     int64                    `json:"backtracks"`
	CheckNsSum     int64                    `json:"check_ns_sum"`
	CheckNs        [NumLatencyBuckets]int64 `json:"check_ns_log2,omitempty"`
}

// MeanCheckNs returns the mean wall time per Check in ns.
func (p PhaseSnapshot) MeanCheckNs() float64 {
	if p.Attempts == 0 {
		return 0
	}
	return float64(p.CheckNsSum) / float64(p.Attempts)
}

// ClassSnapshot is one opcode class's metrics at snapshot time.
type ClassSnapshot struct {
	Class          string `json:"class"`
	Attempts       int64  `json:"attempts"`
	OptionsChecked int64  `json:"options_checked"`
	Conflicts      int64  `json:"conflicts"`
}

// ResourceSnapshot is one resource's conflict attribution.
type ResourceSnapshot struct {
	Resource  string `json:"resource"`
	Conflicts int64  `json:"conflicts"`
}

// Snapshot is a consistent-enough point-in-time copy of a Registry
// (counters are read individually; totals may straddle a merge, which
// only ever under-reports in-flight contexts).
type Snapshot struct {
	Phases    []PhaseSnapshot    `json:"phases"`
	Classes   []ClassSnapshot    `json:"classes"`
	Resources []ResourceSnapshot `json:"resources"`
	Merges    int64              `json:"merges"`
	// InFlight is the gauge of currently-borrowed observing contexts.
	InFlight int64 `json:"in_flight"`
	// Backend names the conflict-checker backend, when one was recorded.
	Backend string `json:"backend,omitempty"`
	// Translator is the published pass ledger, when one was set.
	Translator *Ledger `json:"translator,omitempty"`
}

// Snapshot reads the registry into plain values for export.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Merges:     r.merges.Load(),
		InFlight:   r.inFlight.Load(),
		Backend:    r.Backend(),
		Translator: r.translator.Load(),
	}
	for p := 0; p < int(NumPhases); p++ {
		rp := &r.phases[p]
		ps := PhaseSnapshot{
			Phase:          Phase(p).String(),
			Attempts:       rp.attempts.Load(),
			OptionsChecked: rp.options.Load(),
			ResourceChecks: rp.checks.Load(),
			Conflicts:      rp.conflicts.Load(),
			Backtracks:     rp.backtracks.Load(),
			CheckNsSum:     rp.checkNsSum.Load(),
		}
		for b := range rp.checkNs {
			ps.CheckNs[b] = rp.checkNs[b].Load()
		}
		s.Phases = append(s.Phases, ps)
	}
	for ci := range r.classes {
		rc := &r.classes[ci]
		s.Classes = append(s.Classes, ClassSnapshot{
			Class:          r.classNames[ci],
			Attempts:       rc.attempts.Load(),
			OptionsChecked: rc.options.Load(),
			Conflicts:      rc.conflicts.Load(),
		})
	}
	for ri := range r.resConflicts {
		s.Resources = append(s.Resources, ResourceSnapshot{
			Resource:  r.resourceNames[ri],
			Conflicts: r.resConflicts[ri].Load(),
		})
	}
	return s
}
