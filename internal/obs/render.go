package obs

import (
	"fmt"
	"strings"

	"mdes/internal/textutil"
)

// FormatRegistry renders the registry as the aligned ASCII tables the
// experiment harness uses (internal/textutil, the formatting behind
// internal/experiments/tables.go): per-phase scheduling metrics, the
// hottest opcode classes, conflicts by blocking resource, and a log2
// check-latency histogram per active phase.
func FormatRegistry(r *Registry) string {
	return FormatSnapshot(r.Snapshot())
}

// FormatSnapshot renders an already-taken snapshot (see FormatRegistry).
func FormatSnapshot(s Snapshot) string {
	var b strings.Builder

	if s.Translator != nil {
		b.WriteString(FormatLedger(s.Translator))
		b.WriteByte('\n')
	}

	if s.Backend != "" {
		fmt.Fprintf(&b, "Checker backend: %s\n\n", s.Backend)
	}

	pt := textutil.NewTable("Phase", "Attempts", "Opt/att", "Chk/att", "Conflicts", "Backtracks", "ns/check")
	active := 0
	for _, p := range s.Phases {
		if p.Attempts == 0 && p.Backtracks == 0 {
			continue
		}
		active++
		pt.Row(p.Phase, p.Attempts,
			ratio(p.OptionsChecked, p.Attempts), ratio(p.ResourceChecks, p.Attempts),
			p.Conflicts, p.Backtracks, p.MeanCheckNs())
	}
	b.WriteString("Per-phase scheduling metrics\n")
	if active == 0 {
		b.WriteString("(no instrumented activity recorded)\n")
		return b.String()
	}
	b.WriteString(pt.String())

	if top := TopClasses(s, 12); len(top) > 0 {
		ct := textutil.NewTable("Class", "Attempts", "Opt/att", "Conflicts")
		for _, c := range top {
			ct.Row(c.Class, c.Attempts, ratio(c.OptionsChecked, c.Attempts), c.Conflicts)
		}
		b.WriteString("\nHottest opcode classes\n")
		b.WriteString(ct.String())
	}

	var maxConf int64
	nconf := 0
	for _, rc := range s.Resources {
		if rc.Conflicts > 0 {
			nconf++
			if rc.Conflicts > maxConf {
				maxConf = rc.Conflicts
			}
		}
	}
	if nconf > 0 {
		rt := textutil.NewTable("Resource", "Conflicts", "")
		for _, rc := range s.Resources {
			if rc.Conflicts == 0 {
				continue
			}
			rt.Row(rc.Resource, rc.Conflicts, textutil.Bar(float64(rc.Conflicts), float64(maxConf), 24))
		}
		b.WriteString("\nConflicts by blocking resource\n")
		b.WriteString(rt.String())
	}

	for _, p := range s.Phases {
		if p.Attempts == 0 || p.CheckNsSum == 0 {
			continue
		}
		var total, maxN int64
		for _, n := range p.CheckNs {
			total += n
			if n > maxN {
				maxN = n
			}
		}
		if total == 0 {
			continue
		}
		ht := textutil.NewTable("ns/check", "Checks", "%", "")
		for i, n := range p.CheckNs {
			if n == 0 {
				continue
			}
			label := "0"
			if i > 0 {
				label = fmt.Sprintf("%d..%d", BucketUpperBound(i-1), BucketUpperBound(i)-1)
			}
			ht.Row(label, n,
				100*float64(n)/float64(total), textutil.Bar(float64(n), float64(maxN), 24))
		}
		fmt.Fprintf(&b, "\nCheck latency, %s phase (log2 ns buckets)\n", p.Phase)
		b.WriteString(ht.String())
	}

	fmt.Fprintf(&b, "\ncontexts in flight: %d, context merges: %d\n", s.InFlight, s.Merges)
	return b.String()
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
