package profile

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// The MDPF artifact persists one Snapshot as a self-delimiting binary
// blob with the same framing discipline as the MDTR trace format
// (internal/trace): magic + version, uvarint-framed body, FNV-64a trailer
// whose hex form is the artifact's content address. The meta block pins
// the description fingerprint and workload, so an MDPF file names exactly
// which (description, workload) pair produced its evidence.

// mdpfMagic identifies an mdes profile artifact.
var mdpfMagic = [4]byte{'M', 'D', 'P', 'F'}

// Version is the MDPF format version this package reads and writes.
const Version = 1

// Encode serializes the snapshot, returning the bytes and the content
// address (FNV-64a of the encoded stream, the trailer checksum).
func Encode(s *Snapshot) ([]byte, string, error) {
	var e encoder
	e.write(mdpfMagic[:])
	e.uvarint(Version)
	e.str(s.Meta.Machine)
	e.str(s.Meta.MachineHash)
	e.str(s.Meta.Checker)
	e.str(s.Meta.Workload)
	e.varint(s.Merges)
	e.uvarint(uint64(len(s.Constraints)))
	for _, c := range s.Constraints {
		e.str(c.Name)
		e.varint(c.Attempts)
		e.varint(c.Conflicts)
		e.uvarint(uint64(len(c.Trees)))
		for _, t := range c.Trees {
			e.str(t.Name)
			e.varint(t.FirstBlock)
			e.uvarint(uint64(len(t.Options)))
			for _, o := range t.Options {
				e.str(o.Src)
				e.varint(o.Selected)
				e.varint(o.Blocked)
			}
		}
	}
	e.uvarint(uint64(len(s.Resources)))
	for _, r := range s.Resources {
		e.str(r.Resource)
		e.varint(r.Conflicts)
	}
	h := fnv.New64a()
	h.Write(e.buf)
	sum := h.Sum64()
	e.buf = binary.BigEndian.AppendUint64(e.buf, sum)
	return e.buf, fmt.Sprintf("%016x", sum), nil
}

// Decode decodes one MDPF artifact, verifying magic, version, and the
// FNV-64a trailer, and returns the snapshot plus its content address.
func Decode(data []byte) (*Snapshot, string, error) {
	if len(data) < len(mdpfMagic)+1+8 {
		return nil, "", fmt.Errorf("profile: artifact too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	sum := h.Sum64()
	if got := binary.BigEndian.Uint64(trailer); got != sum {
		return nil, "", fmt.Errorf("profile: checksum mismatch (stored %016x, computed %016x)", got, sum)
	}
	d := decoder{buf: body}
	var mg [4]byte
	d.read(mg[:])
	if mg != mdpfMagic {
		return nil, "", fmt.Errorf("profile: bad magic %q", mg)
	}
	if v := d.uvarint(); d.err == nil && v != Version {
		return nil, "", fmt.Errorf("profile: unsupported version %d", v)
	}
	s := &Snapshot{}
	s.Meta.Machine = d.str()
	s.Meta.MachineHash = d.str()
	s.Meta.Checker = d.str()
	s.Meta.Workload = d.str()
	s.Merges = d.varint()
	nc := d.count()
	if d.err == nil && nc > 0 {
		s.Constraints = make([]ConstraintProfile, 0, nc)
	}
	for i := 0; i < nc && d.err == nil; i++ {
		var c ConstraintProfile
		c.Name = d.str()
		c.Attempts = d.varint()
		c.Conflicts = d.varint()
		nt := d.count()
		if d.err == nil && nt > 0 {
			c.Trees = make([]TreeProfile, 0, nt)
		}
		for j := 0; j < nt && d.err == nil; j++ {
			var t TreeProfile
			t.Name = d.str()
			t.FirstBlock = d.varint()
			no := d.count()
			if d.err == nil && no > 0 {
				t.Options = make([]OptionProfile, 0, no)
			}
			for k := 0; k < no && d.err == nil; k++ {
				var o OptionProfile
				o.Src = d.str()
				o.Selected = d.varint()
				o.Blocked = d.varint()
				t.Options = append(t.Options, o)
			}
			c.Trees = append(c.Trees, t)
		}
		s.Constraints = append(s.Constraints, c)
	}
	nr := d.count()
	if d.err == nil && nr > 0 {
		s.Resources = make([]ResourceProfile, 0, nr)
	}
	for i := 0; i < nr && d.err == nil; i++ {
		var r ResourceProfile
		r.Resource = d.str()
		r.Conflicts = d.varint()
		s.Resources = append(s.Resources, r)
	}
	if d.err != nil {
		return nil, "", fmt.Errorf("profile: corrupt artifact: %w", d.err)
	}
	if d.pos != len(body) {
		return nil, "", fmt.Errorf("profile: %d trailing bytes after artifact", len(body)-d.pos)
	}
	return s, fmt.Sprintf("%016x", sum), nil
}

// encoder mirrors internal/trace's append-only encoder: errors are
// impossible, keeping call sites linear.
type encoder struct {
	buf []byte
}

func (e *encoder) write(p []byte)   { e.buf = append(e.buf, p...) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// decoder is the cursor-based counterpart; the first malformed field
// sticks in err and every later read returns zero values.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s at offset %d", what, d.pos)
	}
}

func (d *decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if d.pos+len(p) > len(d.buf) {
		d.fail("bytes")
		return
	}
	copy(p, d.buf[d.pos:])
	d.pos += len(p)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.pos += n
	return v
}

// count reads a collection length, bounding it by the bytes remaining so
// corrupt input cannot force a huge allocation.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)-d.pos) {
		d.fail("collection length")
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s
}
