// Package profile implements the conflict-attribution profile: a
// mergeable, serializable record of where a workload's scheduling probes
// actually go — per constraint, per OR-tree position within the
// constraint, and per option within each tree.
//
// The metrics registry (internal/obs) aggregates by phase, opcode class,
// and blocking resource; that answers "where is time spent" but not "which
// tree inside this constraint blocks first" or "which option usually
// wins", which is exactly what a layout-tuning pass needs. The paper's §8
// orderings (sort OR-trees earliest-usage-first, time-zero-first usage
// order) are static guesses at those frequencies; this package measures
// the ground truth so opt.ReorderFromProfile can replace the guess with
// the observation.
//
// Collection follows the obs.Local discipline exactly:
//
//   - Each borrowed scheduling context carries a Local — plain int64
//     slices bumped with ordinary stores, no locks, no atomics, no
//     allocations. A nil Local disables collection at a single branch.
//   - On pool release (resctx.Pool.Put) the Local is merged into the
//     shared Profile's atomic counters and reset for reuse.
//
// The profile's shape is a Layout compiled once from the frozen
// description: flattened (constraint → tree slot → option slot) prefix
// arrays, so every hot-path bump is one add and one or two indexed
// increments. Shared trees get one slot per (constraint, position)
// referencing them — deliberately: the reorder decision is per position,
// and the same tree may block first in one constraint and never in
// another.
//
// A Snapshot serializes to JSON (the /debug/profile endpoint) and to a
// content-addressed binary artifact (MDPF, see encode.go) keyed by
// description fingerprint × workload, so a tuning run can prove which
// description and which workload produced the evidence it acted on.
package profile

import (
	"encoding/json"
	"io"
	"sync/atomic"

	"mdes/internal/lowlevel"
)

// Layout is the flattened index space of one compiled description:
// constraint c owns tree slots conTree[c]..conTree[c+1], tree slot t owns
// option slots treeOpt[t]..treeOpt[t+1]. It is built once (against the
// description the engine will schedule with, after optimization) and
// shared read-only by every Local.
type Layout struct {
	conNames  []string // per constraint
	treeNames []string // per tree slot: Tree.Name, falling back to Src
	optSrcs   []string // per option slot: Option.Src provenance
	resNames  []string
	conTree   []int32 // len(conNames)+1 prefix sums
	treeOpt   []int32 // len(treeNames)+1 prefix sums
	// Single-option trees need no per-option hot-path accounting: the
	// only option is chosen on every constraint success, so Snapshot
	// reconstructs Selected = attempts - conflicts exactly. Success
	// therefore walks only a precompiled list of each constraint's
	// multi-option trees — conMulti[conMultiStart[c]:conMultiStart[c+1]]
	// — instead of every chosen tree. Most trees are single-option, so
	// the common walk is zero or one entry; this is the main lever
	// keeping profiling inside the overhead gate.
	conMultiStart []int32     // len(conNames)+1 prefix sums into conMulti
	conMulti      []multiTree // multi-option tree slots, grouped by constraint
}

// multiTree locates one multi-option tree inside its constraint: ti is
// the tree's position in the constraint's AND-list (the index into
// check.Selection.Chosen), o0/o1 its option-slot range.
type multiTree struct {
	ti     int32
	o0, o1 int32
}

// NewLayout flattens the description's constraint/tree/option structure.
func NewLayout(m *lowlevel.MDES) *Layout {
	l := &Layout{
		resNames:      append([]string(nil), m.ResourceNames...),
		conTree:       make([]int32, 1, len(m.Constraints)+1),
		treeOpt:       make([]int32, 1, len(m.Trees)+1),
		conMultiStart: make([]int32, 1, len(m.Constraints)+1),
	}
	for _, c := range m.Constraints {
		l.conNames = append(l.conNames, c.Name)
		for ti, t := range c.Trees {
			name := t.Name
			if name == "" {
				name = t.Src
			}
			l.treeNames = append(l.treeNames, name)
			o0 := int32(len(l.optSrcs))
			for _, o := range t.Options {
				l.optSrcs = append(l.optSrcs, o.Src)
			}
			l.treeOpt = append(l.treeOpt, int32(len(l.optSrcs)))
			if len(t.Options) > 1 {
				l.conMulti = append(l.conMulti, multiTree{
					ti: int32(ti), o0: o0, o1: int32(len(l.optSrcs)),
				})
			}
		}
		l.conTree = append(l.conTree, int32(len(l.treeNames)))
		l.conMultiStart = append(l.conMultiStart, int32(len(l.conMulti)))
	}
	return l
}

// NumConstraints returns the number of constraints in the layout.
func (l *Layout) NumConstraints() int { return len(l.conNames) }

// Local is one context's unsynchronized slice of the profile. All methods
// use plain stores; a Local must only ever be written by the goroutine
// that currently owns its context (the same single-writer contract as
// obs.Local and flight.Local).
//
// Two layout decisions keep the per-attempt cost inside the overhead
// gate. Counter pairs that are always read and written together —
// (attempts, conflicts) per constraint, (selected, blocked) per option —
// are interleaved in one struct so a bump touches one cache line instead
// of two. And the layout has thousands of slots while one block touches
// tens, so the Local journals which slots it touched (a slot is appended
// exactly once, on its 0→1 transition) and Merge/Reset walk the journal
// instead of the whole layout — per-block pool-release cost is
// proportional to observed activity.
type Local struct {
	layout *Layout
	// Per constraint: a=attempts, b=conflicts.
	conStat []pair
	// Per option slot: a=times the option satisfied its tree (selected),
	// b=times it was probed busy before the tree's chosen option (blocked).
	optStat []pair
	// Per tree slot: times this (constraint, position) tree was the first
	// to block a failed probe.
	firstBlock []int64
	// Per resource: times the resource was the attributed blocker.
	resConflicts []int64
	// Touched-slot journals, one entry per nonzero slot above.
	touchedCon  []int32
	touchedTree []int32
	touchedOpt  []int32
	touchedRes  []int32
	dirty       bool
}

// pair is two counters that share a cache line because the hot path
// always inspects both (the 0→1 journal test reads a|b).
type pair struct{ a, b int64 }

// Success records a satisfied probe of constraint con: chosen[ti] is the
// option index picked within the constraint's ti-th tree (check.Selection
// semantics). Every option before the chosen one was probed and found
// busy.
func (l *Local) Success(con int, chosen []int) {
	conStat := l.conStat
	if uint(con) >= uint(len(conStat)) {
		return
	}
	l.dirty = true
	cs := &conStat[con]
	if cs.a|cs.b == 0 {
		l.touchedCon = append(l.touchedCon, int32(con))
	}
	cs.a++
	// Walk only the constraint's multi-option trees (usually zero or
	// one); single-option trees are reconstructed at Snapshot time.
	m0, m1 := l.layout.conMultiStart[con], l.layout.conMultiStart[con+1]
	if m0 == m1 {
		return
	}
	optStat := l.optStat
	for _, mt := range l.layout.conMulti[m0:m1] {
		if int(mt.ti) >= len(chosen) {
			continue
		}
		oi := int32(chosen[mt.ti])
		if uint32(oi) >= uint32(mt.o1-mt.o0) {
			continue
		}
		j := mt.o0 + oi
		os := &optStat[j]
		if os.a|os.b == 0 {
			l.touchedOpt = append(l.touchedOpt, j)
		}
		os.a++
		for k := mt.o0; k < j; k++ {
			os := &optStat[k]
			if os.a|os.b == 0 {
				l.touchedOpt = append(l.touchedOpt, k)
			}
			os.b++
		}
	}
}

// Conflict records a failed probe of constraint con: tree is the position
// (within the constraint) of the first unsatisfiable tree, res the
// attributed blocking resource. Either may be -1 when the backend cannot
// attribute (the conflict itself is still counted).
func (l *Local) Conflict(con, tree, res int) {
	conStat := l.conStat
	if uint(con) >= uint(len(conStat)) {
		return
	}
	l.dirty = true
	cs := &conStat[con]
	if cs.a|cs.b == 0 {
		l.touchedCon = append(l.touchedCon, int32(con))
	}
	cs.a++
	cs.b++
	if t0 := l.layout.conTree[con]; tree >= 0 && t0+int32(tree) < l.layout.conTree[con+1] {
		t := t0 + int32(tree)
		if l.firstBlock[t] == 0 {
			l.touchedTree = append(l.touchedTree, t)
		}
		l.firstBlock[t]++
	}
	if uint(res) < uint(len(l.resConflicts)) {
		if l.resConflicts[res] == 0 {
			l.touchedRes = append(l.touchedRes, int32(res))
		}
		l.resConflicts[res]++
	}
}

// Reset zeroes the local for reuse by the next context borrow, walking
// only the journaled slots.
func (l *Local) Reset() {
	if l == nil || !l.dirty {
		return
	}
	for _, ci := range l.touchedCon {
		l.conStat[ci] = pair{}
	}
	for _, t := range l.touchedTree {
		l.firstBlock[t] = 0
	}
	for _, o := range l.touchedOpt {
		l.optStat[o] = pair{}
	}
	for _, r := range l.touchedRes {
		l.resConflicts[r] = 0
	}
	l.touchedCon = l.touchedCon[:0]
	l.touchedTree = l.touchedTree[:0]
	l.touchedOpt = l.touchedOpt[:0]
	l.touchedRes = l.touchedRes[:0]
	l.dirty = false
}

// Meta identifies what a profile is evidence about: which description
// (fingerprint), scheduled with which checker backend, over which
// workload. Machine and fingerprint are stamped by the engine at
// construction; the workload tag is stamped by whichever tool drives the
// run (e.g. "seeded:ops=20000,seed=1996").
type Meta struct {
	Machine     string `json:"machine"`
	MachineHash string `json:"machine_hash"`
	Checker     string `json:"checker,omitempty"`
	Workload    string `json:"workload,omitempty"`
}

// Profile is the shared, concurrency-safe accumulation point: atomic
// mirrors of the Local slices, merged on context release.
type Profile struct {
	layout       *Layout
	meta         atomic.Pointer[Meta]
	attempts     []atomic.Int64
	conflicts    []atomic.Int64
	firstBlock   []atomic.Int64
	selected     []atomic.Int64
	blocked      []atomic.Int64
	resConflicts []atomic.Int64
	merges       atomic.Int64
}

// New builds an empty profile shaped like the given description. The
// description must be the one the engine schedules with (same constraint,
// tree, and option order) or attribution indices will not line up.
func New(m *lowlevel.MDES) *Profile {
	l := NewLayout(m)
	p := &Profile{
		layout:       l,
		attempts:     make([]atomic.Int64, len(l.conNames)),
		conflicts:    make([]atomic.Int64, len(l.conNames)),
		firstBlock:   make([]atomic.Int64, len(l.treeNames)),
		selected:     make([]atomic.Int64, len(l.optSrcs)),
		blocked:      make([]atomic.Int64, len(l.optSrcs)),
		resConflicts: make([]atomic.Int64, len(l.resNames)),
	}
	p.meta.Store(&Meta{Machine: m.MachineName})
	return p
}

// Layout returns the profile's index space.
func (p *Profile) Layout() *Layout { return p.layout }

// SetMeta stamps the description identity (mirrors flight.Recorder.SetMeta;
// called by the engine before scheduling starts).
func (p *Profile) SetMeta(machine, machineHash, checker string) {
	m := *p.meta.Load()
	m.Machine, m.MachineHash, m.Checker = machine, machineHash, checker
	p.meta.Store(&m)
}

// SetWorkload stamps the workload tag (called by the driving tool).
func (p *Profile) SetWorkload(workload string) {
	m := *p.meta.Load()
	m.Workload = workload
	p.meta.Store(&m)
}

// Meta returns the current identity stamp.
func (p *Profile) Meta() Meta { return *p.meta.Load() }

// NewLocal returns a fresh Local shaped like the profile, for embedding in
// a pooled scheduling context.
func (p *Profile) NewLocal() *Local {
	l := p.layout
	return &Local{
		layout:       l,
		conStat:      make([]pair, len(l.conNames)),
		optStat:      make([]pair, len(l.optSrcs)),
		firstBlock:   make([]int64, len(l.treeNames)),
		resConflicts: make([]int64, len(l.resNames)),
	}
}

// Merge folds a local into the shared counters, walking only the slots
// the local journaled. Cheap to call with a clean local (single branch).
// The local must be shaped by this profile's layout (Profile.NewLocal).
func (p *Profile) Merge(l *Local) {
	if l == nil || !l.dirty || l.layout != p.layout {
		return
	}
	for _, ci := range l.touchedCon {
		if v := l.conStat[ci].a; v != 0 {
			p.attempts[ci].Add(v)
		}
		if v := l.conStat[ci].b; v != 0 {
			p.conflicts[ci].Add(v)
		}
	}
	for _, t := range l.touchedTree {
		p.firstBlock[t].Add(l.firstBlock[t])
	}
	for _, o := range l.touchedOpt {
		if v := l.optStat[o].a; v != 0 {
			p.selected[o].Add(v)
		}
		if v := l.optStat[o].b; v != 0 {
			p.blocked[o].Add(v)
		}
	}
	for _, r := range l.touchedRes {
		p.resConflicts[r].Add(l.resConflicts[r])
	}
	p.merges.Add(1)
}

// OptionProfile is one option slot's observed behaviour.
type OptionProfile struct {
	Src string `json:"src,omitempty"`
	// Selected counts successful probes that picked this option.
	Selected int64 `json:"selected"`
	// Blocked counts probes (successful at the tree level) that found
	// this option busy and moved on to a later one.
	Blocked int64 `json:"blocked"`
}

// TreeProfile is one (constraint, position) tree slot.
type TreeProfile struct {
	Name string `json:"name,omitempty"`
	// FirstBlock counts failed constraint probes where this tree was the
	// first with no free option (the tree that short-circuited the scan).
	FirstBlock int64           `json:"first_block"`
	Options    []OptionProfile `json:"options"`
}

// ConstraintProfile is one constraint's observed probe traffic.
type ConstraintProfile struct {
	Name      string        `json:"name"`
	Attempts  int64         `json:"attempts"`
	Conflicts int64         `json:"conflicts"`
	Trees     []TreeProfile `json:"trees"`
}

// ResourceProfile is one resource's attributed conflict count.
type ResourceProfile struct {
	Resource  string `json:"resource"`
	Conflicts int64  `json:"conflicts"`
}

// Snapshot is a consistent-enough point-in-time copy of the profile
// (counters are read individually; per-slot sums may straddle a concurrent
// merge, exactly like obs.Registry.Snapshot).
type Snapshot struct {
	Meta        Meta                `json:"meta"`
	Merges      int64               `json:"merges"`
	Constraints []ConstraintProfile `json:"constraints"`
	Resources   []ResourceProfile   `json:"resources"`
}

// Snapshot captures the current counters.
func (p *Profile) Snapshot() Snapshot {
	l := p.layout
	s := Snapshot{
		Meta:        p.Meta(),
		Merges:      p.merges.Load(),
		Constraints: make([]ConstraintProfile, len(l.conNames)),
		Resources:   make([]ResourceProfile, len(l.resNames)),
	}
	for ci := range l.conNames {
		cp := &s.Constraints[ci]
		cp.Name = l.conNames[ci]
		cp.Attempts = p.attempts[ci].Load()
		cp.Conflicts = p.conflicts[ci].Load()
		t0, t1 := l.conTree[ci], l.conTree[ci+1]
		cp.Trees = make([]TreeProfile, t1-t0)
		for t := t0; t < t1; t++ {
			tp := &cp.Trees[t-t0]
			tp.Name = l.treeNames[t]
			tp.FirstBlock = p.firstBlock[t].Load()
			o0, o1 := l.treeOpt[t], l.treeOpt[t+1]
			tp.Options = make([]OptionProfile, o1-o0)
			if o1-o0 == 1 {
				// Single-option trees skip hot-path accounting; the only
				// option is chosen on every success of the constraint.
				tp.Options[0] = OptionProfile{
					Src:      l.optSrcs[o0],
					Selected: cp.Attempts - cp.Conflicts,
				}
				continue
			}
			for o := o0; o < o1; o++ {
				tp.Options[o-o0] = OptionProfile{
					Src:      l.optSrcs[o],
					Selected: p.selected[o].Load(),
					Blocked:  p.blocked[o].Load(),
				}
			}
		}
	}
	for ri := range l.resNames {
		s.Resources[ri] = ResourceProfile{
			Resource:  l.resNames[ri],
			Conflicts: p.resConflicts[ri].Load(),
		}
	}
	return s
}

// WriteSnapshot writes the current snapshot as indented JSON. It
// structurally satisfies the obs exporter's ProfileExporter interface
// (the /debug/profile endpoint).
func (p *Profile) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot())
}
