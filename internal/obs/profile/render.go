package profile

import (
	"fmt"
	"sort"
	"strings"

	"mdes/internal/textutil"
)

// TopResources returns the n hottest conflict-attributed resources,
// descending, ties broken by name for determinism.
func TopResources(s *Snapshot, n int) []ResourceProfile {
	hot := make([]ResourceProfile, 0, len(s.Resources))
	for _, r := range s.Resources {
		if r.Conflicts > 0 {
			hot = append(hot, r)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Conflicts != hot[j].Conflicts {
			return hot[i].Conflicts > hot[j].Conflicts
		}
		return hot[i].Resource < hot[j].Resource
	})
	if n > 0 && len(hot) > n {
		hot = hot[:n]
	}
	return hot
}

// FormatSnapshot renders the profile as the aligned ASCII tables the rest
// of the reporting stack uses: the hottest constraints with their
// per-tree first-block counts, and the top conflicting resources. topN
// bounds both tables (<=0 means 12).
func FormatSnapshot(s *Snapshot, topN int) string {
	if topN <= 0 {
		topN = 12
	}
	var b strings.Builder

	b.WriteString("Conflict-attribution profile")
	if s.Meta.Machine != "" {
		fmt.Fprintf(&b, " — %s", s.Meta.Machine)
		if s.Meta.MachineHash != "" {
			fmt.Fprintf(&b, " (%s)", s.Meta.MachineHash)
		}
	}
	b.WriteByte('\n')
	if s.Meta.Checker != "" || s.Meta.Workload != "" {
		fmt.Fprintf(&b, "checker: %s, workload: %s\n", s.Meta.Checker, s.Meta.Workload)
	}

	type hotCon struct {
		c *ConstraintProfile
	}
	hot := make([]hotCon, 0, len(s.Constraints))
	for i := range s.Constraints {
		if s.Constraints[i].Attempts > 0 {
			hot = append(hot, hotCon{&s.Constraints[i]})
		}
	}
	sort.SliceStable(hot, func(i, j int) bool {
		return hot[i].c.Conflicts > hot[j].c.Conflicts
	})
	if len(hot) > topN {
		hot = hot[:topN]
	}
	if len(hot) == 0 {
		b.WriteString("(no profiled activity recorded)\n")
		return b.String()
	}

	ct := textutil.NewTable("Constraint", "Attempts", "Conflicts", "FirstBlock trees (pos:count)")
	for _, h := range hot {
		var fb []string
		for ti := range h.c.Trees {
			if n := h.c.Trees[ti].FirstBlock; n > 0 {
				fb = append(fb, fmt.Sprintf("%d:%d", ti, n))
			}
		}
		ct.Row(h.c.Name, h.c.Attempts, h.c.Conflicts, strings.Join(fb, " "))
	}
	b.WriteString("\nHottest constraints (by attributed conflicts)\n")
	b.WriteString(ct.String())

	if top := TopResources(s, topN); len(top) > 0 {
		max := float64(top[0].Conflicts)
		rt := textutil.NewTable("Resource", "Conflicts", "")
		for _, r := range top {
			rt.Row(r.Resource, r.Conflicts, textutil.Bar(float64(r.Conflicts), max, 24))
		}
		b.WriteString("\nTop conflicting resources\n")
		b.WriteString(rt.String())
	}

	fmt.Fprintf(&b, "\nprofile merges: %d\n", s.Merges)
	return b.String()
}
