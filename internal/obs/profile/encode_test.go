package profile

import (
	"bytes"
	"reflect"
	"testing"
)

func testSnapshot() Snapshot {
	p := New(testMDES())
	p.SetMeta("toy", "0123456789abcdef", "rumap")
	p.SetWorkload("seeded ops=100 seed=1")
	l := p.NewLocal()
	l.Success(0, []int{1, 0})
	l.Conflict(0, 0, 2)
	l.Success(1, []int{0})
	p.Merge(l)
	return p.Snapshot()
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := testSnapshot()
	data, addr, err := Encode(&s)
	if err != nil {
		t.Fatal(err)
	}
	got, gotAddr, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotAddr != addr {
		t.Fatalf("decode address %s, encode address %s", gotAddr, addr)
	}
	if !reflect.DeepEqual(*got, s) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", *got, s)
	}
	// Content addressing: the same snapshot encodes to the same bytes and
	// the same address, deterministically.
	data2, addr2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) || addr != addr2 {
		t.Fatalf("re-encode not deterministic: %s vs %s", addr, addr2)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := testSnapshot()
	data, _, err := Encode(&s)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one body byte: trailer checksum must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("decode accepted a corrupted body")
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(data); n++ {
		if _, _, err := Decode(data[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte truncation", n)
		}
	}
	// Wrong magic.
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("decode accepted bad magic")
	}
}

// FuzzDecode feeds arbitrary bytes to the MDPF decoder: it must never
// panic or over-allocate, and anything it accepts must re-encode to the
// identical artifact (the content address is a true identity).
func FuzzDecode(f *testing.F) {
	s := testSnapshot()
	if data, _, err := Encode(&s); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-9])
		tweaked := append([]byte(nil), data...)
		tweaked[6] ^= 0xff
		f.Add(tweaked)
	}
	f.Add([]byte("MDPF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, addr, err := Decode(data)
		if err != nil {
			return
		}
		re, reAddr, err := Encode(got)
		if err != nil {
			t.Fatalf("re-encode of accepted artifact failed: %v", err)
		}
		if reAddr != addr {
			t.Fatalf("address changed across decode/encode: %s -> %s", addr, reAddr)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted artifact is not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
