package profile

import (
	"strings"
	"sync"
	"testing"

	"mdes/internal/lowlevel"
)

// testMDES builds a small hand-rolled description exercising both layout
// shapes the hot path cares about: a constraint with a multi-option tree
// (per-option accounting) and an all-single-option constraint (Snapshot
// reconstruction from attempts - conflicts).
func testMDES() *lowlevel.MDES {
	optA0 := &lowlevel.Option{ID: 0, Src: "A[0]", Usages: []lowlevel.Usage{{Time: 0, Res: 0}}}
	optA1 := &lowlevel.Option{ID: 1, Src: "A[1]", Usages: []lowlevel.Usage{{Time: 0, Res: 1}}}
	optB0 := &lowlevel.Option{ID: 2, Src: "B[0]", Usages: []lowlevel.Usage{{Time: 1, Res: 2}}}
	optC0 := &lowlevel.Option{ID: 3, Src: "C[0]", Usages: []lowlevel.Usage{{Time: 0, Res: 2}}}
	treeA := &lowlevel.Tree{ID: 0, Name: "A", Options: []*lowlevel.Option{optA0, optA1}}
	treeB := &lowlevel.Tree{ID: 1, Name: "B", Options: []*lowlevel.Option{optB0}}
	treeC := &lowlevel.Tree{ID: 2, Src: "C", Options: []*lowlevel.Option{optC0}}
	return &lowlevel.MDES{
		MachineName:   "toy",
		NumResources:  3,
		ResourceNames: []string{"r0", "r1", "r2"},
		Options:       []*lowlevel.Option{optA0, optA1, optB0, optC0},
		Trees:         []*lowlevel.Tree{treeA, treeB, treeC},
		Constraints: []*lowlevel.Constraint{
			{Name: "alu", Trees: []*lowlevel.Tree{treeA, treeB}, Index: 0},
			{Name: "mem", Trees: []*lowlevel.Tree{treeC}, Index: 1},
		},
	}
}

func TestLayoutShape(t *testing.T) {
	l := NewLayout(testMDES())
	if got := l.NumConstraints(); got != 2 {
		t.Fatalf("NumConstraints = %d, want 2", got)
	}
	// Only tree A is multi-option, owned by constraint 0 at position 0.
	if len(l.conMulti) != 1 || l.conMulti[0] != (multiTree{ti: 0, o0: 0, o1: 2}) {
		t.Fatalf("conMulti = %+v, want one entry for tree A", l.conMulti)
	}
	if l.conMultiStart[1] != 1 || l.conMultiStart[2] != 1 {
		t.Fatalf("conMultiStart = %v, want [0 1 1]", l.conMultiStart)
	}
	if len(l.treeNames) != 3 || len(l.optSrcs) != 4 {
		t.Fatalf("flattened %d trees / %d options, want 3 / 4", len(l.treeNames), len(l.optSrcs))
	}
	// Tree C has no Name; the layout falls back to Src.
	if l.treeNames[2] != "C" {
		t.Fatalf("treeNames[2] = %q, want Src fallback %q", l.treeNames[2], "C")
	}
}

func TestSuccessConflictMergeSnapshot(t *testing.T) {
	p := New(testMDES())
	l := p.NewLocal()

	// alu succeeds picking A[1] (so A[0] was probed busy) and B[0].
	l.Success(0, []int{1, 0})
	// alu fails: tree 0 blocks first, attributed to resource r2.
	l.Conflict(0, 0, 2)
	// mem succeeds twice and fails once, unattributed.
	l.Success(1, []int{0})
	l.Success(1, []int{0})
	l.Conflict(1, -1, -1)
	p.Merge(l)

	s := p.Snapshot()
	if s.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", s.Merges)
	}
	alu := s.Constraints[0]
	if alu.Attempts != 2 || alu.Conflicts != 1 {
		t.Fatalf("alu attempts/conflicts = %d/%d, want 2/1", alu.Attempts, alu.Conflicts)
	}
	if got := alu.Trees[0].FirstBlock; got != 1 {
		t.Fatalf("alu tree A first_block = %d, want 1", got)
	}
	a := alu.Trees[0].Options
	if a[0].Selected != 0 || a[0].Blocked != 1 || a[1].Selected != 1 || a[1].Blocked != 0 {
		t.Fatalf("tree A options = %+v, want A[0] blocked once, A[1] selected once", a)
	}
	// Single-option trees carry no hot-path counters; Snapshot reconstructs
	// Selected = attempts - conflicts.
	if got := alu.Trees[1].Options[0].Selected; got != 1 {
		t.Fatalf("tree B reconstructed selected = %d, want 1", got)
	}
	mem := s.Constraints[1]
	if mem.Attempts != 3 || mem.Conflicts != 1 {
		t.Fatalf("mem attempts/conflicts = %d/%d, want 3/1", mem.Attempts, mem.Conflicts)
	}
	if got := mem.Trees[0].Options[0].Selected; got != 2 {
		t.Fatalf("tree C reconstructed selected = %d, want 2", got)
	}
	if s.Resources[2].Conflicts != 1 || s.Resources[0].Conflicts != 0 {
		t.Fatalf("resource conflicts = %+v, want only r2=1", s.Resources)
	}
}

func TestLocalResetReuse(t *testing.T) {
	p := New(testMDES())
	l := p.NewLocal()
	for round := 0; round < 3; round++ {
		l.Success(0, []int{0, 0})
		l.Conflict(0, 1, 1)
		p.Merge(l)
		l.Reset()
	}
	// A merged-then-reset local must contribute nothing on re-merge.
	p.Merge(l)
	s := p.Snapshot()
	if s.Constraints[0].Attempts != 6 || s.Constraints[0].Conflicts != 3 {
		t.Fatalf("after 3 rounds: attempts/conflicts = %d/%d, want 6/3",
			s.Constraints[0].Attempts, s.Constraints[0].Conflicts)
	}
	if s.Constraints[0].Trees[1].FirstBlock != 3 {
		t.Fatalf("tree B first_block = %d, want 3", s.Constraints[0].Trees[1].FirstBlock)
	}
	if s.Merges != 3 {
		t.Fatalf("Merges = %d, want 3 (clean local must not merge)", s.Merges)
	}
}

func TestMergeForeignLocal(t *testing.T) {
	p := New(testMDES())
	other := New(testMDES())
	l := other.NewLocal()
	l.Success(0, []int{0, 0})
	p.Merge(l) // wrong layout: must be a no-op
	if s := p.Snapshot(); s.Merges != 0 || s.Constraints[0].Attempts != 0 {
		t.Fatalf("foreign local merged: %+v", s)
	}
	p.Merge(nil) // nil local: no-op
	if got := p.Snapshot().Merges; got != 0 {
		t.Fatalf("nil merge counted: %d", got)
	}
}

func TestOutOfRangeIndices(t *testing.T) {
	p := New(testMDES())
	l := p.NewLocal()
	l.Success(99, []int{0})
	l.Conflict(-1, 0, 0)
	l.Conflict(0, 99, 99)     // tree/res out of range: conflict still counts
	l.Success(0, []int{9, 9}) // chosen option out of range: attempt still counts
	p.Merge(l)
	s := p.Snapshot()
	if s.Constraints[0].Attempts != 2 || s.Constraints[0].Conflicts != 1 {
		t.Fatalf("attempts/conflicts = %d/%d, want 2/1",
			s.Constraints[0].Attempts, s.Constraints[0].Conflicts)
	}
	for _, r := range s.Resources {
		if r.Conflicts != 0 {
			t.Fatalf("out-of-range resource attributed: %+v", r)
		}
	}
}

// TestConcurrentMerge exercises the single-writer-local / atomic-shared
// contract under the race detector: one Local per goroutine, merged and
// reset repeatedly while another goroutine snapshots.
func TestConcurrentMerge(t *testing.T) {
	p := New(testMDES())
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := p.NewLocal()
			for i := 0; i < rounds; i++ {
				l.Success(0, []int{1, 0})
				l.Conflict(0, 0, 2)
				l.Success(1, []int{0})
				p.Merge(l)
				l.Reset()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = p.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	s := p.Snapshot()
	want := int64(goroutines * rounds)
	if s.Constraints[0].Attempts != 2*want || s.Constraints[0].Conflicts != want {
		t.Fatalf("alu attempts/conflicts = %d/%d, want %d/%d",
			s.Constraints[0].Attempts, s.Constraints[0].Conflicts, 2*want, want)
	}
	if s.Constraints[1].Attempts != want {
		t.Fatalf("mem attempts = %d, want %d", s.Constraints[1].Attempts, want)
	}
	if s.Resources[2].Conflicts != want {
		t.Fatalf("r2 conflicts = %d, want %d", s.Resources[2].Conflicts, want)
	}
	if s.Merges != want {
		t.Fatalf("Merges = %d, want %d", s.Merges, want)
	}
}

func TestMetaStamps(t *testing.T) {
	p := New(testMDES())
	p.SetMeta("toy", "deadbeefdeadbeef", "rumap")
	p.SetWorkload("seeded ops=100 seed=1")
	m := p.Meta()
	if m.Machine != "toy" || m.MachineHash != "deadbeefdeadbeef" ||
		m.Checker != "rumap" || m.Workload != "seeded ops=100 seed=1" {
		t.Fatalf("meta = %+v", m)
	}
}

func TestTopResourcesAndFormat(t *testing.T) {
	p := New(testMDES())
	l := p.NewLocal()
	for i := 0; i < 5; i++ {
		l.Conflict(0, 0, 2)
	}
	l.Conflict(0, 0, 0)
	p.Merge(l)
	s := p.Snapshot()

	top := TopResources(&s, 1)
	if len(top) != 1 || top[0].Resource != "r2" || top[0].Conflicts != 5 {
		t.Fatalf("TopResources = %+v, want [r2:5]", top)
	}
	out := FormatSnapshot(&s, 2)
	if !strings.Contains(out, "r2") || !strings.Contains(out, "alu") {
		t.Fatalf("FormatSnapshot missing expected rows:\n%s", out)
	}
}
