package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/obs/profile"
)

// fakeFlight is a minimal FlightExporter for endpoint tests.
type fakeFlight struct {
	blocks    int64
	anomalies int64
	dumps     int
}

func (f *fakeFlight) WritePrometheus(b *strings.Builder) {
	fmt.Fprintf(b, "mdes_flight_blocks_total %d\n", f.blocks)
}

func (f *fakeFlight) WriteDump(w io.Writer) error {
	f.dumps++
	_, err := fmt.Fprintf(w, "{\"blocks\":%d}\n", f.blocks)
	return err
}

func (f *fakeFlight) Status() (int64, int64) { return f.blocks, f.anomalies }

func testGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthzWithoutFlight(t *testing.T) {
	r := NewRegistry(nil, nil)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := testGet(t, srv.Addr, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz does not parse: %v\n%s", err, body)
	}
	if health.Status != "ok" {
		t.Errorf("/healthz status = %q", health.Status)
	}
	if code, _ := testGet(t, srv.Addr, "/debug/flight"); code != http.StatusNotFound {
		t.Errorf("/debug/flight without exporter: status %d, want 404", code)
	}
}

func TestFlightEndpoints(t *testing.T) {
	r := NewRegistry([]string{"alu"}, []string{"r0"})
	l := r.NewLocal()
	l.Attempt(PhaseList, 0, 1, 1, 10, true)
	r.Merge(l)
	fl := &fakeFlight{blocks: 42, anomalies: 3}
	srv, err := ServeMetrics("127.0.0.1:0", r, WithFlightExporter(fl))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := testGet(t, srv.Addr, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status    string `json:"status"`
		Blocks    int64  `json:"blocks"`
		Anomalies int64  `json:"anomalies"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz does not parse: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Blocks != 42 || health.Anomalies != 3 {
		t.Errorf("/healthz = %+v", health)
	}

	code, body = testGet(t, srv.Addr, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight status %d", code)
	}
	var dump struct {
		Blocks int64 `json:"blocks"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/flight does not parse: %v\n%s", err, body)
	}
	if dump.Blocks != 42 || fl.dumps != 1 {
		t.Errorf("dump blocks = %d, dumps = %d", dump.Blocks, fl.dumps)
	}

	// The flight recorder's metrics ride along on /metrics, after the
	// registry's own series.
	_, body = testGet(t, srv.Addr, "/metrics")
	if !strings.Contains(body, "mdes_flight_blocks_total 42") {
		t.Errorf("/metrics missing flight series:\n%s", body)
	}
	if !strings.Contains(body, `mdes_attempts_total{phase="list"} 1`) {
		t.Errorf("/metrics missing registry series:\n%s", body)
	}
}

func TestProfileEndpoint(t *testing.T) {
	r := NewRegistry(nil, nil)
	p := profile.New(profileTestMDES())
	l := p.NewLocal()
	l.Success(0, []int{0})
	l.Conflict(0, 0, 0)
	p.Merge(l)
	srv, err := ServeMetrics("127.0.0.1:0", r, WithProfileExporter(p))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := testGet(t, srv.Addr, "/debug/profile")
	if code != http.StatusOK {
		t.Fatalf("/debug/profile status %d", code)
	}
	var snap struct {
		Merges      int64 `json:"merges"`
		Constraints []struct {
			Name      string `json:"name"`
			Attempts  int64  `json:"attempts"`
			Conflicts int64  `json:"conflicts"`
		} `json:"constraints"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/profile does not parse: %v\n%s", err, body)
	}
	if snap.Merges != 1 || len(snap.Constraints) != 1 ||
		snap.Constraints[0].Attempts != 2 || snap.Constraints[0].Conflicts != 1 {
		t.Errorf("/debug/profile snapshot = %+v", snap)
	}
}

func TestProfileEndpointUnconfigured(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", NewRegistry(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := testGet(t, srv.Addr, "/debug/profile"); code != http.StatusNotFound {
		t.Errorf("/debug/profile without exporter: status %d, want 404", code)
	}
}

// profileTestMDES is a one-constraint description for endpoint tests.
func profileTestMDES() *lowlevel.MDES {
	o := &lowlevel.Option{Src: "A[0]", Usages: []lowlevel.Usage{{Time: 0, Res: 0}}}
	tr := &lowlevel.Tree{Name: "A", Options: []*lowlevel.Option{o}}
	return &lowlevel.MDES{
		MachineName:   "toy",
		NumResources:  1,
		ResourceNames: []string{"r0"},
		Options:       []*lowlevel.Option{o},
		Trees:         []*lowlevel.Tree{tr},
		Constraints:   []*lowlevel.Constraint{{Name: "alu", Trees: []*lowlevel.Tree{tr}}},
	}
}

// TestServerCloseStopsListener asserts the satellite-1 contract: after
// Close returns, the listener no longer accepts connections.
func TestServerCloseStopsListener(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", NewRegistry(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	if code, _ := testGet(t, addr, "/healthz"); code != http.StatusOK {
		t.Fatalf("pre-close /healthz status %d", code)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("GET succeeded after Close; listener still accepting")
	}
}
