package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes each block record as one JSON line. A mutex makes
// every record one atomic write, so lines from concurrent goroutines
// never interleave; readers can stream-parse the file line by line.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one record as one line. The first write error is retained
// (Err) and subsequent records are dropped.
func (s *JSONLSink) Emit(rec *BlockRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RingSink retains the most recent records in memory — the "flight
// recorder" for a service: cheap to leave enabled, inspected on demand.
type RingSink struct {
	mu    sync.Mutex
	recs  []*BlockRecord
	next  int
	total int64
}

// NewRingSink returns a ring retaining the last n records (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{recs: make([]*BlockRecord, 0, n)}
}

// Emit retains the record, evicting the oldest when full.
func (s *RingSink) Emit(rec *BlockRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.recs) < cap(s.recs) {
		s.recs = append(s.recs, rec)
		return
	}
	s.recs[s.next] = rec
	s.next = (s.next + 1) % cap(s.recs)
}

// Snapshot returns the retained records, oldest first.
func (s *RingSink) Snapshot() []*BlockRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*BlockRecord, 0, len(s.recs))
	out = append(out, s.recs[s.next:]...)
	out = append(out, s.recs[:s.next]...)
	return out
}

// Total returns how many records have been emitted (including evicted).
func (s *RingSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
