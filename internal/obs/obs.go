// Package obs is the observability layer: low-overhead metrics and
// structured tracing for the MDES schedulers and query interface.
//
// The paper's entire evaluation is instrumentation — counts of scheduling
// attempts, reservation-table options checked, and resource probes
// (Tables 5, 8-13) and the per-attempt options-checked distribution
// (Figure 2). This package generalizes that instrumentation for a
// long-running service: it attributes cost to description structure
// (which scheduler phase, which opcode class, which blocking resource)
// and to wall-clock time (log2-bucketed ns-per-Check histograms), and it
// can emit a machine-readable trace of every scheduling decision.
//
// Two independent facilities:
//
//   - A metrics Registry of atomic counters keyed by scheduler phase and
//     opcode class. The hot path never touches the registry: each borrowed
//     resctx.Context carries a plain (non-atomic) Local that the
//     schedulers bump, and the Local is merged into the Registry's atomics
//     when the context is released. Exporters (Prometheus text, expvar
//     JSON, human-readable tables) read consistent snapshots at any time.
//
//   - A Tracer producing one BlockRecord per scheduled block: block
//     start/finish, every issue attempt with its chosen option and cycle,
//     and conflict details naming the blocking resource and usage time —
//     the machine-readable version of the paper's Figure 2 data. Records
//     are accumulated privately per block and handed to a Sink (JSONL
//     writer or in-memory ring buffer) as one atomic unit, so records from
//     concurrent goroutines never interleave.
//
// Both facilities are nil-disabled: a nil Tracer and a nil Local cost a
// pointer comparison on the hot path and zero allocations (enforced by
// BenchmarkObsOverhead and the allocs-per-run gates at the repository
// root).
package obs

// Phase identifies which consumer of the compiled MDES performed an
// instrumented operation.
type Phase uint8

// Scheduler phases.
const (
	// PhaseList is the forward cycle-driven list scheduler.
	PhaseList Phase = iota
	// PhaseBackward is the backward (bottom-up) list scheduler.
	PhaseBackward
	// PhaseOpDriven is the operation-driven list scheduler.
	PhaseOpDriven
	// PhaseModulo is the iterative modulo scheduler.
	PhaseModulo
	// PhaseQuery is the execution-constraint query interface.
	PhaseQuery
	// NumPhases is the number of phases (for sizing arrays).
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseList:     "list",
	PhaseBackward: "backward",
	PhaseOpDriven: "opdriven",
	PhaseModulo:   "modulo",
	PhaseQuery:    "query",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}
