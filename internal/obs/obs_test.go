package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mdes/internal/stats"
)

func TestLatencyBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 38, NumLatencyBuckets - 1}, {1 << 62, NumLatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := latencyBucket(c.ns); got != c.want {
			t.Errorf("latencyBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's contents must be below its upper bound (except the
	// overflow bucket) and at or above the previous bound.
	for ns := int64(1); ns < 1<<20; ns *= 3 {
		b := latencyBucket(ns)
		if b < NumLatencyBuckets-1 && ns >= BucketUpperBound(b) {
			t.Errorf("ns %d landed in bucket %d with bound %d", ns, b, BucketUpperBound(b))
		}
		if b > 0 && ns < BucketUpperBound(b-1) {
			t.Errorf("ns %d in bucket %d but below previous bound %d", ns, b, BucketUpperBound(b-1))
		}
	}
}

func TestLocalMergeSnapshot(t *testing.T) {
	r := NewRegistry([]string{"alu", "mem"}, []string{"r0", "r1", "r2"})
	l := r.NewLocal()
	l.Attempt(PhaseList, 0, 3, 7, 100, true)
	l.Attempt(PhaseList, 0, 5, 9, 200, false)
	l.ConflictAt(2)
	l.Attempt(PhaseQuery, 1, 1, 1, 50, true)
	l.Backtrack(PhaseModulo, 4)
	r.Merge(l)

	s := r.Snapshot()
	list := s.Phases[PhaseList]
	if list.Attempts != 2 || list.OptionsChecked != 8 || list.ResourceChecks != 16 {
		t.Fatalf("list phase = %+v", list)
	}
	if list.Conflicts != 1 {
		t.Fatalf("list conflicts = %d", list.Conflicts)
	}
	// Timed samples extrapolate: each carries TimestampPeriod weight.
	if list.CheckNsSum != 300*TimestampPeriod {
		t.Fatalf("list ns sum = %d", list.CheckNsSum)
	}
	if got := s.Phases[PhaseModulo].Backtracks; got != 4 {
		t.Fatalf("modulo backtracks = %d", got)
	}
	if s.Classes[0].Attempts != 2 || s.Classes[0].Conflicts != 1 {
		t.Fatalf("class 0 = %+v", s.Classes[0])
	}
	if s.Classes[1].Attempts != 1 {
		t.Fatalf("class 1 = %+v", s.Classes[1])
	}
	if s.Resources[2].Conflicts != 1 || s.Resources[0].Conflicts != 0 {
		t.Fatalf("resources = %+v", s.Resources)
	}
	if s.Merges != 1 {
		t.Fatalf("merges = %d", s.Merges)
	}

	// A histogram sample must land somewhere, weighted by the period.
	var histTotal int64
	for _, n := range list.CheckNs {
		histTotal += n
	}
	if histTotal != 2*TimestampPeriod {
		t.Fatalf("histogram total = %d, want %d", histTotal, 2*TimestampPeriod)
	}

	// Untimed attempts (ns < 0, the non-sampled majority) count attempts
	// but leave the latency histogram alone.
	l2 := r.NewLocal()
	l2.Attempt(PhaseList, 0, 1, 1, -1, true)
	r.Merge(l2)
	after := r.Snapshot().Phases[PhaseList]
	if after.Attempts != list.Attempts+1 {
		t.Fatalf("untimed attempt not counted: %d", after.Attempts)
	}
	if after.CheckNsSum != list.CheckNsSum {
		t.Fatalf("untimed attempt changed ns sum: %d -> %d", list.CheckNsSum, after.CheckNsSum)
	}

	// Reset clears; a clean local merges as a no-op.
	l.Reset()
	r.Merge(l)
	if got := r.Snapshot(); got.Merges != 2 {
		t.Fatalf("clean local bumped merges: %d", got.Merges)
	}
}

func TestMergeConcurrent(t *testing.T) {
	r := NewRegistry([]string{"c"}, []string{"r"})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := r.NewLocal()
			for i := 0; i < per; i++ {
				l.Attempt(PhaseList, 0, 2, 4, 10, i%10 == 0)
			}
			r.Merge(l)
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Phases[PhaseList].Attempts != workers*per {
		t.Fatalf("attempts = %d, want %d", s.Phases[PhaseList].Attempts, workers*per)
	}
	if s.Merges != workers {
		t.Fatalf("merges = %d", s.Merges)
	}
}

func TestSampleEvery(t *testing.T) {
	ring := NewRingSink(100)
	tr := New(ring, SampleEvery(3))
	kept := 0
	for i := 0; i < 30; i++ {
		if bt := tr.StartBlock(int64(i), "m", 1); bt != nil {
			kept++
			bt.Finish(1, stats.Counters{})
		}
	}
	if kept != 10 {
		t.Fatalf("kept %d of 30 with SampleEvery(3)", kept)
	}
	if ring.Total() != 10 {
		t.Fatalf("ring total = %d", ring.Total())
	}
}

func TestRingSinkEviction(t *testing.T) {
	ring := NewRingSink(3)
	for i := 0; i < 5; i++ {
		ring.Emit(&BlockRecord{Block: int64(i)})
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	for i, want := range []int64{2, 3, 4} {
		if snap[i].Block != want {
			t.Fatalf("snapshot[%d].Block = %d, want %d", i, snap[i].Block, want)
		}
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d", ring.Total())
	}
}

func TestJSONLSinkAtomicLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				bt := tr.StartBlock(int64(w*100+i), "m", 2)
				bt.Attempt(0, "op", 0, 1, 0, true)
				bt.Attempt(1, "op", 0, 2, 0, true)
				bt.Finish(2, stats.Counters{Attempts: 2})
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec BlockRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d does not parse: %v", lines, err)
		}
		if len(rec.Events) != 2 {
			t.Fatalf("record %d has %d events (interleaved?)", rec.Block, len(rec.Events))
		}
		lines++
	}
	if lines != 400 {
		t.Fatalf("got %d lines, want 400", lines)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry([]string{"alu"}, []string{"r0"})
	l := r.NewLocal()
	l.Attempt(PhaseList, 0, 2, 4, 128, false)
	l.ConflictAt(0)
	r.Merge(l)
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	out := b.String()
	for _, want := range []string{
		`mdes_attempts_total{phase="list"} 1`,
		`mdes_conflicts_total{phase="list"} 1`,
		`mdes_class_attempts_total{class="alu"} 1`,
		`mdes_resource_conflicts_total{resource="r0"} 1`,
		fmt.Sprintf(`mdes_check_duration_ns_sum{phase="list"} %d`, 128*TimestampPeriod),
		fmt.Sprintf(`mdes_check_duration_ns_bucket{phase="list",le="+Inf"} %d`, TimestampPeriod),
		"mdes_contexts_in_flight 0",
		"mdes_context_merges_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry([]string{"alu"}, []string{"r0"})
	l := r.NewLocal()
	l.Attempt(PhaseList, 0, 1, 1, 10, true)
	r.Merge(l)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, `mdes_attempts_total{phase="list"} 1`) {
		t.Errorf("/metrics missing attempts:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if snap.Phases[PhaseList].Attempts != 1 {
		t.Errorf("snapshot attempts = %d", snap.Phases[PhaseList].Attempts)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestTopClasses(t *testing.T) {
	s := Snapshot{Classes: []ClassSnapshot{
		{Class: "a", Attempts: 1},
		{Class: "b", Attempts: 9},
		{Class: "c"},
		{Class: "d", Attempts: 9},
	}}
	top := TopClasses(s, 2)
	if len(top) != 2 || top[0].Class != "b" || top[1].Class != "d" {
		t.Fatalf("top = %+v", top)
	}
}

func TestFormatRegistry(t *testing.T) {
	r := NewRegistry([]string{"alu"}, []string{"r0", "r1"})
	l := r.NewLocal()
	l.Attempt(PhaseList, 0, 2, 4, 100, false)
	l.ConflictAt(1)
	l.Backtrack(PhaseModulo, 2)
	r.Merge(l)
	out := FormatRegistry(r)
	for _, want := range []string{"list", "alu", "r1", "Attempts"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRegistry missing %q:\n%s", want, out)
		}
	}
}

// testLedger builds a small two-pass ledger for exporter tests.
func testLedger() *Ledger {
	return &Ledger{
		Machine: "mini", Form: "AND/OR", Level: "full", Direction: "forward",
		WallNs: 3000,
		Before: SizeMetrics{Options: 10, Trees: 4, TotalBytes: 1000},
		After:  SizeMetrics{Options: 6, Trees: 4, TotalBytes: 700},
		Passes: []PassMetrics{
			{
				Pass: "redundancy/eliminate-redundant", WallNs: 2000,
				Before:  SizeMetrics{Options: 10, Trees: 4, TotalBytes: 1000},
				After:   SizeMetrics{Options: 6, Trees: 4, TotalBytes: 800},
				Changes: map[string]int{"optionsRemoved": 4},
			},
			{
				Pass: "bit-vector/pack", WallNs: 1000,
				Before: SizeMetrics{Options: 6, Trees: 4, TotalBytes: 800},
				After:  SizeMetrics{Options: 6, Trees: 4, TotalBytes: 700},
			},
		},
	}
}

func TestTranslatorLedgerInRegistry(t *testing.T) {
	r := NewRegistry([]string{"alu"}, []string{"r0"})
	if s := r.Snapshot(); s.Translator != nil {
		t.Fatal("fresh registry has a translator ledger")
	}
	led := testLedger()
	r.SetTranslator(led)
	if r.Translator() != led {
		t.Fatal("Translator() did not return the set ledger")
	}
	s := r.Snapshot()
	if s.Translator == nil || s.Translator.Machine != "mini" {
		t.Fatalf("snapshot translator: %+v", s.Translator)
	}

	// JSON round trip (the /metrics.json exporter path).
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"translator"`) ||
		!strings.Contains(string(data), `"redundancy/eliminate-redundant"`) {
		t.Fatalf("snapshot JSON lacks ledger:\n%s", data)
	}

	// Prometheus exposition.
	var b strings.Builder
	WritePrometheus(&b, s)
	out := b.String()
	for _, want := range []string{
		`mdes_translator_pass_duration_ns{pass="redundancy/eliminate-redundant"} 2000`,
		`mdes_translator_pass_delta_bytes{pass="bit-vector/pack"} -100`,
		`mdes_translator_duration_ns{level="full"} 3000`,
		`mdes_translator_size{when="before",metric="total_bytes"} 1000`,
		`mdes_translator_size{when="after",metric="total_bytes"} 700`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	// Human-readable report leads with the ledger.
	text := FormatSnapshot(s)
	if !strings.Contains(text, "Translator ledger: mini") ||
		!strings.Contains(text, "optionsRemoved=4") {
		t.Fatalf("FormatSnapshot lacks ledger section:\n%s", text)
	}
}

func TestLedgerDeltaAccounting(t *testing.T) {
	led := testLedger()
	if led.DeltaBytes() != -300 {
		t.Fatalf("ledger delta %d", led.DeltaBytes())
	}
	sum := 0
	for _, p := range led.Passes {
		sum += p.DeltaBytes()
	}
	if sum != led.DeltaBytes() {
		t.Fatalf("pass deltas sum to %d, total %d", sum, led.DeltaBytes())
	}
	out := FormatLedger(led)
	for _, want := range []string{"(input)", "redundancy/eliminate-redundant", "1000 -> 700 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatLedger missing %q:\n%s", want, out)
		}
	}
}
