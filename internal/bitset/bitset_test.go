package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Words() != 3 {
		t.Fatalf("Words = %d, want 3", s.Words())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty: %v", s)
	}
}

func TestNewZeroWidth(t *testing.T) {
	s := New(0)
	if s.Words() != 0 || !s.Empty() {
		t.Fatalf("zero-width set not empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Errorf("bit 64 still set after Clear")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Test(%d) did not panic", i)
				}
			}()
			s.Test(i)
		}()
	}
}

func TestFromMask(t *testing.T) {
	s := FromMask(0b1011, 8)
	want := []int{0, 1, 3}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestFromMaskTooWidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromMask(_, 65) did not panic")
		}
	}()
	FromMask(1, 65)
}

func TestIntersects(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(69)
	if a.Intersects(b) {
		t.Fatalf("disjoint sets report intersection")
	}
	b.Set(69)
	if !a.Intersects(b) {
		t.Fatalf("overlapping sets report no intersection")
	}
}

func TestIntersectsWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("width mismatch did not panic")
		}
	}()
	New(10).Intersects(New(20))
}

func TestOrAndNot(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(3)
	b.Set(68)
	a.Or(b)
	if !a.Test(3) || !a.Test(68) {
		t.Fatalf("Or missing bits: %v", a)
	}
	a.AndNot(b)
	if a.Test(68) || !a.Test(3) {
		t.Fatalf("AndNot wrong result: %v", a)
	}
}

func TestMaskOps(t *testing.T) {
	s := New(128)
	s.OrMask(1, 0b101)
	if !s.Test(64) || !s.Test(66) || s.Test(65) {
		t.Fatalf("OrMask wrong bits: %v", s)
	}
	if !s.IntersectsMask(1, 0b100) {
		t.Fatalf("IntersectsMask false negative")
	}
	if s.IntersectsMask(0, ^uint64(0)) {
		t.Fatalf("IntersectsMask false positive in word 0")
	}
	s.AndNotMask(1, 0b1)
	if s.Test(64) || !s.Test(66) {
		t.Fatalf("AndNotMask wrong result: %v", s)
	}
}

func TestContains(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(1)
	a.Set(69)
	b.Set(69)
	if !a.Contains(b) {
		t.Fatalf("a should contain b")
	}
	if b.Contains(a) {
		t.Fatalf("b should not contain a")
	}
	if !a.Contains(New(70)) {
		t.Fatalf("every set contains the empty set")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(70)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Test(6) {
		t.Fatalf("Clone shares storage with original")
	}
	if !b.Test(5) {
		t.Fatalf("Clone lost bit 5")
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a := New(70)
	a.Set(7)
	b := New(70)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatalf("CopyFrom result not Equal")
	}
	b.Set(8)
	if a.Equal(b) {
		t.Fatalf("Equal false positive")
	}
	if a.Equal(New(71)) {
		t.Fatalf("Equal across widths")
	}
}

func TestReset(t *testing.T) {
	s := New(130)
	s.Set(0)
	s.Set(129)
	s.Reset()
	if !s.Empty() {
		t.Fatalf("Reset left bits: %v", s)
	}
}

func TestString(t *testing.T) {
	s := New(70)
	s.Set(0)
	s.Set(65)
	if got, want := s.String(), "{0 65}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got, want := New(4).String(), "{}"; got != want {
		t.Fatalf("empty String = %q, want %q", got, want)
	}
}

// normalize maps arbitrary int inputs into valid bit indices for width n.
func normalize(idx []int, n int) []int {
	out := make([]int, 0, len(idx))
	for _, i := range idx {
		v := i % n
		if v < 0 {
			v += n
		}
		out = append(out, v)
	}
	return out
}

func TestQuickSetTestRoundTrip(t *testing.T) {
	f := func(idx []int) bool {
		const n = 200
		s := New(n)
		seen := map[int]bool{}
		for _, i := range normalize(idx, n) {
			s.Set(i)
			seen[i] = true
		}
		if s.Count() != len(seen) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Test(i) != seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrIsUnion(t *testing.T) {
	f := func(ai, bi []int) bool {
		const n = 150
		a, b := New(n), New(n)
		for _, i := range normalize(ai, n) {
			a.Set(i)
		}
		for _, i := range normalize(bi, n) {
			b.Set(i)
		}
		u := a.Clone()
		u.Or(b)
		for i := 0; i < n; i++ {
			if u.Test(i) != (a.Test(i) || b.Test(i)) {
				return false
			}
		}
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectsSymmetricAndConsistent(t *testing.T) {
	f := func(ai, bi []int) bool {
		const n = 90
		a, b := New(n), New(n)
		for _, i := range normalize(ai, n) {
			a.Set(i)
		}
		for _, i := range normalize(bi, n) {
			b.Set(i)
		}
		want := false
		for i := 0; i < n; i++ {
			if a.Test(i) && b.Test(i) {
				want = true
				break
			}
		}
		return a.Intersects(b) == want && b.Intersects(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotRemovesAll(t *testing.T) {
	f := func(ai, bi []int) bool {
		const n = 90
		a, b := New(n), New(n)
		for _, i := range normalize(ai, n) {
			a.Set(i)
		}
		for _, i := range normalize(bi, n) {
			b.Set(i)
		}
		d := a.Clone()
		d.AndNot(b)
		if d.Intersects(b) {
			return false
		}
		// a == d ∪ (a ∩ b)
		back := d.Clone()
		for i := 0; i < n; i++ {
			if a.Test(i) && b.Test(i) {
				back.Set(i)
			}
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectsMask(b *testing.B) {
	s := New(64)
	s.Set(63)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.IntersectsMask(0, 1) {
			b.Fatal("unexpected intersection")
		}
	}
}
