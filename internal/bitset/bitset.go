// Package bitset provides small, fixed-width bit vectors used by the
// resource-usage map and by packed reservation-table options.
//
// The four machines modeled in this repository each use fewer than 64
// abstract resources, so most sets occupy a single word, but the type
// supports arbitrary widths so user-authored machine descriptions are not
// artificially limited.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-width bit vector. The zero value is an empty set of width
// zero; use New to create a set wide enough for a given number of bits.
type Set struct {
	words []uint64
	n     int // number of valid bits
}

// WordBits is the number of bits per underlying word.
const WordBits = 64

// New returns an empty Set capable of holding n bits.
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	return Set{words: make([]uint64, (n+WordBits-1)/WordBits), n: n}
}

// FromMask returns a single-word Set of width n (n <= 64) initialized to mask.
func FromMask(mask uint64, n int) Set {
	if n > WordBits {
		panic(fmt.Sprintf("bitset: FromMask width %d exceeds %d", n, WordBits))
	}
	s := New(n)
	if len(s.words) > 0 {
		s.words[0] = mask
	}
	return s
}

// Len returns the width of the set in bits.
func (s Set) Len() int { return s.n }

// Words returns the number of underlying words.
func (s Set) Words() int { return len(s.words) }

// Word returns the i'th underlying word.
func (s Set) Word(i int) uint64 { return s.words[i] }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/WordBits] |= 1 << uint(i%WordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/WordBits] &^= 1 << uint(i%WordBits)
}

// Test reports whether bit i is set.
func (s Set) Test(i int) bool {
	s.check(i)
	return s.words[i/WordBits]&(1<<uint(i%WordBits)) != 0
}

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Reset clears all bits in place.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of other, which must have the same
// width.
func (s *Set) CopyFrom(other Set) {
	s.sameWidth(other)
	copy(s.words, other.words)
}

// Or sets s to the union of s and other.
func (s *Set) Or(other Set) {
	s.sameWidth(other)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// AndNot clears every bit of s that is set in other.
func (s *Set) AndNot(other Set) {
	s.sameWidth(other)
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s and other share any set bit.
func (s Set) Intersects(other Set) bool {
	s.sameWidth(other)
	for i, w := range other.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectsMask reports whether word w of s shares any bit with mask.
// It is the single-word fast path used by packed option checking.
func (s Set) IntersectsMask(w int, mask uint64) bool {
	return WordIntersects(s.words, w, mask)
}

// OrMask ors mask into word w of s.
func (s *Set) OrMask(w int, mask uint64) {
	WordOr(s.words, w, mask)
}

// AndNotMask clears the bits of mask from word w of s.
func (s *Set) AndNotMask(w int, mask uint64) {
	WordAndNot(s.words, w, mask)
}

// Raw-word kernels. The RU map keeps rows as Sets while the flat probe
// plan keeps a single row-major []uint64; both probe with the same three
// single-word operations, shared here so the packed-check semantics have
// exactly one definition.

// WordIntersects reports whether word w of words shares any bit with mask.
func WordIntersects(words []uint64, w int, mask uint64) bool {
	return words[w]&mask != 0
}

// WordOr ors mask into word w of words.
func WordOr(words []uint64, w int, mask uint64) {
	words[w] |= mask
}

// WordAndNot clears the bits of mask from word w of words.
func WordAndNot(words []uint64, w int, mask uint64) {
	words[w] &^= mask
}

// FirstBlocked returns the global bit index of the lowest set bit of
// words[w]&mask — the first blocked resource a conflict explanation
// names — or -1 when the word and mask do not intersect.
func FirstBlocked(words []uint64, w int, mask uint64) int {
	v := words[w] & mask
	if v == 0 {
		return -1
	}
	return w*WordBits + bits.TrailingZeros64(v)
}

// Contains reports whether every set bit of other is also set in s.
func (s Set) Contains(other Set) bool {
	s.sameWidth(other)
	for i, w := range other.words {
		if s.words[i]&w != w {
			return false
		}
	}
	return true
}

// Equal reports whether s and other have identical width and contents.
func (s Set) Equal(other Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range other.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn with the index of every set bit, in increasing order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*WordBits + b)
			w &= w - 1
		}
	}
}

// String renders the set as a list of set-bit indices, e.g. "{0 3 17}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s Set) sameWidth(other Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: width mismatch %d vs %d", s.n, other.n))
	}
}
