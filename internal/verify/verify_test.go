package verify

import (
	"flag"
	"testing"

	"mdes/internal/machines"
	"mdes/internal/mdgen"
)

// The differential job's knobs: `go test ./internal/verify -seed 1996
// -machines 200` reruns the CI sweep; `-seed N -machines 1` replays one
// reported failure. (The count flag is not named -n because go test
// intercepts -n as its own dry-run flag.)
var (
	seedFlag = flag.Int64("seed", 1, "first generator seed for the differential sweep")
	nFlag    = flag.Int("machines", 0, "number of generated machines to check (0 = default for the test mode)")
)

// TestDifferentialGenerated is the harness's main entry: N seeded random
// machines through the full pipeline, every backend and every pass probed
// against the oracle. A failure message is a complete reproducer (seed +
// minimized machine).
func TestDifferentialGenerated(t *testing.T) {
	n := *nFlag
	if n == 0 {
		n = 60
		if testing.Short() {
			n = 15
		}
	}
	failures, total := RunMany(*seedFlag, n, func(f *Failure) {
		t.Errorf("%s", f.Error())
	})
	if len(failures) == 0 {
		t.Logf("verified %d machines (seeds %d..%d): %s", n, *seedFlag, *seedFlag+int64(n)-1, total.String())
	}
}

// The hand-written machines go through the identical sweep: they cover
// idioms (issue slots, subset options, non-pairable ops) the generator's
// distribution may undersample.
func TestDifferentialHandWritten(t *testing.T) {
	for _, name := range machines.All {
		mach, err := machines.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckMachine(mach, 1996); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// A deliberately broken predicate must minimize while preserving the
// stage, and the resulting Failure must carry the reproducer pieces.
func TestFailureReportShape(t *testing.T) {
	spec := mdgen.Generate(5)
	if err := CheckSpec(spec); err != nil {
		t.Fatalf("seed 5 unexpectedly fails: %v", err)
	}
	f := &Failure{Seed: 5, Stage: "andor/none", Msg: "synthetic", Spec: spec}
	msg := f.Error()
	for _, want := range []string{"seed 5", "andor/none", "-selftest -seed 5", "machine gen5"} {
		if !contains(msg, want) {
			t.Errorf("failure report missing %q:\n%s", want, msg)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
