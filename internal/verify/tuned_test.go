package verify

import (
	"strings"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/obs/profile"
	"mdes/internal/opt"
)

func compileK5(t *testing.T, level opt.Level) *lowlevel.MDES {
	t.Helper()
	mach, err := machines.Load(machines.K5)
	if err != nil {
		t.Fatal(err)
	}
	m := lowlevel.Compile(mach, lowlevel.FormAndOr)
	opt.Apply(m, level, opt.Forward)
	return m
}

// A description must be equivalent to itself, and to a profile-reordered
// copy of itself — the exact pair the tuning loop feeds through this gate.
func TestCheckEquivalentAcceptsReorderedTwin(t *testing.T) {
	base := compileK5(t, opt.LevelTimeShift)
	if err := CheckEquivalent(base, compileK5(t, opt.LevelTimeShift), 1996); err != nil {
		t.Fatalf("identical twins rejected: %v", err)
	}

	tuned := compileK5(t, opt.LevelTimeShift)
	s := profile.New(tuned).Snapshot()
	// Arbitrary synthetic frequencies; the reorder is schedule-preserving
	// regardless of what the profile claims.
	for i := range s.Constraints {
		for j := range s.Constraints[i].Trees {
			s.Constraints[i].Trees[j].FirstBlock = int64((i*7 + j*13) % 97)
		}
	}
	for i := range s.Resources {
		s.Resources[i].Conflicts = int64((i * 31) % 53)
	}
	rep := opt.ReorderFromProfile(tuned, &s)
	if rep.TreesReordered == 0 && rep.ChecksReordered == 0 {
		t.Fatal("synthetic profile reordered nothing; test exercises nothing")
	}
	if err := CheckEquivalent(base, tuned, 1996); err != nil {
		t.Fatalf("profile-reordered description rejected: %v", err)
	}
}

// A reorder that altered semantics — here, an option losing a usage —
// must be caught before any artifact is written.
func TestCheckEquivalentRejectsSemanticDrift(t *testing.T) {
	base := compileK5(t, opt.LevelNone)
	broken := compileK5(t, opt.LevelNone)
	// Narrow acceptance: every multi-option tree loses its alternatives,
	// so contended probes that base satisfies via a later option now
	// conflict — the replay counters or issue cycles must diverge.
	for _, tr := range broken.Trees {
		if len(tr.Options) >= 2 {
			tr.Options = tr.Options[:1]
		}
	}
	err := CheckEquivalent(base, broken, 1996)
	if err == nil {
		t.Fatal("semantic drift accepted")
	}
	if !strings.Contains(err.Error(), "tune/equivalence") {
		t.Fatalf("error not attributed to the equivalence stage: %v", err)
	}
}

func TestCheckEquivalentRejectsShapeMismatch(t *testing.T) {
	base := compileK5(t, opt.LevelNone)
	broken := compileK5(t, opt.LevelNone)
	broken.Operations = broken.Operations[:len(broken.Operations)-1]
	if err := CheckEquivalent(base, broken, 1996); err == nil {
		t.Fatal("operation-table mismatch accepted")
	}
}
