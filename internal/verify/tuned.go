package verify

import (
	"mdes/internal/check"
	"mdes/internal/lowlevel"
	"mdes/internal/oracle"
	"mdes/internal/stats"
)

// CheckEquivalent differentially compares two compiled descriptions of
// the same machine — typically a freshly-optimized description and the
// same description after a layout-only pass like opt.ReorderFromProfile —
// asserting that they accept exactly the same schedules:
//
//   - the deterministic in-order stream (same construction as the seed
//     sweep) must issue every operation at identical cycles through a
//     fresh rumap checker on each description, with identical Attempts
//     and Conflicts (a layout pass may only change OptionsChecked and
//     ResourceChecks);
//   - after the replay, an exhaustive (operation × cycle) probe grid
//     over the full reservation envelope must answer identically.
//
// This is the safety gate of the tuning loop: a reorder that changed any
// scheduling decision fails here before any artifact is written.
func CheckEquivalent(base, tuned *lowlevel.MDES, streamSeed int64) error {
	const stage = "tune/equivalence"
	if len(base.Operations) != len(tuned.Operations) {
		return stageErrf(stage, "operation tables differ: %d vs %d entries",
			len(base.Operations), len(tuned.Operations))
	}
	nOps := len(base.Operations)
	if nOps == 0 {
		return nil
	}
	for i := range base.Operations {
		if base.Operations[i].Name != tuned.Operations[i].Name {
			return stageErrf(stage, "operation %d renamed: %q vs %q",
				i, base.Operations[i].Name, tuned.Operations[i].Name)
		}
	}

	stream, arrivals := makeStream(nOps, streamSeed)
	ckA := check.NewRUMap(base.NumResources)
	ckB := check.NewRUMap(tuned.NumResources)
	var cA, cB stats.Counters
	issA, errA := schedule(base, ckA, stream, arrivals, &cA)
	issB, errB := schedule(tuned, ckB, stream, arrivals, &cB)
	if (errA == nil) != (errB == nil) {
		return stageErrf(stage, "schedulability diverged: base err=%v tuned err=%v", errA, errB)
	}
	if errA != nil {
		return stageErrf(stage, "stream unschedulable on both: %v", errA)
	}
	for i := range issA {
		if issA[i] != issB[i] {
			return stageErrf(stage, "schedule diverged: op %d (%s) issued at %d on base, %d on tuned",
				i, base.Operations[stream[i]].Name, issA[i], issB[i])
		}
	}
	if cA.Attempts != cB.Attempts || cA.Conflicts != cB.Conflicts {
		return stageErrf(stage, "probe accounting diverged beyond layout: base attempts=%d conflicts=%d, tuned attempts=%d conflicts=%d",
			cA.Attempts, cA.Conflicts, cB.Attempts, cB.Conflicts)
	}

	// Post-schedule probe grid over the union reservation envelope.
	loA, hiA := oracle.TimeBounds(base)
	loB, hiB := oracle.TimeBounds(tuned)
	if loB < loA {
		loA = loB
	}
	if hiB > hiA {
		hiA = hiB
	}
	w := window{lo: loA - 2, hi: issA[len(issA)-1] + hiA + 2}
	for op := 0; op < nOps; op++ {
		conA := base.ConstraintFor(op, false)
		conB := tuned.ConstraintFor(op, false)
		for cycle := w.lo; cycle <= w.hi; cycle++ {
			_, gotA := ckA.Check(conA, cycle, &cA)
			_, gotB := ckB.Check(conB, cycle, &cB)
			if gotA != gotB {
				return stageErrf(stage, "probe diverged: op %s at cycle %d: base=%v tuned=%v",
					base.Operations[op].Name, cycle, gotA, gotB)
			}
		}
	}
	return nil
}
