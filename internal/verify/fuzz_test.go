package verify

import (
	"testing"

	"mdes/internal/mdgen"
)

// FuzzOptPipeline drives the whole differential harness from one fuzzed
// seed: generate a machine, push it through every form, every pass, and
// every backend, and require byte-identical schedules and probe answers
// everywhere. The fuzzer explores the generator's seed space; any
// counterexample it finds is replayed exactly by `schedbench -selftest
// -seed N -n 1` (which also minimizes it).
func FuzzOptPipeline(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 17, 42, 1996} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckSpec(mdgen.Generate(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}
