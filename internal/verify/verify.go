// Package verify is the differential correctness harness: it checks that
// every optimized form of a machine description accepts exactly the same
// schedules as the naive reference interpretation of its unoptimized flat
// tables (internal/oracle), which is the paper's §4 semantics-preservation
// contract ("the exact same schedule is produced in each case").
//
// For one machine, the harness drives a deterministic in-order operation
// stream through the oracle, then replays the identical stream through
// every description the pipeline can produce — OR and AND/OR forms, each
// optimization pass applied one at a time (so a divergence names the pass
// that introduced it), both shift directions, and every checker backend
// (rumap, automaton, modulo) — asserting byte-identical issue cycles and,
// on backends that allow random-access probes, identical boolean answers
// over an exhaustive (operation × cycle) probe grid around the schedule.
//
// Machines come from internal/mdgen, so a failing seed is a complete
// reproducer; failures are delta-minimized to the smallest spec that still
// fails at the same stage before being reported.
package verify

import (
	"fmt"
	"math/rand"
	"strings"

	"mdes/internal/check"
	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/mdgen"
	"mdes/internal/opt"
	"mdes/internal/oracle"
	"mdes/internal/query"
	"mdes/internal/stats"
)

// maxWait bounds how far past its earliest cycle the in-order scheduler
// searches before declaring the machine unschedulable — far beyond any
// reservation span a generated machine can produce.
const maxWait = 4096

// streamLen is the length of the deterministic operation stream replayed
// through every description of a machine.
const streamLen = 24

// Failure is one machine the harness caught misbehaving, minimized to the
// smallest spec that still fails at the same stage.
type Failure struct {
	Seed  int64  // generator seed that produced the failing machine
	Stage string // pipeline stage that diverged (e.g. "andor/time-shift/shift-usage-times")
	Msg   string // the original (pre-minimization) divergence
	Spec  *mdgen.Spec
}

// Error formats the failure as a self-contained bug report: the seed is
// the reproducer, the stage names the suspect pass or backend, and the
// minimized machine is small enough to debug by hand.
func (f *Failure) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: seed %d diverged at stage %s\n", f.Seed, f.Stage)
	fmt.Fprintf(&b, "  %s\n", f.Msg)
	fmt.Fprintf(&b, "reproduce: schedbench -selftest -seed %d -n 1\n", f.Seed)
	if f.Spec != nil {
		fmt.Fprintf(&b, "minimized machine:\n%s", f.Spec.Render())
	}
	return b.String()
}

// stageError tags a divergence with the pipeline stage that produced it,
// so minimization can preserve the stage, not just "fails somehow".
type stageError struct {
	stage string
	msg   string
}

func (e *stageError) Error() string { return e.stage + ": " + e.msg }

func stageOf(err error) string {
	if se, ok := err.(*stageError); ok {
		return se.stage
	}
	return ""
}

func stageErrf(stage, format string, a ...any) error {
	return &stageError{stage: stage, msg: fmt.Sprintf(format, a...)}
}

// window is the inclusive probe-cycle range of the differential grid.
type window struct{ lo, hi int }

// Run generates the machine for seed under the default shape envelope,
// checks it, and returns a minimized Failure (nil when everything agrees).
func Run(seed int64) *Failure { return RunConfig(seed, mdgen.Default()) }

// RunConfig is Run under an explicit shape envelope.
func RunConfig(seed int64, cfg mdgen.Config) *Failure {
	spec := mdgen.GenerateConfig(seed, cfg)
	return minimized(spec, CheckSpec(spec))
}

// minimized turns a divergence into a Failure, shrinking the spec to the
// smallest machine that still diverges at the same stage.
func minimized(spec *mdgen.Spec, err error) *Failure {
	if err == nil {
		return nil
	}
	stage := stageOf(err)
	min := mdgen.Minimize(spec, func(s *mdgen.Spec) bool {
		e := CheckSpec(s)
		return e != nil && stageOf(e) == stage
	})
	return &Failure{Seed: spec.Seed, Stage: stage, Msg: err.Error(), Spec: min}
}

// RunMany checks n consecutive seeds starting at start, invoking report as
// each failure is found (report may be nil). It returns every failure plus
// the aggregated probe accounting of the whole sweep — the paper's
// attempts/options/checks counters, so the tools can report how much
// differential evidence the run actually gathered.
func RunMany(start int64, n int, report func(*Failure)) ([]*Failure, stats.Counters) {
	var failures []*Failure
	var total stats.Counters
	for i := 0; i < n; i++ {
		spec := mdgen.Generate(start + int64(i))
		c, err := CheckSpecStats(spec)
		total.Add(c)
		if f := minimized(spec, err); f != nil {
			failures = append(failures, f)
			if report != nil {
				report(f)
			}
		}
	}
	return failures, total
}

// CheckSpec renders, loads, and differentially checks one generated spec.
// A machine that fails to load is itself a harness-caught bug: generated
// specs are valid by construction.
func CheckSpec(s *mdgen.Spec) error {
	_, err := CheckSpecStats(s)
	return err
}

// CheckSpecStats is CheckSpec returning the run's probe accounting.
func CheckSpecStats(s *mdgen.Spec) (stats.Counters, error) {
	mach, err := s.Machine()
	if err != nil {
		return stats.Counters{}, stageErrf("generate", "generated machine does not load: %v", err)
	}
	return CheckMachineStats(mach, s.Seed)
}

// CheckMachine runs the full differential sweep over one machine. The
// operation stream is a pure function of streamSeed, so a reported
// divergence replays exactly.
func CheckMachine(mach *hmdes.Machine, streamSeed int64) error {
	_, err := CheckMachineStats(mach, streamSeed)
	return err
}

// CheckMachineStats is CheckMachine returning the aggregated counters of
// every backend probe the sweep performed.
func CheckMachineStats(mach *hmdes.Machine, streamSeed int64) (stats.Counters, error) {
	var c stats.Counters
	err := checkMachine(mach, streamSeed, &c)
	return c, err
}

func checkMachine(mach *hmdes.Machine, streamSeed int64, c *stats.Counters) error {
	orc := oracle.New(mach)
	nOps := len(orc.MDES().Operations)

	stream, arrivals := makeStream(nOps, streamSeed)
	want, err := orc.ScheduleInOrder(stream, arrivals, maxWait)
	if err != nil {
		return stageErrf("oracle/schedule", "%v", err)
	}

	// The probe window covers every cycle any reservation or usage can
	// touch: the negative decode-stage envelope before cycle 0 through the
	// writeback envelope past the last issue.
	lo, hi := orc.TimeBounds()
	w := window{lo: lo - 2, hi: want[len(want)-1] + hi + 2}

	// The oracle's post-schedule answers, computed once and reused for
	// every description: its state depends only on the stream, which is
	// identical for all of them.
	grid := oracleGrid(orc, nOps, w)

	// Stage 1: OR form, unoptimized. This is the description the oracle
	// itself interprets, so on top of probe equivalence the rumap's
	// reserved-slot set must match the oracle's slot for slot.
	orNone := lowlevel.Compile(mach, lowlevel.FormOR)
	ru := check.NewRUMap(orNone.NumResources)
	if err := diffBackend("or/none", orNone, ru, stream, arrivals, want, grid, w, w.lo, c); err != nil {
		return err
	}
	if err := compareSlots("or/none", orc, ru); err != nil {
		return err
	}
	if err := diffProbePlan("or/probeplan", orNone, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}
	if err := diffArena("or/arena", orNone, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}

	// Stage 2: AND/OR form, then each optimization pass applied one at a
	// time. Probing after every pass attributes a semantics break to the
	// pass that introduced it rather than to the pipeline as a whole.
	and := lowlevel.Compile(mach, lowlevel.FormAndOr)
	if err := diffRUMap("andor/none", and, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}
	passes := []struct {
		name string
		run  func(*lowlevel.MDES) opt.Report
	}{
		{opt.PassEliminateRedundant, opt.EliminateRedundant},
		{opt.PassPruneDominated, opt.PruneDominatedOptions},
		{opt.PassPackBitVectors, opt.PackBitVectors},
		{opt.PassShiftUsageTimes, func(m *lowlevel.MDES) opt.Report { return opt.ShiftUsageTimes(m, opt.Forward) }},
		{opt.PassSortZeroFirst, opt.SortUsagesTimeZeroFirst},
		{opt.PassSortORTrees, opt.SortORTrees},
		{opt.PassHoistCommonUsages, opt.HoistCommonUsages},
	}
	for _, p := range passes {
		p.run(and)
		if err := diffRUMap("andor/"+p.name, and, stream, arrivals, want, grid, w, c); err != nil {
			return err
		}
	}

	// Stage 3: the remaining checker backends over the fully-optimized
	// forward description (`and` now equals LevelFull).
	if err := diffProbePlan("backend/probeplan", and, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}
	if err := diffAutomaton(and, stream, arrivals, want, c); err != nil {
		return err
	}
	if err := diffArena("andor/arena", and, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}
	if err := diffModulo(and, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}

	// Stage 4: the backward-shift pipeline (a backward scheduler's
	// configuration; usage times go non-positive, so rumap only).
	back := lowlevel.Compile(mach, lowlevel.FormAndOr)
	opt.Apply(back, opt.LevelFull, opt.Backward)
	if err := diffRUMap("andor/full-backward", back, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}

	// Stage 5: the fully-optimized OR form.
	orFull := lowlevel.Compile(mach, lowlevel.FormOR)
	opt.Apply(orFull, opt.LevelFull, opt.Forward)
	if err := diffRUMap("or/full", orFull, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}

	// Stage 6: the query layer must answer identically over the original
	// and fully-optimized descriptions.
	return diffQuery(orNone, and, c)
}

// makeStream builds the deterministic in-order stream for a machine with
// nOps operations: every op reachable, arrivals with both back-to-back
// pressure and gaps that let the window drain. A pure function of
// (nOps, streamSeed), so a reported divergence replays exactly.
func makeStream(nOps int, streamSeed int64) (stream, arrivals []int) {
	r := rand.New(rand.NewSource(streamSeed ^ 0x5deece66d))
	stream = make([]int, streamLen)
	arrivals = make([]int, streamLen)
	cycle := 0
	for i := range stream {
		stream[i] = r.Intn(nOps)
		cycle += r.Intn(3)
		if r.Intn(6) == 0 {
			cycle += 4
		}
		arrivals[i] = cycle
	}
	return stream, arrivals
}

// oracleGrid evaluates the oracle's post-schedule probe answer for every
// (operation, cycle) cell of the window.
func oracleGrid(orc *oracle.Oracle, nOps int, w window) [][]bool {
	grid := make([][]bool, nOps)
	for op := range grid {
		row := make([]bool, w.hi-w.lo+1)
		for cycle := w.lo; cycle <= w.hi; cycle++ {
			row[cycle-w.lo] = orc.Probe(op, cycle)
		}
		grid[op] = row
	}
	return grid
}

// schedule replays the stream through ck with the identical in-order
// policy the oracle used: each operation at the earliest feasible cycle at
// or after max(arrival, previous issue). Probes never go backward, so the
// same driver serves the monotonic-only automaton.
func schedule(m *lowlevel.MDES, ck check.Checker, stream, arrivals []int, c *stats.Counters) ([]int, error) {
	ck.Reset()
	issues := make([]int, len(stream))
	prev := 0
	for i, opIdx := range stream {
		cycle := arrivals[i]
		if cycle < prev {
			cycle = prev
		}
		start := cycle
		for {
			sel, ok := ck.Check(m.ConstraintFor(opIdx, false), cycle, c)
			if ok {
				ck.Reserve(sel)
				break
			}
			cycle++
			if cycle-start > maxWait {
				return nil, fmt.Errorf("op %d (%s) found no issue cycle within %d of %d",
					i, m.Operations[opIdx].Name, maxWait, start)
			}
		}
		issues[i] = cycle
		prev = cycle
	}
	return issues, nil
}

// diffBackend replays the stream through ck over m, requires the issue
// cycles to match the oracle's byte for byte, and — when the backend
// supports random-access probes — sweeps the probe grid against the
// oracle's answers. gridLo clamps the sweep's lower cycle (the modulo
// backend wraps negative cycles, so its sweep starts at zero).
func diffBackend(stage string, m *lowlevel.MDES, ck check.Checker, stream, arrivals, want []int, grid [][]bool, w window, gridLo int, c *stats.Counters) error {
	got, err := schedule(m, ck, stream, arrivals, c)
	if err != nil {
		return stageErrf(stage, "%v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			return stageErrf(stage, "schedule diverged: op %d (%s) issued at %d, oracle at %d",
				i, m.Operations[stream[i]].Name, got[i], want[i])
		}
	}
	if ck.Capabilities().MonotonicOnly {
		return nil
	}
	for op := range grid {
		con := m.ConstraintFor(op, false)
		for cycle := w.lo; cycle <= w.hi; cycle++ {
			if cycle < gridLo {
				continue
			}
			_, got := ck.Check(con, cycle, c)
			if want := grid[op][cycle-w.lo]; got != want {
				return stageErrf(stage, "probe diverged: op %s at cycle %d: backend=%v oracle=%v",
					m.Operations[op].Name, cycle, got, want)
			}
		}
	}
	return nil
}

// diffRUMap is diffBackend with a fresh reservation-table checker — the
// default backend every optimized description must drive correctly.
func diffRUMap(stage string, m *lowlevel.MDES, stream, arrivals, want []int, grid [][]bool, w window, c *stats.Counters) error {
	return diffBackend(stage, m, check.NewRUMap(m.NumResources), stream, arrivals, want, grid, w, w.lo, c)
}

// diffProbePlan replays the stream through the flat probe-plan backend —
// requiring the same schedules, probe answers, and accounting as the
// reference walk — then sweeps the batch contract: CheckWindow over the
// whole grid window must return the same first feasible cycle, the same
// selection choices, and the same counter deltas as the serial Check loop
// it replaces. A Compile-produced description the planner rejects is a
// plan-emission bug and is attributed to that stage.
func diffProbePlan(stage string, m *lowlevel.MDES, stream, arrivals, want []int, grid [][]bool, w window, c *stats.Counters) error {
	f, err := check.NewFactory(m, check.KindProbePlan)
	if err != nil {
		return stageErrf("probeplan/emit", "%v", err)
	}
	ck := f.New()
	if err := diffBackend(stage, m, ck, stream, arrivals, want, grid, w, w.lo, c); err != nil {
		return err
	}
	batch, ok := ck.(check.BatchProber)
	if !ok {
		return stageErrf(stage, "probe-plan checker does not implement CheckWindow")
	}
	for op := range grid {
		con := m.ConstraintFor(op, false)
		var cb, cs stats.Counters
		selB, atB, okB := batch.CheckWindow(con, w.lo, w.hi+1, &cb)
		okS := false
		atS := 0
		var selS check.Selection
		for cycle := w.lo; cycle <= w.hi; cycle++ {
			if sel, ok := ck.Check(con, cycle, &cs); ok {
				selS, atS, okS = sel, cycle, true
				break
			}
		}
		c.Add(cb)
		c.Add(cs)
		if okB != okS || (okB && atB != atS) {
			return stageErrf(stage, "CheckWindow diverged from serial loop: op %s: batch=(%v,%d) serial=(%v,%d)",
				m.Operations[op].Name, okB, atB, okS, atS)
		}
		if cb != cs {
			return stageErrf(stage, "CheckWindow accounting diverged: op %s: batch=%+v serial=%+v",
				m.Operations[op].Name, cb, cs)
		}
		if okB {
			for i := range selB.Chosen {
				if selB.Chosen[i] != selS.Chosen[i] {
					return stageErrf(stage, "CheckWindow selection diverged: op %s tree %d",
						m.Operations[op].Name, i)
				}
			}
		}
	}
	return nil
}

// diffArena round-trips m through the flat arena format and requires the
// persisted description to be indistinguishable from the original: the v3
// encoding of the deep-copy materialization must match m's byte for byte
// (losslessness), and the zero-copy frozen view — probe plan adopted from
// the arena, not recompiled — must drive both the rumap and the
// probe-plan backend to the oracle's schedules and probe answers. This is
// the differential gate behind the compiled-description cache: a cache
// hit serves exactly this view.
func diffArena(stage string, m *lowlevel.MDES, stream, arrivals, want []int, grid [][]bool, w window, c *stats.Counters) error {
	buf, err := m.EncodeArena()
	if err != nil {
		return stageErrf(stage, "encode: %v", err)
	}
	a, err := lowlevel.OpenArena(buf)
	if err != nil {
		return stageErrf(stage, "open: %v", err)
	}
	var wantV3, gotV3 strings.Builder
	if err := m.Encode(&wantV3); err != nil {
		return stageErrf(stage, "v3 encode: %v", err)
	}
	if err := a.MDES().Encode(&gotV3); err != nil {
		return stageErrf(stage, "round-trip v3 encode: %v", err)
	}
	if gotV3.String() != wantV3.String() {
		return stageErrf(stage, "arena round trip is lossy: v3 encodings differ (%d vs %d bytes)",
			gotV3.Len(), wantV3.Len())
	}
	view := a.FrozenMDES()
	if view.ArenaPlan() == nil {
		return stageErrf(stage, "frozen view lost the persisted probe plan")
	}
	if err := diffRUMap(stage, view, stream, arrivals, want, grid, w, c); err != nil {
		return err
	}
	return diffProbePlan(stage, view, stream, arrivals, want, grid, w, c)
}

// diffAutomaton replays the stream through the §10 DFA backend. The
// forward-shifted LevelFull description is eligible whenever it fits the
// automaton's preconditions (≤64 resources, non-negative usage times); an
// eligible machine the factory rejects is itself a failure.
func diffAutomaton(m *lowlevel.MDES, stream, arrivals, want []int, c *stats.Counters) error {
	const stage = "backend/automaton"
	f, err := check.NewFactory(m, check.KindAutomaton)
	if err != nil {
		if min, _ := oracle.TimeBounds(m); m.NumResources <= 64 && min >= 0 {
			return stageErrf(stage, "eligible machine rejected: %v", err)
		}
		return nil // genuinely ineligible; nothing to compare
	}
	return diffBackend(stage, m, f.New(), stream, arrivals, want, nil, window{}, 0, c)
}

// diffModulo replays the stream through the modulo-map backend at an
// initiation interval wider than every reserved or probed cycle, where
// wrapping cannot occur and the backend must agree with the acyclic
// answer exactly.
func diffModulo(m *lowlevel.MDES, stream, arrivals, want []int, grid [][]bool, w window, c *stats.Counters) error {
	_, hi := oracle.TimeBounds(m)
	ii := w.hi + hi + 8
	ck := check.NewModulo(m.NumResources, ii)
	return diffBackend("backend/modulo", m, ck, stream, arrivals, want, grid, w, 0, c)
}

// compareSlots requires the rumap's reserved slots after the replay to be
// exactly the oracle's — same feasibility is not enough on the description
// the oracle itself interprets; the greedy option choice must match too.
func compareSlots(stage string, orc *oracle.Oracle, ru *check.RUMap) error {
	got := ru.Map().ReservedSlots()
	want := orc.Slots()
	if len(got) != len(want) {
		return stageErrf(stage, "rumap holds %d reserved slots, oracle %d", len(got), len(want))
	}
	for _, s := range want {
		if !got[[2]int{s.Res, s.Cycle}] {
			return stageErrf(stage, "oracle slot (res %d, cycle %d) missing from rumap", s.Res, s.Cycle)
		}
	}
	return nil
}

// diffQuery cross-checks the query layer over the original and the
// fully-optimized description: pairwise CanIssueTogether and
// MinIssueDistance answers must survive optimization untouched.
func diffQuery(base, full *lowlevel.MDES, c *stats.Counters) error {
	const stage = "query/cross-check"
	qa := query.New(base)
	qb := query.New(full)
	defer func() {
		c.Add(qa.Counters())
		c.Add(qb.Counters())
		qa.Close()
		qb.Close()
	}()
	n := len(base.Operations)
	if n > 4 {
		n = 4 // pairwise probes are quadratic; a corner of the table suffices
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := base.Operations[i].Name
			b := base.Operations[j].Name
			ta, err := qa.CanIssueTogether(a, b)
			if err != nil {
				return stageErrf(stage, "base CanIssueTogether(%s,%s): %v", a, b, err)
			}
			tb, err := qb.CanIssueTogether(a, b)
			if err != nil {
				return stageErrf(stage, "optimized CanIssueTogether(%s,%s): %v", a, b, err)
			}
			if ta != tb {
				return stageErrf(stage, "CanIssueTogether(%s,%s): base=%v optimized=%v", a, b, ta, tb)
			}
			// MinIssueDistance reports "no separation within the limit"
			// as an error; the descriptions agree as long as both give
			// the same distance or both exceed the limit.
			da, errA := qa.MinIssueDistance(a, b, 8)
			db, errB := qb.MinIssueDistance(a, b, 8)
			if (errA == nil) != (errB == nil) {
				return stageErrf(stage, "MinIssueDistance(%s,%s): base err=%v optimized err=%v", a, b, errA, errB)
			}
			if errA == nil && da != db {
				return stageErrf(stage, "MinIssueDistance(%s,%s): base=%d optimized=%d", a, b, da, db)
			}
		}
	}
	return nil
}
