// Package cli holds the shared flag parsing and output helpers of the
// command-line tools (mdc, mdinfo, schedbench, mdviz).
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"

	"mdes/internal/check"
	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

// LoadMachine loads either a built-in machine (by name) or a user source
// file; exactly one of the two must be given.
func LoadMachine(builtin, path string) (*hmdes.Machine, error) {
	switch {
	case builtin != "" && path != "":
		return nil, fmt.Errorf("give either -m or -in, not both")
	case builtin != "":
		return machines.Load(machines.Name(strings.ToLower(builtin)))
	case path != "":
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return hmdes.Load(path, string(src))
	default:
		return nil, fmt.Errorf("give -m <builtin> (%v) or -in <file.mdes>", machines.All)
	}
}

// FormatCheckerKinds renders the selectable conflict-checker backends with
// one capability row each — what the tools print when -checker names an
// unknown backend, so the valid values and their trade-offs are
// discoverable without reading the source.
func FormatCheckerKinds() string {
	var b strings.Builder
	fmt.Fprintf(&b, "available -checker backends:\n")
	fmt.Fprintf(&b, "  %-10s %-8s %-8s %-6s %s\n", "name", "release", "explain", "batch", "probing")
	for _, k := range check.Kinds() {
		caps := check.Caps(k)
		probing := "random-access"
		if caps.MonotonicOnly {
			probing = "monotonic-only"
		}
		fmt.Fprintf(&b, "  %-10s %-8s %-8s %-6s %s\n", caps.Backend,
			yesNo(caps.CanRelease), yesNo(caps.CanExplain), yesNo(caps.Batch), probing)
	}
	return b.String()
}

func yesNo(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// ParseForm parses a representation-form flag.
func ParseForm(s string) (lowlevel.Form, error) {
	switch strings.ToLower(s) {
	case "or":
		return lowlevel.FormOR, nil
	case "andor", "and/or", "and-or":
		return lowlevel.FormAndOr, nil
	}
	return 0, fmt.Errorf("unknown form %q (or | andor)", s)
}

// ParseLevel parses an optimization-level flag.
func ParseLevel(s string) (opt.Level, error) {
	switch strings.ToLower(s) {
	case "none", "0":
		return opt.LevelNone, nil
	case "redundancy", "1":
		return opt.LevelRedundancy, nil
	case "bit-vector", "bitvector", "2":
		return opt.LevelBitVector, nil
	case "time-shift", "timeshift", "3":
		return opt.LevelTimeShift, nil
	case "full", "4":
		return opt.LevelFull, nil
	}
	return 0, fmt.Errorf("unknown level %q (none | redundancy | bit-vector | time-shift | full)", s)
}

// ParseDirection parses a shift-direction flag.
func ParseDirection(s string) (opt.Direction, error) {
	switch strings.ToLower(s) {
	case "forward", "f":
		return opt.Forward, nil
	case "backward", "b":
		return opt.Backward, nil
	}
	return 0, fmt.Errorf("unknown direction %q (forward | backward)", s)
}

// DumpCompiledClass prints one class of the compiled structure, with
// resource names resolved via the analyzed machine.
func DumpCompiledClass(w io.Writer, ll *lowlevel.MDES, class string, m *hmdes.Machine) {
	idx, ok := ll.ClassIndex[class]
	if !ok {
		fmt.Fprintf(w, "no class %q\n", class)
		return
	}
	sub := &lowlevel.MDES{
		ResourceNames: ll.ResourceNames,
		Constraints:   []*lowlevel.Constraint{ll.Constraints[idx]},
	}
	DumpCompiled(w, sub)
}

// DumpCompiled prints the compiled constraint structure, class by class.
func DumpCompiled(w io.Writer, ll *lowlevel.MDES) {
	for _, c := range ll.Constraints {
		fmt.Fprintf(w, "class %s: %d tree(s), %d expanded option(s)\n", c.Name, len(c.Trees), c.OptionCount())
		for _, t := range c.Trees {
			fmt.Fprintf(w, "  tree %s (id %d, shared by %d): %d option(s)\n", t.Name, t.ID, t.SharedBy, len(t.Options))
			for oi, o := range t.Options {
				fmt.Fprintf(w, "    option %d:", oi+1)
				if o.Masks != nil {
					for _, m := range o.Masks {
						fmt.Fprintf(w, " [t=%d w=%d mask=%#x]", m.Time, m.Word, m.Mask)
					}
				} else {
					for _, u := range o.Usages {
						fmt.Fprintf(w, " %s@%d", ll.ResourceNames[u.Res], u.Time)
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
}
