package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

func TestLoadMachineBuiltin(t *testing.T) {
	m, err := LoadMachine("supersparc", "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "SuperSPARC" {
		t.Fatalf("Name = %q", m.Name)
	}
	// Case-insensitive.
	if _, err := LoadMachine("SuperSPARC", ""); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
}

func TestLoadMachineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mdes")
	src := `machine F { resource R; class c { use R @ 0; } operation X class c; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMachine("", path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "F" {
		t.Fatalf("Name = %q", m.Name)
	}
}

func TestLoadMachineErrors(t *testing.T) {
	if _, err := LoadMachine("", ""); err == nil {
		t.Fatalf("no-args accepted")
	}
	if _, err := LoadMachine("x", "y"); err == nil {
		t.Fatalf("both args accepted")
	}
	if _, err := LoadMachine("vax", ""); err == nil {
		t.Fatalf("unknown builtin accepted")
	}
	if _, err := LoadMachine("", "/nonexistent/file.mdes"); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestParseForm(t *testing.T) {
	for s, want := range map[string]lowlevel.Form{
		"or": lowlevel.FormOR, "OR": lowlevel.FormOR,
		"andor": lowlevel.FormAndOr, "and/or": lowlevel.FormAndOr, "and-or": lowlevel.FormAndOr,
	} {
		got, err := ParseForm(s)
		if err != nil || got != want {
			t.Errorf("ParseForm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseForm("tree"); err == nil {
		t.Fatalf("bad form accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]opt.Level{
		"none": opt.LevelNone, "0": opt.LevelNone,
		"redundancy": opt.LevelRedundancy, "1": opt.LevelRedundancy,
		"bit-vector": opt.LevelBitVector, "bitvector": opt.LevelBitVector, "2": opt.LevelBitVector,
		"time-shift": opt.LevelTimeShift, "3": opt.LevelTimeShift,
		"full": opt.LevelFull, "4": opt.LevelFull,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("max"); err == nil {
		t.Fatalf("bad level accepted")
	}
}

func TestParseDirection(t *testing.T) {
	if d, err := ParseDirection("forward"); err != nil || d != opt.Forward {
		t.Fatalf("forward: %v %v", d, err)
	}
	if d, err := ParseDirection("b"); err != nil || d != opt.Backward {
		t.Fatalf("b: %v %v", d, err)
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Fatalf("bad direction accepted")
	}
}

func TestDumpCompiled(t *testing.T) {
	m := machines.MustLoad(machines.PA7100)
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	var buf bytes.Buffer
	DumpCompiled(&buf, ll)
	out := buf.String()
	for _, want := range []string{"class ialu", "class mem", "Slot[0]@-1", "IPipe@0"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Packed dump shows masks.
	opt.PackBitVectors(ll)
	buf.Reset()
	DumpCompiled(&buf, ll)
	if !strings.Contains(buf.String(), "mask=") {
		t.Errorf("packed dump missing masks:\n%s", buf.String())
	}
}

func TestDumpCompiledClass(t *testing.T) {
	m := machines.MustLoad(machines.PA7100)
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	var buf bytes.Buffer
	DumpCompiledClass(&buf, ll, "branch", m)
	if !strings.Contains(buf.String(), "class branch") {
		t.Errorf("class dump:\n%s", buf.String())
	}
	buf.Reset()
	DumpCompiledClass(&buf, ll, "nope", m)
	if !strings.Contains(buf.String(), "no class") {
		t.Errorf("missing-class dump:\n%s", buf.String())
	}
}
