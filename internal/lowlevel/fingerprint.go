package lowlevel

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a short content hash of the compiled description:
// FNV-64a over the canonical binary encoding (Encode is deterministic —
// pool order is stable and the bypass table is sorted), rendered as 16 hex
// digits. Two descriptions compiled from the same source at the same form
// and optimization level hash identically, so the fingerprint keys
// content-addressed artifacts: trace recordings (internal/trace), flight
// dumps, and BENCH_*.json perf records all carry it, and replay refuses a
// description whose fingerprint drifted from the recording's.
func (m *MDES) Fingerprint() (string, error) {
	h := fnv.New64a()
	if err := m.Encode(h); err != nil {
		return "", fmt.Errorf("lowlevel: fingerprint: %w", err)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
