package lowlevel

// Flat arena serialization (v4 / MDAR). Where the v3 stream format
// (encode.go) minimizes bytes with varints and rebuilds the object graph
// node by node, the arena format minimizes *load work*: the whole
// description is one contiguous little-endian buffer of fixed-width,
// offset-indexed records, 8-byte aligned per section, so opening it is
//
//	validate header + FNV-64a checksum once  →  cast section offsets.
//
// Nothing in the payload is varint-coded and nothing needs per-node
// decoding: on a little-endian host every section is reinterpreted in
// place (unsafe.Slice) and the bulk payload — usage records, cycle masks,
// probe-plan words, the string table — is aliased, not copied. Big-endian
// or misaligned buffers fall back to a one-time bulk decode-copy with
// identical semantics.
//
// The arena also persists the compiled probe-plan span arrays
// (internal/probeplan's words/optStart/treeStart/conStart layout), so a
// mapped description skips plan compilation entirely: probeplan.Compile
// adopts the aliased spans via MDES.ArenaPlan.
//
// Section counts are always derived from the checksummed section byte
// lengths — never from free-standing count fields — so corrupted input
// can reject with a positioned error but can never drive allocation
// (the PR 5 capacity-limit discipline, structurally enforced).

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"unsafe"

	"mdes/internal/bitset"
)

// arenaMagic identifies the flat arena format; arenaVersion guards layout.
var arenaMagic = [4]byte{'M', 'D', 'A', 'R'}

const arenaVersion = 4

// Header layout (all little-endian):
//
//	[0:4)   magic "MDAR"
//	[4:8)   version u32
//	[8:16)  totalLen u64 — must equal len(buf)
//	[16:24) checksum u64 — FNV-64a over buf[24:totalLen]
//	[24:28) form u32
//	[28:32) packed u32 (0/1)
//	[32:36) numResources u32
//	[36:40) plan rowWords u32
//	[40:44) plan maxTrees u32
//	[44:48) machine-name start (byte offset into the string section)
//	[48:52) machine-name end
//	[52:56) reserved (zero)
//	[56:296) section table: numArenaSections × {offset u64, byteLen u64}
//
// Section offsets are absolute, 8-byte aligned, and empty sections store
// {0, 0}. Everything from byte 24 on is covered by the checksum, so a
// single hash verification vouches for the scalars, the table, and every
// payload byte.
const (
	arenaHdrFixed   = 56
	arenaHeaderSize = arenaHdrFixed + numArenaSections*16
)

// Section identifiers, in file order.
const (
	secStrings   = iota // raw UTF-8 string table, addressed by [start,end) spans
	secResSpans         // resource names: {start,end uint32} per name
	secUsages           // Usage{Time,Res int32} pool, spanned by options
	secMasks            // CycleMask{Time,Word int32, Mask uint64} pool
	secOptions          // arenaOpt records, pool order (IDs implicit)
	secTreeOpts         // uint32 option-pool indices, spanned by trees
	secTrees            // arenaTree records, pool order
	secConTrees         // uint32 tree-pool indices, spanned by constraints
	secCons             // arenaCon records, positional (Constraint.Index)
	secOps              // arenaOp records
	secBypasses         // arenaBypass records, sorted by (From, To)
	secPlanWords        // PlanWord probe words (probeplan layout, verbatim)
	secPlanOpt          // int32 option→word start offsets + sentinel
	secPlanTree         // int32 tree→option start offsets + sentinel
	secPlanCon          // int32 constraint→tree start offsets + sentinel
	numArenaSections
)

var arenaSectionNames = [numArenaSections]string{
	"strings", "resource-spans", "usages", "masks", "options", "tree-options",
	"trees", "constraint-trees", "constraints", "operations", "bypasses",
	"plan-words", "plan-opt-starts", "plan-tree-starts", "plan-con-starts",
}

// arenaElemSizes is the on-disk record size per section; in-memory Go
// layouts match exactly on every supported platform (fixed-width fields in
// natural alignment order), so the only cast precondition checked at run
// time is host endianness and base-pointer alignment.
var arenaElemSizes = [numArenaSections]int{
	1, 8, 8, 16, 28, 4, 28, 4, 16, 24, 12, 16, 4, 4, 4,
}

// arenaSpan is a [Start, End) byte range in the string section.
type arenaSpan struct {
	Start uint32
	End   uint32
}

// arenaOpt flag bits.
const arenaOptHasMasks = 1 // Masks is non-nil (even when empty)

type arenaOpt struct {
	UsageStart uint32
	UsageCount uint32
	MaskStart  uint32
	MaskCount  uint32
	Flags      uint32
	SrcStart   uint32
	SrcEnd     uint32
}

type arenaTree struct {
	NameStart uint32
	NameEnd   uint32
	SrcStart  uint32
	SrcEnd    uint32
	SharedBy  uint32
	OptStart  uint32 // element index into secTreeOpts
	OptCount  uint32
}

type arenaCon struct {
	NameStart uint32
	NameEnd   uint32
	TreeStart uint32 // element index into secConTrees
	TreeCount uint32
}

type arenaOp struct {
	NameStart  uint32
	NameEnd    uint32
	Constraint int32
	Cascaded   int32
	Latency    int32
	SrcTime    int32
}

type arenaBypass struct {
	From int32
	To   int32
	Adj  int32
}

// PlanWord is one packed probe in the persisted probe plan: test Mask
// against word Widx of the reservation row at (issue + Time). It is the
// canonical definition of internal/probeplan's probe word (probeplan
// aliases it), persisted verbatim in the arena so a mapped description
// skips plan compilation.
type PlanWord struct {
	Time int32
	Widx int32
	Mask uint64
}

// ArenaPlan is the persisted probe-plan layout: the exact span arrays
// probeplan.Compile would emit (words/optStart/treeStart/conStart with
// trailing sentinels), aliased into the arena buffer. probeplan adopts it
// via MDES.ArenaPlan instead of re-walking the tree graph.
type ArenaPlan struct {
	RowWords  int
	MaxTrees  int
	Words     []PlanWord
	OptStart  []int32
	TreeStart []int32
	ConStart  []int32
}

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// arenaView reinterprets a validated section as a typed slice: zero-copy
// unsafe cast on aligned little-endian hosts, one-time decode-copy
// otherwise. len(b) is already validated to be a multiple of elemSize.
func arenaView[T any](b []byte, elemSize int, decode func([]byte) T) []T {
	if len(b) == 0 {
		return nil
	}
	n := len(b) / elemSize
	var zero T
	if hostLittleEndian && int(unsafe.Sizeof(zero)) == elemSize &&
		uintptr(unsafe.Pointer(&b[0]))%uintptr(unsafe.Alignof(zero)) == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = decode(b[i*elemSize:])
	}
	return out
}

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
func leI32(b []byte) int32 { return int32(binary.LittleEndian.Uint32(b)) }

func decSpan(b []byte) arenaSpan { return arenaSpan{le32(b), le32(b[4:])} }
func decUsage(b []byte) Usage    { return Usage{Time: leI32(b), Res: leI32(b[4:])} }
func decMask(b []byte) CycleMask {
	return CycleMask{Time: leI32(b), Word: leI32(b[4:]), Mask: le64(b[8:])}
}
func decOpt(b []byte) arenaOpt {
	return arenaOpt{le32(b), le32(b[4:]), le32(b[8:]), le32(b[12:]), le32(b[16:]), le32(b[20:]), le32(b[24:])}
}
func decTree(b []byte) arenaTree {
	return arenaTree{le32(b), le32(b[4:]), le32(b[8:]), le32(b[12:]), le32(b[16:]), le32(b[20:]), le32(b[24:])}
}
func decCon(b []byte) arenaCon {
	return arenaCon{le32(b), le32(b[4:]), le32(b[8:]), le32(b[12:])}
}
func decOp(b []byte) arenaOp {
	return arenaOp{le32(b), le32(b[4:]), leI32(b[8:]), leI32(b[12:]), leI32(b[16:]), leI32(b[20:])}
}
func decBypass(b []byte) arenaBypass {
	return arenaBypass{leI32(b), leI32(b[4:]), leI32(b[8:])}
}
func decPlanWord(b []byte) PlanWord {
	return PlanWord{Time: leI32(b), Widx: leI32(b[4:]), Mask: le64(b[8:])}
}
func decU32(b []byte) uint32 { return le32(b) }
func decI32(b []byte) int32  { return leI32(b) }

// planRowWords is the reservation-row word count probeplan derives from the
// resource count; the arena header persists it and OpenArena re-derives it
// as a consistency check.
func planRowWords(numResources int) int {
	w := (numResources + bitset.WordBits - 1) / bitset.WordBits
	if w == 0 {
		w = 1
	}
	return w
}

// emitPlan lowers the description into probeplan's flat span layout:
// identical emission order and word contents as probeplan.Compile (one
// word per CycleMask when packed, one single-bit word per scalar Usage
// otherwise; trailing sentinels), cross-checked by probeplan's
// TestArenaPlanMatchesCompile.
func (m *MDES) emitPlan() (words []PlanWord, optStart, treeStart, conStart []int32, maxTrees int) {
	for _, con := range m.Constraints {
		conStart = append(conStart, int32(len(treeStart)))
		if len(con.Trees) > maxTrees {
			maxTrees = len(con.Trees)
		}
		for _, tree := range con.Trees {
			treeStart = append(treeStart, int32(len(optStart)))
			for _, o := range tree.Options {
				optStart = append(optStart, int32(len(words)))
				if o.Masks != nil {
					for _, cm := range o.Masks {
						words = append(words, PlanWord{Time: cm.Time, Widx: cm.Word, Mask: cm.Mask})
					}
				} else {
					for _, u := range o.Usages {
						words = append(words, PlanWord{
							Time: u.Time,
							Widx: u.Res / bitset.WordBits,
							Mask: 1 << uint(u.Res%bitset.WordBits),
						})
					}
				}
			}
		}
	}
	conStart = append(conStart, int32(len(treeStart)))
	treeStart = append(treeStart, int32(len(optStart)))
	optStart = append(optStart, int32(len(words)))
	return
}

// EncodeArena serializes the description into the flat arena format,
// including the compiled probe-plan spans. The round trip is lossless with
// respect to the v3 encoding: Decode(v3) → EncodeArena → OpenArena →
// MDES() → Encode(v3) reproduces the original v3 bytes (and therefore the
// original Fingerprint).
func (m *MDES) EncodeArena() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("lowlevel: arena: encode: %w", err)
	}

	var strs []byte
	strIdx := map[string]arenaSpan{}
	intern := func(s string) arenaSpan {
		if sp, ok := strIdx[s]; ok {
			return sp
		}
		sp := arenaSpan{Start: uint32(len(strs)), End: uint32(len(strs) + len(s))}
		strs = append(strs, s...)
		strIdx[s] = sp
		return sp
	}

	nameSpan := intern(m.MachineName)

	resSpans := make([]arenaSpan, len(m.ResourceNames))
	for i, n := range m.ResourceNames {
		resSpans[i] = intern(n)
	}

	var usages []Usage
	var masks []CycleMask
	opts := make([]arenaOpt, len(m.Options))
	optIdx := make(map[*Option]int, len(m.Options))
	for i, o := range m.Options {
		optIdx[o] = i
		rec := arenaOpt{
			UsageStart: uint32(len(usages)),
			UsageCount: uint32(len(o.Usages)),
			MaskStart:  uint32(len(masks)),
		}
		usages = append(usages, o.Usages...)
		if o.Masks != nil {
			rec.Flags |= arenaOptHasMasks
			rec.MaskCount = uint32(len(o.Masks))
			masks = append(masks, o.Masks...)
		}
		sp := intern(o.Src)
		rec.SrcStart, rec.SrcEnd = sp.Start, sp.End
		opts[i] = rec
	}

	var treeOpts []uint32
	trees := make([]arenaTree, len(m.Trees))
	treeIdx := make(map[*Tree]int, len(m.Trees))
	for i, t := range m.Trees {
		treeIdx[t] = i
		nsp, ssp := intern(t.Name), intern(t.Src)
		rec := arenaTree{
			NameStart: nsp.Start, NameEnd: nsp.End,
			SrcStart: ssp.Start, SrcEnd: ssp.End,
			SharedBy: uint32(t.SharedBy),
			OptStart: uint32(len(treeOpts)),
			OptCount: uint32(len(t.Options)),
		}
		for _, o := range t.Options {
			oi, ok := optIdx[o]
			if !ok {
				return nil, fmt.Errorf("lowlevel: arena: encode: tree %q references unpooled option", t.Name)
			}
			treeOpts = append(treeOpts, uint32(oi))
		}
		trees[i] = rec
	}

	var conTrees []uint32
	cons := make([]arenaCon, len(m.Constraints))
	for i, c := range m.Constraints {
		nsp := intern(c.Name)
		rec := arenaCon{
			NameStart: nsp.Start, NameEnd: nsp.End,
			TreeStart: uint32(len(conTrees)),
			TreeCount: uint32(len(c.Trees)),
		}
		for _, t := range c.Trees {
			ti, ok := treeIdx[t]
			if !ok {
				return nil, fmt.Errorf("lowlevel: arena: encode: constraint %q references unpooled tree", c.Name)
			}
			conTrees = append(conTrees, uint32(ti))
		}
		cons[i] = rec
	}

	ops := make([]arenaOp, len(m.Operations))
	for i, op := range m.Operations {
		nsp := intern(op.Name)
		ops[i] = arenaOp{
			NameStart: nsp.Start, NameEnd: nsp.End,
			Constraint: int32(op.Constraint),
			Cascaded:   int32(op.Cascaded),
			Latency:    int32(op.Latency),
			SrcTime:    int32(op.SrcTime),
		}
	}

	bypKeys := make([][2]int, 0, len(m.Bypasses))
	for k := range m.Bypasses {
		bypKeys = append(bypKeys, k)
	}
	sort.Slice(bypKeys, func(i, j int) bool {
		if bypKeys[i][0] != bypKeys[j][0] {
			return bypKeys[i][0] < bypKeys[j][0]
		}
		return bypKeys[i][1] < bypKeys[j][1]
	})
	byps := make([]arenaBypass, len(bypKeys))
	for i, k := range bypKeys {
		byps[i] = arenaBypass{From: int32(k[0]), To: int32(k[1]), Adj: int32(m.Bypasses[k])}
	}

	planWords, planOpt, planTree, planCon, maxTrees := m.emitPlan()

	if uint64(len(strs)) > math.MaxUint32 {
		return nil, fmt.Errorf("lowlevel: arena: encode: string table exceeds 4 GiB")
	}

	// Assemble: serialize each section to little-endian bytes, then lay
	// them out 8-byte aligned after the header.
	secs := make([][]byte, numArenaSections)
	secs[secStrings] = strs
	secs[secResSpans] = encRecords(resSpans, 8, func(b []byte, v arenaSpan) {
		put32(b, v.Start)
		put32(b[4:], v.End)
	})
	secs[secUsages] = encRecords(usages, 8, func(b []byte, v Usage) {
		putI32(b, v.Time)
		putI32(b[4:], v.Res)
	})
	secs[secMasks] = encRecords(masks, 16, func(b []byte, v CycleMask) {
		putI32(b, v.Time)
		putI32(b[4:], v.Word)
		put64(b[8:], v.Mask)
	})
	secs[secOptions] = encRecords(opts, 28, func(b []byte, v arenaOpt) {
		put32(b, v.UsageStart)
		put32(b[4:], v.UsageCount)
		put32(b[8:], v.MaskStart)
		put32(b[12:], v.MaskCount)
		put32(b[16:], v.Flags)
		put32(b[20:], v.SrcStart)
		put32(b[24:], v.SrcEnd)
	})
	secs[secTreeOpts] = encRecords(treeOpts, 4, func(b []byte, v uint32) { put32(b, v) })
	secs[secTrees] = encRecords(trees, 28, func(b []byte, v arenaTree) {
		put32(b, v.NameStart)
		put32(b[4:], v.NameEnd)
		put32(b[8:], v.SrcStart)
		put32(b[12:], v.SrcEnd)
		put32(b[16:], v.SharedBy)
		put32(b[20:], v.OptStart)
		put32(b[24:], v.OptCount)
	})
	secs[secConTrees] = encRecords(conTrees, 4, func(b []byte, v uint32) { put32(b, v) })
	secs[secCons] = encRecords(cons, 16, func(b []byte, v arenaCon) {
		put32(b, v.NameStart)
		put32(b[4:], v.NameEnd)
		put32(b[8:], v.TreeStart)
		put32(b[12:], v.TreeCount)
	})
	secs[secOps] = encRecords(ops, 24, func(b []byte, v arenaOp) {
		put32(b, v.NameStart)
		put32(b[4:], v.NameEnd)
		putI32(b[8:], v.Constraint)
		putI32(b[12:], v.Cascaded)
		putI32(b[16:], v.Latency)
		putI32(b[20:], v.SrcTime)
	})
	secs[secBypasses] = encRecords(byps, 12, func(b []byte, v arenaBypass) {
		putI32(b, v.From)
		putI32(b[4:], v.To)
		putI32(b[8:], v.Adj)
	})
	secs[secPlanWords] = encRecords(planWords, 16, func(b []byte, v PlanWord) {
		putI32(b, v.Time)
		putI32(b[4:], v.Widx)
		put64(b[8:], v.Mask)
	})
	secs[secPlanOpt] = encRecords(planOpt, 4, func(b []byte, v int32) { putI32(b, v) })
	secs[secPlanTree] = encRecords(planTree, 4, func(b []byte, v int32) { putI32(b, v) })
	secs[secPlanCon] = encRecords(planCon, 4, func(b []byte, v int32) { putI32(b, v) })

	buf := make([]byte, arenaHeaderSize, arenaHeaderSize+len(strs)+1024)
	copy(buf, arenaMagic[:])
	put32(buf[4:], arenaVersion)
	put32(buf[24:], uint32(m.Form))
	packed := uint32(0)
	if m.Packed {
		packed = 1
	}
	put32(buf[28:], packed)
	put32(buf[32:], uint32(m.NumResources))
	put32(buf[36:], uint32(planRowWords(m.NumResources)))
	put32(buf[40:], uint32(maxTrees))
	put32(buf[44:], nameSpan.Start)
	put32(buf[48:], nameSpan.End)

	for i, s := range secs {
		if len(s) == 0 {
			continue
		}
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		put64(buf[arenaHdrFixed+i*16:], uint64(len(buf)))
		put64(buf[arenaHdrFixed+i*16+8:], uint64(len(s)))
		buf = append(buf, s...)
	}

	put64(buf[8:], uint64(len(buf)))
	h := fnv.New64a()
	h.Write(buf[24:])
	put64(buf[16:], h.Sum64())
	return buf, nil
}

func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putI32(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) }
func put64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

func encRecords[T any](recs []T, elemSize int, put func([]byte, T)) []byte {
	if len(recs) == 0 {
		return nil
	}
	out := make([]byte, len(recs)*elemSize)
	for i, r := range recs {
		put(out[i*elemSize:], r)
	}
	return out
}

// Arena is a validated, opened flat-arena description. All typed section
// views alias the underlying buffer (on little-endian hosts); the Arena —
// and any mapping backing it — must therefore outlive every MDES
// materialized from it in zero-copy mode.
type Arena struct {
	buf []byte

	machineName  arenaSpan
	form         Form
	packed       bool
	numResources int
	rowWords     int
	maxTrees     int

	strs     []byte
	resSpans []arenaSpan
	usages   []Usage
	masks    []CycleMask
	opts     []arenaOpt
	treeOpts []uint32
	trees    []arenaTree
	conTrees []uint32
	cons     []arenaCon
	ops      []arenaOp
	byps     []arenaBypass

	plan *ArenaPlan

	closer func() error
}

func arenaErrf(format string, args ...any) error {
	return fmt.Errorf("lowlevel: arena: "+format, args...)
}

// OpenArena validates an arena buffer — header, checksum, then one
// structural pass over every section — and returns the typed view. After a
// successful open no access path can read out of bounds, so
// materialization performs no further checks. Corrupted input is rejected
// with an error naming the offending section and record; counts derive
// from section byte lengths, so corruption can never cause allocation
// proportional to anything but the actual buffer size.
func OpenArena(buf []byte) (*Arena, error) {
	if len(buf) < arenaHeaderSize {
		return nil, arenaErrf("short buffer: %d bytes, header needs %d", len(buf), arenaHeaderSize)
	}
	if [4]byte(buf[0:4]) != arenaMagic {
		return nil, arenaErrf("bad magic %q at offset 0", buf[0:4])
	}
	if v := le32(buf[4:]); v != arenaVersion {
		return nil, arenaErrf("unsupported version %d at offset 4", v)
	}
	if total := le64(buf[8:]); total != uint64(len(buf)) {
		return nil, arenaErrf("length mismatch at offset 8: header says %d bytes, have %d", total, len(buf))
	}
	h := fnv.New64a()
	h.Write(buf[24:])
	if got, want := h.Sum64(), le64(buf[16:]); got != want {
		return nil, arenaErrf("checksum mismatch at offset 16: computed %016x, stored %016x", got, want)
	}

	a := &Arena{
		buf:          buf,
		form:         Form(le32(buf[24:])),
		packed:       le32(buf[28:]) != 0,
		numResources: int(le32(buf[32:])),
		rowWords:     int(le32(buf[36:])),
		maxTrees:     int(le32(buf[40:])),
		machineName:  arenaSpan{le32(buf[44:]), le32(buf[48:])},
	}
	if a.form != FormOR && a.form != FormAndOr {
		return nil, arenaErrf("unknown form %d at offset 24", a.form)
	}
	if a.numResources < 0 || a.numResources > 1<<24 {
		return nil, arenaErrf("implausible resource count %d at offset 32", a.numResources)
	}
	if a.rowWords != planRowWords(a.numResources) {
		return nil, arenaErrf("row-word count %d at offset 36 inconsistent with %d resources", a.rowWords, a.numResources)
	}

	var secBytes [numArenaSections][]byte
	for i := 0; i < numArenaSections; i++ {
		off := le64(buf[arenaHdrFixed+i*16:])
		ln := le64(buf[arenaHdrFixed+i*16+8:])
		if ln == 0 {
			continue
		}
		if off < arenaHeaderSize || off%8 != 0 || off > uint64(len(buf)) || ln > uint64(len(buf))-off {
			return nil, arenaErrf("section %s: offset %d length %d outside arena of %d bytes",
				arenaSectionNames[i], off, ln, len(buf))
		}
		if ln%uint64(arenaElemSizes[i]) != 0 {
			return nil, arenaErrf("section %s: length %d not a multiple of record size %d",
				arenaSectionNames[i], ln, arenaElemSizes[i])
		}
		secBytes[i] = buf[off : off+ln]
	}

	a.strs = secBytes[secStrings]
	a.resSpans = arenaView(secBytes[secResSpans], 8, decSpan)
	a.usages = arenaView(secBytes[secUsages], 8, decUsage)
	a.masks = arenaView(secBytes[secMasks], 16, decMask)
	a.opts = arenaView(secBytes[secOptions], 28, decOpt)
	a.treeOpts = arenaView(secBytes[secTreeOpts], 4, decU32)
	a.trees = arenaView(secBytes[secTrees], 28, decTree)
	a.conTrees = arenaView(secBytes[secConTrees], 4, decU32)
	a.cons = arenaView(secBytes[secCons], 16, decCon)
	a.ops = arenaView(secBytes[secOps], 24, decOp)
	a.byps = arenaView(secBytes[secBypasses], 12, decBypass)
	planWords := arenaView(secBytes[secPlanWords], 16, decPlanWord)
	planOpt := arenaView(secBytes[secPlanOpt], 4, decI32)
	planTree := arenaView(secBytes[secPlanTree], 4, decI32)
	planCon := arenaView(secBytes[secPlanCon], 4, decI32)

	if err := a.validate(planWords, planOpt, planTree, planCon); err != nil {
		return nil, err
	}
	if len(planCon) > 0 {
		a.plan = &ArenaPlan{
			RowWords:  a.rowWords,
			MaxTrees:  a.maxTrees,
			Words:     planWords,
			OptStart:  planOpt,
			TreeStart: planTree,
			ConStart:  planCon,
		}
	}
	return a, nil
}

func (a *Arena) checkSpan(what string, i int, sp arenaSpan) error {
	if sp.Start > sp.End || uint64(sp.End) > uint64(len(a.strs)) {
		return arenaErrf("%s %d: string span [%d,%d) outside %d-byte string section",
			what, i, sp.Start, sp.End, len(a.strs))
	}
	return nil
}

// validate runs the one-time structural pass: every span, pool index, and
// plan offset is bounds-checked against the section it addresses, and the
// invariants MDES.Validate would enforce (non-empty trees and constraints,
// OR-form single tree, packed options carry masks) hold structurally —
// FrozenMDES skips Validate entirely on the strength of this pass.
func (a *Arena) validate(planWords []PlanWord, planOpt, planTree, planCon []int32) error {
	if err := a.checkSpan("machine-name", 0, a.machineName); err != nil {
		return err
	}
	for i, sp := range a.resSpans {
		if err := a.checkSpan("resource-name", i, sp); err != nil {
			return err
		}
	}
	for i, o := range a.opts {
		if uint64(o.UsageStart)+uint64(o.UsageCount) > uint64(len(a.usages)) {
			return arenaErrf("option %d: usage span [%d,+%d) outside %d-record usage section",
				i, o.UsageStart, o.UsageCount, len(a.usages))
		}
		if uint64(o.MaskStart)+uint64(o.MaskCount) > uint64(len(a.masks)) {
			return arenaErrf("option %d: mask span [%d,+%d) outside %d-record mask section",
				i, o.MaskStart, o.MaskCount, len(a.masks))
		}
		if o.Flags&arenaOptHasMasks == 0 && o.MaskCount != 0 {
			return arenaErrf("option %d: %d masks but mask flag clear", i, o.MaskCount)
		}
		if a.packed && o.Flags&arenaOptHasMasks == 0 && o.UsageCount > 0 {
			return arenaErrf("option %d: unpacked in packed description", i)
		}
		if err := a.checkSpan("option-src", i, arenaSpan{o.SrcStart, o.SrcEnd}); err != nil {
			return err
		}
	}
	for i, v := range a.treeOpts {
		if uint64(v) >= uint64(len(a.opts)) {
			return arenaErrf("tree-option %d: option index %d outside %d-option pool", i, v, len(a.opts))
		}
	}
	for i, t := range a.trees {
		if err := a.checkSpan("tree-name", i, arenaSpan{t.NameStart, t.NameEnd}); err != nil {
			return err
		}
		if err := a.checkSpan("tree-src", i, arenaSpan{t.SrcStart, t.SrcEnd}); err != nil {
			return err
		}
		if uint64(t.OptStart)+uint64(t.OptCount) > uint64(len(a.treeOpts)) {
			return arenaErrf("tree %d: option span [%d,+%d) outside %d-record tree-option section",
				i, t.OptStart, t.OptCount, len(a.treeOpts))
		}
		if t.OptCount == 0 {
			return arenaErrf("tree %d: no options", i)
		}
	}
	for i, v := range a.conTrees {
		if uint64(v) >= uint64(len(a.trees)) {
			return arenaErrf("constraint-tree %d: tree index %d outside %d-tree pool", i, v, len(a.trees))
		}
	}
	maxTrees := 0
	for i, c := range a.cons {
		if err := a.checkSpan("constraint-name", i, arenaSpan{c.NameStart, c.NameEnd}); err != nil {
			return err
		}
		if uint64(c.TreeStart)+uint64(c.TreeCount) > uint64(len(a.conTrees)) {
			return arenaErrf("constraint %d: tree span [%d,+%d) outside %d-record constraint-tree section",
				i, c.TreeStart, c.TreeCount, len(a.conTrees))
		}
		if c.TreeCount == 0 {
			return arenaErrf("constraint %d: no trees", i)
		}
		if a.form == FormOR && c.TreeCount != 1 {
			return arenaErrf("constraint %d: %d trees in OR-form description", i, c.TreeCount)
		}
		if int(c.TreeCount) > maxTrees {
			maxTrees = int(c.TreeCount)
		}
	}
	if maxTrees != a.maxTrees {
		return arenaErrf("max-trees %d at offset 40 inconsistent with constraints (widest is %d)", a.maxTrees, maxTrees)
	}
	for i, op := range a.ops {
		if err := a.checkSpan("operation-name", i, arenaSpan{op.NameStart, op.NameEnd}); err != nil {
			return err
		}
		if op.Constraint < 0 || int(op.Constraint) >= len(a.cons) {
			return arenaErrf("operation %d: constraint %d outside %d-constraint pool", i, op.Constraint, len(a.cons))
		}
		if op.Cascaded < -1 || int(op.Cascaded) >= len(a.cons) {
			return arenaErrf("operation %d: cascaded constraint %d out of range", i, op.Cascaded)
		}
	}
	for i, bp := range a.byps {
		if bp.From < 0 || int(bp.From) >= len(a.ops) || bp.To < 0 || int(bp.To) >= len(a.ops) {
			return arenaErrf("bypass %d: operation pair (%d,%d) outside %d-operation pool", i, bp.From, bp.To, len(a.ops))
		}
	}

	// Probe-plan spans: either absent entirely or structurally sound —
	// monotonic offset arrays anchored at 0 whose sentinels chain
	// constraint→tree→option→word exactly.
	if len(planCon) == 0 && len(planTree) == 0 && len(planOpt) == 0 && len(planWords) == 0 {
		return nil
	}
	checkStarts := func(name string, s []int32, wantLen int, limit int) error {
		if len(s) != wantLen {
			return arenaErrf("section %s: %d records, want %d", name, len(s), wantLen)
		}
		if s[0] != 0 {
			return arenaErrf("section %s: first offset %d, want 0", name, s[0])
		}
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				return arenaErrf("section %s: offset %d at record %d below predecessor %d", name, s[i], i, s[i-1])
			}
		}
		if int(s[len(s)-1]) != limit {
			return arenaErrf("section %s: final sentinel %d, want %d", name, s[len(s)-1], limit)
		}
		return nil
	}
	if err := checkStarts("plan-con-starts", planCon, len(a.cons)+1, len(planTree)-1); err != nil {
		return err
	}
	if err := checkStarts("plan-tree-starts", planTree, len(a.conTrees)+1, len(planOpt)-1); err != nil {
		return err
	}
	totalOpts := 0
	for _, t := range a.conTrees {
		totalOpts += int(a.trees[t].OptCount)
	}
	if err := checkStarts("plan-opt-starts", planOpt, totalOpts+1, len(planWords)); err != nil {
		return err
	}
	return nil
}

// Bytes returns the raw arena buffer.
func (a *Arena) Bytes() []byte { return a.buf }

// MachineName returns the described machine's name without materializing.
func (a *Arena) MachineName() string { return string(a.strs[a.machineName.Start:a.machineName.End]) }

// Form returns the constraint representation the arena was encoded at.
func (a *Arena) Form() Form { return a.form }

// Packed reports whether the description's options carry cycle masks.
func (a *Arena) Packed() bool { return a.packed }

// NumResources returns the machine's resource count.
func (a *Arena) NumResources() int { return a.numResources }

// Plan returns the persisted probe-plan spans (nil when the arena carries
// none).
func (a *Arena) Plan() *ArenaPlan { return a.plan }

// SetCloser attaches a release function (an mmap unmapper, typically) that
// Close invokes; the cache layer uses it to tie mapping lifetime to the
// arena.
func (a *Arena) SetCloser(f func() error) { a.closer = f }

// Close releases any backing resource attached via SetCloser. The arena
// and every zero-copy MDES view of it are invalid afterwards.
func (a *Arena) Close() error {
	if a.closer == nil {
		return nil
	}
	f := a.closer
	a.closer = nil
	return f()
}

// MDES materializes a deep, mutable copy of the description: nothing
// aliases the arena buffer, so the result is a normal unfrozen MDES — the
// lossless side of the v3↔arena converter, safe to hand to the opt
// pipeline or tools that outlive the buffer.
func (a *Arena) MDES() *MDES {
	return a.build(true)
}

// FrozenMDES materializes the zero-copy view: usage, mask, and string data
// alias the arena buffer, the persisted probe plan is attached for
// probeplan.Compile to adopt, and the description is marked frozen on the
// strength of OpenArena's validation pass (Validate is not re-run). The
// frozen contract is what makes aliasing safe: the opt pipeline refuses
// frozen descriptions, so nothing can ever write through to a read-only
// mapping.
func (a *Arena) FrozenMDES() *MDES {
	m := a.build(false)
	m.arenaPlan = a.plan
	m.freezeTrusted()
	return m
}

func (a *Arena) build(copyData bool) *MDES {
	str := func(sp arenaSpan) string {
		if sp.Start == sp.End {
			return ""
		}
		b := a.strs[sp.Start:sp.End]
		if copyData {
			return string(b)
		}
		return unsafe.String(&b[0], len(b))
	}
	baseUsages, baseMasks := a.usages, a.masks
	if copyData {
		baseUsages = append([]Usage(nil), a.usages...)
		baseMasks = append([]CycleMask(nil), a.masks...)
	}

	m := &MDES{
		MachineName:  str(a.machineName),
		Form:         a.form,
		Packed:       a.packed,
		NumResources: a.numResources,
		ClassIndex:   make(map[string]int, len(a.cons)),
		OpIndex:      make(map[string]int, len(a.ops)),
		Bypasses:     make(map[[2]int]int, len(a.byps)),
	}
	if len(a.resSpans) > 0 {
		m.ResourceNames = make([]string, len(a.resSpans))
		for i, sp := range a.resSpans {
			m.ResourceNames[i] = str(sp)
		}
	}

	// Bulk-allocate each pool once; per-node work is field assignment only.
	optPool := make([]Option, len(a.opts))
	if len(a.opts) > 0 {
		m.Options = make([]*Option, len(a.opts))
	}
	for i, rec := range a.opts {
		o := &optPool[i]
		o.ID = i
		o.Src = str(arenaSpan{rec.SrcStart, rec.SrcEnd})
		if rec.UsageCount > 0 {
			o.Usages = baseUsages[rec.UsageStart : rec.UsageStart+rec.UsageCount]
		}
		if rec.Flags&arenaOptHasMasks != 0 {
			o.Masks = baseMasks[rec.MaskStart : rec.MaskStart+rec.MaskCount]
			if o.Masks == nil {
				o.Masks = []CycleMask{}
			}
		}
		m.Options[i] = o
	}

	treeOptPtrs := make([]*Option, len(a.treeOpts))
	for i, oi := range a.treeOpts {
		treeOptPtrs[i] = &optPool[oi]
	}
	treePool := make([]Tree, len(a.trees))
	if len(a.trees) > 0 {
		m.Trees = make([]*Tree, len(a.trees))
	}
	for i, rec := range a.trees {
		t := &treePool[i]
		t.ID = i
		t.Name = str(arenaSpan{rec.NameStart, rec.NameEnd})
		t.Src = str(arenaSpan{rec.SrcStart, rec.SrcEnd})
		t.SharedBy = int(rec.SharedBy)
		t.Options = treeOptPtrs[rec.OptStart : rec.OptStart+rec.OptCount]
		m.Trees[i] = t
	}

	conTreePtrs := make([]*Tree, len(a.conTrees))
	for i, ti := range a.conTrees {
		conTreePtrs[i] = &treePool[ti]
	}
	conPool := make([]Constraint, len(a.cons))
	if len(a.cons) > 0 {
		m.Constraints = make([]*Constraint, len(a.cons))
	}
	for i, rec := range a.cons {
		c := &conPool[i]
		c.Name = str(arenaSpan{rec.NameStart, rec.NameEnd})
		c.Trees = conTreePtrs[rec.TreeStart : rec.TreeStart+rec.TreeCount]
		c.Index = i
		m.ClassIndex[c.Name] = i
		m.Constraints[i] = c
	}

	opPool := make([]Operation, len(a.ops))
	if len(a.ops) > 0 {
		m.Operations = make([]*Operation, len(a.ops))
	}
	for i, rec := range a.ops {
		op := &opPool[i]
		op.Name = str(arenaSpan{rec.NameStart, rec.NameEnd})
		op.Constraint = int(rec.Constraint)
		op.Cascaded = int(rec.Cascaded)
		op.Latency = int(rec.Latency)
		op.SrcTime = int(rec.SrcTime)
		m.OpIndex[op.Name] = i
		m.Operations[i] = op
	}

	for _, bp := range a.byps {
		m.Bypasses[[2]int{int(bp.From), int(bp.To)}] = int(bp.Adj)
	}
	return m
}
