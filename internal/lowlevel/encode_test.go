package lowlevel

import (
	"bytes"
	"testing"

	"mdes/internal/hmdes"
)

func roundTrip(t *testing.T, m *MDES) *MDES {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestEncodeRoundTripBasics(t *testing.T) {
	m := Compile(loadMini(t), FormAndOr)
	back := roundTrip(t, m)
	if back.MachineName != m.MachineName || back.Form != m.Form || back.Packed != m.Packed {
		t.Fatalf("header changed: %+v", back)
	}
	if back.NumResources != m.NumResources || len(back.ResourceNames) != len(m.ResourceNames) {
		t.Fatalf("resources changed")
	}
	if len(back.Options) != len(m.Options) || len(back.Trees) != len(m.Trees) {
		t.Fatalf("pool sizes changed: %d/%d vs %d/%d",
			len(back.Options), len(back.Trees), len(m.Options), len(m.Trees))
	}
	if back.Size() != m.Size() {
		t.Fatalf("Size changed: %+v vs %+v", back.Size(), m.Size())
	}
}

func TestEncodePreservesSharing(t *testing.T) {
	m := Compile(loadMini(t), FormAndOr)
	back := roundTrip(t, m)
	load := back.Constraints[back.ClassIndex["load"]]
	ialu := back.Constraints[back.ClassIndex["ialu1"]]
	if load.Trees[2] != ialu.Trees[3] {
		t.Fatalf("tree sharing lost in serialization")
	}
	if load.Trees[2].SharedBy != 2 {
		t.Fatalf("SharedBy lost: %d", load.Trees[2].SharedBy)
	}
}

func TestEncodePreservesUsagesAndOperations(t *testing.T) {
	m := Compile(loadMini(t), FormOR)
	back := roundTrip(t, m)
	for i, o := range m.Options {
		bo := back.Options[i]
		if len(bo.Usages) != len(o.Usages) {
			t.Fatalf("option %d usages changed", i)
		}
		for j := range o.Usages {
			if bo.Usages[j] != o.Usages[j] {
				t.Fatalf("option %d usage %d changed", i, j)
			}
		}
	}
	for i, op := range m.Operations {
		if *back.Operations[i] != *op {
			t.Fatalf("operation %d changed: %+v vs %+v", i, back.Operations[i], op)
		}
	}
}

func TestEncodePackedMasks(t *testing.T) {
	m := Compile(loadMini(t), FormAndOr)
	// Pack by hand to avoid an import cycle with opt.
	for _, o := range m.Options {
		for _, u := range o.Usages {
			o.Masks = append(o.Masks, CycleMask{Time: u.Time, Word: u.Res / 64, Mask: 1 << uint(u.Res%64)})
		}
	}
	m.Packed = true
	back := roundTrip(t, m)
	if !back.Packed {
		t.Fatalf("Packed flag lost")
	}
	for i, o := range m.Options {
		bo := back.Options[i]
		if len(bo.Masks) != len(o.Masks) {
			t.Fatalf("option %d masks changed", i)
		}
		for j := range o.Masks {
			if bo.Masks[j] != o.Masks[j] {
				t.Fatalf("option %d mask %d changed", i, j)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not an mdes file"))); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty input accepted")
	}
	// Right magic, wrong version.
	if _, err := Decode(bytes.NewReader([]byte{'M', 'D', 'E', 'S', 99})); err == nil {
		t.Fatalf("bad version accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := Compile(loadMini(t), FormAndOr)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, len(data) / 2, len(data) - 1} {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeValidates(t *testing.T) {
	// Corrupt an option index inside a valid stream: flip bytes near the
	// end and require an error (either decode or validation).
	m := Compile(loadMini(t), FormAndOr)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupted := 0
	for i := len(data) / 2; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := Decode(bytes.NewReader(mut)); err != nil {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatalf("no corruption detected across mutations")
	}
}

func TestEncodeCustomSource(t *testing.T) {
	src := `machine Z {
	  resource A[3];
	  class c { one_of A[0..2] @ -1; }
	  operation X class c latency 4;
	}`
	mach, err := hmdes.Load("z", src)
	if err != nil {
		t.Fatal(err)
	}
	m := Compile(mach, FormOR)
	back := roundTrip(t, m)
	if back.Operations[0].Latency != 4 {
		t.Fatalf("latency lost")
	}
	if back.Options[0].Usages[0].Time != -1 {
		t.Fatalf("negative time lost: %+v", back.Options[0].Usages[0])
	}
}

func TestEncodeBypassesAndSrcTime(t *testing.T) {
	src := `machine T {
	  resource U;
	  class c { use U @ 0; }
	  operation MUL class c latency 3;
	  operation MAC class c latency 3 src 1;
	  bypass MUL to MAC adjust -1;
	}`
	mach, err := hmdes.Load("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := Compile(mach, FormAndOr)
	back := roundTrip(t, m)
	mac := back.Operations[back.OpIndex["MAC"]]
	if mac.SrcTime != 1 {
		t.Fatalf("SrcTime lost: %+v", mac)
	}
	mul := back.OpIndex["MUL"]
	if got := back.FlowDistance(mul, back.OpIndex["MAC"]); got != 1 {
		t.Fatalf("decoded FlowDistance = %d, want 1", got)
	}
	if got := back.FlowDistance(mul, mul); got != 3 {
		t.Fatalf("decoded MUL->MUL = %d, want 3", got)
	}
}
