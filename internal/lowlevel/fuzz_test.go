package lowlevel

import (
	"bytes"
	"testing"

	"mdes/internal/machines"
)

// FuzzEncodeDecode asserts the binary format's safety contract on
// arbitrary bytes: Decode never panics and never returns a description
// Validate rejects, and anything it accepts re-encodes to a decode-stable
// fixpoint. The corpus is seeded with real encodings of the hand-written
// machines in both forms, so mutation starts from deep in the format.
func FuzzEncodeDecode(f *testing.F) {
	for _, n := range machines.All {
		mach := machines.MustLoad(n)
		for _, form := range []Form{FormOR, FormAndOr} {
			var buf bytes.Buffer
			if err := Compile(mach, form).Encode(&buf); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte("MDES"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Decode accepted a description Validate rejects: %v", err)
		}
		var first bytes.Buffer
		if err := m.Encode(&first); err != nil {
			t.Fatalf("decoded description does not re-encode: %v", err)
		}
		m2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		var second bytes.Buffer
		if err := m2.Encode(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("encode is not a fixpoint across decode")
		}
		// Anything v3 accepts must survive the arena round trip losslessly:
		// encode to MDAR, reopen, materialize, and land on the same v3
		// bytes. This welds the two formats' semantics together under
		// arbitrary (decodable) inputs, not just the hand-written machines.
		arena, err := m.EncodeArena()
		if err != nil {
			t.Fatalf("decoded description does not arena-encode: %v", err)
		}
		a, err := OpenArena(arena)
		if err != nil {
			t.Fatalf("self-produced arena rejected: %v", err)
		}
		var third bytes.Buffer
		if err := a.MDES().Encode(&third); err != nil {
			t.Fatalf("arena round trip does not re-encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), third.Bytes()) {
			t.Fatal("arena round trip is lossy against the v3 encoding")
		}
	})
}

// FuzzArenaOpen asserts the arena format's corruption contract on
// arbitrary bytes: OpenArena never panics, never over-allocates (every
// count is derived from checked section byte lengths), and rejects any
// buffer whose checksum or structure is wrong with a positioned error.
// Anything it accepts must behave like a real description: reopen
// identically (the buffer is the canonical form) and materialize into a
// Validate-clean MDES whose frozen view carries a usable probe plan.
func FuzzArenaOpen(f *testing.F) {
	for _, n := range machines.All {
		mach := machines.MustLoad(n)
		for _, form := range []Form{FormOR, FormAndOr} {
			arena, err := Compile(mach, form).EncodeArena()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(arena)
			// A corrupted seed too, so mutation explores the reject paths.
			bad := append([]byte(nil), arena...)
			bad[len(bad)/3] ^= 0x10
			f.Add(bad)
		}
	}
	f.Add([]byte("MDAR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		a, err := OpenArena(data)
		if err != nil {
			return
		}
		// Accepted: the buffer must be self-consistent end to end.
		m := a.MDES()
		if err := m.Validate(); err != nil {
			t.Fatalf("OpenArena accepted an arena Validate rejects: %v", err)
		}
		view := a.FrozenMDES()
		if !view.Frozen() {
			t.Fatal("FrozenMDES returned an unfrozen view")
		}
		if view.ArenaPlan() == nil {
			t.Fatal("accepted arena lost its probe plan")
		}
		again, err := OpenArena(a.Bytes())
		if err != nil {
			t.Fatalf("accepted arena does not reopen: %v", err)
		}
		if again.MachineName() != a.MachineName() {
			t.Fatal("reopen changed the machine name")
		}
	})
}
