package lowlevel

import (
	"bytes"
	"testing"

	"mdes/internal/machines"
)

// FuzzEncodeDecode asserts the binary format's safety contract on
// arbitrary bytes: Decode never panics and never returns a description
// Validate rejects, and anything it accepts re-encodes to a decode-stable
// fixpoint. The corpus is seeded with real encodings of the hand-written
// machines in both forms, so mutation starts from deep in the format.
func FuzzEncodeDecode(f *testing.F) {
	for _, n := range machines.All {
		mach := machines.MustLoad(n)
		for _, form := range []Form{FormOR, FormAndOr} {
			var buf bytes.Buffer
			if err := Compile(mach, form).Encode(&buf); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte("MDES"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Decode accepted a description Validate rejects: %v", err)
		}
		var first bytes.Buffer
		if err := m.Encode(&first); err != nil {
			t.Fatalf("decoded description does not re-encode: %v", err)
		}
		m2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		var second bytes.Buffer
		if err := m2.Encode(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("encode is not a fixpoint across decode")
		}
	})
}
