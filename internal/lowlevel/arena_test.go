package lowlevel_test

import (
	"bytes"
	"fmt"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

// testDescriptions compiles every hand-written machine at each form ×
// level combination the arena must round-trip: unoptimized scalar usages,
// the packed bit-vector form, negative-time backward descriptions, and the
// full pipeline.
func testDescriptions(t testing.TB) map[string]*lowlevel.MDES {
	out := map[string]*lowlevel.MDES{}
	for _, n := range machines.All {
		mach := machines.MustLoad(n)
		for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
			for _, lvl := range []opt.Level{opt.LevelNone, opt.LevelBitVector, opt.LevelFull} {
				for _, dir := range []opt.Direction{opt.Forward, opt.Backward} {
					m := lowlevel.Compile(mach, form)
					opt.Apply(m, lvl, dir)
					out[fmt.Sprintf("%s/%v/%v/%v", n, form, lvl, dir)] = m
				}
			}
		}
	}
	return out
}

func v3Bytes(t testing.TB, m *lowlevel.MDES) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("v3 encode: %v", err)
	}
	return buf.Bytes()
}

// TestArenaRoundTripLossless is the converter contract: v3 → arena →
// MDES() → v3 must reproduce the original v3 bytes exactly, which also
// pins provenance (Src), SharedBy, capacity-relevant counts, the
// nil-vs-empty Masks distinction, and the Fingerprint.
func TestArenaRoundTripLossless(t *testing.T) {
	for name, m := range testDescriptions(t) {
		want := v3Bytes(t, m)
		arena, err := m.EncodeArena()
		if err != nil {
			t.Fatalf("%s: EncodeArena: %v", name, err)
		}
		a, err := lowlevel.OpenArena(arena)
		if err != nil {
			t.Fatalf("%s: OpenArena: %v", name, err)
		}
		got := v3Bytes(t, a.MDES())
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: v3 bytes differ after arena round trip (%d vs %d bytes)", name, len(want), len(got))
		}
		wantFP, err := m.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		gotFP, err := a.MDES().Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if wantFP != gotFP {
			t.Fatalf("%s: fingerprint drift: %s vs %s", name, wantFP, gotFP)
		}
		// Encoding the materialized copy again must be an arena fixpoint.
		arena2, err := a.MDES().EncodeArena()
		if err != nil {
			t.Fatalf("%s: re-encode arena: %v", name, err)
		}
		if !bytes.Equal(arena, arena2) {
			t.Fatalf("%s: arena encode is not a fixpoint", name)
		}
	}
}

// TestArenaFrozenView checks the zero-copy materialization: the view is
// frozen, passes Validate, carries the persisted probe plan, and encodes
// to the same v3 bytes as the deep copy.
func TestArenaFrozenView(t *testing.T) {
	for name, m := range testDescriptions(t) {
		arena, err := m.EncodeArena()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := lowlevel.OpenArena(arena)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fm := a.FrozenMDES()
		if !fm.Frozen() {
			t.Fatalf("%s: FrozenMDES view is not frozen", name)
		}
		if err := fm.Validate(); err != nil {
			t.Fatalf("%s: frozen view fails Validate: %v", name, err)
		}
		if fm.ArenaPlan() == nil {
			t.Fatalf("%s: frozen view carries no arena plan", name)
		}
		if got, want := v3Bytes(t, fm), v3Bytes(t, m); !bytes.Equal(got, want) {
			t.Fatalf("%s: frozen view encodes differently from source", name)
		}
		if fm.MachineName != a.MachineName() {
			t.Fatalf("%s: machine name mismatch %q vs %q", name, fm.MachineName, a.MachineName())
		}
		// The deep copy must NOT inherit the plan: it is mutable, and a
		// stale plan after an opt pass would corrupt schedules.
		if a.MDES().ArenaPlan() != nil {
			t.Fatalf("%s: mutable copy inherited the arena plan", name)
		}
	}
}

// TestArenaRejectsTruncation slices the arena at every prefix length of a
// coarse sweep plus every boundary near the header: all must be rejected
// without panicking.
func TestArenaRejectsTruncation(t *testing.T) {
	m := lowlevel.Compile(machines.MustLoad(machines.K5), lowlevel.FormAndOr)
	opt.Apply(m, opt.LevelFull, opt.Forward)
	arena, err := m.EncodeArena()
	if err != nil {
		t.Fatal(err)
	}
	cuts := map[int]bool{}
	for i := 0; i <= 512 && i < len(arena); i++ {
		cuts[i] = true
	}
	for i := 0; i < len(arena); i += 97 {
		cuts[i] = true
	}
	cuts[len(arena)-1] = true
	for cut := range cuts {
		if _, err := lowlevel.OpenArena(arena[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestArenaRejectsBitFlips flips one bit at a sweep of positions: every
// corruption must be rejected (the checksum covers all bytes past the
// fixed header, and the header fields are each independently validated).
func TestArenaRejectsBitFlips(t *testing.T) {
	m := lowlevel.Compile(machines.MustLoad(machines.SuperSPARC), lowlevel.FormAndOr)
	opt.Apply(m, opt.LevelFull, opt.Forward)
	arena, err := m.EncodeArena()
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(arena); pos += 13 {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), arena...)
			mut[pos] ^= 1 << bit
			if _, err := lowlevel.OpenArena(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", pos, bit)
			}
		}
	}
}

// TestArenaErrorsArePositioned spot-checks that rejection messages name
// what and where, not just "bad input".
func TestArenaErrorsArePositioned(t *testing.T) {
	m := lowlevel.Compile(machines.MustLoad(machines.PA7100), lowlevel.FormOR)
	arena, err := m.EncodeArena()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"short", func(b []byte) []byte { return b[:16] }, "short buffer"},
		{"magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"version", func(b []byte) []byte { b[4] = 9; return b }, "unsupported version 9"},
		{"length", func(b []byte) []byte { return b[:len(b)-1] }, "length mismatch"},
		{"checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum mismatch"},
	}
	for _, tc := range cases {
		mut := tc.mutate(append([]byte(nil), arena...))
		_, err := lowlevel.OpenArena(mut)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestArenaMisalignedFallback opens the arena from a deliberately
// misaligned buffer: the cast fast path cannot be used, and the decode
// fallback must produce an identical description.
func TestArenaMisalignedFallback(t *testing.T) {
	m := lowlevel.Compile(machines.MustLoad(machines.Pentium), lowlevel.FormAndOr)
	opt.Apply(m, opt.LevelFull, opt.Forward)
	arena, err := m.EncodeArena()
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(arena)+1)
	copy(shifted[1:], arena)
	a, err := lowlevel.OpenArena(shifted[1:])
	if err != nil {
		t.Fatalf("misaligned open: %v", err)
	}
	if got, want := v3Bytes(t, a.MDES()), v3Bytes(t, m); !bytes.Equal(got, want) {
		t.Fatal("misaligned open decoded a different description")
	}
}

// TestArenaEmptyDescription round-trips a minimal description with empty
// pools (no operations, no bypasses) — the all-empty-sections edge.
func TestArenaEmptyDescription(t *testing.T) {
	m := &lowlevel.MDES{
		MachineName:  "empty",
		Form:         lowlevel.FormOR,
		NumResources: 1,
		ClassIndex:   map[string]int{},
		OpIndex:      map[string]int{},
		Bypasses:     map[[2]int]int{},
	}
	arena, err := m.EncodeArena()
	if err != nil {
		t.Fatal(err)
	}
	a, err := lowlevel.OpenArena(arena)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v3Bytes(t, a.MDES()), v3Bytes(t, m); !bytes.Equal(got, want) {
		t.Fatal("empty description round trip drifted")
	}
}
