// Package lowlevel holds the compiled, compiler-facing form of a machine
// description: pooled reservation-table options and OR-trees, per-class
// AND/OR constraints, the operation table, and the explicit byte-accounting
// model behind the paper's size tables.
//
// Two forms exist, mirroring the paper's experimental setup (§4):
//
//   - FormOR: every class's AND/OR-tree is expanded into one flat OR-tree of
//     fully-enumerated options (the "MDES preprocessor" the paper ran to
//     produce the traditional representation);
//   - FormAndOr: classes keep their AND-of-OR-trees structure.
//
// Compilation preserves exactly the sharing the MDES author expressed
// (named trees referenced by several classes); discovering further sharing
// is the job of the redundancy-elimination transformation in internal/opt,
// just as in the paper (§5).
package lowlevel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mdes/internal/hmdes"
	"mdes/internal/restable"
)

// Form selects the constraint representation.
type Form int

const (
	// FormOR is the traditional representation: one flat OR-tree per class.
	FormOR Form = iota
	// FormAndOr is the paper's AND/OR-tree representation.
	FormAndOr
)

func (f Form) String() string {
	if f == FormOR {
		return "OR"
	}
	return "AND/OR"
}

// Usage is a scalar resource usage: resource Res busy at cycle Time.
type Usage struct {
	Time int32
	Res  int32
}

// CycleMask is a packed usage: all of one cycle's resources as a bit mask.
// Word indexes the RU-map word for machines with more than 64 resources.
type CycleMask struct {
	Time int32
	Word int32
	Mask uint64
}

// Option is one reservation-table option. Before bit-vector packing the
// Usages slice is authoritative; after packing, Masks is.
type Option struct {
	ID     int
	Usages []Usage     // scalar form, sorted by (Time, Res)
	Masks  []CycleMask // packed form, in check order; nil until packed
	// Src is the option's HMDES provenance: "<tree>[<index>]" for the
	// originating table option within its high-level reservation tree,
	// extended with "!expand" (OR-form cross products), "!hoist" (hoisted
	// common usages) or "/f", "/r" (recovered factors) as transformations
	// derive new options. After CSE an option merged from several
	// identical sources keeps the first source's name. The scheduler hot
	// path never reads Src; only the slow-path conflict attribution
	// (rumap.ExplainConflict) and reporting tools do.
	Src string
}

// ExpandedUsages returns the option's usages in scalar form regardless of
// packing: Usages when the option is unpacked, or the masks expanded back
// to (time, resource) pairs when it is packed. Checker backends that need
// per-slot identity (modulo owner tracking, automaton window commits,
// footprint reporting) share this one expansion instead of each keeping a
// private copy. The expansion allocates; hot check paths use Masks
// directly.
func (o *Option) ExpandedUsages() []Usage {
	if o.Masks == nil {
		return o.Usages
	}
	var out []Usage
	for _, m := range o.Masks {
		mask := m.Mask
		for bit := int32(0); mask != 0; bit++ {
			if mask&1 != 0 {
				out = append(out, Usage{Time: m.Time, Res: m.Word*64 + bit})
			}
			mask >>= 1
		}
	}
	return out
}

// NumChecks returns the number of resource checks one test of this option
// performs: one per usage in scalar form, one per cycle-mask when packed.
func (o *Option) NumChecks() int {
	if o.Masks != nil {
		return len(o.Masks)
	}
	return len(o.Usages)
}

// EarliestTime returns the smallest usage time in the option (0 for empty).
func (o *Option) EarliestTime() int32 {
	if o.Masks != nil {
		min := int32(0)
		for i, m := range o.Masks {
			if i == 0 || m.Time < min {
				min = m.Time
			}
		}
		return min
	}
	if len(o.Usages) == 0 {
		return 0
	}
	min := o.Usages[0].Time
	for _, u := range o.Usages[1:] {
		if u.Time < min {
			min = u.Time
		}
	}
	return min
}

// Tree is a prioritized OR-tree over pooled options.
type Tree struct {
	ID      int
	Name    string
	Options []*Option
	// SharedBy counts the constraints referencing this tree; it is the
	// "shared by the most AND/OR-trees" metric of the §8 sort heuristic.
	SharedBy int
	// Src is the tree's HMDES provenance: the high-level reservation
	// tree (or generated clause) it was compiled from, with the same
	// derivation suffixes as Option.Src.
	Src string
}

// EarliestTime returns the minimum usage time across the tree's options.
func (t *Tree) EarliestTime() int32 {
	min := int32(0)
	for i, o := range t.Options {
		e := o.EarliestTime()
		if i == 0 || e < min {
			min = e
		}
	}
	return min
}

// Constraint is one class's execution constraint: an AND over Trees.
// In FormOR there is exactly one tree.
type Constraint struct {
	Name  string
	Trees []*Tree
	// Index is the constraint's position in MDES.Constraints, recorded at
	// compile/decode time so flat probe plans can map a *Constraint to its
	// precompiled spans without a lookup. Hand-built or sliced descriptions
	// (sub-MDES views reuse parent constraint pointers) may leave it stale;
	// consumers that depend on it verify positionally and fall back or fail
	// loudly rather than trusting it blindly.
	Index int
}

// OptionCount returns the number of reservation-table options the
// constraint represents (product over trees).
func (c *Constraint) OptionCount() int {
	n := 1
	for _, t := range c.Trees {
		n *= len(t.Options)
	}
	return n
}

// Operation is the low-level operation-table entry.
type Operation struct {
	Name       string
	Constraint int // index into MDES.Constraints
	Cascaded   int // index of cascaded-form constraint, or -1
	Latency    int
	// SrcTime is the cycle at which source operands are sampled; flow
	// dependence distances subtract it (paper footnote 1).
	SrcTime int
}

// MDES is the compiled machine description.
type MDES struct {
	MachineName string
	Form        Form
	// Packed records whether options carry cycle masks (after the
	// bit-vector transformation).
	Packed bool

	NumResources  int
	ResourceNames []string

	Options     []*Option
	Trees       []*Tree
	Constraints []*Constraint
	ClassIndex  map[string]int

	Operations []*Operation
	OpIndex    map[string]int

	// Bypasses adjusts flow-dependence distances for forwarding paths,
	// keyed by (producer, consumer) operation indices.
	Bypasses map[[2]int]int

	// Immutability contract (see Freeze).
	freezeOnce sync.Once
	freezeErr  error
	frozen     atomic.Bool

	// arenaPlan is the persisted probe-plan layout attached by
	// Arena.FrozenMDES; probeplan.Compile adopts it instead of re-walking
	// the tree graph. Unexported on purpose: only checksum-verified arena
	// views carry one, and descriptions assembled or copied any other way
	// (sub-MDES views, tools) never inherit a stale plan.
	arenaPlan *ArenaPlan
}

// ArenaPlan returns the persisted probe-plan spans attached by
// Arena.FrozenMDES, or nil for descriptions not backed by an arena.
func (m *MDES) ArenaPlan() *ArenaPlan { return m.arenaPlan }

// Freeze validates the description once and marks it immutable: after a
// successful Freeze the MDES is compile-once, validate-once data that any
// number of goroutines may read concurrently without synchronization. All
// mutable scheduling state lives outside the MDES (internal/resctx); the
// transformation pipeline (internal/opt) refuses to run on a frozen
// description. Freeze is idempotent and safe to call from multiple
// goroutines; every call returns the first call's validation result.
func (m *MDES) Freeze() error {
	m.freezeOnce.Do(func() {
		if err := m.Validate(); err != nil {
			m.freezeErr = fmt.Errorf("lowlevel: freeze: %w", err)
			return
		}
		m.frozen.Store(true)
	})
	return m.freezeErr
}

// Frozen reports whether Freeze has successfully marked the description
// immutable.
func (m *MDES) Frozen() bool { return m.frozen.Load() }

// freezeTrusted marks the description frozen without re-running Validate.
// Only Arena.FrozenMDES calls it: OpenArena's checksum plus structural
// validation pass already guarantees every invariant Validate checks, and
// skipping the map-based re-validation is what keeps a cache hit in the
// microsecond range.
func (m *MDES) freezeTrusted() {
	m.freezeOnce.Do(func() { m.frozen.Store(true) })
}

// FlowDistance returns the flow-dependence distance from producer to
// consumer operation indices: producer latency, minus consumer source
// sample time, plus any bypass adjustment; never negative.
func (m *MDES) FlowDistance(producer, consumer int) int {
	d := m.Operations[producer].Latency - m.Operations[consumer].SrcTime
	if m.Bypasses != nil {
		d += m.Bypasses[[2]int{producer, consumer}]
	}
	if d < 0 {
		return 0
	}
	return d
}

// Compile lowers an analyzed machine into the requested form.
func Compile(m *hmdes.Machine, form Form) *MDES {
	b := &builder{
		mdes: &MDES{
			MachineName:  m.Name,
			Form:         form,
			NumResources: m.Resources.Len(),
			ClassIndex:   map[string]int{},
			OpIndex:      map[string]int{},
			Bypasses:     map[[2]int]int{},
		},
		treeBySrc: map[*restable.ORTree]*Tree{},
	}
	for i := 0; i < m.Resources.Len(); i++ {
		b.mdes.ResourceNames = append(b.mdes.ResourceNames, m.Resources.Name(i))
	}
	for _, cname := range m.ClassNames {
		class := m.Classes[cname]
		var trees []*Tree
		switch form {
		case FormOR:
			// Expanded cross-product trees carry the class name plus an
			// "!expand" provenance marker: their options have no single
			// authored source.
			trees = []*Tree{b.addTree(class.Expand(), nil, cname+"!expand")}
		case FormAndOr:
			for _, t := range class.Trees {
				trees = append(trees, b.addTree(t, t, t.Name))
			}
		}
		for _, t := range trees {
			t.SharedBy++
		}
		b.mdes.ClassIndex[cname] = len(b.mdes.Constraints)
		b.mdes.Constraints = append(b.mdes.Constraints, &Constraint{Name: cname, Trees: trees, Index: len(b.mdes.Constraints)})
	}
	for _, oname := range m.OpNames {
		op := m.Operations[oname]
		casc := -1
		if op.Cascaded != "" {
			casc = b.mdes.ClassIndex[op.Cascaded]
		}
		b.mdes.OpIndex[oname] = len(b.mdes.Operations)
		b.mdes.Operations = append(b.mdes.Operations, &Operation{
			Name:       oname,
			Constraint: b.mdes.ClassIndex[op.Class],
			Cascaded:   casc,
			Latency:    op.Latency,
			SrcTime:    op.SrcTime,
		})
	}
	for key, adj := range m.Bypasses {
		b.mdes.Bypasses[[2]int{b.mdes.OpIndex[key[0]], b.mdes.OpIndex[key[1]]}] = adj
	}
	return b.mdes
}

type builder struct {
	mdes *MDES
	// treeBySrc preserves author-expressed sharing: the same source
	// *restable.ORTree compiles to the same low-level tree.
	treeBySrc map[*restable.ORTree]*Tree
}

// addTree compiles one OR-tree. src is the identity key for author sharing
// (nil means never shared — expanded OR-form trees); srcName is the HMDES
// provenance label recorded on the tree and its options.
func (b *builder) addTree(t *restable.ORTree, src *restable.ORTree, srcName string) *Tree {
	if src != nil {
		if existing, ok := b.treeBySrc[src]; ok {
			return existing
		}
	}
	lt := &Tree{ID: len(b.mdes.Trees), Name: t.Name, Src: srcName}
	for i, o := range t.Options {
		lt.Options = append(lt.Options, b.addOption(o, fmt.Sprintf("%s[%d]", srcName, i)))
	}
	b.mdes.Trees = append(b.mdes.Trees, lt)
	if src != nil {
		b.treeBySrc[src] = lt
	}
	return lt
}

func (b *builder) addOption(o *restable.Option, srcName string) *Option {
	lo := &Option{ID: len(b.mdes.Options), Src: srcName}
	for _, u := range o.Usages {
		lo.Usages = append(lo.Usages, Usage{Time: int32(u.Time), Res: int32(u.Res)})
	}
	b.mdes.Options = append(b.mdes.Options, lo)
	return lo
}

// ConstraintFor returns the constraint for an operation, selecting the
// cascaded form when requested and available.
func (m *MDES) ConstraintFor(opIdx int, cascaded bool) *Constraint {
	return m.Constraints[m.ConstraintIndexFor(opIdx, cascaded)]
}

// ConstraintIndexFor returns the index in m.Constraints of the
// constraint ConstraintFor would select — the opcode-class key the
// observability layer attributes attempts to.
func (m *MDES) ConstraintIndexFor(opIdx int, cascaded bool) int {
	op := m.Operations[opIdx]
	if cascaded && op.Cascaded >= 0 {
		return op.Cascaded
	}
	return op.Constraint
}

// ConstraintNames returns the constraint (opcode class) names in index
// order, for sizing an observability registry.
func (m *MDES) ConstraintNames() []string {
	names := make([]string, len(m.Constraints))
	for i, c := range m.Constraints {
		names[i] = c.Name
	}
	return names
}

// Validate performs internal-consistency checks; transformations call it in
// tests to guarantee they preserve structural invariants.
func (m *MDES) Validate() error {
	optSeen := map[*Option]bool{}
	for _, o := range m.Options {
		if optSeen[o] {
			return fmt.Errorf("lowlevel: option %d pooled twice", o.ID)
		}
		optSeen[o] = true
		if m.Packed && o.Masks == nil && len(o.Usages) > 0 {
			return fmt.Errorf("lowlevel: option %d not packed in packed MDES", o.ID)
		}
	}
	treeSeen := map[*Tree]bool{}
	for _, t := range m.Trees {
		if treeSeen[t] {
			return fmt.Errorf("lowlevel: tree %d pooled twice", t.ID)
		}
		treeSeen[t] = true
		if len(t.Options) == 0 {
			return fmt.Errorf("lowlevel: tree %d (%s) has no options", t.ID, t.Name)
		}
		for _, o := range t.Options {
			if !optSeen[o] {
				return fmt.Errorf("lowlevel: tree %d references unpooled option", t.ID)
			}
		}
	}
	for ci, c := range m.Constraints {
		if len(c.Trees) == 0 {
			return fmt.Errorf("lowlevel: constraint %d (%s) has no trees", ci, c.Name)
		}
		if m.Form == FormOR && len(c.Trees) != 1 {
			return fmt.Errorf("lowlevel: OR-form constraint %d has %d trees", ci, len(c.Trees))
		}
		for _, t := range c.Trees {
			if !treeSeen[t] {
				return fmt.Errorf("lowlevel: constraint %d references unpooled tree", ci)
			}
		}
	}
	for oi, op := range m.Operations {
		if op.Constraint < 0 || op.Constraint >= len(m.Constraints) {
			return fmt.Errorf("lowlevel: operation %d constraint out of range", oi)
		}
		if op.Cascaded >= len(m.Constraints) {
			return fmt.Errorf("lowlevel: operation %d cascaded out of range", oi)
		}
	}
	return nil
}
