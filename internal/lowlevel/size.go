package lowlevel

// This file implements the byte-accounting model behind the paper's MDES
// size tables (Tables 6, 7, 9, 11, 14). Absolute bytes are a property of
// our layout, not IMPACT's, but the model is applied identically to every
// representation and optimization level, so the ratios the paper's tables
// demonstrate are meaningful.
//
// Model (documented in DESIGN.md §5):
//
//	scalar usage pair  (time, resource):        8 bytes
//	packed usage pair  (time, mask word):       8 bytes per (cycle, word)
//	option header (usage count + flags):        8 bytes (+ its usage array)
//	OR-tree header:                             8 bytes + 4 bytes/option ptr
//	AND/OR header (only in FormAndOr):          8 bytes + 4 bytes/tree ptr
//	per-operation binding:                      8 bytes
//
// Pooled (shared) options and trees are counted once — exactly the memory
// effect that sharing buys in the paper.

// SizeStats breaks an MDES's memory requirement into its components, and
// counts the interned (pooled) entities the translator's pass ledger
// attributes deltas to: options, trees, classes, scalar usage pairs, and
// packed cycle-mask words.
type SizeStats struct {
	NumTrees   int
	NumOptions int
	NumClasses int

	// ScalarUsages counts (time, resource) usage pairs across the pooled
	// options; MaskWords counts packed (cycle, word) mask entries. Before
	// bit-vector packing MaskWords is zero; after it both are populated
	// (the scalar form is retained for unpacking) but only the packed
	// form is byte-accounted, matching NumChecks.
	ScalarUsages int
	MaskWords    int

	OptionBytes  int
	TreeBytes    int
	AndBytes     int
	BindingBytes int
}

// Total returns the total resource-constraint representation size in bytes.
func (s SizeStats) Total() int {
	return s.OptionBytes + s.TreeBytes + s.AndBytes + s.BindingBytes
}

const (
	bytesPerUsagePair = 8
	bytesPerHeader    = 8
	bytesPerPointer   = 4
	bytesPerBinding   = 8
)

// Size computes the memory footprint of the MDES under the accounting model.
func (m *MDES) Size() SizeStats {
	var s SizeStats
	s.NumTrees = len(m.Trees)
	s.NumOptions = len(m.Options)
	s.NumClasses = len(m.Constraints)
	for _, o := range m.Options {
		s.ScalarUsages += len(o.Usages)
		s.MaskWords += len(o.Masks)
		s.OptionBytes += bytesPerHeader + o.NumChecks()*bytesPerUsagePair
	}
	for _, t := range m.Trees {
		s.TreeBytes += bytesPerHeader + len(t.Options)*bytesPerPointer
	}
	if m.Form == FormAndOr {
		for _, c := range m.Constraints {
			s.AndBytes += bytesPerHeader + len(c.Trees)*bytesPerPointer
		}
	}
	s.BindingBytes = len(m.Operations) * bytesPerBinding
	return s
}
