package lowlevel

import (
	"testing"

	"mdes/internal/hmdes"
)

const miniSrc = `
machine Mini {
    resource Decoder[3];
    resource M;
    resource WrPt[2];
    resource IALU[2];
    resource RP[4];

    tree AnyDecoder { one_of Decoder[0..2] @ -1; }
    tree AnyWrPt    { one_of WrPt @ 1; }

    class load {
        use M @ 0;
        tree AnyWrPt;
        tree AnyDecoder;
    }
    class ialu1 {
        one_of IALU[0..1] @ 0;
        one_of RP[0..3] @ 0;
        tree AnyWrPt;
        tree AnyDecoder;
    }
    operation LD  class load latency 1;
    operation ADD class ialu1 latency 1;
}
`

func loadMini(t *testing.T) *hmdes.Machine {
	t.Helper()
	m, err := hmdes.Load("mini", miniSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileAndOrPreservesSharing(t *testing.T) {
	m := loadMini(t)
	ll := Compile(m, FormAndOr)
	if err := ll.Validate(); err != nil {
		t.Fatal(err)
	}
	// Named trees AnyDecoder and AnyWrPt are each compiled once and shared.
	load := ll.Constraints[ll.ClassIndex["load"]]
	ialu := ll.Constraints[ll.ClassIndex["ialu1"]]
	if load.Trees[2] != ialu.Trees[3] {
		t.Fatalf("AnyDecoder not shared in low-level form")
	}
	if load.Trees[1] != ialu.Trees[2] {
		t.Fatalf("AnyWrPt not shared in low-level form")
	}
	if load.Trees[2].SharedBy != 2 {
		t.Fatalf("SharedBy = %d, want 2", load.Trees[2].SharedBy)
	}
	// Pool: AnyDecoder, AnyWrPt, load's M tree, ialu's IALU and RP trees.
	if len(ll.Trees) != 5 {
		t.Fatalf("trees pooled = %d, want 5", len(ll.Trees))
	}
	// Options: 3 + 2 + 1 + 2 + 4 = 12 (no interning at compile time).
	if len(ll.Options) != 12 {
		t.Fatalf("options pooled = %d, want 12", len(ll.Options))
	}
}

func TestCompileORExpands(t *testing.T) {
	m := loadMini(t)
	ll := Compile(m, FormOR)
	if err := ll.Validate(); err != nil {
		t.Fatal(err)
	}
	load := ll.Constraints[ll.ClassIndex["load"]]
	if len(load.Trees) != 1 {
		t.Fatalf("OR-form constraint has %d trees", len(load.Trees))
	}
	if got := len(load.Trees[0].Options); got != 6 {
		t.Fatalf("expanded load options = %d, want 6", got)
	}
	ialu := ll.Constraints[ll.ClassIndex["ialu1"]]
	if got := len(ialu.Trees[0].Options); got != 2*4*2*3 {
		t.Fatalf("expanded ialu1 options = %d, want 48", got)
	}
	if got := ialu.OptionCount(); got != 48 {
		t.Fatalf("OptionCount = %d", got)
	}
}

func TestOperationTable(t *testing.T) {
	ll := Compile(loadMini(t), FormAndOr)
	add := ll.Operations[ll.OpIndex["ADD"]]
	if add.Name != "ADD" || add.Latency != 1 || add.Cascaded != -1 {
		t.Fatalf("ADD = %+v", add)
	}
	c := ll.ConstraintFor(ll.OpIndex["ADD"], false)
	if c.Name != "ialu1" {
		t.Fatalf("constraint = %s", c.Name)
	}
	// Without a cascaded class, cascaded selection falls back.
	if ll.ConstraintFor(ll.OpIndex["ADD"], true) != c {
		t.Fatalf("cascaded fallback broken")
	}
}

func TestCascadedSelection(t *testing.T) {
	src := `machine M {
	  resource A[2];
	  class full { one_of A[0..1] @ 0; }
	  class casc { use A[1] @ 0; }
	  operation X class full cascaded casc;
	}`
	m, err := hmdes.Load("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ll := Compile(m, FormAndOr)
	if got := ll.ConstraintFor(0, true).Name; got != "casc" {
		t.Fatalf("cascaded constraint = %s", got)
	}
	if got := ll.ConstraintFor(0, false).Name; got != "full" {
		t.Fatalf("normal constraint = %s", got)
	}
}

func TestSizeModel(t *testing.T) {
	ll := Compile(loadMini(t), FormAndOr)
	s := ll.Size()
	// 12 options, each header 8 + 1 usage * 8 = 16 bytes.
	if s.OptionBytes != 12*16 {
		t.Fatalf("OptionBytes = %d, want %d", s.OptionBytes, 12*16)
	}
	// 5 trees: headers 5*8 + option pointers (3+2+1+2+4)*4.
	if s.TreeBytes != 5*8+12*4 {
		t.Fatalf("TreeBytes = %d", s.TreeBytes)
	}
	// AND headers: 2 constraints, 3 and 4 trees.
	if s.AndBytes != (8+3*4)+(8+4*4) {
		t.Fatalf("AndBytes = %d", s.AndBytes)
	}
	if s.BindingBytes != 2*8 {
		t.Fatalf("BindingBytes = %d", s.BindingBytes)
	}
	if s.Total() != s.OptionBytes+s.TreeBytes+s.AndBytes+s.BindingBytes {
		t.Fatalf("Total inconsistent")
	}
	if s.NumTrees != 5 || s.NumOptions != 12 {
		t.Fatalf("counts = %+v", s)
	}
}

func TestSizeORSmallerPerOptionNoAndHeaders(t *testing.T) {
	ll := Compile(loadMini(t), FormOR)
	s := ll.Size()
	if s.AndBytes != 0 {
		t.Fatalf("OR form charged AND bytes: %d", s.AndBytes)
	}
	// Expanded: 6 + 48 = 54 options, load options have 3 usages each,
	// ialu 4 usages each.
	wantOpts := 6*(8+3*8) + 48*(8+4*8)
	if s.OptionBytes != wantOpts {
		t.Fatalf("OptionBytes = %d, want %d", s.OptionBytes, wantOpts)
	}
}

// The headline memory claim (Table 6): for combinatorial machines the
// AND/OR form is far smaller than the expanded OR form.
func TestAndOrFormMuchSmaller(t *testing.T) {
	m := loadMini(t)
	orSize := Compile(m, FormOR).Size().Total()
	aoSize := Compile(m, FormAndOr).Size().Total()
	if aoSize*3 > orSize {
		t.Fatalf("AND/OR %d bytes not ≪ OR %d bytes", aoSize, orSize)
	}
}

func TestOptionHelpers(t *testing.T) {
	o := &Option{Usages: []Usage{{Time: 2, Res: 1}, {Time: -1, Res: 0}}}
	if o.NumChecks() != 2 {
		t.Fatalf("NumChecks = %d", o.NumChecks())
	}
	if o.EarliestTime() != -1 {
		t.Fatalf("EarliestTime = %d", o.EarliestTime())
	}
	o.Masks = []CycleMask{{Time: 3, Mask: 1}}
	if o.NumChecks() != 1 || o.EarliestTime() != 3 {
		t.Fatalf("packed helpers wrong: %d %d", o.NumChecks(), o.EarliestTime())
	}
	empty := &Option{}
	if empty.EarliestTime() != 0 || empty.NumChecks() != 0 {
		t.Fatalf("empty option helpers")
	}
}

func TestTreeEarliestTime(t *testing.T) {
	tr := &Tree{Options: []*Option{
		{Usages: []Usage{{Time: 1, Res: 0}}},
		{Usages: []Usage{{Time: -2, Res: 1}}},
	}}
	if tr.EarliestTime() != -2 {
		t.Fatalf("EarliestTime = %d", tr.EarliestTime())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ll := Compile(loadMini(t), FormAndOr)
	// Unpooled option.
	bad := &Tree{ID: 99, Options: []*Option{{ID: 999}}}
	ll.Trees[0].Options[0] = bad.Options[0]
	if err := ll.Validate(); err == nil {
		t.Fatalf("Validate accepted unpooled option")
	}
}

func TestFormString(t *testing.T) {
	if FormOR.String() != "OR" || FormAndOr.String() != "AND/OR" {
		t.Fatalf("Form.String wrong")
	}
}

func TestFlowDistanceLowLevel(t *testing.T) {
	src := `machine T {
	  resource U;
	  class c { use U @ 0; }
	  operation A class c latency 2;
	  operation B class c latency 2 src 2;
	  bypass A to B adjust -3;
	}`
	mach, err := hmdes.Load("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := Compile(mach, FormAndOr)
	a, b := m.OpIndex["A"], m.OpIndex["B"]
	if got := m.FlowDistance(a, a); got != 2 {
		t.Fatalf("A->A = %d", got)
	}
	// 2 - 2 - 3 = -3, clamped to 0.
	if got := m.FlowDistance(a, b); got != 0 {
		t.Fatalf("A->B = %d, want 0", got)
	}
	if got := m.FlowDistance(b, a); got != 2 {
		t.Fatalf("B->A = %d", got)
	}
}
