package lowlevel

// Binary serialization of the compiled MDES. The paper's low-level
// representation is designed so "the common information to be shared is
// entirely specified by the external MDES representation, in order to
// minimize the time required to load the MDES into memory" (§4): this
// format preserves pooling exactly — shared options and trees are written
// once and referenced by index — so loading rebuilds the same object graph
// without re-running any sharing analysis.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// encodeMagic identifies the format; the version byte guards layout
// changes.
var encodeMagic = [4]byte{'M', 'D', 'E', 'S'}

const encodeVersion = 3

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *writer) varint(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *writer) bool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	w.uvarint(v)
}

// Encode serializes the MDES in the compact binary format.
func (m *MDES) Encode(dst io.Writer) error {
	w := &writer{w: bufio.NewWriter(dst)}
	if _, err := w.w.Write(encodeMagic[:]); err != nil {
		return err
	}
	w.uvarint(encodeVersion)
	w.str(m.MachineName)
	w.uvarint(uint64(m.Form))
	w.bool(m.Packed)
	w.uvarint(uint64(m.NumResources))
	w.uvarint(uint64(len(m.ResourceNames)))
	for _, n := range m.ResourceNames {
		w.str(n)
	}

	// Options, pool order; IDs are implicit.
	w.uvarint(uint64(len(m.Options)))
	for _, o := range m.Options {
		w.str(o.Src)
		w.uvarint(uint64(len(o.Usages)))
		for _, u := range o.Usages {
			w.varint(int64(u.Time))
			w.varint(int64(u.Res))
		}
		if o.Masks == nil {
			w.bool(false)
		} else {
			w.bool(true)
			w.uvarint(uint64(len(o.Masks)))
			for _, cm := range o.Masks {
				w.varint(int64(cm.Time))
				w.varint(int64(cm.Word))
				w.uvarint(cm.Mask)
			}
		}
	}

	// Trees reference options by pool index.
	optIdx := map[*Option]int{}
	for i, o := range m.Options {
		optIdx[o] = i
	}
	w.uvarint(uint64(len(m.Trees)))
	for _, t := range m.Trees {
		w.str(t.Name)
		w.str(t.Src)
		w.uvarint(uint64(t.SharedBy))
		w.uvarint(uint64(len(t.Options)))
		for _, o := range t.Options {
			idx, ok := optIdx[o]
			if !ok {
				return fmt.Errorf("lowlevel: encode: tree %q references unpooled option", t.Name)
			}
			w.uvarint(uint64(idx))
		}
	}

	// Constraints reference trees by pool index.
	treeIdx := map[*Tree]int{}
	for i, t := range m.Trees {
		treeIdx[t] = i
	}
	w.uvarint(uint64(len(m.Constraints)))
	for _, c := range m.Constraints {
		w.str(c.Name)
		w.uvarint(uint64(len(c.Trees)))
		for _, t := range c.Trees {
			idx, ok := treeIdx[t]
			if !ok {
				return fmt.Errorf("lowlevel: encode: constraint %q references unpooled tree", c.Name)
			}
			w.uvarint(uint64(idx))
		}
	}

	// Operations.
	w.uvarint(uint64(len(m.Operations)))
	for _, op := range m.Operations {
		w.str(op.Name)
		w.varint(int64(op.Constraint))
		w.varint(int64(op.Cascaded))
		w.varint(int64(op.Latency))
		w.varint(int64(op.SrcTime))
	}

	// Bypass table.
	w.uvarint(uint64(len(m.Bypasses)))
	keys := make([][2]int, 0, len(m.Bypasses))
	for k := range m.Bypasses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		w.varint(int64(k[0]))
		w.varint(int64(k[1]))
		w.varint(int64(m.Bypasses[k]))
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.err = err
	return v
}

func (r *reader) count(what string, limit uint64) int {
	v := r.uvarint()
	if r.err == nil && v > limit {
		r.err = fmt.Errorf("lowlevel: decode: implausible %s count %d", what, v)
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count("string", 1<<20)
	if r.err != nil {
		return ""
	}
	buf := make([]byte, n)
	_, r.err = io.ReadFull(r.r, buf)
	return string(buf)
}

func (r *reader) bool() bool {
	return r.uvarint() != 0
}

// Decode deserializes a compiled MDES written by Encode.
func Decode(src io.Reader) (*MDES, error) {
	r := &reader{r: bufio.NewReader(src)}
	var magic [4]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return nil, err
	}
	if magic != encodeMagic {
		return nil, fmt.Errorf("lowlevel: decode: bad magic %q", magic)
	}
	if v := r.uvarint(); r.err == nil && v != encodeVersion {
		return nil, fmt.Errorf("lowlevel: decode: unsupported version %d", v)
	}
	m := &MDES{
		MachineName: r.str(),
		Form:        Form(r.uvarint()),
		ClassIndex:  map[string]int{},
		OpIndex:     map[string]int{},
	}
	m.Packed = r.bool()
	m.NumResources = int(r.uvarint())
	nNames := r.count("resource-name", 1<<16)
	for i := 0; i < nNames && r.err == nil; i++ {
		m.ResourceNames = append(m.ResourceNames, r.str())
	}

	nOpts := r.count("option", 1<<24)
	for i := 0; i < nOpts && r.err == nil; i++ {
		o := &Option{ID: i, Src: r.str()}
		nU := r.count("usage", 1<<16)
		for j := 0; j < nU && r.err == nil; j++ {
			o.Usages = append(o.Usages, Usage{Time: int32(r.varint()), Res: int32(r.varint())})
		}
		if r.bool() {
			nM := r.count("mask", 1<<16)
			o.Masks = []CycleMask{}
			for j := 0; j < nM && r.err == nil; j++ {
				o.Masks = append(o.Masks, CycleMask{
					Time: int32(r.varint()), Word: int32(r.varint()), Mask: r.uvarint(),
				})
			}
		}
		m.Options = append(m.Options, o)
	}

	nTrees := r.count("tree", 1<<24)
	for i := 0; i < nTrees && r.err == nil; i++ {
		t := &Tree{ID: i, Name: r.str(), Src: r.str(), SharedBy: int(r.uvarint())}
		nO := r.count("tree-option", 1<<24)
		for j := 0; j < nO && r.err == nil; j++ {
			idx := int(r.uvarint())
			if r.err == nil && (idx < 0 || idx >= len(m.Options)) {
				return nil, fmt.Errorf("lowlevel: decode: option index %d out of range", idx)
			}
			if r.err == nil {
				t.Options = append(t.Options, m.Options[idx])
			}
		}
		m.Trees = append(m.Trees, t)
	}

	nCons := r.count("constraint", 1<<20)
	for i := 0; i < nCons && r.err == nil; i++ {
		c := &Constraint{Name: r.str(), Index: i}
		nT := r.count("constraint-tree", 1<<16)
		for j := 0; j < nT && r.err == nil; j++ {
			idx := int(r.uvarint())
			if r.err == nil && (idx < 0 || idx >= len(m.Trees)) {
				return nil, fmt.Errorf("lowlevel: decode: tree index %d out of range", idx)
			}
			if r.err == nil {
				c.Trees = append(c.Trees, m.Trees[idx])
			}
		}
		if r.err == nil {
			m.ClassIndex[c.Name] = len(m.Constraints)
			m.Constraints = append(m.Constraints, c)
		}
	}

	nOps := r.count("operation", 1<<20)
	for i := 0; i < nOps && r.err == nil; i++ {
		op := &Operation{
			Name:       r.str(),
			Constraint: int(r.varint()),
			Cascaded:   int(r.varint()),
			Latency:    int(r.varint()),
			SrcTime:    int(r.varint()),
		}
		if r.err == nil {
			m.OpIndex[op.Name] = len(m.Operations)
			m.Operations = append(m.Operations, op)
		}
	}
	nByp := r.count("bypass", 1<<20)
	m.Bypasses = map[[2]int]int{}
	for i := 0; i < nByp && r.err == nil; i++ {
		from := int(r.varint())
		to := int(r.varint())
		adj := int(r.varint())
		if r.err == nil {
			if from < 0 || from >= len(m.Operations) || to < 0 || to >= len(m.Operations) {
				return nil, fmt.Errorf("lowlevel: decode: bypass index out of range")
			}
			m.Bypasses[[2]int{from, to}] = adj
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("lowlevel: decode: %w", err)
	}
	return m, nil
}
