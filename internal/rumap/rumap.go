// Package rumap implements the resource-usage (RU) map: the per-cycle
// bit-vector record of reserved resources that the scheduler consults on
// every scheduling attempt (paper §6), together with the resource-constraint
// check/reserve algorithms for OR-trees and AND/OR-trees.
package rumap

import (
	"fmt"
	"math/bits"

	"mdes/internal/bitset"
	"mdes/internal/lowlevel"
	"mdes/internal/stats"
)

// Map tracks which resources are reserved at which absolute cycles. Rows
// are allocated lazily and the window may extend to negative cycles
// (decode-stage usages of operations issued at cycle 0).
type Map struct {
	numRes int
	rows   []bitset.Set
	// base is the absolute cycle of rows[0].
	base int
}

// New returns an empty RU map for a machine with numRes resources.
func New(numRes int) *Map {
	return &Map{numRes: numRes}
}

// Reset clears all reservations, retaining allocated storage.
func (m *Map) Reset() {
	for i := range m.rows {
		m.rows[i].Reset()
	}
}

// row returns the row for an absolute cycle, growing the window as needed.
func (m *Map) row(cycle int) *bitset.Set {
	if len(m.rows) == 0 {
		m.base = cycle
		m.rows = append(m.rows, bitset.New(m.numRes))
		return &m.rows[0]
	}
	for cycle < m.base {
		// Grow downward by prepending; amortized by doubling.
		grow := len(m.rows)
		if grow < m.base-cycle {
			grow = m.base - cycle
		}
		fresh := make([]bitset.Set, grow, grow+len(m.rows))
		for i := range fresh {
			fresh[i] = bitset.New(m.numRes)
		}
		m.rows = append(fresh, m.rows...)
		m.base -= grow
	}
	for cycle >= m.base+len(m.rows) {
		m.rows = append(m.rows, bitset.New(m.numRes))
	}
	return &m.rows[cycle-m.base]
}

// peek returns the row for a cycle if it exists, without growing.
func (m *Map) peek(cycle int) *bitset.Set {
	i := cycle - m.base
	if len(m.rows) == 0 || i < 0 || i >= len(m.rows) {
		return nil
	}
	return &m.rows[i]
}

// Busy reports whether resource res is reserved at cycle.
func (m *Map) Busy(res, cycle int) bool {
	r := m.peek(cycle)
	return r != nil && r.Test(res)
}

// reserveBit sets resource res at cycle, reporting whether it was free.
func (m *Map) reserveBit(res, cycle int) bool {
	r := m.row(cycle)
	if r.Test(res) {
		return false
	}
	r.Set(res)
	return true
}

// OptionAvailable reports whether every usage of the option is free when
// the operation issues at cycle issue. It short-circuits at the first busy
// usage and accounts each probe as one resource check in c.
func (m *Map) OptionAvailable(o *lowlevel.Option, issue int, c *stats.Counters) bool {
	if o.Masks != nil {
		for _, cm := range o.Masks {
			c.ResourceChecks++
			r := m.peek(issue + int(cm.Time))
			if r != nil && r.IntersectsMask(int(cm.Word), cm.Mask) {
				return false
			}
		}
		return true
	}
	for _, u := range o.Usages {
		c.ResourceChecks++
		r := m.peek(issue + int(u.Time))
		if r != nil && r.Test(int(u.Res)) {
			return false
		}
	}
	return true
}

// reserveOption marks every usage of the option as busy; it panics if a
// slot is already reserved, since the caller must have checked first.
func (m *Map) reserveOption(o *lowlevel.Option, issue int) {
	if o.Masks != nil {
		for _, cm := range o.Masks {
			r := m.row(issue + int(cm.Time))
			if r.IntersectsMask(int(cm.Word), cm.Mask) {
				panic(fmt.Sprintf("rumap: double reservation at cycle %d", issue+int(cm.Time)))
			}
			r.OrMask(int(cm.Word), cm.Mask)
		}
		return
	}
	for _, u := range o.Usages {
		if !m.reserveBit(int(u.Res), issue+int(u.Time)) {
			panic(fmt.Sprintf("rumap: double reservation of r%d at cycle %d", u.Res, issue+int(u.Time)))
		}
	}
}

// releaseOption clears every usage of the option.
func (m *Map) releaseOption(o *lowlevel.Option, issue int) {
	if o.Masks != nil {
		for _, cm := range o.Masks {
			if r := m.peek(issue + int(cm.Time)); r != nil {
				r.AndNotMask(int(cm.Word), cm.Mask)
			}
		}
		return
	}
	for _, u := range o.Usages {
		if r := m.peek(issue + int(u.Time)); r != nil {
			r.Clear(int(u.Res))
		}
	}
}

// Selection records which option of each tree of a constraint was chosen by
// a successful check, so the reservation can be applied or later released.
type Selection struct {
	Constraint *lowlevel.Constraint
	Issue      int
	// Chosen[i] is the selected option index within Constraint.Trees[i].
	Chosen []int
}

// Check tests whether the constraint can be satisfied with the operation
// issued at cycle issue, using the AND-of-OR-trees algorithm of §3: each
// OR-tree is scanned in priority order for its first available option; the
// scan short-circuits at the first OR-tree with no available option.
// For FormOR constraints there is a single tree, so this degenerates to the
// traditional algorithm. Counters accumulate one Attempt, plus the options
// and resource checks performed.
//
// On success the returned Selection identifies the chosen options; nothing
// is reserved until Reserve is called with it.
func (m *Map) Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (Selection, bool) {
	c.Attempts++
	sel := Selection{Constraint: con, Issue: issue, Chosen: make([]int, len(con.Trees))}
	for ti, tree := range con.Trees {
		found := -1
		for oi, o := range tree.Options {
			c.OptionsChecked++
			if m.OptionAvailable(o, issue, c) {
				found = oi
				break
			}
		}
		if found < 0 {
			c.Conflicts++
			return Selection{}, false
		}
		sel.Chosen[ti] = found
	}
	return sel, true
}

// Reserve applies a successful Selection to the map.
func (m *Map) Reserve(sel Selection) {
	for ti, tree := range sel.Constraint.Trees {
		m.reserveOption(tree.Options[sel.Chosen[ti]], sel.Issue)
	}
}

// Release undoes a previous Reserve (needed by unscheduling-based
// techniques such as iterative modulo scheduling; paper §10 notes this is
// straightforward with reservation tables).
func (m *Map) Release(sel Selection) {
	for ti, tree := range sel.Constraint.Trees {
		m.releaseOption(tree.Options[sel.Chosen[ti]], sel.Issue)
	}
}

// optionFree reports whether every usage of the option is free with the
// operation issued at cycle issue, without instrumentation — the
// attribution-only twin of OptionAvailable used by ExplainConflict.
func (m *Map) optionFree(o *lowlevel.Option, issue int) bool {
	if o.Masks != nil {
		for _, cm := range o.Masks {
			r := m.peek(issue + int(cm.Time))
			if r != nil && r.IntersectsMask(int(cm.Word), cm.Mask) {
				return false
			}
		}
		return true
	}
	for _, u := range o.Usages {
		r := m.peek(issue + int(u.Time))
		if r != nil && r.Test(int(u.Res)) {
			return false
		}
	}
	return true
}

// optionBlocker returns the first busy (resource, relative usage time)
// slot blocking the option at issue.
func (m *Map) optionBlocker(o *lowlevel.Option, issue int) (res, time int, found bool) {
	if o.Masks != nil {
		for _, cm := range o.Masks {
			r := m.peek(issue + int(cm.Time))
			if r != nil && r.IntersectsMask(int(cm.Word), cm.Mask) {
				w := r.Word(int(cm.Word)) & cm.Mask
				return int(cm.Word)*bitset.WordBits + bits.TrailingZeros64(w), int(cm.Time), true
			}
		}
		return 0, 0, false
	}
	for _, u := range o.Usages {
		r := m.peek(issue + int(u.Time))
		if r != nil && r.Test(int(u.Res)) {
			return int(u.Res), int(u.Time), true
		}
	}
	return 0, 0, false
}

// Conflict attributes one failed Check: which resource, at which relative
// usage time, kept the preferred reservation from issuing, in which
// low-level tree — and, through the provenance map, which HMDES source
// (reservation/table option, lowlevel.Option.Src syntax) that blocking
// usage was compiled from.
type Conflict struct {
	// Res and Time are the blocking resource index and the relative usage
	// time of the blocked probe.
	Res  int
	Time int
	// Tree is the name of the unsatisfiable tree; Src is the HMDES
	// provenance of its highest-priority (blocked) option, falling back
	// to the tree's own provenance when the option predates it.
	Tree string
	Src  string
}

// ExplainConflict attributes a failed Check: for the first tree of the
// constraint with no available option at issue, it returns the blocking
// slot of that tree's highest-priority option together with the tree's
// name and the option's HMDES provenance — the conflict detail the trace
// and the conflicts-by-resource metric report. It performs no accounting
// (the failed Check already counted the probes) and runs only on the
// observability slow path. found is false when the constraint is
// satisfiable.
func (m *Map) ExplainConflict(con *lowlevel.Constraint, issue int) (c Conflict, found bool) {
	for _, tree := range con.Trees {
		satisfiable := false
		for _, o := range tree.Options {
			if m.optionFree(o, issue) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			blocked := tree.Options[0]
			res, time, ok := m.optionBlocker(blocked, issue)
			if !ok {
				return Conflict{}, false
			}
			src := blocked.Src
			if src == "" {
				src = tree.Src
			}
			return Conflict{Res: res, Time: time, Tree: tree.Name, Src: src}, true
		}
	}
	return Conflict{}, false
}

// BlockerTreeRes returns the position (within the constraint) of the
// first unsatisfiable tree at issue and the resource blocking its
// highest-priority option: the conflict-profile slice of ExplainConflict,
// attributing tree + resource with no provenance strings. Returns (-1, -1)
// when the constraint is satisfiable, and (ti, -1) when the tree is
// unsatisfiable but its preferred option has no materialized blocking slot.
func (m *Map) BlockerTreeRes(con *lowlevel.Constraint, issue int) (int, int) {
	for ti, tree := range con.Trees {
		satisfiable := false
		for _, o := range tree.Options {
			if m.optionFree(o, issue) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			if res, _, ok := m.optionBlocker(tree.Options[0], issue); ok {
				return ti, res
			}
			return ti, -1
		}
	}
	return -1, -1
}

// ReservedSlots returns every (resource, cycle) currently reserved, for
// tests that compare reservations across representations. Hot paths should
// use AppendReservedSlots, which reuses the caller's buffer.
func (m *Map) ReservedSlots() map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, s := range m.AppendReservedSlots(nil) {
		out[s] = true
	}
	return out
}

// AppendReservedSlots appends every (resource, cycle) currently reserved
// to dst and returns the extended slice. Passing a buffer with spare
// capacity (dst[:0] of a previous result) makes the snapshot
// allocation-free.
func (m *Map) AppendReservedSlots(dst [][2]int) [][2]int {
	for i := range m.rows {
		cycle := m.base + i
		m.rows[i].ForEach(func(res int) {
			dst = append(dst, [2]int{res, cycle})
		})
	}
	return dst
}
