package rumap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/stats"
)

const miniSrc = `
machine Mini {
    resource Decoder[3];
    resource M;
    resource WrPt[2];

    class load {
        use M @ 0;
        one_of WrPt @ 1;
        one_of Decoder[0..2] @ -1;
    }
    operation LD class load latency 1;
}
`

func compileMini(t *testing.T, form lowlevel.Form) *lowlevel.MDES {
	t.Helper()
	m, err := hmdes.Load("mini", miniSrc)
	if err != nil {
		t.Fatal(err)
	}
	return lowlevel.Compile(m, form)
}

func TestRowGrowthBothDirections(t *testing.T) {
	m := New(4)
	if m.Busy(0, 5) {
		t.Fatalf("empty map busy")
	}
	if !m.reserveBit(1, 10) {
		t.Fatalf("reserve failed")
	}
	if !m.reserveBit(2, -7) {
		t.Fatalf("negative-cycle reserve failed")
	}
	if !m.Busy(1, 10) || !m.Busy(2, -7) {
		t.Fatalf("reservations lost after growth")
	}
	if m.reserveBit(1, 10) {
		t.Fatalf("double reserve succeeded")
	}
	m.Reset()
	if m.Busy(1, 10) || m.Busy(2, -7) {
		t.Fatalf("Reset did not clear")
	}
}

func TestCheckReserveRelease(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	con := ll.Constraints[0]
	var c stats.Counters

	sel, ok := m.Check(con, 0, &c)
	if !ok {
		t.Fatalf("empty map check failed")
	}
	if c.Attempts != 1 {
		t.Fatalf("Attempts = %d", c.Attempts)
	}
	// First option of each tree is free: 3 options checked (one per tree),
	// 3 resource checks.
	if c.OptionsChecked != 3 || c.ResourceChecks != 3 {
		t.Fatalf("counters = %+v", c)
	}
	m.Reserve(sel)

	// Second load at the same cycle: M is busy, first tree fails all its
	// (single) option -> overall failure.
	sel2, ok := m.Check(con, 0, &c)
	if ok {
		t.Fatalf("second load at same cycle should conflict on M: %+v", sel2)
	}

	// At cycle 1 the load's M@1 is free, but WrPt[0]@2 and Decoder[0]@0...
	// nothing overlaps (first load used M@0, WrPt0@1, Dec0@-1). WrPt tree at
	// issue 1 uses WrPt@2: free. Decoder@0: free.
	if _, ok := m.Check(con, 1, &c); !ok {
		t.Fatalf("load at cycle 1 should fit")
	}

	m.Release(sel)
	if _, ok := m.Check(con, 0, &c); !ok {
		t.Fatalf("after Release the original cycle should fit again")
	}
}

func TestGreedyPicksLowestNumbered(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	con := ll.Constraints[0]
	var c stats.Counters

	sel1, _ := m.Check(con, 0, &c)
	m.Reserve(sel1)
	// Tree order: M, WrPt, Decoder. First load chose WrPt[0], Decoder[0].
	if sel1.Chosen[1] != 0 || sel1.Chosen[2] != 0 {
		t.Fatalf("first selection = %v", sel1.Chosen)
	}
	// Release M so a second load can go at cycle 0 (simulating a second
	// memory port machine would be needed otherwise); instead issue at a
	// different cycle and check decoder fallback: reserve Decoder[0] at -1
	// manually via a second op at cycle 0 is blocked by M. Use cycle 0 with
	// M released.
	m.releaseOption(con.Trees[0].Options[0], 0)
	sel2, ok := m.Check(con, 0, &c)
	if !ok {
		t.Fatalf("check failed")
	}
	if sel2.Chosen[1] != 1 || sel2.Chosen[2] != 1 {
		t.Fatalf("second selection should fall to next port/decoder: %v", sel2.Chosen)
	}
}

func TestCountsShortCircuit(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	con := ll.Constraints[0]
	var c stats.Counters
	sel, _ := m.Check(con, 0, &c)
	m.Reserve(sel)
	before := c
	_, ok := m.Check(con, 0, &c)
	if ok {
		t.Fatalf("expected conflict")
	}
	// M tree has 1 option, 1 usage: the failed check should cost exactly
	// 1 option and 1 resource check (short-circuit at first OR-tree).
	if c.OptionsChecked-before.OptionsChecked != 1 || c.ResourceChecks-before.ResourceChecks != 1 {
		t.Fatalf("failed attempt cost: %+v -> %+v", before, c)
	}
}

func TestDoubleReservePanics(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	con := ll.Constraints[0]
	var c stats.Counters
	sel, _ := m.Check(con, 0, &c)
	m.Reserve(sel)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Reserve did not panic")
		}
	}()
	m.Reserve(sel)
}

func TestPackedOptionChecks(t *testing.T) {
	// Hand-build a packed option: resources {0,2} at time 0 and {1} at 1.
	o := &lowlevel.Option{Masks: []lowlevel.CycleMask{
		{Time: 0, Word: 0, Mask: 0b101},
		{Time: 1, Word: 0, Mask: 0b010},
	}}
	m := New(8)
	var c stats.Counters
	if !m.OptionAvailable(o, 0, &c) {
		t.Fatalf("packed option should be free")
	}
	if c.ResourceChecks != 2 {
		t.Fatalf("packed checks = %d, want 2 (one per cycle mask)", c.ResourceChecks)
	}
	m.reserveOption(o, 0)
	if !m.Busy(0, 0) || !m.Busy(2, 0) || !m.Busy(1, 1) {
		t.Fatalf("packed reserve wrong: %v", m.ReservedSlots())
	}
	if m.OptionAvailable(o, 0, &c) {
		t.Fatalf("packed option should conflict with itself")
	}
	// Shifted by 2 cycles it is free.
	if !m.OptionAvailable(o, 2, &c) {
		t.Fatalf("packed option at offset should be free")
	}
	m.releaseOption(o, 0)
	if len(m.ReservedSlots()) != 0 {
		t.Fatalf("release left slots: %v", m.ReservedSlots())
	}
}

func TestPackedDoubleReservePanics(t *testing.T) {
	o := &lowlevel.Option{Masks: []lowlevel.CycleMask{{Time: 0, Word: 0, Mask: 1}}}
	m := New(4)
	m.reserveOption(o, 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("packed double reservation did not panic")
		}
	}()
	m.reserveOption(o, 0)
}

func TestReservedSlots(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	var c stats.Counters
	sel, _ := m.Check(ll.Constraints[0], 5, &c)
	m.Reserve(sel)
	slots := m.ReservedSlots()
	// M@5, WrPt[0]@6, Decoder[0]@4.
	if len(slots) != 3 {
		t.Fatalf("slots = %v", slots)
	}
}

// Property: for any random reserve pattern, OR-form and AND/OR-form checks
// of the same class agree on feasibility, and when feasible they reserve
// exactly the same slots (the paper's "exact same schedule" guarantee).
func TestQuickFormsEquivalent(t *testing.T) {
	mach, err := hmdes.Load("mini", miniSrc)
	if err != nil {
		t.Fatal(err)
	}
	orM := lowlevel.Compile(mach, lowlevel.FormOR)
	aoM := lowlevel.Compile(mach, lowlevel.FormAndOr)

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orMap := New(orM.NumResources)
		aoMap := New(aoM.NumResources)
		// Pre-reserve a random pattern identically in both maps.
		for i := 0; i < 8; i++ {
			res := r.Intn(orM.NumResources)
			cyc := r.Intn(4) - 1
			if !orMap.Busy(res, cyc) {
				orMap.reserveBit(res, cyc)
				aoMap.reserveBit(res, cyc)
			}
		}
		var c1, c2 stats.Counters
		for issue := -1; issue <= 3; issue++ {
			s1, ok1 := orMap.Check(orM.Constraints[0], issue, &c1)
			s2, ok2 := aoMap.Check(aoM.Constraints[0], issue, &c2)
			if ok1 != ok2 {
				return false
			}
			if ok1 {
				orMap.Reserve(s1)
				aoMap.Reserve(s2)
				// Both must have reserved identical slots.
				a, b := orMap.ReservedSlots(), aoMap.ReservedSlots()
				if len(a) != len(b) {
					return false
				}
				for k := range a {
					if !b[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCheckScalarVsPacked(b *testing.B) {
	mach, err := hmdes.Load("mini", miniSrc)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, packed bool) {
		ll := lowlevel.Compile(mach, lowlevel.FormAndOr)
		if packed {
			for _, o := range ll.Options {
				for _, u := range o.Usages {
					o.Masks = append(o.Masks, lowlevel.CycleMask{
						Time: u.Time, Word: u.Res / 64, Mask: 1 << uint(u.Res%64),
					})
				}
			}
			ll.Packed = true
		}
		m := New(ll.NumResources)
		var c stats.Counters
		con := ll.Constraints[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sel, ok := m.Check(con, i%64, &c)
			if ok {
				m.Reserve(sel)
				m.Release(sel)
			}
		}
	}
	b.Run("scalar", func(b *testing.B) { run(b, false) })
	b.Run("packed", func(b *testing.B) { run(b, true) })
}

func TestAppendReservedSlotsMatchesMap(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	var c stats.Counters
	sel, _ := m.Check(ll.Constraints[0], 5, &c)
	m.Reserve(sel)
	want := m.ReservedSlots()
	got := m.AppendReservedSlots(nil)
	if len(got) != len(want) {
		t.Fatalf("append returned %d slots, map has %d", len(got), len(want))
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("append returned slot %v not in map %v", s, want)
		}
	}
}

// The append-into variant must be allocation-free once the caller's buffer
// has capacity — it replaces a map[[2]int]bool built fresh per call on the
// query hot path.
func TestAppendReservedSlotsNoAlloc(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	var c stats.Counters
	sel, _ := m.Check(ll.Constraints[0], 5, &c)
	m.Reserve(sel)
	buf := m.AppendReservedSlots(nil)
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.AppendReservedSlots(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendReservedSlots into a sized buffer allocates %.1f times per call, want 0", allocs)
	}
}

func TestExplainConflictAttribution(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	con := ll.Constraints[0]
	var c stats.Counters

	if _, found := m.ExplainConflict(con, 0); found {
		t.Fatalf("empty map reported a conflict")
	}
	sel, ok := m.Check(con, 0, &c)
	if !ok {
		t.Fatalf("empty map check failed")
	}
	m.Reserve(sel)

	conf, found := m.ExplainConflict(con, 0)
	if !found {
		t.Fatalf("reserved map reported no conflict")
	}
	// The first unsatisfiable tree is the single-option M @ 0 use.
	mRes := -1
	for i, name := range ll.ResourceNames {
		if name == "M" {
			mRes = i
		}
	}
	if conf.Res != mRes || conf.Time != 0 {
		t.Fatalf("conflict = %+v, want res M (%d) at time 0", conf, mRes)
	}
	if conf.Tree == "" || conf.Src == "" {
		t.Fatalf("conflict lacks provenance: %+v", conf)
	}
	blocked := con.Trees[0]
	if conf.Tree != blocked.Name {
		t.Fatalf("conflict tree %q, want %q", conf.Tree, blocked.Name)
	}
	if conf.Src != blocked.Options[0].Src {
		t.Fatalf("conflict src %q, want %q", conf.Src, blocked.Options[0].Src)
	}
}

// The window grows downward by prepending doubled row blocks; every
// reservation made before the growth must keep its absolute cycle through
// the base shift. This drives the growth path far past the original base
// and then exercises Release, Busy (peek), and snapshots against it.
func TestNegativeWindowGrowthKeepsReservations(t *testing.T) {
	ll := compileMini(t, lowlevel.FormAndOr)
	m := New(ll.NumResources)
	con := ll.Constraints[0]
	var c stats.Counters

	// Anchor a reservation near cycle 0 (its Decoder usage sits at -1).
	sel0, ok := m.Check(con, 0, &c)
	if !ok {
		t.Fatalf("anchor check failed")
	}
	m.Reserve(sel0)
	before := m.ReservedSlots()

	// Force several rounds of downward doubling, far below the base.
	var deep []Selection
	for _, issue := range []int{-3, -17, -90, -400} {
		sel, ok := m.Check(con, issue, &c)
		if !ok {
			t.Fatalf("check at %d failed", issue)
		}
		m.Reserve(sel)
		deep = append(deep, sel)
	}

	// The anchor's slots survive every base shift.
	for s := range before {
		if !m.Busy(s[0], s[1]) {
			t.Fatalf("slot %v lost after downward growth", s)
		}
	}
	// peek must not report phantom reservations in the fresh rows.
	if m.Busy(0, -2) || m.Busy(0, -399) {
		t.Fatalf("phantom reservation in grown rows")
	}

	// Release of deep reservations clears exactly their slots.
	for _, sel := range deep {
		m.Release(sel)
	}
	after := m.ReservedSlots()
	if len(after) != len(before) {
		t.Fatalf("slots after deep release = %d, want %d", len(after), len(before))
	}
	for s := range before {
		if !after[s] {
			t.Fatalf("anchor slot %v missing after deep release", s)
		}
	}
	// The deep cycles must be checkable again.
	if _, ok := m.Check(con, -400, &c); !ok {
		t.Fatalf("deep cycle not reusable after release")
	}
}

// AppendReservedSlots reports absolute cycles; after the base shifts
// downward, previously-snapshotted slots must re-appear at identical
// absolute coordinates.
func TestAppendReservedSlotsStableAcrossGrowth(t *testing.T) {
	m := New(3)
	if !m.reserveBit(1, 4) || !m.reserveBit(2, 0) {
		t.Fatalf("seed reservations failed")
	}
	snap1 := m.AppendReservedSlots(nil)
	// Grow downward well past the original base.
	if !m.reserveBit(0, -64) {
		t.Fatalf("downward reserve failed")
	}
	snap2 := m.AppendReservedSlots(snap1[:0])
	want := map[[2]int]bool{{1, 4}: true, {2, 0}: true, {0, -64}: true}
	if len(snap2) != len(want) {
		t.Fatalf("snapshot = %v", snap2)
	}
	for _, s := range snap2 {
		if !want[s] {
			t.Fatalf("unexpected slot %v after growth", s)
		}
	}
}
