package restable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForbiddenLatenciesBasic(t *testing.T) {
	// A uses r0 at times 0 and 3; B uses r0 at time 1.
	a := NewOption([]Usage{{0, 0}, {0, 3}})
	b := NewOption([]Usage{{0, 1}})
	f := ForbiddenLatencies(a, b)
	// i>=j pairs: (3,1) -> t=2. (0,1) has i<j: not forbidden.
	if len(f) != 1 || !f[2] {
		t.Fatalf("forbidden = %v, want {2}", f)
	}
}

func TestForbiddenLatenciesDisjointResources(t *testing.T) {
	a := NewOption([]Usage{{0, 0}})
	b := NewOption([]Usage{{1, 0}})
	if f := ForbiddenLatencies(a, b); len(f) != 0 {
		t.Fatalf("disjoint options forbid %v", f)
	}
}

func TestForbiddenLatencyZeroSelfConflict(t *testing.T) {
	a := NewOption([]Usage{{0, 0}})
	f := ForbiddenLatencies(a, a)
	if !f[0] {
		t.Fatalf("same-resource same-time must forbid latency 0: %v", f)
	}
}

func TestCollisionVector(t *testing.T) {
	a := NewOption([]Usage{{0, 0}, {0, 4}})
	b := NewOption([]Usage{{0, 0}})
	v := CollisionVector(a, b)
	if len(v) != 5 || !v[0] || !v[4] || v[1] || v[2] || v[3] {
		t.Fatalf("vector = %v", v)
	}
	if CollisionVector(NewOption([]Usage{{0, 0}}), NewOption([]Usage{{1, 0}})) != nil {
		t.Fatalf("disjoint vector not nil")
	}
}

func TestSameCollisions(t *testing.T) {
	a := NewOption([]Usage{{0, 5}})
	b := NewOption([]Usage{{0, 3}})
	// Shifting resource 0 by a common constant preserves the vector.
	shift := map[int]int{0: 3}
	a2 := ShiftTimes(a, shift)
	b2 := ShiftTimes(b, shift)
	if !SameCollisions(a, b, a2, b2) {
		t.Fatalf("constant shift changed collision vector")
	}
	// A genuinely different pair.
	c := NewOption([]Usage{{0, 4}})
	if SameCollisions(a, b, c, b) {
		t.Fatalf("different pair reported same")
	}
}

func TestShiftTimesLeavesOtherResources(t *testing.T) {
	o := NewOption([]Usage{{0, 2}, {1, 2}})
	s := ShiftTimes(o, map[int]int{0: 2})
	if s.Usages[0] != (Usage{0, 0}) || s.Usages[1] != (Usage{1, 2}) {
		t.Fatalf("shifted = %v", s.Usages)
	}
}

// randomOption builds a bounded random option over nRes resources.
func randomOption(r *rand.Rand, nRes int) *Option {
	n := r.Intn(5) + 1
	usages := make([]Usage, n)
	for i := range usages {
		usages[i] = Usage{Res: r.Intn(nRes), Time: r.Intn(8) - 2}
	}
	return NewOption(usages)
}

// Property (paper §7): subtracting a per-resource constant from usage times
// preserves every pairwise collision vector.
func TestQuickShiftPreservesCollisions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nRes = 4
		a := randomOption(r, nRes)
		b := randomOption(r, nRes)
		shift := map[int]int{}
		for res := 0; res < nRes; res++ {
			shift[res] = r.Intn(7) - 3
		}
		return SameCollisions(a, b, ShiftTimes(a, shift), ShiftTimes(b, shift))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: forbidden latencies are exactly the overlaps observed by
// simulating two options issued t cycles apart on an infinite resource
// timeline.
func TestQuickForbiddenMatchesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nRes = 3
		a := randomOption(r, nRes)
		b := randomOption(r, nRes)
		forbidden := ForbiddenLatencies(a, b)
		for tlat := 0; tlat < 12; tlat++ {
			occupied := map[Usage]bool{}
			for _, u := range a.Usages {
				occupied[u] = true
			}
			conflict := false
			for _, u := range b.Usages {
				if occupied[Usage{Res: u.Res, Time: u.Time + tlat}] {
					conflict = true
					break
				}
			}
			if conflict != forbidden[tlat] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
