// Package restable models machine execution constraints as reservation
// tables, in both the traditional OR-tree form (a prioritized list of
// fully-enumerated reservation-table options) and the paper's AND/OR-tree
// form (an AND of OR-trees, one per independent resource choice).
//
// This is the mid-level representation: the high-level MDES language
// (internal/hmdes) lowers into it, and the compiled low-level form
// (internal/lowlevel) is derived from it.
package restable

import (
	"fmt"
	"sort"
	"strings"
)

// ResourceSet is the namespace of abstract resources for one machine.
// Resources frequently model scheduling rules rather than physical hardware
// (paper §2); names exist purely for clarity.
type ResourceSet struct {
	names  []string       // by ID
	groups []string       // base group name by ID (e.g. "Decoder" for "Decoder[1]")
	byName map[string]int // full name -> ID
}

// NewResourceSet returns an empty resource namespace.
func NewResourceSet() *ResourceSet {
	return &ResourceSet{byName: make(map[string]int)}
}

// Add registers count instances of a resource. A count of 1 registers a
// single resource under the plain name; count > 1 registers name[0] ..
// name[count-1]. It returns the ID of the first instance.
func (rs *ResourceSet) Add(name string, count int) (first int, err error) {
	if count < 1 {
		return 0, fmt.Errorf("restable: resource %q count %d < 1", name, count)
	}
	first = len(rs.names)
	if count == 1 {
		if err := rs.addOne(name, name); err != nil {
			return 0, err
		}
		return first, nil
	}
	for i := 0; i < count; i++ {
		if err := rs.addOne(fmt.Sprintf("%s[%d]", name, i), name); err != nil {
			return 0, err
		}
	}
	return first, nil
}

func (rs *ResourceSet) addOne(full, group string) error {
	if _, dup := rs.byName[full]; dup {
		return fmt.Errorf("restable: duplicate resource %q", full)
	}
	rs.byName[full] = len(rs.names)
	rs.names = append(rs.names, full)
	rs.groups = append(rs.groups, group)
	return nil
}

// Len returns the number of registered resource instances.
func (rs *ResourceSet) Len() int { return len(rs.names) }

// Name returns the full name of resource id.
func (rs *ResourceSet) Name(id int) string { return rs.names[id] }

// Group returns the base group name of resource id ("Decoder" for
// "Decoder[1]"; the plain name for singletons).
func (rs *ResourceSet) Group(id int) string { return rs.groups[id] }

// Lookup returns the ID for a full resource name.
func (rs *ResourceSet) Lookup(name string) (int, bool) {
	id, ok := rs.byName[name]
	return id, ok
}

// GroupMembers returns the IDs of all resources in a group, in order.
func (rs *ResourceSet) GroupMembers(group string) []int {
	var ids []int
	for id, g := range rs.groups {
		if g == group {
			ids = append(ids, id)
		}
	}
	return ids
}

// Usage records that a resource is occupied at a given usage time, relative
// to the operation's issue point (time zero = first execution stage, so
// decode-stage usages carry negative times; paper §2).
type Usage struct {
	Res  int // resource ID within the machine's ResourceSet
	Time int // usage time in cycles
}

func (u Usage) String() string { return fmt.Sprintf("(r%d@%d)", u.Res, u.Time) }

// Option is one reservation-table option: a set of resource usages that,
// when simultaneously available, permit the operation to issue.
// Usages are kept sorted by (Time, Res) and deduplicated.
type Option struct {
	Usages []Usage
}

// NewOption builds an Option from usages, sorting and deduplicating them.
func NewOption(usages []Usage) *Option {
	o := &Option{Usages: append([]Usage(nil), usages...)}
	o.Normalize()
	return o
}

// Normalize sorts usages by (Time, Res) and removes duplicates in place.
func (o *Option) Normalize() {
	sort.Slice(o.Usages, func(i, j int) bool {
		a, b := o.Usages[i], o.Usages[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Res < b.Res
	})
	out := o.Usages[:0]
	for i, u := range o.Usages {
		if i == 0 || u != o.Usages[i-1] {
			out = append(out, u)
		}
	}
	o.Usages = out
}

// Equal reports whether two options have identical usage sets.
func (o *Option) Equal(other *Option) bool {
	if len(o.Usages) != len(other.Usages) {
		return false
	}
	for i, u := range o.Usages {
		if other.Usages[i] != u {
			return false
		}
	}
	return true
}

// Subsumes reports whether o's usages are a subset of other's. A
// lower-priority option whose usages are a superset of a higher-priority
// option's can never be selected (paper §5), i.e. other is dominated when
// o.Subsumes(other) holds for a higher-priority o.
func (o *Option) Subsumes(other *Option) bool {
	// Both usage lists are normalized; merge-scan.
	i := 0
	for _, u := range o.Usages {
		for i < len(other.Usages) && less(other.Usages[i], u) {
			i++
		}
		if i >= len(other.Usages) || other.Usages[i] != u {
			return false
		}
	}
	return true
}

func less(a, b Usage) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Res < b.Res
}

// TimeRange returns the minimum and maximum usage time of the option.
// It returns (0, -1) for an empty option.
func (o *Option) TimeRange() (min, max int) {
	if len(o.Usages) == 0 {
		return 0, -1
	}
	return o.Usages[0].Time, o.Usages[len(o.Usages)-1].Time
}

// ORTree is a prioritized list of reservation-table options: the operation
// may issue if any single option's resources are all available, and the
// first (highest-priority) available option is the one used.
type ORTree struct {
	Name    string // optional label, used for sharing and rendering
	Options []*Option
}

// NewORTree builds an OR-tree from options in priority order.
func NewORTree(name string, options ...*Option) *ORTree {
	return &ORTree{Name: name, Options: options}
}

// Resources returns the sorted set of distinct resource IDs used anywhere in
// the tree.
func (t *ORTree) Resources() []int {
	seen := map[int]bool{}
	for _, o := range t.Options {
		for _, u := range o.Usages {
			seen[u.Res] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// EarliestTime returns the minimum usage time across all options, or 0 for
// an empty tree. It is the primary sort key for conflict-detection ordering
// (paper §8).
func (t *ORTree) EarliestTime() int {
	first := true
	min := 0
	for _, o := range t.Options {
		lo, hi := o.TimeRange()
		if hi < lo {
			continue
		}
		if first || lo < min {
			min = lo
			first = false
		}
	}
	return min
}

// AndOrTree represents an operation's constraint as an AND of OR-trees: one
// option from every OR-tree must be satisfiable simultaneously. The OR-trees
// of a well-formed AndOrTree use mutually disjoint resources, which makes
// per-tree greedy selection equivalent to searching the expanded
// cross-product OR-tree (verified by ValidateDisjoint and by property tests).
type AndOrTree struct {
	Name  string
	Trees []*ORTree
}

// NewAndOrTree builds an AND/OR-tree over the given OR-trees.
func NewAndOrTree(name string, trees ...*ORTree) *AndOrTree {
	return &AndOrTree{Name: name, Trees: trees}
}

// ValidateDisjoint returns an error if two OR-trees of the AND/OR-tree use
// the same (resource, time) slot, naming the offending resource via rs when
// non-nil. Disjointness at slot granularity is what makes independent
// per-tree greedy option selection equivalent to searching the expanded
// cross-product OR-tree: no tree's choice can consume a slot another tree's
// options need. (The same resource at different times is fine — the K5
// dispatches through the same slots in consecutive cycles from different
// OR-trees.)
func (a *AndOrTree) ValidateDisjoint(rs *ResourceSet) error {
	owner := map[Usage]int{}
	for ti, t := range a.Trees {
		seen := map[Usage]bool{}
		for _, o := range t.Options {
			for _, u := range o.Usages {
				seen[u] = true
			}
		}
		for u := range seen {
			if prev, clash := owner[u]; clash {
				name := fmt.Sprintf("resource %d", u.Res)
				if rs != nil {
					name = rs.Name(u.Res)
				}
				return fmt.Errorf("restable: AND/OR-tree %q: %s at time %d used by OR-trees %d and %d",
					a.Name, name, u.Time, prev, ti)
			}
			owner[u] = ti
		}
	}
	return nil
}

// OptionCount returns the number of reservation-table options the AND/OR-tree
// represents, i.e. the product of its OR-tree option counts. This is the
// option count reported in the paper's Tables 1-4.
func (a *AndOrTree) OptionCount() int {
	n := 1
	for _, t := range a.Trees {
		n *= len(t.Options)
	}
	return n
}

// StoredOptionCount returns the number of options physically stored by the
// AND/OR form (the sum of OR-tree option counts), the quantity that makes
// the representation compact.
func (a *AndOrTree) StoredOptionCount() int {
	n := 0
	for _, t := range a.Trees {
		n += len(t.Options)
	}
	return n
}

// Expand produces the equivalent flat OR-tree by enumerating the cross
// product of the OR-trees' options. Priority order makes earlier OR-trees'
// options vary fastest, which (for disjoint resources) selects exactly the
// same resources as independent per-tree greedy choice — so the two
// representations produce identical schedules (paper §4).
func (a *AndOrTree) Expand() *ORTree {
	if len(a.Trees) == 0 {
		return NewORTree(a.Name, NewOption(nil))
	}
	combos := []*Option{NewOption(nil)}
	// Process trees from last to first so that, in the final order, the
	// first OR-tree's options vary fastest: within each partial combo block
	// the current tree's options enumerate in priority order.
	for ti := len(a.Trees) - 1; ti >= 0; ti-- {
		tree := a.Trees[ti]
		next := make([]*Option, 0, len(combos)*len(tree.Options))
		for _, c := range combos {
			for _, o := range tree.Options {
				merged := make([]Usage, 0, len(o.Usages)+len(c.Usages))
				merged = append(merged, o.Usages...)
				merged = append(merged, c.Usages...)
				next = append(next, NewOption(merged))
			}
		}
		combos = next
	}
	return NewORTree(a.Name, combos...)
}

// String renders a compact single-line description for debugging.
func (a *AndOrTree) String() string {
	parts := make([]string, len(a.Trees))
	for i, t := range a.Trees {
		parts[i] = fmt.Sprintf("%s(%d)", t.Name, len(t.Options))
	}
	return fmt.Sprintf("AND[%s]", strings.Join(parts, " "))
}
