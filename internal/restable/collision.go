package restable

// This file implements the classical theory of pipelined multi-function
// unit design (Davidson et al.; paper §7): forbidden latencies and collision
// vectors between reservation-table options. The usage-time shifting
// transformation is correct precisely because collision vectors depend only
// on differences of usage times, never their absolute values; the property
// tests in collision_test.go check that invariant directly.

// ForbiddenLatencies returns the set of latencies t >= 0 such that an
// operation using option b cannot be initiated t cycles after an operation
// using option a: t is forbidden iff a and b use some common resource at
// times i and j respectively with i >= j and i-j == t.
func ForbiddenLatencies(a, b *Option) map[int]bool {
	byRes := map[int][]int{}
	for _, u := range b.Usages {
		byRes[u.Res] = append(byRes[u.Res], u.Time)
	}
	forbidden := map[int]bool{}
	for _, ua := range a.Usages {
		for _, j := range byRes[ua.Res] {
			if ua.Time >= j {
				forbidden[ua.Time-j] = true
			}
		}
	}
	return forbidden
}

// CollisionVector returns the forbidden latencies of (a, b) as a boolean
// slice indexed by latency, sized to the largest forbidden latency plus one.
// A nil result means no latency is forbidden.
func CollisionVector(a, b *Option) []bool {
	f := ForbiddenLatencies(a, b)
	max := -1
	for t := range f {
		if t > max {
			max = t
		}
	}
	if max < 0 {
		return nil
	}
	v := make([]bool, max+1)
	for t := range f {
		v[t] = true
	}
	return v
}

// SameCollisions reports whether the ordered pairs (a1, b1) and (a2, b2)
// have identical collision vectors, i.e. substituting a2/b2 for a1/b1
// cannot change any schedule's resource-conflict outcome (paper §7).
func SameCollisions(a1, b1, a2, b2 *Option) bool {
	f1 := ForbiddenLatencies(a1, b1)
	f2 := ForbiddenLatencies(a2, b2)
	if len(f1) != len(f2) {
		return false
	}
	for t := range f1 {
		if !f2[t] {
			return false
		}
	}
	return true
}

// ShiftTimes returns a copy of o with shift[r] subtracted from the usage
// time of every usage of resource r (resources absent from shift are left
// unchanged). Per-resource constant shifts preserve all collision vectors.
func ShiftTimes(o *Option, shift map[int]int) *Option {
	usages := make([]Usage, len(o.Usages))
	for i, u := range o.Usages {
		usages[i] = Usage{Res: u.Res, Time: u.Time - shift[u.Res]}
	}
	return NewOption(usages)
}
