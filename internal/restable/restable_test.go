package restable

import (
	"strings"
	"testing"
	"testing/quick"
)

func newSuperSPARCLike(t *testing.T) (*ResourceSet, map[string]int) {
	t.Helper()
	rs := NewResourceSet()
	ids := map[string]int{}
	for _, r := range []struct {
		name  string
		count int
	}{
		{"Decoder", 3}, {"RP", 4}, {"IALU", 2}, {"Shifter", 1},
		{"M", 1}, {"WrPt", 2}, {"FPU", 1},
	} {
		first, err := rs.Add(r.name, r.count)
		if err != nil {
			t.Fatalf("Add(%s): %v", r.name, err)
		}
		ids[r.name] = first
	}
	return rs, ids
}

func TestResourceSetBasics(t *testing.T) {
	rs, ids := newSuperSPARCLike(t)
	if rs.Len() != 3+4+2+1+1+2+1 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if got := rs.Name(ids["Decoder"] + 1); got != "Decoder[1]" {
		t.Fatalf("Name = %q", got)
	}
	if got := rs.Name(ids["M"]); got != "M" {
		t.Fatalf("singleton Name = %q", got)
	}
	if got := rs.Group(ids["Decoder"] + 2); got != "Decoder" {
		t.Fatalf("Group = %q", got)
	}
	id, ok := rs.Lookup("WrPt[1]")
	if !ok || id != ids["WrPt"]+1 {
		t.Fatalf("Lookup WrPt[1] = %d, %v", id, ok)
	}
	if _, ok := rs.Lookup("nope"); ok {
		t.Fatalf("Lookup nonexistent succeeded")
	}
	if got := rs.GroupMembers("RP"); len(got) != 4 || got[0] != ids["RP"] {
		t.Fatalf("GroupMembers(RP) = %v", got)
	}
}

func TestResourceSetErrors(t *testing.T) {
	rs := NewResourceSet()
	if _, err := rs.Add("A", 0); err == nil {
		t.Fatalf("count 0 accepted")
	}
	if _, err := rs.Add("A", 1); err != nil {
		t.Fatalf("Add A: %v", err)
	}
	if _, err := rs.Add("A", 1); err == nil {
		t.Fatalf("duplicate accepted")
	}
	// A[0..2] does not collide with plain A.
	if _, err := rs.Add("A", 3); err != nil {
		t.Fatalf("Add(A,3): %v", err)
	}
	if _, err := rs.Add("A", 3); err == nil {
		t.Fatalf("duplicate A[i] names accepted")
	}
}

func TestOptionNormalize(t *testing.T) {
	o := NewOption([]Usage{{Res: 3, Time: 1}, {Res: 1, Time: 0}, {Res: 3, Time: 1}, {Res: 2, Time: 0}})
	want := []Usage{{Res: 1, Time: 0}, {Res: 2, Time: 0}, {Res: 3, Time: 1}}
	if len(o.Usages) != len(want) {
		t.Fatalf("Usages = %v, want %v", o.Usages, want)
	}
	for i := range want {
		if o.Usages[i] != want[i] {
			t.Fatalf("Usages = %v, want %v", o.Usages, want)
		}
	}
}

func TestOptionEqualSubsumes(t *testing.T) {
	a := NewOption([]Usage{{0, 0}, {1, 1}})
	b := NewOption([]Usage{{1, 1}, {0, 0}})
	c := NewOption([]Usage{{0, 0}, {1, 1}, {2, 2}})
	if !a.Equal(b) {
		t.Fatalf("a != b")
	}
	if a.Equal(c) {
		t.Fatalf("a == c")
	}
	if !a.Subsumes(c) {
		t.Fatalf("a should subsume c (a ⊆ c)")
	}
	if c.Subsumes(a) {
		t.Fatalf("c should not subsume a")
	}
	if !a.Subsumes(a) {
		t.Fatalf("option should subsume itself")
	}
	empty := NewOption(nil)
	if !empty.Subsumes(a) {
		t.Fatalf("empty subsumes everything")
	}
}

func TestOptionTimeRange(t *testing.T) {
	o := NewOption([]Usage{{0, -1}, {1, 2}})
	lo, hi := o.TimeRange()
	if lo != -1 || hi != 2 {
		t.Fatalf("TimeRange = %d,%d", lo, hi)
	}
	lo, hi = NewOption(nil).TimeRange()
	if hi >= lo {
		t.Fatalf("empty TimeRange = %d,%d", lo, hi)
	}
}

func TestORTreeResourcesAndEarliestTime(t *testing.T) {
	tree := NewORTree("x",
		NewOption([]Usage{{Res: 5, Time: 2}}),
		NewOption([]Usage{{Res: 3, Time: -1}, {Res: 5, Time: 0}}),
	)
	ids := tree.Resources()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Fatalf("Resources = %v", ids)
	}
	if got := tree.EarliestTime(); got != -1 {
		t.Fatalf("EarliestTime = %d", got)
	}
	if got := NewORTree("empty").EarliestTime(); got != 0 {
		t.Fatalf("empty EarliestTime = %d", got)
	}
}

// buildLoadTree builds the paper's Figure 3b: integer load needs M at 0,
// one of two write ports at 1, and one of three decoders at -1.
func buildLoadTree(ids map[string]int) *AndOrTree {
	m := NewORTree("M", NewOption([]Usage{{Res: ids["M"], Time: 0}}))
	wr := NewORTree("WrPt",
		NewOption([]Usage{{Res: ids["WrPt"], Time: 1}}),
		NewOption([]Usage{{Res: ids["WrPt"] + 1, Time: 1}}),
	)
	dec := NewORTree("Decoder",
		NewOption([]Usage{{Res: ids["Decoder"], Time: -1}}),
		NewOption([]Usage{{Res: ids["Decoder"] + 1, Time: -1}}),
		NewOption([]Usage{{Res: ids["Decoder"] + 2, Time: -1}}),
	)
	return NewAndOrTree("load", m, wr, dec)
}

func TestAndOrTreeCounts(t *testing.T) {
	_, ids := newSuperSPARCLike(t)
	a := buildLoadTree(ids)
	if got := a.OptionCount(); got != 6 {
		t.Fatalf("OptionCount = %d, want 6 (Figure 1)", got)
	}
	if got := a.StoredOptionCount(); got != 6 {
		t.Fatalf("StoredOptionCount = %d, want 1+2+3", got)
	}
}

func TestAndOrTreeValidateDisjoint(t *testing.T) {
	rs, ids := newSuperSPARCLike(t)
	a := buildLoadTree(ids)
	if err := a.ValidateDisjoint(rs); err != nil {
		t.Fatalf("disjoint tree rejected: %v", err)
	}
	// Same resource at DIFFERENT times across trees is legal (slot
	// granularity): the K5 reuses dispatch slots across cycles.
	ok := NewAndOrTree("ok",
		NewORTree("a", NewOption([]Usage{{Res: ids["M"], Time: 0}})),
		NewORTree("b", NewOption([]Usage{{Res: ids["M"], Time: 1}})),
	)
	if err := ok.ValidateDisjoint(rs); err != nil {
		t.Fatalf("slot-disjoint tree rejected: %v", err)
	}
	bad := NewAndOrTree("bad",
		NewORTree("a", NewOption([]Usage{{Res: ids["M"], Time: 1}})),
		NewORTree("b", NewOption([]Usage{{Res: ids["M"], Time: 1}})),
	)
	err := bad.ValidateDisjoint(rs)
	if err == nil {
		t.Fatalf("overlapping tree accepted")
	}
	if !strings.Contains(err.Error(), "M") {
		t.Fatalf("error does not name resource: %v", err)
	}
}

func TestExpandCrossProduct(t *testing.T) {
	_, ids := newSuperSPARCLike(t)
	a := buildLoadTree(ids)
	or := a.Expand()
	if len(or.Options) != 6 {
		t.Fatalf("expanded to %d options, want 6", len(or.Options))
	}
	// Every expanded option must contain M@0, one write port, one decoder.
	for i, o := range or.Options {
		if len(o.Usages) != 3 {
			t.Fatalf("option %d has %d usages: %v", i, len(o.Usages), o.Usages)
		}
	}
	// Priority order: the FIRST OR-tree's options vary fastest. Trees are
	// (M, WrPt, Decoder), so options 1..6 should be
	// (W0,D0) (W1,D0) (W0,D1) (W1,D1) (W0,D2) (W1,D2)... wait, M is first
	// with a single option, WrPt second. WrPt varies fastest after M.
	wr0 := Usage{Res: ids["WrPt"], Time: 1}
	wr1 := Usage{Res: ids["WrPt"] + 1, Time: 1}
	wants := []Usage{wr0, wr1, wr0, wr1, wr0, wr1}
	for i, w := range wants {
		if !contains(or.Options[i], w) {
			t.Fatalf("option %d = %v missing %v", i, or.Options[i].Usages, w)
		}
	}
	for i := 0; i < 6; i++ {
		d := Usage{Res: ids["Decoder"] + i/2, Time: -1}
		if !contains(or.Options[i], d) {
			t.Fatalf("option %d = %v missing decoder %v", i, or.Options[i].Usages, d)
		}
	}
}

func contains(o *Option, u Usage) bool {
	for _, x := range o.Usages {
		if x == u {
			return true
		}
	}
	return false
}

func TestExpandEmptyTree(t *testing.T) {
	a := NewAndOrTree("empty")
	or := a.Expand()
	if len(or.Options) != 1 || len(or.Options[0].Usages) != 0 {
		t.Fatalf("empty expand = %v", or.Options)
	}
}

func TestExpandDeduplicatesSharedUsages(t *testing.T) {
	// Two OR-trees with one common usage each (legal only pre-validation,
	// used here to check merge dedup behaviour).
	u := Usage{Res: 0, Time: 0}
	a := NewAndOrTree("x",
		NewORTree("t1", NewOption([]Usage{u})),
		NewORTree("t2", NewOption([]Usage{u, {Res: 1, Time: 0}})),
	)
	or := a.Expand()
	if len(or.Options[0].Usages) != 2 {
		t.Fatalf("duplicate usage not removed: %v", or.Options[0].Usages)
	}
}

// Property: expansion preserves the represented option count.
func TestQuickExpandCount(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 4 {
			sizes = sizes[:4]
		}
		trees := make([]*ORTree, 0, len(sizes))
		res := 0
		want := 1
		for ti, s := range sizes {
			n := int(s%3) + 1
			want *= n
			opts := make([]*Option, n)
			for i := 0; i < n; i++ {
				opts[i] = NewOption([]Usage{{Res: res, Time: ti}})
				res++
			}
			trees = append(trees, NewORTree("t", opts...))
		}
		a := NewAndOrTree("q", trees...)
		if a.OptionCount() != want {
			return false
		}
		return len(a.Expand().Options) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenderOptionShowsUsages(t *testing.T) {
	rs, ids := newSuperSPARCLike(t)
	o := NewOption([]Usage{
		{Res: ids["Decoder"], Time: -1},
		{Res: ids["M"], Time: 0},
		{Res: ids["WrPt"] + 1, Time: 1},
	})
	out := RenderOption(rs, o)
	if !strings.Contains(out, "Decoder") || !strings.Contains(out, "M") || !strings.Contains(out, "WrPt") {
		t.Fatalf("render missing columns:\n%s", out)
	}
	if strings.Count(out, "X") != 3 {
		t.Fatalf("render should contain exactly 3 X marks:\n%s", out)
	}
	if !strings.Contains(out, "-1") {
		t.Fatalf("render missing negative cycle:\n%s", out)
	}
}

func TestRenderTrees(t *testing.T) {
	rs, ids := newSuperSPARCLike(t)
	a := buildLoadTree(ids)
	got := RenderAndOrTree(rs, a)
	if !strings.Contains(got, "AND of 3 OR-trees") {
		t.Fatalf("AND/OR render:\n%s", got)
	}
	or := RenderORTree(rs, a.Expand())
	if !strings.Contains(or, "Option 6:") {
		t.Fatalf("OR render should list 6 options:\n%s", or)
	}
	if RenderOption(rs, NewOption(nil)) != "(no usages)\n" {
		t.Fatalf("empty option render")
	}
}
