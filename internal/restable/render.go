package restable

import (
	"fmt"
	"sort"
	"strings"
)

// This file renders reservation tables and trees as ASCII art, regenerating
// the paper's illustrative figures (Figures 1, 3, 5, 6) for cmd/mdviz.

// RenderOption draws one reservation-table option as a cycle-by-resource
// grid in the style of the paper's Figure 1, with resource groups as
// columns ("Decoder" spans three sub-columns) and X marking each usage.
func RenderOption(rs *ResourceSet, o *Option) string {
	groups, members := usedGroups(rs, o.Usages)
	if len(groups) == 0 {
		return "(no usages)\n"
	}
	lo, hi := o.TimeRange()

	var b strings.Builder
	// Header row.
	fmt.Fprintf(&b, "%-6s", "Cycle")
	for _, g := range groups {
		width := len(members[g])
		label := g
		cell := width*2 + 1
		if len(label)+2 > cell {
			cell = len(label) + 2
		}
		fmt.Fprintf(&b, "|%s", center(label, cell-1))
	}
	b.WriteString("|\n")

	used := map[Usage]bool{}
	for _, u := range o.Usages {
		used[u] = true
	}
	for t := lo; t <= hi; t++ {
		fmt.Fprintf(&b, "%-6d", t)
		for _, g := range groups {
			ms := members[g]
			cell := len(ms)*2 + 1
			if len(g)+2 > cell {
				cell = len(g) + 2
			}
			var marks strings.Builder
			for i, id := range ms {
				if i > 0 {
					marks.WriteByte(' ')
				}
				if used[Usage{Res: id, Time: t}] {
					marks.WriteByte('X')
				} else {
					marks.WriteByte('.')
				}
			}
			fmt.Fprintf(&b, "|%s", center(marks.String(), cell-1))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// RenderORTree draws every option of an OR-tree in priority order, labeled
// Option 1..n (Figure 1 / Figure 3a style).
func RenderORTree(rs *ResourceSet, t *ORTree) string {
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "OR-tree %s (%d options)\n", t.Name, len(t.Options))
	}
	for i, o := range t.Options {
		fmt.Fprintf(&b, "Option %d:\n%s", i+1, indent(RenderOption(rs, o), "  "))
	}
	return b.String()
}

// RenderAndOrTree draws an AND/OR-tree as its AND node over each sub
// OR-tree (Figure 3b style).
func RenderAndOrTree(rs *ResourceSet, a *AndOrTree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "AND/OR-tree %s: AND of %d OR-trees (%d stored options ≡ %d expanded options)\n",
		a.Name, len(a.Trees), a.StoredOptionCount(), a.OptionCount())
	for i, t := range a.Trees {
		fmt.Fprintf(&b, "├─ OR-tree %d: %s\n%s", i+1, t.Name, indent(RenderORTree(rs, t), "│    "))
	}
	return b.String()
}

// usedGroups returns the resource groups touched by usages (in first-use
// order) and, per group, its member resource IDs in ID order.
func usedGroups(rs *ResourceSet, usages []Usage) ([]string, map[string][]int) {
	var groups []string
	seen := map[string]bool{}
	for _, u := range usages {
		g := rs.Group(u.Res)
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	members := map[string][]int{}
	for _, g := range groups {
		ids := rs.GroupMembers(g)
		sort.Ints(ids)
		members[g] = ids
	}
	return groups, members
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
