package workload

import (
	"testing"

	"mdes/internal/ir"
	"mdes/internal/machines"
)

func TestSpecsExistForAllMachines(t *testing.T) {
	for _, n := range machines.AllExtended {
		spec, err := Specs(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(spec.Ops) == 0 || len(spec.Terms) == 0 || spec.MeanBlockSize < 2 {
			t.Fatalf("%s: malformed spec %+v", n, spec)
		}
	}
	if _, err := Specs("vax"); err == nil {
		t.Fatalf("unknown machine spec returned")
	}
}

func TestSpecOpcodesExistInMDES(t *testing.T) {
	for _, n := range machines.AllExtended {
		m := machines.MustLoad(n)
		spec, _ := Specs(n)
		for _, s := range append(append([]OpSpec{}, spec.Ops...), spec.Terms...) {
			if _, ok := m.Operations[s.Opcode]; !ok {
				t.Errorf("%s: workload opcode %q not in MDES", n, s.Opcode)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Machine: machines.SuperSPARC, NumOps: 500, Seed: 1}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumOps != b.NumOps || len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("nondeterministic shape: %d/%d vs %d/%d", a.NumOps, len(a.Blocks), b.NumOps, len(b.Blocks))
	}
	for i := range a.Blocks {
		for j := range a.Blocks[i].Ops {
			x, y := a.Blocks[i].Ops[j], b.Blocks[i].Ops[j]
			if x.Opcode != y.Opcode || x.Cascaded != y.Cascaded {
				t.Fatalf("nondeterministic op %d/%d: %v vs %v", i, j, x, y)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(Config{Machine: machines.SuperSPARC, NumOps: 500, Seed: 1})
	b, _ := Generate(Config{Machine: machines.SuperSPARC, NumOps: 500, Seed: 2})
	same := true
	for i := 0; i < len(a.Blocks) && i < len(b.Blocks) && same; i++ {
		if len(a.Blocks[i].Ops) != len(b.Blocks[i].Ops) {
			same = false
			break
		}
		for j := range a.Blocks[i].Ops {
			if a.Blocks[i].Ops[j].Opcode != b.Blocks[i].Ops[j].Opcode {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Machine: machines.SuperSPARC, NumOps: 0}); err == nil {
		t.Fatalf("NumOps 0 accepted")
	}
	if _, err := Generate(Config{Machine: "vax", NumOps: 10}); err == nil {
		t.Fatalf("unknown machine accepted")
	}
}

func TestBlocksEndWithTerminator(t *testing.T) {
	for _, n := range machines.AllExtended {
		p, err := Generate(Config{Machine: n, NumOps: 1000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range p.Blocks {
			if len(b.Ops) == 0 {
				t.Fatalf("%s block %d empty", n, bi)
			}
			last := b.Ops[len(b.Ops)-1]
			if !last.Branch {
				t.Fatalf("%s block %d does not end in a branch: %v", n, bi, last)
			}
			for _, op := range b.Ops[:len(b.Ops)-1] {
				if op.Branch {
					t.Fatalf("%s block %d has interior branch", n, bi)
				}
			}
		}
	}
}

func TestPostpassRegistersBounded(t *testing.T) {
	p, err := Generate(Config{Machine: machines.Pentium, NumOps: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Blocks {
		for _, op := range b.Ops {
			for _, r := range append(append([]int{}, op.Srcs...), op.Dests...) {
				if r < 0 || r >= postpassRegs {
					t.Fatalf("postpass register %d out of range", r)
				}
			}
		}
	}
}

func TestPrepassUsesVirtualRegisters(t *testing.T) {
	p, err := Generate(Config{Machine: machines.SuperSPARC, NumOps: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	maxReg := 0
	for _, b := range p.Blocks {
		for _, op := range b.Ops {
			for _, r := range op.Dests {
				if r > maxReg {
					maxReg = r
				}
			}
		}
	}
	// Virtual registers are numbered per block from 4; any long block
	// exceeds the 8-register architectural file of the postpass model.
	if maxReg <= 2*postpassRegs {
		t.Fatalf("prepass register space suspiciously small: %d", maxReg)
	}
}

func TestCascadedOpsHaveRealFlowEdges(t *testing.T) {
	p, err := Generate(Config{Machine: machines.SuperSPARC, NumOps: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cascades := 0
	for _, b := range p.Blocks {
		for i, op := range b.Ops {
			if !op.Cascaded {
				continue
			}
			cascades++
			if i == 0 {
				t.Fatalf("cascaded op first in block")
			}
			prev := b.Ops[i-1]
			found := false
			for _, s := range op.Srcs {
				for _, d := range prev.Dests {
					if s == d {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("cascaded op does not consume predecessor result: %v after %v", op, prev)
			}
		}
	}
	if cascades == 0 {
		t.Fatalf("no cascaded ops generated")
	}
}

func TestOpcodeMixRoughlyMatchesWeights(t *testing.T) {
	p, err := Generate(Config{Machine: machines.SuperSPARC, NumOps: 50000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, b := range p.Blocks {
		for _, op := range b.Ops {
			counts[op.Opcode]++
		}
	}
	// ADD1 dominates the mix (~44% of non-branch weight).
	if counts["ADD1"] < counts["LD"] || counts["ADD1"] < counts["ADD2"]*4 {
		t.Fatalf("mix off: %v", counts)
	}
	// Every op in the spec should appear in a 50k-op stream.
	spec, _ := Specs(machines.SuperSPARC)
	for _, s := range spec.Ops {
		if counts[s.Opcode] == 0 {
			t.Errorf("opcode %s never generated", s.Opcode)
		}
	}
}

func TestGraphsBuildOnGeneratedCode(t *testing.T) {
	for _, n := range machines.AllExtended {
		m := machines.MustLoad(n)
		p, err := Generate(Config{Machine: n, NumOps: 1000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		lat := func(opc string) int { return m.Operations[opc].Latency }
		for _, b := range p.Blocks {
			g := ir.BuildGraph(b, lat)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: %v", n, err)
			}
		}
	}
}

// GenerateParallel must be deterministic in (cfg, shards) — independent of
// goroutine interleaving — and must equal the serial concatenation of its
// shards.
func TestGenerateParallelDeterministic(t *testing.T) {
	cfg := Config{Machine: machines.K5, NumOps: 4000, Seed: 1996}
	a, err := GenerateParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumOps != b.NumOps || len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("non-deterministic shape: %d/%d ops, %d/%d blocks",
			a.NumOps, b.NumOps, len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if len(a.Blocks[i].Ops) != len(b.Blocks[i].Ops) {
			t.Fatalf("block %d sizes differ", i)
		}
		for j := range a.Blocks[i].Ops {
			if a.Blocks[i].Ops[j].Opcode != b.Blocks[i].Ops[j].Opcode {
				t.Fatalf("block %d op %d differs: %s vs %s",
					i, j, a.Blocks[i].Ops[j].Opcode, b.Blocks[i].Ops[j].Opcode)
			}
		}
	}

	// Shards equal the serial generation of each shard's sub-config.
	per := cfg.NumOps / 4
	serial, err := Generate(Config{Machine: cfg.Machine, NumOps: per, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range serial.Blocks {
		if got := a.Blocks[i]; len(got.Ops) != len(blk.Ops) || got.Ops[0].Opcode != blk.Ops[0].Opcode {
			t.Fatalf("shard 0 block %d does not match serial generation", i)
		}
	}
}

func TestGenerateParallelDegenerate(t *testing.T) {
	cfg := Config{Machine: machines.SuperSPARC, NumOps: 500, Seed: 3}
	a, err := GenerateParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumOps != b.NumOps || len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("shards=1 differs from Generate: %d/%d ops", a.NumOps, b.NumOps)
	}
	if _, err := GenerateParallel(Config{Machine: "nope", NumOps: 10}, 4); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := GenerateParallel(Config{Machine: machines.K5, NumOps: 0}, 4); err == nil {
		t.Fatal("zero NumOps accepted")
	}
}
