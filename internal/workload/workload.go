// Package workload generates deterministic synthetic assembly streams for
// each target machine, standing in for the paper's SPEC CINT92 assembly
// (between 201011 and 282219 static operations per platform, §4).
//
// Substitution rationale (DESIGN.md §2): the paper's metrics — scheduling
// attempts, options checked, resource checks, and their distribution over
// option-count classes — depend only on the stream of (operation class,
// dependence structure) pairs reaching the scheduler. Each machine's
// opcode mix below is tuned so the share of scheduling attempts falling in
// each option-count class approximates the paper's Tables 1-4, and the
// dependence/register model follows the paper's setup: prepass scheduling
// (virtual registers, flow dependences dominate) for the PA7100 and
// SuperSPARC, postpass scheduling (eight architectural registers, anti and
// output dependences abound) for the X86 Pentium and K5.
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"mdes/internal/ir"
	"mdes/internal/machines"
)

// OpSpec describes one opcode's place in a machine's synthetic mix.
type OpSpec struct {
	Opcode string
	// Weight is the relative static frequency among non-branch ops (or
	// among terminators for Branch specs).
	Weight float64
	NSrcs  int
	NDests int
	Mem    ir.MemKind
	Branch bool
	// CascadeProb is the probability a generated instance is marked as a
	// cascade candidate (SuperSPARC same-cycle IALU pairs).
	CascadeProb float64
}

// MachineSpec bundles a machine's generation parameters.
type MachineSpec struct {
	Machine machines.Name
	Ops     []OpSpec // non-terminator mix
	Terms   []OpSpec // block-terminator mix (branches, bundled cmp+br)
	// MeanBlockSize controls the terminator share of the stream.
	MeanBlockSize int
	// Postpass selects the eight-register reuse model.
	Postpass bool
	// ImmProb is the probability that a source operand is an immediate or
	// memory form carrying no register dependence (X86 code is rich in
	// these), which raises the number of simultaneously-ready operations.
	ImmProb float64
}

// Specs returns the generation spec for a built-in machine.
func Specs(n machines.Name) (*MachineSpec, error) {
	switch n {
	case machines.SuperSPARC:
		return superSPARCSpec(), nil
	case machines.PA7100:
		return pa7100Spec(), nil
	case machines.Pentium:
		return pentiumSpec(), nil
	case machines.K5:
		return k5Spec(), nil
	case machines.P6:
		return p6Spec(), nil
	}
	return nil, fmt.Errorf("workload: no spec for machine %q", n)
}

// superSPARCSpec targets Table 1's attempt distribution: ~50% one-source
// IALU (48 options), ~14% loads (6), ~5% stores (12), ~9% in the 24-option
// class (shifts + cascaded one-source IALU), ~3% in the 36-option class,
// ~4% two-source IALU (72), ~0.7% FP (3), ~13% branches/serial (1).
func superSPARCSpec() *MachineSpec {
	return &MachineSpec{
		Machine: machines.SuperSPARC,
		Ops: []OpSpec{
			{Opcode: "ADD1", Weight: 44, NSrcs: 1, NDests: 1},
			{Opcode: "SUB1", Weight: 14, NSrcs: 1, NDests: 1, CascadeProb: 0.55},
			{Opcode: "ADD2", Weight: 4.7, NSrcs: 2, NDests: 1},
			{Opcode: "AND2", Weight: 3.5, NSrcs: 2, NDests: 1, CascadeProb: 0.55},
			{Opcode: "LD", Weight: 16.6, NSrcs: 1, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "ST", Weight: 5.7, NSrcs: 2, Mem: ir.MemStore},
			{Opcode: "SLL1", Weight: 3.2, NSrcs: 1, NDests: 1},
			{Opcode: "SLL2", Weight: 1.1, NSrcs: 2, NDests: 1},
			{Opcode: "FADD", Weight: 0.5, NSrcs: 2, NDests: 1},
			{Opcode: "FMUL", Weight: 0.3, NSrcs: 2, NDests: 1},
			{Opcode: "CALL", Weight: 1.5},
		},
		Terms: []OpSpec{
			{Opcode: "BR", Weight: 1, NSrcs: 1, Branch: true},
		},
		MeanBlockSize: 8,
	}
}

// pa7100Spec targets Table 2: ~81% two-option ops, ~19% branches.
func pa7100Spec() *MachineSpec {
	return &MachineSpec{
		Machine: machines.PA7100,
		Ops: []OpSpec{
			{Opcode: "ADD", Weight: 30, NSrcs: 2, NDests: 1},
			{Opcode: "SUB", Weight: 12, NSrcs: 2, NDests: 1},
			{Opcode: "AND", Weight: 8, NSrcs: 2, NDests: 1},
			{Opcode: "SH", Weight: 7, NSrcs: 1, NDests: 1},
			{Opcode: "LD", Weight: 18, NSrcs: 1, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "ST", Weight: 7, NSrcs: 2, Mem: ir.MemStore},
			{Opcode: "FADD", Weight: 1.2, NSrcs: 2, NDests: 1},
			{Opcode: "FMUL", Weight: 0.8, NSrcs: 2, NDests: 1},
		},
		Terms: []OpSpec{
			{Opcode: "BR", Weight: 1, NSrcs: 1, Branch: true},
		},
		MeanBlockSize: 5,
	}
}

// pentiumSpec targets Table 3: ~55% two-option (pairable) attempts, ~45%
// one-option (U-only and non-pairable) attempts.
func pentiumSpec() *MachineSpec {
	return &MachineSpec{
		Machine: machines.Pentium,
		Ops: []OpSpec{
			{Opcode: "ADD", Weight: 22, NSrcs: 2, NDests: 1},
			{Opcode: "SUB", Weight: 6, NSrcs: 2, NDests: 1},
			{Opcode: "MOV", Weight: 12, NSrcs: 1, NDests: 1},
			{Opcode: "LD", Weight: 10, NSrcs: 1, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "ST", Weight: 5, NSrcs: 2, Mem: ir.MemStore},
			{Opcode: "SHL", Weight: 17, NSrcs: 1, NDests: 1},
			{Opcode: "ROR", Weight: 7, NSrcs: 1, NDests: 1},
			{Opcode: "MUL", Weight: 13, NSrcs: 2, NDests: 1},
			{Opcode: "STRING", Weight: 8, NSrcs: 2, NDests: 1},
		},
		Terms: []OpSpec{
			{Opcode: "CMPBR", Weight: 1, NSrcs: 2, Branch: true},
		},
		MeanBlockSize: 9,
		Postpass:      true,
	}
}

// k5Spec targets Table 4's eleven option-count classes.
func k5Spec() *MachineSpec {
	return &MachineSpec{
		Machine: machines.K5,
		Ops: []OpSpec{
			{Opcode: "ADD", Weight: 38, NSrcs: 2, NDests: 1},
			{Opcode: "SUB", Weight: 12, NSrcs: 2, NDests: 1},
			{Opcode: "MOV", Weight: 13, NSrcs: 1, NDests: 1},
			{Opcode: "LD", Weight: 9, NSrcs: 1, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "ST", Weight: 4, NSrcs: 2, Mem: ir.MemStore},
			{Opcode: "FOP", Weight: 14.5, NSrcs: 2, NDests: 1},
			{Opcode: "PUSH", Weight: 0.15, NSrcs: 1, Mem: ir.MemStore},
			{Opcode: "ADDM", Weight: 0.2, NSrcs: 2, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "LEAL", Weight: 0.15, NSrcs: 2, NDests: 1},
			{Opcode: "ADDML", Weight: 0.4, NSrcs: 2, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "RMW", Weight: 0.15, NSrcs: 2, NDests: 1, Mem: ir.MemStore},
		},
		Terms: []OpSpec{
			{Opcode: "CMPBR", Weight: 6.2, NSrcs: 2, Branch: true},
			{Opcode: "TESTBR", Weight: 2.7, NSrcs: 2, Branch: true},
			{Opcode: "CMPBRL", Weight: 0.7, NSrcs: 2, Branch: true},
			{Opcode: "TESTBRL", Weight: 0.45, NSrcs: 2, Branch: true},
		},
		// Larger blocks and immediate-heavy operands raise the number of
		// simultaneously-ready operations competing for the four decode
		// positions and dispatch slots, reproducing the K5's higher
		// failed-attempt rate (paper: 1.6 attempts/op).
		MeanBlockSize: 16,
		Postpass:      true,
		ImmProb:       0.6,
	}
}

// p6Spec covers the extension machine (not part of the paper's tables):
// a three-wide decode, five-port machine with micro-op fusion pressure.
func p6Spec() *MachineSpec {
	return &MachineSpec{
		Machine: machines.P6,
		Ops: []OpSpec{
			{Opcode: "ADD", Weight: 34, NSrcs: 2, NDests: 1},
			{Opcode: "SUB", Weight: 11, NSrcs: 2, NDests: 1},
			{Opcode: "MOV", Weight: 16, NSrcs: 1, NDests: 1},
			{Opcode: "LD", Weight: 18, NSrcs: 1, NDests: 1, Mem: ir.MemLoad},
			{Opcode: "ST", Weight: 8, NSrcs: 2, Mem: ir.MemStore},
			{Opcode: "FOP", Weight: 6, NSrcs: 2, NDests: 1},
			{Opcode: "RMW", Weight: 3, NSrcs: 2, NDests: 1, Mem: ir.MemStore},
		},
		Terms: []OpSpec{
			{Opcode: "CMPBR", Weight: 1, NSrcs: 2, Branch: true},
		},
		MeanBlockSize: 12,
		Postpass:      true,
		ImmProb:       0.5,
	}
}

// Program is a generated workload: basic blocks of ir operations targeting
// one machine.
type Program struct {
	Machine machines.Name
	Blocks  []*ir.Block
	NumOps  int
}

// Config parameterizes generation.
type Config struct {
	Machine machines.Name
	// NumOps is the approximate total static operation count.
	NumOps int
	Seed   int64
}

// Generate builds a deterministic synthetic program.
func Generate(cfg Config) (*Program, error) {
	spec, err := Specs(cfg.Machine)
	if err != nil {
		return nil, err
	}
	if cfg.NumOps <= 0 {
		return nil, fmt.Errorf("workload: NumOps %d must be positive", cfg.NumOps)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{spec: spec, r: r}
	p := &Program{Machine: cfg.Machine}
	for p.NumOps < cfg.NumOps {
		b := g.block()
		p.Blocks = append(p.Blocks, b)
		p.NumOps += len(b.Ops)
	}
	return p, nil
}

// GenerateParallel builds a deterministic synthetic program from shards
// generated concurrently: shard i runs an independent generator seeded
// with Seed+i over ~NumOps/shards operations, and the shards are
// concatenated in shard order. The result depends only on (cfg, shards) —
// never on goroutine interleaving — so large multi-block corpora for the
// concurrent scheduling benchmarks build at full machine speed while
// staying reproducible. shards < 2 degenerates to Generate.
func GenerateParallel(cfg Config, shards int) (*Program, error) {
	if shards < 2 {
		return Generate(cfg)
	}
	if _, err := Specs(cfg.Machine); err != nil {
		return nil, err
	}
	if cfg.NumOps <= 0 {
		return nil, fmt.Errorf("workload: NumOps %d must be positive", cfg.NumOps)
	}
	per := cfg.NumOps / shards
	parts := make([]*Program, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		n := per
		if i == shards-1 {
			n = cfg.NumOps - per*(shards-1)
		}
		if n <= 0 {
			n = 1
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			parts[i], errs[i] = Generate(Config{Machine: cfg.Machine, NumOps: n, Seed: cfg.Seed + int64(i)})
		}(i, n)
	}
	wg.Wait()
	out := &Program{Machine: cfg.Machine}
	for i, p := range parts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out.Blocks = append(out.Blocks, p.Blocks...)
		out.NumOps += p.NumOps
	}
	return out, nil
}

type generator struct {
	spec *MachineSpec
	r    *rand.Rand
}

// pick selects a spec by weight.
func pick(r *rand.Rand, specs []OpSpec) *OpSpec {
	var total float64
	for i := range specs {
		total += specs[i].Weight
	}
	x := r.Float64() * total
	for i := range specs {
		x -= specs[i].Weight
		if x <= 0 {
			return &specs[i]
		}
	}
	return &specs[len(specs)-1]
}

const postpassRegs = 8

func (g *generator) block() *ir.Block {
	// Block sizes vary geometrically around the mean, min 1 op + branch.
	n := 1
	mean := g.spec.MeanBlockSize
	for n < mean*3 && g.r.Float64() > 1.0/float64(mean) {
		n++
	}
	b := &ir.Block{}
	// live holds recently-defined registers to draw sources from.
	live := []int{0, 1, 2, 3}
	nextReg := 4
	defReg := func() int {
		if g.spec.Postpass {
			return g.r.Intn(postpassRegs)
		}
		reg := nextReg
		nextReg++
		return reg
	}
	srcReg := func() int {
		if g.spec.Postpass {
			return g.r.Intn(postpassRegs)
		}
		// Prefer recent values: exponential-ish bias toward the tail.
		i := len(live) - 1 - g.r.Intn(min(len(live), 6))
		return live[i]
	}
	emit := func(spec *OpSpec) {
		op := &ir.Operation{Opcode: spec.Opcode, Mem: spec.Mem, Branch: spec.Branch}
		for i := 0; i < spec.NSrcs; i++ {
			if g.spec.ImmProb > 0 && g.r.Float64() < g.spec.ImmProb {
				continue // immediate/memory operand: no register dependence
			}
			op.Srcs = append(op.Srcs, srcReg())
		}
		for i := 0; i < spec.NDests; i++ {
			d := defReg()
			op.Dests = append(op.Dests, d)
			if !g.spec.Postpass {
				live = append(live, d)
				if len(live) > 16 {
					live = live[len(live)-16:]
				}
			}
		}
		if spec.CascadeProb > 0 && g.r.Float64() < spec.CascadeProb && len(b.Ops) > 0 {
			// Rewrite the op to consume the previous op's result so the
			// cascade's zero-distance flow edge is real.
			prev := b.Ops[len(b.Ops)-1]
			if len(prev.Dests) > 0 && len(op.Srcs) > 0 && !prev.Branch {
				op.Srcs[0] = prev.Dests[0]
				op.Cascaded = true
			}
		}
		b.Ops = append(b.Ops, op)
	}
	for i := 0; i < n; i++ {
		emit(pick(g.r, g.spec.Ops))
	}
	emit(pick(g.r, g.spec.Terms))
	b.Renumber()
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
