package server

import (
	"context"
	"sync/atomic"
	"time"
)

// gate is one tenant's admission control: a hard cap on concurrently
// served schedule requests (slots) plus a bounded wait queue. Requests
// beyond both bounds are shed immediately with 429; requests that queue
// but cannot reach a slot within the admission timeout (or whose client
// disconnects) are shed with 503. Shedding is the contract that keeps
// the daemon's latency bounded under overload: work the daemon cannot
// serve soon is refused cheaply instead of piling up.
type gate struct {
	slots      chan struct{}
	queued     atomic.Int64
	queueDepth int64
	timeout    time.Duration
}

func newGate(maxInFlight, queueDepth int, timeout time.Duration) *gate {
	return &gate{
		slots:      make(chan struct{}, maxInFlight),
		queueDepth: int64(queueDepth),
		timeout:    timeout,
	}
}

// admission outcomes.
type admitResult int

const (
	admitOK admitResult = iota
	// admitQueueFull: both the in-flight cap and the queue are full —
	// shed with 429 (the client should back off and retry).
	admitQueueFull
	// admitTimeout: queued but no slot freed within the admission
	// timeout, or the client went away — shed with 503.
	admitTimeout
)

// acquire admits one request. On admitOK the caller must invoke the
// returned release exactly once when the request completes.
func (g *gate) acquire(ctx context.Context) (release func(), res admitResult) {
	select {
	case g.slots <- struct{}{}:
		return g.release, admitOK
	default:
	}
	if g.queued.Add(1) > g.queueDepth {
		g.queued.Add(-1)
		return nil, admitQueueFull
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.release, admitOK
	case <-timer.C:
		return nil, admitTimeout
	case <-ctx.Done():
		return nil, admitTimeout
	}
}

func (g *gate) release() { <-g.slots }

// inFlight reports the currently admitted request count.
func (g *gate) inFlight() int { return len(g.slots) }
