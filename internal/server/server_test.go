package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdes"
	"mdes/internal/machines"
	"mdes/internal/workload"
	"mdes/sdk/mdesclient"
)

// testSource returns a builtin machine's HMDES source.
func testSource(t *testing.T, n machines.Name) string {
	t.Helper()
	src, err := machines.Source(n)
	if err != nil {
		t.Fatalf("machines.Source(%s): %v", n, err)
	}
	return src
}

// testBlocks generates a small deterministic workload.
func testBlocks(t *testing.T, n machines.Name, numOps int, seed int64) []*mdes.Block {
	t.Helper()
	prog, err := workload.Generate(workload.Config{Machine: n, NumOps: numOps, Seed: seed})
	if err != nil {
		t.Fatalf("workload.Generate: %v", err)
	}
	return prog.Blocks
}

// localReference schedules blocks with an in-process engine at the given
// level, returning the engine's fingerprint and per-block issue arrays.
func localReference(t *testing.T, source string, level mdes.Level, blocks []*mdes.Block) (string, [][]int) {
	t.Helper()
	m, err := mdes.Load("ref.mdes", source)
	if err != nil {
		t.Fatalf("load reference: %v", err)
	}
	c := mdes.Compile(m, mdes.FormAndOr)
	mdes.Optimize(c, level)
	fp, err := c.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	eng, err := mdes.NewEngine(c, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	results, _, err := eng.ScheduleBlocks(context.Background(), blocks, 4)
	if err != nil {
		t.Fatalf("reference schedule: %v", err)
	}
	issues := make([][]int, len(results))
	for i, r := range results {
		issues[i] = r.Issue
	}
	return fp, issues
}

// newTestDaemon serves a Server over httptest and returns it with an SDK
// client pointed at it.
func newTestDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server, *mdesclient.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mdesclient.New(ts.URL, mdesclient.WithRetry(2, 5*time.Millisecond))
	return s, ts, c
}

func TestUploadScheduleRoundTrip(t *testing.T) {
	_, _, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	source := testSource(t, machines.PA7100)

	up, err := c.Upload(ctx, "acme", mdesclient.UploadRequest{Source: source, Activate: true})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if !up.Active || up.Fingerprint == "" || up.Key == "" {
		t.Fatalf("upload response incomplete: %+v", up)
	}

	blocks := testBlocks(t, machines.PA7100, 300, 7)
	wantFP, wantIssues := localReference(t, source, mdes.LevelFull, blocks)
	if up.Fingerprint != wantFP {
		t.Fatalf("server fingerprint %s != local %s", up.Fingerprint, wantFP)
	}

	resp, err := c.Schedule(ctx, "acme", FromIR(blocks))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if resp.Fingerprint != wantFP {
		t.Fatalf("response fingerprint %s != %s", resp.Fingerprint, wantFP)
	}
	if len(resp.Results) != len(blocks) {
		t.Fatalf("got %d results for %d blocks", len(resp.Results), len(blocks))
	}
	for i, r := range resp.Results {
		if fmt.Sprint(r.Issue) != fmt.Sprint(wantIssues[i]) {
			t.Fatalf("block %d: server issue %v != local %v", i, r.Issue, wantIssues[i])
		}
	}
	if resp.Counters.Attempts == 0 || resp.Counters.ResourceChecks == 0 {
		t.Fatalf("response counters empty: %+v", resp.Counters)
	}

	st, err := c.Stats(ctx, "acme")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Blocks != int64(len(blocks)) || st.Fingerprint != wantFP {
		t.Fatalf("stats %+v; want %d blocks, fp %s", st, len(blocks), wantFP)
	}
}

func TestTenantIsolation(t *testing.T) {
	_, _, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	if _, err := c.Upload(ctx, "a", mdesclient.UploadRequest{Source: testSource(t, machines.PA7100), Activate: true}); err != nil {
		t.Fatalf("upload a: %v", err)
	}
	if _, err := c.Upload(ctx, "b", mdesclient.UploadRequest{Source: testSource(t, machines.K5), Activate: true}); err != nil {
		t.Fatalf("upload b: %v", err)
	}
	va, err := c.Versions(ctx, "a")
	if err != nil {
		t.Fatalf("versions a: %v", err)
	}
	vb, err := c.Versions(ctx, "b")
	if err != nil {
		t.Fatalf("versions b: %v", err)
	}
	if len(va.Versions) != 1 || len(vb.Versions) != 1 {
		t.Fatalf("version counts %d/%d, want 1/1", len(va.Versions), len(vb.Versions))
	}
	if va.Versions[0].Fingerprint == vb.Versions[0].Fingerprint {
		t.Fatalf("distinct machines share fingerprint %s", va.Versions[0].Fingerprint)
	}
	if va.Versions[0].Machine == vb.Versions[0].Machine {
		t.Fatalf("tenants not isolated: %+v %+v", va.Versions[0], vb.Versions[0])
	}
}

func TestCachedUploadByContentAddress(t *testing.T) {
	dir := t.TempDir()
	_, _, c := newTestDaemon(t, Config{CacheDir: dir})
	ctx := context.Background()
	source := testSource(t, machines.SuperSPARC)

	// First upload populates the content-addressed cache.
	up1, err := c.Upload(ctx, "warm", mdesclient.UploadRequest{Source: source, Activate: true})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	// A second tenant references the arena by hash alone — no source sent.
	up2, err := c.Upload(ctx, "byref", mdesclient.UploadRequest{SourceHash: up1.SourceHash, Activate: true})
	if err != nil {
		t.Fatalf("upload by hash: %v", err)
	}
	if !up2.Cached {
		t.Fatalf("by-hash upload not served from cache: %+v", up2)
	}
	if up2.Fingerprint != up1.Fingerprint {
		t.Fatalf("cached fingerprint %s != source fingerprint %s", up2.Fingerprint, up1.Fingerprint)
	}
	// Both must schedule identically.
	blocks := FromIR(testBlocks(t, machines.SuperSPARC, 120, 3))
	r1, err := c.Schedule(ctx, "warm", blocks)
	if err != nil {
		t.Fatalf("schedule warm: %v", err)
	}
	r2, err := c.Schedule(ctx, "byref", blocks)
	if err != nil {
		t.Fatalf("schedule byref: %v", err)
	}
	for i := range r1.Results {
		if fmt.Sprint(r1.Results[i].Issue) != fmt.Sprint(r2.Results[i].Issue) {
			t.Fatalf("block %d diverges between source and by-ref engines", i)
		}
	}

	// An unknown content address is a structured 404.
	_, err = c.Upload(ctx, "byref", mdesclient.UploadRequest{SourceHash: "deadbeefdeadbeef"})
	assertAPIError(t, err, http.StatusNotFound, "not_found")
}

// assertAPIError checks err is a structured APIError with the given
// status and code.
func assertAPIError(t *testing.T, err error, status int, code string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %d/%s error, got nil", status, code)
	}
	apiErr, ok := err.(*mdesclient.APIError)
	if !ok {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if apiErr.Status != status || apiErr.Code != code {
		t.Fatalf("got %d/%s (%s), want %d/%s", apiErr.Status, apiErr.Code, apiErr.Message, status, code)
	}
}

func TestStructuredErrors(t *testing.T) {
	s, ts, c := newTestDaemon(t, Config{MaxBodyBytes: 4096})
	ctx := context.Background()

	// Unknown tenant.
	_, err := c.Schedule(ctx, "ghost", []mdesclient.Block{{Ops: []mdesclient.Op{{Opcode: "IALU"}}}})
	assertAPIError(t, err, http.StatusNotFound, "not_found")

	// Tenant exists but has no active description.
	if _, err := c.Upload(ctx, "t", mdesclient.UploadRequest{Source: testSource(t, machines.Pentium)}); err != nil {
		t.Fatalf("upload: %v", err)
	}
	_, err = c.Schedule(ctx, "t", []mdesclient.Block{{Ops: []mdesclient.Op{{Opcode: "IALU"}}}})
	assertAPIError(t, err, http.StatusNotFound, "no_description")

	// Corrupt HMDES source: structured diagnostics with a position.
	bad := testSource(t, machines.Pentium)
	bad = strings.Replace(bad, "resource", "resorce", 1)
	_, err = c.Upload(ctx, "t", mdesclient.UploadRequest{Source: bad})
	assertAPIError(t, err, http.StatusBadRequest, "bad_source")
	if apiErr := err.(*mdesclient.APIError); len(apiErr.Diagnostics) == 0 || apiErr.Diagnostics[0].Line == 0 {
		t.Fatalf("bad_source carries no positioned diagnostics: %+v", apiErr)
	}

	// Oversized body: rejected before parsing with 413.
	huge := strings.Repeat("x", int(s.Config().MaxBodyBytes)+1)
	_, err = c.Upload(ctx, "t", mdesclient.UploadRequest{Source: huge})
	assertAPIError(t, err, http.StatusRequestEntityTooLarge, "too_large")

	// Unknown opcode reaches the scheduler and comes back structured.
	if _, err := c.Upload(ctx, "t", mdesclient.UploadRequest{Source: testSource(t, machines.Pentium), Activate: true}); err != nil {
		t.Fatalf("re-upload: %v", err)
	}
	_, err = c.Schedule(ctx, "t", []mdesclient.Block{{Ops: []mdesclient.Op{{Opcode: "NO_SUCH_OP"}}}})
	assertAPIError(t, err, http.StatusBadRequest, "bad_block")

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/tenants/t/schedule", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	body := decodeErrorBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Code != "bad_request" {
		t.Fatalf("malformed JSON: got %d/%s", resp.StatusCode, body.Code)
	}

	// Invalid tenant names never reach the registry.
	resp2, err := http.Get(ts.URL + "/v1/tenants/..%2Fetc/stats")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatalf("path-traversal tenant name accepted")
	}
}

func decodeErrorBody(t *testing.T, resp *http.Response) mdesclient.ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var body mdesclient.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	return body
}

func TestAdmissionSheddingOverHTTP(t *testing.T) {
	s, ts, c := newTestDaemon(t, Config{MaxInFlight: 2, QueueDepth: 1, RequestTimeout: 100 * time.Millisecond})
	ctx := context.Background()
	if _, err := c.Upload(ctx, "busy", mdesclient.UploadRequest{Source: testSource(t, machines.PA7100), Activate: true}); err != nil {
		t.Fatalf("upload: %v", err)
	}
	// Fill every slot directly through the tenant's gate so shedding is
	// deterministic, then hit the daemon over HTTP.
	s.mu.RLock()
	g := s.tenants["busy"].gate
	s.mu.RUnlock()
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, res := g.acquire(ctx)
		if res != admitOK {
			t.Fatalf("slot %d not admitted", i)
		}
		releases = append(releases, rel)
	}

	blocks := FromIR(testBlocks(t, machines.PA7100, 20, 1))
	payload, _ := json.Marshal(mdesclient.ScheduleRequest{Blocks: blocks})

	// First excess request queues, then times out: 503 timeout.
	start := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/tenants/busy/schedule", "application/json", strings.NewReader(string(payload)))
		if err != nil {
			t.Errorf("queued post: %v", err)
			start <- nil
			return
		}
		start <- resp
	}()
	time.Sleep(20 * time.Millisecond) // let it enter the queue

	// Second excess request finds the queue full: immediate 429 with
	// Retry-After.
	resp, err := http.Post(ts.URL+"/v1/tenants/busy/schedule", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatalf("shed post: %v", err)
	}
	body := decodeErrorBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests || body.Code != "overloaded" {
		t.Fatalf("queue overflow: got %d/%s, want 429/overloaded", resp.StatusCode, body.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}

	if resp := <-start; resp != nil {
		body := decodeErrorBody(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable || body.Code != "timeout" {
			t.Fatalf("admission timeout: got %d/%s, want 503/timeout", resp.StatusCode, body.Code)
		}
	}

	// Releasing the slots restores service.
	for _, rel := range releases {
		rel()
	}
	if _, err := c.Schedule(ctx, "busy", blocks); err != nil {
		t.Fatalf("schedule after release: %v", err)
	}
}

func TestMetricsAndObsMounts(t *testing.T) {
	_, ts, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	if _, err := c.Upload(ctx, "obs-t", mdesclient.UploadRequest{Source: testSource(t, machines.K5), Activate: true}); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if _, err := c.Schedule(ctx, "obs-t", FromIR(testBlocks(t, machines.K5, 60, 2))); err != nil {
		t.Fatalf("schedule: %v", err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, sb.String()
	}

	code, text := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`mdesd_requests_total{tenant="obs-t"} 1`,
		`mdesd_blocks_scheduled_total{tenant="obs-t"}`,
		`mdesd_versions{tenant="obs-t"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// The engine's own observability is mounted per tenant.
	for _, path := range []string{
		"/v1/tenants/obs-t/obs/metrics",
		"/v1/tenants/obs-t/obs/metrics.json",
		"/v1/tenants/obs-t/obs/debug/flight",
		"/v1/tenants/obs-t/obs/debug/profile",
		"/healthz",
	} {
		if code, _ := get(path); code != http.StatusOK {
			t.Fatalf("GET %s: %d, want 200", path, code)
		}
	}
	code, text = get("/v1/tenants/obs-t/obs/metrics")
	if code != http.StatusOK || !strings.Contains(text, "mdes_") {
		t.Fatalf("tenant obs metrics not engine-scoped: %d\n%s", code, text)
	}
}

func TestGracefulShutdown(t *testing.T) {
	d, err := Start("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	ctx := context.Background()
	c := mdesclient.New("http://"+d.Addr, mdesclient.WithRetry(0, time.Millisecond))
	if _, err := c.Upload(ctx, "bye", mdesclient.UploadRequest{Source: testSource(t, machines.Pentium), Activate: true}); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if _, err := c.Schedule(ctx, "bye", FromIR(testBlocks(t, machines.Pentium, 40, 5))); err != nil {
		t.Fatalf("schedule: %v", err)
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := d.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every version drained.
	srv := d.Server()
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	for name, tn := range srv.tenants {
		tn.mu.Lock()
		for _, v := range tn.versions {
			if !v.isDrained() {
				t.Fatalf("tenant %s version %s not drained after shutdown", name, v.keyID)
			}
		}
		tn.mu.Unlock()
	}
	// The port no longer accepts work.
	if err := c.Health(ctx); err == nil {
		t.Fatalf("daemon still serving after shutdown")
	}
}

func TestDrainingServerShedsWith503(t *testing.T) {
	s, ts, _ := newTestDaemon(t, Config{})
	s.draining.Store(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body := decodeErrorBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || body.Code != "draining" {
		t.Fatalf("draining server answered %d/%s, want 503/draining", resp.StatusCode, body.Code)
	}
}
