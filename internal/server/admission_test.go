package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToCap(t *testing.T) {
	g := newGate(3, 2, 50*time.Millisecond)
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, res := g.acquire(ctx)
		if res != admitOK {
			t.Fatalf("request %d: %v, want admitOK", i, res)
		}
		releases = append(releases, rel)
	}
	if g.inFlight() != 3 {
		t.Fatalf("inFlight = %d, want 3", g.inFlight())
	}
	// Cap reached: the next request queues and times out.
	if _, res := g.acquire(ctx); res != admitTimeout {
		t.Fatalf("over-cap request: %v, want admitTimeout", res)
	}
	// Releasing a slot lets a new request in immediately.
	releases[0]()
	rel, res := g.acquire(ctx)
	if res != admitOK {
		t.Fatalf("after release: %v, want admitOK", res)
	}
	rel()
	for _, r := range releases[1:] {
		r()
	}
	if g.inFlight() != 0 {
		t.Fatalf("inFlight = %d after all releases, want 0", g.inFlight())
	}
}

func TestGateShedsQueueOverflow(t *testing.T) {
	g := newGate(1, 2, time.Second)
	ctx := context.Background()
	rel, res := g.acquire(ctx)
	if res != admitOK {
		t.Fatalf("first: %v", res)
	}
	// Fill the queue with two blocked waiters.
	var wg sync.WaitGroup
	results := make(chan admitResult, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, res := g.acquire(ctx)
			if res == admitOK {
				r()
			}
			results <- res
		}()
	}
	// Wait for both to be queued.
	waitUntil(t, time.Second, func() bool { return g.queued.Load() == 2 })
	// The third waiter overflows the queue: immediate 429.
	if _, res := g.acquire(ctx); res != admitQueueFull {
		t.Fatalf("overflow: %v, want admitQueueFull", res)
	}
	// Release the slot; both queued waiters must eventually be admitted.
	rel()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if res := <-results; res != admitOK {
			t.Fatalf("queued waiter %d: %v, want admitOK", i, res)
		}
	}
}

func TestGateHonorsContextCancellation(t *testing.T) {
	g := newGate(1, 4, time.Minute)
	rel, res := g.acquire(context.Background())
	if res != admitOK {
		t.Fatalf("first: %v", res)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan admitResult, 1)
	go func() {
		_, res := g.acquire(ctx)
		done <- res
	}()
	waitUntil(t, time.Second, func() bool { return g.queued.Load() == 1 })
	cancel()
	select {
	case res := <-done:
		if res != admitTimeout {
			t.Fatalf("cancelled waiter: %v, want admitTimeout", res)
		}
	case <-time.After(time.Second):
		t.Fatalf("cancelled waiter still queued")
	}
	if g.queued.Load() != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", g.queued.Load())
	}
}
