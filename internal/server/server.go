// Package server implements mdesd, the multi-tenant machine-description
// scheduling daemon (ROADMAP item 1): clients POST HMDES sources (or
// reference an already-cached arena by content address) into a
// per-tenant versioned registry keyed by the description cache's
// hash(source) × form × level content address, then issue batch schedule
// requests served by frozen engines pooling per-goroutine contexts.
//
// The daemon's availability contract, proven by the soak/fault harness
// (schedbench -serve and this package's tests):
//
//   - every response is either a result or a structured JSON error —
//     malformed uploads, oversized bodies, corrupt sources, cache
//     faults, overload, and shutdown all degrade to error responses,
//     never to a wedged pool or a stale engine;
//   - admission control bounds per-tenant concurrency and queue depth,
//     shedding overload with 429 (queue full) and 503 (admission
//     timeout, draining) instead of queueing unboundedly;
//   - hot-swapping a description drains the outgoing version: in-flight
//     requests finish on the engine they acquired, every response is
//     stamped with the fingerprint of exactly one version, and the old
//     version reports drained once quiescent;
//   - shutdown is graceful: new requests are shed, in-flight requests
//     complete, every version drains.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdes"
	"mdes/internal/stats"
	"mdes/sdk/mdesclient"
)

// Config parameterizes a daemon.
type Config struct {
	// CacheDir is the compiled-description cache directory ("" disables
	// caching: every upload compiles in-process).
	CacheDir string
	// CacheMax bounds the cache directory's bytes (LRU GC; <= 0
	// unbounded).
	CacheMax int64
	// Checker is the conflict-checker backend for every engine (default
	// CheckerProbePlan, the fastest).
	Checker mdes.CheckerKind
	// MaxInFlight caps concurrently served schedule requests per tenant
	// (default 32).
	MaxInFlight int
	// QueueDepth bounds each tenant's admission wait queue (default 64);
	// requests beyond it are shed with 429.
	QueueDepth int
	// RequestTimeout bounds both admission waiting and scheduling work
	// per request (default 10s); exceeding it sheds with 503.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB); larger uploads
	// are rejected with 413 before the analyzer sees them.
	MaxBodyBytes int64
	// ScheduleParallelism is the goroutine fan-out per schedule request's
	// batch (default 1: concurrency comes from concurrent requests).
	ScheduleParallelism int
	// ReadHeaderTimeout/ReadTimeout/WriteTimeout/IdleTimeout harden the
	// HTTP server against slow-loris clients; zero values take
	// production defaults (5s/15s/30s/2m).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
}

func (c *Config) withDefaults() {
	if c.Checker == 0 {
		c.Checker = mdes.CheckerProbePlan
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ScheduleParallelism <= 0 {
		c.ScheduleParallelism = 1
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
}

// tenantNameRE validates tenant names (they appear in paths and metric
// labels).
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// Server is the daemon's request-handling core, independent of any
// listener (tests drive it through httptest; Start binds it to a port).
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.RWMutex
	tenants map[string]*tenant

	draining atomic.Bool
	started  time.Time
}

// New returns a daemon core with the given configuration.
func New(cfg Config) *Server {
	cfg.withDefaults()
	s := &Server{cfg: cfg, tenants: make(map[string]*tenant), started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/descriptions", s.handleUpload)
	mux.HandleFunc("GET /v1/tenants/{tenant}/descriptions", s.handleList)
	mux.HandleFunc("POST /v1/tenants/{tenant}/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/tenants/{tenant}/stats", s.handleStats)
	mux.HandleFunc("/v1/tenants/{tenant}/obs/", s.handleObs)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the daemon's root handler: the API mux behind the
// draining gate.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining", "daemon is shutting down", nil)
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// tenantOf resolves the path's tenant, creating it when create is set.
func (s *Server) tenantOf(r *http.Request, create bool) (*tenant, error) {
	name := r.PathValue("tenant")
	if !tenantNameRE.MatchString(name) {
		return nil, badRequest("invalid tenant name %q", name)
	}
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil || !create {
		if t == nil {
			return nil, &wireError{code: "not_found", msg: fmt.Sprintf("unknown tenant %q", name)}
		}
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.tenants[name]; t == nil {
		t = &tenant{
			name:     name,
			versions: make(map[string]*version),
			gate:     newGate(s.cfg.MaxInFlight, s.cfg.QueueDepth, s.cfg.RequestTimeout),
		}
		s.tenants[name] = t
	}
	return t, nil
}

// answer serializes any handler failure into the structured error shape.
func answer(w http.ResponseWriter, t *tenant, err error) {
	var (
		werr *wireError
		serr *sourceError
	)
	if t != nil {
		t.stats.errors.Add(1)
	}
	switch {
	case errors.As(err, &serr):
		writeError(w, http.StatusBadRequest, "bad_source", serr.Error(), serr.diags)
	case errors.As(err, &werr):
		status := http.StatusBadRequest
		switch werr.code {
		case "not_found", "no_description":
			status = http.StatusNotFound
		case "too_large":
			status = http.StatusRequestEntityTooLarge
		case "overloaded":
			status = http.StatusTooManyRequests
		case "timeout", "draining":
			status = http.StatusServiceUnavailable
		case "internal":
			status = http.StatusInternalServerError
		}
		writeError(w, status, werr.code, werr.msg, nil)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
	}
}

// readBody reads a capped request body, mapping the cap to a structured
// 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, &wireError{code: "too_large", msg: fmt.Sprintf("request body exceeds the %d-byte cap", maxErr.Limit)}
		}
		return nil, badRequest("reading body: %v", err)
	}
	return data, nil
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantOf(r, true)
	if err != nil {
		answer(w, nil, err)
		return
	}
	data, err := s.readBody(w, r)
	if err != nil {
		answer(w, t, err)
		return
	}
	req, err := ParseUploadRequest(data)
	if err != nil {
		answer(w, t, err)
		return
	}
	resp, err := t.upload(s, req)
	if err != nil {
		answer(w, t, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantOf(r, false)
	if err != nil {
		answer(w, nil, err)
		return
	}
	resp := t.list()
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantOf(r, false)
	if err != nil {
		answer(w, nil, err)
		return
	}
	t.stats.requests.Add(1)
	release, admitted := t.gate.acquire(r.Context())
	switch admitted {
	case admitQueueFull:
		t.stats.shed429.Add(1)
		writeError(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("tenant %q: in-flight and queue limits reached", t.name), nil)
		return
	case admitTimeout:
		t.stats.shed503.Add(1)
		writeError(w, http.StatusServiceUnavailable, "timeout",
			fmt.Sprintf("tenant %q: no scheduling slot within %s", t.name, s.cfg.RequestTimeout), nil)
		return
	}
	defer release()

	v := t.acquire()
	if v == nil {
		answer(w, t, &wireError{code: "no_description", msg: fmt.Sprintf("tenant %q has no active description", t.name)})
		return
	}
	defer v.release()

	data, err := s.readBody(w, r)
	if err != nil {
		answer(w, t, err)
		return
	}
	req, err := ParseScheduleRequest(data)
	if err != nil {
		answer(w, t, err)
		return
	}
	blocks := ToBlocks(req)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	results, total, err := v.eng.ScheduleBlocks(ctx, blocks, s.cfg.ScheduleParallelism)
	if err != nil {
		if ctx.Err() != nil {
			t.stats.shed503.Add(1)
			writeError(w, http.StatusServiceUnavailable, "timeout",
				fmt.Sprintf("scheduling exceeded %s", s.cfg.RequestTimeout), nil)
			return
		}
		answer(w, t, &wireError{code: "bad_block", msg: err.Error()})
		return
	}
	t.stats.blocks.Add(int64(len(blocks)))
	v.blocks.Add(int64(len(blocks)))

	resp := mdesclient.ScheduleResponse{
		Fingerprint: v.fingerprint,
		Key:         v.keyID,
		Results:     make([]mdesclient.BlockResult, len(results)),
		Counters:    wireCounters(total),
	}
	for i, res := range results {
		resp.Results[i] = mdesclient.BlockResult{Issue: res.Issue, Length: res.Length}
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantOf(r, false)
	if err != nil {
		answer(w, nil, err)
		return
	}
	resp := mdesclient.StatsResponse{Tenant: t.name, Blocks: t.stats.blocks.Load()}
	if v := t.active.Load(); v != nil {
		resp.Fingerprint = v.fingerprint
		resp.Counters = wireCounters(v.eng.Totals())
	}
	writeJSON(w, http.StatusOK, &resp)
}

// handleObs mounts the active version's observability endpoints —
// /metrics, /metrics.json, /healthz, /debug/flight, /debug/profile,
// /debug/pprof/ — under /v1/tenants/{tenant}/obs/. The mount resolves
// the active version per request, so a hot-swap atomically switches the
// tenant's debug surfaces to the new engine.
func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantOf(r, false)
	if err != nil {
		answer(w, nil, err)
		return
	}
	v := t.acquire()
	if v == nil {
		answer(w, t, &wireError{code: "no_description", msg: fmt.Sprintf("tenant %q has no active description", t.name)})
		return
	}
	defer v.release()
	prefix := "/v1/tenants/" + t.name + "/obs"
	p := strings.TrimPrefix(r.URL.Path, prefix)
	if p == "" {
		p = "/"
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = p
	v.obsMux.ServeHTTP(w, r2)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"tenants":    n,
		"uptime_sec": int64(time.Since(s.started).Seconds()),
	})
}

// handleMetrics exports the daemon-level counters in Prometheus text
// format with per-tenant labels. Engine-level metrics (per-phase
// counters, latency histograms, flight quantiles, conflict profiles) are
// per tenant under /v1/tenants/{tenant}/obs/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("# TYPE mdesd_requests_total counter\n")
	b.WriteString("# TYPE mdesd_blocks_scheduled_total counter\n")
	b.WriteString("# TYPE mdesd_shed_total counter\n")
	b.WriteString("# TYPE mdesd_errors_total counter\n")
	b.WriteString("# TYPE mdesd_uploads_total counter\n")
	b.WriteString("# TYPE mdesd_inflight gauge\n")
	b.WriteString("# TYPE mdesd_versions gauge\n")
	for _, name := range names {
		s.mu.RLock()
		t := s.tenants[name]
		s.mu.RUnlock()
		if t == nil {
			continue
		}
		fmt.Fprintf(&b, "mdesd_requests_total{tenant=%q} %d\n", name, t.stats.requests.Load())
		fmt.Fprintf(&b, "mdesd_blocks_scheduled_total{tenant=%q} %d\n", name, t.stats.blocks.Load())
		fmt.Fprintf(&b, "mdesd_shed_total{tenant=%q,code=\"429\"} %d\n", name, t.stats.shed429.Load())
		fmt.Fprintf(&b, "mdesd_shed_total{tenant=%q,code=\"503\"} %d\n", name, t.stats.shed503.Load())
		fmt.Fprintf(&b, "mdesd_errors_total{tenant=%q} %d\n", name, t.stats.errors.Load())
		fmt.Fprintf(&b, "mdesd_uploads_total{tenant=%q} %d\n", name, t.stats.uploads.Load())
		fmt.Fprintf(&b, "mdesd_inflight{tenant=%q} %d\n", name, t.gate.inFlight())
		t.mu.Lock()
		nv := len(t.versions)
		t.mu.Unlock()
		fmt.Fprintf(&b, "mdesd_versions{tenant=%q} %d\n", name, nv)
	}
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	b.WriteString("# TYPE mdesd_draining gauge\n")
	fmt.Fprintf(&b, "mdesd_draining %d\n", draining)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// Shutdown drains the daemon core: new requests are shed with 503,
// every version retires, and the call returns when all versions have
// drained or ctx expires. The HTTP listener's own graceful shutdown is
// the Daemon's job; call this after (or without) it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	var all []*version
	for _, t := range tenants {
		all = append(all, t.retireAll()...)
	}
	for _, v := range all {
		select {
		case <-v.drained:
		case <-ctx.Done():
			return fmt.Errorf("server: shutdown: %d versions still draining: %w", stillDraining(all), ctx.Err())
		}
	}
	return nil
}

func stillDraining(all []*version) int {
	n := 0
	for _, v := range all {
		if !v.isDrained() {
			n++
		}
	}
	return n
}

// Daemon is a running mdesd: the Server core bound to a listener.
type Daemon struct {
	// Addr is the bound address (host:port), useful with ":0".
	Addr string
	srv  *Server
	hsrv *http.Server
	ln   net.Listener
}

// Start binds addr and serves the daemon on it in a background
// goroutine until Shutdown/Close.
func Start(addr string, cfg Config) (*Daemon, error) {
	s := New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	hsrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	go func() { _ = hsrv.Serve(ln) }()
	return &Daemon{Addr: ln.Addr().String(), srv: s, hsrv: hsrv, ln: ln}, nil
}

// Server returns the daemon's request-handling core.
func (d *Daemon) Server() *Server { return d.srv }

// Shutdown stops the daemon gracefully: the listener closes (no new
// connections), new requests on kept-alive connections are shed with
// 503, in-flight requests complete, and every description version
// drains — all bounded by ctx.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.srv.draining.Store(true)
	err := d.hsrv.Shutdown(ctx)
	if err != nil {
		// Grace expired: cut stragglers so the port is always freed.
		if cerr := d.hsrv.Close(); cerr != nil && errors.Is(err, context.DeadlineExceeded) {
			err = cerr
		}
	}
	if serr := d.srv.Shutdown(ctx); err == nil {
		err = serr
	}
	return err
}

// Close is Shutdown with a 5-second grace period.
func (d *Daemon) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return d.Shutdown(ctx)
}

func wireCounters(c stats.Counters) mdesclient.Counters {
	return mdesclient.Counters{
		Attempts:       c.Attempts,
		OptionsChecked: c.OptionsChecked,
		ResourceChecks: c.ResourceChecks,
		Conflicts:      c.Conflicts,
		Backtracks:     c.Backtracks,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
