package server

import (
	"strings"
	"testing"
)

// FuzzServerRequest fuzzes the daemon's two request decoders with
// arbitrary bytes. The contract under fuzz is total: decoders never
// panic, every rejection is a *wireError with a stable code, and every
// accepted schedule request converts to scheduler IR without panicking
// (ToBlocks is panic-free by construction on validated input).
func FuzzServerRequest(f *testing.F) {
	f.Add([]byte(`{"source":"machine M { resource R; }","form":"andor","level":"full","activate":true}`))
	f.Add([]byte(`{"source_hash":"0123456789abcdef"}`))
	f.Add([]byte(`{"blocks":[{"ops":[{"opcode":"IALU","dests":[1],"srcs":[2,3],"mem":"load"}]}]}`))
	f.Add([]byte(`{"blocks":[{"ops":[{"opcode":"BR","branch":true,"cascaded":true}]}]}`))
	f.Add([]byte(`{"blocks":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"source":"x","source_hash":"0123456789abcdef"}`))
	f.Add([]byte(`{"blocks":[{"ops":[{"opcode":"` + strings.Repeat("A", 100) + `"}]}]}`))
	f.Add([]byte(`{"blocks":[{"ops":[{"opcode":"X","srcs":[-1]}]}]}`))
	f.Add([]byte(`{"blocks":[{"ops":[{"opcode":"X","mem":"flush"}]}]}`))
	f.Add([]byte(`{"source":"m"} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if up, err := ParseUploadRequest(data); err == nil {
			// Accepted uploads satisfy the documented invariants.
			if (up.Source == "") == (up.SourceHash == "") {
				t.Fatalf("accepted upload violates source xor source_hash: %+v", up)
			}
			if up.Form == "" || up.Level == "" {
				t.Fatalf("accepted upload without defaulted form/level: %+v", up)
			}
		} else if _, ok := err.(*wireError); !ok {
			t.Fatalf("upload rejection is not a wireError: %T %v", err, err)
		}

		if req, err := ParseScheduleRequest(data); err == nil {
			blocks := ToBlocks(req)
			if len(blocks) != len(req.Blocks) {
				t.Fatalf("ToBlocks dropped blocks: %d != %d", len(blocks), len(req.Blocks))
			}
			total := 0
			for _, b := range blocks {
				total += len(b.Ops)
			}
			if total > MaxOpsPerRequest {
				t.Fatalf("accepted request with %d ops over the cap", total)
			}
			// The wire round trip is lossless for validated requests.
			back := FromIR(blocks)
			for bi := range back {
				for oi := range back[bi].Ops {
					if back[bi].Ops[oi].Opcode != req.Blocks[bi].Ops[oi].Opcode {
						t.Fatalf("round trip changed opcode at block %d op %d", bi, oi)
					}
				}
			}
		} else if _, ok := err.(*wireError); !ok {
			t.Fatalf("schedule rejection is not a wireError: %T %v", err, err)
		}
	})
}

// FuzzServerRequestSeedCorpusIsValid pins the seed corpus expectations so
// regressions in the decoders fail fast without the fuzzer.
func TestServerRequestDecoderBasics(t *testing.T) {
	if _, err := ParseUploadRequest([]byte(`{"source":"m"}`)); err != nil {
		t.Fatalf("minimal upload rejected: %v", err)
	}
	up, err := ParseUploadRequest([]byte(`{"source_hash":"00ff00ff00ff00ff"}`))
	if err != nil {
		t.Fatalf("by-hash upload rejected: %v", err)
	}
	if up.Form != "andor" || up.Level != "full" {
		t.Fatalf("defaults not applied: %+v", up)
	}
	for _, bad := range []string{
		`{"source_hash":"XYZ"}`,
		`{"source_hash":"0123456789ABCDEF"}`, // upper case is not canonical
		`{"source":"m","unknown_field":1}`,
		`{"blocks":[{"ops":[]}]}`,
	} {
		if _, err := ParseUploadRequest([]byte(bad)); err == nil {
			if _, err := ParseScheduleRequest([]byte(bad)); err == nil {
				t.Fatalf("decoders accepted %s", bad)
			}
		}
	}
	if _, err := ParseScheduleRequest([]byte(`{"blocks":[{"ops":[{"opcode":"IALU"}]}]}`)); err != nil {
		t.Fatalf("minimal schedule rejected: %v", err)
	}
}
