package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/sdk/mdesclient"
)

// Request-decoder capacity limits. The HMDES analyzer already bounds how
// much memory one description can demand (maxResourceInstances,
// per-tree option caps); these bounds do the same job one layer up, at
// the HTTP boundary, so a hostile request is rejected by arithmetic on
// counts before any allocation proportional to them happens.
const (
	// MaxBlocksPerRequest bounds one schedule request's batch size.
	MaxBlocksPerRequest = 4096
	// MaxOpsPerBlock bounds one block's operation count.
	MaxOpsPerBlock = 16384
	// MaxOpsPerRequest bounds the total operation count of a request.
	MaxOpsPerRequest = 1 << 18
	// MaxOperands bounds one operation's source/destination lists.
	MaxOperands = 16
	// MaxRegister bounds register numbers (the graph builder indexes
	// per-register tables by them).
	MaxRegister = 1 << 20
	// MaxOpcodeLen bounds one opcode string.
	MaxOpcodeLen = 64
)

// wireError is a decoder rejection carrying the structured error code the
// handler should answer with.
type wireError struct {
	code string
	msg  string
}

func (e *wireError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &wireError{code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

// ParseUploadRequest decodes and validates an upload request body. It
// never panics on arbitrary input (FuzzServerRequest's contract): every
// rejection is a *wireError and every acceptance satisfies the
// documented invariants (exactly one of Source/SourceHash, known form
// and level names, well-formed hash).
func ParseUploadRequest(data []byte) (*mdesclient.UploadRequest, error) {
	var req mdesclient.UploadRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("malformed upload request: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after upload request")
	}
	hasSource, hasHash := req.Source != "", req.SourceHash != ""
	if hasSource == hasHash {
		return nil, badRequest("exactly one of source and source_hash must be set")
	}
	if hasHash {
		if len(req.SourceHash) != 16 || strings.Trim(req.SourceHash, "0123456789abcdef") != "" {
			return nil, badRequest("source_hash %q is not a 16-hex-digit content address", req.SourceHash)
		}
	}
	if req.Form == "" {
		req.Form = "andor"
	}
	if req.Level == "" {
		req.Level = "full"
	}
	return &req, nil
}

// ParseScheduleRequest decodes and validates a schedule request body.
// Accepted requests satisfy every decoder limit, so converting them to
// scheduler IR (ToBlocks) is panic-free by construction.
func ParseScheduleRequest(data []byte) (*mdesclient.ScheduleRequest, error) {
	var req mdesclient.ScheduleRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("malformed schedule request: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after schedule request")
	}
	if len(req.Blocks) == 0 {
		return nil, badRequest("schedule request carries no blocks")
	}
	if len(req.Blocks) > MaxBlocksPerRequest {
		return nil, badRequest("%d blocks exceed the per-request cap of %d", len(req.Blocks), MaxBlocksPerRequest)
	}
	totalOps := 0
	for bi := range req.Blocks {
		ops := req.Blocks[bi].Ops
		if len(ops) == 0 {
			return nil, badRequest("block %d is empty", bi)
		}
		if len(ops) > MaxOpsPerBlock {
			return nil, badRequest("block %d: %d ops exceed the per-block cap of %d", bi, len(ops), MaxOpsPerBlock)
		}
		totalOps += len(ops)
		if totalOps > MaxOpsPerRequest {
			return nil, badRequest("request exceeds the total-operation cap of %d", MaxOpsPerRequest)
		}
		for oi := range ops {
			op := &ops[oi]
			if op.Opcode == "" || len(op.Opcode) > MaxOpcodeLen {
				return nil, badRequest("block %d op %d: opcode length %d outside [1,%d]", bi, oi, len(op.Opcode), MaxOpcodeLen)
			}
			if len(op.Srcs) > MaxOperands || len(op.Dests) > MaxOperands {
				return nil, badRequest("block %d op %d: operand count exceeds %d", bi, oi, MaxOperands)
			}
			for _, list := range [2][]int{op.Srcs, op.Dests} {
				for _, r := range list {
					if r < 0 || r >= MaxRegister {
						return nil, badRequest("block %d op %d: register %d outside [0,%d)", bi, oi, r, MaxRegister)
					}
				}
			}
			switch op.Mem {
			case "", "load", "store":
			default:
				return nil, badRequest("block %d op %d: unknown mem kind %q", bi, oi, op.Mem)
			}
		}
	}
	return &req, nil
}

// ToBlocks converts a validated schedule request to scheduler IR.
func ToBlocks(req *mdesclient.ScheduleRequest) []*ir.Block {
	blocks := make([]*ir.Block, len(req.Blocks))
	for bi := range req.Blocks {
		b := &ir.Block{Ops: make([]*ir.Operation, len(req.Blocks[bi].Ops))}
		for oi := range req.Blocks[bi].Ops {
			w := &req.Blocks[bi].Ops[oi]
			op := &ir.Operation{
				Opcode:   w.Opcode,
				Branch:   w.Branch,
				Cascaded: w.Cascaded,
			}
			if len(w.Dests) > 0 {
				op.Dests = append([]int(nil), w.Dests...)
			}
			if len(w.Srcs) > 0 {
				op.Srcs = append([]int(nil), w.Srcs...)
			}
			switch w.Mem {
			case "load":
				op.Mem = ir.MemLoad
			case "store":
				op.Mem = ir.MemStore
			}
			b.Ops[oi] = op
		}
		b.Renumber()
		blocks[bi] = b
	}
	return blocks
}

// FromIR converts scheduler IR to wire blocks (the soak client's path).
func FromIR(blocks []*ir.Block) []mdesclient.Block {
	out := make([]mdesclient.Block, len(blocks))
	for bi, b := range blocks {
		wb := mdesclient.Block{Ops: make([]mdesclient.Op, len(b.Ops))}
		for oi, op := range b.Ops {
			w := mdesclient.Op{
				Opcode:   op.Opcode,
				Dests:    op.Dests,
				Srcs:     op.Srcs,
				Branch:   op.Branch,
				Cascaded: op.Cascaded,
			}
			switch op.Mem {
			case ir.MemLoad:
				w.Mem = "load"
			case ir.MemStore:
				w.Mem = "store"
			}
			wb.Ops[oi] = w
		}
		out[bi] = wb
	}
	return out
}

// writeError answers with the daemon's structured JSON error shape.
func writeError(w http.ResponseWriter, status int, code, msg string, diags []mdesclient.Diagnostic) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(mdesclient.ErrorBody{Code: code, Error: msg, Diagnostics: diags})
}

// diagnosticsOf extracts positioned analyzer/parser errors for the
// structured "bad_source" response. The hmdes pipeline reports exactly
// one positioned error per failed load.
func diagnosticsOf(err error) []mdesclient.Diagnostic {
	var herr *hmdes.Error
	if errors.As(err, &herr) {
		return []mdesclient.Diagnostic{{File: herr.File, Line: herr.Line, Col: herr.Col, Msg: herr.Msg}}
	}
	return nil
}
