package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mdes"
	"mdes/internal/machines"
	"mdes/sdk/mdesclient"
)

// TestHotSwapNeverMixesEngines hammers a tenant with concurrent schedule
// requests while the description is hot-swapped underneath them, and
// proves the swap contract through the fingerprint stamped in every
// response:
//
//   - every response carries exactly the old or the new fingerprint,
//     never anything else (one request, one engine — no mixing);
//   - every request issued after the swap completes carries the new
//     fingerprint (the swap is atomic and immediate for new work);
//   - schedules never diverge from the local reference at either level
//     (the optimization pipeline's semantics-preservation invariant,
//     which is what makes a hot-swap to a different level safe at all);
//   - the outgoing version drains: retired, zero in-flight, drained.
func TestHotSwapNeverMixesEngines(t *testing.T) {
	_, _, c := newTestDaemon(t, Config{MaxInFlight: 16, QueueDepth: 64, RequestTimeout: 30 * time.Second})
	ctx := context.Background()
	source := testSource(t, machines.PA7100)

	// v1 at full optimization, v2 at none: different compiled artifacts
	// (different fingerprints) with byte-identical schedules.
	up1, err := c.Upload(ctx, "swap", mdesclient.UploadRequest{Source: source, Level: "full", Activate: true})
	if err != nil {
		t.Fatalf("upload v1: %v", err)
	}
	blocks := testBlocks(t, machines.PA7100, 150, 11)
	wire := FromIR(blocks)
	_, wantIssues := localReference(t, source, mdes.LevelFull, blocks)

	// Each worker records what it saw; validation happens after the load
	// stops, against both published fingerprints.
	type obs struct {
		fingerprint string
		postSwap    bool // issued after the swap was known complete
	}
	const workers = 8
	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		swapped = make(chan struct{}) // closed once the swap response arrived
		mu      sync.Mutex
		seen    []obs
		errs    []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Record whether the swap had completed BEFORE issuing, so
				// the post-swap assertion is sound.
				postSwap := false
				select {
				case <-swapped:
					postSwap = true
				default:
				}
				resp, err := c.Schedule(ctx, "swap", wire)
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("schedule: %v", err))
					mu.Unlock()
					return
				}
				diverged := ""
				for i, r := range resp.Results {
					if fmt.Sprint(r.Issue) != fmt.Sprint(wantIssues[i]) {
						diverged = fmt.Sprintf("block %d diverged under fp %s", i, resp.Fingerprint)
						break
					}
				}
				mu.Lock()
				seen = append(seen, obs{resp.Fingerprint, postSwap})
				if diverged != "" {
					errs = append(errs, diverged)
				}
				mu.Unlock()
				if diverged != "" {
					return
				}
			}
		}()
	}

	// Let the load establish itself, then swap.
	time.Sleep(50 * time.Millisecond)
	up2, err := c.Upload(ctx, "swap", mdesclient.UploadRequest{Source: source, Level: "none", Activate: true})
	if err != nil {
		t.Fatalf("upload v2: %v", err)
	}
	if up2.Fingerprint == up1.Fingerprint {
		t.Fatalf("levels full and none share fingerprint %s; swap test is vacuous", up2.Fingerprint)
	}
	close(swapped)

	// Keep load running across the drain window, then stop.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	for _, e := range errs {
		t.Error(e)
	}
	var sawOld, sawNew, postSwapNew int
	for _, o := range seen {
		switch o.fingerprint {
		case up1.Fingerprint:
			sawOld++
			if o.postSwap {
				t.Errorf("request issued after swap served by old engine %s", o.fingerprint)
			}
		case up2.Fingerprint:
			sawNew++
			if o.postSwap {
				postSwapNew++
			}
		default:
			t.Errorf("mixed-engine fingerprint %s (old %s new %s)", o.fingerprint, up1.Fingerprint, up2.Fingerprint)
		}
	}
	if sawNew == 0 {
		t.Fatalf("no request observed the new engine (old=%d)", sawOld)
	}
	if postSwapNew == 0 {
		t.Fatalf("no post-swap request completed (old=%d new=%d)", sawOld, sawNew)
	}

	// The outgoing version must drain to zero in-flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		vs, err := c.Versions(ctx, "swap")
		if err != nil {
			t.Fatalf("versions: %v", err)
		}
		var old *mdesclient.VersionInfo
		for i := range vs.Versions {
			if vs.Versions[i].Fingerprint == up1.Fingerprint {
				old = &vs.Versions[i]
			}
		}
		if old == nil {
			t.Fatalf("old version vanished from the listing")
		}
		if old.Active {
			t.Fatalf("old version still active after swap")
		}
		if old.Retired && old.Drained && old.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old version never drained: %+v", *old)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSwapBackRebuildsRetiredVersion proves a tenant can swap back to a
// previously retired key: the registry rebuilds it instead of reviving
// the drained version.
func TestSwapBackRebuildsRetiredVersion(t *testing.T) {
	_, _, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	source := testSource(t, machines.K5)

	up1, err := c.Upload(ctx, "flip", mdesclient.UploadRequest{Source: source, Level: "full", Activate: true})
	if err != nil {
		t.Fatalf("upload v1: %v", err)
	}
	if _, err := c.Upload(ctx, "flip", mdesclient.UploadRequest{Source: source, Level: "none", Activate: true}); err != nil {
		t.Fatalf("upload v2: %v", err)
	}
	up3, err := c.Upload(ctx, "flip", mdesclient.UploadRequest{Source: source, Level: "full", Activate: true})
	if err != nil {
		t.Fatalf("upload v3 (swap back): %v", err)
	}
	if up3.Fingerprint != up1.Fingerprint {
		t.Fatalf("swap-back fingerprint %s != original %s", up3.Fingerprint, up1.Fingerprint)
	}
	if _, err := c.Schedule(ctx, "flip", FromIR(testBlocks(t, machines.K5, 40, 9))); err != nil {
		t.Fatalf("schedule on swapped-back version: %v", err)
	}
}
