package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdes/internal/machines"
	"mdes/sdk/mdesclient"
)

// Fault-injection suite: every failure mode must degrade to an error
// response (or a dropped connection for protocol-level abuse) and the
// daemon must keep serving afterwards — never a wedged pool, never a
// stale engine.

// startFaultDaemon starts a real daemon with tight HTTP timeouts so the
// protocol-level faults resolve quickly.
func startFaultDaemon(t *testing.T) (*Daemon, *mdesclient.Client) {
	t.Helper()
	d, err := Start("127.0.0.1:0", Config{
		ReadHeaderTimeout: 300 * time.Millisecond,
		ReadTimeout:       700 * time.Millisecond,
		WriteTimeout:      2 * time.Second,
		IdleTimeout:       time.Second,
		MaxBodyBytes:      1 << 20,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d, mdesclient.New("http://"+d.Addr, mdesclient.WithRetry(2, 5*time.Millisecond))
}

// assertStillServing proves the daemon serves a full round trip: health,
// upload, schedule.
func assertStillServing(t *testing.T, c *mdesclient.Client, tenant string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("daemon unhealthy after fault: %v", err)
	}
	if _, err := c.Upload(ctx, tenant, mdesclient.UploadRequest{Source: testSource(t, machines.Pentium), Activate: true}); err != nil {
		t.Fatalf("upload after fault: %v", err)
	}
	if _, err := c.Schedule(ctx, tenant, FromIR(testBlocks(t, machines.Pentium, 30, 4))); err != nil {
		t.Fatalf("schedule after fault: %v", err)
	}
}

func TestFaultSlowLorisBody(t *testing.T) {
	d, c := startFaultDaemon(t)

	// Open a raw connection and dribble a request body one byte at a
	// time, slower than ReadTimeout allows. The server must cut the
	// connection instead of parking a handler on it forever.
	conn, err := net.Dial("tcp", d.Addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/tenants/loris/descriptions HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n", d.Addr)
	deadline := time.Now().Add(5 * time.Second)
	var wrote int
	for time.Now().Before(deadline) {
		_ = conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
		if _, err := conn.Write([]byte("{")); err != nil {
			break // server cut us off — the desired outcome
		}
		wrote++
		time.Sleep(100 * time.Millisecond)
	}
	if time.Now().After(deadline) {
		t.Fatalf("server accepted a slow-loris body for 5s (%d bytes dribbled)", wrote)
	}
	assertStillServing(t, c, "after-loris")
}

func TestFaultSlowLorisHeaders(t *testing.T) {
	d, c := startFaultDaemon(t)
	conn, err := net.Dial("tcp", d.Addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Never finish the request line; ReadHeaderTimeout must cut us.
	fmt.Fprintf(conn, "POST /v1/te")
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		// Any response (or EOF) counts as the server acting; a clean read
		// of a response byte is fine too.
		_ = err
	}
	assertStillServing(t, c, "after-header-loris")
}

func TestFaultMidStreamDisconnect(t *testing.T) {
	d, c := startFaultDaemon(t)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "cutoff", mdesclient.UploadRequest{Source: testSource(t, machines.PA7100), Activate: true}); err != nil {
		t.Fatalf("upload: %v", err)
	}

	// Announce a large schedule body, send half of it, and vanish.
	payload, _ := json.Marshal(mdesclient.ScheduleRequest{Blocks: FromIR(testBlocks(t, machines.PA7100, 400, 6))})
	conn, err := net.Dial("tcp", d.Addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fmt.Fprintf(conn, "POST /v1/tenants/cutoff/schedule HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", d.Addr, len(payload))
	_, _ = conn.Write(payload[:len(payload)/2])
	_ = conn.Close()

	// The admission slot and version reference taken for that request
	// must come back: a full round trip proves nothing leaked.
	assertStillServing(t, c, "cutoff")

	// And the gate is fully released: every slot is available again.
	srv := d.Server()
	srv.mu.RLock()
	tn := srv.tenants["cutoff"]
	srv.mu.RUnlock()
	waitUntil(t, time.Second, func() bool { return tn.gate.inFlight() == 0 })
}

func TestFaultOversizedUpload(t *testing.T) {
	_, _, c := newTestDaemon(t, Config{MaxBodyBytes: 64 << 10})
	ctx := context.Background()
	_, err := c.Upload(ctx, "big", mdesclient.UploadRequest{Source: strings.Repeat("x", 80<<10)})
	assertAPIError(t, err, http.StatusRequestEntityTooLarge, "too_large")
	// Daemon keeps serving.
	if _, err := c.Upload(ctx, "big", mdesclient.UploadRequest{Source: testSource(t, machines.K5), Activate: true}); err != nil {
		t.Fatalf("upload after oversized: %v", err)
	}
}

func TestFaultCorruptUploadVariants(t *testing.T) {
	_, ts, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	good := testSource(t, machines.SuperSPARC)

	cases := []struct {
		name   string
		mangle func(string) string
	}{
		{"truncated", func(s string) string { return s[:len(s)/3] }},
		{"keyword-typo", func(s string) string { return strings.ReplaceAll(s, "machine", "machnie") }},
		{"unbalanced", func(s string) string { return strings.Replace(s, "}", "", 1) }},
		{"binary-garbage", func(s string) string { return "\x00\x01\x02\xff" + s }},
	}
	for _, tc := range cases {
		_, err := c.Upload(ctx, "corrupt", mdesclient.UploadRequest{Source: tc.mangle(good)})
		if err == nil {
			t.Fatalf("%s: corrupt source accepted", tc.name)
		}
		apiErr, ok := err.(*mdesclient.APIError)
		if !ok {
			t.Fatalf("%s: unstructured error %T: %v", tc.name, err, err)
		}
		if apiErr.Status != http.StatusBadRequest {
			t.Fatalf("%s: got %d, want 400", tc.name, apiErr.Status)
		}
		if apiErr.Code != "bad_source" {
			t.Fatalf("%s: got code %s, want bad_source", tc.name, apiErr.Code)
		}
		if len(apiErr.Diagnostics) == 0 {
			t.Fatalf("%s: no positioned diagnostics", tc.name)
		}
	}

	// Non-JSON upload body.
	resp, err := http.Post(ts.URL+"/v1/tenants/corrupt/descriptions", "application/json", strings.NewReader("not json at all"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	body := decodeErrorBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Code != "bad_request" {
		t.Fatalf("non-JSON body: got %d/%s", resp.StatusCode, body.Code)
	}

	// The tenant still works.
	if _, err := c.Upload(ctx, "corrupt", mdesclient.UploadRequest{Source: good, Activate: true}); err != nil {
		t.Fatalf("upload after corrupt attempts: %v", err)
	}
}

// TestFaultUnusableCacheDir points the daemon at a cache path that is a
// regular file, so every cache open fails. Uploads must degrade to the
// uncached pipeline (slower, still correct); by-hash references must
// fail with a structured 404, not an internal error.
func TestFaultUnusableCacheDir(t *testing.T) {
	dir := t.TempDir()
	notADir := filepath.Join(dir, "cache")
	if err := os.WriteFile(notADir, []byte("occupied"), 0o644); err != nil {
		t.Fatalf("plant file: %v", err)
	}
	_, _, c := newTestDaemon(t, Config{CacheDir: notADir})
	ctx := context.Background()

	// Upload with source: cache Put impossible, compile must still work.
	up, err := c.Upload(ctx, "nocache", mdesclient.UploadRequest{Source: testSource(t, machines.PA7100), Activate: true})
	if err != nil {
		t.Fatalf("upload with broken cache: %v", err)
	}
	if up.Cached {
		t.Fatalf("upload claims cache hit through a regular file")
	}
	if _, err := c.Schedule(ctx, "nocache", FromIR(testBlocks(t, machines.PA7100, 30, 8))); err != nil {
		t.Fatalf("schedule with broken cache: %v", err)
	}

	// A by-hash reference from a tenant without a live version under that
	// key cannot be served without a cache: structured 404. (The same
	// reference on tenant "nocache" would be answered from its registry.)
	_, err = c.Upload(ctx, "other-tenant", mdesclient.UploadRequest{SourceHash: up.SourceHash})
	assertAPIError(t, err, http.StatusNotFound, "not_found")
}

// TestFaultCacheDirDisappearsMidFlight uploads through a working cache,
// deletes the cache directory, and proves both existing engines and new
// uploads keep working.
func TestFaultCacheDirDisappearsMidFlight(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	_, _, c := newTestDaemon(t, Config{CacheDir: cacheDir})
	ctx := context.Background()

	up, err := c.Upload(ctx, "vanish", mdesclient.UploadRequest{Source: testSource(t, machines.K5), Activate: true})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if err := os.RemoveAll(cacheDir); err != nil {
		t.Fatalf("remove cache: %v", err)
	}
	// The frozen engine holds its own mapping; scheduling keeps working.
	if _, err := c.Schedule(ctx, "vanish", FromIR(testBlocks(t, machines.K5, 30, 2))); err != nil {
		t.Fatalf("schedule after cache removal: %v", err)
	}
	// New uploads recreate or bypass the cache, either way they serve.
	if _, err := c.Upload(ctx, "vanish", mdesclient.UploadRequest{Source: testSource(t, machines.Pentium), Activate: true}); err != nil {
		t.Fatalf("upload after cache removal: %v", err)
	}
	_ = up
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %s", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
