package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"mdes"
	"mdes/internal/cli"
	"mdes/internal/descache"
	"mdes/internal/obs"
	"mdes/sdk/mdesclient"
)

// version is one registered compiled description: a frozen engine (whose
// resctx pool recycles per-goroutine scheduling contexts), its
// observability surfaces, and the refcount that makes hot-swap safe.
//
// Every schedule request acquires the tenant's active version once,
// schedules its whole batch against that version's engine, and releases
// it — so one response can never mix engines, and the response's
// fingerprint names exactly the description that produced it. When a
// version is swapped out it is retired: in-flight requests finish on it,
// and when the last reference drops the version is drained (its pool
// quiescent, observable in the version listing).
type version struct {
	keyID       string
	sourceHash  string
	fingerprint string
	machine     string
	cached      bool

	eng     *mdes.Engine
	metrics *mdes.Metrics
	flight  *mdes.FlightRecorder
	profile *mdes.ConflictProfile
	obsMux  http.Handler

	refs      atomic.Int64
	retired   atomic.Bool
	drainOnce sync.Once
	drained   chan struct{}
	blocks    atomic.Int64
}

// release drops one reference; the last release of a retired version
// marks it drained.
func (v *version) release() {
	if v.refs.Add(-1) == 0 && v.retired.Load() {
		v.drainOnce.Do(func() { close(v.drained) })
	}
}

// retire marks the version swapped-out. If no request holds it the drain
// completes immediately; otherwise the last release completes it.
func (v *version) retire() {
	v.retired.Store(true)
	if v.refs.Load() == 0 {
		v.drainOnce.Do(func() { close(v.drained) })
	}
}

// isDrained reports whether the version has retired and quiesced.
func (v *version) isDrained() bool {
	select {
	case <-v.drained:
		return true
	default:
		return false
	}
}

// info renders the version for the listing endpoint.
func (v *version) info(active bool) mdesclient.VersionInfo {
	return mdesclient.VersionInfo{
		Key:         v.keyID,
		Fingerprint: v.fingerprint,
		Machine:     v.machine,
		Active:      active,
		Retired:     v.retired.Load(),
		Drained:     v.isDrained(),
		InFlight:    v.refs.Load(),
	}
}

// tenant is one isolated client namespace: its own description versions,
// active-version pointer, admission gate, and stats.
type tenant struct {
	name string

	// mu serializes uploads and swaps; the schedule hot path never takes
	// it (active is an atomic pointer, admission is channel-based).
	mu       sync.Mutex
	versions map[string]*version
	order    []string // registration order, for stable listings

	active atomic.Pointer[version]
	gate   *gate
	stats  tenantStats
}

// tenantStats are the daemon-level per-tenant counters exported at
// /metrics with tenant labels.
type tenantStats struct {
	requests atomic.Int64 // schedule requests received
	blocks   atomic.Int64 // blocks scheduled
	shed429  atomic.Int64 // requests shed by queue overflow
	shed503  atomic.Int64 // requests shed by admission timeout / draining
	errors   atomic.Int64 // requests answered with a non-shed error
	uploads  atomic.Int64 // description uploads
}

// acquire takes a reference on the tenant's active version, retrying
// across a concurrent hot-swap so it never returns a retired version.
func (t *tenant) acquire() *version {
	for {
		v := t.active.Load()
		if v == nil {
			return nil
		}
		v.refs.Add(1)
		if t.active.Load() == v {
			return v
		}
		// Lost a race with a swap: the reference taken above may be on
		// the outgoing version. Drop it and retry on the new active.
		v.release()
	}
}

// upload registers (and optionally activates) a version for the request,
// reusing an existing live version under the same key.
func (t *tenant) upload(s *Server, req *mdesclient.UploadRequest) (*mdesclient.UploadResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.uploads.Add(1)

	keyID := s.keyFor(req).ID()
	v := t.versions[keyID]
	if v == nil || v.retired.Load() {
		nv, err := s.buildVersion(req)
		if err != nil {
			return nil, err
		}
		if _, exists := t.versions[keyID]; !exists {
			t.order = append(t.order, keyID)
		}
		t.versions[keyID] = nv
		v = nv
	}
	if req.Activate {
		old := t.active.Swap(v)
		if old != nil && old != v {
			old.retire()
		}
	}
	return &mdesclient.UploadResponse{
		Key:         v.keyID,
		SourceHash:  v.sourceHash,
		Fingerprint: v.fingerprint,
		Machine:     v.machine,
		Active:      t.active.Load() == v,
		Cached:      v.cached,
	}, nil
}

// list renders the tenant's versions in registration order.
func (t *tenant) list() mdesclient.ListResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := t.active.Load()
	resp := mdesclient.ListResponse{Tenant: t.name, Versions: make([]mdesclient.VersionInfo, 0, len(t.order))}
	for _, id := range t.order {
		if v := t.versions[id]; v != nil {
			resp.Versions = append(resp.Versions, v.info(v == active))
		}
	}
	return resp
}

// retireAll retires every version (shutdown path) and returns those to
// wait on.
func (t *tenant) retireAll() []*version {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active.Store(nil)
	out := make([]*version, 0, len(t.versions))
	for _, v := range t.versions {
		v.retire()
		out = append(out, v)
	}
	return out
}

// keyFor derives the registry/cache key of an upload request. Form and
// level defaults are already applied by ParseUploadRequest.
func (s *Server) keyFor(req *mdesclient.UploadRequest) descache.Key {
	hash := req.SourceHash
	if req.Source != "" {
		hash = descache.HashSource(req.Source)
	}
	return descache.Key{SourceHash: hash, Form: canonForm(req.Form), Level: canonLevel(req.Level)}
}

func canonForm(s string) string {
	if f, err := cli.ParseForm(s); err == nil && f == mdes.FormOR {
		return "or"
	}
	return "andor"
}

func canonLevel(s string) string {
	if l, err := cli.ParseLevel(s); err == nil {
		return l.String()
	}
	return "full"
}

// buildVersion compiles (or cache-loads) the request's description and
// wraps it in a frozen engine with per-version observability: a metrics
// registry, an always-on flight recorder, and a conflict-attribution
// profile, all mounted under the tenant's /obs/ subtree.
func (s *Server) buildVersion(req *mdesclient.UploadRequest) (*version, error) {
	var (
		compiled *mdes.Compiled
		cached   bool
		err      error
	)
	form, ferr := cli.ParseForm(req.Form)
	if ferr != nil {
		return nil, badRequest("%v", ferr)
	}
	level, lerr := cli.ParseLevel(req.Level)
	if lerr != nil {
		return nil, badRequest("%v", lerr)
	}
	key := s.keyFor(req)

	if req.Source == "" {
		// Reference an already-cached arena by content address: never
		// compiles, so a miss (or an unusable cache) is a 404.
		compiled, err = s.openCached(key)
		if err != nil {
			return nil, err
		}
		cached = true
	} else {
		compiled, cached, err = s.loadOrCompile(req.Source, form, level)
		if err != nil {
			return nil, err
		}
	}

	fingerprint, err := compiled.Fingerprint()
	if err != nil {
		return nil, &wireError{code: "internal", msg: fmt.Sprintf("fingerprint: %v", err)}
	}
	metrics := mdes.NewMetrics(compiled)
	flightRec := mdes.NewFlightRecorder(mdes.FlightConfig{})
	prof := mdes.NewConflictProfile(compiled)
	eng, err := mdes.NewEngine(compiled,
		mdes.WithChecker(s.cfg.Checker),
		mdes.WithMetrics(metrics),
		mdes.WithFlight(flightRec),
		mdes.WithProfile(prof),
	)
	if err != nil {
		return nil, badRequest("engine: %v", err)
	}
	v := &version{
		keyID:       key.ID(),
		sourceHash:  key.SourceHash,
		fingerprint: fingerprint,
		machine:     compiled.MachineName,
		cached:      cached,
		eng:         eng,
		metrics:     metrics,
		flight:      flightRec,
		profile:     prof,
		drained:     make(chan struct{}),
	}
	v.obsMux = obs.Handler(metrics, obs.WithFlightExporter(flightRec), obs.WithProfileExporter(prof))
	return v, nil
}

// loadOrCompile runs the upload through the compiled-description cache,
// degrading to an uncached in-process pipeline when the cache directory
// is unusable: a broken cache must cost speed, never availability.
func (s *Server) loadOrCompile(source string, form mdes.Form, level mdes.Level) (*mdes.Compiled, bool, error) {
	if s.cfg.CacheDir != "" {
		var opts []mdes.CacheOption
		if s.cfg.CacheMax > 0 {
			opts = append(opts, mdes.WithCacheLimit(s.cfg.CacheMax))
		}
		c, err := mdes.LoadCached("upload.mdes", source, form, level, s.cfg.CacheDir, opts...)
		if err == nil {
			return c, c.Frozen(), nil
		}
		if diags := diagnosticsOf(err); diags != nil {
			return nil, false, &sourceError{err: err, diags: diags}
		}
		// Cache infrastructure failure (directory unusable, etc.):
		// fall through to the uncached pipeline below.
	}
	machine, err := mdes.Load("upload.mdes", source)
	if err != nil {
		if diags := diagnosticsOf(err); diags != nil {
			return nil, false, &sourceError{err: err, diags: diags}
		}
		return nil, false, badRequest("load: %v", err)
	}
	c := mdes.Compile(machine, form)
	mdes.Optimize(c, level)
	return c, false, nil
}

// openCached opens a cache entry by content address.
func (s *Server) openCached(key descache.Key) (*mdes.Compiled, error) {
	if s.cfg.CacheDir == "" {
		return nil, &wireError{code: "not_found", msg: "daemon runs without a description cache; upload the source instead"}
	}
	store, err := descache.Open(s.cfg.CacheDir, 0)
	if err != nil {
		return nil, &wireError{code: "not_found", msg: fmt.Sprintf("description cache unavailable: %v", err)}
	}
	e, err := store.Get(key)
	if err != nil {
		if errors.Is(err, descache.ErrMiss) {
			return nil, &wireError{code: "not_found", msg: fmt.Sprintf("no cached description under %s", key.ID())}
		}
		return nil, &wireError{code: "not_found", msg: fmt.Sprintf("cached entry %s unusable: %v", key.ID(), err)}
	}
	return e.Arena.FrozenMDES(), nil
}

// sourceError is a positioned HMDES rejection with its structured
// diagnostics.
type sourceError struct {
	err   error
	diags []mdesclient.Diagnostic
}

func (e *sourceError) Error() string { return e.err.Error() }
