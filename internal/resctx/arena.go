package resctx

// Arena is a stack-style scratch allocator for per-block scheduler state.
// Ints and Bools carve zeroed slices off growing backing arrays; Release
// (or Context.Reset) rewinds the whole arena at once. Slices carved
// before a growth keep their old backing array alive and stay valid, so
// a caller may hold several live slices across further carves; nothing
// carved survives a Reset.
//
// The flat scheduling path carves all of a block's scratch (ready flags,
// predecessor counts, earliest-start times, priority order) from its
// context's arena, so steady-state scheduling performs no per-block
// scratch allocation — the arena-backed lifetime the probe-plan backend's
// valid-until-Reset selections share.
type Arena struct {
	ints  []int
	bools []bool
	iOff  int
	bOff  int
}

// Reset rewinds the arena, invalidating every carved slice and retaining
// storage.
func (a *Arena) Reset() {
	a.iOff, a.bOff = 0, 0
}

// Ints carves a zeroed []int of length n. The full slice expression pins
// the slice's capacity so appends by the caller can never overlap a later
// carve.
func (a *Arena) Ints(n int) []int {
	if a.iOff+n > len(a.ints) {
		grow := len(a.ints)
		if grow < a.iOff+n {
			grow = a.iOff + n
		}
		fresh := make([]int, grow*2)
		// Old carves keep the old backing; only unconsumed capacity moves.
		a.ints = fresh
		a.iOff = 0
	}
	s := a.ints[a.iOff : a.iOff+n : a.iOff+n]
	for i := range s {
		s[i] = 0
	}
	a.iOff += n
	return s
}

// Bools carves a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool {
	if a.bOff+n > len(a.bools) {
		grow := len(a.bools)
		if grow < a.bOff+n {
			grow = a.bOff + n
		}
		fresh := make([]bool, grow*2)
		a.bools = fresh
		a.bOff = 0
	}
	s := a.bools[a.bOff : a.bOff+n : a.bOff+n]
	for i := range s {
		s[i] = false
	}
	a.bOff += n
	return s
}
