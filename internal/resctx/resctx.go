// Package resctx provides the session layer between one immutable compiled
// machine description and its many concurrent consumers.
//
// The compiled lowlevel.MDES is compile-once, validate-once data: after
// Freeze it is never mutated, so any number of goroutines may share one
// copy (the paper's premise is that one description serves a compiler's
// hottest inner loop; in a long-running service the same artifact must
// serve many inner loops at once). All per-client mutable state — the
// resource-usage map, the instrumentation counters, and the selection
// scratch buffers — lives in a Context instead. Consumers (the list
// scheduler, the query interface, the modulo scheduler) borrow a Context,
// run against the shared MDES, and return it.
//
// A Pool recycles Contexts via sync.Pool and aggregates the counters of
// every returned Context, giving a service both allocation-free steady
// state and global instrumentation totals without any per-check
// synchronization: counters are accumulated locally in the borrowed
// Context and folded into the pool's atomic totals only on Put.
package resctx

import (
	"sync"
	"sync/atomic"

	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// Context is the per-client mutable state for scheduling and querying
// against one shared compiled MDES. A Context must not be used from more
// than one goroutine at a time; borrow one per goroutine instead.
type Context struct {
	// RU is the resource-usage map all reservation checks run against.
	RU *rumap.Map
	// Counters accumulates the attempts / options checked / resource
	// checks performed through this context since it was borrowed.
	Counters stats.Counters
	// Slots is a reusable (resource, cycle) buffer for reservation
	// snapshots (rumap.Map.AppendReservedSlots).
	Slots [][2]int
	// Sels is a reusable selection scratch for multi-reserve probes.
	Sels []rumap.Selection

	pool *Pool
}

// New returns a standalone (unpooled) Context for a machine with numRes
// resources. Release on a standalone Context is a no-op, so single-client
// code can treat pooled and unpooled Contexts uniformly.
func New(numRes int) *Context {
	return &Context{RU: rumap.New(numRes)}
}

// Reset clears the reservation map and counters, retaining all storage.
func (c *Context) Reset() {
	c.RU.Reset()
	c.Counters = stats.Counters{}
	c.Slots = c.Slots[:0]
	c.Sels = c.Sels[:0]
}

// Release returns the Context to the Pool it was borrowed from, folding
// its counters into the pool totals. Releasing a standalone Context is a
// no-op. The Context must not be used after Release.
func (c *Context) Release() {
	if c.pool != nil {
		c.pool.Put(c)
	}
}

// Pool recycles Contexts for one compiled MDES and aggregates the
// instrumentation of every Context returned to it.
type Pool struct {
	numRes int
	p      sync.Pool

	attempts atomic.Int64
	options  atomic.Int64
	checks   atomic.Int64
}

// NewPool returns a Context pool for a machine with numRes resources.
func NewPool(numRes int) *Pool {
	pl := &Pool{numRes: numRes}
	pl.p.New = func() any {
		return &Context{RU: rumap.New(pl.numRes), pool: pl}
	}
	return pl
}

// Get borrows a clean Context. The caller must return it with Put (or
// Context.Release) when done.
func (p *Pool) Get() *Context {
	return p.p.Get().(*Context)
}

// Put folds the Context's counters into the pool totals, resets it, and
// makes it available for reuse.
func (p *Pool) Put(c *Context) {
	p.attempts.Add(c.Counters.Attempts)
	p.options.Add(c.Counters.OptionsChecked)
	p.checks.Add(c.Counters.ResourceChecks)
	c.Reset()
	p.p.Put(c)
}

// Totals returns the aggregated counters of every Context returned to the
// pool so far. Contexts currently borrowed are not included until Put.
func (p *Pool) Totals() stats.Counters {
	return stats.Counters{
		Attempts:       p.attempts.Load(),
		OptionsChecked: p.options.Load(),
		ResourceChecks: p.checks.Load(),
	}
}
