// Package resctx provides the session layer between one immutable compiled
// machine description and its many concurrent consumers.
//
// The compiled lowlevel.MDES is compile-once, validate-once data: after
// Freeze it is never mutated, so any number of goroutines may share one
// copy (the paper's premise is that one description serves a compiler's
// hottest inner loop; in a long-running service the same artifact must
// serve many inner loops at once). All per-client mutable state — the
// resource-usage map, the instrumentation counters, the observability
// buffer, and the selection scratch buffers — lives in a Context instead.
// Consumers (the list scheduler, the query interface, the modulo
// scheduler) borrow a Context, run against the shared MDES, and return it.
//
// A Pool recycles Contexts via sync.Pool and aggregates the counters of
// every returned Context, giving a service both allocation-free steady
// state and global instrumentation totals without any per-check
// synchronization: counters and metrics are accumulated locally in the
// borrowed Context and folded into the pool's atomic totals (and, when
// configured, into an obs.Registry) exactly once, on Put. Put and
// Context.Release are idempotent, so a double release can neither
// double-count a context's counters nor hand the same context to two
// borrowers.
package resctx

import (
	"sync"
	"sync/atomic"

	"mdes/internal/obs"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// Context is the per-client mutable state for scheduling and querying
// against one shared compiled MDES. A Context must not be used from more
// than one goroutine at a time; borrow one per goroutine instead.
type Context struct {
	// RU is the resource-usage map all reservation checks run against.
	RU *rumap.Map
	// Counters accumulates the attempts / options checked / resource
	// checks performed through this context since it was borrowed.
	Counters stats.Counters
	// Obs, when non-nil, is the observability buffer the schedulers bump
	// on the hot path (per-phase, per-class, per-resource metrics); it is
	// merged into the pool's obs.Registry on release. Nil when the pool
	// has no registry (observability disabled) and on standalone
	// contexts.
	Obs *obs.Local
	// Slots is a reusable (resource, cycle) buffer for reservation
	// snapshots (rumap.Map.AppendReservedSlots).
	Slots [][2]int
	// Sels is a reusable selection scratch for multi-reserve probes.
	Sels []rumap.Selection

	pool *Pool
	// released guards the release path: folding a context's counters
	// into the pool totals must happen at most once per borrow (see
	// Pool.Put).
	released bool
}

// New returns a standalone (unpooled) Context for a machine with numRes
// resources. Release on a standalone Context is a no-op, so single-client
// code can treat pooled and unpooled Contexts uniformly.
func New(numRes int) *Context {
	return &Context{RU: rumap.New(numRes)}
}

// Reset clears the reservation map, counters, and observability buffer,
// retaining all storage.
func (c *Context) Reset() {
	c.RU.Reset()
	c.Counters = stats.Counters{}
	if c.Obs != nil {
		c.Obs.Reset()
	}
	c.Slots = c.Slots[:0]
	c.Sels = c.Sels[:0]
}

// Release returns the Context to the Pool it was borrowed from, folding
// its counters into the pool totals. Releasing a standalone Context, or
// releasing the same Context twice, is a no-op. The Context must not be
// used after Release.
func (c *Context) Release() {
	if c.pool != nil {
		c.pool.Put(c)
	}
}

// Pool recycles Contexts for one compiled MDES and aggregates the
// instrumentation of every Context returned to it.
type Pool struct {
	numRes int
	p      sync.Pool

	attempts   atomic.Int64
	options    atomic.Int64
	checks     atomic.Int64
	conflicts  atomic.Int64
	backtracks atomic.Int64

	reg *obs.Registry
}

// NewPool returns a Context pool for a machine with numRes resources.
func NewPool(numRes int) *Pool {
	pl := &Pool{numRes: numRes}
	pl.p.New = func() any {
		return &Context{RU: rumap.New(pl.numRes), pool: pl}
	}
	return pl
}

// SetMetrics attaches an observability registry: every Context borrowed
// after this call carries an obs.Local merged into reg on release, and
// the registry's in-flight gauge tracks borrowed contexts. Must be
// called before the first Get (mdes.NewEngine configures it at
// construction).
func (p *Pool) SetMetrics(reg *obs.Registry) { p.reg = reg }

// Metrics returns the attached registry, or nil.
func (p *Pool) Metrics() *obs.Registry { return p.reg }

// Get borrows a clean Context. The caller must return it with Put (or
// Context.Release) when done.
func (p *Pool) Get() *Context {
	c := p.p.Get().(*Context)
	c.released = false
	if p.reg != nil {
		if c.Obs == nil {
			c.Obs = p.reg.NewLocal()
		}
		p.reg.AddInFlight(1)
	}
	return c
}

// Put folds the Context's counters into the pool totals (and its
// observability buffer into the registry, when configured), resets it,
// and makes it available for reuse. Put is idempotent per borrow: a
// second Put of the same Context is a no-op, so its counters cannot be
// double-counted and the pool cannot hand the same Context to two
// borrowers.
func (p *Pool) Put(c *Context) {
	if c.released {
		return
	}
	c.released = true
	p.attempts.Add(c.Counters.Attempts)
	p.options.Add(c.Counters.OptionsChecked)
	p.checks.Add(c.Counters.ResourceChecks)
	p.conflicts.Add(c.Counters.Conflicts)
	p.backtracks.Add(c.Counters.Backtracks)
	if p.reg != nil {
		p.reg.Merge(c.Obs)
		p.reg.AddInFlight(-1)
	}
	c.Reset()
	p.p.Put(c)
}

// Totals returns the aggregated counters of every Context returned to the
// pool so far. Contexts currently borrowed are not included until Put.
func (p *Pool) Totals() stats.Counters {
	return stats.Counters{
		Attempts:       p.attempts.Load(),
		OptionsChecked: p.options.Load(),
		ResourceChecks: p.checks.Load(),
		Conflicts:      p.conflicts.Load(),
		Backtracks:     p.backtracks.Load(),
	}
}
