// Package resctx provides the session layer between one immutable compiled
// machine description and its many concurrent consumers.
//
// The compiled lowlevel.MDES is compile-once, validate-once data: after
// Freeze it is never mutated, so any number of goroutines may share one
// copy (the paper's premise is that one description serves a compiler's
// hottest inner loop; in a long-running service the same artifact must
// serve many inner loops at once). All per-client mutable state — the
// conflict checker (internal/check backend instance), the instrumentation
// counters, the observability buffer, and the selection scratch buffers —
// lives in a Context instead. Consumers (the list scheduler, the query
// interface, the modulo scheduler) borrow a Context, run against the
// shared MDES, and return it.
//
// A Pool recycles Contexts via sync.Pool and aggregates the counters of
// every returned Context, giving a service both allocation-free steady
// state and global instrumentation totals without any per-check
// synchronization: counters and metrics are accumulated locally in the
// borrowed Context and folded into the pool's atomic totals (and, when
// configured, into an obs.Registry) exactly once, on Put. Put and
// Context.Release are idempotent, so a double release can neither
// double-count a context's counters nor hand the same context to two
// borrowers.
package resctx

import (
	"sync"
	"sync/atomic"

	"mdes/internal/check"
	"mdes/internal/lowlevel"
	"mdes/internal/obs"
	"mdes/internal/obs/flight"
	"mdes/internal/obs/profile"
	"mdes/internal/probeplan"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// Context is the per-client mutable state for scheduling and querying
// against one shared compiled MDES. A Context must not be used from more
// than one goroutine at a time; borrow one per goroutine instead.
type Context struct {
	// Checker answers all issue-time conflict probes for this context.
	Checker check.Checker
	// RU is non-nil exactly when Checker is the default RU-map backend: it
	// is the same underlying map, exposed so hot paths and snapshot-based
	// tooling can skip interface dispatch (the devirtualized fast path).
	// Alternate backends leave it nil; use the Check/Reserve/Release
	// helpers, which pick the right path.
	RU *rumap.Map
	// PP is non-nil exactly when Checker is the probe-plan backend: the
	// same flat prober, exposed for the schedulers' devirtualized flat
	// path (arena-backed scratch, batch window probing).
	PP *probeplan.Prober
	// Batch is non-nil when the checker advertises Capabilities.Batch:
	// the same backend instance through its multi-cycle probing
	// interface. Schedulers take the window fast path through it and
	// fall back to per-cycle Check otherwise.
	Batch check.BatchProber
	// Arena is the per-context scratch allocator for schedule-sized
	// scratch slices; the schedulers' flat path carves all per-block
	// state from it, so the steady-state probe loop allocates nothing.
	Arena Arena
	// Counters accumulates the attempts / options checked / resource
	// checks performed through this context since it was borrowed.
	Counters stats.Counters
	// Obs, when non-nil, is the observability buffer the schedulers bump
	// on the hot path (per-phase, per-class, per-resource metrics); it is
	// merged into the pool's obs.Registry on release. Nil when the pool
	// has no registry (observability disabled) and on standalone
	// contexts.
	Obs *obs.Local
	// Flight, when non-nil, is the per-context flight-recorder ring the
	// schedulers append one compact entry per block to; it is merged into
	// the pool's flight.Recorder on release. Nil when the pool has no
	// recorder and on standalone contexts.
	Flight *flight.Local
	// Prof, when non-nil, is the per-context conflict-attribution profile
	// buffer (per-constraint / per-tree / per-option probe frequencies);
	// it is merged into the pool's profile.Profile on release. Nil when
	// the pool has no profile and on standalone contexts.
	Prof *profile.Local
	// Slots is a reusable (resource, cycle) buffer for reservation
	// snapshots (rumap.Map.AppendReservedSlots).
	Slots [][2]int
	// Sels is a reusable selection scratch for multi-reserve probes.
	Sels []check.Selection

	pool *Pool
	// released guards the release path: folding a context's counters
	// into the pool totals must happen at most once per borrow (see
	// Pool.Put).
	released bool
}

// New returns a standalone (unpooled) Context with the default RU-map
// checker for a machine with numRes resources. Release on a standalone
// Context is a no-op, so single-client code can treat pooled and unpooled
// Contexts uniformly.
func New(numRes int) *Context {
	c := &Context{}
	c.adopt(check.NewRUMap(numRes))
	return c
}

// NewFor returns a standalone (unpooled) Context whose checker comes from
// the factory.
func NewFor(f *check.Factory) *Context {
	c := &Context{}
	c.adopt(f.New())
	return c
}

// adopt installs a checker, wiring the devirtualized RU and probe-plan
// fast paths and the batch-probing capability when the backend offers
// them.
func (c *Context) adopt(ck check.Checker) {
	c.Checker = ck
	c.RU, c.PP, c.Batch = nil, nil, nil
	switch b := ck.(type) {
	case *check.RUMap:
		c.RU = b.Map()
	case *check.ProbePlan:
		c.PP = b.Prober()
	}
	if ck.Capabilities().Batch {
		if bp, ok := ck.(check.BatchProber); ok {
			c.Batch = bp
		}
	}
}

// Check probes the checker, devirtualized for the default and probe-plan
// backends, accounting into ctr (per-block or per-call counters; callers
// fold them into c.Counters themselves).
func (c *Context) Check(con *lowlevel.Constraint, issue int, ctr *stats.Counters) (check.Selection, bool) {
	if c.RU != nil {
		sel, ok := c.RU.Check(con, issue, ctr)
		return check.Selection{Selection: sel}, ok
	}
	if c.PP != nil {
		sel, ok := c.PP.Check(con, issue, ctr)
		return check.Selection{Selection: sel}, ok
	}
	return c.Checker.Check(con, issue, ctr)
}

// CheckWindow probes the half-open cycle window [lo, hi) through the
// backend's batch interface, devirtualized for the probe-plan backend.
// Callers gate on c.Batch != nil.
func (c *Context) CheckWindow(con *lowlevel.Constraint, lo, hi int, ctr *stats.Counters) (check.Selection, int, bool) {
	if c.PP != nil {
		sel, issue, ok := c.PP.CheckWindow(con, lo, hi, ctr)
		return check.Selection{Selection: sel}, issue, ok
	}
	return c.Batch.CheckWindow(con, lo, hi, ctr)
}

// Reserve applies a successful Selection, devirtualized for the default
// and probe-plan backends.
func (c *Context) Reserve(sel check.Selection) {
	if c.RU != nil {
		c.RU.Reserve(sel.Selection)
		return
	}
	if c.PP != nil {
		c.PP.Reserve(sel.Selection)
		return
	}
	c.Checker.Reserve(sel)
}

// ReleaseSel undoes a previous Reserve. Gate on
// Checker.Capabilities().CanRelease before calling on alternate backends.
func (c *Context) ReleaseSel(sel check.Selection) {
	if c.RU != nil {
		c.RU.Release(sel.Selection)
		return
	}
	if c.PP != nil {
		c.PP.Release(sel.Selection)
		return
	}
	c.Checker.Release(sel)
}

// Explain attributes a failed Check to its blocking resource slot, when
// the backend can (Capabilities.CanExplain).
func (c *Context) Explain(con *lowlevel.Constraint, issue int) (check.Conflict, bool) {
	if c.RU != nil {
		return c.RU.ExplainConflict(con, issue)
	}
	if c.PP != nil {
		return c.PP.Explain(con, issue)
	}
	return c.Checker.Explain(con, issue)
}

// BlockingRes returns just the resource index a failed Check would be
// attributed to, or -1: the cheap slice of Explain for metrics attribution
// (obs.Local.ConflictAt keys on the resource alone), skipping conflict
// provenance and Conflict construction on backends that can.
func (c *Context) BlockingRes(con *lowlevel.Constraint, issue int) int {
	if c.PP != nil {
		return c.PP.BlockerRes(con, issue)
	}
	if conf, ok := c.Explain(con, issue); ok {
		return conf.Res
	}
	return -1
}

// BlockingTreeRes attributes a failed Check to the position (within the
// constraint) of the first unsatisfiable tree and its blocking resource:
// the profile-grade slice of Explain (tree + resource, no provenance).
// Returns (-1, -1) on backends that cannot attribute, and (-1, res) when
// only resource attribution is available.
func (c *Context) BlockingTreeRes(con *lowlevel.Constraint, issue int) (int, int) {
	if c.PP != nil {
		return c.PP.BlockerTreeRes(con, issue)
	}
	if c.RU != nil {
		return c.RU.BlockerTreeRes(con, issue)
	}
	if conf, ok := c.Explain(con, issue); ok {
		return -1, conf.Res
	}
	return -1, -1
}

// Reset clears the checker's reservations, counters, and observability
// buffer, retaining all storage.
func (c *Context) Reset() {
	c.Checker.Reset()
	c.Counters = stats.Counters{}
	if c.Obs != nil {
		c.Obs.Reset()
	}
	c.Prof.Reset()
	c.Slots = c.Slots[:0]
	c.Sels = c.Sels[:0]
	c.Arena.Reset()
}

// Release returns the Context to the Pool it was borrowed from, folding
// its counters into the pool totals. Releasing a standalone Context, or
// releasing the same Context twice, is a no-op. The Context must not be
// used after Release.
func (c *Context) Release() {
	if c.pool != nil {
		c.pool.Put(c)
	}
}

// Pool recycles Contexts for one compiled MDES and aggregates the
// instrumentation of every Context returned to it.
type Pool struct {
	newChecker func() check.Checker
	p          sync.Pool

	attempts   atomic.Int64
	options    atomic.Int64
	checks     atomic.Int64
	conflicts  atomic.Int64
	backtracks atomic.Int64

	reg  *obs.Registry
	fr   *flight.Recorder
	prof *profile.Profile
}

// NewPool returns a Context pool with the default RU-map checker for a
// machine with numRes resources.
func NewPool(numRes int) *Pool {
	return newPool(func() check.Checker { return check.NewRUMap(numRes) })
}

// NewPoolFor returns a Context pool whose contexts carry checkers built by
// the factory (one checker instance per pooled context; backend state
// shared through the factory).
func NewPoolFor(f *check.Factory) *Pool {
	return newPool(f.New)
}

func newPool(newChecker func() check.Checker) *Pool {
	pl := &Pool{newChecker: newChecker}
	pl.p.New = func() any {
		c := &Context{pool: pl}
		c.adopt(pl.newChecker())
		return c
	}
	return pl
}

// SetMetrics attaches an observability registry: every Context borrowed
// after this call carries an obs.Local merged into reg on release, and
// the registry's in-flight gauge tracks borrowed contexts. Must be
// called before the first Get (mdes.NewEngine configures it at
// construction).
func (p *Pool) SetMetrics(reg *obs.Registry) { p.reg = reg }

// Metrics returns the attached registry, or nil.
func (p *Pool) Metrics() *obs.Registry { return p.reg }

// SetFlight attaches a flight recorder: every Context borrowed after this
// call carries a flight.Local ring merged into rec on release. Must be
// called before the first Get (mdes.NewEngine configures it at
// construction).
func (p *Pool) SetFlight(rec *flight.Recorder) { p.fr = rec }

// Flight returns the attached flight recorder, or nil.
func (p *Pool) Flight() *flight.Recorder { return p.fr }

// SetProfile attaches a conflict-attribution profile: every Context
// borrowed after this call carries a profile.Local merged into prof on
// release. Must be called before the first Get (mdes.NewEngine configures
// it at construction).
func (p *Pool) SetProfile(prof *profile.Profile) { p.prof = prof }

// Profile returns the attached profile, or nil.
func (p *Pool) Profile() *profile.Profile { return p.prof }

// Get borrows a clean Context. The caller must return it with Put (or
// Context.Release) when done.
func (p *Pool) Get() *Context {
	c := p.p.Get().(*Context)
	c.released = false
	if p.reg != nil {
		if c.Obs == nil {
			c.Obs = p.reg.NewLocal()
		}
		p.reg.AddInFlight(1)
	}
	if p.fr != nil && c.Flight == nil {
		c.Flight = p.fr.NewLocal()
	}
	if p.prof != nil && c.Prof == nil {
		c.Prof = p.prof.NewLocal()
	}
	return c
}

// Put folds the Context's counters into the pool totals (and its
// observability buffer into the registry, when configured), resets it,
// and makes it available for reuse. Put is idempotent per borrow: a
// second Put of the same Context is a no-op, so its counters cannot be
// double-counted and the pool cannot hand the same Context to two
// borrowers.
func (p *Pool) Put(c *Context) {
	if c.released {
		return
	}
	c.released = true
	p.attempts.Add(c.Counters.Attempts)
	p.options.Add(c.Counters.OptionsChecked)
	p.checks.Add(c.Counters.ResourceChecks)
	p.conflicts.Add(c.Counters.Conflicts)
	p.backtracks.Add(c.Counters.Backtracks)
	if p.reg != nil {
		p.reg.Merge(c.Obs)
		p.reg.AddInFlight(-1)
	}
	if p.fr != nil {
		p.fr.Merge(c.Flight)
	}
	if p.prof != nil {
		p.prof.Merge(c.Prof)
	}
	c.Reset()
	p.p.Put(c)
}

// Totals returns the aggregated counters of every Context returned to the
// pool so far. Contexts currently borrowed are not included until Put.
func (p *Pool) Totals() stats.Counters {
	return stats.Counters{
		Attempts:       p.attempts.Load(),
		OptionsChecked: p.options.Load(),
		ResourceChecks: p.checks.Load(),
		Conflicts:      p.conflicts.Load(),
		Backtracks:     p.backtracks.Load(),
	}
}
