package resctx

import (
	"sync"
	"testing"

	"mdes/internal/stats"
)

func TestStandaloneReleaseIsNoop(t *testing.T) {
	c := New(4)
	c.Counters.Attempts = 7
	c.Release() // must not panic or reset
	if c.Counters.Attempts != 7 {
		t.Fatalf("standalone Release mutated counters: %+v", c.Counters)
	}
}

func TestPoolRecyclesAndAggregates(t *testing.T) {
	p := NewPool(8)
	c := p.Get()
	if c.RU == nil {
		t.Fatal("pooled context has no RU map")
	}
	c.Counters = stats.Counters{Attempts: 3, OptionsChecked: 5, ResourceChecks: 11}
	c.Slots = append(c.Slots, [2]int{1, 2})
	c.Release()

	got := p.Totals()
	want := stats.Counters{Attempts: 3, OptionsChecked: 5, ResourceChecks: 11}
	if got != want {
		t.Fatalf("Totals = %+v, want %+v", got, want)
	}

	c2 := p.Get()
	if c2.Counters != (stats.Counters{}) {
		t.Fatalf("recycled context has stale counters: %+v", c2.Counters)
	}
	if len(c2.Slots) != 0 {
		t.Fatalf("recycled context has stale slots: %v", c2.Slots)
	}
	c2.Release()
}

func TestPoolTotalsConcurrent(t *testing.T) {
	p := NewPool(4)
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := p.Get()
				c.Counters.Attempts++
				c.Release()
			}
		}()
	}
	wg.Wait()
	if got := p.Totals().Attempts; got != workers*rounds {
		t.Fatalf("Totals.Attempts = %d, want %d", got, workers*rounds)
	}
}

func TestResetClearsReservations(t *testing.T) {
	c := New(4)
	c.Slots = append(c.Slots, [2]int{0, 0})
	c.Counters.Attempts = 1
	c.Reset()
	if c.Counters != (stats.Counters{}) || len(c.Slots) != 0 {
		t.Fatalf("Reset left state: %+v slots=%v", c.Counters, c.Slots)
	}
}
