package resctx

import (
	"sync"
	"testing"

	"mdes/internal/obs"
	"mdes/internal/obs/flight"
	"mdes/internal/stats"
)

func TestStandaloneReleaseIsNoop(t *testing.T) {
	c := New(4)
	c.Counters.Attempts = 7
	c.Release() // must not panic or reset
	if c.Counters.Attempts != 7 {
		t.Fatalf("standalone Release mutated counters: %+v", c.Counters)
	}
}

func TestPoolRecyclesAndAggregates(t *testing.T) {
	p := NewPool(8)
	c := p.Get()
	if c.RU == nil {
		t.Fatal("pooled context has no RU map")
	}
	c.Counters = stats.Counters{Attempts: 3, OptionsChecked: 5, ResourceChecks: 11}
	c.Slots = append(c.Slots, [2]int{1, 2})
	c.Release()

	got := p.Totals()
	want := stats.Counters{Attempts: 3, OptionsChecked: 5, ResourceChecks: 11}
	if got != want {
		t.Fatalf("Totals = %+v, want %+v", got, want)
	}

	c2 := p.Get()
	if c2.Counters != (stats.Counters{}) {
		t.Fatalf("recycled context has stale counters: %+v", c2.Counters)
	}
	if len(c2.Slots) != 0 {
		t.Fatalf("recycled context has stale slots: %v", c2.Slots)
	}
	c2.Release()
}

func TestPoolTotalsConcurrent(t *testing.T) {
	p := NewPool(4)
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := p.Get()
				c.Counters.Attempts++
				c.Release()
			}
		}()
	}
	wg.Wait()
	if got := p.Totals().Attempts; got != workers*rounds {
		t.Fatalf("Totals.Attempts = %d, want %d", got, workers*rounds)
	}
}

func TestResetClearsReservations(t *testing.T) {
	c := New(4)
	c.Slots = append(c.Slots, [2]int{0, 0})
	c.Counters.Attempts = 1
	c.Reset()
	if c.Counters != (stats.Counters{}) || len(c.Slots) != 0 {
		t.Fatalf("Reset left state: %+v slots=%v", c.Counters, c.Slots)
	}
}

func TestDoubleReleaseFoldsOnce(t *testing.T) {
	p := NewPool(4)
	c := p.Get()
	c.Counters = stats.Counters{Attempts: 5, OptionsChecked: 9, ResourceChecks: 13, Conflicts: 2, Backtracks: 1}
	c.Release()
	c.Release() // must be a no-op: counters were already folded and reset
	want := stats.Counters{Attempts: 5, OptionsChecked: 9, ResourceChecks: 13, Conflicts: 2, Backtracks: 1}
	if got := p.Totals(); got != want {
		t.Fatalf("Totals after double release = %+v, want %+v", got, want)
	}
}

func TestDoubleReleaseDoesNotAliasContexts(t *testing.T) {
	// A non-idempotent Put would insert the same context into the pool
	// twice, handing one context to two borrowers whose counters would
	// then be folded twice. After a double release, two Gets must return
	// distinct contexts.
	p := NewPool(4)
	c := p.Get()
	c.Release()
	c.Release()
	a, b := p.Get(), p.Get()
	if a == b {
		t.Fatal("double release aliased one context to two borrowers")
	}
	a.Release()
	b.Release()
}

func TestPoolMetricsMergeOnRelease(t *testing.T) {
	p := NewPool(2)
	reg := obs.NewRegistry([]string{"alu"}, []string{"r0", "r1"})
	p.SetMetrics(reg)

	c := p.Get()
	if c.Obs == nil {
		t.Fatal("metrics-enabled pool handed out a context without an obs.Local")
	}
	if got := reg.Snapshot().InFlight; got != 1 {
		t.Fatalf("in-flight = %d, want 1", got)
	}
	c.Obs.Attempt(obs.PhaseList, 0, 2, 3, 10, false)
	c.Obs.ConflictAt(1)
	c.Release()
	c.Release() // idempotent for the registry too

	s := reg.Snapshot()
	if s.InFlight != 0 {
		t.Fatalf("in-flight after release = %d", s.InFlight)
	}
	if s.Merges != 1 {
		t.Fatalf("merges = %d, want 1 (double release must not re-merge)", s.Merges)
	}
	if s.Phases[obs.PhaseList].Attempts != 1 || s.Resources[1].Conflicts != 1 {
		t.Fatalf("merged snapshot = %+v", s)
	}

	// The recycled context's local must be clean.
	c2 := p.Get()
	if c2.Obs == nil {
		t.Fatal("recycled context lost its obs.Local")
	}
	c2.Release()
	if got := reg.Snapshot().Phases[obs.PhaseList].Attempts; got != 1 {
		t.Fatalf("clean recycled local changed attempts: %d", got)
	}
}

func TestPoolFlightMergeOnRelease(t *testing.T) {
	rec := flight.NewRecorder(flight.Config{})
	p := NewPool(4)
	p.SetFlight(rec)
	if p.Flight() != rec {
		t.Fatal("Flight() did not return the attached recorder")
	}

	c := p.Get()
	if c.Flight == nil {
		t.Fatal("pooled context has no flight ring after SetFlight")
	}
	c.Flight.Record(&flight.Entry{Block: 7, Phase: obs.PhaseList, Ops: 3, Length: 5, WallNs: 100})
	c.Release()

	if got := rec.Blocks(); got != 1 {
		t.Fatalf("recorder merged %d blocks, want 1", got)
	}
	snap := rec.Snapshot()
	if len(snap.Recent) != 1 || snap.Recent[0].Block != 7 {
		t.Fatalf("recent = %+v", snap.Recent)
	}

	// Recycled contexts keep their ring; entries must not leak across
	// borrows.
	c2 := p.Get()
	if c2.Flight == nil {
		t.Fatal("recycled context lost its flight ring")
	}
	c2.Release()
	if got := rec.Blocks(); got != 1 {
		t.Fatalf("empty release added blocks: %d", got)
	}
}

func TestPoolWithoutFlightHasNoRing(t *testing.T) {
	p := NewPool(4)
	c := p.Get()
	if c.Flight != nil {
		t.Fatal("context has a flight ring without SetFlight")
	}
	c.Release()
}
