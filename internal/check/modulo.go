package check

import (
	"fmt"
	"math/bits"

	"mdes/internal/bitset"
	"mdes/internal/lowlevel"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// ownerAnon marks slots reserved through the plain Checker interface,
// which carries no operation identity. It is never a valid operation
// index, so anonymous reservations are invisible to eviction.
const ownerAnon = int32(1) << 30

// ownerFree marks an unreserved slot.
const ownerFree = int32(-1)

// Modulo is the software-pipelining checker backend: a modulo-wrapped
// resource-usage map in which slot (res, cycle) folds onto row cycle mod
// II. The busy test is bit-packed — one word probe per CycleMask, exactly
// like the acyclic RU map — while a parallel owner table keeps the
// operation identity reservation tables retain and automata lose, enabling
// the eviction (unscheduling) step of iterative modulo scheduling (§10).
//
// Checking must also reject options that fold onto the same slot twice at
// this II (a modulo self-collision) and combinations whose trees
// double-book a folded slot; both are detected with per-check scratch
// rows instead of the hash maps the previous implementation allocated
// against.
type Modulo struct {
	nres int
	ii   int

	// rows[r] holds the busy bits of modulo row r; owner[r][res] holds the
	// reserving operation index (only consulted on the eviction and
	// release slow paths, never by the packed busy test).
	rows  []bitset.Set
	owner [][]int32

	// taken accumulates the slots chosen by earlier trees of the Check in
	// progress; seen is the per-option self-collision scratch. Both are
	// cleared lazily through their dirty-row lists, so a Check touches
	// only the rows it probed.
	taken      []bitset.Set
	seen       []bitset.Set
	dirtyTaken []int
	dirtySeen  []int

	// chosenScratch holds CheckWindow's per-tree choices until a cycle
	// succeeds, so failed cycles allocate nothing.
	chosenScratch []int
}

// NewModulo returns a modulo checker for a machine with nres resources at
// initiation interval ii.
func NewModulo(nres, ii int) *Modulo {
	m := &Modulo{nres: nres}
	m.Configure(ii)
	return m
}

// II returns the configured initiation interval.
func (m *Modulo) II() int { return m.ii }

// Configure clears the map and sets a new initiation interval, retaining
// row storage across candidate IIs (the modulo scheduler's II search
// reuses one Modulo instead of allocating per candidate).
func (m *Modulo) Configure(ii int) {
	if ii < 1 {
		panic(fmt.Sprintf("check: modulo II %d < 1", ii))
	}
	for len(m.rows) < ii {
		m.rows = append(m.rows, bitset.New(m.nres))
		m.taken = append(m.taken, bitset.New(m.nres))
		m.seen = append(m.seen, bitset.New(m.nres))
		m.owner = append(m.owner, make([]int32, m.nres))
	}
	m.ii = ii
	m.Reset()
}

// Reset implements Checker: every slot free, storage retained.
func (m *Modulo) Reset() {
	for r := 0; r < len(m.rows); r++ {
		m.rows[r].Reset()
		m.seen[r].Reset()
		m.taken[r].Reset()
		own := m.owner[r]
		for i := range own {
			own[i] = ownerFree
		}
	}
	m.dirtyTaken = m.dirtyTaken[:0]
	m.dirtySeen = m.dirtySeen[:0]
}

// wrap maps an absolute cycle onto its modulo row.
func (m *Modulo) wrap(cycle int) int {
	r := cycle % m.ii
	if r < 0 {
		r += m.ii
	}
	return r
}

func (m *Modulo) clearSeen() {
	for _, r := range m.dirtySeen {
		m.seen[r].Reset()
	}
	m.dirtySeen = m.dirtySeen[:0]
}

func (m *Modulo) clearTaken() {
	for _, r := range m.dirtyTaken {
		m.taken[r].Reset()
	}
	m.dirtyTaken = m.dirtyTaken[:0]
}

// optionFree reports whether every slot of the option is free with the
// operation issued at cycle issue, counting one resource check per probed
// mask (packed) or usage (scalar) — the same unit as the acyclic RU map.
// A slot already committed by an earlier tree of this Check (taken) or by
// an earlier usage of this same option after folding (seen) is busy.
func (m *Modulo) optionFree(o *lowlevel.Option, issue int, c *stats.Counters) bool {
	m.clearSeen()
	if o.Masks != nil {
		for _, cm := range o.Masks {
			c.ResourceChecks++
			r := m.wrap(issue + int(cm.Time))
			w := int(cm.Word)
			if m.rows[r].IntersectsMask(w, cm.Mask) ||
				m.taken[r].IntersectsMask(w, cm.Mask) ||
				m.seen[r].IntersectsMask(w, cm.Mask) {
				return false
			}
			m.seen[r].OrMask(w, cm.Mask)
			m.dirtySeen = append(m.dirtySeen, r)
		}
		return true
	}
	for _, u := range o.Usages {
		c.ResourceChecks++
		r := m.wrap(issue + int(u.Time))
		res := int(u.Res)
		if m.rows[r].Test(res) || m.taken[r].Test(res) || m.seen[r].Test(res) {
			return false
		}
		m.seen[r].Set(res)
		m.dirtySeen = append(m.dirtySeen, r)
	}
	return true
}

// addTaken commits an accepted option's slots to the in-progress Check's
// taken scratch so later trees cannot double-book a folded slot.
func (m *Modulo) addTaken(o *lowlevel.Option, issue int) {
	if o.Masks != nil {
		for _, cm := range o.Masks {
			r := m.wrap(issue + int(cm.Time))
			m.taken[r].OrMask(int(cm.Word), cm.Mask)
			m.dirtyTaken = append(m.dirtyTaken, r)
		}
		return
	}
	for _, u := range o.Usages {
		r := m.wrap(issue + int(u.Time))
		m.taken[r].Set(int(u.Res))
		m.dirtyTaken = append(m.dirtyTaken, r)
	}
}

// Check implements Checker: the same greedy AND-of-OR-trees algorithm as
// the acyclic RU map, against the modulo-wrapped rows.
func (m *Modulo) Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (Selection, bool) {
	c.Attempts++
	m.clearTaken()
	sel := Selection{}
	sel.Constraint = con
	sel.Issue = issue
	sel.Chosen = make([]int, len(con.Trees))
	for ti, tree := range con.Trees {
		found := -1
		for oi, o := range tree.Options {
			c.OptionsChecked++
			if m.optionFree(o, issue, c) {
				found = oi
				break
			}
		}
		if found < 0 {
			c.Conflicts++
			return Selection{}, false
		}
		sel.Chosen[ti] = found
		m.addTaken(tree.Options[found], issue)
	}
	return sel, true
}

// CheckWindow implements BatchProber: probe [lo, hi) in one pass and
// return the first satisfiable cycle. Accounting-equivalent to a serial
// Check loop stopping at the first success, but failed cycles allocate
// nothing — the Selection is built only for the winning cycle, which is
// what the II search's inner try-window wants.
func (m *Modulo) CheckWindow(con *lowlevel.Constraint, lo, hi int, c *stats.Counters) (Selection, int, bool) {
	if cap(m.chosenScratch) < len(con.Trees) {
		m.chosenScratch = make([]int, len(con.Trees))
	}
	scratch := m.chosenScratch[:len(con.Trees)]
issue:
	for issue := lo; issue < hi; issue++ {
		c.Attempts++
		m.clearTaken()
		for ti, tree := range con.Trees {
			found := -1
			for oi, o := range tree.Options {
				c.OptionsChecked++
				if m.optionFree(o, issue, c) {
					found = oi
					break
				}
			}
			if found < 0 {
				c.Conflicts++
				continue issue
			}
			scratch[ti] = found
			m.addTaken(tree.Options[found], issue)
		}
		sel := Selection{}
		sel.Constraint = con
		sel.Issue = issue
		sel.Chosen = make([]int, len(scratch))
		copy(sel.Chosen, scratch)
		return sel, issue, true
	}
	return Selection{}, 0, false
}

// Reserve implements Checker, reserving anonymously; modulo scheduling
// uses ReserveFor so evictions can name their victims.
func (m *Modulo) Reserve(sel Selection) { m.ReserveFor(sel, ownerAnon) }

// ReserveFor applies a successful Selection on behalf of operation op.
func (m *Modulo) ReserveFor(sel Selection, op int32) {
	for ti, tree := range sel.Constraint.Trees {
		o := tree.Options[sel.Chosen[ti]]
		if o.Masks != nil {
			for _, cm := range o.Masks {
				r := m.wrap(sel.Issue + int(cm.Time))
				m.rows[r].OrMask(int(cm.Word), cm.Mask)
				own := m.owner[r]
				base := int(cm.Word) * bitset.WordBits
				for mask := cm.Mask; mask != 0; mask &= mask - 1 {
					own[base+bits.TrailingZeros64(mask)] = op
				}
			}
			continue
		}
		for _, u := range o.Usages {
			r := m.wrap(sel.Issue + int(u.Time))
			m.rows[r].Set(int(u.Res))
			m.owner[r][u.Res] = op
		}
	}
}

// Release implements Checker, undoing an anonymous Reserve.
func (m *Modulo) Release(sel Selection) { m.ReleaseFor(sel, ownerAnon) }

// ReleaseFor undoes a ReserveFor: only slots still owned by op are freed
// (an evicted-and-replaced slot belongs to its new owner). Releasing a
// zero Selection is a no-op.
func (m *Modulo) ReleaseFor(sel Selection, op int32) {
	if sel.Constraint == nil {
		return
	}
	for ti, tree := range sel.Constraint.Trees {
		o := tree.Options[sel.Chosen[ti]]
		if o.Masks != nil {
			for _, cm := range o.Masks {
				r := m.wrap(sel.Issue + int(cm.Time))
				own := m.owner[r]
				base := int(cm.Word) * bitset.WordBits
				for mask := cm.Mask; mask != 0; mask &= mask - 1 {
					res := base + bits.TrailingZeros64(mask)
					if own[res] == op {
						own[res] = ownerFree
						m.rows[r].Clear(res)
					}
				}
			}
			continue
		}
		for _, u := range o.Usages {
			r := m.wrap(sel.Issue + int(u.Time))
			if m.owner[r][u.Res] == op {
				m.owner[r][u.Res] = ownerFree
				m.rows[r].Clear(int(u.Res))
			}
		}
	}
}

// EvictConflicts frees every slot the constraint's highest-priority
// options need at the forced issue cycle, unscheduling the current owners
// entirely (every slot they hold, not just the contested ones) and
// returning them in ascending order — Rau's forced-placement displacement.
func (m *Modulo) EvictConflicts(con *lowlevel.Constraint, issue int) []int {
	var victims []int
	for _, tree := range con.Trees {
		for _, u := range tree.Options[0].ExpandedUsages() {
			r := m.wrap(issue + int(u.Time))
			if op := m.owner[r][u.Res]; op >= 0 && op != ownerAnon {
				dup := false
				for _, v := range victims {
					if v == int(op) {
						dup = true
						break
					}
				}
				if !dup {
					victims = append(victims, int(op))
				}
			}
		}
	}
	// Ascending victim order keeps evictions deterministic.
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && victims[j-1] > victims[j]; j-- {
			victims[j-1], victims[j] = victims[j], victims[j-1]
		}
	}
	for _, v := range victims {
		m.evictOp(int32(v))
	}
	return victims
}

// evictOp frees every slot owned by op.
func (m *Modulo) evictOp(op int32) {
	for r := range m.owner {
		own := m.owner[r]
		for res, o := range own {
			if o == op {
				own[res] = ownerFree
				m.rows[r].Clear(res)
			}
		}
	}
}

// optionFreeQuiet is optionFree without instrumentation or cross-tree
// context — the attribution-only twin used by Explain.
func (m *Modulo) optionFreeQuiet(o *lowlevel.Option, issue int) bool {
	m.clearSeen()
	if o.Masks != nil {
		for _, cm := range o.Masks {
			r := m.wrap(issue + int(cm.Time))
			w := int(cm.Word)
			if m.rows[r].IntersectsMask(w, cm.Mask) || m.seen[r].IntersectsMask(w, cm.Mask) {
				return false
			}
			m.seen[r].OrMask(w, cm.Mask)
			m.dirtySeen = append(m.dirtySeen, r)
		}
		return true
	}
	for _, u := range o.Usages {
		r := m.wrap(issue + int(u.Time))
		res := int(u.Res)
		if m.rows[r].Test(res) || m.seen[r].Test(res) {
			return false
		}
		m.seen[r].Set(res)
		m.dirtySeen = append(m.dirtySeen, r)
	}
	return true
}

// Explain implements Checker: for the first unsatisfiable tree, the first
// busy slot blocking its highest-priority option, with the option's HMDES
// provenance. A pure modulo self-collision (no busy row bit) reports
// found == false, as there is no blocking reservation to name.
func (m *Modulo) Explain(con *lowlevel.Constraint, issue int) (Conflict, bool) {
	for _, tree := range con.Trees {
		satisfiable := false
		for _, o := range tree.Options {
			if m.optionFreeQuiet(o, issue) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			blocked := tree.Options[0]
			for _, u := range blocked.ExpandedUsages() {
				r := m.wrap(issue + int(u.Time))
				if m.rows[r].Test(int(u.Res)) {
					src := blocked.Src
					if src == "" {
						src = tree.Src
					}
					return rumap.Conflict{Res: int(u.Res), Time: int(u.Time), Tree: tree.Name, Src: src}, true
				}
			}
			return Conflict{}, false
		}
	}
	return Conflict{}, false
}

// Capabilities implements Checker. The modulo backend is not a selectable
// acyclic Kind: it wraps cycles, so only modulo schedulers use it.
func (m *Modulo) Capabilities() Capabilities {
	return Capabilities{Backend: "modmap", CanRelease: true, CanExplain: true, Modulo: true, Batch: true}
}

// Modulo implements the Checker interface.
var _ Checker = (*Modulo)(nil)
var _ Checker = (*RUMap)(nil)
var _ Checker = (*Automaton)(nil)
var _ BatchProber = (*Modulo)(nil)
