package check

import (
	"mdes/internal/lowlevel"
	"mdes/internal/probeplan"
	"mdes/internal/stats"
)

// ProbePlan is the flat-plan checker backend: a thin adapter over
// probeplan.Prober. Consumers that know they hold this backend may use
// Prober directly — the devirtualized fast path the schedulers take,
// exactly as they do with RUMap.Map.
//
// Unlike the RU map, Selections borrow their Chosen slices from the
// prober's arena and stay valid only until the next Reset; the schedulers
// and the query layer both reset per unit of work, so this is invisible
// to them, but callers must not retain Selections across Resets.
type ProbePlan struct {
	pp *probeplan.Prober
}

// NewProbePlan returns a probe-plan checker over the compiled plan.
func NewProbePlan(plan *probeplan.Plan) *ProbePlan {
	return &ProbePlan{pp: probeplan.NewProber(plan)}
}

// Prober exposes the underlying flat prober for devirtualized hot paths.
func (p *ProbePlan) Prober() *probeplan.Prober { return p.pp }

// Check implements Checker.
func (p *ProbePlan) Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (Selection, bool) {
	sel, ok := p.pp.Check(con, issue, c)
	return Selection{Selection: sel}, ok
}

// CheckWindow implements BatchProber.
func (p *ProbePlan) CheckWindow(con *lowlevel.Constraint, lo, hi int, c *stats.Counters) (Selection, int, bool) {
	sel, issue, ok := p.pp.CheckWindow(con, lo, hi, c)
	return Selection{Selection: sel}, issue, ok
}

// Reserve implements Checker.
func (p *ProbePlan) Reserve(sel Selection) { p.pp.Reserve(sel.Selection) }

// Release implements Checker.
func (p *ProbePlan) Release(sel Selection) { p.pp.Release(sel.Selection) }

// Reset implements Checker.
func (p *ProbePlan) Reset() { p.pp.Reset() }

// Explain implements Checker.
func (p *ProbePlan) Explain(con *lowlevel.Constraint, issue int) (Conflict, bool) {
	return p.pp.Explain(con, issue)
}

// Capabilities implements Checker.
func (p *ProbePlan) Capabilities() Capabilities { return Caps(KindProbePlan) }

var _ Checker = (*ProbePlan)(nil)
var _ BatchProber = (*ProbePlan)(nil)
