package check

import (
	"fmt"

	"mdes/internal/automata"
	"mdes/internal/lowlevel"
	"mdes/internal/stats"
)

// Automaton is the §10 checker backend: a cursor (current DFA state and
// cycle) over the factory's shared, lazily-built collision automaton.
// Asking "can class C issue at cycle c?" is a memoized transition lookup;
// the accounting unit is one resource check per transition consulted
// (issue or advance), the automaton analog of one probed mask.
//
// The cursor only moves forward: probes must use non-decreasing issue
// cycles (Capabilities.MonotonicOnly), reservations cannot be released,
// and a failed probe cannot name the blocking operation — the exact
// trade-off the paper describes for automaton-based hazard detection.
type Automaton struct {
	shared  *automata.Shared
	classOf map[*lowlevel.Constraint]int

	state int
	cycle int
}

// Check implements Checker. Checking at a cycle beyond the cursor commits
// the intervening cycle advances (time passage, not reservation); checking
// before the cursor panics, since the window has already shifted past it.
func (a *Automaton) Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (Selection, bool) {
	class, ok := a.classOf[con]
	if !ok {
		panic(fmt.Sprintf("check: constraint %q not in the automaton's MDES", con.Name))
	}
	if issue < a.cycle {
		panic(fmt.Sprintf("check: automaton backend probed at cycle %d behind its cursor %d (MonotonicOnly)", issue, a.cycle))
	}
	for a.cycle < issue {
		a.state = a.shared.Advance(a.state)
		a.cycle++
		c.ResourceChecks++
	}
	c.Attempts++
	c.OptionsChecked++
	c.ResourceChecks++
	next, chosen, ok := a.shared.TryIssue(a.state, class)
	if !ok {
		c.Conflicts++
		return Selection{}, false
	}
	sel := Selection{next: next}
	sel.Constraint = con
	sel.Issue = issue
	sel.Chosen = append([]int(nil), chosen...)
	return sel, true
}

// Reserve implements Checker: it commits the successor state recorded by
// the Check that produced sel. The selection must come from the most
// recent successful Check at the cursor's cycle.
func (a *Automaton) Reserve(sel Selection) {
	a.state = sel.next
	a.cycle = sel.Issue
}

// Release implements Checker; the automaton cannot unschedule (§10), so
// this always panics. Gate on Capabilities.CanRelease instead of calling.
func (a *Automaton) Release(Selection) {
	panic("check: automaton backend cannot release reservations (§10: unscheduling needs reservation tables)")
}

// Reset implements Checker: back to the empty-window start state at cycle
// zero. The shared DFA and its memoized transitions are retained.
func (a *Automaton) Reset() {
	a.state = a.shared.Start()
	a.cycle = 0
}

// Explain implements Checker. DFA states fold all reservations together,
// so the blocking slot cannot be recovered; found is always false.
func (a *Automaton) Explain(*lowlevel.Constraint, int) (Conflict, bool) {
	return Conflict{}, false
}

// Capabilities implements Checker.
func (a *Automaton) Capabilities() Capabilities { return Caps(KindAutomaton) }
