package check

import (
	"mdes/internal/lowlevel"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// RUMap is the default checker backend: the paper's reservation-table
// check against the packed per-cycle RU map. It is a thin adapter over
// rumap.Map; consumers that know they hold this backend may use Map
// directly — the devirtualized fast path the schedulers take.
type RUMap struct {
	ru *rumap.Map
}

// NewRUMap returns an RU-map checker for a machine with numRes resources.
func NewRUMap(numRes int) *RUMap {
	return &RUMap{ru: rumap.New(numRes)}
}

// Map exposes the underlying RU map for devirtualized hot paths and
// snapshot-based tooling.
func (r *RUMap) Map() *rumap.Map { return r.ru }

// Check implements Checker.
func (r *RUMap) Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (Selection, bool) {
	sel, ok := r.ru.Check(con, issue, c)
	return Selection{Selection: sel}, ok
}

// Reserve implements Checker.
func (r *RUMap) Reserve(sel Selection) { r.ru.Reserve(sel.Selection) }

// Release implements Checker.
func (r *RUMap) Release(sel Selection) { r.ru.Release(sel.Selection) }

// Reset implements Checker.
func (r *RUMap) Reset() { r.ru.Reset() }

// Explain implements Checker.
func (r *RUMap) Explain(con *lowlevel.Constraint, issue int) (Conflict, bool) {
	return r.ru.ExplainConflict(con, issue)
}

// Capabilities implements Checker.
func (r *RUMap) Capabilities() Capabilities { return Caps(KindRUMap) }
