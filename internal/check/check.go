// Package check is the pluggable conflict-detection layer: one interface
// behind which every answer to "can this operation issue at cycle c?" lives.
//
// The paper's contribution is making that inner-loop question fast; this
// repository grew three independent implementations of it — the packed
// AND/OR-tree RU map (internal/rumap), the §10 finite-state-automaton
// baseline (internal/automata), and the modulo scheduler's wrapped map.
// This package unifies them behind the Checker interface so schedulers,
// the query layer, and the Engine select a backend by Kind instead of
// hard-coding a representation, and so future backends (sharded maps,
// SIMD masks, remote query services) plug into the same seam.
//
// Backends are not interchangeable in every role: the automaton answers
// probes fast but cannot release a reservation or attribute a conflict to
// a blocking operation (the §10 limitation), so unscheduling-based
// techniques must reject it. The Capabilities report encodes exactly that
// matrix; consumers gate on it rather than on concrete types.
package check

import (
	"fmt"

	"mdes/internal/automata"
	"mdes/internal/lowlevel"
	"mdes/internal/probeplan"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// Kind names a selectable checker backend.
type Kind int

const (
	// KindRUMap is the default backend: the paper's packed AND/OR-tree
	// reservation-table check against the per-cycle RU map.
	KindRUMap Kind = iota
	// KindAutomaton is the §10 related-work backend: memoized transitions
	// of a lazily-built collision DFA shared across all contexts.
	KindAutomaton
	// KindProbePlan is the flat-plan backend: the description compiled
	// once into contiguous span arrays of packed probe words
	// (internal/probeplan), walked by slice iteration with batch
	// window probing and arena-backed selections.
	KindProbePlan
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindRUMap:
		return "rumap"
	case KindAutomaton:
		return "automaton"
	case KindProbePlan:
		return "probeplan"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns every selectable backend, default first.
func Kinds() []Kind { return []Kind{KindRUMap, KindAutomaton, KindProbePlan} }

// ParseKind resolves a backend name ("rumap", "automaton", "probeplan").
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("check: unknown checker backend %q (valid: rumap, automaton, probeplan)", s)
}

// Capabilities reports what a backend can and cannot do, so consumers gate
// on abilities instead of concrete types. The capability matrix follows
// the paper's §10 comparison: reservation tables keep the identity of
// every reservation (release, eviction, conflict attribution are
// straightforward), while the automaton folds reservations into opaque
// DFA states and loses it.
type Capabilities struct {
	// Backend is the backend's name, as reported in tool output and the
	// observability layer.
	Backend string
	// CanRelease reports whether Release undoes a Reserve — the ability
	// unscheduling-based techniques (iterative modulo scheduling) require.
	CanRelease bool
	// CanExplain reports whether Explain can attribute a failed Check to
	// the blocking resource slot.
	CanExplain bool
	// MonotonicOnly restricts probes to non-decreasing issue cycles
	// (cycle-driven forward scheduling); backward and operation-driven
	// scheduling need random access and must reject such backends.
	MonotonicOnly bool
	// Modulo reports that issue cycles wrap modulo the initiation
	// interval (the modulo-map backend used by software pipelining).
	Modulo bool
	// Batch reports that the backend also implements BatchProber:
	// schedulers may test a whole window of candidate issue cycles in
	// one CheckWindow pass instead of re-entering Check per cycle.
	Batch bool
}

// Caps returns the static capability report for a selectable Kind.
func Caps(k Kind) Capabilities {
	switch k {
	case KindAutomaton:
		return Capabilities{Backend: "automaton", MonotonicOnly: true}
	case KindProbePlan:
		return Capabilities{Backend: "probeplan", CanRelease: true, CanExplain: true, Batch: true}
	default:
		return Capabilities{Backend: "rumap", CanRelease: true, CanExplain: true}
	}
}

// Selection identifies the per-tree option choices of one successful
// Check, so the reservation can be applied and (on backends that support
// it) later released. The embedded rumap.Selection carries the constraint,
// issue cycle, and chosen option indices for every backend; next is the
// automaton backend's successor state.
type Selection struct {
	rumap.Selection
	next int
}

// Conflict attributes one failed Check to the blocking resource slot and
// its HMDES provenance (see rumap.Conflict).
type Conflict = rumap.Conflict

// Checker answers issue-time resource-constraint probes for one borrowed
// context over one frozen compiled MDES. A Checker holds per-client
// mutable state and must not be used from more than one goroutine at a
// time; backends share read-only (or internally synchronized) structures
// across instances.
type Checker interface {
	// Check tests whether the constraint can be satisfied with the
	// operation issued at cycle issue, accounting one Attempt plus the
	// options and resource probes performed into c. Nothing is reserved
	// until Reserve is called with the returned Selection. A Selection
	// stays valid until the checker's next Reset (arena-backed backends
	// recycle selection storage there); callers must not retain one
	// across Resets.
	Check(con *lowlevel.Constraint, issue int, c *stats.Counters) (Selection, bool)
	// Reserve applies a successful Selection.
	Reserve(sel Selection)
	// Release undoes a previous Reserve. Backends with
	// Capabilities.CanRelease == false panic.
	Release(sel Selection)
	// Reset clears all reservations, retaining storage.
	Reset()
	// Explain attributes a failed Check to its blocking resource slot; it
	// runs only on the observability slow path and performs no
	// accounting. Backends with Capabilities.CanExplain == false report
	// found == false.
	Explain(con *lowlevel.Constraint, issue int) (Conflict, bool)
	// Capabilities reports what this backend supports.
	Capabilities() Capabilities
}

// BatchProber is the optional multi-cycle probing capability: backends
// whose Capabilities report Batch == true also implement it. CheckWindow
// tests the half-open window of candidate issue cycles [lo, hi) in one
// pass and returns the first satisfiable cycle with its Selection. It is
// accounting-equivalent to calling Check at lo, lo+1, … and stopping at
// the first success — identical Attempts, OptionsChecked, ResourceChecks
// and Conflicts — so batch and serial scheduling produce byte-identical
// schedules and metrics.
type BatchProber interface {
	CheckWindow(con *lowlevel.Constraint, lo, hi int, c *stats.Counters) (Selection, int, bool)
}

// Factory builds per-context Checker instances of one Kind for one frozen
// compiled MDES, owning whatever state the backend shares across contexts
// (the automaton's memoized DFA). One Factory serves any number of
// concurrent contexts.
type Factory struct {
	kind Kind
	mdes *lowlevel.MDES

	// shared is the lazily-populated DFA every automaton checker walks.
	shared *automata.Shared
	// classOf maps constraint pointers back to their index (the
	// automaton's class alphabet).
	classOf map[*lowlevel.Constraint]int
	// plan is the flat probe program every probe-plan checker walks.
	plan *probeplan.Plan
}

// NewFactory validates that the backend can drive the compiled description
// and returns a factory for it. The automaton backend requires at most 64
// resources and non-negative usage times (run the usage-time shift first),
// exactly as the §10 construction assumes; the probe-plan backend requires
// a description whose constraints carry their compiled indices (hand-built
// or sliced views cannot be planned).
func NewFactory(m *lowlevel.MDES, kind Kind) (*Factory, error) {
	f := &Factory{kind: kind, mdes: m}
	switch kind {
	case KindAutomaton:
		sh, err := automata.NewShared(m)
		if err != nil {
			return nil, err
		}
		f.shared = sh
		f.classOf = make(map[*lowlevel.Constraint]int, len(m.Constraints))
		for i, con := range m.Constraints {
			f.classOf[con] = i
		}
	case KindProbePlan:
		plan, err := probeplan.Compile(m)
		if err != nil {
			return nil, err
		}
		f.plan = plan
	}
	return f, nil
}

// Kind returns the backend the factory builds.
func (f *Factory) Kind() Kind { return f.kind }

// Capabilities returns the capability report of the factory's backend.
func (f *Factory) Capabilities() Capabilities { return Caps(f.kind) }

// New returns a fresh per-context checker instance.
func (f *Factory) New() Checker {
	switch f.kind {
	case KindAutomaton:
		return &Automaton{shared: f.shared, classOf: f.classOf}
	case KindProbePlan:
		return NewProbePlan(f.plan)
	default:
		return NewRUMap(f.mdes.NumResources)
	}
}
