package check

import (
	"strings"
	"testing"

	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/stats"
)

// tinySrc is automaton-eligible: few resources, all usage times >= 0.
const tinySrc = `
machine Tiny {
    resource Decoder[2];
    resource ALU;

    class alu {
        use ALU @ 0;
        one_of Decoder[0..1] @ 0;
    }
    operation ADD class alu latency 1;
}
`

// negSrc uses a negative usage time, which the automaton construction
// rejects until the usage-time shift has run.
const negSrc = `
machine Neg {
    resource Decoder[2];
    resource ALU;

    class alu {
        use ALU @ 0;
        one_of Decoder[0..1] @ -1;
    }
    operation ADD class alu latency 1;
}
`

func compile(t *testing.T, src string) *lowlevel.MDES {
	t.Helper()
	m, err := hmdes.Load("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return lowlevel.Compile(m, lowlevel.FormAndOr)
}

func TestCapabilityMatrix(t *testing.T) {
	ru := Caps(KindRUMap)
	if !ru.CanRelease || !ru.CanExplain || ru.MonotonicOnly || ru.Modulo {
		t.Fatalf("rumap caps = %+v", ru)
	}
	au := Caps(KindAutomaton)
	if au.CanRelease || au.CanExplain || !au.MonotonicOnly {
		t.Fatalf("automaton caps = %+v", au)
	}
	mm := NewModulo(4, 3).Capabilities()
	if !mm.CanRelease || !mm.CanExplain || !mm.Modulo {
		t.Fatalf("modmap caps = %+v", mm)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bitmap"); err == nil {
		t.Fatalf("ParseKind accepted unknown backend")
	}
}

func TestFactoryRejectsIneligibleAutomaton(t *testing.T) {
	ll := compile(t, negSrc)
	if _, err := NewFactory(ll, KindAutomaton); err == nil {
		t.Fatalf("automaton factory accepted negative usage times")
	}
	// The same description is fine for the default backend.
	if _, err := NewFactory(ll, KindRUMap); err != nil {
		t.Fatal(err)
	}
}

// Both backends must agree through the Checker interface on a machine
// with a real structural hazard: Tiny has 2 decoders and 1 ALU, so two
// ADDs fit in a cycle only if the ALU were free — it is not, so the
// second probe at the same cycle must fail on both backends.
func TestBackendsAgreeThroughInterface(t *testing.T) {
	ll := compile(t, tinySrc)
	con := ll.Constraints[0]

	for _, kind := range Kinds() {
		f, err := NewFactory(ll, kind)
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind() != kind || f.Capabilities().Backend != Caps(kind).Backend {
			t.Fatalf("factory identity mismatch for %s", kind)
		}
		ck := f.New()
		ck.Reset()
		var c stats.Counters

		sel, ok := ck.Check(con, 0, &c)
		if !ok {
			t.Fatalf("%s: first issue at 0 failed", kind)
		}
		ck.Reserve(sel)
		if _, ok := ck.Check(con, 0, &c); ok {
			t.Fatalf("%s: ALU double-booked at cycle 0", kind)
		}
		if _, ok := ck.Check(con, 1, &c); !ok {
			t.Fatalf("%s: issue at 1 failed after ALU freed", kind)
		}
		if c.Attempts != 3 || c.Conflicts != 1 {
			t.Fatalf("%s: counters %+v", kind, c)
		}
	}
}

func TestAutomatonReleasePanics(t *testing.T) {
	ll := compile(t, tinySrc)
	f, err := NewFactory(ll, KindAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	ck := f.New()
	ck.Reset()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Release did not panic")
		}
		if !strings.Contains(r.(string), "cannot release") {
			t.Fatalf("panic = %v", r)
		}
	}()
	ck.Release(Selection{})
}

func TestAutomatonMonotonicPanics(t *testing.T) {
	ll := compile(t, tinySrc)
	f, err := NewFactory(ll, KindAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	ck := f.New()
	ck.Reset()
	var c stats.Counters
	if _, ok := ck.Check(ll.Constraints[0], 3, &c); !ok {
		t.Fatalf("probe at 3 failed on empty window")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("probe behind the cursor did not panic")
		}
	}()
	ck.Check(ll.Constraints[0], 1, &c)
}

func TestAutomatonExplainFindsNothing(t *testing.T) {
	ll := compile(t, tinySrc)
	f, err := NewFactory(ll, KindAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	ck := f.New()
	if _, found := ck.Explain(ll.Constraints[0], 0); found {
		t.Fatalf("automaton claimed conflict provenance")
	}
}

func TestModuloConfigurePanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Configure(0) did not panic")
		}
	}()
	NewModulo(4, 2).Configure(0)
}
