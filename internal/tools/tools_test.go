package tools

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func runTool(t *testing.T, fn func([]string, *bytes.Buffer) error, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(args, &buf); err != nil {
		t.Fatalf("args %v: %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func mdc(args []string, buf *bytes.Buffer) error        { return RunMDC(args, buf) }
func mdinfo(args []string, buf *bytes.Buffer) error     { return RunMDInfo(args, buf) }
func schedbench(args []string, buf *bytes.Buffer) error { return RunSchedbench(args, buf) }
func mdviz(args []string, buf *bytes.Buffer) error      { return RunMDViz(args, buf) }

func TestMDCBasic(t *testing.T) {
	out := runTool(t, mdc, "-m", "supersparc", "-form", "andor", "-level", "full")
	for _, want := range []string{"machine SuperSPARC", "eliminate-redundant", "size reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMDCEmit(t *testing.T) {
	out := runTool(t, mdc, "-m", "pa7100", "-emit")
	if !strings.Contains(out, "machine PA7100 {") || !strings.Contains(out, "bypass FMUL to FADD") {
		t.Fatalf("emit output:\n%s", out)
	}
}

func TestMDCDump(t *testing.T) {
	out := runTool(t, mdc, "-m", "pa7100", "-level", "none", "-dump")
	if !strings.Contains(out, "class mem") {
		t.Fatalf("dump output:\n%s", out)
	}
}

func TestMDCFactorAndOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k5.lmdes")
	out := runTool(t, mdc, "-m", "k5", "-form", "or", "-level", "full", "-factor", "-o", path)
	if !strings.Contains(out, "treesFactored=") || !strings.Contains(out, "verified") {
		t.Fatalf("factor/output missing:\n%s", out)
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("binary not written: %v", err)
	}
}

func TestMDCErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMDC([]string{"-m", "vax"}, &buf); err == nil {
		t.Fatalf("unknown machine accepted")
	}
	if err := RunMDC([]string{"-m", "k5", "-form", "weird"}, &buf); err == nil {
		t.Fatalf("bad form accepted")
	}
	if err := RunMDC([]string{"-m", "k5", "-level", "11"}, &buf); err == nil {
		t.Fatalf("bad level accepted")
	}
	if err := RunMDC([]string{"-m", "k5", "-dir", "sideways"}, &buf); err == nil {
		t.Fatalf("bad direction accepted")
	}
	if err := RunMDC([]string{"-bogusflag"}, &buf); err == nil {
		t.Fatalf("bad flag accepted")
	}
}

func TestMDInfoStatic(t *testing.T) {
	out := runTool(t, mdinfo, "-m", "supersparc")
	for _, want := range []string{"machine SuperSPARC", "Decoder", "ialu1", "ialu1_casc"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMDInfoSched(t *testing.T) {
	out := runTool(t, mdinfo, "-m", "pa7100", "-sched", "-ops", "2000")
	if !strings.Contains(out, "% Attempts") || !strings.Contains(out, "attempts/op") {
		t.Fatalf("sched output:\n%s", out)
	}
}

func TestMDInfoCustomFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mdes")
	src := `machine F { resource R; class c { use R @ 0; } operation X class c; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, mdinfo, "-in", path)
	if !strings.Contains(out, "machine F") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMDInfoErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMDInfo([]string{"-in", "/nonexistent.mdes"}, &buf); err == nil {
		t.Fatalf("missing file accepted")
	}
	if err := RunMDInfo([]string{"-in", "x", "-sched"}, &buf); err == nil {
		t.Fatalf("-sched with -in accepted")
	}
}

func TestSchedbenchSingleTables(t *testing.T) {
	for _, table := range []string{"1", "5", "6", "8", "14"} {
		out := runTool(t, schedbench, "-table", table, "-ops", "1500")
		if !strings.Contains(out, "Table "+table) {
			t.Errorf("table %s output:\n%s", table, out)
		}
	}
}

func TestSchedbenchFig2(t *testing.T) {
	out := runTool(t, schedbench, "-fig2", "-ops", "1500")
	if !strings.Contains(out, "Figure 2") {
		t.Fatalf("fig2 output:\n%s", out)
	}
}

func TestSchedbenchBadTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RunSchedbench([]string{"-table", "99"}, &buf); err == nil {
		t.Fatalf("table 99 accepted")
	}
}

func TestMDVizForms(t *testing.T) {
	or := runTool(t, mdviz, "-m", "supersparc", "-class", "load", "-form", "or")
	if !strings.Contains(or, "Option 6:") {
		t.Fatalf("or render:\n%s", or)
	}
	ao := runTool(t, mdviz, "-m", "supersparc", "-class", "load", "-form", "andor")
	if !strings.Contains(ao, "AND of") {
		t.Fatalf("andor render:\n%s", ao)
	}
}

func TestMDVizShiftAndSort(t *testing.T) {
	out := runTool(t, mdviz, "-m", "supersparc", "-class", "load", "-form", "or", "-shift")
	if !strings.Contains(out, "class load") {
		t.Fatalf("shift render:\n%s", out)
	}
	out = runTool(t, mdviz, "-m", "supersparc", "-class", "ialu2", "-form", "andor", "-sort")
	if !strings.Contains(out, "class ialu2") {
		t.Fatalf("sort render:\n%s", out)
	}
}

func TestMDVizShare(t *testing.T) {
	out := runTool(t, mdviz, "-m", "supersparc", "-share")
	if !strings.Contains(out, "AnyDecoder") || !strings.Contains(out, "shared by") {
		t.Fatalf("share output:\n%s", out)
	}
}

func TestMDVizErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMDViz([]string{"-m", "supersparc"}, &buf); err == nil {
		t.Fatalf("missing -class accepted")
	}
	if err := RunMDViz([]string{"-m", "supersparc", "-class", "nope"}, &buf); err == nil {
		t.Fatalf("unknown class accepted")
	}
}

func TestSchedbenchExtensions(t *testing.T) {
	out := runTool(t, schedbench, "-ext", "-ops", "1500")
	for _, want := range []string{"factorization", "automaton", "Eichenberger", "modulo"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in extensions report:\n%s", want, out)
		}
	}
}

// The default invocation regenerates everything (small workload).
func TestSchedbenchFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	out := runTool(t, schedbench, "-ops", "1200")
	for n := 1; n <= 15; n++ {
		if !strings.Contains(out, "Table "+itoa(n)) {
			t.Errorf("missing Table %d", n)
		}
	}
	if !strings.Contains(out, "Figure 2") {
		t.Errorf("missing Figure 2")
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestMDVizCustomFileAndBadForm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mdes")
	src := `machine V { resource R[2]; class c { one_of R[0..1] @ 0; } operation X class c; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, mdviz, "-in", path, "-class", "c", "-form", "or")
	if !strings.Contains(out, "Option 2:") {
		t.Fatalf("custom render:\n%s", out)
	}
	var buf bytes.Buffer
	if err := RunMDViz([]string{"-in", path, "-class", "c", "-form", "banana"}, &buf); err == nil {
		t.Fatalf("bad form accepted")
	}
	if err := RunMDViz([]string{"-m", "vax"}, &buf); err == nil {
		t.Fatalf("unknown machine accepted")
	}
}

func TestSchedbenchObserve(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	out := runTool(t, schedbench,
		"-machine", "k5", "-ops", "1700",
		"-trace", trace, "-metrics", "127.0.0.1:0", "-report")
	for _, want := range []string{
		"serving http://127.0.0.1:",
		"trace written to",
		"Per-phase scheduling metrics",
		"Conflicts by blocking resource",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in observe output:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines < 100 {
		t.Fatalf("trace has %d block records, want >= 100 at -ops 1700", lines)
	}
}

func TestMDInfoStats(t *testing.T) {
	out := runTool(t, mdinfo, "-m", "k5", "-stats", "-ops", "1500")
	for _, want := range []string{"Per-phase scheduling metrics", "Hottest opcode classes", "rop1_alu"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -stats output:\n%s", want, out)
		}
	}
}

func mdreport(args []string, buf *bytes.Buffer) error { return RunMDReport(args, buf) }

func TestMDReportSingleMachine(t *testing.T) {
	out := runTool(t, mdreport, "-m", "k5", "-ops", "2000")
	for _, want := range []string{
		"mdreport: k5", "Translator ledger", "Size grid",
		"Table 5", "Table 7", "Table 8", "Table 9", "Table 10", "Table 11", "Table 12",
		"budget quantities",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMDReportJSONAndArtifacts(t *testing.T) {
	dir := t.TempDir()
	out := runTool(t, mdreport, "-m", "pa7100", "-ops", "2000", "-json", "-out", dir)
	if !strings.Contains(out, `"machine": "pa7100"`) || !strings.Contains(out, `"ledgers"`) {
		t.Fatalf("JSON output:\n%s", out)
	}
	if st, err := os.Stat(filepath.Join(dir, "pa7100.json")); err != nil || st.Size() == 0 {
		t.Fatalf("artifact not written: %v", err)
	}
}

func TestMDReportBudgetGate(t *testing.T) {
	dir := t.TempDir()
	budgets := filepath.Join(dir, "budgets.json")

	// Seed budgets from a measurement, then check against them: passes.
	runTool(t, mdreport, "-m", "k5", "-ops", "2000", "-seed-budgets", budgets)
	out := runTool(t, mdreport, "-m", "k5", "-ops", "2000", "-check", budgets)
	if !strings.Contains(out, "within") {
		t.Fatalf("seeded check output:\n%s", out)
	}

	// Inject a regression: a budget below the measurement must fail.
	if err := os.WriteFile(budgets, []byte(`{"k5": {"max_bytes": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := RunMDReport([]string{"-m", "k5", "-ops", "2000", "-check", budgets}, &buf)
	if err == nil || !strings.Contains(err.Error(), "budget violation") {
		t.Fatalf("tightened budget did not fail: err=%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "BUDGET EXCEEDED") {
		t.Fatalf("no violation line in:\n%s", buf.String())
	}
}

func TestMDReportSourceFile(t *testing.T) {
	// Non-builtin machines get the size grid and ledgers but no
	// scheduling tables (the deterministic workload is builtin-keyed).
	dir := t.TempDir()
	src := filepath.Join(dir, "tiny.mdes")
	tiny := `machine F { resource R; class c { use R @ 0; } operation X class c; }`
	if err := os.WriteFile(src, []byte(tiny), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, mdreport, "-in", src)
	if !strings.Contains(out, "mdreport: tiny (builtin=false") ||
		!strings.Contains(out, "Size grid") {
		t.Fatalf("source-file report:\n%s", out)
	}
	if strings.Contains(out, "Table 5") {
		t.Fatalf("non-builtin report has scheduling tables:\n%s", out)
	}
}

func TestMDInfoOptLedger(t *testing.T) {
	out := runTool(t, mdinfo, "-m", "k5", "-opt", "full")
	if !strings.Contains(out, "Translator ledger") || !strings.Contains(out, "redundancy/eliminate-redundant") {
		t.Fatalf("mdinfo -opt output:\n%s", out)
	}
}

func TestSchedbenchReportHasTranslatorSection(t *testing.T) {
	out := runTool(t, schedbench, "-machine", "k5", "-ops", "2000", "-report")
	if !strings.Contains(out, "Translator ledger") {
		t.Fatalf("schedbench -report lacks translator section:\n%s", out)
	}
}

func TestSchedbenchFlight(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(dir, "flight.json")
	out := runTool(t, schedbench, "-machine", "k5", "-ops", "1700", "-flightdump", dump)
	if !strings.Contains(out, "flight recorder:") || !strings.Contains(out, "blocks merged") {
		t.Errorf("missing flight summary in output:\n%s", out)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Machine     string `json:"machine"`
		MachineHash string `json:"machine_hash"`
		Blocks      int64  `json:"blocks"`
		Quantiles   []struct {
			Phase string  `json:"phase"`
			P999  float64 `json:"p999"`
		} `json:"quantiles"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("flight dump does not parse: %v\n%s", err, data)
	}
	if snap.Machine != "K5" || len(snap.MachineHash) != 16 {
		t.Errorf("dump meta = %q / %q", snap.Machine, snap.MachineHash)
	}
	if snap.Blocks < 100 {
		t.Errorf("flight merged %d blocks, want >= 100 at -ops 1700", snap.Blocks)
	}
	if len(snap.Quantiles) == 0 {
		t.Error("flight dump has no quantile summaries")
	}
}

func TestSchedbenchBenchJSONStamps(t *testing.T) {
	if testing.Short() {
		t.Skip("benchjson runs every machine x checker")
	}
	dir := t.TempDir()
	runTool(t, schedbench, "-ops", "400", "-benchjson", dir)
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no BENCH artifacts written (err %v)", err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Schema      string `json:"schema"`
		MachineHash string `json:"machine_hash"`
		Commit      string `json:"commit"`
		GeneratedAt string `json:"generated_at"`
		Machine     string `json:"machine"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("%s does not parse: %v", files[0], err)
	}
	if art.Schema != "mdes-bench/v2" {
		t.Errorf("schema = %q", art.Schema)
	}
	if len(art.MachineHash) != 16 {
		t.Errorf("machine_hash = %q", art.MachineHash)
	}
	if art.Commit == "" {
		t.Error("commit stamp empty")
	}
	if _, err := time.Parse(time.RFC3339, art.GeneratedAt); err != nil {
		t.Errorf("generated_at %q: %v", art.GeneratedAt, err)
	}
}

func mdtrace(args []string, buf *bytes.Buffer) error { return RunMdtrace(args, buf) }

func TestMdtraceRecordDumpReplayDiff(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "k5.mdtr")
	out := runTool(t, mdtrace, "record",
		"-machine", "k5", "-checker", "rumap", "-ops", "1200", "-o", tr)
	if !strings.Contains(out, "recorded") || !strings.Contains(out, "trace id") {
		t.Fatalf("record output:\n%s", out)
	}

	out = runTool(t, mdtrace, "dump", "-blocks", "2", tr)
	for _, want := range []string{"trace id:", "machine:      k5", "workload:     seeded", "block    0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, mdtrace, "replay", tr)
	if !strings.Contains(out, "byte-identically") {
		t.Fatalf("replay output:\n%s", out)
	}

	// Cross-backend replay: a different checker must produce the same
	// schedules (the paper's backends are semantically equivalent).
	out = runTool(t, mdtrace, "replay", "-checker", "probeplan", tr)
	if !strings.Contains(out, "byte-identically") {
		t.Fatalf("cross-backend replay output:\n%s", out)
	}

	out = runTool(t, mdtrace, "diff", tr, tr)
	if !strings.Contains(out, "identical recordings") {
		t.Fatalf("diff output:\n%s", out)
	}

	// A trace of a different workload diffs non-identically and errors.
	tr2 := filepath.Join(dir, "k5b.mdtr")
	runTool(t, mdtrace, "record",
		"-machine", "k5", "-checker", "rumap", "-ops", "1200", "-seed", "7", "-o", tr2)
	var buf bytes.Buffer
	if err := RunMdtrace([]string{"diff", tr, tr2}, &buf); err == nil {
		t.Fatalf("diff of different traces succeeded:\n%s", buf.String())
	}
}

func TestMdtraceInlineRecordReplay(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "ss.mdtr")
	runTool(t, mdtrace, "record",
		"-machine", "supersparc", "-ops", "600", "-inline", "-o", tr)
	out := runTool(t, mdtrace, "dump", tr)
	if !strings.Contains(out, "workload:     inline") {
		t.Fatalf("dump of inline trace:\n%s", out)
	}
	out = runTool(t, mdtrace, "replay", tr)
	if !strings.Contains(out, "byte-identically") {
		t.Fatalf("inline replay output:\n%s", out)
	}
}

func TestMdtraceErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMdtrace(nil, &buf); err == nil {
		t.Error("no command succeeded")
	}
	if err := RunMdtrace([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown command succeeded")
	}
	if err := RunMdtrace([]string{"record"}, &buf); err == nil {
		t.Error("record without -o succeeded")
	}
	if err := RunMdtrace([]string{"replay", "/nonexistent.mdtr"}, &buf); err == nil {
		t.Error("replay of missing file succeeded")
	}
	// A corrupt file must be rejected by the trailer hash.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mdtr")
	if err := os.WriteFile(bad, []byte("MDTRgarbagegarbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := RunMdtrace([]string{"dump", bad}, &buf); err == nil || !strings.Contains(err.Error(), "trailer hash") {
		t.Errorf("corrupt trace: err = %v", err)
	}
}
