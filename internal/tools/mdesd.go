package tools

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdes/internal/check"
	"mdes/internal/cli"
	"mdes/internal/server"
)

// RunMDesd runs the mdesd daemon until SIGINT/SIGTERM, then shuts down
// gracefully: sheds new requests, finishes in-flight ones, drains every
// description version.
func RunMDesd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mdesd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr     = fs.String("addr", "127.0.0.1:7077", "listen address (host:port; :0 picks a free port)")
		cacheDir = fs.String("cachedir", "", "compiled-description cache directory (empty: no cache)")
		cacheMax = fs.Int64("cache-max", 0, "cache size limit in bytes (0: unbounded)")
		checker  = fs.String("checker", "probeplan", "conflict checker backend (rumap, automaton, probeplan, ...)")
		inflight = fs.Int("max-inflight", 0, "per-tenant concurrent schedule requests (0: default 32)")
		queue    = fs.Int("queue-depth", 0, "per-tenant admission queue depth (0: default 64)")
		timeout  = fs.Duration("timeout", 0, "per-request admission+scheduling timeout (0: default 10s)")
		bodyMax  = fs.Int64("body-max", 0, "request body cap in bytes (0: default 8MiB)")
		par      = fs.Int("parallelism", 0, "goroutines per schedule batch (0: default 1)")
		grace    = fs.Duration("grace", 15*time.Second, "shutdown grace period")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := check.ParseKind(*checker)
	if err != nil {
		return fmt.Errorf("%w\n%s", err, cli.FormatCheckerKinds())
	}
	cfg := server.Config{
		CacheDir:            *cacheDir,
		CacheMax:            *cacheMax,
		Checker:             kind,
		MaxInFlight:         *inflight,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		MaxBodyBytes:        *bodyMax,
		ScheduleParallelism: *par,
	}
	d, err := server.Start(*addr, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mdesd: serving on http://%s (checker=%s cache=%q)\n", d.Addr, kind, *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	fmt.Fprintf(out, "mdesd: %s received, draining (grace %s)\n", s, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "mdesd: drained, bye")
	return nil
}
