package tools

import (
	"context"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mdes"
	"mdes/internal/cli"
	"mdes/internal/descache"
	"mdes/internal/experiments"
	"mdes/internal/machines"
	"mdes/internal/textutil"
	"mdes/internal/workload"
)

// RunMDInfo is the mdinfo tool: inspect a machine description's
// resources, classes, operations, and option breakdown (optionally with
// scheduled-attempt attribution).
func RunMDInfo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdinfo", flag.ContinueOnError)
	fs.SetOutput(stdout)

	var (
		machineFlag = fs.String("m", "", "built-in machine name")
		inFlag      = fs.String("in", "", "path to a high-level MDES source file")
		schedFlag   = fs.Bool("sched", false, "run the synthetic workload to attribute scheduling attempts (built-in machines only)")
		statsFlag   = fs.Bool("stats", false, "run the synthetic workload under the observability layer and print the metrics tables (built-in machines only)")
		optFlag     = fs.String("opt", "", "optimization level (none|redundancy|bit-vector|time-shift|full): print the translator's per-pass ledger; with -stats, included in the metrics report")
		opsFlag     = fs.Int("ops", 20000, "workload size for -sched/-stats")
		seedFlag    = fs.Int64("seed", 1996, "workload seed for -sched/-stats")
		checkerFlag = fs.String("checker", "rumap", "conflict-checker backend for -stats: rumap, automaton or probeplan")
		cacheFlag   = fs.String("cache", "", "list and checksum-verify a compiled-description cache directory instead of inspecting a machine")
		cacheGCFlag = fs.Bool("cache-gc", false, "with -cache: evict least-recently-used entries until the directory fits -cache-max")
		cacheMaxFlg = fs.Int64("cache-max", 0, "with -cache-gc: LRU byte budget for the cache directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Cache mode stands alone: it inspects a cache directory, not a machine.
	if *cacheFlag != "" {
		return runCacheInfo(stdout, *cacheFlag, *cacheGCFlag, *cacheMaxFlg)
	}

	m, err := cli.LoadMachine(*machineFlag, *inFlag)
	if err != nil {
		return err
	}

	level := mdes.LevelFull
	if *optFlag != "" {
		if level, err = cli.ParseLevel(*optFlag); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "machine %s: %d resources, %d shared trees, %d classes, %d operations\n\n",
		m.Name, m.Resources.Len(), len(m.TreeNames), len(m.ClassNames), len(m.OpNames))

	rt := textutil.NewTable("Resource", "Instances")
	groups := map[string]int{}
	var order []string
	for i := 0; i < m.Resources.Len(); i++ {
		g := m.Resources.Group(i)
		if groups[g] == 0 {
			order = append(order, g)
		}
		groups[g]++
	}
	for _, g := range order {
		rt.Row(g, groups[g])
	}
	fmt.Fprintln(stdout, rt.String())

	ot := textutil.NewTable("Operation", "Class", "Options", "Cascaded", "Latency")
	for _, name := range m.OpNames {
		op := m.Operations[name]
		casc := "-"
		if op.Cascaded != "" {
			casc = fmt.Sprintf("%s (%d)", op.Cascaded, m.Classes[op.Cascaded].OptionCount())
		}
		ot.Row(name, op.Class, m.Classes[op.Class].OptionCount(), casc, op.Latency)
	}
	fmt.Fprintln(stdout, ot.String())

	if *statsFlag {
		if *machineFlag == "" {
			return fmt.Errorf("-stats requires a built-in machine (-m)")
		}
		name := machines.Name(strings.ToLower(*machineFlag))
		compiled := mdes.Compile(m, mdes.FormAndOr)
		led, _ := mdes.OptimizeWithLedger(compiled, level, mdes.Forward)
		led.Machine = m.Name
		metrics := mdes.NewMetrics(compiled)
		if *optFlag != "" {
			// The ledger rides along in the registry, so FormatMetrics
			// prints it ahead of the runtime tables.
			metrics.SetTranslator(led)
		}
		kind, err := mdes.ParseCheckerKind(*checkerFlag)
		if err != nil {
			fmt.Fprintf(stdout, "unknown checker %q\n%s", *checkerFlag, cli.FormatCheckerKinds())
			return nil
		}
		eng, err := mdes.NewEngine(compiled, mdes.WithMetrics(metrics), mdes.WithChecker(kind))
		if err != nil {
			return err
		}
		prog, err := workload.Generate(workload.Config{Machine: name, NumOps: *opsFlag, Seed: *seedFlag})
		if err != nil {
			return err
		}
		if _, _, err := eng.ScheduleBlocks(context.Background(), prog.Blocks, 0); err != nil {
			return err
		}
		fmt.Fprintln(stdout, mdes.FormatMetrics(metrics))
		return nil
	}

	if *schedFlag {
		if *machineFlag == "" {
			return (fmt.Errorf("-sched requires a built-in machine (-m)"))
		}
		name := machines.Name(strings.ToLower(*machineFlag))
		rows, res, err := experiments.Breakdown(name, experiments.Params{NumOps: *opsFlag, Seed: *seedFlag})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatBreakdown(name, rows))
		fmt.Fprintf(stdout, "scheduled %d ops, %.2f attempts/op\n", res.TotalOps, res.AttemptsPerOp())
		return nil
	}

	if *optFlag != "" {
		// Ledger-only mode: compile at the requested level and print the
		// per-pass ledger (works for -in machines too).
		compiled := mdes.Compile(m, mdes.FormAndOr)
		led, _ := mdes.OptimizeWithLedger(compiled, level, mdes.Forward)
		led.Machine = m.Name
		fmt.Fprintln(stdout, mdes.FormatLedger(led))
		return nil
	}

	// Static breakdown without scheduling.
	bd := machines.OptionBreakdown(m)
	return staticBreakdown(stdout, bd)
}

func staticBreakdown(stdout io.Writer, bd map[int][]string) error {
	var counts []int
	for n := range bd {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	bt := textutil.NewTable("Options", "Classes")
	for _, n := range counts {
		bt.Row(n, strings.Join(bd[n], " "))
	}
	fmt.Fprintln(stdout, bt.String())
	return nil
}

// runCacheInfo is mdinfo's cache mode: list a compiled-description cache
// directory with every entry checksum-verified, optionally enforcing an
// LRU byte budget first. Corrupt entries are listed (status "CORRUPT")
// and make the run fail, so `mdinfo -cache dir` doubles as the CI cache
// health check.
func runCacheInfo(stdout io.Writer, dir string, gc bool, maxBytes int64) error {
	store, err := descache.Open(dir, maxBytes)
	if err != nil {
		return err
	}
	if gc {
		if maxBytes <= 0 {
			return fmt.Errorf("-cache-gc requires a positive -cache-max budget")
		}
		evicted, freed, err := store.GC()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "gc: evicted %d entries, freed %d bytes (budget %d)\n\n",
			len(evicted), freed, maxBytes)
		for _, name := range evicted {
			fmt.Fprintf(stdout, "  evicted %s\n", name)
		}
		if len(evicted) > 0 {
			fmt.Fprintln(stdout)
		}
	}
	infos, err := store.List(true)
	if err != nil {
		return err
	}
	var total int64
	corrupt := 0
	t := textutil.NewTable("Key", "Machine", "Form", "Level", "Size", "Age", "Tuned", "Status")
	for _, in := range infos {
		total += in.Size
		status := "ok"
		if in.Err != nil {
			status = "CORRUPT"
			corrupt++
		}
		tuned := "-"
		if in.Tuned {
			tuned = "yes"
		}
		t.Row(cacheEntryKey(in.Name), in.Machine, in.Form, cacheEntryLevel(in.Name),
			in.Size, cacheAge(in.ModTime), tuned, status)
	}
	fmt.Fprintln(stdout, t.String())
	fmt.Fprintf(stdout, "%d entries, %d bytes total\n", len(infos), total)
	if corrupt > 0 {
		return fmt.Errorf("%d corrupt cache entries (checksum or structural validation failed)", corrupt)
	}
	return nil
}

// cacheEntryKey renders an entry filename as its short key: the hash plus
// a tuned marker, without the redundant form/level (they get columns).
func cacheEntryKey(name string) string {
	name = strings.TrimSuffix(name, ".mdar")
	if i := strings.Index(name, ".tuned-"); i >= 0 {
		name = name[:i]
	}
	parts := strings.SplitN(name, "-", 3)
	if len(parts) >= 2 {
		return parts[0] + "-" + parts[1]
	}
	return name
}

// cacheEntryLevel extracts the optimization-level component of an entry
// name ("a4-<hash>-<form>-<level>[-flags][.tuned-...].mdar").
func cacheEntryLevel(name string) string {
	name = strings.TrimSuffix(name, ".mdar")
	if i := strings.Index(name, ".tuned-"); i >= 0 {
		name = name[:i]
	}
	parts := strings.Split(name, "-")
	if len(parts) < 4 {
		return "?"
	}
	return strings.Join(parts[3:], "-")
}

// cacheAge renders an entry's age coarsely — listings care about LRU
// order, not precision.
func cacheAge(mod time.Time) string {
	d := time.Since(mod)
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 48*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd", int(d.Hours()/24))
	}
}
