package tools

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdes"
	"mdes/internal/machines"
	"mdes/internal/server"
	"mdes/internal/workload"
	"mdes/sdk/mdesclient"
)

// soakConfig parameterizes the schedbench -serve soak mode.
type soakConfig struct {
	// target is the daemon base URL, or "self" to start an in-process
	// daemon for the soak's lifetime.
	target   string
	duration time.Duration
	tenants  int
	clients  int // concurrent clients per tenant
	numOps   int // static ops per scheduled batch
	floor    float64
	swap     bool // hot-swap every tenant's description mid-soak
	faults   bool // inject protocol/content faults during the soak
	out      string
	seed     int64
}

// SoakFault is one injected fault's outcome in the report.
type SoakFault struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Detail explains what was observed (the structured error code, or
	// why the fault failed the gate).
	Detail string `json:"detail"`
}

// SoakReport is the JSON artifact of one soak run — what the CI
// serve-smoke job uploads and gates on.
type SoakReport struct {
	Target      string  `json:"target"`
	DurationSec float64 `json:"duration_sec"`
	Tenants     int     `json:"tenants"`
	Clients     int     `json:"clients_per_tenant"`

	Requests     int64   `json:"requests"`
	Blocks       int64   `json:"blocks"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	Floor        float64 `json:"floor"`

	Divergences      int64 `json:"divergences"`
	FingerprintViols int64 `json:"fingerprint_violations"`
	Swaps            int64 `json:"swaps"`
	ClientErrors     int64 `json:"client_errors"`

	Faults []SoakFault `json:"faults"`
	Pass   bool        `json:"pass"`
	// Reasons lists every gate the run failed.
	Reasons []string `json:"fail_reasons,omitempty"`
}

// soakTenant is one tenant's soak state: its workload, its local replay
// reference, and the fingerprints the daemon may legitimately answer
// with.
type soakTenant struct {
	name   string
	mach   machines.Name
	source string
	wire   []mdesclient.Block
	// issues is the local replay reference: the schedule every response
	// must reproduce, regardless of which description version served it.
	issues [][]int

	mu      sync.Mutex
	seen    map[string]int64 // fingerprint -> responses carrying it
	swapped bool             // the hot-swap completed; old fp no longer allowed for new requests
	oldFP   string
	newFP   string
}

// fingerprintViolations classifies the tenant's observed fingerprints
// after the load stops, when both legitimate fingerprints are known: any
// response carrying something other than the old or new description's
// fingerprint proves engine mixing. (Validating post-hoc avoids the
// benign race where a response carries the new fingerprint an instant
// before the swap controller publishes it.)
func (st *soakTenant) fingerprintViolations() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var n int64
	for fp, count := range st.seen {
		if fp != st.oldFP && fp != st.newFP {
			n += count
		}
	}
	return n
}

// runSoak is schedbench -serve: a multi-tenant soak against a live
// daemon, gated on a sustained blocks/s floor, zero schedule divergence
// versus local replay, zero fingerprint violations, and — with faults
// enabled — every injected fault degrading to a structured error with
// the daemon still serving afterwards.
func runSoak(stdout io.Writer, cfg soakConfig) error {
	target := cfg.target
	var daemon *server.Daemon
	if target == "self" {
		cacheDir, err := os.MkdirTemp("", "mdesd-soak-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(cacheDir)
		daemon, err = server.Start("127.0.0.1:0", server.Config{CacheDir: cacheDir})
		if err != nil {
			return err
		}
		defer daemon.Close()
		target = "http://" + daemon.Addr
		fmt.Fprintf(stdout, "soak: started in-process daemon at %s\n", target)
	}
	target = strings.TrimRight(target, "/")

	report := &SoakReport{
		Target:  target,
		Tenants: cfg.tenants,
		Clients: cfg.clients,
		Floor:   cfg.floor,
	}
	c := mdesclient.New(target)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("soak: daemon at %s unhealthy: %w", target, err)
	}

	// Prepare every tenant: upload, build the local replay reference.
	tenants := make([]*soakTenant, cfg.tenants)
	for i := range tenants {
		st, err := prepareSoakTenant(ctx, c, i, cfg)
		if err != nil {
			return fmt.Errorf("soak: tenant %d: %w", i, err)
		}
		tenants[i] = st
		fmt.Fprintf(stdout, "soak: tenant %s ready (%s, %d blocks/batch, fp %s)\n",
			st.name, st.mach, len(st.wire), st.oldFP)
	}

	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		requests atomic.Int64
		blocks   atomic.Int64
		diverged atomic.Int64
		fpViols  atomic.Int64
		cliErrs  atomic.Int64
	)
	worker := func(st *soakTenant) {
		defer wg.Done()
		wc := mdesclient.New(target)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Snapshot swap visibility BEFORE issuing, so the "new
			// requests carry the new fingerprint" assertion is sound.
			st.mu.Lock()
			postSwap := st.swapped
			st.mu.Unlock()
			resp, err := wc.Schedule(ctx, st.name, st.wire)
			if err != nil {
				cliErrs.Add(1)
				continue
			}
			requests.Add(1)
			blocks.Add(int64(len(resp.Results)))
			st.mu.Lock()
			st.seen[resp.Fingerprint]++
			oldFP := st.oldFP
			st.mu.Unlock()
			// A request issued after the swap completed must never be
			// served by the outgoing engine. (Whether the fingerprint is
			// legitimate at all is validated after the load stops, when
			// both fingerprints are known.)
			if postSwap && resp.Fingerprint == oldFP {
				fpViols.Add(1)
				continue
			}
			for i, r := range resp.Results {
				if i >= len(st.issues) || !equalInts(r.Issue, st.issues[i]) {
					diverged.Add(1)
					break
				}
			}
		}
	}
	start := time.Now()
	for _, st := range tenants {
		for w := 0; w < cfg.clients; w++ {
			wg.Add(1)
			go worker(st)
		}
	}

	// Mid-soak chaos: hot-swaps and fault injection run while the load
	// is live — that is the point of the harness.
	var swapErr, faultErr error
	if cfg.swap {
		time.Sleep(cfg.duration / 3)
		for _, st := range tenants {
			if err := hotSwapTenant(ctx, c, st); err != nil {
				swapErr = fmt.Errorf("soak: swap %s: %w", st.name, err)
				break
			}
			report.Swaps++
		}
	}
	if cfg.faults && swapErr == nil {
		report.Faults, faultErr = injectFaults(ctx, stdout, target, c)
	}

	remaining := cfg.duration - time.Since(start)
	if remaining > 0 {
		time.Sleep(remaining)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if swapErr != nil {
		return swapErr
	}
	if faultErr != nil {
		return faultErr
	}

	// After the load stops, swapped-out versions must drain.
	if cfg.swap {
		for _, st := range tenants {
			if err := awaitDrain(ctx, c, st, 5*time.Second); err != nil {
				report.Reasons = append(report.Reasons, err.Error())
			}
		}
	}

	for _, st := range tenants {
		fpViols.Add(st.fingerprintViolations())
	}

	report.DurationSec = elapsed.Seconds()
	report.Requests = requests.Load()
	report.Blocks = blocks.Load()
	report.BlocksPerSec = float64(report.Blocks) / elapsed.Seconds()
	report.Divergences = diverged.Load()
	report.FingerprintViols = fpViols.Load()
	report.ClientErrors = cliErrs.Load()

	if report.Divergences > 0 {
		report.Reasons = append(report.Reasons, fmt.Sprintf("%d schedule divergences vs local replay", report.Divergences))
	}
	if report.FingerprintViols > 0 {
		report.Reasons = append(report.Reasons, fmt.Sprintf("%d fingerprint violations", report.FingerprintViols))
	}
	if cfg.floor > 0 && report.BlocksPerSec < cfg.floor {
		report.Reasons = append(report.Reasons, fmt.Sprintf("throughput %.1f blocks/s below floor %.1f", report.BlocksPerSec, cfg.floor))
	}
	if report.Requests == 0 {
		report.Reasons = append(report.Reasons, "no request completed")
	}
	for _, f := range report.Faults {
		if !f.OK {
			report.Reasons = append(report.Reasons, fmt.Sprintf("fault %s: %s", f.Name, f.Detail))
		}
	}
	report.Pass = len(report.Reasons) == 0

	if cfg.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "soak: report written to %s\n", cfg.out)
	}

	fmt.Fprintf(stdout, "soak: %d requests, %d blocks in %.1fs = %.1f blocks/s (floor %.1f)\n",
		report.Requests, report.Blocks, report.DurationSec, report.BlocksPerSec, report.Floor)
	fmt.Fprintf(stdout, "soak: divergences=%d fingerprint_violations=%d client_errors=%d swaps=%d faults=%d\n",
		report.Divergences, report.FingerprintViols, report.ClientErrors, report.Swaps, len(report.Faults))
	if !report.Pass {
		return fmt.Errorf("soak: FAILED: %s", strings.Join(report.Reasons, "; "))
	}
	fmt.Fprintln(stdout, "soak: PASS")
	return nil
}

// prepareSoakTenant uploads tenant i's description and builds its local
// replay reference.
func prepareSoakTenant(ctx context.Context, c *mdesclient.Client, i int, cfg soakConfig) (*soakTenant, error) {
	mach := machines.All[i%len(machines.All)]
	source, err := machines.Source(mach)
	if err != nil {
		return nil, err
	}
	st := &soakTenant{
		name:   fmt.Sprintf("soak-%d", i),
		mach:   mach,
		source: source,
		seen:   make(map[string]int64),
	}
	up, err := c.Upload(ctx, st.name, mdesclient.UploadRequest{Source: source, Level: "full", Activate: true})
	if err != nil {
		return nil, fmt.Errorf("upload: %w", err)
	}
	st.oldFP = up.Fingerprint

	// Local replay: the same description, compiled in-process, schedules
	// the same workload; the daemon must agree byte for byte.
	prog, err := workload.Generate(workload.Config{Machine: mach, NumOps: cfg.numOps, Seed: cfg.seed + int64(i)})
	if err != nil {
		return nil, err
	}
	m, err := mdes.Load("soak.mdes", source)
	if err != nil {
		return nil, err
	}
	compiled := mdes.Compile(m, mdes.FormAndOr)
	mdes.Optimize(compiled, mdes.LevelFull)
	fp, err := compiled.Fingerprint()
	if err != nil {
		return nil, err
	}
	if fp != up.Fingerprint {
		return nil, fmt.Errorf("daemon fingerprint %s != local %s: not the same description", up.Fingerprint, fp)
	}
	eng, err := mdes.NewEngine(compiled, mdes.WithChecker(mdes.CheckerProbePlan))
	if err != nil {
		return nil, err
	}
	results, _, err := eng.ScheduleBlocks(ctx, prog.Blocks, 4)
	if err != nil {
		return nil, err
	}
	st.issues = make([][]int, len(results))
	for j, r := range results {
		st.issues[j] = r.Issue
	}
	st.wire = server.FromIR(prog.Blocks)
	return st, nil
}

// hotSwapTenant re-uploads the tenant's source at a different
// optimization level and activates it: a different compiled artifact
// (new fingerprint) with provably identical schedules — the
// level-invariance guarantee the verify harness enforces, exercised here
// over a live swap under load.
func hotSwapTenant(ctx context.Context, c *mdesclient.Client, st *soakTenant) error {
	up, err := c.Upload(ctx, st.name, mdesclient.UploadRequest{Source: st.source, Level: "none", Activate: true})
	if err != nil {
		return err
	}
	if up.Fingerprint == st.oldFP {
		return fmt.Errorf("swap produced the same fingerprint %s; nothing swapped", up.Fingerprint)
	}
	st.mu.Lock()
	st.newFP = up.Fingerprint
	st.swapped = true
	st.mu.Unlock()
	return nil
}

// awaitDrain waits for the tenant's swapped-out version to report
// retired + drained with zero in-flight requests.
func awaitDrain(ctx context.Context, c *mdesclient.Client, st *soakTenant, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		vs, err := c.Versions(ctx, st.name)
		if err != nil {
			return fmt.Errorf("tenant %s: versions: %w", st.name, err)
		}
		for _, v := range vs.Versions {
			if v.Fingerprint == st.oldFP && v.Retired && v.Drained && v.InFlight == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tenant %s: old version %s never drained", st.name, st.oldFP)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// injectFaults runs the chaos suite against a live daemon. Every fault
// must degrade to a structured error response (or a cut connection for
// protocol-level abuse) and the daemon must serve a full round trip
// afterwards.
func injectFaults(ctx context.Context, stdout io.Writer, target string, c *mdesclient.Client) ([]SoakFault, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("soak: bad target %q: %w", target, err)
	}
	hostport := u.Host

	var faults []SoakFault
	record := func(name string, ok bool, detail string) {
		faults = append(faults, SoakFault{Name: name, OK: ok, Detail: detail})
		status := "ok"
		if !ok {
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "soak: fault %-22s %-4s %s\n", name, status, detail)
	}
	expectAPIError := func(name string, err error, status int, code string) {
		if err == nil {
			record(name, false, "accepted instead of rejected")
			return
		}
		apiErr, ok := err.(*mdesclient.APIError)
		if !ok {
			record(name, false, fmt.Sprintf("unstructured error: %v", err))
			return
		}
		if apiErr.Status != status || apiErr.Code != code {
			record(name, false, fmt.Sprintf("got %d/%s, want %d/%s", apiErr.Status, apiErr.Code, status, code))
			return
		}
		record(name, true, fmt.Sprintf("structured %d/%s", status, code))
	}

	// Oversized upload: rejected at the body cap, before parsing.
	_, err = c.Upload(ctx, "chaos", mdesclient.UploadRequest{Source: strings.Repeat("x", 9<<20)})
	expectAPIError("oversized-upload", err, 413, "too_large")

	// Corrupt HMDES: positioned structured diagnostics.
	src, err := machines.Source(machines.K5)
	if err != nil {
		return faults, err
	}
	_, err = c.Upload(ctx, "chaos", mdesclient.UploadRequest{Source: strings.ReplaceAll(src, "machine", "machnie")})
	if apiErr, ok := err.(*mdesclient.APIError); ok && apiErr.Status == 400 && apiErr.Code == "bad_source" && len(apiErr.Diagnostics) > 0 {
		record("corrupt-hmdes", true, fmt.Sprintf("structured 400/bad_source at line %d", apiErr.Diagnostics[0].Line))
	} else {
		record("corrupt-hmdes", false, fmt.Sprintf("no positioned rejection: %v", err))
	}

	// Mid-stream disconnect: announce a large body, send half, vanish.
	// The daemon must release the admission slot and keep serving.
	if conn, derr := net.DialTimeout("tcp", hostport, 2*time.Second); derr == nil {
		body := `{"blocks":[{"ops":[{"opcode":"IALU"}]}]}`
		fmt.Fprintf(conn, "POST /v1/tenants/chaos/schedule HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", hostport, len(body)*100)
		_, _ = io.WriteString(conn, body[:len(body)/2])
		_ = conn.Close()
		record("midstream-disconnect", true, "connection dropped mid-body")
	} else {
		record("midstream-disconnect", false, fmt.Sprintf("dial: %v", derr))
	}

	// Slow-loris body: dribble bytes until the daemon cuts us off (its
	// read deadline), bounded so the soak never hangs on a lenient server.
	if conn, derr := net.DialTimeout("tcp", hostport, 2*time.Second); derr == nil {
		fmt.Fprintf(conn, "POST /v1/tenants/chaos/descriptions HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n", hostport)
		cut := false
		for i := 0; i < 100; i++ {
			_ = conn.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
			if _, werr := conn.Write([]byte("{")); werr != nil {
				cut = true
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		_ = conn.Close()
		if cut {
			record("slow-loris", true, "server cut the dribbling connection")
		} else {
			record("slow-loris", true, "dribble bounded; daemon health verified below")
		}
	} else {
		record("slow-loris", false, fmt.Sprintf("dial: %v", derr))
	}

	// Malformed JSON body (raw POST, since the SDK always sends valid
	// JSON).
	func() {
		conn, derr := net.DialTimeout("tcp", hostport, 2*time.Second)
		if derr != nil {
			record("malformed-json", false, fmt.Sprintf("dial: %v", derr))
			return
		}
		defer conn.Close()
		body := "{nope"
		fmt.Fprintf(conn, "POST /v1/tenants/chaos/descriptions HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", hostport, len(body), body)
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, rerr := io.ReadAll(conn)
		if rerr != nil && len(resp) == 0 {
			record("malformed-json", false, fmt.Sprintf("no response: %v", rerr))
			return
		}
		text := string(resp)
		if strings.Contains(text, "400") && strings.Contains(text, "bad_request") {
			record("malformed-json", true, "structured 400/bad_request")
		} else {
			record("malformed-json", false, fmt.Sprintf("unexpected response: %.120s", text))
		}
	}()

	// After every fault: the daemon must still serve a full round trip.
	if err := c.Health(ctx); err != nil {
		record("post-fault-health", false, fmt.Sprintf("daemon unhealthy: %v", err))
		return faults, nil
	}
	up, err := c.Upload(ctx, "chaos", mdesclient.UploadRequest{Source: src, Activate: true})
	if err != nil {
		record("post-fault-roundtrip", false, fmt.Sprintf("upload: %v", err))
		return faults, nil
	}
	prog, err := workload.Generate(workload.Config{Machine: machines.K5, NumOps: 60, Seed: 42})
	if err != nil {
		return faults, err
	}
	resp, err := c.Schedule(ctx, "chaos", server.FromIR(prog.Blocks))
	if err != nil {
		record("post-fault-roundtrip", false, fmt.Sprintf("schedule: %v", err))
		return faults, nil
	}
	if resp.Fingerprint != up.Fingerprint {
		record("post-fault-roundtrip", false, "fingerprint mismatch after faults")
		return faults, nil
	}
	record("post-fault-roundtrip", true, "upload+schedule served after all faults")
	return faults, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
