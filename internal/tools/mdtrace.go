package tools

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"mdes"
	"mdes/internal/cli"
	"mdes/internal/machines"
	"mdes/internal/trace"
	"mdes/internal/workload"
)

const mdtraceUsage = `usage: mdtrace <command> [flags]

commands:
  record  schedule a workload and write a replayable binary trace
  dump    print a trace's metadata and outcomes
  replay  re-run a trace and assert byte-identical schedules
  diff    compare two traces

run "mdtrace <command> -h" for each command's flags.
`

// RunMdtrace is the mdtrace tool: record scheduling runs as
// content-addressed binary traces, inspect them, replay them asserting
// byte-identical schedules, and diff two recordings.
func RunMdtrace(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(stdout, mdtraceUsage)
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "record":
		return mdtraceRecord(args[1:], stdout)
	case "dump":
		return mdtraceDump(args[1:], stdout)
	case "replay":
		return mdtraceReplay(args[1:], stdout)
	case "diff":
		return mdtraceDiff(args[1:], stdout)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, mdtraceUsage)
		return nil
	}
	fmt.Fprint(stdout, mdtraceUsage)
	return fmt.Errorf("unknown command %q", args[0])
}

// mdtraceCompile builds the unfrozen compiled description a trace's meta
// describes, with the meta's machine hash filled in from its fingerprint
// (Checker is left empty until an engine picks a backend).
func mdtraceCompile(machineName, form, level string) (*mdes.Compiled, trace.Meta, error) {
	var meta trace.Meta
	m, err := machines.Load(machines.Name(machineName))
	if err != nil {
		return nil, meta, err
	}
	f, err := cli.ParseForm(form)
	if err != nil {
		return nil, meta, err
	}
	lvl, err := cli.ParseLevel(level)
	if err != nil {
		return nil, meta, err
	}
	compiled := mdes.Compile(m, f)
	mdes.Optimize(compiled, lvl)
	fp, err := compiled.Fingerprint()
	if err != nil {
		return nil, meta, err
	}
	meta = trace.Meta{
		Machine:     machineName,
		MachineHash: fp,
		Form:        f.String(),
		Level:       lvl.String(),
	}
	return compiled, meta, nil
}

// mdtraceEngine builds the engine a trace's meta describes and returns
// it with the complete meta. Extra engine options (e.g. WithProfile for
// the tuning loop) are appended after the checker selection.
func mdtraceEngine(machineName, form, level, checker string, extra ...mdes.EngineOption) (*mdes.Engine, trace.Meta, error) {
	compiled, meta, err := mdtraceCompile(machineName, form, level)
	if err != nil {
		return nil, meta, err
	}
	kind, err := mdes.ParseCheckerKind(checker)
	if err != nil {
		return nil, meta, fmt.Errorf("%w\n%s", err, cli.FormatCheckerKinds())
	}
	eng, err := mdes.NewEngine(compiled, append([]mdes.EngineOption{mdes.WithChecker(kind)}, extra...)...)
	if err != nil {
		return nil, meta, err
	}
	meta.Checker = kind.String()
	return eng, meta, nil
}

func mdtraceRecord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdtrace record", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		machineFlag = fs.String("machine", string(machines.K5), "machine description to schedule for")
		formFlag    = fs.String("form", "andor", "representation form: or | andor")
		levelFlag   = fs.String("level", "full", "optimization level: none | redundancy | bit-vector | time-shift | full")
		checkerFlag = fs.String("checker", "rumap", "conflict-checker backend: rumap, automaton or probeplan")
		opsFlag     = fs.Int("ops", 20000, "static operations in the generated workload")
		seedFlag    = fs.Int64("seed", 1996, "workload seed")
		shardsFlag  = fs.Int("shards", 4, "workload generator shards")
		inlineFlag  = fs.Bool("inline", false, "embed the generated blocks in the trace instead of the (ops, seed, shards) spec")
		workersFlag = fs.Int("workers", 8, "scheduling goroutines")
		outFlag     = fs.String("o", "", "output trace file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outFlag == "" {
		return fmt.Errorf("mdtrace record: -o <file> is required")
	}
	eng, meta, err := mdtraceEngine(*machineFlag, *formFlag, *levelFlag, *checkerFlag)
	if err != nil {
		return err
	}
	wl := trace.Workload{Seeded: true, NumOps: *opsFlag, Seed: *seedFlag, Shards: *shardsFlag}
	if *inlineFlag {
		prog, err := workload.GenerateParallel(workload.Config{
			Machine: machines.Name(*machineFlag), NumOps: *opsFlag, Seed: *seedFlag,
		}, *shardsFlag)
		if err != nil {
			return err
		}
		wl = trace.Workload{Blocks: prog.Blocks}
	}
	rec, err := trace.Capture(context.Background(), eng, meta, wl, *workersFlag)
	if err != nil {
		return err
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		return err
	}
	id, err := trace.Write(f, rec)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %d blocks (%s, %s/%s, checker=%s) to %s\ntrace id %s, machine hash %s\n",
		len(rec.Outcomes), meta.Machine, meta.Form, meta.Level, meta.Checker, *outFlag, id, meta.MachineHash)
	return nil
}

func mdtraceReadFile(path string) (*trace.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func mdtraceDump(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdtrace dump", flag.ContinueOnError)
	fs.SetOutput(stdout)
	blocksFlag := fs.Int("blocks", 0, "also print the first N per-block outcomes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("mdtrace dump: want one trace file, got %d args", fs.NArg())
	}
	rec, err := mdtraceReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace id:     %s (format v%d)\n", rec.ID, trace.Version)
	fmt.Fprintf(stdout, "machine:      %s (hash %s)\n", rec.Meta.Machine, rec.Meta.MachineHash)
	fmt.Fprintf(stdout, "form/level:   %s / %s\n", rec.Meta.Form, rec.Meta.Level)
	fmt.Fprintf(stdout, "checker:      %s\n", rec.Meta.Checker)
	if rec.Workload.Seeded {
		fmt.Fprintf(stdout, "workload:     seeded (%d ops, seed %d, %d shards)\n",
			rec.Workload.NumOps, rec.Workload.Seed, rec.Workload.Shards)
	} else {
		nops := 0
		for _, b := range rec.Workload.Blocks {
			nops += len(b.Ops)
		}
		fmt.Fprintf(stdout, "workload:     inline (%d blocks, %d ops)\n", len(rec.Workload.Blocks), nops)
	}
	var total mdes.Counters
	cycles := 0
	for i := range rec.Outcomes {
		total.Add(rec.Outcomes[i].Counters)
		cycles += rec.Outcomes[i].Length
	}
	fmt.Fprintf(stdout, "outcomes:     %d blocks, %d total cycles\n", len(rec.Outcomes), cycles)
	fmt.Fprintf(stdout, "counters:     %s\n", total)
	for i := 0; i < *blocksFlag && i < len(rec.Outcomes); i++ {
		o := &rec.Outcomes[i]
		fmt.Fprintf(stdout, "block %4d: length %d, issue %v, %s\n", i, o.Length, o.Issue, o.Counters)
	}
	return nil
}

func mdtraceReplay(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdtrace replay", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		workersFlag = fs.Int("workers", 8, "scheduling goroutines")
		checkerFlag = fs.String("checker", "", "replay on this backend instead of the recorded one (schedules must still match)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("mdtrace replay: want one trace file, got %d args", fs.NArg())
	}
	rec, err := mdtraceReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	checker := rec.Meta.Checker
	if *checkerFlag != "" {
		checker = *checkerFlag
	}
	eng, meta, err := mdtraceEngine(rec.Meta.Machine, rec.Meta.Form, rec.Meta.Level, checker)
	if err != nil {
		return err
	}
	if meta.MachineHash != rec.Meta.MachineHash {
		return fmt.Errorf("mdtrace replay: description drift: %s compiles to hash %s, trace was recorded against %s",
			rec.Meta.Machine, meta.MachineHash, rec.Meta.MachineHash)
	}
	rep, err := trace.Replay(context.Background(), eng, rec, *workersFlag)
	if err != nil {
		return err
	}
	if !rep.Identical() {
		for i, m := range rep.Mismatches {
			if i >= 10 {
				fmt.Fprintf(stdout, "... and %d more mismatches\n", len(rep.Mismatches)-i)
				break
			}
			fmt.Fprintf(stdout, "block %d: %s\n", m.Block, m.What)
		}
		return fmt.Errorf("mdtrace replay: %d of %d blocks diverged from trace %s", len(rep.Mismatches), rep.Blocks, rec.ID)
	}
	fmt.Fprintf(stdout, "replayed %d blocks byte-identically (trace %s, machine %s hash %s, checker %s)\n",
		rep.Blocks, rec.ID, rec.Meta.Machine, rec.Meta.MachineHash, checker)
	return nil
}

func mdtraceDiff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdtrace diff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("mdtrace diff: want two trace files, got %d args", fs.NArg())
	}
	a, err := mdtraceReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := mdtraceReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := trace.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Fprintf(stdout, "identical recordings (trace %s)\n", a.ID)
		return nil
	}
	for _, d := range diffs {
		fmt.Fprintln(stdout, d)
	}
	return fmt.Errorf("mdtrace diff: recordings differ (%s vs %s)", a.ID, b.ID)
}
