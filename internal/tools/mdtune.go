package tools

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mdes"
	"mdes/internal/cli"
	"mdes/internal/descache"
	"mdes/internal/experiments"
	"mdes/internal/machines"
	"mdes/internal/obs/profile"
	"mdes/internal/trace"
	"mdes/internal/verify"
)

// tuneConfig parameterizes the profile-guided tuning loop
// (`mdreport -tune`).
type tuneConfig struct {
	machine  string // machine to record for when no trace is given
	trace    string // existing mdtrace recording; "" = record one
	form     string
	level    string
	checker  string // override; "" = the recording's backend
	ops      int
	seed     int64
	shards   int
	workers  int
	out      string  // artifact directory; "" = don't persist
	minGain  float64 // reject below this percent probe-work reduction
	cacheDir string  // compiled-description cache; "" = don't publish the tuned arena
}

// runTune is the optimize-measure-iterate loop closing ROADMAP item 5:
//
//  1. record (or load) a replayable trace of a workload;
//  2. replay it with the conflict-attribution profiler attached,
//     asserting byte-identical schedules against the recording;
//  3. re-sort the description's OR-trees and usage checks by the observed
//     conflict frequencies (opt.ReorderFromProfile) on a fresh compile;
//  4. gate the tuned description: verify.CheckEquivalent (differential
//     stream + probe grid), a byte-identical trace replay, unchanged
//     Attempts/Conflicts/Backtracks, and an OptionsChecked+ResourceChecks
//     reduction of at least minGain percent;
//  5. on accept, persist the tuned layout (TUNED_*.mdes, lowlevel
//     encoding) and the profile evidence (PROFILE_*.mdpf, content-
//     addressed, keyed by description fingerprint x workload).
//
// A tuned description that changes any scheduling decision, or that does
// not pay for itself, is rejected with a non-zero exit — never written.
func runTune(stdout io.Writer, cfg tuneConfig) error {
	ctx := context.Background()

	// 1. The recording is the workload's ground truth.
	var rec *trace.Recording
	if cfg.trace != "" {
		var err error
		if rec, err = mdtraceReadFile(cfg.trace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded trace %s: %d blocks (%s, %s/%s, checker=%s)\n",
			cfg.trace, len(rec.Outcomes), rec.Meta.Machine, rec.Meta.Form, rec.Meta.Level, rec.Meta.Checker)
	} else {
		if cfg.checker == "" {
			cfg.checker = "rumap"
		}
		eng, meta, err := mdtraceEngine(cfg.machine, cfg.form, cfg.level, cfg.checker)
		if err != nil {
			return err
		}
		wl := trace.Workload{Seeded: true, NumOps: cfg.ops, Seed: cfg.seed, Shards: cfg.shards}
		if rec, err = trace.Capture(ctx, eng, meta, wl, cfg.workers); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d blocks (%s, %s/%s, checker=%s, ops=%d seed=%d)\n",
			len(rec.Outcomes), meta.Machine, meta.Form, meta.Level, meta.Checker, cfg.ops, cfg.seed)
	}
	checker := rec.Meta.Checker
	if cfg.checker != "" && cfg.trace != "" {
		checker = cfg.checker
	}

	// 2. Profiled baseline replay: byte-identical schedules, observed
	// conflict frequencies.
	baseCompiled, baseMeta, err := mdtraceCompile(rec.Meta.Machine, rec.Meta.Form, rec.Meta.Level)
	if err != nil {
		return err
	}
	if baseMeta.MachineHash != rec.Meta.MachineHash {
		return fmt.Errorf("mdreport -tune: description drift: %s compiles to hash %s, trace was recorded against %s",
			rec.Meta.Machine, baseMeta.MachineHash, rec.Meta.MachineHash)
	}
	kind, err := mdes.ParseCheckerKind(checker)
	if err != nil {
		return err
	}
	prof := mdes.NewConflictProfile(baseCompiled)
	baseEng, err := mdes.NewEngine(baseCompiled, mdes.WithChecker(kind), mdes.WithProfile(prof))
	if err != nil {
		return err
	}
	baseStart := time.Now()
	baseRep, baseTotals, err := trace.ReplaySchedules(ctx, baseEng, rec, cfg.workers)
	baseElapsed := time.Since(baseStart)
	if err != nil {
		return err
	}
	if err := reportMismatches(stdout, baseRep, "baseline replay", rec); err != nil {
		return err
	}
	prof.SetWorkload(workloadKey(rec))
	snap := prof.Snapshot()
	fmt.Fprintf(stdout, "profiled baseline: %d blocks byte-identical in %s (%.0f blocks/s), %s\n",
		baseRep.Blocks, baseElapsed.Round(time.Microsecond),
		float64(baseRep.Blocks)/baseElapsed.Seconds(), baseTotals)

	// 3. Profile-guided reorder on a fresh (unfrozen) compile.
	tuned, _, err := mdtraceCompile(rec.Meta.Machine, rec.Meta.Form, rec.Meta.Level)
	if err != nil {
		return err
	}
	passRep := mdes.ReorderFromProfile(tuned, &snap)
	fmt.Fprintf(stdout, "%s\n", passRep.String())

	// 4a. Differential equivalence gate (stream + exhaustive probe grid).
	baseFresh, _, err := mdtraceCompile(rec.Meta.Machine, rec.Meta.Form, rec.Meta.Level)
	if err != nil {
		return err
	}
	equivSeed := cfg.seed
	if rec.Workload.Seeded {
		equivSeed = rec.Workload.Seed
	}
	if err := verify.CheckEquivalent(baseFresh, tuned, equivSeed); err != nil {
		return fmt.Errorf("mdreport -tune: REJECTED (equivalence): %w", err)
	}

	// 4b. Byte-identical replay of the recording on the tuned layout.
	tunedEng, err := mdes.NewEngine(tuned, mdes.WithChecker(kind))
	if err != nil {
		return err
	}
	tunedStart := time.Now()
	tunedRep, tunedTotals, err := trace.ReplaySchedules(ctx, tunedEng, rec, cfg.workers)
	tunedElapsed := time.Since(tunedStart)
	if err != nil {
		return err
	}
	if err := reportMismatches(stdout, tunedRep, "REJECTED: tuned replay", rec); err != nil {
		return err
	}

	// 4c. A layout pass may only change scan order: the decision counters
	// must be untouched, the probe-work counters must pay for the pass.
	if tunedTotals.Attempts != baseTotals.Attempts ||
		tunedTotals.Conflicts != baseTotals.Conflicts ||
		tunedTotals.Backtracks != baseTotals.Backtracks {
		return fmt.Errorf("mdreport -tune: REJECTED: decision counters diverged: base %s, tuned %s",
			baseTotals, tunedTotals)
	}
	baseWork := baseTotals.OptionsChecked + baseTotals.ResourceChecks
	tunedWork := tunedTotals.OptionsChecked + tunedTotals.ResourceChecks
	if baseWork == 0 {
		return fmt.Errorf("mdreport -tune: baseline did no probe work; nothing to tune")
	}
	gain := 100 * float64(baseWork-tunedWork) / float64(baseWork)
	fmt.Fprintf(stdout, "tuned replay:      %d blocks byte-identical in %s (%.0f blocks/s, unprofiled), %s\n",
		tunedRep.Blocks, tunedElapsed.Round(time.Microsecond),
		float64(tunedRep.Blocks)/tunedElapsed.Seconds(), tunedTotals)
	fmt.Fprintf(stdout, "probe work: options %d -> %d (%+.1f%%), resource checks %d -> %d (%+.1f%%), combined %+.1f%%\n",
		baseTotals.OptionsChecked, tunedTotals.OptionsChecked,
		pctDelta(baseTotals.OptionsChecked, tunedTotals.OptionsChecked),
		baseTotals.ResourceChecks, tunedTotals.ResourceChecks,
		pctDelta(baseTotals.ResourceChecks, tunedTotals.ResourceChecks),
		-gain)
	if gain < cfg.minGain {
		return fmt.Errorf("mdreport -tune: REJECTED: probe-work reduction %.1f%% below required %.1f%%", gain, cfg.minGain)
	}

	// 5. Accepted: persist the tuned layout and its profile evidence.
	profData, profAddr, err := profile.Encode(&snap)
	if err != nil {
		return err
	}
	if cfg.out != "" {
		if err := os.MkdirAll(cfg.out, 0o777); err != nil {
			return err
		}
		tunedFP, err := tuned.Fingerprint()
		if err != nil {
			return err
		}
		tunedPath := filepath.Join(cfg.out, fmt.Sprintf("TUNED_%s_%s.mdes", rec.Meta.Machine, tunedFP))
		f, err := os.Create(tunedPath)
		if err != nil {
			return err
		}
		err = tuned.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		profPath := filepath.Join(cfg.out, fmt.Sprintf("PROFILE_%s_%s.mdpf", rec.Meta.Machine, baseMeta.MachineHash))
		if err := os.WriteFile(profPath, profData, 0o666); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (tuned layout, fingerprint %s)\n", tunedPath, tunedFP)
		fmt.Fprintf(stdout, "wrote %s (profile artifact %s)\n", profPath, profAddr)
	}
	if cfg.cacheDir != "" {
		path, err := publishTuned(cfg.cacheDir, rec.Meta.Machine, rec.Meta.Form, rec.Meta.Level,
			baseMeta.MachineHash, profAddr, tuned)
		if err != nil {
			return fmt.Errorf("mdreport -tune: cache publish: %w", err)
		}
		fmt.Fprintf(stdout, "published %s (tuned arena; LoadCached(WithTuned) now prefers it)\n", path)
	}
	fmt.Fprintf(stdout, "ACCEPTED: schedules byte-identical, probe work reduced %.1f%%\n", gain)
	return nil
}

// publishTuned stores an accepted tuned layout in the compiled-description
// cache under the tuned slot of the base description's key — the same key
// LoadCached derives, so a scheduler opting in with WithTuned picks the
// layout up on its next cold start. The slot is addressed by the base
// description's fingerprint × the driving profile's content address,
// making the evidence chain auditable from the cache listing alone.
func publishTuned(cacheDir, machineName, formName, levelName, baseFP, profAddr string, tuned *mdes.Compiled) (string, error) {
	source, err := machines.Source(machines.Name(machineName))
	if err != nil {
		return "", err
	}
	form, err := cli.ParseForm(formName)
	if err != nil {
		return "", err
	}
	key := descache.Key{
		SourceHash: descache.HashSource(source),
		Level:      levelName,
		Form:       "andor",
	}
	if form == mdes.FormOR {
		key.Form = "or"
	}
	arena, err := tuned.EncodeArena()
	if err != nil {
		return "", err
	}
	store, err := descache.Open(cacheDir, 0)
	if err != nil {
		return "", err
	}
	return store.PutTuned(key, baseFP, profAddr, arena)
}

// workloadKey names the workload a profile was measured on — the other
// half of the (description fingerprint x workload) artifact key.
func workloadKey(rec *trace.Recording) string {
	if rec.Workload.Seeded {
		return fmt.Sprintf("seeded ops=%d seed=%d shards=%d",
			rec.Workload.NumOps, rec.Workload.Seed, rec.Workload.Shards)
	}
	return fmt.Sprintf("inline blocks=%d trace=%s", len(rec.Workload.Blocks), rec.ID)
}

func reportMismatches(stdout io.Writer, rep *trace.ReplayReport, what string, rec *trace.Recording) error {
	if rep.Identical() {
		return nil
	}
	for i, m := range rep.Mismatches {
		if i >= 10 {
			fmt.Fprintf(stdout, "... and %d more mismatches\n", len(rep.Mismatches)-i)
			break
		}
		fmt.Fprintf(stdout, "block %d: %s\n", m.Block, m.What)
	}
	return fmt.Errorf("mdreport -tune: %s: %d of %d blocks diverged from trace %s",
		what, len(rep.Mismatches), rep.Blocks, rec.ID)
}

func pctDelta(base, new int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(new-base) / float64(base)
}

// runBenchCompare is `mdreport -bench-compare <old> <new>`: gate the new
// BENCH_*.json trajectory (file or directory) against either a committed
// bench_budgets.json baseline or an older trajectory. Non-zero exit on
// any regression, so CI compares instead of only uploading artifacts.
func runBenchCompare(stdout io.Writer, oldPath, newPath string, rateTol, checksTol float64) error {
	newRecs, err := experiments.LoadBenchRecords(newPath)
	if err != nil {
		return err
	}
	if experiments.IsBenchBudgetsFile(oldPath) {
		budgets, err := experiments.LoadBenchBudgets(oldPath)
		if err != nil {
			return err
		}
		for _, r := range newRecs {
			b := budgets.Budgets[r.Key()]
			fmt.Fprintf(stdout, "%-24s %9.0f blocks/s (floor %8.0f)  %6.3f checks/attempt (budget %6.3f)\n",
				r.Key(), r.BlocksPerSec, b.MinBlocksPerSec, r.ChecksPerAttempt, b.MaxChecksPerAttempt)
		}
		if violations := experiments.CheckBenchBudgets(budgets, newRecs); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(stdout, "BENCH REGRESSION: %s\n", v)
			}
			return fmt.Errorf("%d bench regression(s) against %s", len(violations), oldPath)
		}
		fmt.Fprintf(stdout, "all %d benchmark(s) within %s budgets\n", len(newRecs), oldPath)
		return nil
	}
	oldRecs, err := experiments.LoadBenchRecords(oldPath)
	if err != nil {
		return err
	}
	deltas, violations := experiments.CompareBenchRecords(oldRecs, newRecs, rateTol, checksTol)
	for _, d := range deltas {
		fmt.Fprintf(stdout, "%-24s %9.0f -> %9.0f blocks/s (%+.1f%%)  %6.3f -> %6.3f checks/attempt\n",
			d.Key, d.OldBlocksPerSec, d.NewBlocksPerSec, d.RatePct(),
			d.OldChecksPerAttempt, d.NewChecksPerAttempt)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stdout, "BENCH REGRESSION: %s\n", v)
		}
		return fmt.Errorf("%d bench regression(s): %s vs %s", len(violations), newPath, oldPath)
	}
	fmt.Fprintf(stdout, "%d benchmark(s) within tolerance (blocks/s -%.0f%%, checks/attempt +%.0f%%)\n",
		len(deltas), 100*rateTol, 100*checksTol)
	return nil
}

// runSeedBenchBudgets derives a committed bench_budgets.json baseline
// from a measured BENCH trajectory.
func runSeedBenchBudgets(stdout io.Writer, recordsPath, outPath string, rateHeadroom, checksHeadroom float64) error {
	recs, err := experiments.LoadBenchRecords(recordsPath)
	if err != nil {
		return err
	}
	f := experiments.SeedBenchBudgets(recs, rateHeadroom, checksHeadroom)
	data, err := marshalIndentJSON(f)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o666); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "seeded %s (%d benchmarks, %.0f%% rate headroom, %.0f%% checks headroom)\n",
		outPath, len(f.Budgets), 100*rateHeadroom, 100*checksHeadroom)
	return nil
}

func marshalIndentJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
