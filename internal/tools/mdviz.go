package tools

import (
	"flag"
	"fmt"
	"io"

	"mdes/internal/cli"
	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/opt"
	"mdes/internal/restable"
)

// RunMDViz is the mdviz tool: render reservation tables and AND/OR-trees
// as ASCII art (the paper's Figures 1 and 3-6).
func RunMDViz(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdviz", flag.ContinueOnError)
	fs.SetOutput(stdout)

	var (
		machineFlag = fs.String("m", "", "built-in machine name")
		inFlag      = fs.String("in", "", "path to a high-level MDES source file")
		classFlag   = fs.String("class", "", "class to render")
		formFlag    = fs.String("form", "andor", "or | andor")
		shiftFlag   = fs.Bool("shift", false, "apply the usage-time transformation before rendering (Figure 5)")
		sortFlag    = fs.Bool("sort", false, "apply conflict-detection ordering before rendering (Figure 6)")
		shareFlag   = fs.Bool("share", false, "show OR-tree sharing between classes (Figure 4)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := cli.LoadMachine(*machineFlag, *inFlag)
	if err != nil {
		return err
	}

	if *shareFlag {
		showSharing(stdout, m)
		return nil
	}
	if *classFlag == "" {
		return (fmt.Errorf("give -class <name> (classes: %v) or -share", m.ClassNames))
	}
	tree, ok := m.Classes[*classFlag]
	if !ok {
		return (fmt.Errorf("no class %q (classes: %v)", *classFlag, m.ClassNames))
	}

	form, err := cli.ParseForm(*formFlag)
	if err != nil {
		return err
	}

	if *shiftFlag || *sortFlag {
		// Run the relevant passes on a compiled copy and render that.
		ll := lowlevel.Compile(m, form)
		if *shiftFlag {
			opt.ShiftUsageTimes(ll, opt.Forward)
			opt.SortUsagesTimeZeroFirst(ll)
		}
		if *sortFlag {
			opt.SortORTrees(ll)
		}
		cli.DumpCompiledClass(stdout, ll, *classFlag, m)
		return nil
	}

	switch form {
	case lowlevel.FormOR:
		fmt.Fprint(stdout, restable.RenderORTree(m.Resources, tree.Expand()))
	case lowlevel.FormAndOr:
		fmt.Fprint(stdout, restable.RenderAndOrTree(m.Resources, tree))
	}
	return nil
}

// showSharing lists, per named tree, which classes reference it (the
// sharing Figure 4 illustrates), and renders each shared tree once.
func showSharing(stdout io.Writer, m *hmdes.Machine) {
	for _, tname := range m.TreeNames {
		tree := m.Trees[tname]
		var users []string
		for _, cname := range m.ClassNames {
			for _, t := range m.Classes[cname].Trees {
				if t == tree {
					users = append(users, cname)
					break
				}
			}
		}
		fmt.Fprintf(stdout, "tree %s (%d options) shared by %d class(es): %v\n",
			tname, len(tree.Options), len(users), users)
		fmt.Fprint(stdout, restable.RenderORTree(m.Resources, tree))
		fmt.Fprintln(stdout)
	}
}
