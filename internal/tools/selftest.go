package tools

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mdes/internal/machines"
	"mdes/internal/stats"
	"mdes/internal/verify"
)

// runSelftest is `schedbench -selftest`: the differential correctness
// harness as a tool. It sweeps the hand-written machines plus n generated
// machines starting at seed, replaying every optimization pass and every
// checker backend against the naive reference interpreter, and reports the
// probe accounting the sweep gathered. Each failure is printed as a
// self-contained reproducer (seed + minimized machine) and, with -failout,
// written to a directory for CI to upload as artifacts.
func runSelftest(stdout io.Writer, seed int64, n int, failout string) error {
	if failout != "" {
		if err := os.MkdirAll(failout, 0o755); err != nil {
			return err
		}
	}
	start := time.Now()
	var total stats.Counters
	broken := 0

	for _, name := range machines.All {
		mach, err := machines.Load(name)
		if err != nil {
			return err
		}
		c, err := verify.CheckMachineStats(mach, seed)
		total.Add(c)
		if err != nil {
			broken++
			fmt.Fprintf(stdout, "FAIL %s: %v\n", name, err)
		}
	}
	fmt.Fprintf(stdout, "hand-written machines: %d verified\n", len(machines.All))

	failures, c := verify.RunMany(seed, n, func(f *verify.Failure) {
		fmt.Fprintf(stdout, "FAIL %s", f.Error())
		if failout == "" {
			return
		}
		base := filepath.Join(failout, fmt.Sprintf("seed-%d", f.Seed))
		if err := os.WriteFile(base+".txt", []byte(f.Error()), 0o644); err != nil {
			fmt.Fprintf(stdout, "failout: %v\n", err)
		}
		if f.Spec != nil {
			if err := os.WriteFile(base+".mdes", []byte(f.Spec.Render()), 0o644); err != nil {
				fmt.Fprintf(stdout, "failout: %v\n", err)
			}
		}
	})
	total.Add(c)
	broken += len(failures)

	fmt.Fprintf(stdout, "generated machines: %d checked from seed %d in %s\n",
		n, seed, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "differential evidence: %s\n", total.String())
	if broken > 0 {
		if failout != "" {
			fmt.Fprintf(stdout, "reproducers written to %s\n", failout)
		}
		return fmt.Errorf("selftest: %d machines diverged from the reference semantics", broken)
	}
	fmt.Fprintln(stdout, "selftest passed: all passes and backends agree with the reference interpretation")
	return nil
}
