package tools

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes/internal/experiments"
	"mdes/internal/obs/profile"
)

// tuneTrace records a small K5 trace at -level time-shift (no static §8
// ordering, so the profile-guided reorder has headroom) and returns its
// path.
func tuneTrace(t *testing.T, dir string) string {
	t.Helper()
	tr := filepath.Join(dir, "k5.mdtr")
	runTool(t, mdtrace, "record",
		"-machine", "k5", "-level", "time-shift", "-checker", "rumap",
		"-ops", "4000", "-o", tr)
	return tr
}

func TestTuneAcceptsAndIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	tr := tuneTrace(t, dir)

	tune := func(outDir string) string {
		return runTool(t, mdreport, "-tune",
			"-trace", tr, "-level", "time-shift",
			"-tune-out", outDir, "-tune-min-gain", "5")
	}
	out1 := tune(filepath.Join(dir, "a"))
	for _, want := range []string{
		"profiled baseline:", "byte-identical", "profile/reorder",
		"probe work:", "ACCEPTED",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("missing %q in:\n%s", want, out1)
		}
	}
	out2 := tune(filepath.Join(dir, "b"))

	// Determinism: same trace + same seed => byte-identical tuned layout
	// (same fingerprint in the name, same encoded bytes).
	readTuned := func(outDir string) (string, []byte) {
		t.Helper()
		matches, err := filepath.Glob(filepath.Join(outDir, "TUNED_k5_*.mdes"))
		if err != nil || len(matches) != 1 {
			t.Fatalf("TUNED artifacts in %s: %v (err %v)", outDir, matches, err)
		}
		data, err := os.ReadFile(matches[0])
		if err != nil {
			t.Fatal(err)
		}
		return filepath.Base(matches[0]), data
	}
	nameA, bytesA := readTuned(filepath.Join(dir, "a"))
	nameB, bytesB := readTuned(filepath.Join(dir, "b"))
	if nameA != nameB {
		t.Fatalf("tuned fingerprints differ across identical runs: %s vs %s", nameA, nameB)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("tuned encodings differ across identical runs (%d vs %d bytes)", len(bytesA), len(bytesB))
	}
	_ = out2

	// The profile artifact decodes and is keyed to the trace's workload.
	profs, err := filepath.Glob(filepath.Join(dir, "a", "PROFILE_k5_*.mdpf"))
	if err != nil || len(profs) != 1 {
		t.Fatalf("PROFILE artifacts: %v (err %v)", profs, err)
	}
	data, err := os.ReadFile(profs[0])
	if err != nil {
		t.Fatal(err)
	}
	snap, addr, err := profile.Decode(data)
	if err != nil {
		t.Fatalf("profile artifact does not decode: %v", err)
	}
	if !strings.EqualFold(snap.Meta.Machine, "k5") || !strings.Contains(snap.Meta.Workload, "seeded ops=4000") {
		t.Fatalf("profile meta = %+v", snap.Meta)
	}
	if !strings.Contains(out1, addr) {
		t.Fatalf("content address %s not reported in:\n%s", addr, out1)
	}
}

func TestTuneRejectsBelowMinGain(t *testing.T) {
	dir := t.TempDir()
	tr := tuneTrace(t, dir)
	var buf bytes.Buffer
	err := RunMDReport([]string{"-tune",
		"-trace", tr, "-level", "time-shift", "-tune-min-gain", "95",
		"-tune-out", filepath.Join(dir, "out")}, &buf)
	if err == nil || !strings.Contains(err.Error(), "REJECTED") {
		t.Fatalf("95%% min gain accepted: err=%v\n%s", err, buf.String())
	}
	// Rejection must not leave artifacts behind.
	if matches, _ := filepath.Glob(filepath.Join(dir, "out", "TUNED_*")); len(matches) != 0 {
		t.Fatalf("rejected run wrote artifacts: %v", matches)
	}
}

// writeBench writes one BENCH_*.json record the way schedbench -benchjson
// does.
func writeBench(t *testing.T, dir string, rec experiments.BenchRecord) {
	t.Helper()
	rec.Schema = experiments.BenchSchema
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	name := "BENCH_" + rec.Machine + "_" + rec.Checker + ".json"
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchCompareTrajectories(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	base := experiments.BenchRecord{
		Machine: "k5", Checker: "probeplan",
		Blocks: 1240, BlocksPerSec: 40000, ChecksPerAttempt: 6.0,
	}
	writeBench(t, oldDir, base)

	// Within tolerance: a bit slower, same checks.
	ok := base
	ok.BlocksPerSec = 30000
	writeBench(t, newDir, ok)
	out := runTool(t, mdreport, "-bench-compare", oldDir, newDir)
	if !strings.Contains(out, "within tolerance") {
		t.Fatalf("in-tolerance compare:\n%s", out)
	}

	// Checks/attempt is deterministic: +10% must fail even inside the
	// generous rate tolerance.
	bad := base
	bad.ChecksPerAttempt = 6.6
	writeBench(t, newDir, bad)
	var buf bytes.Buffer
	err := RunMDReport([]string{"-bench-compare", oldDir, newDir}, &buf)
	if err == nil || !strings.Contains(buf.String(), "BENCH REGRESSION") {
		t.Fatalf("checks regression passed: err=%v\n%s", err, buf.String())
	}

	// A benchmark disappearing from the new trajectory is a violation.
	extra := base
	extra.Checker = "rumap"
	writeBench(t, oldDir, extra)
	writeBench(t, newDir, ok)
	buf.Reset()
	if err := RunMDReport([]string{"-bench-compare", oldDir, newDir}, &buf); err == nil {
		t.Fatalf("missing benchmark passed:\n%s", buf.String())
	}
}

func TestSeedBenchBudgetsThenCompare(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, experiments.BenchRecord{
		Machine: "k5", Checker: "probeplan",
		Blocks: 1240, BlocksPerSec: 40000, ChecksPerAttempt: 6.0,
	})
	budgets := filepath.Join(dir, "bench_budgets.json")
	out := runTool(t, mdreport, "-seed-bench-budgets", budgets, dir)
	if !strings.Contains(out, "seeded") {
		t.Fatalf("seed output:\n%s", out)
	}

	// The measurement that seeded the budgets passes against them.
	out = runTool(t, mdreport, "-bench-compare", budgets, dir)
	if !strings.Contains(out, "within") {
		t.Fatalf("seeded compare:\n%s", out)
	}

	// A large slowdown beyond the headroom fails.
	slow := experiments.BenchRecord{
		Machine: "k5", Checker: "probeplan",
		Blocks: 1240, BlocksPerSec: 4000, ChecksPerAttempt: 6.0,
	}
	newDir := t.TempDir()
	writeBench(t, newDir, slow)
	var buf bytes.Buffer
	err := RunMDReport([]string{"-bench-compare", budgets, newDir}, &buf)
	if err == nil || !strings.Contains(buf.String(), "BENCH REGRESSION") {
		t.Fatalf("10x slowdown passed budgets: err=%v\n%s", err, buf.String())
	}
}

func TestBenchCompareArgErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMDReport([]string{"-bench-compare", "one-arg-only"}, &buf); err == nil {
		t.Error("one positional arg accepted")
	}
	if err := RunMDReport([]string{"-seed-bench-budgets", "out.json"}, &buf); err == nil {
		t.Error("missing records arg accepted")
	}
}
