// Package tools implements the logic of the command-line tools (mdc,
// mdinfo, schedbench, mdviz) as testable functions; the cmd/ mains are
// thin wrappers over these.
package tools

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"mdes/internal/cli"
	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/opt"
	"mdes/internal/textutil"
	"mdes/internal/verify"
)

// RunMDC is the mdc tool: compile a machine description, optimize it,
// report per-pass effects and sizes, optionally emit canonical source,
// dump structure, or write the binary fast-load form.
func RunMDC(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdc", flag.ContinueOnError)
	fs.SetOutput(stdout)

	var (
		machineFlag = fs.String("m", "", "built-in machine name (pa7100, pentium, supersparc, k5)")
		inFlag      = fs.String("in", "", "path to a high-level MDES source file")
		formFlag    = fs.String("form", "andor", "representation: or | andor")
		levelFlag   = fs.String("level", "full", "optimization level: none | redundancy | bit-vector | time-shift | full")
		dirFlag     = fs.String("dir", "forward", "usage-time shift direction: forward | backward")
		dumpFlag    = fs.Bool("dump", false, "dump the compiled constraint structure")
		emitFlag    = fs.Bool("emit", false, "emit the canonicalized high-level source and exit")
		outFlag     = fs.String("o", "", "write the optimized low-level MDES to this file (binary fast-load format)")
		arenaFlag   = fs.String("emit-arena", "", "write the optimized description as a flat arena (MDAR, zero-copy load format) to this file")
		factorFlag  = fs.Bool("factor", false, "discover AND/OR structure in flat OR-trees before optimizing")
		verifyFlag  = fs.Bool("verify", false, "differentially verify the machine: every pass and checker backend against the reference interpreter")
		vseedFlag   = fs.Int64("verifyseed", 1996, "instruction-stream seed for -verify")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	machine, err := cli.LoadMachine(*machineFlag, *inFlag)
	if err != nil {
		return err
	}
	if *emitFlag {
		fmt.Fprint(stdout, hmdes.Format(machine))
		return nil
	}
	if *verifyFlag {
		c, err := verify.CheckMachineStats(machine, *vseedFlag)
		if err != nil {
			return fmt.Errorf("machine %s FAILED verification: %w", machine.Name, err)
		}
		fmt.Fprintf(stdout, "machine %s verified: all optimization passes and checker backends agree with the reference interpretation\n", machine.Name)
		fmt.Fprintf(stdout, "differential evidence: %s\n", c.String())
		return nil
	}
	form, err := cli.ParseForm(*formFlag)
	if err != nil {
		return err
	}
	level, err := cli.ParseLevel(*levelFlag)
	if err != nil {
		return err
	}
	dir, err := cli.ParseDirection(*dirFlag)
	if err != nil {
		return err
	}

	ll := lowlevel.Compile(machine, form)
	before := ll.Size()
	var reports []opt.Report
	if *factorFlag {
		opt.EliminateRedundant(ll)
		reports = append(reports, opt.FactorORTrees(ll))
	}
	reports = append(reports, opt.Apply(ll, level, dir)...)
	after := ll.Size()

	fmt.Fprintf(stdout, "machine %s, %s form, %s level\n\n", machine.Name, form, level)
	if len(reports) == 0 {
		fmt.Fprintln(stdout, "(no optimization passes run)")
	}
	for _, r := range reports {
		fmt.Fprintln(stdout, " ", r)
	}
	fmt.Fprintln(stdout)

	t := textutil.NewTable("", "Trees", "Options", "Option bytes", "Tree bytes", "AND bytes", "Binding bytes", "Total")
	t.Row("before", before.NumTrees, before.NumOptions, before.OptionBytes, before.TreeBytes, before.AndBytes, before.BindingBytes, before.Total())
	t.Row("after", after.NumTrees, after.NumOptions, after.OptionBytes, after.TreeBytes, after.AndBytes, after.BindingBytes, after.Total())
	fmt.Fprintln(stdout, t.String())
	fmt.Fprintf(stdout, "size reduction: %s\n", textutil.Percent(float64(before.Total()), float64(after.Total())))

	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			return err
		}
		if err := ll.Encode(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Verify by reloading.
		rf, err := os.Open(*outFlag)
		if err != nil {
			return err
		}
		back, err := lowlevel.Decode(rf)
		rf.Close()
		if err != nil {
			return (fmt.Errorf("reload verification failed: %w", err))
		}
		if back.Size() != ll.Size() {
			return (fmt.Errorf("reload verification: size mismatch"))
		}
		st, _ := os.Stat(*outFlag)
		fmt.Fprintf(stdout, "wrote %s (%d bytes on disk, verified)\n", *outFlag, st.Size())
	}

	if *arenaFlag != "" {
		arena, err := ll.EncodeArena()
		if err != nil {
			return fmt.Errorf("arena encode: %w", err)
		}
		if err := os.WriteFile(*arenaFlag, arena, 0o644); err != nil {
			return err
		}
		// Verify by reopening the written file and checking losslessness
		// against the in-memory description.
		data, err := os.ReadFile(*arenaFlag)
		if err != nil {
			return err
		}
		a, err := lowlevel.OpenArena(data)
		if err != nil {
			return fmt.Errorf("arena reload verification failed: %w", err)
		}
		var wantV3, gotV3 bytes.Buffer
		if err := ll.Encode(&wantV3); err != nil {
			return err
		}
		if err := a.MDES().Encode(&gotV3); err != nil {
			return fmt.Errorf("arena reload verification: %w", err)
		}
		if !bytes.Equal(wantV3.Bytes(), gotV3.Bytes()) {
			return fmt.Errorf("arena reload verification: round trip is lossy")
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes, machine %s, reopened and verified lossless)\n",
			*arenaFlag, len(arena), a.MachineName())
	}

	if *dumpFlag {
		fmt.Fprintln(stdout)
		cli.DumpCompiled(stdout, ll)
	}
	return nil
}
