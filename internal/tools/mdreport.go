package tools

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mdes/internal/cli"
	"mdes/internal/experiments"
	"mdes/internal/hmdes"
	"mdes/internal/machines"
)

// RunMDReport is the mdreport tool: render the translator's pass ledger
// and the paper's per-machine tables (5, 7-12) for any machine, emit the
// report as JSON, and gate optimized size and check counts against
// checked-in budgets (the CI size-regression job).
func RunMDReport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdreport", flag.ContinueOnError)
	fs.SetOutput(stdout)

	var (
		machineFlag = fs.String("m", "", "built-in machine name (default: all builtin machines)")
		inFlag      = fs.String("in", "", "path to a high-level MDES source file")
		jsonFlag    = fs.Bool("json", false, "emit the reports as JSON instead of tables")
		outFlag     = fs.String("out", "", "directory to write one <machine>.json report per machine (CI artifacts)")
		checkFlag   = fs.String("check", "", "budgets.json to check reports against; exits nonzero on any regression")
		seedBudgets = fs.String("seed-budgets", "", "write a budgets.json derived from the measured reports")
		headroom    = fs.Float64("headroom", 0.05, "fractional headroom for -seed-budgets (0.05 = 5%)")
		opsFlag     = fs.Int("ops", 20000, "workload size for the scheduling tables (builtin machines)")
		seedFlag    = fs.Int64("seed", 1996, "workload seed")

		tuneFlag    = fs.Bool("tune", false, "profile-guided tuning loop: record/replay a trace, reorder checks from the observed conflict profile, accept only byte-identical schedules with fewer checks")
		traceFlag   = fs.String("trace", "", "with -tune: tune against this mdtrace recording instead of recording one")
		formFlag    = fs.String("form", "andor", "with -tune: representation form when recording (or | andor)")
		levelFlag   = fs.String("level", "full", "with -tune: optimization level when recording (none | redundancy | bit-vector | time-shift | full)")
		checkerFlag = fs.String("checker", "", "with -tune: conflict-checker backend (default rumap, or the recording's with -trace)")
		shardsFlag  = fs.Int("shards", 4, "with -tune: workload generator shards when recording")
		workersFlag = fs.Int("workers", 8, "with -tune: scheduling goroutines")
		tuneOut     = fs.String("tune-out", "", "with -tune: directory for TUNED_*.mdes and PROFILE_*.mdpf artifacts")
		tuneMinGain = fs.Float64("tune-min-gain", 0, "with -tune: reject unless OptionsChecked+ResourceChecks drop at least this many percent")
		tuneCache   = fs.String("cache-dir", "", "with -tune: publish the accepted tuned layout as an arena into this compiled-description cache (LoadCached WithTuned slot)")

		benchCompare   = fs.Bool("bench-compare", false, "compare BENCH trajectories: args are <old> <new>, old a bench_budgets.json or BENCH file/dir, new a BENCH file/dir; non-zero exit on regression")
		benchTol       = fs.Float64("bench-tol", 0.40, "with -bench-compare: fractional blocks/s regression tolerance against an old trajectory (wall clock is noisy)")
		benchChecksTol = fs.Float64("bench-checks-tol", 0.02, "with -bench-compare: fractional checks/attempt tolerance (the counter is deterministic)")
		seedBenchOut   = fs.String("seed-bench-budgets", "", "write a bench_budgets.json derived from a BENCH file/dir (first arg) to this path")
		benchHeadroom  = fs.Float64("bench-headroom", 0.60, "with -seed-bench-budgets: fractional blocks/s headroom (CI runners are slower than the seeding machine)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tuneFlag {
		machine := *machineFlag
		if machine == "" {
			machine = string(machines.K5)
		}
		return runTune(stdout, tuneConfig{
			machine:  machine,
			trace:    *traceFlag,
			form:     *formFlag,
			level:    *levelFlag,
			checker:  *checkerFlag,
			ops:      *opsFlag,
			seed:     *seedFlag,
			shards:   *shardsFlag,
			workers:  *workersFlag,
			out:      *tuneOut,
			minGain:  *tuneMinGain,
			cacheDir: *tuneCache,
		})
	}
	if *benchCompare {
		if fs.NArg() != 2 {
			return fmt.Errorf("mdreport -bench-compare: want <old> <new>, got %d args", fs.NArg())
		}
		return runBenchCompare(stdout, fs.Arg(0), fs.Arg(1), *benchTol, *benchChecksTol)
	}
	if *seedBenchOut != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("mdreport -seed-bench-budgets: want one BENCH file/dir arg, got %d", fs.NArg())
		}
		return runSeedBenchBudgets(stdout, fs.Arg(0), *seedBenchOut, *benchHeadroom, *benchChecksTol)
	}

	p := experiments.Params{NumOps: *opsFlag, Seed: *seedFlag}
	reports, err := buildReports(*machineFlag, *inFlag, p)
	if err != nil {
		return err
	}

	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			return err
		}
		for _, r := range reports {
			data, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				return err
			}
			path := filepath.Join(*outFlag, r.Machine+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}

	switch {
	case *jsonFlag:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	default:
		for _, r := range reports {
			fmt.Fprintln(stdout, experiments.FormatMachineReport(r))
		}
	}

	if *seedBudgets != "" {
		b := experiments.SeedBudgets(reports, *headroom)
		data, err := b.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*seedBudgets, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "seeded %s (%d machines, %.0f%% headroom)\n",
			*seedBudgets, len(b), *headroom*100)
	}

	if *checkFlag != "" {
		budgets, err := experiments.LoadBudgets(*checkFlag)
		if err != nil {
			return err
		}
		if violations := experiments.CheckBudgets(budgets, reports); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(stdout, "BUDGET EXCEEDED: %s\n", v)
			}
			return fmt.Errorf("%d budget violation(s) against %s", len(violations), *checkFlag)
		}
		fmt.Fprintf(stdout, "all %d machine(s) within %s budgets\n", len(reports), *checkFlag)
	}
	return nil
}

// buildReports resolves the machine selection: one builtin, one source
// file, or (default) every builtin machine.
func buildReports(builtin, path string, p experiments.Params) ([]*experiments.MachineReport, error) {
	var targets []struct {
		name    string
		m       *hmdes.Machine
		builtin machines.Name
	}
	switch {
	case builtin != "" && path != "":
		return nil, fmt.Errorf("give either -m or -in, not both")
	case path != "":
		m, err := cli.LoadMachine("", path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		targets = append(targets, struct {
			name    string
			m       *hmdes.Machine
			builtin machines.Name
		}{name, m, ""})
	default:
		names := machines.All
		if builtin != "" {
			names = []machines.Name{machines.Name(strings.ToLower(builtin))}
		}
		for _, n := range names {
			m, err := machines.Load(n)
			if err != nil {
				return nil, err
			}
			targets = append(targets, struct {
				name    string
				m       *hmdes.Machine
				builtin machines.Name
			}{string(n), m, n})
		}
	}
	var reports []*experiments.MachineReport
	for _, t := range targets {
		r, err := experiments.BuildMachineReport(t.name, t.m, t.builtin, p)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}
