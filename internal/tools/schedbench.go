package tools

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"mdes"
	"mdes/internal/cli"
	"mdes/internal/experiments"
	"mdes/internal/machines"
	"mdes/internal/workload"
)

// RunSchedbench is the schedbench tool: regenerate the paper's tables and
// Figure 2, or (with -metrics/-trace/-report) run one machine's workload
// under the observability layer.
func RunSchedbench(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedbench", flag.ContinueOnError)
	fs.SetOutput(stdout)

	var (
		tableFlag    = fs.Int("table", 0, "regenerate a single table (1-15); 0 = all")
		fig2Flag     = fs.Bool("fig2", false, "regenerate Figure 2 only")
		extFlag      = fs.Bool("ext", false, "report the extension ablations (factorization, automaton, E-D, modulo)")
		parallelFlag = fs.Int("parallel", 0, "run the concurrent-serving benchmark sweeping parallelism up to N over one shared frozen MDES")
		opsFlag      = fs.Int("ops", 20000, "static operations per machine")
		seedFlag     = fs.Int64("seed", 1996, "workload seed")

		machineFlag    = fs.String("machine", string(machines.K5), "machine for the observability run (-metrics/-trace/-report)")
		metricsFlag    = fs.String("metrics", "", "serve /metrics, /metrics.json, /healthz and /debug/pprof on this address during the run (e.g. :8080)")
		traceFlag      = fs.String("trace", "", "write one JSON trace line per scheduled block to this file")
		sampleFlag     = fs.Int("tracesample", 1, "trace 1 in N blocks")
		reportFlag     = fs.Bool("report", false, "print the metrics registry as tables after the run")
		profileFlag    = fs.Bool("profile", false, "attach the conflict-attribution profiler (served at /debug/profile with -metrics, printed with -report)")
		checkerFlag    = fs.String("checker", "rumap", "conflict-checker backend for the observability run: rumap, automaton or probeplan")
		repeatFlag     = fs.Int("repeat", 1, "schedule the workload N times (gives -metrics something to watch)")
		workersFlag    = fs.Int("workers", 8, "scheduling goroutines for the observability run")
		flightFlag     = fs.Bool("flight", false, "attach the always-on flight recorder (tail quantiles, anomaly capture; served at /debug/flight with -metrics)")
		flightdumpFlag = fs.String("flightdump", "", "write the flight recorder's JSON dump to this file after the run (implies -flight)")

		benchjsonFlag = fs.String("benchjson", "", "write one BENCH_<machine>_<checker>.json perf artifact (blocks/s, ms/op, checks/attempt) per machine x checker to this directory, plus BENCH_<machine>_coldstart-*.json cold-start records")
		cachedirFlag  = fs.String("cachedir", "", "build the observability run's engine through the compiled-description cache in this directory (EngineFromCache) instead of the in-process pipeline")

		selftestFlag = fs.Bool("selftest", false, "run the differential correctness harness (hand-written + generated machines); -seed sets the first generator seed")
		countFlag    = fs.Int("n", 200, "generated machines to verify with -selftest")
		failoutFlag  = fs.String("failout", "", "write failing-seed reproducers (.txt report + minimized .mdes) to this directory with -selftest")

		serveFlag     = fs.String("serve", "", "soak a live mdesd daemon at this base URL (e.g. http://127.0.0.1:7077), or 'self' to start an in-process daemon for the run")
		soakDurFlag   = fs.Duration("soak-duration", 30*time.Second, "soak duration with -serve")
		soakTenFlag   = fs.Int("soak-tenants", 2, "tenants to soak with -serve (machines assigned round-robin)")
		soakCliFlag   = fs.Int("soak-clients", 8, "concurrent clients per tenant with -serve")
		soakOpsFlag   = fs.Int("soak-ops", 400, "static operations per scheduled batch with -serve")
		soakFloorFlag = fs.Float64("soak-floor", 0, "fail the soak if sustained blocks/s falls below this floor (0 disables the gate)")
		soakSwapFlag  = fs.Bool("soak-swap", false, "hot-swap every tenant's description mid-soak and assert drain + fingerprint discipline")
		soakFaultFlag = fs.Bool("soak-faults", false, "inject protocol/content faults mid-soak and assert structured degradation")
		soakOutFlag   = fs.String("soak-out", "", "write the soak's JSON report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.Params{NumOps: *opsFlag, Seed: *seedFlag}

	if *serveFlag != "" {
		return runSoak(stdout, soakConfig{
			target:   *serveFlag,
			duration: *soakDurFlag,
			tenants:  *soakTenFlag,
			clients:  *soakCliFlag,
			numOps:   *soakOpsFlag,
			floor:    *soakFloorFlag,
			swap:     *soakSwapFlag,
			faults:   *soakFaultFlag,
			out:      *soakOutFlag,
			seed:     *seedFlag,
		})
	}

	if *selftestFlag {
		return runSelftest(stdout, *seedFlag, *countFlag, *failoutFlag)
	}

	if *benchjsonFlag != "" {
		return runBenchJSON(stdout, p, *benchjsonFlag)
	}

	if *metricsFlag != "" || *traceFlag != "" || *reportFlag || *flightFlag || *flightdumpFlag != "" || *profileFlag || *cachedirFlag != "" {
		kind, err := mdes.ParseCheckerKind(*checkerFlag)
		if err != nil {
			fmt.Fprintf(stdout, "unknown checker %q\n%s", *checkerFlag, cli.FormatCheckerKinds())
			return nil
		}
		return runObserve(stdout, p, observeConfig{
			machine:    machines.Name(*machineFlag),
			checker:    kind,
			metrics:    *metricsFlag,
			trace:      *traceFlag,
			sample:     *sampleFlag,
			report:     *reportFlag,
			profile:    *profileFlag,
			repeat:     *repeatFlag,
			workers:    *workersFlag,
			flight:     *flightFlag || *flightdumpFlag != "",
			flightdump: *flightdumpFlag,
			cachedir:   *cachedirFlag,
		})
	}
	if *parallelFlag > 0 {
		return runParallel(stdout, p, *parallelFlag)
	}
	if *extFlag {
		rep, err := experiments.RunExtensions(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, rep.Format())
		return nil
	}
	if *fig2Flag {
		return runFig2(stdout, p)
	}
	if *tableFlag != 0 {
		return runTable(stdout, *tableFlag, p)
	}
	for n := 1; n <= 15; n++ {
		if err := runTable(stdout, n, p); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return runFig2(stdout, p)
}

// observeConfig parameterizes the observability run.
type observeConfig struct {
	machine    machines.Name
	checker    mdes.CheckerKind
	metrics    string
	trace      string
	sample     int
	report     bool
	profile    bool
	repeat     int
	workers    int
	flight     bool
	flightdump string
	cachedir   string
}

// runObserve schedules one machine's workload on an Engine with the
// observability layer attached: a metrics registry (optionally served
// over HTTP alongside pprof), a JSONL block tracer, and the
// human-readable report.
func runObserve(stdout io.Writer, p experiments.Params, cfg observeConfig) error {
	var compiled *mdes.Compiled
	if cfg.cachedir != "" {
		// Cache-backed cold start: consult (and populate) the
		// compiled-description cache. A warm hit skips the whole pipeline,
		// so there is no translator ledger to publish on that path.
		src, err := machines.Source(cfg.machine)
		if err != nil {
			return err
		}
		start := time.Now()
		compiled, err = mdes.LoadCached(string(cfg.machine)+".mdes", src,
			mdes.FormAndOr, mdes.LevelFull, cfg.cachedir)
		if err != nil {
			return err
		}
		state := "cold (pipeline ran, entry stored)"
		if compiled.Frozen() {
			state = "warm (frozen zero-copy arena view)"
		}
		fmt.Fprintf(stdout, "cache %s: %s hit in %s\n", cfg.cachedir, state, time.Since(start).Round(time.Microsecond))
	}
	var led *mdes.Ledger
	if compiled == nil {
		machine, err := machines.Load(cfg.machine)
		if err != nil {
			return err
		}
		compiled = mdes.Compile(machine, mdes.FormAndOr)
		led, _ = mdes.OptimizeWithLedger(compiled, mdes.LevelFull, mdes.Forward)
		led.Machine = string(cfg.machine)
	}

	metrics := mdes.NewMetrics(compiled)
	if led != nil {
		// Publish the translator's pass ledger so -report and the HTTP
		// exporters cover compile time and run time in one pipe.
		metrics.SetTranslator(led)
	}
	opts := []mdes.EngineOption{mdes.WithMetrics(metrics), mdes.WithChecker(cfg.checker)}
	if cfg.trace != "" {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		opts = append(opts, mdes.WithTracer(mdes.NewJSONLTracer(f, cfg.sample)))
	}
	var flight *mdes.FlightRecorder
	if cfg.flight {
		flight = mdes.NewFlightRecorder(mdes.FlightConfig{})
		opts = append(opts, mdes.WithFlight(flight))
	}
	var prof *mdes.ConflictProfile
	if cfg.profile {
		prof = mdes.NewConflictProfile(compiled)
		opts = append(opts, mdes.WithProfile(prof))
	}
	eng, err := mdes.NewEngine(compiled, opts...)
	if err != nil {
		return err
	}
	if cfg.metrics != "" {
		var srvOpts []mdes.ServerOption
		if flight != nil {
			srvOpts = append(srvOpts, mdes.WithFlightExporter(flight))
		}
		if prof != nil {
			srvOpts = append(srvOpts, mdes.WithProfileExporter(prof))
		}
		srv, err := mdes.ServeMetrics(cfg.metrics, metrics, srvOpts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "serving http://%s/metrics (+ /metrics.json, /healthz, /debug/pprof) during the run\n", srv.Addr)
	}

	prog, err := workload.GenerateParallel(workload.Config{Machine: cfg.machine, NumOps: p.NumOps, Seed: p.Seed}, 4)
	if err != nil {
		return err
	}
	if prof != nil {
		prof.SetWorkload(fmt.Sprintf("%s ops=%d seed=%d", cfg.machine, p.NumOps, p.Seed))
	}
	if cfg.repeat < 1 {
		cfg.repeat = 1
	}
	start := time.Now()
	for i := 0; i < cfg.repeat; i++ {
		if _, _, err := eng.ScheduleBlocks(context.Background(), prog.Blocks, cfg.workers); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "%s [checker=%s]: scheduled %d blocks x%d (%d ops) with %d workers in %s: %s\n",
		cfg.machine, eng.CheckerKind(), len(prog.Blocks), cfg.repeat, p.NumOps, cfg.workers,
		elapsed.Round(time.Microsecond), eng.Totals())
	if cfg.trace != "" {
		fmt.Fprintf(stdout, "trace written to %s\n", cfg.trace)
	}
	if flight != nil {
		blocks, anomalies := flight.Status()
		fmt.Fprintf(stdout, "flight recorder: %d blocks merged, %d anomalies\n", blocks, anomalies)
		if cfg.flightdump != "" {
			f, err := os.Create(cfg.flightdump)
			if err != nil {
				return err
			}
			err = flight.WriteDump(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "flight dump written to %s\n", cfg.flightdump)
		}
	}
	if cfg.report {
		fmt.Fprintln(stdout, mdes.FormatMetrics(metrics))
	}
	if prof != nil && cfg.report {
		fmt.Fprintln(stdout, mdes.FormatProfile(prof.Snapshot(), 0))
	}
	return nil
}

// runParallel is the concurrent-serving benchmark: one frozen compiled
// description per machine, scheduled by pools of 1..maxPar goroutines
// borrowing contexts from the engine. Schedule lengths are verified
// identical to the serial run at every parallelism level; speedup is
// bounded by min(parallelism, GOMAXPROCS).
func runParallel(stdout io.Writer, p experiments.Params, maxPar int) error {
	fmt.Fprintf(stdout, "Concurrent scheduling: shared frozen MDES, pooled contexts (%d ops/machine)\n", p.NumOps)
	fmt.Fprintf(stdout, "%-12s %9s %12s %12s %9s\n", "machine", "parallel", "wall-clock", "blocks/s", "speedup")
	for _, name := range machines.All {
		machine, err := machines.Load(name)
		if err != nil {
			return err
		}
		compiled := mdes.Compile(machine, mdes.FormAndOr)
		mdes.Optimize(compiled, mdes.LevelFull)
		eng, err := mdes.NewEngine(compiled)
		if err != nil {
			return err
		}
		prog, err := workload.GenerateParallel(workload.Config{Machine: name, NumOps: p.NumOps, Seed: p.Seed}, 4)
		if err != nil {
			return err
		}
		var base time.Duration
		var serial []*mdes.Result
		for par := 1; par <= maxPar; par *= 2 {
			start := time.Now()
			results, _, err := eng.ScheduleBlocks(context.Background(), prog.Blocks, par)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			if par == 1 {
				base, serial = elapsed, results
			} else {
				for bi, r := range results {
					if r.Length != serial[bi].Length {
						return fmt.Errorf("%s parallelism %d block %d: length %d != serial %d",
							name, par, bi, r.Length, serial[bi].Length)
					}
				}
			}
			fmt.Fprintf(stdout, "%-12s %9d %12s %12.0f %8.2fx\n",
				name, par, elapsed.Round(time.Microsecond),
				float64(len(prog.Blocks))/elapsed.Seconds(), float64(base)/float64(elapsed))
		}
	}
	return nil
}

// runBenchJSON schedules every built-in machine's workload once per
// checker backend and writes one BENCH_<machine>_<checker>.json artifact
// per eligible pair to dir (the experiments.BenchRecord format that
// `mdreport -bench-compare` gates on). Backends a machine is ineligible
// for (e.g. the automaton's resource-count limit) are reported and
// skipped, not errors.
func runBenchJSON(stdout io.Writer, p experiments.Params, dir string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	commit := benchCommit()
	generatedAt := time.Now().UTC().Format(time.RFC3339)
	const rounds = 3
	for _, name := range machines.All {
		machine, err := machines.Load(name)
		if err != nil {
			return err
		}
		compiled := mdes.Compile(machine, mdes.FormAndOr)
		mdes.Optimize(compiled, mdes.LevelFull)
		fingerprint, err := compiled.Fingerprint()
		if err != nil {
			return err
		}
		prog, err := workload.GenerateParallel(workload.Config{Machine: name, NumOps: p.NumOps, Seed: p.Seed}, 4)
		if err != nil {
			return err
		}
		for _, kind := range mdes.CheckerKinds() {
			eng, err := mdes.NewEngine(compiled, mdes.WithChecker(kind))
			if err != nil {
				fmt.Fprintf(stdout, "%s/%s: skipped (%v)\n", name, kind, err)
				continue
			}
			best := time.Duration(1<<63 - 1)
			var total mdes.Counters
			for i := 0; i < rounds; i++ {
				start := time.Now()
				if _, total, err = eng.ScheduleBlocks(context.Background(), prog.Blocks, 1); err != nil {
					return err
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			art := experiments.BenchRecord{
				Schema:           experiments.BenchSchema,
				MachineHash:      fingerprint,
				Commit:           commit,
				GeneratedAt:      generatedAt,
				Machine:          string(name),
				Checker:          kind.String(),
				NumOps:           p.NumOps,
				Seed:             p.Seed,
				Blocks:           len(prog.Blocks),
				Rounds:           rounds,
				BlocksPerSec:     float64(len(prog.Blocks)) / best.Seconds(),
				MsPerOp:          best.Seconds() * 1e3 / float64(p.NumOps),
				ChecksPerAttempt: float64(total.ResourceChecks) / float64(total.Attempts),
			}
			path := filepath.Join(dir, fmt.Sprintf("BENCH_%s_%s.json", name, kind))
			data, err := json.MarshalIndent(art, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: %.0f blocks/s, %.4f ms/op, %.2f checks/attempt\n",
				path, art.BlocksPerSec, art.MsPerOp, art.ChecksPerAttempt)
		}
		if err := writeColdstartRecords(stdout, dir, name, commit, generatedAt); err != nil {
			return err
		}
	}
	return nil
}

// writeColdstartRecords measures time-to-Engine for one machine over the
// two cold-start paths the description cache trades between — the full
// HMDES parse → compile → optimize pipeline, and a verified arena open —
// and writes each as a BENCH record whose rate is engine starts per
// second. FormOR/LevelFull with a probe-plan engine is the configuration
// the paper's cold-start numbers are quoted for, and what
// TestColdStartSpeedupGate gates at 50×. ChecksPerAttempt is zero: no
// scheduling happens, so the checks budget is ungated by convention.
func writeColdstartRecords(stdout io.Writer, dir string, name machines.Name, commit, generatedAt string) error {
	src, err := machines.Source(name)
	if err != nil {
		return err
	}
	pipeline := func() (*mdes.Engine, error) {
		m, err := mdes.Load(string(name)+".mdes", src)
		if err != nil {
			return nil, err
		}
		c := mdes.Compile(m, mdes.FormOR)
		mdes.Optimize(c, mdes.LevelFull)
		return mdes.NewEngine(c, mdes.WithChecker(mdes.CheckerProbePlan))
	}
	// One pipeline run seeds the arena buffer and the record's fingerprint.
	eng, err := pipeline()
	if err != nil {
		return err
	}
	fingerprint, err := eng.Compiled().Fingerprint()
	if err != nil {
		return err
	}
	arena, err := mdes.EncodeArena(eng.Compiled())
	if err != nil {
		return err
	}
	arenaOpen := func() (*mdes.Engine, error) {
		a, err := mdes.OpenArena(arena)
		if err != nil {
			return nil, err
		}
		return mdes.NewEngine(a.FrozenMDES(), mdes.WithChecker(mdes.CheckerProbePlan))
	}
	paths := []struct {
		checker string
		rounds  int
		start   func() (*mdes.Engine, error)
	}{
		// The arena path gets more rounds: it is microseconds-fast, so
		// min-of-N needs more samples to shed scheduler noise.
		{"coldstart-pipeline", 3, pipeline},
		{"coldstart-arena", 15, arenaOpen},
	}
	for _, p := range paths {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < p.rounds; i++ {
			start := time.Now()
			if _, err := p.start(); err != nil {
				return err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		art := experiments.BenchRecord{
			Schema:       experiments.BenchSchema,
			MachineHash:  fingerprint,
			Commit:       commit,
			GeneratedAt:  generatedAt,
			Machine:      string(name),
			Checker:      p.checker,
			Blocks:       1,
			Rounds:       p.rounds,
			BlocksPerSec: 1 / best.Seconds(),
			MsPerOp:      best.Seconds() * 1e3,
		}
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s_%s.json", name, p.checker))
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: %.0f engine starts/s, %.4f ms/start\n", path, art.BlocksPerSec, art.MsPerOp)
	}
	return nil
}

// benchCommit resolves the source revision bench artifacts are stamped
// with: GITHUB_SHA in CI, the working tree's HEAD locally, "unknown"
// outside a checkout.
func benchCommit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func runFig2(stdout io.Writer, p experiments.Params) error {
	f, err := experiments.RunFigure2(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, f.Format())
	return nil
}

func runTable(stdout io.Writer, n int, p experiments.Params) error {
	switch n {
	case 1, 2, 3, 4:
		name := machines.All[map[int]int{2: 0, 3: 1, 1: 2, 4: 3}[n]]
		rows, res, err := experiments.Breakdown(name, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Table %d: ", n)
		fmt.Fprintln(stdout, experiments.FormatBreakdown(name, rows))
		fmt.Fprintf(stdout, "(%d ops, %.2f attempts/op)\n", res.TotalOps, res.AttemptsPerOp())
	case 5:
		rows, err := experiments.Table5(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable5(rows))
	case 6:
		rows, err := experiments.Table6()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatSizeRows("Table 6: original MDES memory requirements", rows))
	case 7:
		rows, err := experiments.Table7()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatSizeRows("Table 7: MDES memory after eliminating redundant and unused information", rows))
	case 8:
		row, err := experiments.Table8(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable8(row))
	case 9:
		rows, err := experiments.Table9()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatBeforeAfter("Table 9: MDES size before/after bit-vector packing", "bytes", rows))
	case 10:
		rows, err := experiments.Table10(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatBeforeAfter("Table 10: scheduling checks before/after bit-vector packing", "checks/attempt", rows))
	case 11:
		rows, err := experiments.Table11()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatBeforeAfter("Table 11: MDES size before/after usage-time transformation", "bytes", rows))
	case 12:
		rows, err := experiments.Table12(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable12(rows))
	case 13:
		rows, err := experiments.Table13(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable13(rows))
	case 14:
		rows, err := experiments.Table14()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatAggregate("Table 14: aggregate effect of all transformations on MDES size", "bytes", rows))
	case 15:
		rows, err := experiments.Table15(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatAggregate("Table 15: aggregate effect of all transformations on checks per attempt", "checks/attempt", rows))
	default:
		return fmt.Errorf("no table %d (valid: 1-15)", n)
	}
	return nil
}
