package mdgen

// Minimize greedily shrinks a failing spec while pred keeps reporting the
// failure, and returns the smallest still-failing spec found. pred must be
// a pure function of the spec (typically: render, load, re-run the
// differential check, report whether it still fails).
//
// The reduction moves, coarse to fine: drop operations, bypasses, and
// cascaded references; drop classes no operation references; drop one tree
// from a class; drop unreferenced named trees; drop one option from a
// tree; drop one usage from an option. Each adopted move strictly shrinks
// the spec, so the loop terminates; budget bounds the pred calls for
// pathological predicates.
func Minimize(s *Spec, pred func(*Spec) bool) *Spec {
	cur := s.Clone()
	budget := 2000
	try := func(candidate *Spec) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if pred(candidate) {
			cur = candidate
			return true
		}
		return false
	}
	for changed := true; changed && budget > 0; {
		changed = false
		for _, reduce := range []func(*Spec, func(*Spec) bool) bool{
			dropOps,
			dropBypasses,
			dropCascades,
			dropDeadClasses,
			dropClassTrees,
			dropDeadNamed,
			dropOptions,
			dropUsages,
		} {
			if reduce(cur, try) {
				changed = true
			}
		}
	}
	return cur
}

// dropOps removes operations one at a time (keeping at least one, since
// the analyzer rejects machines without operations).
func dropOps(s *Spec, try func(*Spec) bool) bool {
	any := false
	for i := 0; i < len(s.Ops) && len(s.Ops) > 1; {
		c := s.Clone()
		c.Ops = append(c.Ops[:i], c.Ops[i+1:]...)
		// Bypass edges index operations; remap or drop them.
		var keep []Bypass
		for _, b := range c.Bypass {
			if b.From == i || b.To == i {
				continue
			}
			if b.From > i {
				b.From--
			}
			if b.To > i {
				b.To--
			}
			keep = append(keep, b)
		}
		c.Bypass = keep
		if try(c) {
			*s = *c
			any = true
			continue
		}
		i++
	}
	return any
}

func dropBypasses(s *Spec, try func(*Spec) bool) bool {
	any := false
	for i := 0; i < len(s.Bypass); {
		c := s.Clone()
		c.Bypass = append(c.Bypass[:i], c.Bypass[i+1:]...)
		if try(c) {
			*s = *c
			any = true
			continue
		}
		i++
	}
	return any
}

func dropCascades(s *Spec, try func(*Spec) bool) bool {
	any := false
	for i := range s.Ops {
		if s.Ops[i].Cascaded < 0 {
			continue
		}
		c := s.Clone()
		c.Ops[i].Cascaded = -1
		if try(c) {
			*s = *c
			any = true
		}
	}
	return any
}

// dropDeadClasses removes classes no operation uses (directly or as a
// cascaded form), remapping operation class indices.
func dropDeadClasses(s *Spec, try func(*Spec) bool) bool {
	live := make([]bool, len(s.Classes))
	for _, op := range s.Ops {
		live[op.Class] = true
		if op.Cascaded >= 0 {
			live[op.Cascaded] = true
		}
	}
	remap := make([]int, len(s.Classes))
	c := s.Clone()
	c.Classes = nil
	for i, cl := range s.Classes {
		if live[i] {
			remap[i] = len(c.Classes)
			c.Classes = append(c.Classes, cl)
		} else {
			remap[i] = -1
		}
	}
	if len(c.Classes) == len(s.Classes) {
		return false
	}
	for i := range c.Ops {
		c.Ops[i].Class = remap[c.Ops[i].Class]
		if c.Ops[i].Cascaded >= 0 {
			c.Ops[i].Cascaded = remap[c.Ops[i].Cascaded]
		}
	}
	if try(c) {
		*s = *c
		return true
	}
	return false
}

// dropClassTrees removes one tree (named reference or inline) from a class
// at a time, keeping at least one tree per class.
func dropClassTrees(s *Spec, try func(*Spec) bool) bool {
	any := false
	for ci := range s.Classes {
		for ri := 0; ri < len(s.Classes[ci].Refs); {
			if len(s.Classes[ci].Refs)+len(s.Classes[ci].Inline) <= 1 {
				break
			}
			c := s.Clone()
			c.Classes[ci].Refs = append(c.Classes[ci].Refs[:ri], c.Classes[ci].Refs[ri+1:]...)
			if try(c) {
				*s = *c
				any = true
				continue
			}
			ri++
		}
		for ti := 0; ti < len(s.Classes[ci].Inline); {
			if len(s.Classes[ci].Refs)+len(s.Classes[ci].Inline) <= 1 {
				break
			}
			c := s.Clone()
			c.Classes[ci].Inline = append(c.Classes[ci].Inline[:ti], c.Classes[ci].Inline[ti+1:]...)
			if try(c) {
				*s = *c
				any = true
				continue
			}
			ti++
		}
	}
	return any
}

// dropDeadNamed removes named trees no class references, remapping
// reference indices.
func dropDeadNamed(s *Spec, try func(*Spec) bool) bool {
	live := make([]bool, len(s.Named))
	for _, cl := range s.Classes {
		for _, r := range cl.Refs {
			live[r] = true
		}
	}
	c := s.Clone()
	remap := make([]int, len(s.Named))
	c.Named = nil
	for i, t := range s.Named {
		if live[i] {
			remap[i] = len(c.Named)
			c.Named = append(c.Named, t)
		} else {
			remap[i] = -1
		}
	}
	if len(c.Named) == len(s.Named) {
		return false
	}
	for ci := range c.Classes {
		for ri := range c.Classes[ci].Refs {
			c.Classes[ci].Refs[ri] = remap[c.Classes[ci].Refs[ri]]
		}
	}
	if try(c) {
		*s = *c
		return true
	}
	return false
}

// treeAt addresses a tree by structural position: Named[idx] when ci < 0,
// Classes[ci].Inline[idx] otherwise.
type treePos struct{ ci, idx int }

func treePositions(s *Spec) []treePos {
	var out []treePos
	for i := range s.Named {
		out = append(out, treePos{ci: -1, idx: i})
	}
	for ci := range s.Classes {
		for ti := range s.Classes[ci].Inline {
			out = append(out, treePos{ci: ci, idx: ti})
		}
	}
	return out
}

func treeAt(s *Spec, p treePos) *Tree {
	if p.ci < 0 {
		return &s.Named[p.idx]
	}
	return &s.Classes[p.ci].Inline[p.idx]
}

// dropOptions removes one option from a tree at a time (keeping at least
// one, since the analyzer rejects empty trees).
func dropOptions(s *Spec, try func(*Spec) bool) bool {
	any := false
	for _, p := range treePositions(s) {
		for oi := 0; oi < len(treeAt(s, p).Options); {
			if len(treeAt(s, p).Options) <= 1 {
				break
			}
			c := s.Clone()
			t := treeAt(c, p)
			t.Options = append(t.Options[:oi], t.Options[oi+1:]...)
			if try(c) {
				*s = *c
				any = true
				continue
			}
			oi++
		}
	}
	return any
}

// dropUsages removes one usage from an option at a time (keeping at least
// one, so options never go empty).
func dropUsages(s *Spec, try func(*Spec) bool) bool {
	any := false
	for _, p := range treePositions(s) {
		for oi := 0; oi < len(treeAt(s, p).Options); oi++ {
			for ui := 0; ui < len(treeAt(s, p).Options[oi]); {
				if len(treeAt(s, p).Options[oi]) <= 1 {
					break
				}
				c := s.Clone()
				t := treeAt(c, p)
				t.Options[oi] = append(t.Options[oi][:ui], t.Options[oi][ui+1:]...)
				if try(c) {
					*s = *c
					any = true
					continue
				}
				ui++
			}
		}
	}
	return any
}
