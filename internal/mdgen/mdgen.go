// Package mdgen generates random high-level machine descriptions for the
// differential correctness harness (internal/verify). Every generated
// machine is valid by construction — it parses, analyzes, and compiles —
// while the shape distribution is deliberately biased toward the
// pathological structures the hand-written machines cannot cover:
// cross-product-heavy AND/OR classes (hundreds of expanded options),
// negative decode-stage usage times, late writeback usages, shared named
// trees, cascaded classes, and bypass edges.
//
// Generation is a pure function of the seed: Generate owns a private
// rand.Rand (never the global source), so the same seed reproduces the
// same machine on any platform and any run, which is what makes a
// differential-test failure reproducible from one number.
//
// The generator works on a Spec — a structured, renderable description —
// rather than on source text directly, so failures can be minimized by
// deleting Spec elements (operations, classes, trees, options, usages)
// and re-rendering (see Minimize).
package mdgen

import (
	"fmt"
	"math/rand"
	"strings"

	"mdes/internal/hmdes"
)

// Usage is one resource usage inside a generated option: instance Res of
// the owning tree's bank, busy at cycle Time relative to issue.
type Usage struct {
	Res  int
	Time int
}

// Tree is one OR-tree over a single resource bank. Confining each tree to
// one bank makes the OR-trees of any class slot-disjoint by construction,
// which is the well-formedness rule the analyzer enforces
// (restable.AndOrTree.ValidateDisjoint) and the property that makes
// per-tree greedy selection equivalent to searching the expanded
// cross-product table.
type Tree struct {
	Bank    int
	Options [][]Usage
}

// Class is one execution constraint: an AND over referenced named trees
// (indices into Spec.Named) and inline trees. All trees of a class sit on
// distinct banks.
type Class struct {
	Refs   []int
	Inline []Tree
}

// Op is one operation-table entry. Cascaded is a class index or -1.
type Op struct {
	Class    int
	Cascaded int
	Latency  int
	SrcTime  int
}

// Bypass adjusts the flow-dependence distance between two operations.
type Bypass struct {
	From, To, Adjust int
}

// Spec is a renderable random machine description.
type Spec struct {
	Seed    int64
	Banks   []int // Banks[b] = instance count of resource group B<b>
	Named   []Tree
	Classes []Class
	Ops     []Op
	Bypass  []Bypass
}

// Config bounds the generated shapes. The zero value is replaced by
// Default; the knobs exist so the fuzz targets can shrink machines and the
// CI differential job can grow them.
type Config struct {
	MaxBanks    int // resource groups (each tree lives on one)
	MaxBankSize int // instances per group
	MaxNamed    int // shared named trees
	MaxClasses  int
	MaxOps      int
	MaxOptions  int // options per OR-tree
	MaxUsages   int // usages per option
	MaxProduct  int // cap on a class's expanded option count
}

// Default is the shape envelope the differential harness uses. The total
// resource count stays at or below 24 so every generated machine is
// eligible for the single-word automaton backend.
func Default() Config {
	return Config{
		MaxBanks:    4,
		MaxBankSize: 6,
		MaxNamed:    3,
		MaxClasses:  5,
		MaxOps:      8,
		MaxOptions:  5,
		MaxUsages:   3,
		MaxProduct:  400,
	}
}

// Generate produces the machine for a seed under the default shape
// envelope.
func Generate(seed int64) *Spec { return GenerateConfig(seed, Default()) }

// GenerateConfig produces the machine for a seed under an explicit shape
// envelope. It is deterministic: all randomness comes from a private
// rand.Rand seeded with seed.
func GenerateConfig(seed int64, cfg Config) *Spec {
	r := rand.New(rand.NewSource(seed))
	s := &Spec{Seed: seed}

	nBanks := 1 + r.Intn(cfg.MaxBanks)
	for b := 0; b < nBanks; b++ {
		s.Banks = append(s.Banks, 1+r.Intn(cfg.MaxBankSize))
	}

	// Shared named trees, each on a random bank.
	nNamed := r.Intn(cfg.MaxNamed + 1)
	for i := 0; i < nNamed; i++ {
		s.Named = append(s.Named, s.genTree(r, r.Intn(nBanks), cfg))
	}

	// Classes: a random subset of banks, each contributing one tree —
	// either a reference to a named tree on that bank (sharing) or a fresh
	// inline tree. Roughly a third of the classes are cross-product-heavy:
	// they take every bank, which multiplies option counts toward
	// cfg.MaxProduct — the table shapes the paper's §5-§8 passes exist to
	// tame.
	nClasses := 1 + r.Intn(cfg.MaxClasses)
	for i := 0; i < nClasses; i++ {
		heavy := r.Intn(3) == 0
		k := 1 + r.Intn(nBanks)
		if heavy {
			k = nBanks
		}
		banks := r.Perm(nBanks)[:k]
		var c Class
		product := 1
		for _, b := range banks {
			if named := s.namedOn(b); len(named) > 0 && r.Intn(2) == 0 {
				ref := named[r.Intn(len(named))]
				if product*len(s.Named[ref].Options) > cfg.MaxProduct {
					continue
				}
				product *= len(s.Named[ref].Options)
				c.Refs = append(c.Refs, ref)
				continue
			}
			t := s.genTree(r, b, cfg)
			if product*len(t.Options) > cfg.MaxProduct {
				continue
			}
			product *= len(t.Options)
			c.Inline = append(c.Inline, t)
		}
		if len(c.Refs)+len(c.Inline) == 0 {
			c.Inline = append(c.Inline, Tree{Bank: banks[0], Options: [][]Usage{{{Res: 0, Time: 0}}}})
		}
		s.Classes = append(s.Classes, c)
	}

	// Operations: at least one, biased toward reusing classes so dead-code
	// removal has live and dead classes to distinguish.
	nOps := 2 + r.Intn(cfg.MaxOps-1)
	for i := 0; i < nOps; i++ {
		op := Op{Class: r.Intn(nClasses), Cascaded: -1, Latency: r.Intn(11)}
		if nClasses > 1 && r.Intn(5) == 0 {
			op.Cascaded = r.Intn(nClasses)
		}
		if op.Latency > 0 && r.Intn(4) == 0 {
			op.SrcTime = 1 + r.Intn(op.Latency)
			if op.SrcTime > 2 {
				op.SrcTime = 2
			}
		}
		s.Ops = append(s.Ops, op)
	}

	// Bypasses: a few distinct forwarding edges.
	seen := map[[2]int]bool{}
	for i, n := 0, r.Intn(4); i < n; i++ {
		key := [2]int{r.Intn(nOps), r.Intn(nOps)}
		if seen[key] {
			continue
		}
		seen[key] = true
		s.Bypass = append(s.Bypass, Bypass{From: key[0], To: key[1], Adjust: r.Intn(5) - 2})
	}
	return s
}

// namedOn returns the indices of named trees on bank b.
func (s *Spec) namedOn(b int) []int {
	var out []int
	for i, t := range s.Named {
		if t.Bank == b {
			out = append(out, i)
		}
	}
	return out
}

// genTree builds one OR-tree on a bank. Usage times are biased: mostly
// small non-negative (where real usages concentrate), with deliberate
// negative (decode-stage) and late (writeback-stage) outliers — the shapes
// that stress window growth, the usage-time shift, and the automaton
// eligibility gate.
func (s *Spec) genTree(r *rand.Rand, bank int, cfg Config) Tree {
	size := s.Banks[bank]
	t := Tree{Bank: bank}
	nOpts := 1 + r.Intn(cfg.MaxOptions)
	for o := 0; o < nOpts; o++ {
		nU := 1 + r.Intn(cfg.MaxUsages)
		var opt []Usage
		taken := map[Usage]bool{}
		for u := 0; u < nU; u++ {
			usage := Usage{Res: r.Intn(size), Time: genTime(r)}
			if taken[usage] {
				continue
			}
			taken[usage] = true
			opt = append(opt, usage)
		}
		t.Options = append(t.Options, opt)
	}
	return t
}

// genTime draws a usage time: ~55% in 0..2, ~15% zero-heavy repeats, ~15%
// negative decode-stage (-3..-1), ~15% late writeback (5..14).
func genTime(r *rand.Rand) int {
	switch d := r.Intn(20); {
	case d < 11:
		return r.Intn(3)
	case d < 14:
		return 0
	case d < 17:
		return -(1 + r.Intn(3))
	default:
		return 5 + r.Intn(10)
	}
}

// Name returns the machine name rendered for this spec. Negative seeds
// print as their unsigned bit pattern so the name stays a valid
// identifier (a fuzzer-found corner: "gen-35" does not lex).
func (s *Spec) Name() string { return fmt.Sprintf("gen%d", uint64(s.Seed)) }

// Render emits the spec as high-level MDES source. Rendering is purely
// positional (banks B0.., trees T0.., classes C0.., operations OP0..), so
// two structurally equal specs render identically.
func (s *Spec) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s {\n", s.Name())
	for i, n := range s.Banks {
		fmt.Fprintf(&b, "    resource B%d[%d];\n", i, n)
	}
	b.WriteByte('\n')
	for i, t := range s.Named {
		fmt.Fprintf(&b, "    tree T%d {\n", i)
		writeTreeOptions(&b, t, "        ")
		b.WriteString("    }\n")
	}
	if len(s.Named) > 0 {
		b.WriteByte('\n')
	}
	for i, c := range s.Classes {
		fmt.Fprintf(&b, "    class C%d {\n", i)
		for _, ref := range c.Refs {
			fmt.Fprintf(&b, "        tree T%d;\n", ref)
		}
		for _, t := range c.Inline {
			b.WriteString("        tree {\n")
			writeTreeOptions(&b, t, "            ")
			b.WriteString("        }\n")
		}
		b.WriteString("    }\n")
	}
	b.WriteByte('\n')
	for i, op := range s.Ops {
		fmt.Fprintf(&b, "    operation OP%d class C%d", i, op.Class)
		if op.Cascaded >= 0 {
			fmt.Fprintf(&b, " cascaded C%d", op.Cascaded)
		}
		fmt.Fprintf(&b, " latency %d", op.Latency)
		if op.SrcTime != 0 {
			fmt.Fprintf(&b, " src %d", op.SrcTime)
		}
		b.WriteString(";\n")
	}
	for _, by := range s.Bypass {
		fmt.Fprintf(&b, "    bypass OP%d to OP%d adjust %d;\n", by.From, by.To, by.Adjust)
	}
	b.WriteString("}\n")
	return b.String()
}

func writeTreeOptions(b *strings.Builder, t Tree, indent string) {
	for _, opt := range t.Options {
		fmt.Fprintf(b, "%soption {", indent)
		for _, u := range opt {
			fmt.Fprintf(b, " B%d[%d] @ %d;", t.Bank, u.Res, u.Time)
		}
		b.WriteString(" }\n")
	}
}

// Machine renders, parses, and analyzes the spec. Generated specs are
// valid by construction, so an error here is itself a generator or
// front-end bug the harness must surface.
func (s *Spec) Machine() (*hmdes.Machine, error) {
	return hmdes.Load(s.Name()+".mdes", s.Render())
}

// Clone deep-copies the spec, so minimization candidates never alias the
// original.
func (s *Spec) Clone() *Spec {
	n := &Spec{Seed: s.Seed}
	n.Banks = append([]int(nil), s.Banks...)
	for _, t := range s.Named {
		n.Named = append(n.Named, cloneTree(t))
	}
	for _, c := range s.Classes {
		nc := Class{Refs: append([]int(nil), c.Refs...)}
		for _, t := range c.Inline {
			nc.Inline = append(nc.Inline, cloneTree(t))
		}
		n.Classes = append(n.Classes, nc)
	}
	n.Ops = append([]Op(nil), s.Ops...)
	n.Bypass = append([]Bypass(nil), s.Bypass...)
	return n
}

func cloneTree(t Tree) Tree {
	n := Tree{Bank: t.Bank}
	for _, o := range t.Options {
		n.Options = append(n.Options, append([]Usage(nil), o...))
	}
	return n
}
