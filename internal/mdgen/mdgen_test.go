package mdgen

import (
	"strings"
	"testing"

	"mdes/internal/lowlevel"
)

// Generation must be a pure function of the seed: same seed, same source,
// byte for byte — that is what makes "-seed N" a complete reproducer.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed).Render()
		b := Generate(seed).Render()
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\n----\n%s", seed, a, b)
		}
	}
	if Generate(1).Render() == Generate(2).Render() {
		t.Fatal("different seeds produced identical machines")
	}
}

// Every generated machine must be valid by construction: it parses,
// analyzes, compiles in both forms, and passes structural validation.
func TestGeneratedMachinesAreValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		spec := Generate(seed)
		mach, err := spec.Machine()
		if err != nil {
			t.Fatalf("seed %d: generated machine does not load: %v\n%s", seed, err, spec.Render())
		}
		for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
			m := lowlevel.Compile(mach, form)
			if err := m.Validate(); err != nil {
				t.Fatalf("seed %d form %v: %v", seed, form, err)
			}
		}
	}
}

// The bias knobs must actually fire: across a modest seed range the
// generator must produce negative usage times, late usage times, shared
// named trees, cascaded operations, and at least one cross-product-heavy
// class — the pathological shapes the hand-written machines under-cover.
func TestGeneratorShapeBiases(t *testing.T) {
	var negative, late, shared, cascaded, heavy bool
	for seed := int64(0); seed < 200; seed++ {
		spec := Generate(seed)
		for _, p := range treePositions(spec) {
			for _, opt := range treeAt(spec, p).Options {
				for _, u := range opt {
					if u.Time < 0 {
						negative = true
					}
					if u.Time >= 5 {
						late = true
					}
				}
			}
		}
		refs := map[int]int{}
		for _, c := range spec.Classes {
			for _, r := range c.Refs {
				refs[r]++
			}
		}
		for _, n := range refs {
			if n > 1 {
				shared = true
			}
		}
		for _, op := range spec.Ops {
			if op.Cascaded >= 0 {
				cascaded = true
			}
		}
		mach, err := spec.Machine()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, cname := range mach.ClassNames {
			if mach.Classes[cname].OptionCount() >= 50 {
				heavy = true
			}
		}
	}
	for name, ok := range map[string]bool{
		"negative-time": negative, "late-time": late, "shared-tree": shared,
		"cascaded-op": cascaded, "cross-product-heavy": heavy,
	} {
		if !ok {
			t.Errorf("bias %s never fired in 200 seeds", name)
		}
	}
}

// Minimize must shrink as long as the predicate keeps failing, and its
// result must still fail and still be a loadable machine.
func TestMinimizeShrinksWhilePreservingFailure(t *testing.T) {
	spec := Generate(17)
	// Synthetic failure: "machine still has an operation with latency >= 1
	// whose class has a usage at a strictly negative time".
	pred := func(s *Spec) bool {
		if _, err := s.Machine(); err != nil {
			return false
		}
		for _, op := range s.Ops {
			if op.Latency < 1 {
				continue
			}
			c := s.Classes[op.Class]
			trees := append([]Tree(nil), c.Inline...)
			for _, r := range c.Refs {
				trees = append(trees, s.Named[r])
			}
			for _, tr := range trees {
				for _, o := range tr.Options {
					for _, u := range o {
						if u.Time < 0 {
							return true
						}
					}
				}
			}
		}
		return false
	}
	if !pred(spec) {
		t.Skip("seed 17 does not exhibit the synthetic failure; pick another seed")
	}
	min := Minimize(spec, pred)
	if !pred(min) {
		t.Fatal("minimized spec no longer fails the predicate")
	}
	if _, err := min.Machine(); err != nil {
		t.Fatalf("minimized spec does not load: %v", err)
	}
	if size(min) >= size(spec) {
		t.Fatalf("minimization did not shrink: %d -> %d", size(spec), size(min))
	}
	if len(min.Ops) != 1 {
		t.Errorf("expected a single surviving operation, got %d:\n%s", len(min.Ops), min.Render())
	}
}

func size(s *Spec) int {
	n := len(s.Ops) + len(s.Classes) + len(s.Bypass)
	for _, p := range treePositions(s) {
		for _, o := range treeAt(s, p).Options {
			n += 1 + len(o)
		}
	}
	return n
}

// Rendered source must mention every structural element exactly once per
// declaration — a cheap guard that Render and the parser agree on naming.
func TestRenderRoundTripCounts(t *testing.T) {
	spec := Generate(3)
	mach, err := spec.Machine()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(mach.OpNames), len(spec.Ops); got != want {
		t.Fatalf("ops: rendered %d, spec %d", got, want)
	}
	if got, want := len(mach.ClassNames), len(spec.Classes); got != want {
		t.Fatalf("classes: rendered %d, spec %d", got, want)
	}
	if got, want := len(mach.Bypasses), len(spec.Bypass); got != want {
		t.Fatalf("bypasses: rendered %d, spec %d", got, want)
	}
	src := spec.Render()
	if strings.Count(src, "operation ") != len(spec.Ops) {
		t.Fatalf("operation declarations mismatch in:\n%s", src)
	}
}
