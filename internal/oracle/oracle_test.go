package oracle

import (
	"math/rand"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

// The oracle must agree with the RU map on every probe of an exhaustive
// (op × cycle ∈ [-maxlen, 2·maxlen]) sweep over the four hand-written
// machines — first on an empty machine, then after replaying identical
// random placement histories into both. maxlen is the magnitude envelope
// of the machine's usage times, so the sweep covers the negative
// decode-stage window and the cycles beyond every reservation.
func TestOracleAgreesWithRUMapExhaustively(t *testing.T) {
	for _, name := range machines.All {
		mach, err := machines.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		orc := New(mach)
		m := orc.MDES() // the same unoptimized FormOR compile the oracle interprets
		ru := rumap.New(m.NumResources)
		var c stats.Counters

		lo, hi := orc.TimeBounds()
		maxlen := hi
		if -lo > maxlen {
			maxlen = -lo
		}
		if maxlen < 4 {
			maxlen = 4
		}

		sweep := func(stage string) {
			for opIdx := range m.Operations {
				con := m.ConstraintFor(opIdx, false)
				for cycle := -maxlen; cycle <= 2*maxlen; cycle++ {
					_, got := ru.Check(con, cycle, &c)
					want := orc.Probe(opIdx, cycle)
					if got != want {
						t.Fatalf("%s/%s: op %s cycle %d: rumap=%v oracle=%v",
							name, stage, m.Operations[opIdx].Name, cycle, got, want)
					}
				}
			}
		}

		sweep("empty")

		// Replay identical random greedy histories into both and re-sweep.
		r := rand.New(rand.NewSource(int64(len(name)) * 77))
		for trial := 0; trial < 5; trial++ {
			ru.Reset()
			orc.Reset()
			cycle := 0
			for placed := 0; placed < 12; {
				opIdx := r.Intn(len(m.Operations))
				con := m.ConstraintFor(opIdx, false)
				sel, ok := ru.Check(con, cycle, &c)
				if ok != orc.Probe(opIdx, cycle) {
					t.Fatalf("%s: history probe disagrees at op %d cycle %d", name, opIdx, cycle)
				}
				if !ok {
					cycle++
					continue
				}
				ru.Reserve(sel)
				if !orc.Place(opIdx, cycle) {
					t.Fatalf("%s: oracle rejected a placement rumap accepted", name)
				}
				placed++
				cycle += r.Intn(2)
			}
			// Reservation snapshots must be identical slot for slot: the
			// greedy option choice itself, not just its feasibility, agrees.
			got := ru.ReservedSlots()
			want := orc.Slots()
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: rumap holds %d slots, oracle %d", name, trial, len(got), len(want))
			}
			for _, s := range want {
				if !got[[2]int{s.Res, s.Cycle}] {
					t.Fatalf("%s trial %d: oracle slot (r%d,c%d) missing from rumap", name, trial, s.Res, s.Cycle)
				}
			}
			sweep("history")
		}
	}
}

// Place must reserve exactly the highest-priority fitting option, and
// Unplace must restore the previous state exactly.
func TestOraclePlaceUnplace(t *testing.T) {
	mach, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		t.Fatal(err)
	}
	orc := New(mach)
	opIdx := 0
	if !orc.Place(opIdx, 0) {
		t.Fatal("empty machine rejected a placement")
	}
	before := orc.Slots()
	if len(before) == 0 {
		t.Fatal("placement reserved no slots")
	}
	if !orc.Place(opIdx, 1) {
		t.Fatal("second placement failed")
	}
	orc.Unplace()
	after := orc.Slots()
	if len(after) != len(before) {
		t.Fatalf("Unplace left %d slots, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("slot %d: %v != %v after Unplace", i, after[i], before[i])
		}
	}
	orc.Reset()
	if len(orc.Slots()) != 0 {
		t.Fatal("Reset left reservations behind")
	}
}

// The in-order reference scheduler must be reproducible and must respect
// arrival and ordering constraints.
func TestOracleScheduleInOrder(t *testing.T) {
	mach, err := machines.Load(machines.K5)
	if err != nil {
		t.Fatal(err)
	}
	orc := New(mach)
	m := orc.MDES()
	r := rand.New(rand.NewSource(9))
	n := 40
	stream := make([]int, n)
	arrivals := make([]int, n)
	cycle := 0
	for i := range stream {
		stream[i] = r.Intn(len(m.Operations))
		cycle += r.Intn(2)
		arrivals[i] = cycle
	}
	issues, err := orc.ScheduleInOrder(stream, arrivals, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range issues {
		if issues[i] < arrivals[i] {
			t.Fatalf("op %d issued at %d before arrival %d", i, issues[i], arrivals[i])
		}
		if i > 0 && issues[i] < issues[i-1] {
			t.Fatalf("op %d issued at %d before predecessor's %d", i, issues[i], issues[i-1])
		}
	}
	orc.Reset()
	again, err := orc.ScheduleInOrder(stream, arrivals, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range issues {
		if issues[i] != again[i] {
			t.Fatalf("rescheduling diverged at op %d: %d vs %d", i, issues[i], again[i])
		}
	}
}

// lowlevel import is load-bearing for the compile the oracle wraps; keep
// the explicit reference so the dependency is visible in this test file.
var _ = lowlevel.FormOR
