// Package oracle is the semantics reference for the differential
// correctness harness: a deliberately naive conflict checker that
// interprets the unoptimized, fully-expanded flat reservation tables of a
// machine with a hash map and nested loops.
//
// It shares no code with the optimized paths it judges — no bit vectors,
// no packed masks, no per-tree greedy search, no window management. An
// operation can issue at a cycle exactly when some fully-enumerated
// reservation-table option (in priority order) finds all of its
// (resource, cycle) slots free; placing it marks exactly the first such
// option's slots busy. That is the paper's §3 semantics read directly off
// the traditional OR-form representation, so every optimization pass and
// every checker backend can be compared against it: an optimized MDES must
// accept exactly the same schedules as this interpreter (§4: "the exact
// same schedule is produced in each case").
//
// The oracle is intentionally slow; it exists to be obviously correct.
package oracle

import (
	"fmt"
	"sort"

	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
)

// Slot is one reserved (resource, absolute cycle) cell of the flat
// reservation table.
type Slot struct {
	Res   int
	Cycle int
}

// Oracle interprets one machine's unoptimized flat tables. It is
// single-goroutine mutable state, like the checkers it references.
type Oracle struct {
	mdes *lowlevel.MDES
	busy map[Slot]bool
	// trail remembers each placement's slots so Unplace can undo the most
	// recent one (the naive analog of Checker.Release).
	trail [][]Slot
}

// New compiles the machine's traditional representation (FormOR, no
// optimization passes) and returns its naive interpreter. The compile is
// private to the oracle, so callers cannot accidentally hand it an
// already-transformed description.
func New(mach *hmdes.Machine) *Oracle {
	return &Oracle{
		mdes: lowlevel.Compile(mach, lowlevel.FormOR),
		busy: map[Slot]bool{},
	}
}

// MDES exposes the oracle's private unoptimized compile, for tests that
// need the same description (operation indices, usage-time bounds) the
// oracle interprets.
func (o *Oracle) MDES() *lowlevel.MDES { return o.mdes }

// Reset frees every slot.
func (o *Oracle) Reset() {
	o.busy = map[Slot]bool{}
	o.trail = nil
}

// optionFits reports whether every usage of the flat option is free when
// the operation issues at cycle issue.
func (o *Oracle) optionFits(opt *lowlevel.Option, issue int) bool {
	for _, u := range opt.Usages {
		if o.busy[Slot{Res: int(u.Res), Cycle: issue + int(u.Time)}] {
			return false
		}
	}
	return true
}

// firstOption returns the index of the highest-priority flat option of the
// operation's table that fits at issue, or -1. FormOR constraints have
// exactly one tree — the fully expanded table.
func (o *Oracle) firstOption(opIdx, issue int) (*lowlevel.Option, int) {
	tree := o.mdes.ConstraintFor(opIdx, false).Trees[0]
	for i, opt := range tree.Options {
		if o.optionFits(opt, issue) {
			return opt, i
		}
	}
	return nil, -1
}

// Probe reports whether operation opIdx can issue at cycle issue against
// the current reservations, without reserving anything.
func (o *Oracle) Probe(opIdx, issue int) bool {
	_, i := o.firstOption(opIdx, issue)
	return i >= 0
}

// Place issues operation opIdx at cycle issue, reserving the slots of the
// highest-priority fitting option, and reports whether any option fit.
func (o *Oracle) Place(opIdx, issue int) bool {
	opt, i := o.firstOption(opIdx, issue)
	if i < 0 {
		return false
	}
	slots := make([]Slot, 0, len(opt.Usages))
	for _, u := range opt.Usages {
		s := Slot{Res: int(u.Res), Cycle: issue + int(u.Time)}
		o.busy[s] = true
		slots = append(slots, s)
	}
	o.trail = append(o.trail, slots)
	return true
}

// Unplace undoes the most recent successful Place.
func (o *Oracle) Unplace() {
	if len(o.trail) == 0 {
		panic("oracle: Unplace without a Place")
	}
	last := o.trail[len(o.trail)-1]
	o.trail = o.trail[:len(o.trail)-1]
	for _, s := range last {
		delete(o.busy, s)
	}
}

// Slots returns the currently reserved slots in deterministic order, for
// comparison against a checker backend's reservation snapshot.
func (o *Oracle) Slots() []Slot {
	out := make([]Slot, 0, len(o.busy))
	for s := range o.busy {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].Res < out[j].Res
	})
	return out
}

// ScheduleInOrder issues the operation stream in order, each operation at
// the earliest feasible cycle at or after max(its arrival, the previous
// operation's issue cycle), and returns the issue cycles. In-order issue
// keeps probe cycles non-decreasing, so the identical policy can drive
// every checker backend — including the monotonic-only automaton — and
// their schedules must match the oracle's cycle for cycle.
func (o *Oracle) ScheduleInOrder(stream, arrivals []int, maxWait int) ([]int, error) {
	issues := make([]int, len(stream))
	prev := 0
	for i, opIdx := range stream {
		cycle := arrivals[i]
		if cycle < prev {
			cycle = prev
		}
		start := cycle
		for !o.Place(opIdx, cycle) {
			cycle++
			if cycle-start > maxWait {
				return nil, fmt.Errorf("oracle: op %d (%s) found no issue cycle within %d of %d",
					i, o.mdes.Operations[opIdx].Name, maxWait, start)
			}
		}
		issues[i] = cycle
		prev = cycle
	}
	return issues, nil
}

// TimeBounds returns the minimum and maximum usage time across the flat
// tables — the probe-window envelope (decode-stage usages make min
// negative).
func (o *Oracle) TimeBounds() (min, max int) {
	return TimeBounds(o.mdes)
}

// TimeBounds returns the minimum and maximum usage time across any
// compiled description's options (packed or scalar).
func TimeBounds(m *lowlevel.MDES) (min, max int) {
	for _, opt := range m.Options {
		for _, u := range opt.ExpandedUsages() {
			if int(u.Time) < min {
				min = int(u.Time)
			}
			if int(u.Time) > max {
				max = int(u.Time)
			}
		}
	}
	return min, max
}
