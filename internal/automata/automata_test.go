package automata

import (
	"math/rand"
	"testing"

	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/rumap"
	"mdes/internal/stats"
)

func compiled(t *testing.T, name machines.Name) *lowlevel.MDES {
	t.Helper()
	m, err := machines.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	opt.Apply(ll, opt.LevelFull, opt.Forward)
	return ll
}

func TestNewRejectsNegativeTimes(t *testing.T) {
	m, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		t.Fatal(err)
	}
	ll := lowlevel.Compile(m, lowlevel.FormAndOr) // decode usages at -1
	if _, err := New(ll); err == nil {
		t.Fatalf("negative usage times accepted")
	}
}

func TestNewRejectsWideMachines(t *testing.T) {
	src := `machine W { resource R[65]; class c { use R[64] @ 0; } operation X class c; }`
	m, err := hmdes.Load("w", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(lowlevel.Compile(m, lowlevel.FormAndOr)); err == nil {
		t.Fatalf("65-resource machine accepted")
	}
}

func TestIssueAndAdvance(t *testing.T) {
	ll := compiled(t, machines.SuperSPARC)
	a, err := New(ll)
	if err != nil {
		t.Fatal(err)
	}
	loadClass := ll.ClassIndex["load"]
	s := a.Start()
	s1, ok := a.TryIssue(s, loadClass)
	if !ok {
		t.Fatalf("load cannot issue in empty state")
	}
	// Second load in the same cycle conflicts on the single memory unit.
	if _, ok := a.TryIssue(s1, loadClass); ok {
		t.Fatalf("two loads issued in one cycle")
	}
	// After advancing a cycle, a load fits again.
	s2 := a.Advance(s1)
	if _, ok := a.TryIssue(s2, loadClass); !ok {
		t.Fatalf("load cannot issue after advance")
	}
	// After full optimization the load's usages all sit at time zero, so
	// advancing the one-load state returns to the empty window: exactly
	// two distinct states.
	if a.States() < 2 {
		t.Fatalf("states = %d", a.States())
	}
	if a.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes = %d", a.MemoryBytes())
	}
}

func TestMemoization(t *testing.T) {
	ll := compiled(t, machines.SuperSPARC)
	a, _ := New(ll)
	class := ll.ClassIndex["ialu1"]
	a.TryIssue(a.Start(), class)
	missesAfterFirst := a.Misses
	for i := 0; i < 10; i++ {
		a.TryIssue(a.Start(), class)
	}
	if a.Misses != missesAfterFirst {
		t.Fatalf("repeated query missed the cache: %d -> %d", missesAfterFirst, a.Misses)
	}
	if a.Lookups < 11 {
		t.Fatalf("Lookups = %d", a.Lookups)
	}
}

// The automaton must agree exactly with the RU-map checker: same
// feasibility on every query of a random issue sequence.
func TestAgreesWithRUMap(t *testing.T) {
	for _, name := range machines.All {
		ll := compiled(t, name)
		a, err := New(ll)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := rand.New(rand.NewSource(9))
		ru := rumap.New(ll.NumResources)
		var c stats.Counters
		st := a.Start()
		cycle := 0
		for step := 0; step < 3000; step++ {
			if r.Intn(3) == 0 {
				st = a.Advance(st)
				cycle++
				continue
			}
			class := r.Intn(len(ll.Constraints))
			next, okA := a.TryIssue(st, class)
			sel, okR := ru.Check(ll.Constraints[class], cycle, &c)
			if okA != okR {
				t.Fatalf("%s step %d: automaton %v, RU map %v (class %s)",
					name, step, okA, okR, ll.Constraints[class].Name)
			}
			if okA {
				ru.Reserve(sel)
				st = next
			}
		}
	}
}

// Greedy schedules through the automaton match greedy schedules through
// the RU map cycle for cycle.
func TestGreedySchedulesMatch(t *testing.T) {
	ll := compiled(t, machines.SuperSPARC)
	a, _ := New(ll)
	r := rand.New(rand.NewSource(4))
	// A stream of (class, earliest cycle) with in-order arrival.
	type item struct{ class, arrival int }
	var items []item
	for i := 0; i < 200; i++ {
		items = append(items, item{class: r.Intn(len(ll.Constraints)), arrival: i / 3})
	}

	// RU map baseline. The automaton can never revisit a past cycle (the
	// window shifts forward — the limitation §10 notes for unscheduling),
	// so the baseline issues in non-decreasing cycles too.
	ru := rumap.New(ll.NumResources)
	var c stats.Counters
	baseline := make([]int, len(items))
	floor := 0
	for i, it := range items {
		cy := it.arrival
		if floor > cy {
			cy = floor
		}
		for {
			if sel, ok := ru.Check(ll.Constraints[it.class], cy, &c); ok {
				ru.Reserve(sel)
				baseline[i] = cy
				break
			}
			cy++
		}
		floor = baseline[i]
	}

	// Automaton: walk cycle by cycle, issuing each item at its first
	// feasible cycle >= arrival.
	st := a.Start()
	cycle := 0
	got := make([]int, len(items))
	for i, it := range items {
		for cycle < it.arrival {
			st = a.Advance(st)
			cycle++
		}
		for {
			if next, ok := a.TryIssue(st, it.class); ok {
				st = next
				got[i] = cycle
				break
			}
			st = a.Advance(st)
			cycle++
		}
	}
	for i := range items {
		if got[i] != baseline[i] {
			t.Fatalf("item %d issued at %d, baseline %d", i, got[i], baseline[i])
		}
	}
}

func TestStateCountsBounded(t *testing.T) {
	// Exhaustively exercising the SuperSPARC automaton should keep the
	// lazily-built state space modest (the Bala-Rubin observation).
	ll := compiled(t, machines.SuperSPARC)
	a, _ := New(ll)
	r := rand.New(rand.NewSource(2))
	st := a.Start()
	for step := 0; step < 20000; step++ {
		if r.Intn(4) == 0 {
			st = a.Advance(st)
			continue
		}
		if next, ok := a.TryIssue(st, r.Intn(len(ll.Constraints))); ok {
			st = next
		}
	}
	if a.States() > 100000 {
		t.Fatalf("state explosion: %d states", a.States())
	}
	t.Logf("states=%d memory=%dB lookups=%d misses=%d",
		a.States(), a.MemoryBytes(), a.Lookups, a.Misses)
}
