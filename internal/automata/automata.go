// Package automata implements the related-work baseline of the paper's
// §10: finite-state-automaton hazard detection in the style of Proebsting
// & Fraser, Müller, and Bala & Rubin. Instead of checking reservation
// tables against an RU map, the scheduler walks a lazily-constructed DFA
// whose states summarize the resource commitments of the current issue
// window; asking "can class C issue now?" is a memoized transition lookup.
//
// The automaton is built over the same compiled MDES the reservation-table
// checker uses, so the two approaches are directly comparable (the
// ablation benchmark in bench_test.go and the equivalence tests here do
// exactly that). As the paper notes, the automaton answers queries
// quickly but does not identify *which* operations cause a conflict, so
// unscheduling-based techniques (iterative modulo scheduling) cannot use
// it; reservation tables keep that ability.
//
// Construction requires all usage times to be non-negative (run the
// usage-time shift first — opt.ShiftUsageTimes — exactly as automata
// papers assume issue-relative usages).
package automata

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mdes/internal/lowlevel"
)

// state is the resource occupancy of the issue window: one word per
// future cycle (cycle 0 = now), windowed to the machine's maximum usage
// time. Machines with ≤64 resources fit one word per cycle.
type state []uint64

// key converts a state to a map key.
func (s state) key() string {
	b := make([]byte, 0, len(s)*8)
	for _, w := range s {
		for i := 0; i < 8; i++ {
			b = append(b, byte(w>>(8*uint(i))))
		}
	}
	return string(b)
}

// Automaton is a lazily-built DFA over window states.
type Automaton struct {
	mdes   *lowlevel.MDES
	window int // cycles of lookahead (max usage time + 1)

	states  map[string]int // state key -> id
	byID    []state
	issue   []map[int]issueEdge // per state id: class index -> edge
	advance []int               // per state id: id after one-cycle advance (-1 unknown)

	// Lookups counts memoized transition queries (the automaton analog of
	// the paper's "resource checks").
	Lookups int64
	// Misses counts queries that had to construct a new transition.
	Misses int64
}

type issueEdge struct {
	ok   bool
	next int
	// chosen[i] is the option index greedily selected in the class's
	// tree i when the edge was constructed (nil for infeasible edges).
	// Immutable after construction, so concurrent readers may share it.
	chosen []int
}

// New builds an empty automaton for the compiled MDES. It returns an
// error if any usage time is negative (shift first) or if the machine
// needs more than 64 resources.
func New(m *lowlevel.MDES) (*Automaton, error) {
	if m.NumResources > 64 {
		return nil, fmt.Errorf("automata: %d resources exceed the single-word limit", m.NumResources)
	}
	window := 1
	for _, o := range m.Options {
		for _, u := range usagesOf(o) {
			if u.Time < 0 {
				return nil, fmt.Errorf("automata: negative usage time %d (apply the usage-time shift first)", u.Time)
			}
			if int(u.Time)+1 > window {
				window = int(u.Time) + 1
			}
		}
	}
	a := &Automaton{mdes: m, window: window, states: map[string]int{}}
	a.intern(make(state, window)) // state 0: empty window
	return a, nil
}

// usagesOf expands packed options back to scalar usages for construction;
// the automaton's runtime never touches them again.
func usagesOf(o *lowlevel.Option) []lowlevel.Usage {
	return o.ExpandedUsages()
}

func (a *Automaton) intern(s state) int {
	k := s.key()
	if id, ok := a.states[k]; ok {
		return id
	}
	id := len(a.byID)
	a.states[k] = id
	a.byID = append(a.byID, append(state(nil), s...))
	a.issue = append(a.issue, map[int]issueEdge{})
	a.advance = append(a.advance, -1)
	return id
}

// Start returns the empty-window start state.
func (a *Automaton) Start() int { return 0 }

// States returns the number of DFA states constructed so far.
func (a *Automaton) States() int { return len(a.byID) }

// MemoryBytes estimates the automaton's memory: per state, the window
// words plus its transition entries (16 bytes per issue edge, 4 per
// advance edge), mirroring the explicit accounting of the MDES size model.
func (a *Automaton) MemoryBytes() int {
	bytes := 0
	for id := range a.byID {
		bytes += a.window*8 + 4
		bytes += len(a.issue[id]) * 16
	}
	return bytes
}

// TryIssue asks whether an operation of the given class (constraint index)
// can issue in the current cycle of state id; on success it returns the
// successor state with the operation's resources committed. The transition
// is constructed on first use and memoized thereafter.
func (a *Automaton) TryIssue(id, class int) (int, bool) {
	a.Lookups++
	if e, ok := a.issue[id][class]; ok {
		return e.next, e.ok
	}
	a.Misses++
	e := a.buildIssue(id, class)
	return e.next, e.ok
}

// buildIssue constructs and memoizes the issue edge for (state, class).
// Callers must have checked the memo first (and, when shared across
// goroutines, must hold the write lock).
func (a *Automaton) buildIssue(id, class int) issueEdge {
	con := a.mdes.Constraints[class]
	cur := a.byID[id]
	next := append(state(nil), cur...)
	chosen, ok := a.commit(next, con)
	e := issueEdge{ok: ok, chosen: chosen}
	if ok {
		e.next = a.intern(next)
	} else {
		e.next = id
	}
	a.issue[id][class] = e
	return e
}

// commit performs greedy per-tree option selection against the window,
// identical to the reservation-table checker's semantics, mutating s on
// success and returning the per-tree option choices.
func (a *Automaton) commit(s state, con *lowlevel.Constraint) ([]int, bool) {
	chosen := make([]int, len(con.Trees))
	for ti, tree := range con.Trees {
		found := -1
		for oi, o := range tree.Options {
			if a.fits(s, o) {
				found = oi
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		chosen[ti] = found
		for _, u := range usagesOf(tree.Options[found]) {
			s[u.Time] |= 1 << uint(u.Res)
		}
	}
	return chosen, true
}

func (a *Automaton) fits(s state, o *lowlevel.Option) bool {
	for _, u := range usagesOf(o) {
		if s[u.Time]&(1<<uint(u.Res)) != 0 {
			return false
		}
	}
	return true
}

// Advance moves the state one cycle forward (the window shifts; the
// now-past cycle drops off).
func (a *Automaton) Advance(id int) int {
	a.Lookups++
	if n := a.advance[id]; n >= 0 {
		return n
	}
	a.Misses++
	return a.buildAdvance(id)
}

// buildAdvance constructs and memoizes the advance edge for a state.
// Callers must have checked the memo first (and, when shared across
// goroutines, must hold the write lock).
func (a *Automaton) buildAdvance(id int) int {
	cur := a.byID[id]
	next := make(state, a.window)
	copy(next, cur[1:])
	n := a.intern(next)
	a.advance[id] = n
	return n
}

// Shared wraps an Automaton for concurrent use by many checker contexts
// over one frozen MDES: memoized transitions are read under a shared lock
// (the steady state once the reachable DFA is built), and only a memo miss
// takes the write lock to construct the new edge. The underlying MDES is
// immutable per the Freeze contract; all automaton mutation happens here,
// under the lock. Counters are atomic so they can be read while schedulers
// run.
type Shared struct {
	mu sync.RWMutex
	a  *Automaton

	lookups atomic.Int64
	misses  atomic.Int64
}

// NewShared builds an empty concurrent automaton over the compiled MDES,
// with the same eligibility rules as New (<= 64 resources, non-negative
// usage times).
func NewShared(m *lowlevel.MDES) (*Shared, error) {
	a, err := New(m)
	if err != nil {
		return nil, err
	}
	return &Shared{a: a}, nil
}

// TryIssue is the concurrent analog of Automaton.TryIssue, additionally
// returning the per-tree option choices recorded on the edge (shared,
// immutable — callers must not modify it).
func (s *Shared) TryIssue(id, class int) (next int, chosen []int, ok bool) {
	s.lookups.Add(1)
	s.mu.RLock()
	e, hit := s.a.issue[id][class]
	s.mu.RUnlock()
	if hit {
		return e.next, e.chosen, e.ok
	}
	s.misses.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, hit := s.a.issue[id][class]; hit {
		return e.next, e.chosen, e.ok
	}
	e = s.a.buildIssue(id, class)
	return e.next, e.chosen, e.ok
}

// Advance is the concurrent analog of Automaton.Advance.
func (s *Shared) Advance(id int) int {
	s.lookups.Add(1)
	s.mu.RLock()
	n := s.a.advance[id]
	s.mu.RUnlock()
	if n >= 0 {
		return n
	}
	s.misses.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.a.advance[id]; n >= 0 {
		return n
	}
	return s.a.buildAdvance(id)
}

// Start returns the empty-window start state.
func (s *Shared) Start() int { return 0 }

// States returns the number of DFA states constructed so far.
func (s *Shared) States() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.a.States()
}

// MemoryBytes estimates the shared automaton's memory.
func (s *Shared) MemoryBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.a.MemoryBytes()
}

// Lookups returns the total memoized transition queries so far.
func (s *Shared) Lookups() int64 { return s.lookups.Load() }

// Misses returns the queries that had to construct a new transition.
func (s *Shared) Misses() int64 { return s.misses.Load() }
