// Package automata implements the related-work baseline of the paper's
// §10: finite-state-automaton hazard detection in the style of Proebsting
// & Fraser, Müller, and Bala & Rubin. Instead of checking reservation
// tables against an RU map, the scheduler walks a lazily-constructed DFA
// whose states summarize the resource commitments of the current issue
// window; asking "can class C issue now?" is a memoized transition lookup.
//
// The automaton is built over the same compiled MDES the reservation-table
// checker uses, so the two approaches are directly comparable (the
// ablation benchmark in bench_test.go and the equivalence tests here do
// exactly that). As the paper notes, the automaton answers queries
// quickly but does not identify *which* operations cause a conflict, so
// unscheduling-based techniques (iterative modulo scheduling) cannot use
// it; reservation tables keep that ability.
//
// Construction requires all usage times to be non-negative (run the
// usage-time shift first — opt.ShiftUsageTimes — exactly as automata
// papers assume issue-relative usages).
package automata

import (
	"fmt"

	"mdes/internal/lowlevel"
)

// state is the resource occupancy of the issue window: one word per
// future cycle (cycle 0 = now), windowed to the machine's maximum usage
// time. Machines with ≤64 resources fit one word per cycle.
type state []uint64

// key converts a state to a map key.
func (s state) key() string {
	b := make([]byte, 0, len(s)*8)
	for _, w := range s {
		for i := 0; i < 8; i++ {
			b = append(b, byte(w>>(8*uint(i))))
		}
	}
	return string(b)
}

// Automaton is a lazily-built DFA over window states.
type Automaton struct {
	mdes   *lowlevel.MDES
	window int // cycles of lookahead (max usage time + 1)

	states  map[string]int // state key -> id
	byID    []state
	issue   []map[int]issueEdge // per state id: class index -> edge
	advance []int               // per state id: id after one-cycle advance (-1 unknown)

	// Lookups counts memoized transition queries (the automaton analog of
	// the paper's "resource checks").
	Lookups int64
	// Misses counts queries that had to construct a new transition.
	Misses int64
}

type issueEdge struct {
	ok   bool
	next int
}

// New builds an empty automaton for the compiled MDES. It returns an
// error if any usage time is negative (shift first) or if the machine
// needs more than 64 resources.
func New(m *lowlevel.MDES) (*Automaton, error) {
	if m.NumResources > 64 {
		return nil, fmt.Errorf("automata: %d resources exceed the single-word limit", m.NumResources)
	}
	window := 1
	for _, o := range m.Options {
		for _, u := range usagesOf(o) {
			if u.Time < 0 {
				return nil, fmt.Errorf("automata: negative usage time %d (apply the usage-time shift first)", u.Time)
			}
			if int(u.Time)+1 > window {
				window = int(u.Time) + 1
			}
		}
	}
	a := &Automaton{mdes: m, window: window, states: map[string]int{}}
	a.intern(make(state, window)) // state 0: empty window
	return a, nil
}

func usagesOf(o *lowlevel.Option) []lowlevel.Usage {
	if o.Masks == nil {
		return o.Usages
	}
	// Packed options: expand masks back to usages for construction; the
	// automaton's runtime never touches them again.
	var out []lowlevel.Usage
	for _, m := range o.Masks {
		mask := m.Mask
		for bit := 0; mask != 0; bit++ {
			if mask&1 != 0 {
				out = append(out, lowlevel.Usage{Time: m.Time, Res: m.Word*64 + int32(bit)})
			}
			mask >>= 1
		}
	}
	return out
}

func (a *Automaton) intern(s state) int {
	k := s.key()
	if id, ok := a.states[k]; ok {
		return id
	}
	id := len(a.byID)
	a.states[k] = id
	a.byID = append(a.byID, append(state(nil), s...))
	a.issue = append(a.issue, map[int]issueEdge{})
	a.advance = append(a.advance, -1)
	return id
}

// Start returns the empty-window start state.
func (a *Automaton) Start() int { return 0 }

// States returns the number of DFA states constructed so far.
func (a *Automaton) States() int { return len(a.byID) }

// MemoryBytes estimates the automaton's memory: per state, the window
// words plus its transition entries (16 bytes per issue edge, 4 per
// advance edge), mirroring the explicit accounting of the MDES size model.
func (a *Automaton) MemoryBytes() int {
	bytes := 0
	for id := range a.byID {
		bytes += a.window*8 + 4
		bytes += len(a.issue[id]) * 16
	}
	return bytes
}

// TryIssue asks whether an operation of the given class (constraint index)
// can issue in the current cycle of state id; on success it returns the
// successor state with the operation's resources committed. The transition
// is constructed on first use and memoized thereafter.
func (a *Automaton) TryIssue(id, class int) (int, bool) {
	a.Lookups++
	if e, ok := a.issue[id][class]; ok {
		return e.next, e.ok
	}
	a.Misses++
	con := a.mdes.Constraints[class]
	cur := a.byID[id]
	next := append(state(nil), cur...)
	ok := a.commit(next, con)
	e := issueEdge{ok: ok}
	if ok {
		e.next = a.intern(next)
	} else {
		e.next = id
	}
	a.issue[id][class] = e
	return e.next, e.ok
}

// commit performs greedy per-tree option selection against the window,
// identical to the reservation-table checker's semantics, mutating s on
// success.
func (a *Automaton) commit(s state, con *lowlevel.Constraint) bool {
	for _, tree := range con.Trees {
		chosen := -1
		for oi, o := range tree.Options {
			if a.fits(s, o) {
				chosen = oi
				break
			}
		}
		if chosen < 0 {
			return false
		}
		for _, u := range usagesOf(tree.Options[chosen]) {
			s[u.Time] |= 1 << uint(u.Res)
		}
	}
	return true
}

func (a *Automaton) fits(s state, o *lowlevel.Option) bool {
	for _, u := range usagesOf(o) {
		if s[u.Time]&(1<<uint(u.Res)) != 0 {
			return false
		}
	}
	return true
}

// Advance moves the state one cycle forward (the window shifts; the
// now-past cycle drops off).
func (a *Automaton) Advance(id int) int {
	a.Lookups++
	if n := a.advance[id]; n >= 0 {
		return n
	}
	a.Misses++
	cur := a.byID[id]
	next := make(state, a.window)
	copy(next, cur[1:])
	n := a.intern(next)
	a.advance[id] = n
	return n
}
