// Package sched implements the MDES-driven multi-platform list scheduler
// used throughout the paper's evaluation (§4): a forward, cycle-driven list
// scheduler with latency-weighted critical-path priority, instrumented to
// count scheduling attempts, reservation-table options checked, and
// resource checks, and to collect the per-attempt options-checked
// distribution of Figure 2.
package sched

import (
	"fmt"
	"sort"
	"time"

	"mdes/internal/check"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/obs"
	"mdes/internal/obs/flight"
	"mdes/internal/resctx"
	"mdes/internal/stats"
)

// Result is the outcome of scheduling one block.
type Result struct {
	// Issue[i] is the cycle operation i was issued.
	Issue []int
	// Length is the schedule length in cycles (last issue + 1).
	Length int
	// Counters accumulates attempts/options/checks for the block.
	Counters stats.Counters
}

// Scheduler schedules blocks for one compiled machine description.
//
// The compiled description is shared, immutable data (see
// lowlevel.MDES.Freeze); all mutable scheduling state lives in the
// borrowed resctx.Context. A Scheduler therefore must not be used from
// more than one goroutine at a time, but any number of Schedulers — each
// with its own borrowed Context — may drive the same compiled MDES
// concurrently (mdes.Engine.ScheduleBlocks is the fan-out entry point).
type Scheduler struct {
	mdes *lowlevel.MDES
	cx   *resctx.Context
	// OptionsHist, when non-nil, receives one sample per scheduling
	// attempt: the number of options checked during that attempt
	// (Figure 2's distribution).
	OptionsHist *stats.Histogram
	// OnAttempt, when non-nil, is called after every scheduling attempt
	// with the operation, the options checked during the attempt, and
	// whether it succeeded; the experiment harness uses it to attribute
	// attempts to option-count classes (Tables 1-4).
	OnAttempt func(op *ir.Operation, optionsChecked int64, ok bool)
	// SelfCheck, when set, re-validates every schedule against the
	// dependence graph (used by tests).
	SelfCheck bool
	// Tracer, when non-nil, receives one structured record per scheduled
	// block: every issue attempt with its candidate cycle and chosen
	// option, conflict attribution naming the blocking resource, and the
	// block's final length and counters. A nil Tracer costs one pointer
	// comparison per block.
	Tracer obs.Tracer
	// BlockID labels the next block's trace record;
	// mdes.Engine.ScheduleBlocks sets it to the block's index within the
	// batch. The scheduler never modifies it.
	BlockID int64

	// builder is the reusable dependence-graph constructor the flat path
	// uses; its scratch persists across blocks scheduled through this
	// Scheduler.
	builder ir.Builder
}

// New returns a scheduler for the given compiled MDES, backed by a
// standalone context. For concurrent use over a shared description,
// borrow per-goroutine contexts from a resctx.Pool and use
// NewWithContext.
func New(m *lowlevel.MDES) *Scheduler {
	return NewWithContext(m, resctx.New(m.NumResources))
}

// NewWithContext returns a scheduler over the shared compiled description
// using the borrowed context for all mutable scheduling state. Per-block
// counters are also accumulated into the context, so pooled contexts
// aggregate a service-wide total on release.
func NewWithContext(m *lowlevel.MDES, cx *resctx.Context) *Scheduler {
	return &Scheduler{mdes: m, cx: cx}
}

// Context returns the scheduler's borrowed context.
func (s *Scheduler) Context() *resctx.Context { return s.cx }

// MDES returns the machine description the scheduler drives.
func (s *Scheduler) MDES() *lowlevel.MDES { return s.mdes }

// Latency returns the opcode's result latency from the MDES operation
// table; unknown opcodes panic, as they indicate a workload/MDES mismatch.
func (s *Scheduler) Latency(opcode string) int {
	idx, ok := s.mdes.OpIndex[opcode]
	if !ok {
		panic(fmt.Sprintf("sched: opcode %q not in MDES %s", opcode, s.mdes.MachineName))
	}
	return s.mdes.Operations[idx].Latency
}

// attempt performs one instrumented Check: the paper's counters always
// (into c), per-phase/per-class observability metrics when the borrowed
// context carries an obs.Local, conflict-attribution profiling when it
// carries a profile.Local, and a trace event when bt is non-nil. It
// returns the selection, whether the attempt succeeded, and the number of
// options checked during the attempt (the per-attempt quantity of
// Figure 2). With observability disabled (nil Local, nil Prof, nil bt) the
// extra cost is a few nil comparisons and no allocations.
func (s *Scheduler) attempt(phase obs.Phase, bt *obs.BlockTrace, opInBlock int, op *ir.Operation, con *lowlevel.Constraint, cycle int, c *stats.Counters) (check.Selection, bool, int64) {
	local := s.cx.Obs
	prof := s.cx.Prof
	var t0 time.Time
	timed := false
	if local != nil {
		// Timestamps are sampled (obs.TimestampPeriod): most attempts skip
		// both clock readings, which dominated the enabled-metrics cost.
		if timed = local.SampleTime(); timed {
			t0 = time.Now()
		}
	}
	beforeOpts := c.OptionsChecked
	beforeChecks := c.ResourceChecks
	sel, ok := s.cx.Check(con, cycle, c)
	opts := c.OptionsChecked - beforeOpts
	if local == nil && bt == nil && prof == nil {
		return sel, ok, opts
	}
	if local != nil {
		ns := int64(-1)
		if timed {
			ns = time.Since(t0).Nanoseconds()
		}
		// con.Index is the class key ConstraintIndexFor would look up: every
		// caller selected con through ConstraintFor on the same operation.
		local.Attempt(phase, con.Index,
			opts, c.ResourceChecks-beforeChecks, ns, ok)
	}
	if !ok {
		if prof != nil {
			// One attribution walk serves both the profile (tree + resource)
			// and, when no trace wants provenance too, the metrics registry.
			ti, res := s.cx.BlockingTreeRes(con, cycle)
			prof.Conflict(con.Index, ti, res)
			if local != nil && bt == nil && res >= 0 {
				local.ConflictAt(res)
			}
		}
		if bt == nil {
			if local != nil && prof == nil {
				// Metrics-only attribution needs just the blocking resource,
				// not the provenance a trace record carries.
				if res := s.cx.BlockingRes(con, cycle); res >= 0 {
					local.ConflictAt(res)
				}
			}
		} else if conf, found := s.cx.Explain(con, cycle); found {
			if local != nil {
				local.ConflictAt(conf.Res)
			}
			bt.Conflict(opInBlock, op.Opcode, cycle, s.mdes.ResourceNames[conf.Res], conf.Time, conf.Src)
		}
	} else if prof != nil {
		prof.Success(con.Index, sel.Chosen)
	}
	if bt != nil {
		choice := 0
		if ok && len(sel.Chosen) > 0 {
			choice = sel.Chosen[0]
		}
		bt.Attempt(opInBlock, op.Opcode, cycle, int(opts), choice, ok)
	}
	return sel, ok, opts
}

// startTrace opens a trace record for one block when tracing is enabled.
func (s *Scheduler) startTrace(numOps int) *obs.BlockTrace {
	if s.Tracer == nil {
		return nil
	}
	return s.Tracer.StartBlock(s.BlockID, s.mdes.MachineName, numOps)
}

// flightStart reads the block's monotonic start time when the borrowed
// context carries a flight-recorder ring; zero disables flight recording
// for the block, so the recorder-off cost is one nil check. The raw
// runtime clock (flight.Nanotime) is deliberate: the clock pair is the
// dominant per-block flight cost, and the always-on overhead gate at the
// repository root leaves no room for time.Time round-trips.
func (s *Scheduler) flightStart() int64 {
	if s.cx.Flight == nil {
		return 0
	}
	return flight.Nanotime()
}

// flightRecord appends one flight entry for a completed block (length < 0
// marks a failed schedule). The per-block cost with the recorder on is
// one clock reading plus a fixed-size ring store — the always-on budget
// the flight-recorder overhead gate at the repository root enforces.
func (s *Scheduler) flightRecord(phase obs.Phase, t0 int64, nops, length int, c stats.Counters) {
	if t0 == 0 {
		return
	}
	e := flight.Entry{
		Block:      s.BlockID,
		Phase:      phase,
		Ops:        int32(nops),
		Length:     int32(length),
		WallNs:     flight.Nanotime() - t0,
		Attempts:   c.Attempts,
		Options:    c.OptionsChecked,
		Checks:     c.ResourceChecks,
		Conflicts:  c.Conflicts,
		Backtracks: c.Backtracks,
	}
	s.cx.Flight.Record(&e)
}

// timing adapts the compiled MDES's operand-level distances (latency,
// source sample time, bypasses) to the IR graph builder.
type timing struct{ m *lowlevel.MDES }

func (t timing) FlowDist(producer, consumer *ir.Operation) int {
	pi, pok := t.m.OpIndex[producer.Opcode]
	ci, cok := t.m.OpIndex[consumer.Opcode]
	if !pok || !cok {
		return 1
	}
	return t.m.FlowDistance(pi, ci)
}

func (t timing) Latency(opcode string) int {
	if idx, ok := t.m.OpIndex[opcode]; ok {
		return t.m.Operations[idx].Latency
	}
	return 1
}

// ScheduleBlock list-schedules one block and returns the result.
//
// The algorithm is classic forward cycle-driven list scheduling: at each
// cycle, ready operations (all predecessors scheduled and dependence
// distances satisfied) are attempted in priority order (critical-path
// height, ties by source order); each attempt checks the operation's
// reservation constraint against the RU map and either reserves its
// resources or leaves the operation for a later cycle. One Check call is
// one "scheduling attempt" in the paper's accounting.
func (s *Scheduler) ScheduleBlock(b *ir.Block) (*Result, error) {
	if s.cx.PP != nil {
		// The probe-plan backend's flat representation extends through the
		// scheduler: arena scratch, reusable graph builder, hoisted opcode
		// indices. Same algorithm, same attempt order, same accounting.
		return s.scheduleBlockFlat(b)
	}
	g := ir.BuildGraphTiming(b, timing{m: s.mdes})
	return s.scheduleGraph(g)
}

// checkOpcodes rejects blocks with operations the MDES does not define,
// so malformed inputs surface as errors before the priority computation
// (whose latency lookups panic on unknown names).
func (s *Scheduler) checkOpcodes(b *ir.Block) error {
	for _, op := range b.Ops {
		if _, ok := s.mdes.OpIndex[op.Opcode]; !ok {
			return fmt.Errorf("sched: opcode %q not in MDES %s", op.Opcode, s.mdes.MachineName)
		}
	}
	return nil
}

func (s *Scheduler) scheduleGraph(g *ir.Graph) (*Result, error) {
	n := len(g.Block.Ops)
	res := &Result{Issue: make([]int, n)}
	if n == 0 {
		return res, nil
	}
	if err := s.checkOpcodes(g.Block); err != nil {
		return nil, err
	}
	ft := s.flightStart()
	bt := s.startTrace(n)
	height := g.Height(s.Latency)
	s.cx.Checker.Reset()

	scheduled := make([]bool, n)
	npreds := make([]int, n)
	estart := make([]int, n)
	for i := range g.Block.Ops {
		npreds[i] = len(g.Preds[i])
	}

	// order holds unscheduled-op indices, kept sorted by priority.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if height[order[a]] != height[order[b]] {
			return height[order[a]] > height[order[b]]
		}
		return order[a] < order[b]
	})

	remaining := n
	for cycle := 0; remaining > 0; cycle++ {
		progressPossible := false
		for _, i := range order {
			if scheduled[i] {
				continue
			}
			if npreds[i] > 0 {
				continue
			}
			progressPossible = true
			if estart[i] > cycle {
				continue
			}
			op := g.Block.Ops[i]
			opIdx, ok := s.mdes.OpIndex[op.Opcode]
			if !ok {
				return nil, fmt.Errorf("sched: opcode %q not in MDES %s", op.Opcode, s.mdes.MachineName)
			}
			con := s.mdes.ConstraintFor(opIdx, op.Cascaded)

			sel, ok, opts := s.attempt(obs.PhaseList, bt, i, op, con, cycle, &res.Counters)
			if s.OptionsHist != nil {
				s.OptionsHist.Observe(int(opts))
			}
			if s.OnAttempt != nil {
				s.OnAttempt(op, opts, ok)
			}
			if !ok {
				continue
			}
			s.cx.Reserve(sel)
			scheduled[i] = true
			res.Issue[i] = cycle
			remaining--
			for _, e := range g.Succs[i] {
				npreds[e.To]--
				if v := cycle + e.MinDist; v > estart[e.To] {
					estart[e.To] = v
				}
			}
		}
		if !progressPossible && remaining > 0 {
			if bt != nil {
				bt.Finish(-1, res.Counters)
			}
			s.flightRecord(obs.PhaseList, ft, n, -1, res.Counters)
			return nil, fmt.Errorf("sched: deadlock, %d operations unschedulable", remaining)
		}
		if cycle > 64*n+1024 {
			if bt != nil {
				bt.Finish(-1, res.Counters)
			}
			s.flightRecord(obs.PhaseList, ft, n, -1, res.Counters)
			return nil, fmt.Errorf("sched: no progress after %d cycles", cycle)
		}
	}

	for _, c := range res.Issue {
		if c+1 > res.Length {
			res.Length = c + 1
		}
	}
	if s.SelfCheck {
		if err := g.CheckSchedule(res.Issue); err != nil {
			return nil, err
		}
	}
	if bt != nil {
		bt.Finish(res.Length, res.Counters)
	}
	s.flightRecord(obs.PhaseList, ft, n, res.Length, res.Counters)
	s.cx.Counters.Add(res.Counters)
	return res, nil
}

// ScheduleAll schedules a sequence of blocks, accumulating counters, and
// returns per-block results plus the grand totals.
func (s *Scheduler) ScheduleAll(blocks []*ir.Block) ([]*Result, stats.Counters, error) {
	var total stats.Counters
	results := make([]*Result, 0, len(blocks))
	for bi, b := range blocks {
		s.BlockID = int64(bi)
		r, err := s.ScheduleBlock(b)
		if err != nil {
			return nil, total, fmt.Errorf("block %d: %w", bi, err)
		}
		total.Add(r.Counters)
		results = append(results, r)
	}
	return results, total, nil
}
