package sched

import (
	"sync"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/resctx"
	"mdes/internal/workload"
)

// Eight goroutines share one frozen compiled MDES, each scheduling the
// whole workload through its own pooled context; every goroutine must
// reproduce the serial run's schedule lengths exactly. Run under -race
// this is the data-race proof of the freeze/borrow contract: the MDES is
// read-shared, all mutable state is per-context.
func TestConcurrentSchedulersShareFrozenMDES(t *testing.T) {
	for _, name := range []machines.Name{machines.K5, machines.SuperSPARC} {
		name := name
		t.Run(string(name), func(t *testing.T) {
			t.Parallel()
			hm, err := machines.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			m := lowlevel.Compile(hm, lowlevel.FormAndOr)
			opt.Apply(m, opt.LevelFull, opt.Forward)
			if err := m.Freeze(); err != nil {
				t.Fatal(err)
			}
			prog, err := workload.Generate(workload.Config{Machine: name, NumOps: 3000, Seed: 1996})
			if err != nil {
				t.Fatal(err)
			}

			serial, _, err := New(m).ScheduleAll(prog.Blocks)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := make([]int, len(serial))
			for i, r := range serial {
				wantLen[i] = r.Length
			}

			pool := resctx.NewPool(m.NumResources)
			const goroutines = 8
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			lens := make([][]int, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					cx := pool.Get()
					defer cx.Release()
					s := NewWithContext(m, cx)
					got := make([]int, len(prog.Blocks))
					for bi, b := range prog.Blocks {
						r, err := s.ScheduleBlock(b)
						if err != nil {
							errs[g] = err
							return
						}
						got[bi] = r.Length
					}
					lens[g] = got
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				for bi, l := range lens[g] {
					if l != wantLen[bi] {
						t.Fatalf("goroutine %d block %d: length %d, serial %d", g, bi, l, wantLen[bi])
					}
				}
			}

			// The pool's totals must equal 8x the serial totals: counters are
			// deterministic per block and every context was released.
			var serialTotal int64
			for _, r := range serial {
				serialTotal += r.Counters.Attempts
			}
			if got := pool.Totals().Attempts; got != goroutines*serialTotal {
				t.Fatalf("pool totals attempts = %d, want %d", got, goroutines*serialTotal)
			}
		})
	}
}

// Freezing must reject invalid descriptions and make opt.Apply panic.
func TestFreezeContract(t *testing.T) {
	hm, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		t.Fatal(err)
	}
	m := lowlevel.Compile(hm, lowlevel.FormAndOr)
	if m.Frozen() {
		t.Fatal("fresh MDES already frozen")
	}
	if err := m.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !m.Frozen() {
		t.Fatal("Freeze did not mark MDES frozen")
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("second Freeze: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("opt.Apply on frozen MDES did not panic")
		}
	}()
	opt.Apply(m, opt.LevelFull, opt.Forward)
}
