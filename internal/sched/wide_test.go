package sched

import (
	"fmt"
	"strings"
	"testing"

	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/opt"
)

// wideMachine builds a description with more than 64 resources so the
// packed representation spans multiple RU-map words (CycleMask.Word > 0).
func wideMachine(t *testing.T) *hmdes.Machine {
	t.Helper()
	var b strings.Builder
	b.WriteString("machine Wide {\n")
	// 70 lane resources + a shared unit crossing the word boundary.
	b.WriteString("  resource Lane[70];\n")
	b.WriteString("  resource Unit[2];\n")
	// An op that uses one low-word lane, one high-word lane, and a unit,
	// all at cycle 0: packing needs two mask words for cycle 0.
	b.WriteString("  class both { use Lane[3] @ 0, Lane[68] @ 0; one_of Unit[0..1] @ 0; }\n")
	b.WriteString("  class lanes { one_of Lane[60..69] @ 0; }\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "  operation B%d class both latency 1;\n", i)
	}
	b.WriteString("  operation L class lanes latency 1;\n")
	b.WriteString("}\n")
	m, err := hmdes.Load("wide", b.String())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWideMachinePacksAcrossWords(t *testing.T) {
	m := wideMachine(t)
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	opt.Apply(ll, opt.LevelFull, opt.Forward)
	if err := ll.Validate(); err != nil {
		t.Fatal(err)
	}
	// The `both` fixed-lane option must carry two masks for cycle 0 (word
	// 0 for Lane[3], word 1 for Lane[68]).
	con := ll.Constraints[ll.ClassIndex["both"]]
	sawHighWord := false
	for _, tree := range con.Trees {
		for _, o := range tree.Options {
			for _, cm := range o.Masks {
				if cm.Word == 1 {
					sawHighWord = true
				}
			}
		}
	}
	if !sawHighWord {
		t.Fatalf("no mask in word 1; packing collapsed the wide machine")
	}
}

func TestWideMachineSchedules(t *testing.T) {
	m := wideMachine(t)
	for _, lvl := range []opt.Level{opt.LevelNone, opt.LevelFull} {
		ll := lowlevel.Compile(m, lowlevel.FormAndOr)
		opt.Apply(ll, lvl, opt.Forward)
		s := New(ll)
		s.SelfCheck = true
		// Two B ops conflict on Lane[3]/Lane[68]; they must serialize.
		b := &ir.Block{Ops: []*ir.Operation{
			{Opcode: "B0", Dests: []int{1}, Srcs: []int{0}},
			{Opcode: "B1", Dests: []int{2}, Srcs: []int{0}},
			{Opcode: "L", Dests: []int{3}, Srcs: []int{0}},
		}}
		r, err := s.ScheduleBlock(b)
		if err != nil {
			t.Fatalf("level %v: %v", lvl, err)
		}
		if r.Issue[0] == r.Issue[1] {
			t.Fatalf("level %v: conflicting wide ops co-issued: %v", lvl, r.Issue)
		}
		// The lanes-only op fits in cycle 0 alongside B0 (distinct lanes).
		if r.Issue[2] != 0 {
			t.Fatalf("level %v: independent lane op delayed: %v", lvl, r.Issue)
		}
	}
}

// Equivalence must hold for multi-word machines too.
func TestWideMachineFormsAgree(t *testing.T) {
	m := wideMachine(t)
	block := func() *ir.Block {
		return &ir.Block{Ops: []*ir.Operation{
			{Opcode: "B0", Dests: []int{1}, Srcs: []int{0}},
			{Opcode: "L", Dests: []int{2}, Srcs: []int{0}},
			{Opcode: "B1", Dests: []int{3}, Srcs: []int{1}},
			{Opcode: "B2", Dests: []int{4}, Srcs: []int{0}},
		}}
	}
	var ref []int
	for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
		for _, lvl := range []opt.Level{opt.LevelNone, opt.LevelFull} {
			ll := lowlevel.Compile(m, form)
			opt.Apply(ll, lvl, opt.Forward)
			s := New(ll)
			s.SelfCheck = true
			r, err := s.ScheduleBlock(block())
			if err != nil {
				t.Fatalf("%v %v: %v", form, lvl, err)
			}
			if ref == nil {
				ref = r.Issue
				continue
			}
			for i := range ref {
				if r.Issue[i] != ref[i] {
					t.Fatalf("%v %v: issue %v != ref %v", form, lvl, r.Issue, ref)
				}
			}
		}
	}
}
