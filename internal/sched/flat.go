package sched

import (
	"fmt"

	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/obs"
)

// flatTiming resolves flow distances through operation indices hoisted
// once per block, instead of two opcode-map lookups per flow edge. It is
// only valid for renumbered blocks (op.ID == position), which the flat
// path verifies before using it.
type flatTiming struct {
	m      *lowlevel.MDES
	opIdxs []int
}

func (t flatTiming) FlowDist(producer, consumer *ir.Operation) int {
	return t.m.FlowDistance(t.opIdxs[producer.ID], t.opIdxs[consumer.ID])
}

func (t flatTiming) Latency(opcode string) int {
	if idx, ok := t.m.OpIndex[opcode]; ok {
		return t.m.Operations[idx].Latency
	}
	return 1
}

// scheduleBlockFlat is ScheduleBlock for contexts carrying the probe-plan
// backend: the same forward cycle-driven list scheduling, in the same
// attempt order with the same accounting, but with every piece of
// per-block scratch carved from the context's arena, the dependence graph
// built by the reusable builder, opcode-table lookups hoisted to one pass,
// and probes walking the flat plan through the devirtualized prober. The
// steady-state loop performs no per-block allocation beyond the returned
// Result.
func (s *Scheduler) scheduleBlockFlat(b *ir.Block) (*Result, error) {
	n := len(b.Ops)
	res := &Result{Issue: make([]int, n)}
	if n == 0 {
		return res, nil
	}
	ar := &s.cx.Arena
	ar.Reset()

	opIdxs := ar.Ints(n)
	renumbered := true
	for i, op := range b.Ops {
		idx, ok := s.mdes.OpIndex[op.Opcode]
		if !ok {
			return nil, fmt.Errorf("sched: opcode %q not in MDES %s", op.Opcode, s.mdes.MachineName)
		}
		opIdxs[i] = idx
		if op.ID != i {
			renumbered = false
		}
	}
	var g *ir.Graph
	if renumbered {
		g = s.builder.Build(b, flatTiming{m: s.mdes, opIdxs: opIdxs})
	} else {
		g = s.builder.Build(b, timing{m: s.mdes})
	}

	ft := s.flightStart()
	bt := s.startTrace(n)
	height := ar.Ints(n)
	ops := s.mdes.Operations
	for i := n - 1; i >= 0; i-- {
		best := ops[opIdxs[i]].Latency
		for _, e := range g.Succs[i] {
			if v := e.MinDist + height[e.To]; v > best {
				best = v
			}
		}
		height[i] = best
	}
	s.cx.Checker.Reset()

	scheduled := ar.Bools(n)
	npreds := ar.Ints(n)
	estart := ar.Ints(n)
	for i := range npreds {
		npreds[i] = len(g.Preds[i])
	}
	order := ar.Ints(n)
	for i := range order {
		order[i] = i
	}
	sortByHeight(order, ar.Ints(n), height)

	remaining := n
	for cycle := 0; remaining > 0; cycle++ {
		progressPossible := false
		for _, i := range order {
			if scheduled[i] {
				continue
			}
			if npreds[i] > 0 {
				continue
			}
			progressPossible = true
			if estart[i] > cycle {
				continue
			}
			op := b.Ops[i]
			con := s.mdes.ConstraintFor(opIdxs[i], op.Cascaded)

			sel, ok, opts := s.attempt(obs.PhaseList, bt, i, op, con, cycle, &res.Counters)
			if s.OptionsHist != nil {
				s.OptionsHist.Observe(int(opts))
			}
			if s.OnAttempt != nil {
				s.OnAttempt(op, opts, ok)
			}
			if !ok {
				continue
			}
			s.cx.Reserve(sel)
			scheduled[i] = true
			res.Issue[i] = cycle
			remaining--
			for _, e := range g.Succs[i] {
				npreds[e.To]--
				if v := cycle + e.MinDist; v > estart[e.To] {
					estart[e.To] = v
				}
			}
		}
		if !progressPossible && remaining > 0 {
			if bt != nil {
				bt.Finish(-1, res.Counters)
			}
			s.flightRecord(obs.PhaseList, ft, n, -1, res.Counters)
			return nil, fmt.Errorf("sched: deadlock, %d operations unschedulable", remaining)
		}
		if cycle > 64*n+1024 {
			if bt != nil {
				bt.Finish(-1, res.Counters)
			}
			s.flightRecord(obs.PhaseList, ft, n, -1, res.Counters)
			return nil, fmt.Errorf("sched: no progress after %d cycles", cycle)
		}
	}

	for _, c := range res.Issue {
		if c+1 > res.Length {
			res.Length = c + 1
		}
	}
	if s.SelfCheck {
		if err := g.CheckSchedule(res.Issue); err != nil {
			return nil, err
		}
	}
	if bt != nil {
		bt.Finish(res.Length, res.Counters)
	}
	s.flightRecord(obs.PhaseList, ft, n, res.Length, res.Counters)
	s.cx.Counters.Add(res.Counters)
	return res, nil
}

// sortByHeight sorts order by (height desc, index asc) with a bottom-up
// merge sort through the caller's scratch buffer. The key is a total
// order, so the result is exactly what sort.SliceStable produces on the
// generic path — and no closure or reflection allocates.
func sortByHeight(order, buf, height []int) {
	n := len(order)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			if mid >= n {
				break
			}
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			a, b, o := lo, mid, lo
			for a < mid && b < hi {
				x, y := order[a], order[b]
				if height[x] > height[y] || (height[x] == height[y] && x < y) {
					buf[o] = x
					a++
				} else {
					buf[o] = y
					b++
				}
				o++
			}
			for a < mid {
				buf[o] = order[a]
				a++
				o++
			}
			for b < hi {
				buf[o] = order[b]
				b++
				o++
			}
			copy(order[lo:hi], buf[lo:hi])
		}
	}
}
