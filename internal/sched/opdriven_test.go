package sched

import (
	"math/rand"
	"testing"

	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/stats"
	"mdes/internal/workload"
)

func TestOpDrivenEmptyAndBasic(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	s.SelfCheck = true
	if r, err := s.ScheduleBlockOpDriven(&ir.Block{}); err != nil || r.Length != 0 {
		t.Fatalf("empty: %v %+v", err, r)
	}
	b := &ir.Block{Ops: []*ir.Operation{
		op("MUL", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{1}),
		op("LD", []int{3}, []int{0}),
		op("BR", nil, nil),
	}}
	r, err := s.ScheduleBlockOpDriven(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[1]-r.Issue[0] < 3 {
		t.Fatalf("latency violated: %v", r.Issue)
	}
}

func TestOpDrivenLegalOnWorkloads(t *testing.T) {
	for _, name := range machines.All {
		m := machines.MustLoad(name)
		prog, err := workload.Generate(workload.Config{Machine: name, NumOps: 600, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		ll := lowlevel.Compile(m, lowlevel.FormAndOr)
		opt.Apply(ll, opt.LevelFull, opt.Forward)
		s := New(ll)
		s.SelfCheck = true
		for _, b := range prog.Blocks {
			if _, err := s.ScheduleBlockOpDriven(b); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// The paper's claim: operation scheduling raises attempts per operation
// relative to cycle-driven list scheduling on the same input (failed
// per-cycle probes of stalled ops all count).
func TestOpDrivenRaisesAttempts(t *testing.T) {
	m := machines.MustLoad(machines.SuperSPARC)
	prog, err := workload.Generate(workload.Config{Machine: machines.SuperSPARC, NumOps: 4000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	opt.Apply(ll, opt.LevelFull, opt.Forward)

	run := func(opDriven bool) stats.Counters {
		s := New(ll)
		var total stats.Counters
		for _, b := range prog.Blocks {
			var r *Result
			var err error
			if opDriven {
				r, err = s.ScheduleBlockOpDriven(b)
			} else {
				r, err = s.ScheduleBlock(b)
			}
			if err != nil {
				t.Fatal(err)
			}
			total.Add(r.Counters)
		}
		return total
	}
	cycleDriven := run(false)
	opDriven := run(true)
	if opDriven.Attempts < cycleDriven.Attempts {
		t.Fatalf("operation-driven attempts %d < cycle-driven %d",
			opDriven.Attempts, cycleDriven.Attempts)
	}
}

// Schedule lengths from the two algorithms stay close (both are greedy
// height-priority list schedulers).
func TestOpDrivenQualityComparable(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelFull)
	s.SelfCheck = true
	r := rand.New(rand.NewSource(23))
	var cdTotal, odTotal int
	for trial := 0; trial < 20; trial++ {
		b := randomBlock(r, 30)
		cd, err := s.ScheduleBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		od, err := s.ScheduleBlockOpDriven(b)
		if err != nil {
			t.Fatal(err)
		}
		cdTotal += cd.Length
		odTotal += od.Length
	}
	if float64(odTotal) > 1.15*float64(cdTotal) {
		t.Fatalf("operation-driven schedules %d cycles vs cycle-driven %d", odTotal, cdTotal)
	}
}
