package sched

import (
	"container/heap"
	"fmt"

	"mdes/internal/ir"
	"mdes/internal/obs"
)

// ScheduleBlockOpDriven schedules a block with operation-driven list
// scheduling: operations are taken in priority order and each is probed at
// successive cycles from its earliest start until its constraint is
// satisfiable. The paper names "operation scheduling" (with iterative
// modulo scheduling) as a technique under which "the number of scheduling
// attempts required per operation can increase significantly" (§4) —
// every failed per-cycle probe here is an attempt, so long-latency shadows
// and busy resources translate directly into more attempts than the
// cycle-driven scheduler performs. Schedules are legal under exactly the
// same dependences and resource constraints (and are often identical, but
// the algorithms' tie-breaking differs, so this is not guaranteed).
func (s *Scheduler) ScheduleBlockOpDriven(b *ir.Block) (*Result, error) {
	g := ir.BuildGraphTiming(b, timing{m: s.mdes})
	n := len(g.Block.Ops)
	res := &Result{Issue: make([]int, n)}
	if n == 0 {
		return res, nil
	}
	if err := s.checkOpcodes(g.Block); err != nil {
		return nil, err
	}
	// Operation-driven scheduling probes each operation from its own
	// earliest start, revisiting cycles earlier ops already passed, so the
	// checker needs random access to the reservation window.
	if caps := s.cx.Checker.Capabilities(); caps.MonotonicOnly {
		return nil, fmt.Errorf("sched: operation-driven scheduling needs random-access probes; the %s backend is monotonic-only", caps.Backend)
	}
	ft := s.flightStart()
	bt := s.startTrace(n)
	height := g.Height(s.Latency)
	s.cx.Checker.Reset()

	npreds := make([]int, n)
	estart := make([]int, n)
	for i := range g.Block.Ops {
		npreds[i] = len(g.Preds[i])
	}

	// Ready queue ordered by (height desc, index asc).
	pq := &opHeap{height: height}
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			heap.Push(pq, i)
		}
	}

	scheduled := 0
	for pq.Len() > 0 {
		i := heap.Pop(pq).(int)
		op := g.Block.Ops[i]
		opIdx, ok := s.mdes.OpIndex[op.Opcode]
		if !ok {
			return nil, fmt.Errorf("sched: opcode %q not in MDES %s", op.Opcode, s.mdes.MachineName)
		}
		con := s.mdes.ConstraintFor(opIdx, op.Cascaded)

		cycle := estart[i]
		if s.cx.Batch != nil && s.cx.Obs == nil && s.cx.Prof == nil && bt == nil && s.OptionsHist == nil && s.OnAttempt == nil {
			// Batch fast path: probe 64-cycle windows in one CheckWindow
			// pass per window instead of re-entering Check per cycle. The
			// backend's contract makes this accounting-equivalent to the
			// serial loop below, and no per-attempt instrumentation is
			// attached, so results and counters are identical.
			limit := estart[i] + 64*n + 1024
			found := false
			for lo := cycle; lo <= limit; {
				hi := lo + 64
				if hi > limit+1 {
					hi = limit + 1
				}
				if sel, at, ok := s.cx.CheckWindow(con, lo, hi, &res.Counters); ok {
					cycle = at
					s.cx.Reserve(sel)
					found = true
					break
				}
				lo = hi
			}
			if !found {
				s.flightRecord(obs.PhaseOpDriven, ft, n, -1, res.Counters)
				return nil, fmt.Errorf("sched: op %d found no cycle", i)
			}
		} else {
			for {
				sel, ok, opts := s.attempt(obs.PhaseOpDriven, bt, i, op, con, cycle, &res.Counters)
				if s.OptionsHist != nil {
					s.OptionsHist.Observe(int(opts))
				}
				if s.OnAttempt != nil {
					s.OnAttempt(op, opts, ok)
				}
				if ok {
					s.cx.Reserve(sel)
					break
				}
				cycle++
				if cycle > estart[i]+64*n+1024 {
					if bt != nil {
						bt.Finish(-1, res.Counters)
					}
					s.flightRecord(obs.PhaseOpDriven, ft, n, -1, res.Counters)
					return nil, fmt.Errorf("sched: op %d found no cycle", i)
				}
			}
		}
		res.Issue[i] = cycle
		scheduled++
		for _, e := range g.Succs[i] {
			if v := cycle + e.MinDist; v > estart[e.To] {
				estart[e.To] = v
			}
			npreds[e.To]--
			if npreds[e.To] == 0 {
				heap.Push(pq, e.To)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: deadlock, scheduled %d of %d", scheduled, n)
	}
	for _, c := range res.Issue {
		if c+1 > res.Length {
			res.Length = c + 1
		}
	}
	if s.SelfCheck {
		if err := g.CheckSchedule(res.Issue); err != nil {
			return nil, err
		}
	}
	if bt != nil {
		bt.Finish(res.Length, res.Counters)
	}
	s.flightRecord(obs.PhaseOpDriven, ft, n, res.Length, res.Counters)
	s.cx.Counters.Add(res.Counters)
	return res, nil
}

// opHeap is a max-heap of operation indices by height, ties to lower index.
type opHeap struct {
	items  []int
	height []int
}

func (h *opHeap) Len() int { return len(h.items) }
func (h *opHeap) Less(a, b int) bool {
	x, y := h.items[a], h.items[b]
	if h.height[x] != h.height[y] {
		return h.height[x] > h.height[y]
	}
	return x < y
}
func (h *opHeap) Swap(a, b int)      { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *opHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *opHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
