package sched

import (
	"fmt"
	"sort"

	"mdes/internal/ir"
	"mdes/internal/obs"
)

// ScheduleBlockBackward schedules a block bottom-up: operations are placed
// from the dependence sinks toward the sources, each at the latest
// feasible cycle. This is the "backward-scheduling list scheduler" of the
// paper's §7, for which the usage-time shift should pick each resource's
// LATEST usage time as the constant (opt.Backward): conflicts then
// concentrate at time zero from this scheduler's point of view.
//
// Schedules are reported on the same forward time axis as ScheduleBlock
// (smallest issue cycle normalized to zero) and respect exactly the same
// dependences and resource constraints.
func (s *Scheduler) ScheduleBlockBackward(b *ir.Block) (*Result, error) {
	g := ir.BuildGraphTiming(b, timing{m: s.mdes})
	n := len(g.Block.Ops)
	res := &Result{Issue: make([]int, n)}
	if n == 0 {
		return res, nil
	}
	if err := s.checkOpcodes(g.Block); err != nil {
		return nil, err
	}
	// Backward scheduling probes at decreasing (negative) cycles, so the
	// checker needs random access to the reservation window.
	if caps := s.cx.Checker.Capabilities(); caps.MonotonicOnly {
		return nil, fmt.Errorf("sched: backward scheduling needs random-access probes; the %s backend is monotonic-only", caps.Backend)
	}
	ft := s.flightStart()
	bt := s.startTrace(n)
	s.cx.Checker.Reset()

	// depth[i]: latency-weighted longest path from any source to i — the
	// mirror of the forward scheduler's height priority.
	depth := make([]int, n)
	for i := 0; i < n; i++ {
		d := s.Latency(g.Block.Ops[i].Opcode)
		for _, e := range g.Preds[i] {
			if v := depth[e.From] + e.MinDist; v > d {
				d = v
			}
		}
		depth[i] = d
	}

	// On the reversed axis tau = -issue, an edge from->to with distance d
	// (issue(to) >= issue(from)+d) becomes tau(from) >= tau(to)+d: the
	// roles of predecessors and successors swap.
	scheduled := make([]bool, n)
	nsuccs := make([]int, n)
	estart := make([]int, n) // earliest tau
	for i := range g.Block.Ops {
		nsuccs[i] = len(g.Succs[i])
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if depth[order[a]] != depth[order[b]] {
			return depth[order[a]] > depth[order[b]]
		}
		return order[a] > order[b]
	})

	tau := make([]int, n)
	remaining := n
	for cycle := 0; remaining > 0; cycle++ {
		progressPossible := false
		for _, i := range order {
			if scheduled[i] {
				continue
			}
			if nsuccs[i] > 0 {
				continue
			}
			progressPossible = true
			if estart[i] > cycle {
				continue
			}
			op := g.Block.Ops[i]
			opIdx, ok := s.mdes.OpIndex[op.Opcode]
			if !ok {
				return nil, fmt.Errorf("sched: opcode %q not in MDES %s", op.Opcode, s.mdes.MachineName)
			}
			con := s.mdes.ConstraintFor(opIdx, op.Cascaded)

			sel, ok, opts := s.attempt(obs.PhaseBackward, bt, i, op, con, -cycle, &res.Counters)
			if s.OptionsHist != nil {
				s.OptionsHist.Observe(int(opts))
			}
			if s.OnAttempt != nil {
				s.OnAttempt(op, opts, ok)
			}
			if !ok {
				continue
			}
			s.cx.Reserve(sel)
			scheduled[i] = true
			tau[i] = cycle
			remaining--
			for _, e := range g.Preds[i] {
				nsuccs[e.From]--
				if v := cycle + e.MinDist; v > estart[e.From] {
					estart[e.From] = v
				}
			}
		}
		if !progressPossible && remaining > 0 {
			if bt != nil {
				bt.Finish(-1, res.Counters)
			}
			s.flightRecord(obs.PhaseBackward, ft, n, -1, res.Counters)
			return nil, fmt.Errorf("sched: backward deadlock, %d operations unschedulable", remaining)
		}
		if cycle > 64*n+1024 {
			if bt != nil {
				bt.Finish(-1, res.Counters)
			}
			s.flightRecord(obs.PhaseBackward, ft, n, -1, res.Counters)
			return nil, fmt.Errorf("sched: backward no progress after %d cycles", cycle)
		}
	}

	// Normalize to a forward axis starting at zero.
	maxTau := 0
	for _, t := range tau {
		if t > maxTau {
			maxTau = t
		}
	}
	for i, t := range tau {
		res.Issue[i] = maxTau - t
		if res.Issue[i]+1 > res.Length {
			res.Length = res.Issue[i] + 1
		}
	}
	if s.SelfCheck {
		if err := g.CheckSchedule(res.Issue); err != nil {
			return nil, err
		}
	}
	if bt != nil {
		bt.Finish(res.Length, res.Counters)
	}
	s.flightRecord(obs.PhaseBackward, ft, n, res.Length, res.Counters)
	s.cx.Counters.Add(res.Counters)
	return res, nil
}
