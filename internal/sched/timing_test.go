package sched

import (
	"testing"

	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
)

// A bypass between FP ops must shorten the schedule of an FMUL->FADD chain
// relative to an architectural-latency chain.
func TestBypassShortensSchedule(t *testing.T) {
	src := `machine B {
	  resource FP;
	  resource Issue[2];
	  class fp { one_of Issue[0..1] @ 0; use FP @ 0; }
	  operation FMUL class fp latency 4;
	  operation FDIV class fp latency 4;
	  operation FADD class fp latency 1;
	  bypass FMUL to FADD adjust -2;
	}`
	m, err := hmdes.Load("b", src)
	if err != nil {
		t.Fatal(err)
	}
	s := New(lowlevel.Compile(m, lowlevel.FormAndOr))
	s.SelfCheck = true

	chain := func(producer string) int {
		b := &ir.Block{Ops: []*ir.Operation{
			{Opcode: producer, Dests: []int{1}, Srcs: []int{0}},
			{Opcode: "FADD", Dests: []int{2}, Srcs: []int{1}},
		}}
		res, err := s.ScheduleBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		return res.Issue[1] - res.Issue[0]
	}
	if d := chain("FDIV"); d != 4 {
		t.Fatalf("FDIV->FADD distance = %d, want 4", d)
	}
	if d := chain("FMUL"); d != 2 {
		t.Fatalf("FMUL->FADD bypassed distance = %d, want 2", d)
	}
}

// Late source sampling lets a consumer issue before the producer's result
// is architecturally complete.
func TestSrcTimeShortensFlowDistance(t *testing.T) {
	src := `machine S {
	  resource U[2];
	  class c { one_of U[0..1] @ 0; }
	  operation LONG class c latency 3;
	  operation EARLY class c latency 3;
	  operation LATE class c latency 3 src 2;
	}`
	m, err := hmdes.Load("s", src)
	if err != nil {
		t.Fatal(err)
	}
	s := New(lowlevel.Compile(m, lowlevel.FormAndOr))
	s.SelfCheck = true
	b := &ir.Block{Ops: []*ir.Operation{
		{Opcode: "LONG", Dests: []int{1}, Srcs: []int{0}},
		{Opcode: "EARLY", Dests: []int{2}, Srcs: []int{1}},
		{Opcode: "LATE", Dests: []int{3}, Srcs: []int{1}},
	}}
	res, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Issue[1] - res.Issue[0]; d != 3 {
		t.Fatalf("EARLY distance = %d, want 3", d)
	}
	if d := res.Issue[2] - res.Issue[0]; d != 1 {
		t.Fatalf("LATE distance = %d, want 1 (latency 3 - src 2)", d)
	}
}

// The PA7100's built-in FMUL->FADD forwarding path is live end to end.
func TestPA7100BypassLive(t *testing.T) {
	m := machines.MustLoad(machines.PA7100)
	s := New(lowlevel.Compile(m, lowlevel.FormAndOr))
	s.SelfCheck = true
	b := &ir.Block{Ops: []*ir.Operation{
		{Opcode: "FMUL", Dests: []int{1}, Srcs: []int{0}},
		{Opcode: "FADD", Dests: []int{2}, Srcs: []int{1}},
	}}
	res, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	// FMUL latency 2, bypass -1 => distance 1.
	if d := res.Issue[1] - res.Issue[0]; d != 1 {
		t.Fatalf("forwarded FMUL->FADD distance = %d, want 1", d)
	}
}
