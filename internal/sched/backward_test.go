package sched

import (
	"testing"

	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/stats"
	"mdes/internal/workload"
)

func TestBackwardEmptyBlock(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	r, err := s.ScheduleBlockBackward(&ir.Block{})
	if err != nil || r.Length != 0 {
		t.Fatalf("empty: %v %+v", err, r)
	}
}

func TestBackwardRespectsDependences(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	s.SelfCheck = true
	b := &ir.Block{Ops: []*ir.Operation{
		op("MUL", []int{1}, []int{0}), // latency 3
		op("ADD", []int{2}, []int{1}),
		op("LD", []int{3}, []int{0}),
		op("ST", nil, []int{2, 3}),
		op("BR", nil, nil),
	}}
	r, err := s.ScheduleBlockBackward(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[1]-r.Issue[0] < 3 {
		t.Fatalf("latency violated backward: %v", r.Issue)
	}
	min := r.Issue[0]
	for _, c := range r.Issue {
		if c < min {
			min = c
		}
	}
	if min != 0 {
		t.Fatalf("schedule not normalized: %v", r.Issue)
	}
}

func TestBackwardStructuralHazards(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	s.SelfCheck = true
	b := &ir.Block{Ops: []*ir.Operation{
		op("LD", []int{1}, []int{0}),
		op("LD", []int{2}, []int{0}),
	}}
	r, err := s.ScheduleBlockBackward(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[0] == r.Issue[1] {
		t.Fatalf("two loads share the single M unit backward: %v", r.Issue)
	}
}

// Backward scheduling over workload blocks stays legal at every level and
// both shift directions.
func TestBackwardLegalAcrossConfigs(t *testing.T) {
	m := machines.MustLoad(machines.SuperSPARC)
	prog, err := workload.Generate(workload.Config{Machine: machines.SuperSPARC, NumOps: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []opt.Direction{opt.Forward, opt.Backward} {
		ll := lowlevel.Compile(m, lowlevel.FormAndOr)
		opt.Apply(ll, opt.LevelFull, dir)
		s := New(ll)
		s.SelfCheck = true
		for _, b := range prog.Blocks {
			if _, err := s.ScheduleBlockBackward(b); err != nil {
				t.Fatalf("dir %v: %v", dir, err)
			}
		}
	}
}

// The §7 claim: a backward scheduler is better served by the Backward
// shift (latest usage at zero) than by the Forward shift.
func TestBackwardShiftTunedForBackwardScheduler(t *testing.T) {
	m := machines.MustLoad(machines.SuperSPARC)
	prog, err := workload.Generate(workload.Config{Machine: machines.SuperSPARC, NumOps: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(dir opt.Direction) float64 {
		ll := lowlevel.Compile(m, lowlevel.FormAndOr)
		opt.Apply(ll, opt.LevelFull, dir)
		s := New(ll)
		_, counters, err := scheduleAllBackward(s, prog)
		if err != nil {
			t.Fatal(err)
		}
		return counters.ChecksPerAttempt()
	}
	fwd := run(opt.Forward)
	bwd := run(opt.Backward)
	if bwd > fwd+1e-9 {
		t.Fatalf("backward shift (%.3f checks/attempt) should not lose to forward shift (%.3f) under backward scheduling", bwd, fwd)
	}
}

func scheduleAllBackward(s *Scheduler, prog *workload.Program) ([]*Result, stats.Counters, error) {
	var total stats.Counters
	var results []*Result
	for _, b := range prog.Blocks {
		r, err := s.ScheduleBlockBackward(b)
		if err != nil {
			return nil, total, err
		}
		total.Add(r.Counters)
		results = append(results, r)
	}
	return results, total, nil
}
