package sched

import (
	"math/rand"
	"testing"

	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/opt"
	"mdes/internal/stats"
)

// A two-issue machine with one memory unit and two ALUs.
const twoIssueSrc = `
machine TwoIssue {
    resource Issue[2];
    resource ALU[2];
    resource M;
    resource Br;

    class alu {
        one_of Issue[0..1] @ 0;
        one_of ALU[0..1] @ 0;
    }
    class load {
        one_of Issue[0..1] @ 0;
        use M @ 0;
    }
    class store {
        one_of Issue[0..1] @ 0;
        use M @ 0;
    }
    class branch {
        use Issue[1] @ 0;
        use Br @ 0;
    }
    operation ADD class alu latency 1;
    operation MUL class alu latency 3;
    operation LD  class load latency 2;
    operation ST  class store latency 1;
    operation BR  class branch latency 1;
}
`

func newSched(t *testing.T, form lowlevel.Form, level opt.Level) *Scheduler {
	t.Helper()
	m, err := hmdes.Load("two", twoIssueSrc)
	if err != nil {
		t.Fatal(err)
	}
	ll := lowlevel.Compile(m, form)
	opt.Apply(ll, level, opt.Forward)
	s := New(ll)
	s.SelfCheck = true
	return s
}

func op(opcode string, dests, srcs []int) *ir.Operation {
	o := &ir.Operation{Opcode: opcode, Dests: dests, Srcs: srcs}
	switch opcode {
	case "LD":
		o.Mem = ir.MemLoad
	case "ST":
		o.Mem = ir.MemStore
	case "BR":
		o.Branch = true
	}
	return o
}

func TestEmptyBlock(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	r, err := s.ScheduleBlock(&ir.Block{})
	if err != nil || r.Length != 0 {
		t.Fatalf("empty block: %v %+v", err, r)
	}
}

func TestIndependentOpsPack(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	// Four independent ALU ops on a 2-issue machine: 2 cycles.
	b := &ir.Block{Ops: []*ir.Operation{
		op("ADD", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{0}),
		op("ADD", []int{3}, []int{0}),
		op("ADD", []int{4}, []int{0}),
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length != 2 {
		t.Fatalf("length = %d, want 2 (issue width)", r.Length)
	}
	if r.Issue[0] != 0 || r.Issue[1] != 0 || r.Issue[2] != 1 || r.Issue[3] != 1 {
		t.Fatalf("issues = %v", r.Issue)
	}
}

func TestLatencyRespected(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	b := &ir.Block{Ops: []*ir.Operation{
		op("MUL", []int{1}, []int{0}), // latency 3
		op("ADD", []int{2}, []int{1}),
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[1]-r.Issue[0] < 3 {
		t.Fatalf("flow latency violated: %v", r.Issue)
	}
}

func TestCriticalPathPriority(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	// A long MUL chain competes with independent ADDs; the chain head must
	// win the first slot.
	b := &ir.Block{Ops: []*ir.Operation{
		op("ADD", []int{10}, []int{0}),
		op("MUL", []int{1}, []int{0}),
		op("MUL", []int{2}, []int{1}),
		op("MUL", []int{3}, []int{2}),
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[1] != 0 {
		t.Fatalf("chain head not issued first: %v", r.Issue)
	}
	// ADD shares cycle 0 (second issue slot).
	if r.Issue[0] != 0 {
		t.Fatalf("independent ADD should fill the second slot: %v", r.Issue)
	}
}

func TestStructuralHazardSerializes(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	// Two independent loads, one memory unit.
	b := &ir.Block{Ops: []*ir.Operation{
		op("LD", []int{1}, []int{0}),
		op("LD", []int{2}, []int{0}),
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[0] == r.Issue[1] {
		t.Fatalf("two loads share the single M unit: %v", r.Issue)
	}
	// The failed attempt must be visible in the counters.
	if r.Counters.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two successes + one failure)", r.Counters.Attempts)
	}
}

func TestBranchLast(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	b := &ir.Block{Ops: []*ir.Operation{
		op("ADD", []int{1}, []int{0}),
		op("LD", []int{2}, []int{0}),
		op("BR", nil, nil),
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if r.Issue[2] < r.Issue[i] {
			t.Fatalf("branch issued before op %d: %v", i, r.Issue)
		}
	}
}

func TestUnknownOpcode(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	defer func() { recover() }()
	b := &ir.Block{Ops: []*ir.Operation{op("NOPE", nil, nil)}}
	if _, err := s.ScheduleBlock(b); err == nil {
		t.Fatalf("unknown opcode scheduled")
	}
}

func TestHistogramCollected(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	s.OptionsHist = stats.NewHistogram()
	b := &ir.Block{Ops: []*ir.Operation{
		op("ADD", []int{1}, []int{0}),
		op("ADD", []int{2}, []int{0}),
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.OptionsHist.Total() != r.Counters.Attempts {
		t.Fatalf("histogram samples %d != attempts %d", s.OptionsHist.Total(), r.Counters.Attempts)
	}
}

func TestScheduleAllAccumulates(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	blocks := []*ir.Block{
		{Ops: []*ir.Operation{op("ADD", []int{1}, []int{0})}},
		{Ops: []*ir.Operation{op("LD", []int{1}, []int{0})}},
	}
	results, total, err := s.ScheduleAll(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if total.Attempts != results[0].Counters.Attempts+results[1].Counters.Attempts {
		t.Fatalf("totals wrong")
	}
}

// randomBlock builds a random but well-formed block.
func randomBlock(r *rand.Rand, n int) *ir.Block {
	b := &ir.Block{}
	nextReg := 8
	opcodes := []string{"ADD", "ADD", "MUL", "LD", "ST"}
	for i := 0; i < n; i++ {
		oc := opcodes[r.Intn(len(opcodes))]
		var o *ir.Operation
		src := r.Intn(nextReg)
		switch oc {
		case "ST":
			o = op("ST", nil, []int{src, r.Intn(nextReg)})
		default:
			o = op(oc, []int{nextReg}, []int{src})
			nextReg++
		}
		b.Ops = append(b.Ops, o)
	}
	b.Ops = append(b.Ops, op("BR", nil, nil))
	return b
}

// The paper's invariant at scheduler level: identical schedules across both
// representations and every optimization level.
func TestIdenticalSchedulesAcrossConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		b := randomBlock(r, 25)
		var ref []int
		for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
			for lvl := opt.LevelNone; lvl <= opt.LevelFull; lvl++ {
				s := newSched(t, form, lvl)
				// Deep-copy the block because scheduling renumbers IDs only.
				res, err := s.ScheduleBlock(b)
				if err != nil {
					t.Fatalf("form %v level %v: %v", form, lvl, err)
				}
				if ref == nil {
					ref = res.Issue
					continue
				}
				for i := range ref {
					if res.Issue[i] != ref[i] {
						t.Fatalf("trial %d form %v level %v: issue[%d]=%d, ref %d",
							trial, form, lvl, i, res.Issue[i], ref[i])
					}
				}
			}
		}
	}
}

// Attempts are representation-independent (Table 5's "Sched. Attempts"
// column is shared across both representations).
func TestAttemptsIdenticalAcrossForms(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	b := randomBlock(r, 40)
	var attempts []int64
	for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
		s := newSched(t, form, opt.LevelNone)
		res, err := s.ScheduleBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		attempts = append(attempts, res.Counters.Attempts)
	}
	if attempts[0] != attempts[1] {
		t.Fatalf("attempts differ: %v", attempts)
	}
}

func TestCascadedClassUsed(t *testing.T) {
	src := `machine C {
	  resource IALU[2];
	  resource Issue[2];
	  class ialu { one_of Issue[0..1] @ 0; one_of IALU[0..1] @ 0; }
	  class ialu_casc { one_of Issue[0..1] @ 0; use IALU[1] @ 0; }
	  operation ADD class ialu cascaded ialu_casc latency 1;
	}`
	m, err := hmdes.Load("c", src)
	if err != nil {
		t.Fatal(err)
	}
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	s := New(ll)
	s.SelfCheck = true
	// op1 produces, op2 is a cascaded consumer: both can issue in cycle 0.
	b := &ir.Block{Ops: []*ir.Operation{
		{Opcode: "ADD", Dests: []int{1}, Srcs: []int{0}},
		{Opcode: "ADD", Dests: []int{2}, Srcs: []int{1}, Cascaded: true},
	}}
	r, err := s.ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Issue[0] != 0 || r.Issue[1] != 0 {
		t.Fatalf("cascaded pair not same-cycle: %v", r.Issue)
	}
}

func TestAccessorsAndTimingAdapters(t *testing.T) {
	s := newSched(t, lowlevel.FormAndOr, opt.LevelNone)
	if s.MDES().MachineName != "TwoIssue" {
		t.Fatalf("MDES() = %q", s.MDES().MachineName)
	}
	tm := timing{m: s.MDES()}
	if tm.Latency("MUL") != 3 || tm.Latency("NOPE") != 1 {
		t.Fatalf("timing.Latency wrong")
	}
	known := &ir.Operation{Opcode: "MUL"}
	unknown := &ir.Operation{Opcode: "NOPE"}
	if tm.FlowDist(known, unknown) != 1 || tm.FlowDist(unknown, known) != 1 {
		t.Fatalf("FlowDist unknown-opcode fallback wrong")
	}
	if tm.FlowDist(known, known) != 3 {
		t.Fatalf("FlowDist(MUL,MUL) = %d", tm.FlowDist(known, known))
	}
	defer func() { recover() }()
	s.Latency("NOPE") // must panic
	t.Fatalf("Latency did not panic")
}
