// Package query gives compiler modules other than the scheduler access to
// machine-description information — the paper's introduction argues that
// ILP transformations such as predication and height reduction "also need
// to use execution constraints to avoid over-subscription of processor
// resources", and that most modules forgo the MDES only because no
// efficient query interface exists. This package is that interface, built
// on the compiled low-level representation.
package query

import (
	"fmt"
	"sort"
	"time"

	"mdes/internal/check"
	"mdes/internal/lowlevel"
	"mdes/internal/obs"
	"mdes/internal/resctx"
	"mdes/internal/stats"
)

// Q answers execution-constraint queries against one compiled MDES.
//
// The compiled description is shared, immutable data (see
// lowlevel.MDES.Freeze); all mutable probe state lives in the borrowed
// resctx.Context. A Q therefore must not be used from more than one
// goroutine at a time, but any number of Qs — each with its own borrowed
// Context — may query the same compiled MDES concurrently.
type Q struct {
	mdes *lowlevel.MDES
	cx   *resctx.Context
}

// New returns a query interface over the compiled description, backed by
// a standalone context. For concurrent use over a shared description,
// borrow per-goroutine contexts from a resctx.Pool and use NewWithContext
// (or mdes.Engine.Query).
func New(m *lowlevel.MDES) *Q {
	return NewWithContext(m, resctx.New(m.NumResources))
}

// NewWithContext returns a query interface over the shared compiled
// description using the borrowed context for all mutable probe state.
func NewWithContext(m *lowlevel.MDES, cx *resctx.Context) *Q {
	return &Q{mdes: m, cx: cx}
}

// Close releases the underlying context back to its pool (a no-op for
// standalone contexts). The Q must not be used after Close.
func (q *Q) Close() {
	q.cx.Release()
	q.cx = nil
}

// Counters returns the instrumentation accumulated by this Q's probes
// since its context was borrowed.
func (q *Q) Counters() stats.Counters { return q.cx.Counters }

// check performs one instrumented constraint probe for the operation at
// opIdx issuing at cycle issue: the paper's counters always, plus
// per-class PhaseQuery metrics when the borrowed context carries an
// obs.Local. Every query probe is one scheduling attempt in the paper's
// accounting, so the observability layer attributes it exactly like a
// scheduler attempt.
func (q *Q) check(opIdx, issue int) (check.Selection, bool) {
	con := q.mdes.ConstraintFor(opIdx, false)
	local := q.cx.Obs
	if local == nil {
		return q.cx.Check(con, issue, &q.cx.Counters)
	}
	var t0 time.Time
	timed := local.SampleTime()
	if timed {
		t0 = time.Now()
	}
	c := &q.cx.Counters
	beforeOpts := c.OptionsChecked
	beforeChecks := c.ResourceChecks
	sel, ok := q.cx.Check(con, issue, c)
	ns := int64(-1)
	if timed {
		ns = time.Since(t0).Nanoseconds()
	}
	local.Attempt(obs.PhaseQuery, q.mdes.ConstraintIndexFor(opIdx, false),
		c.OptionsChecked-beforeOpts, c.ResourceChecks-beforeChecks, ns, ok)
	if !ok {
		if conf, found := q.cx.Explain(con, issue); found {
			local.ConflictAt(conf.Res)
		}
	}
	return sel, ok
}

// releaseAll undoes the probe reservations in sels: slot-by-slot on
// backends that can release, or by clearing the whole window otherwise
// (every query method resets before probing, so the two are equivalent
// here).
func (q *Q) releaseAll(sels []check.Selection) {
	if q.cx.Checker.Capabilities().CanRelease {
		for _, s := range sels {
			q.cx.ReleaseSel(s)
		}
		return
	}
	q.cx.Checker.Reset()
}

// Latency returns an opcode's result latency.
func (q *Q) Latency(opcode string) (int, error) {
	idx, ok := q.mdes.OpIndex[opcode]
	if !ok {
		return 0, fmt.Errorf("query: unknown opcode %q", opcode)
	}
	return q.mdes.Operations[idx].Latency, nil
}

// MustLatency is Latency for known-good opcodes; it panics on unknown
// names (a programming error in the caller's opcode tables).
func (q *Q) MustLatency(opcode string) int {
	lat, err := q.Latency(opcode)
	if err != nil {
		panic(err)
	}
	return lat
}

// FlowDistance returns the dependence distance a flow edge from producer
// to consumer must respect (latency, source sample time, bypasses).
func (q *Q) FlowDistance(producer, consumer string) (int, error) {
	pi, ok := q.mdes.OpIndex[producer]
	if !ok {
		return 0, fmt.Errorf("query: unknown opcode %q", producer)
	}
	ci, ok := q.mdes.OpIndex[consumer]
	if !ok {
		return 0, fmt.Errorf("query: unknown opcode %q", consumer)
	}
	return q.mdes.FlowDistance(pi, ci), nil
}

// CanIssueTogether reports whether all the given opcodes can issue in one
// cycle on an otherwise idle machine — the primary over-subscription probe
// for if-conversion and height reduction: merging two paths is only
// profitable if the merged cycle's operations actually fit.
func (q *Q) CanIssueTogether(opcodes ...string) (bool, error) {
	q.cx.Checker.Reset()
	sels := q.cx.Sels[:0]
	defer func() {
		q.releaseAll(sels)
		q.cx.Sels = sels[:0]
	}()
	for _, opc := range opcodes {
		idx, ok := q.mdes.OpIndex[opc]
		if !ok {
			return false, fmt.Errorf("query: unknown opcode %q", opc)
		}
		sel, ok2 := q.check(idx, 0)
		if !ok2 {
			return false, nil
		}
		q.cx.Reserve(sel)
		sels = append(sels, sel)
	}
	return true, nil
}

// MaxPerCycle returns how many instances of an opcode can issue in a
// single cycle (bounded by limit to keep pathological descriptions cheap).
func (q *Q) MaxPerCycle(opcode string, limit int) (int, error) {
	idx, ok := q.mdes.OpIndex[opcode]
	if !ok {
		return 0, fmt.Errorf("query: unknown opcode %q", opcode)
	}
	q.cx.Checker.Reset()
	sels := q.cx.Sels[:0]
	defer func() {
		q.releaseAll(sels)
		q.cx.Sels = sels[:0]
	}()
	n := 0
	for n < limit {
		sel, ok := q.check(idx, 0)
		if !ok {
			break
		}
		q.cx.Reserve(sel)
		sels = append(sels, sel)
		n++
	}
	return n, nil
}

// MinIssueDistance returns the smallest non-negative issue separation t at
// which an instance of `second` can follow an instance of `first` without
// a resource conflict, assuming both greedily pick their highest-priority
// available options on an otherwise idle machine. For fully pipelined
// operations this is 0 or 1; for unpipelined units (divide, the Pentium's
// non-pairable ops) it exposes the structural hazard distance other
// modules need for height estimates.
func (q *Q) MinIssueDistance(first, second string, limit int) (int, error) {
	fi, ok := q.mdes.OpIndex[first]
	if !ok {
		return 0, fmt.Errorf("query: unknown opcode %q", first)
	}
	si, ok := q.mdes.OpIndex[second]
	if !ok {
		return 0, fmt.Errorf("query: unknown opcode %q", second)
	}
	q.cx.Checker.Reset()
	sel, ok := q.check(fi, 0)
	if !ok {
		return 0, fmt.Errorf("query: %q cannot issue on an idle machine", first)
	}
	q.cx.Reserve(sel)
	defer q.releaseAll([]check.Selection{sel})
	for t := 0; t <= limit; t++ {
		if _, ok := q.check(si, t); ok {
			return t, nil
		}
	}
	return 0, fmt.Errorf("query: no feasible separation within %d cycles", limit)
}

// IssueWidth estimates the machine's sustainable issue width: the largest
// k such that some multiset of k operations (drawn from the operation
// table, tried greedily) issues in one cycle. It probes each opcode's
// MaxPerCycle and the pairwise combinations of distinct opcodes.
func (q *Q) IssueWidth(limit int) int {
	best := 0
	for _, op := range q.mdes.Operations {
		if n, err := q.MaxPerCycle(op.Name, limit); err == nil && n > best {
			best = n
		}
	}
	// Mixed pairs can beat homogeneous streams (e.g. one integer + one FP).
	for _, a := range q.mdes.Operations {
		for _, b := range q.mdes.Operations {
			if a == b {
				continue
			}
			count := 0
			q.cx.Checker.Reset()
			sels := q.cx.Sels[:0]
			for count < limit {
				var idx int
				if count%2 == 0 {
					idx = q.mdes.OpIndex[a.Name]
				} else {
					idx = q.mdes.OpIndex[b.Name]
				}
				sel, ok := q.check(idx, 0)
				if !ok {
					break
				}
				q.cx.Reserve(sel)
				sels = append(sels, sel)
				count++
			}
			q.releaseAll(sels)
			q.cx.Sels = sels[:0]
			if count > best {
				best = count
			}
		}
	}
	return best
}

// ResourceUse reports, for an opcode's highest-priority option choice, the
// (resource name, relative cycle) slots it would reserve — the footprint
// a resource-pressure heuristic charges per operation. The footprint is
// derived from the probe's option choices, so it is identical under every
// checker backend; per-resource cycle lists are sorted ascending.
func (q *Q) ResourceUse(opcode string) (map[string][]int, error) {
	idx, ok := q.mdes.OpIndex[opcode]
	if !ok {
		return nil, fmt.Errorf("query: unknown opcode %q", opcode)
	}
	q.cx.Checker.Reset()
	sel, ok2 := q.check(idx, 0)
	if !ok2 {
		return nil, fmt.Errorf("query: %q cannot issue on an idle machine", opcode)
	}
	out := map[string][]int{}
	for ti, tree := range sel.Constraint.Trees {
		for _, u := range tree.Options[sel.Chosen[ti]].ExpandedUsages() {
			name := q.mdes.ResourceNames[u.Res]
			out[name] = append(out[name], int(u.Time))
		}
	}
	for _, cycles := range out {
		sort.Ints(cycles)
	}
	return out, nil
}
