package query

import (
	"sort"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

func newQ(t *testing.T, name machines.Name, level opt.Level) *Q {
	t.Helper()
	m := machines.MustLoad(name)
	ll := lowlevel.Compile(m, lowlevel.FormAndOr)
	opt.Apply(ll, level, opt.Forward)
	return New(ll)
}

func TestLatencyAndFlowDistance(t *testing.T) {
	q := newQ(t, machines.PA7100, opt.LevelNone)
	if lat, err := q.Latency("LD"); err != nil || lat != 2 {
		t.Fatalf("Latency(LD) = %d, %v", lat, err)
	}
	if _, err := q.Latency("NOPE"); err == nil {
		t.Fatalf("unknown opcode accepted")
	}
	// FMUL->FADD has the forwarding path: distance 1 instead of 2.
	if d, err := q.FlowDistance("FMUL", "FADD"); err != nil || d != 1 {
		t.Fatalf("FlowDistance(FMUL,FADD) = %d, %v", d, err)
	}
	if d, _ := q.FlowDistance("FADD", "FMUL"); d != 2 {
		t.Fatalf("FlowDistance(FADD,FMUL) = %d", d)
	}
	if _, err := q.FlowDistance("NOPE", "FADD"); err == nil {
		t.Fatalf("unknown producer accepted")
	}
	if _, err := q.FlowDistance("FADD", "NOPE"); err == nil {
		t.Fatalf("unknown consumer accepted")
	}
}

func TestCanIssueTogether(t *testing.T) {
	q := newQ(t, machines.PA7100, opt.LevelNone)
	// PA7100 pairs one integer op with one FP op.
	if ok, err := q.CanIssueTogether("ADD", "FADD"); err != nil || !ok {
		t.Fatalf("ADD+FADD = %v, %v", ok, err)
	}
	// Two integer ops share the single integer pipe.
	if ok, _ := q.CanIssueTogether("ADD", "SUB"); ok {
		t.Fatalf("two integer ops paired on PA7100")
	}
	// A single op always fits.
	if ok, _ := q.CanIssueTogether("BR"); !ok {
		t.Fatalf("lone branch rejected")
	}
	if _, err := q.CanIssueTogether("NOPE"); err == nil {
		t.Fatalf("unknown opcode accepted")
	}
	// Repeated queries are independent (state restored).
	if ok, _ := q.CanIssueTogether("ADD", "FADD"); !ok {
		t.Fatalf("query state leaked")
	}
}

func TestCanIssueTogetherSuperSPARC(t *testing.T) {
	q := newQ(t, machines.SuperSPARC, opt.LevelFull)
	// Three one-source IALU ops need 3 decoders, 3 read ports, but only 2
	// IALUs exist.
	if ok, _ := q.CanIssueTogether("ADD1", "SUB1", "ADD1"); ok {
		t.Fatalf("three IALU ops issued with two IALUs")
	}
	// Three register-writing ops exceed the two write ports, so a load
	// cannot make the third slot either.
	if ok, _ := q.CanIssueTogether("ADD1", "SUB1", "LD"); ok {
		t.Fatalf("three register writers issued with two write ports")
	}
	// A store writes no register: 2 IALU + store triple-issues.
	if ok, _ := q.CanIssueTogether("ADD1", "SUB1", "ST"); !ok {
		t.Fatalf("2 IALU + store should triple-issue")
	}
}

func TestMaxPerCycle(t *testing.T) {
	q := newQ(t, machines.SuperSPARC, opt.LevelNone)
	if n, err := q.MaxPerCycle("LD", 8); err != nil || n != 1 {
		t.Fatalf("MaxPerCycle(LD) = %d, %v (one memory unit)", n, err)
	}
	if n, _ := q.MaxPerCycle("ADD1", 8); n != 2 {
		t.Fatalf("MaxPerCycle(ADD1) = %d (two IALUs)", n)
	}
	if n, _ := q.MaxPerCycle("BR", 8); n != 1 {
		t.Fatalf("MaxPerCycle(BR) = %d", n)
	}
	if _, err := q.MaxPerCycle("NOPE", 8); err == nil {
		t.Fatalf("unknown opcode accepted")
	}
}

func TestMinIssueDistance(t *testing.T) {
	q := newQ(t, machines.SuperSPARC, opt.LevelNone)
	// Two loads: the single memory unit forces distance 1.
	if d, err := q.MinIssueDistance("LD", "LD", 8); err != nil || d != 1 {
		t.Fatalf("MinIssueDistance(LD,LD) = %d, %v", d, err)
	}
	// Two IALU ops can co-issue: distance 0.
	if d, _ := q.MinIssueDistance("ADD1", "SUB1", 8); d != 0 {
		t.Fatalf("MinIssueDistance(ADD1,SUB1) = %d", d)
	}
	// Branches are alone on the last decoder: distance 1.
	if d, _ := q.MinIssueDistance("BR", "BR", 8); d != 1 {
		t.Fatalf("MinIssueDistance(BR,BR) = %d", d)
	}
	if _, err := q.MinIssueDistance("NOPE", "LD", 8); err == nil {
		t.Fatalf("unknown opcode accepted")
	}
}

func TestMinIssueDistancePentiumNonPairable(t *testing.T) {
	q := newQ(t, machines.Pentium, opt.LevelFull)
	// A non-pairable MUL occupies the whole issue cycle: nothing else that
	// cycle, so the next MUL is 1 away and a pairable ADD is 1 away too.
	if d, _ := q.MinIssueDistance("MUL", "ADD", 8); d != 1 {
		t.Fatalf("MUL->ADD distance = %d", d)
	}
	if d, _ := q.MinIssueDistance("ADD", "SUB", 8); d != 0 {
		t.Fatalf("ADD->SUB distance = %d (should pair)", d)
	}
}

func TestIssueWidth(t *testing.T) {
	cases := []struct {
		machine machines.Name
		want    int
	}{
		{machines.PA7100, 2},     // int + FP
		{machines.Pentium, 2},    // U + V
		{machines.SuperSPARC, 3}, // 2 IALU + 1 load (3 decoders)
		{machines.K5, 4},         // four decode positions
	}
	for _, c := range cases {
		q := newQ(t, c.machine, opt.LevelFull)
		if got := q.IssueWidth(8); got != c.want {
			t.Errorf("%s IssueWidth = %d, want %d", c.machine, got, c.want)
		}
	}
}

func TestResourceUse(t *testing.T) {
	q := newQ(t, machines.SuperSPARC, opt.LevelNone)
	use, err := q.ResourceUse("LD")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for n := range use {
		names = append(names, n)
	}
	sort.Strings(names)
	// Greedy first choice: Decoder[0] at -1, M at 0, WrPt[0] at 1.
	want := []string{"Decoder[0]", "M", "WrPt[0]"}
	if len(names) != len(want) {
		t.Fatalf("ResourceUse = %v", use)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ResourceUse = %v, want resources %v", use, want)
		}
	}
	if use["M"][0] != 0 || use["Decoder[0]"][0] != -1 {
		t.Fatalf("cycles wrong: %v", use)
	}
	if _, err := q.ResourceUse("NOPE"); err == nil {
		t.Fatalf("unknown opcode accepted")
	}
}

func TestMustLatency(t *testing.T) {
	q := newQ(t, machines.PA7100, opt.LevelNone)
	if q.MustLatency("LD") != 2 {
		t.Fatalf("MustLatency(LD) = %d", q.MustLatency("LD"))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustLatency did not panic on unknown opcode")
		}
	}()
	q.MustLatency("NOPE")
}
