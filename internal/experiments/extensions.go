package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mdes/internal/automata"
	"mdes/internal/eichen"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/modsched"
	"mdes/internal/opt"
	"mdes/internal/rumap"
	"mdes/internal/stats"
	"mdes/internal/textutil"
)

// ExtensionsReport bundles the measurements of the post-paper extensions:
// automatic AND/OR factorization, the finite-state-automaton baseline, the
// Eichenberger-Davidson reduction, and iterative modulo scheduling.
type ExtensionsReport struct {
	// Factorization: per machine, flat OR size vs factored vs authored.
	Factor []FactorRow
	// Automaton vs reservation tables on the optimized SuperSPARC.
	AutomatonStates  int
	AutomatonBytes   int
	TableChecksPerOp float64
	// Eichenberger-Davidson on the OR-form Pentium.
	EDResourcesMerged int
	EDUsagesRemoved   int
	// Modulo scheduling checks/attempt, unoptimized OR vs optimized AND/OR.
	ModORChecks float64
	ModAOChecks float64
}

// FactorRow is one machine's factorization outcome.
type FactorRow struct {
	Machine       machines.Name
	FlatBytes     int
	FactoredBytes int
	AuthoredBytes int
	TreesFactored int
}

// RunExtensions measures every extension at modest scale.
func RunExtensions(p Params) (*ExtensionsReport, error) {
	rep := &ExtensionsReport{}

	// Factorization over the combinatorial machines.
	for _, name := range []machines.Name{machines.SuperSPARC, machines.K5, machines.P6} {
		mach, err := machines.Load(name)
		if err != nil {
			return nil, err
		}
		flat := lowlevel.Compile(mach, lowlevel.FormOR)
		opt.EliminateRedundant(flat)
		opt.PruneDominatedOptions(flat)
		flatBytes := flat.Size().Total()
		r := opt.FactorORTrees(flat)
		authored := lowlevel.Compile(mach, lowlevel.FormAndOr)
		opt.Apply(authored, opt.LevelRedundancy, opt.Forward)
		rep.Factor = append(rep.Factor, FactorRow{
			Machine:       name,
			FlatBytes:     flatBytes,
			FactoredBytes: flat.Size().Total(),
			AuthoredBytes: authored.Size().Total(),
			TreesFactored: r.TreesFactored,
		})
	}

	// Automaton vs tables: replay one issue stream both ways.
	mach, err := machines.Load(machines.SuperSPARC)
	if err != nil {
		return nil, err
	}
	ll := lowlevel.Compile(mach, lowlevel.FormAndOr)
	opt.Apply(ll, opt.LevelFull, opt.Forward)
	a, err := automata.New(ll)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(p.Seed))
	ru := rumap.New(ll.NumResources)
	var c stats.Counters
	st := a.Start()
	cycle := 0
	nOps := 4000
	for i := 0; i < nOps; i++ {
		class := r.Intn(len(ll.Constraints))
		for {
			next, okA := a.TryIssue(st, class)
			sel, okR := ru.Check(ll.Constraints[class], cycle, &c)
			if okA != okR {
				return nil, fmt.Errorf("extensions: automaton and tables disagree")
			}
			if okA {
				st = next
				ru.Reserve(sel)
				break
			}
			st = a.Advance(st)
			cycle++
		}
	}
	rep.AutomatonStates = a.States()
	rep.AutomatonBytes = a.MemoryBytes()
	rep.TableChecksPerOp = float64(c.ResourceChecks) / float64(nOps)

	// Eichenberger-Davidson on the Pentium OR form.
	pent, err := machines.Load(machines.Pentium)
	if err != nil {
		return nil, err
	}
	por := lowlevel.Compile(pent, lowlevel.FormOR)
	opt.EliminateRedundant(por)
	ed := eichen.Reduce(por)
	rep.EDResourcesMerged = ed.ResourcesMerged
	rep.EDUsagesRemoved = ed.UsagesRemoved

	// Modulo scheduling on the SuperSPARC.
	for _, cfg := range []struct {
		form  lowlevel.Form
		level opt.Level
		dst   *float64
	}{
		{lowlevel.FormOR, opt.LevelNone, &rep.ModORChecks},
		{lowlevel.FormAndOr, opt.LevelFull, &rep.ModAOChecks},
	} {
		llm := lowlevel.Compile(mach, cfg.form)
		opt.Apply(llm, cfg.level, opt.Forward)
		s := modsched.New(llm)
		var attempts, checks int64
		for _, l := range extensionLoops() {
			sched, err := s.Schedule(l)
			if err != nil {
				return nil, err
			}
			attempts += sched.Counters.Attempts
			checks += sched.Counters.ResourceChecks
		}
		*cfg.dst = float64(checks) / float64(attempts)
	}
	return rep, nil
}

// extensionLoops builds a small deterministic loop suite.
func extensionLoops() []*modsched.Loop {
	r := rand.New(rand.NewSource(77))
	var loops []*modsched.Loop
	for k := 0; k < 20; k++ {
		size := 4 + r.Intn(5)
		body := &ir.Block{}
		reg := 8
		for i := 0; i < size; i++ {
			src := 1 + r.Intn(reg-1)
			var op *ir.Operation
			switch r.Intn(4) {
			case 0:
				op = &ir.Operation{Opcode: "LD", Dests: []int{reg}, Srcs: []int{0}, Mem: ir.MemLoad}
			case 1:
				op = &ir.Operation{Opcode: "ST", Srcs: []int{src, 0}, Mem: ir.MemStore}
			default:
				op = &ir.Operation{Opcode: "ADD1", Dests: []int{reg}, Srcs: []int{src}}
			}
			if len(op.Dests) > 0 {
				reg++
			}
			body.Ops = append(body.Ops, op)
		}
		loops = append(loops, &modsched.Loop{
			Body:    body,
			Carried: []modsched.Dep{{From: len(body.Ops) - 1, To: 0, MinDist: 1, Omega: 2}},
		})
	}
	return loops
}

// Format renders the extensions report.
func (r *ExtensionsReport) Format() string {
	var b strings.Builder
	b.WriteString("Extensions (beyond the paper's tables)\n\n")

	t := textutil.NewTable("Machine", "Flat OR bytes", "Factored bytes", "Authored AND/OR", "Trees factored")
	for _, row := range r.Factor {
		t.Row(string(row.Machine), row.FlatBytes, row.FactoredBytes, row.AuthoredBytes, row.TreesFactored)
	}
	b.WriteString("Automatic AND/OR factorization (opt.FactorORTrees):\n")
	b.WriteString(t.String())
	b.WriteString("\n")

	fmt.Fprintf(&b, "FSA hazard automaton vs reservation tables (optimized AND/OR SuperSPARC):\n")
	fmt.Fprintf(&b, "  automaton: %d states, ~%d bytes, O(1) memoized lookup per query\n",
		r.AutomatonStates, r.AutomatonBytes)
	fmt.Fprintf(&b, "  tables:    %.2f resource checks per op (but support unscheduling)\n\n",
		r.TableChecksPerOp)

	fmt.Fprintf(&b, "Eichenberger-Davidson reduction (OR-form Pentium):\n")
	fmt.Fprintf(&b, "  %d shadowed resources merged, %d redundant usages removed\n\n",
		r.EDResourcesMerged, r.EDUsagesRemoved)

	fmt.Fprintf(&b, "Iterative modulo scheduling (SuperSPARC loop suite):\n")
	fmt.Fprintf(&b, "  unoptimized OR: %.2f checks/attempt; optimized AND/OR: %.2f (%.1fx)\n",
		r.ModORChecks, r.ModAOChecks, r.ModORChecks/r.ModAOChecks)
	return b.String()
}
