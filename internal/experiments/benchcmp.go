package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// BenchRecord is the machine-readable perf record one `schedbench
// -benchjson` run writes per (machine, checker) — the BENCH_*.json
// trajectory the CI bench-smoke job uploads and `mdreport -bench-compare`
// gates on.
type BenchRecord struct {
	Schema string `json:"schema"`
	// MachineHash, Commit, and GeneratedAt stamp the artifact with what
	// produced it: the compiled description's content fingerprint, the
	// source revision (GITHUB_SHA in CI, git locally, else "unknown"),
	// and the UTC generation time — so two BENCH files are comparable
	// only when their provenance says they measured the same thing.
	MachineHash string `json:"machine_hash"`
	Commit      string `json:"commit"`
	GeneratedAt string `json:"generated_at"`
	Machine     string `json:"machine"`
	Checker     string `json:"checker"`
	NumOps      int    `json:"num_ops"`
	Seed        int64  `json:"seed"`
	Blocks      int    `json:"blocks"`
	Rounds      int    `json:"rounds"`
	// BlocksPerSec and MsPerOp are wall-clock rates from the best (minimum)
	// of Rounds serial runs; ChecksPerAttempt is exact accounting.
	BlocksPerSec     float64 `json:"blocks_per_sec"`
	MsPerOp          float64 `json:"ms_per_op"`
	ChecksPerAttempt float64 `json:"checks_per_attempt"`
}

// BenchSchema is the artifact schema BenchRecord reads and writes.
const BenchSchema = "mdes-bench/v2"

// Key returns the trajectory key a record is compared under.
func (r *BenchRecord) Key() string { return r.Machine + "/" + r.Checker }

// LoadBenchRecords reads BENCH records from path: either one artifact
// file or a directory containing BENCH_*.json files.
func LoadBenchRecords(path string) ([]BenchRecord, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var files []string
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no BENCH_*.json artifacts in %s", path)
		}
		sort.Strings(files)
	} else {
		files = []string{path}
	}
	var out []BenchRecord
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var r BenchRecord
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if r.Schema != BenchSchema {
			return nil, fmt.Errorf("%s: schema %q, want %q", f, r.Schema, BenchSchema)
		}
		out = append(out, r)
	}
	return out, nil
}

// BenchDelta is one (machine, checker) pair's old-vs-new comparison.
type BenchDelta struct {
	Key                 string
	OldBlocksPerSec     float64
	NewBlocksPerSec     float64
	OldChecksPerAttempt float64
	NewChecksPerAttempt float64
}

// RatePct returns the blocks/s change in percent (positive = faster).
func (d BenchDelta) RatePct() float64 {
	if d.OldBlocksPerSec == 0 {
		return 0
	}
	return 100 * (d.NewBlocksPerSec - d.OldBlocksPerSec) / d.OldBlocksPerSec
}

// CompareBenchRecords compares two BENCH trajectories pairwise by
// (machine, checker) key. A violation is reported when a pair's new
// blocks/s falls more than rateTol (fractional, e.g. 0.40) below the old,
// when its checks/attempt rises more than checksTol above the old, or
// when a pair measured in old is missing from new. The rate gate is loose
// by design (wall-clock noise across runners); the counter gate is tight
// (checks/attempt is deterministic).
func CompareBenchRecords(old, new []BenchRecord, rateTol, checksTol float64) ([]BenchDelta, []string) {
	newByKey := map[string]*BenchRecord{}
	for i := range new {
		newByKey[new[i].Key()] = &new[i]
	}
	var deltas []BenchDelta
	var violations []string
	for i := range old {
		o := &old[i]
		n := newByKey[o.Key()]
		if n == nil {
			violations = append(violations, fmt.Sprintf("%s: measured in old trajectory but missing from new", o.Key()))
			continue
		}
		d := BenchDelta{
			Key:                 o.Key(),
			OldBlocksPerSec:     o.BlocksPerSec,
			NewBlocksPerSec:     n.BlocksPerSec,
			OldChecksPerAttempt: o.ChecksPerAttempt,
			NewChecksPerAttempt: n.ChecksPerAttempt,
		}
		deltas = append(deltas, d)
		if floor := o.BlocksPerSec * (1 - rateTol); n.BlocksPerSec < floor {
			violations = append(violations, fmt.Sprintf("%s: %.0f blocks/s, below %.0f (old %.0f - %.0f%% tolerance)",
				d.Key, n.BlocksPerSec, floor, o.BlocksPerSec, 100*rateTol))
		}
		if ceil := o.ChecksPerAttempt * (1 + checksTol); n.ChecksPerAttempt > ceil {
			violations = append(violations, fmt.Sprintf("%s: %.3f checks/attempt, above %.3f (old %.3f + %.1f%% tolerance)",
				d.Key, n.ChecksPerAttempt, ceil, o.ChecksPerAttempt, 100*checksTol))
		}
	}
	sort.Strings(violations)
	return deltas, violations
}

// BenchBudget is one (machine, checker) pair's committed perf floor: the
// minimum acceptable scheduling rate and the maximum acceptable
// checks/attempt. Zero fields are ungated (same convention as the size
// Budget type).
type BenchBudget struct {
	MinBlocksPerSec     float64 `json:"min_blocks_per_sec,omitempty"`
	MaxChecksPerAttempt float64 `json:"max_checks_per_attempt,omitempty"`
}

// BenchBudgetsFile is the committed bench_budgets.json baseline: budgets
// keyed "machine/checker" under a schema tag that distinguishes a budgets
// file from a BENCH artifact.
type BenchBudgetsFile struct {
	Schema  string                 `json:"schema"`
	Budgets map[string]BenchBudget `json:"budgets"`
}

// BenchBudgetsSchema identifies a bench-budgets baseline file.
const BenchBudgetsSchema = "mdes-bench-budgets/v1"

// LoadBenchBudgets reads a committed bench-budgets baseline.
func LoadBenchBudgets(path string) (*BenchBudgetsFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchBudgetsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != BenchBudgetsSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, BenchBudgetsSchema)
	}
	return &f, nil
}

// IsBenchBudgetsFile reports whether path parses as a bench-budgets
// baseline — how -bench-compare decides whether its first argument is a
// budgets file or an old BENCH trajectory.
func IsBenchBudgetsFile(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Schema == BenchBudgetsSchema
}

// SeedBenchBudgets derives a budgets baseline from measured records:
// the rate floor is the measured blocks/s reduced by rateHeadroom
// (fractional — CI runners are slower and noisier than the seeding
// machine), the checks ceiling is the measured checks/attempt raised by
// checksHeadroom (tight — the counter is deterministic).
func SeedBenchBudgets(records []BenchRecord, rateHeadroom, checksHeadroom float64) *BenchBudgetsFile {
	f := &BenchBudgetsFile{Schema: BenchBudgetsSchema, Budgets: map[string]BenchBudget{}}
	for i := range records {
		r := &records[i]
		f.Budgets[r.Key()] = BenchBudget{
			MinBlocksPerSec:     math.Floor(r.BlocksPerSec * (1 - rateHeadroom)),
			MaxChecksPerAttempt: math.Ceil(r.ChecksPerAttempt*(1+checksHeadroom)*1000) / 1000,
		}
	}
	return f
}

// CheckBenchBudgets gates measured records against the committed
// baseline, returning sorted violation strings (empty = pass). Both
// directions are checked: every budgeted pair must be measured, and
// every measured pair must have a budget entry (seed it in).
func CheckBenchBudgets(f *BenchBudgetsFile, records []BenchRecord) []string {
	var violations []string
	measured := map[string]*BenchRecord{}
	for i := range records {
		r := &records[i]
		measured[r.Key()] = r
		b, ok := f.Budgets[r.Key()]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: no budget entry (re-seed with -seed-bench-budgets)", r.Key()))
			continue
		}
		if b.MinBlocksPerSec > 0 && r.BlocksPerSec < b.MinBlocksPerSec {
			violations = append(violations, fmt.Sprintf("%s: %.0f blocks/s, below budget floor %.0f",
				r.Key(), r.BlocksPerSec, b.MinBlocksPerSec))
		}
		if b.MaxChecksPerAttempt > 0 && r.ChecksPerAttempt > b.MaxChecksPerAttempt {
			violations = append(violations, fmt.Sprintf("%s: %.3f checks/attempt, above budget %.3f",
				r.Key(), r.ChecksPerAttempt, b.MaxChecksPerAttempt))
		}
	}
	for key := range f.Budgets {
		if measured[key] == nil {
			violations = append(violations, fmt.Sprintf("%s: budgeted but not measured", key))
		}
	}
	sort.Strings(violations)
	return violations
}
