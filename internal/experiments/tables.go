package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/textutil"
)

// BreakdownRow is one row of Tables 1-4: an option-count class, the share
// of scheduling attempts it received, and the classes it contains.
type BreakdownRow struct {
	Options         int
	AttemptsPercent float64
	Classes         []string
}

// Breakdown reproduces Tables 1-4 for one machine: the distribution of
// scheduling attempts over reservation-table option counts.
func Breakdown(name machines.Name, p Params) ([]BreakdownRow, *RunResult, error) {
	res, err := Run(RunConfig{Machine: name, Form: lowlevel.FormAndOr, Level: opt.LevelNone, Params: p})
	if err != nil {
		return nil, nil, err
	}
	var counts []int
	for n := range res.AttemptsByOptions {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	var rows []BreakdownRow
	for _, n := range counts {
		rows = append(rows, BreakdownRow{
			Options:         n,
			AttemptsPercent: 100 * float64(res.AttemptsByOptions[n]) / float64(res.Counters.Attempts),
			Classes:         res.ClassesByOptions[n],
		})
	}
	return rows, res, nil
}

// FormatBreakdown renders Tables 1-4.
func FormatBreakdown(name machines.Name, rows []BreakdownRow) string {
	t := textutil.NewTable("Options", "% Attempts", "Classes")
	for _, r := range rows {
		t.Row(r.Options, r.AttemptsPercent, strings.Join(r.Classes, " "))
	}
	return fmt.Sprintf("Option breakdown and scheduling characteristics, %s MDES\n%s", name, t.String())
}

// Table5Row reports the original (unoptimized) scheduling characteristics
// of one machine under both representations.
type Table5Row struct {
	Machine       machines.Name
	TotalOps      int
	AttemptsPerOp float64
	OROptions     float64 // avg options checked / attempt, OR-tree rep
	ORChecks      float64 // avg resource checks / attempt, OR-tree rep
	AOOptions     float64 // same, AND/OR-tree rep
	AOChecks      float64
}

// ChecksReducedPercent is the paper's last column: percent checks reduced
// by the AND/OR representation.
func (r Table5Row) ChecksReducedPercent() float64 {
	if r.ORChecks == 0 {
		return 0
	}
	return 100 * (r.ORChecks - r.AOChecks) / r.ORChecks
}

// Table5 measures original scheduling characteristics for every machine.
func Table5(p Params) ([]Table5Row, error) {
	var rows []Table5Row
	for _, name := range machines.All {
		or, err := Run(RunConfig{Machine: name, Form: lowlevel.FormOR, Level: opt.LevelNone, Params: p})
		if err != nil {
			return nil, err
		}
		ao, err := Run(RunConfig{Machine: name, Form: lowlevel.FormAndOr, Level: opt.LevelNone, Params: p})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Machine:       name,
			TotalOps:      or.TotalOps,
			AttemptsPerOp: or.AttemptsPerOp(),
			OROptions:     or.Counters.OptionsPerAttempt(),
			ORChecks:      or.Counters.ChecksPerAttempt(),
			AOOptions:     ao.Counters.OptionsPerAttempt(),
			AOChecks:      ao.Counters.ChecksPerAttempt(),
		})
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	t := textutil.NewTable("MDES", "Ops", "Att/Op", "OR Opt/Att", "OR Chk/Att", "AO Opt/Att", "AO Chk/Att", "Chk Reduced")
	for _, r := range rows {
		t.Row(string(r.Machine), r.TotalOps, r.AttemptsPerOp, r.OROptions, r.ORChecks,
			r.AOOptions, r.AOChecks, fmt.Sprintf("%.1f%%", r.ChecksReducedPercent()))
	}
	return "Table 5: original scheduling characteristics\n" + t.String()
}

// SizeRow compares the two representations' memory at one optimization
// level (Tables 6 and 7) or one representation across levels (Tables 9,
// 11, 14).
type SizeRow struct {
	Machine   machines.Name
	ORTrees   int
	OROptions int
	ORBytes   int
	AOTrees   int
	AOOptions int
	AOBytes   int
}

// ReductionPercent is the percent size reduction from OR to AND/OR.
func (r SizeRow) ReductionPercent() float64 {
	if r.ORBytes == 0 {
		return 0
	}
	return 100 * float64(r.ORBytes-r.AOBytes) / float64(r.ORBytes)
}

// sizesAt compiles each machine at a level and returns the size rows.
func sizesAt(level opt.Level) ([]SizeRow, error) {
	var rows []SizeRow
	for _, name := range machines.All {
		_, or, err := CompileMachine(name, lowlevel.FormOR, level)
		if err != nil {
			return nil, err
		}
		_, ao, err := CompileMachine(name, lowlevel.FormAndOr, level)
		if err != nil {
			return nil, err
		}
		so, sa := or.Size(), ao.Size()
		rows = append(rows, SizeRow{
			Machine:   name,
			ORTrees:   so.NumTrees,
			OROptions: so.NumOptions,
			ORBytes:   so.Total(),
			AOTrees:   sa.NumTrees,
			AOOptions: sa.NumOptions,
			AOBytes:   sa.Total(),
		})
	}
	return rows, nil
}

// Table6 reports original MDES memory requirements.
func Table6() ([]SizeRow, error) { return sizesAt(opt.LevelNone) }

// Table7 reports memory after eliminating redundant and unused information.
func Table7() ([]SizeRow, error) { return sizesAt(opt.LevelRedundancy) }

// FormatSizeRows renders Tables 6/7.
func FormatSizeRows(title string, rows []SizeRow) string {
	t := textutil.NewTable("MDES", "OR Trees", "OR Options", "OR Bytes", "AO Trees", "AO Options", "AO Bytes", "Reduction")
	for _, r := range rows {
		t.Row(string(r.Machine), r.ORTrees, r.OROptions, r.ORBytes,
			r.AOTrees, r.AOOptions, r.AOBytes, fmt.Sprintf("%.1f%%", r.ReductionPercent()))
	}
	return title + "\n" + t.String()
}

// BeforeAfterRow compares one metric before and after a transformation for
// both representations (Tables 9-13 share this shape).
type BeforeAfterRow struct {
	Machine  machines.Name
	ORBefore float64
	ORAfter  float64
	AOBefore float64
	AOAfter  float64
}

// Table8Row reports PA7100 scheduling characteristics before/after
// dominated-option pruning.
type Table8Row struct {
	TotalOps                    int
	AttemptsPerOp               float64
	OptionsBefore, ChecksBefore float64
	OptionsAfter, ChecksAfter   float64
}

// Table8 isolates dominated-option pruning on the PA7100 (the duplicated
// memory-operation option the paper describes in §5).
func Table8(p Params) (*Table8Row, error) {
	before, err := Run(RunConfig{Machine: machines.PA7100, Form: lowlevel.FormAndOr, Level: opt.LevelNone, Params: p})
	if err != nil {
		return nil, err
	}
	after, err := Run(RunConfig{
		Machine: machines.PA7100, Form: lowlevel.FormAndOr, Level: opt.LevelNone,
		ExtraPasses: []func(*lowlevel.MDES) opt.Report{opt.PruneDominatedOptions},
		Params:      p,
	})
	if err != nil {
		return nil, err
	}
	return &Table8Row{
		TotalOps:      before.TotalOps,
		AttemptsPerOp: before.AttemptsPerOp(),
		OptionsBefore: before.Counters.OptionsPerAttempt(),
		ChecksBefore:  before.Counters.ChecksPerAttempt(),
		OptionsAfter:  after.Counters.OptionsPerAttempt(),
		ChecksAfter:   after.Counters.ChecksPerAttempt(),
	}, nil
}

// FormatTable8 renders Table 8.
func FormatTable8(r *Table8Row) string {
	t := textutil.NewTable("MDES", "Ops", "Att/Op", "Opt/Att before", "Chk/Att before", "Opt/Att after", "Chk/Att after")
	t.Row("pa7100", r.TotalOps, r.AttemptsPerOp, r.OptionsBefore, r.ChecksBefore, r.OptionsAfter, r.ChecksAfter)
	return "Table 8: PA7100 after removing unnecessary options for memory operations\n" + t.String()
}

// incrementalSizes measures MDES bytes for both forms at two levels.
func incrementalSizes(before, after opt.Level) ([]BeforeAfterRow, error) {
	var rows []BeforeAfterRow
	for _, name := range machines.All {
		row := BeforeAfterRow{Machine: name}
		for _, cell := range []struct {
			form  lowlevel.Form
			level opt.Level
			dst   *float64
		}{
			{lowlevel.FormOR, before, &row.ORBefore},
			{lowlevel.FormOR, after, &row.ORAfter},
			{lowlevel.FormAndOr, before, &row.AOBefore},
			{lowlevel.FormAndOr, after, &row.AOAfter},
		} {
			_, ll, err := CompileMachine(name, cell.form, cell.level)
			if err != nil {
				return nil, err
			}
			*cell.dst = float64(ll.Size().Total())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// incrementalChecks measures checks/attempt for both forms at two levels.
func incrementalChecks(before, after opt.Level, p Params) ([]BeforeAfterRow, error) {
	var rows []BeforeAfterRow
	for _, name := range machines.All {
		row := BeforeAfterRow{Machine: name}
		for _, cell := range []struct {
			form  lowlevel.Form
			level opt.Level
			dst   *float64
		}{
			{lowlevel.FormOR, before, &row.ORBefore},
			{lowlevel.FormOR, after, &row.ORAfter},
			{lowlevel.FormAndOr, before, &row.AOBefore},
			{lowlevel.FormAndOr, after, &row.AOAfter},
		} {
			res, err := Run(RunConfig{Machine: name, Form: cell.form, Level: cell.level, Params: p})
			if err != nil {
				return nil, err
			}
			*cell.dst = res.Counters.ChecksPerAttempt()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table9 reports MDES size before/after bit-vector packing.
func Table9() ([]BeforeAfterRow, error) {
	return incrementalSizes(opt.LevelRedundancy, opt.LevelBitVector)
}

// Table10 reports checks/attempt before/after bit-vector packing.
func Table10(p Params) ([]BeforeAfterRow, error) {
	return incrementalChecks(opt.LevelRedundancy, opt.LevelBitVector, p)
}

// Table11 reports MDES size before/after usage-time transformation.
func Table11() ([]BeforeAfterRow, error) {
	return incrementalSizes(opt.LevelBitVector, opt.LevelTimeShift)
}

// Table12Row extends the before/after checks with checks-per-option after
// the transformation, the paper's "close to one check per option" result.
type Table12Row struct {
	BeforeAfterRow
	ORChecksPerOption float64
	AOChecksPerOption float64
}

// Table12 reports checks/attempt before/after the usage-time
// transformation plus the resulting checks/option.
func Table12(p Params) ([]Table12Row, error) {
	base, err := incrementalChecks(opt.LevelBitVector, opt.LevelTimeShift, p)
	if err != nil {
		return nil, err
	}
	var rows []Table12Row
	for _, b := range base {
		row := Table12Row{BeforeAfterRow: b}
		for _, cell := range []struct {
			form lowlevel.Form
			dst  *float64
		}{
			{lowlevel.FormOR, &row.ORChecksPerOption},
			{lowlevel.FormAndOr, &row.AOChecksPerOption},
		} {
			res, err := Run(RunConfig{Machine: b.Machine, Form: cell.form, Level: opt.LevelTimeShift, Params: p})
			if err != nil {
				return nil, err
			}
			*cell.dst = res.Counters.ChecksPerOption()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table13Row reports the AND/OR representation's options and checks per
// attempt before and after conflict-detection ordering (§8).
type Table13Row struct {
	Machine       machines.Name
	OptionsBefore float64
	OptionsAfter  float64
	ChecksBefore  float64
	ChecksAfter   float64
}

// Table13 measures the §8 transformations (OR-tree sorting and common-usage
// hoisting), AND/OR representation only.
func Table13(p Params) ([]Table13Row, error) {
	var rows []Table13Row
	for _, name := range machines.All {
		before, err := Run(RunConfig{Machine: name, Form: lowlevel.FormAndOr, Level: opt.LevelTimeShift, Params: p})
		if err != nil {
			return nil, err
		}
		after, err := Run(RunConfig{Machine: name, Form: lowlevel.FormAndOr, Level: opt.LevelFull, Params: p})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table13Row{
			Machine:       name,
			OptionsBefore: before.Counters.OptionsPerAttempt(),
			OptionsAfter:  after.Counters.OptionsPerAttempt(),
			ChecksBefore:  before.Counters.ChecksPerAttempt(),
			ChecksAfter:   after.Counters.ChecksPerAttempt(),
		})
	}
	return rows, nil
}

// AggregateRow is one row of Tables 14/15: unoptimized OR versus fully
// optimized OR and AND/OR.
type AggregateRow struct {
	Machine     machines.Name
	Unoptimized float64
	ORFull      float64
	AOFull      float64
}

// ORReduction and AOReduction give the paper's reduction columns.
func (r AggregateRow) ORReduction() float64 {
	if r.Unoptimized == 0 {
		return 0
	}
	return 100 * (r.Unoptimized - r.ORFull) / r.Unoptimized
}

// AOReduction gives the AND/OR column's reduction vs the unoptimized OR.
func (r AggregateRow) AOReduction() float64 {
	if r.Unoptimized == 0 {
		return 0
	}
	return 100 * (r.Unoptimized - r.AOFull) / r.Unoptimized
}

// Table14 reports the aggregate effect of all transformations on MDES size.
func Table14() ([]AggregateRow, error) {
	var rows []AggregateRow
	for _, name := range machines.All {
		row := AggregateRow{Machine: name}
		_, un, err := CompileMachine(name, lowlevel.FormOR, opt.LevelNone)
		if err != nil {
			return nil, err
		}
		_, orF, err := CompileMachine(name, lowlevel.FormOR, opt.LevelFull)
		if err != nil {
			return nil, err
		}
		_, aoF, err := CompileMachine(name, lowlevel.FormAndOr, opt.LevelFull)
		if err != nil {
			return nil, err
		}
		row.Unoptimized = float64(un.Size().Total())
		row.ORFull = float64(orF.Size().Total())
		row.AOFull = float64(aoF.Size().Total())
		rows = append(rows, row)
	}
	return rows, nil
}

// Table15 reports the aggregate effect on checks per scheduling attempt.
func Table15(p Params) ([]AggregateRow, error) {
	var rows []AggregateRow
	for _, name := range machines.All {
		row := AggregateRow{Machine: name}
		for _, cell := range []struct {
			form  lowlevel.Form
			level opt.Level
			dst   *float64
		}{
			{lowlevel.FormOR, opt.LevelNone, &row.Unoptimized},
			{lowlevel.FormOR, opt.LevelFull, &row.ORFull},
			{lowlevel.FormAndOr, opt.LevelFull, &row.AOFull},
		} {
			res, err := Run(RunConfig{Machine: name, Form: cell.form, Level: cell.level, Params: p})
			if err != nil {
				return nil, err
			}
			*cell.dst = res.Counters.ChecksPerAttempt()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBeforeAfter renders Tables 9-11 style rows.
func FormatBeforeAfter(title, metric string, rows []BeforeAfterRow) string {
	t := textutil.NewTable("MDES",
		"OR before", "OR after", "OR diff",
		"AO before", "AO after", "AO diff")
	for _, r := range rows {
		t.Row(string(r.Machine),
			r.ORBefore, r.ORAfter, textutil.Percent(r.ORBefore, r.ORAfter),
			r.AOBefore, r.AOAfter, textutil.Percent(r.AOBefore, r.AOAfter))
	}
	return fmt.Sprintf("%s (%s)\n%s", title, metric, t.String())
}

// FormatTable12 renders Table 12.
func FormatTable12(rows []Table12Row) string {
	t := textutil.NewTable("MDES",
		"OR Chk/Att before", "after", "Chk/Opt",
		"AO Chk/Att before", "after", "Chk/Opt")
	for _, r := range rows {
		t.Row(string(r.Machine),
			r.ORBefore, r.ORAfter, r.ORChecksPerOption,
			r.AOBefore, r.AOAfter, r.AOChecksPerOption)
	}
	return "Table 12: scheduling characteristics after usage-time transformation\n" + t.String()
}

// FormatTable13 renders Table 13.
func FormatTable13(rows []Table13Row) string {
	t := textutil.NewTable("MDES", "Opt/Att before", "after", "diff", "Chk/Att before", "after", "diff")
	for _, r := range rows {
		t.Row(string(r.Machine),
			r.OptionsBefore, r.OptionsAfter, textutil.Percent(r.OptionsBefore, r.OptionsAfter),
			r.ChecksBefore, r.ChecksAfter, textutil.Percent(r.ChecksBefore, r.ChecksAfter))
	}
	return "Table 13: optimizing AND/OR-trees for resource conflict detection\n" + t.String()
}

// FormatAggregate renders Tables 14/15.
func FormatAggregate(title, metric string, rows []AggregateRow) string {
	t := textutil.NewTable("MDES", "Unopt OR", "Full OR", "Reduction", "Full AND/OR", "Reduction")
	for _, r := range rows {
		t.Row(string(r.Machine), r.Unoptimized,
			r.ORFull, fmt.Sprintf("%.1f%%", r.ORReduction()),
			r.AOFull, fmt.Sprintf("%.1f%%", r.AOReduction()))
	}
	return fmt.Sprintf("%s (%s)\n%s", title, metric, t.String())
}
