// Package experiments reproduces every table and figure of the paper's
// evaluation: it generates each machine's synthetic workload, drives the
// multi-platform list scheduler over it at a chosen representation and
// optimization level, and reports the paper's metrics (MDES memory, options
// checked and resource checks per scheduling attempt, and the Figure 2
// distribution).
package experiments

import (
	"fmt"

	"mdes/internal/hmdes"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/sched"
	"mdes/internal/stats"
	"mdes/internal/workload"
)

// Params sets the workload scale shared by all experiments.
type Params struct {
	// NumOps is the approximate static operation count per machine (the
	// paper used 201011-282219 SPEC CINT92 operations per platform).
	NumOps int
	// Seed makes every workload deterministic.
	Seed int64
}

// Defaults returns the parameters used by the benchmark harness: large
// enough for stable averages, small enough to run in seconds per machine.
func Defaults() Params {
	return Params{NumOps: 20000, Seed: 1996}
}

// RunConfig identifies one (machine, representation, optimization) cell of
// the paper's tables.
type RunConfig struct {
	Machine machines.Name
	Form    lowlevel.Form
	Level   opt.Level
	// ExtraPasses run after Level's pipeline (Table 8 applies
	// dominated-option pruning in isolation).
	ExtraPasses []func(*lowlevel.MDES) opt.Report
	Params      Params
}

// RunResult carries everything the tables report about one run.
type RunResult struct {
	Config    RunConfig
	TotalOps  int
	Counters  stats.Counters
	Hist      *stats.Histogram
	Size      lowlevel.SizeStats
	SizeTotal int
	// AttemptsByOptions attributes scheduling attempts to the as-authored
	// option count of the attempted operation's class (Tables 1-4).
	AttemptsByOptions map[int]int64
	// ClassesByOptions lists class names per as-authored option count.
	ClassesByOptions map[int][]string
}

// AttemptsPerOp returns average scheduling attempts per operation.
func (r *RunResult) AttemptsPerOp() float64 {
	if r.TotalOps == 0 {
		return 0
	}
	return float64(r.Counters.Attempts) / float64(r.TotalOps)
}

// CompileMachine loads a built-in machine and compiles it at the given form
// and level, returning both the analyzed machine and the optimized MDES.
func CompileMachine(name machines.Name, form lowlevel.Form, level opt.Level) (*hmdes.Machine, *lowlevel.MDES, error) {
	m, err := machines.Load(name)
	if err != nil {
		return nil, nil, err
	}
	ll := lowlevel.Compile(m, form)
	opt.Apply(ll, level, opt.Forward)
	return m, ll, nil
}

// classOptionCounts maps each opcode to the as-authored expanded option
// count of its class and (if any) cascaded class.
func classOptionCounts(m *hmdes.Machine) (normal, cascaded map[string]int, byCount map[int][]string) {
	classCount := map[string]int{}
	byCount = map[int][]string{}
	for _, cname := range m.ClassNames {
		n := m.Classes[cname].OptionCount()
		classCount[cname] = n
		byCount[n] = append(byCount[n], cname)
	}
	normal = map[string]int{}
	cascaded = map[string]int{}
	for _, oname := range m.OpNames {
		op := m.Operations[oname]
		normal[oname] = classCount[op.Class]
		if op.Cascaded != "" {
			cascaded[oname] = classCount[op.Cascaded]
		} else {
			cascaded[oname] = classCount[op.Class]
		}
	}
	return normal, cascaded, byCount
}

// Run executes one experiment cell.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Params.NumOps == 0 {
		cfg.Params = Defaults()
	}
	m, err := machines.Load(cfg.Machine)
	if err != nil {
		return nil, err
	}
	ll := lowlevel.Compile(m, cfg.Form)
	opt.Apply(ll, cfg.Level, opt.Forward)
	for _, pass := range cfg.ExtraPasses {
		pass(ll)
	}
	if err := ll.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", cfg.Machine, err)
	}

	prog, err := workload.Generate(workload.Config{
		Machine: cfg.Machine,
		NumOps:  cfg.Params.NumOps,
		Seed:    cfg.Params.Seed,
	})
	if err != nil {
		return nil, err
	}

	normalCount, cascCount, byCount := classOptionCounts(m)
	res := &RunResult{
		Config:            cfg,
		TotalOps:          prog.NumOps,
		Hist:              stats.NewHistogram(),
		Size:              ll.Size(),
		AttemptsByOptions: map[int]int64{},
		ClassesByOptions:  byCount,
	}
	res.SizeTotal = res.Size.Total()

	s := sched.New(ll)
	s.OptionsHist = res.Hist
	s.OnAttempt = func(op *ir.Operation, optionsChecked int64, ok bool) {
		count := normalCount[op.Opcode]
		if op.Cascaded {
			count = cascCount[op.Opcode]
		}
		res.AttemptsByOptions[count]++
	}
	_, counters, err := s.ScheduleAll(prog.Blocks)
	if err != nil {
		return nil, err
	}
	res.Counters = counters
	return res, nil
}
