package experiments

import (
	"strings"
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

// testParams keeps unit tests fast; shape assertions hold from ~4k ops up.
var testParams = Params{NumOps: 4000, Seed: 1996}

func TestRunBasics(t *testing.T) {
	res, err := Run(RunConfig{
		Machine: machines.SuperSPARC,
		Form:    lowlevel.FormAndOr,
		Level:   opt.LevelNone,
		Params:  testParams,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps < testParams.NumOps {
		t.Fatalf("TotalOps = %d", res.TotalOps)
	}
	if res.Counters.Attempts < int64(res.TotalOps) {
		t.Fatalf("attempts %d < ops %d", res.Counters.Attempts, res.TotalOps)
	}
	if res.Hist.Total() != res.Counters.Attempts {
		t.Fatalf("histogram samples != attempts")
	}
	if res.SizeTotal <= 0 {
		t.Fatalf("SizeTotal = %d", res.SizeTotal)
	}
	var byOpt int64
	for _, n := range res.AttemptsByOptions {
		byOpt += n
	}
	if byOpt != res.Counters.Attempts {
		t.Fatalf("attempts-by-options %d != attempts %d", byOpt, res.Counters.Attempts)
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	res, err := Run(RunConfig{Machine: machines.PA7100, Form: lowlevel.FormOR, Level: opt.LevelNone,
		Params: Params{NumOps: 1000, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps < 1000 {
		t.Fatalf("TotalOps = %d", res.TotalOps)
	}
	if _, err := Run(RunConfig{Machine: "vax"}); err == nil {
		t.Fatalf("unknown machine accepted")
	}
}

// Table 1 shape: one-source IALU (48 options) dominates attempts; option
// class set matches the paper's exactly.
func TestBreakdownSuperSPARCShape(t *testing.T) {
	rows, _, err := Breakdown(machines.SuperSPARC, testParams)
	if err != nil {
		t.Fatal(err)
	}
	byOpt := map[int]float64{}
	for _, r := range rows {
		byOpt[r.Options] = r.AttemptsPercent
	}
	for _, want := range []int{1, 3, 6, 12, 24, 36, 48, 72} {
		if _, ok := byOpt[want]; !ok {
			t.Errorf("missing option class %d (Table 1)", want)
		}
	}
	if byOpt[48] < 35 || byOpt[48] > 65 {
		t.Errorf("48-option class share %.1f%%, paper ~50%%", byOpt[48])
	}
	if byOpt[6] < 8 || byOpt[6] > 22 {
		t.Errorf("load share %.1f%%, paper ~14%%", byOpt[6])
	}
	out := FormatBreakdown(machines.SuperSPARC, rows)
	if !strings.Contains(out, "ialu1") {
		t.Fatalf("format missing class names:\n%s", out)
	}
}

func TestBreakdownK5Classes(t *testing.T) {
	rows, _, err := Breakdown(machines.K5, testParams)
	if err != nil {
		t.Fatal(err)
	}
	byOpt := map[int]float64{}
	for _, r := range rows {
		byOpt[r.Options] = r.AttemptsPercent
	}
	// Table 4: the 16- and 32-option one-Rop classes dominate (~89%).
	if byOpt[16]+byOpt[32] < 70 {
		t.Errorf("one-Rop classes share %.1f%%, paper ~89%%", byOpt[16]+byOpt[32])
	}
	for _, want := range []int{16, 32, 48, 64, 128, 256, 384, 768} {
		if _, ok := byOpt[want]; !ok {
			t.Errorf("missing option class %d (Table 4)", want)
		}
	}
}

// Table 5 shape: AND/OR cuts checks dramatically for SuperSPARC and K5,
// not at all for the Pentium, and the schedules (attempt counts) agree.
func TestTable5Shape(t *testing.T) {
	rows, err := Table5(testParams)
	if err != nil {
		t.Fatal(err)
	}
	byMachine := map[machines.Name]Table5Row{}
	for _, r := range rows {
		byMachine[r.Machine] = r
	}
	if r := byMachine[machines.SuperSPARC]; r.ChecksReducedPercent() < 70 {
		t.Errorf("SuperSPARC checks reduced %.1f%%, paper 84.5%%", r.ChecksReducedPercent())
	}
	if r := byMachine[machines.K5]; r.ChecksReducedPercent() < 65 {
		t.Errorf("K5 checks reduced %.1f%%, paper 83.9%%", r.ChecksReducedPercent())
	}
	if r := byMachine[machines.Pentium]; r.ChecksReducedPercent() != 0 {
		t.Errorf("Pentium checks reduced %.1f%%, paper 0.0%%", r.ChecksReducedPercent())
	}
	if r := byMachine[machines.SuperSPARC]; r.OROptions < 10 || r.AOOptions > 8 {
		t.Errorf("SuperSPARC options/attempt OR %.1f AO %.1f", r.OROptions, r.AOOptions)
	}
	out := FormatTable5(rows)
	if !strings.Contains(out, "supersparc") {
		t.Fatalf("format:\n%s", out)
	}
}

// Table 6 shape: the AND/OR form is ~99% smaller for the K5, slightly
// larger for the Pentium.
func TestTable6Shape(t *testing.T) {
	rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	byMachine := map[machines.Name]SizeRow{}
	for _, r := range rows {
		byMachine[r.Machine] = r
	}
	if r := byMachine[machines.K5]; r.ReductionPercent() < 95 {
		t.Errorf("K5 size reduction %.1f%%, paper 98.6%%", r.ReductionPercent())
	}
	if r := byMachine[machines.Pentium]; r.ReductionPercent() >= 0 {
		t.Errorf("Pentium AND/OR should be slightly larger, got %.1f%% reduction", r.ReductionPercent())
	}
	out := FormatSizeRows("Table 6", rows)
	if !strings.Contains(out, "k5") {
		t.Fatalf("format:\n%s", out)
	}
}

// Table 7: redundancy elimination shrinks every description.
func TestTable7Shrinks(t *testing.T) {
	before, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	after, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if after[i].ORBytes >= before[i].ORBytes {
			t.Errorf("%s OR not shrunk: %d -> %d", before[i].Machine, before[i].ORBytes, after[i].ORBytes)
		}
		if after[i].AOBytes >= before[i].AOBytes {
			t.Errorf("%s AND/OR not shrunk: %d -> %d", before[i].Machine, before[i].AOBytes, after[i].AOBytes)
		}
	}
}

// Table 8: pruning the duplicated PA7100 option lowers options/attempt
// without changing attempts/op.
func TestTable8Shape(t *testing.T) {
	r, err := Table8(testParams)
	if err != nil {
		t.Fatal(err)
	}
	if r.OptionsAfter >= r.OptionsBefore {
		t.Errorf("options/attempt did not drop: %.2f -> %.2f", r.OptionsBefore, r.OptionsAfter)
	}
	if r.ChecksAfter > r.ChecksBefore {
		t.Errorf("checks/attempt rose: %.2f -> %.2f", r.ChecksBefore, r.ChecksAfter)
	}
	out := FormatTable8(r)
	if !strings.Contains(out, "pa7100") {
		t.Fatalf("format:\n%s", out)
	}
}

// Tables 9/10: packing shrinks the Pentium most and never hurts.
func TestBitVectorTablesShape(t *testing.T) {
	sizes, err := Table9()
	if err != nil {
		t.Fatal(err)
	}
	checks, err := Table10(testParams)
	if err != nil {
		t.Fatal(err)
	}
	var pentiumChecksDiff float64
	for i, r := range sizes {
		if r.ORAfter > r.ORBefore || r.AOAfter > r.AOBefore {
			t.Errorf("%s: packing grew the MDES", r.Machine)
		}
		c := checks[i]
		if c.ORAfter > c.ORBefore+1e-9 || c.AOAfter > c.AOBefore+1e-9 {
			t.Errorf("%s: packing increased checks", c.Machine)
		}
		if c.Machine == machines.Pentium {
			pentiumChecksDiff = (c.ORBefore - c.ORAfter) / c.ORBefore
		}
	}
	if pentiumChecksDiff < 0.3 {
		t.Errorf("Pentium packing benefit %.1f%%, paper 42%%", 100*pentiumChecksDiff)
	}
	_ = FormatBeforeAfter("Table 9", "bytes", sizes)
}

// Tables 11/12: the usage-time transformation drives checks/option to ~1.
func TestTimeShiftTablesShape(t *testing.T) {
	sizes, err := Table11()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sizes {
		if r.ORAfter > r.ORBefore || r.AOAfter > r.AOBefore {
			t.Errorf("%s: time shift grew the MDES", r.Machine)
		}
	}
	rows, err := Table12(testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ORChecksPerOption > 1.35 {
			t.Errorf("%s OR checks/option %.2f, paper 1.01-1.45", r.Machine, r.ORChecksPerOption)
		}
		if r.AOChecksPerOption > 1.35 {
			t.Errorf("%s AND/OR checks/option %.2f, paper 1.01-1.12", r.Machine, r.AOChecksPerOption)
		}
	}
	out := FormatTable12(rows)
	if !strings.Contains(out, "Chk/Opt") {
		t.Fatalf("format:\n%s", out)
	}
}

// Table 13: §8 ordering cuts SuperSPARC and K5 options/attempt.
func TestTable13Shape(t *testing.T) {
	rows, err := Table13(testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OptionsAfter > r.OptionsBefore+1e-9 {
			t.Errorf("%s: ordering increased options/attempt %.2f -> %.2f",
				r.Machine, r.OptionsBefore, r.OptionsAfter)
		}
		if r.Machine == machines.SuperSPARC {
			reduction := (r.OptionsBefore - r.OptionsAfter) / r.OptionsBefore
			if reduction < 0.10 {
				t.Errorf("SuperSPARC ordering benefit %.1f%%, paper 32%%", 100*reduction)
			}
		}
	}
	_ = FormatTable13(rows)
}

// Tables 14/15: the headline aggregates.
func TestAggregateTablesShape(t *testing.T) {
	sizes, err := Table14()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sizes {
		if r.Machine == machines.K5 && r.AOReduction() < 95 {
			t.Errorf("K5 aggregate size reduction %.1f%%, paper 99.0%%", r.AOReduction())
		}
		if r.ORFull > r.Unoptimized {
			t.Errorf("%s: full OR larger than unoptimized", r.Machine)
		}
	}
	checks, err := Table15(testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range checks {
		if r.Machine == machines.SuperSPARC && r.AOReduction() < 80 {
			t.Errorf("SuperSPARC aggregate checks reduction %.1f%%, paper 90.1%%", r.AOReduction())
		}
		if r.AOFull > r.Unoptimized {
			t.Errorf("%s: optimized AND/OR worse than unoptimized OR", r.Machine)
		}
	}
	_ = FormatAggregate("Table 14", "bytes", sizes)
	_ = FormatAggregate("Table 15", "checks/attempt", checks)
}

// Figure 2 shape: strong peak at one option checked, secondary mass at 48.
func TestFigure2Shape(t *testing.T) {
	f, err := RunFigure2(testParams)
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Hist.Percent(1); p < 25 || p > 55 {
		t.Errorf("peak at 1 option = %.1f%%, paper 38.0%%", p)
	}
	if p := f.Hist.Percent(48); p < 10 {
		t.Errorf("mass at 48 options = %.1f%%, paper 30.1%%", p)
	}
	if f.Hist.Max() > 72 {
		t.Errorf("max options checked %d exceeds the largest class 72", f.Hist.Max())
	}
	out := f.Format()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "#") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestCompileMachineHelper(t *testing.T) {
	m, ll, err := CompileMachine(machines.SuperSPARC, lowlevel.FormAndOr, opt.LevelFull)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "SuperSPARC" || !ll.Packed {
		t.Fatalf("helper returned %s packed=%v", m.Name, ll.Packed)
	}
	if _, _, err := CompileMachine("vax", lowlevel.FormOR, opt.LevelNone); err == nil {
		t.Fatalf("unknown machine accepted")
	}
}

// Determinism: the same params produce bit-identical results across runs.
func TestRunsDeterministic(t *testing.T) {
	cfg := RunConfig{Machine: machines.K5, Form: lowlevel.FormAndOr, Level: opt.LevelFull, Params: testParams}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters || a.TotalOps != b.TotalOps || a.SizeTotal != b.SizeTotal {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Counters, b.Counters)
	}
	for k, v := range a.AttemptsByOptions {
		if b.AttemptsByOptions[k] != v {
			t.Fatalf("attempt attribution differs at %d", k)
		}
	}
}

// The extensions report runs end to end.
func TestRunExtensions(t *testing.T) {
	rep, err := RunExtensions(Params{NumOps: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Factor) != 3 || rep.AutomatonStates == 0 || rep.EDResourcesMerged < 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ModAOChecks >= rep.ModORChecks {
		t.Fatalf("modulo ablation inverted: %v >= %v", rep.ModAOChecks, rep.ModORChecks)
	}
	if !strings.Contains(rep.Format(), "7") && rep.Format() == "" {
		t.Fatalf("empty format")
	}
}
