package experiments

import (
	"strings"
	"testing"

	"mdes/internal/machines"
)

// buildK5 builds the K5 machine report once per test binary; the golden
// and budget tests share it.
func buildK5(t *testing.T) *MachineReport {
	t.Helper()
	m, err := machines.Load(machines.K5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildMachineReport(string(machines.K5), m, machines.K5, testParams)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMachineReportGolden checks that the single-machine report
// reproduces the K5 rows of the whole-experiment tables number for
// number: the report issues the identical deterministic RunConfig cells,
// so every value must match exactly, not approximately.
func TestMachineReportGolden(t *testing.T) {
	r := buildK5(t)

	t5, err := Table5(testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t5 {
		if row.Machine == machines.K5 && row != *r.Table5 {
			t.Fatalf("Table 5 mismatch:\nreport %+v\ntable  %+v", *r.Table5, row)
		}
	}

	t7, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t7 {
		if row.Machine == machines.K5 && row != *r.Table7 {
			t.Fatalf("Table 7 mismatch:\nreport %+v\ntable  %+v", *r.Table7, row)
		}
	}

	t9, err := Table9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t9 {
		if row.Machine == machines.K5 && row != *r.Table9 {
			t.Fatalf("Table 9 mismatch:\nreport %+v\ntable  %+v", *r.Table9, row)
		}
	}

	t10, err := Table10(testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t10 {
		if row.Machine == machines.K5 && row != *r.Table10 {
			t.Fatalf("Table 10 mismatch:\nreport %+v\ntable  %+v", *r.Table10, row)
		}
	}

	t11, err := Table11()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t11 {
		if row.Machine == machines.K5 && row != *r.Table11 {
			t.Fatalf("Table 11 mismatch:\nreport %+v\ntable  %+v", *r.Table11, row)
		}
	}

	t12, err := Table12(testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t12 {
		if row.Machine == machines.K5 && row != *r.Table12 {
			t.Fatalf("Table 12 mismatch:\nreport %+v\ntable  %+v", *r.Table12, row)
		}
	}

	// The grid covers every form x level combination, validated.
	if want := len(bothForms) * len(allLevels); len(r.Grid) != want {
		t.Fatalf("grid has %d cells, want %d", len(r.Grid), want)
	}
	if len(r.Ledgers) != len(bothForms) {
		t.Fatalf("%d ledgers, want one per form", len(r.Ledgers))
	}
	if r.OptimizedBytes <= 0 || r.ResourceChecks <= 0 {
		t.Fatalf("budget quantities not measured: bytes=%d checks=%d",
			r.OptimizedBytes, r.ResourceChecks)
	}

	out := FormatMachineReport(r)
	for _, want := range []string{"Translator ledger", "Size grid", "Table 5", "Table 12", "budget quantities"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report lacks %q:\n%s", want, out)
		}
	}
}

// TestBudgetsSeedAndCheck checks the budget gate end to end: seeded
// budgets pass, an injected regression (budget one unit under the
// measurement) fails with a named violation, and a machine missing from
// the budgets file is itself a violation.
func TestBudgetsSeedAndCheck(t *testing.T) {
	r := buildK5(t)
	reports := []*MachineReport{r}

	b := SeedBudgets(reports, 0.05)
	if v := CheckBudgets(b, reports); len(v) != 0 {
		t.Fatalf("seeded budgets violated: %v", v)
	}
	// Zero headroom must still pass: seeding rounds up.
	if v := CheckBudgets(SeedBudgets(reports, 0), reports); len(v) != 0 {
		t.Fatalf("zero-headroom budgets violated: %v", v)
	}

	tight := Budgets{r.Machine: Budget{
		MaxBytes:          r.OptimizedBytes - 1,
		MaxResourceChecks: r.ResourceChecks - 1,
	}}
	v := CheckBudgets(tight, reports)
	if len(v) != 2 {
		t.Fatalf("injected regression: got %d violations, want 2: %v", len(v), v)
	}
	for _, msg := range v {
		if !strings.Contains(msg, r.Machine) || !strings.Contains(msg, "exceed") {
			t.Fatalf("violation message %q lacks machine or cause", msg)
		}
	}

	if v := CheckBudgets(Budgets{}, reports); len(v) != 1 || !strings.Contains(v[0], "no budget entry") {
		t.Fatalf("missing machine: %v", v)
	}
}
