package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
	"mdes/internal/stats"
	"mdes/internal/textutil"
)

// Figure2 reproduces the paper's Figure 2: the distribution of options
// checked during each scheduling attempt with the (unoptimized, OR-tree)
// SuperSPARC MDES, plus the summary statistics quoted in §2 (peaks at one
// option and at 48 options; share of successful first-option attempts).
type Figure2 struct {
	Hist          *stats.Histogram
	AttemptsPerOp float64
	TotalOps      int
}

// RunFigure2 schedules the SuperSPARC workload with the traditional
// representation and collects the distribution.
func RunFigure2(p Params) (*Figure2, error) {
	res, err := Run(RunConfig{
		Machine: machines.SuperSPARC,
		Form:    lowlevel.FormOR,
		Level:   opt.LevelNone,
		Params:  p,
	})
	if err != nil {
		return nil, err
	}
	return &Figure2{Hist: res.Hist, AttemptsPerOp: res.AttemptsPerOp(), TotalOps: res.TotalOps}, nil
}

// Format renders the distribution as an ASCII bar chart over the observed
// option counts (the paper's x-axis runs 0-75).
func (f *Figure2) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: distribution of options checked per scheduling attempt (SuperSPARC, OR-tree MDES)\n")
	fmt.Fprintf(&b, "attempts/op = %.2f over %d ops\n\n", f.AttemptsPerOp, f.TotalOps)

	var xs []int
	maxPct := 0.0
	for x := 0; x <= f.Hist.Max(); x++ {
		if f.Hist.Count(x) > 0 {
			xs = append(xs, x)
			if p := f.Hist.Percent(x); p > maxPct {
				maxPct = p
			}
		}
	}
	sort.Ints(xs)
	t := textutil.NewTable("Options", "% Attempts", "")
	for _, x := range xs {
		pct := f.Hist.Percent(x)
		t.Row(x, pct, textutil.Bar(pct, maxPct, 40))
	}
	b.WriteString(t.String())
	return b.String()
}
