package experiments

import (
	"fmt"
	"strings"

	"mdes/internal/hmdes"
	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/obs"
	"mdes/internal/opt"
	"mdes/internal/textutil"
)

// SizeCell is one (form, level) cell of a machine's size grid, measured
// from the pass ledger's After metrics.
type SizeCell struct {
	Form  string          `json:"form"`
	Level string          `json:"level"`
	Size  obs.SizeMetrics `json:"size"`
	// CompileNs is the ledger's total pipeline wall time for the cell.
	CompileNs int64 `json:"compile_ns"`
}

// MachineReport is everything mdreport renders for one machine: the full
// form x level size grid with pass ledgers, and — for builtin machines,
// where the deterministic synthetic workload exists — the machine's rows
// of the paper's Tables 5 and 7-12. The builtin rows are produced by the
// exact RunConfig cells tables.go uses, so they reproduce the
// whole-experiment tables number for number.
type MachineReport struct {
	Machine string `json:"machine"`
	Builtin bool   `json:"builtin"`
	Params  Params `json:"params"`

	// Grid is the size of every form x level combination; Ledgers holds
	// the full pass ledger of the LevelFull pipeline for each form.
	Grid    []SizeCell    `json:"grid"`
	Ledgers []*obs.Ledger `json:"ledgers"`

	// OptimizedBytes is the AND/OR LevelFull accounted size and
	// ResourceChecks the workload's total resource checks at that cell
	// (builtin only) — the two budget-gated quantities.
	OptimizedBytes int   `json:"optimized_bytes"`
	ResourceChecks int64 `json:"resource_checks,omitempty"`

	Table5  *Table5Row      `json:"table5,omitempty"`
	Table7  *SizeRow        `json:"table7,omitempty"`
	Table8  *Table8Row      `json:"table8,omitempty"`
	Table9  *BeforeAfterRow `json:"table9,omitempty"`
	Table10 *BeforeAfterRow `json:"table10,omitempty"`
	Table11 *BeforeAfterRow `json:"table11,omitempty"`
	Table12 *Table12Row     `json:"table12,omitempty"`
}

// allLevels lists the pipeline levels in order.
var allLevels = []opt.Level{
	opt.LevelNone, opt.LevelRedundancy, opt.LevelBitVector,
	opt.LevelTimeShift, opt.LevelFull,
}

var bothForms = []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr}

// BuildMachineReport compiles machine m (display name name) at every
// form x level combination, recording pass ledgers, and — when builtin
// is a known builtin machine name — schedules the deterministic workload
// to fill in the paper's per-machine table rows.
func BuildMachineReport(name string, m *hmdes.Machine, builtin machines.Name, p Params) (*MachineReport, error) {
	if p.NumOps == 0 {
		p = Defaults()
	}
	r := &MachineReport{Machine: name, Builtin: builtin != "", Params: p}

	for _, form := range bothForms {
		for _, level := range allLevels {
			ll := lowlevel.Compile(m, form)
			led, _ := opt.ApplyLedger(ll, level, opt.Forward)
			led.Machine = name
			if err := ll.Validate(); err != nil {
				return nil, fmt.Errorf("report: %s %s/%s: %w", name, form, level, err)
			}
			r.Grid = append(r.Grid, SizeCell{
				Form:      form.String(),
				Level:     level.String(),
				Size:      led.After,
				CompileNs: led.WallNs,
			})
			if level == opt.LevelFull {
				r.Ledgers = append(r.Ledgers, led)
				if form == lowlevel.FormAndOr {
					r.OptimizedBytes = led.After.TotalBytes
				}
			}
		}
	}

	r.Table7 = &SizeRow{Machine: machines.Name(name)}
	fill := func(form lowlevel.Form, level opt.Level) obs.SizeMetrics {
		return r.cell(form.String(), level.String()).Size
	}
	s7o, s7a := fill(lowlevel.FormOR, opt.LevelRedundancy), fill(lowlevel.FormAndOr, opt.LevelRedundancy)
	r.Table7.ORTrees, r.Table7.OROptions, r.Table7.ORBytes = s7o.Trees, s7o.Options, s7o.TotalBytes
	r.Table7.AOTrees, r.Table7.AOOptions, r.Table7.AOBytes = s7a.Trees, s7a.Options, s7a.TotalBytes
	r.Table9 = &BeforeAfterRow{
		Machine:  machines.Name(name),
		ORBefore: float64(fill(lowlevel.FormOR, opt.LevelRedundancy).TotalBytes),
		ORAfter:  float64(fill(lowlevel.FormOR, opt.LevelBitVector).TotalBytes),
		AOBefore: float64(fill(lowlevel.FormAndOr, opt.LevelRedundancy).TotalBytes),
		AOAfter:  float64(fill(lowlevel.FormAndOr, opt.LevelBitVector).TotalBytes),
	}
	r.Table11 = &BeforeAfterRow{
		Machine:  machines.Name(name),
		ORBefore: float64(fill(lowlevel.FormOR, opt.LevelBitVector).TotalBytes),
		ORAfter:  float64(fill(lowlevel.FormOR, opt.LevelTimeShift).TotalBytes),
		AOBefore: float64(fill(lowlevel.FormAndOr, opt.LevelBitVector).TotalBytes),
		AOAfter:  float64(fill(lowlevel.FormAndOr, opt.LevelTimeShift).TotalBytes),
	}

	if builtin == "" {
		return r, nil
	}
	if err := r.fillScheduled(builtin, p); err != nil {
		return nil, err
	}
	return r, nil
}

// cell returns the grid cell for (form, level); the grid always holds
// every combination.
func (r *MachineReport) cell(form, level string) SizeCell {
	for _, c := range r.Grid {
		if c.Form == form && c.Level == level {
			return c
		}
	}
	return SizeCell{}
}

// fillScheduled runs the deterministic workload cells behind the
// scheduling tables (5, 8, 10, 12), mirroring tables.go's RunConfigs so
// the single-machine rows equal the whole-experiment tables.
func (r *MachineReport) fillScheduled(name machines.Name, p Params) error {
	run := func(form lowlevel.Form, level opt.Level, extra ...func(*lowlevel.MDES) opt.Report) (*RunResult, error) {
		return Run(RunConfig{Machine: name, Form: form, Level: level, ExtraPasses: extra, Params: p})
	}

	orNone, err := run(lowlevel.FormOR, opt.LevelNone)
	if err != nil {
		return err
	}
	aoNone, err := run(lowlevel.FormAndOr, opt.LevelNone)
	if err != nil {
		return err
	}
	r.Table5 = &Table5Row{
		Machine:       name,
		TotalOps:      orNone.TotalOps,
		AttemptsPerOp: orNone.AttemptsPerOp(),
		OROptions:     orNone.Counters.OptionsPerAttempt(),
		ORChecks:      orNone.Counters.ChecksPerAttempt(),
		AOOptions:     aoNone.Counters.OptionsPerAttempt(),
		AOChecks:      aoNone.Counters.ChecksPerAttempt(),
	}

	// Table 8 generalized: dominated-option pruning in isolation (the
	// paper shows the PA7100; the same measurement is valid anywhere).
	pruned, err := run(lowlevel.FormAndOr, opt.LevelNone, opt.PruneDominatedOptions)
	if err != nil {
		return err
	}
	r.Table8 = &Table8Row{
		TotalOps:      aoNone.TotalOps,
		AttemptsPerOp: aoNone.AttemptsPerOp(),
		OptionsBefore: aoNone.Counters.OptionsPerAttempt(),
		ChecksBefore:  aoNone.Counters.ChecksPerAttempt(),
		OptionsAfter:  pruned.Counters.OptionsPerAttempt(),
		ChecksAfter:   pruned.Counters.ChecksPerAttempt(),
	}

	checks := map[[2]int]*RunResult{}
	for _, form := range bothForms {
		for _, level := range []opt.Level{opt.LevelRedundancy, opt.LevelBitVector, opt.LevelTimeShift} {
			res, err := run(form, level)
			if err != nil {
				return err
			}
			checks[[2]int{int(form), int(level)}] = res
		}
	}
	at := func(form lowlevel.Form, level opt.Level) *RunResult {
		return checks[[2]int{int(form), int(level)}]
	}
	r.Table10 = &BeforeAfterRow{
		Machine:  name,
		ORBefore: at(lowlevel.FormOR, opt.LevelRedundancy).Counters.ChecksPerAttempt(),
		ORAfter:  at(lowlevel.FormOR, opt.LevelBitVector).Counters.ChecksPerAttempt(),
		AOBefore: at(lowlevel.FormAndOr, opt.LevelRedundancy).Counters.ChecksPerAttempt(),
		AOAfter:  at(lowlevel.FormAndOr, opt.LevelBitVector).Counters.ChecksPerAttempt(),
	}
	r.Table12 = &Table12Row{
		BeforeAfterRow: BeforeAfterRow{
			Machine:  name,
			ORBefore: at(lowlevel.FormOR, opt.LevelBitVector).Counters.ChecksPerAttempt(),
			ORAfter:  at(lowlevel.FormOR, opt.LevelTimeShift).Counters.ChecksPerAttempt(),
			AOBefore: at(lowlevel.FormAndOr, opt.LevelBitVector).Counters.ChecksPerAttempt(),
			AOAfter:  at(lowlevel.FormAndOr, opt.LevelTimeShift).Counters.ChecksPerAttempt(),
		},
		ORChecksPerOption: at(lowlevel.FormOR, opt.LevelTimeShift).Counters.ChecksPerOption(),
		AOChecksPerOption: at(lowlevel.FormAndOr, opt.LevelTimeShift).Counters.ChecksPerOption(),
	}

	full, err := run(lowlevel.FormAndOr, opt.LevelFull)
	if err != nil {
		return err
	}
	r.ResourceChecks = full.Counters.ResourceChecks
	return nil
}

// FormatMachineReport renders the report: pass ledgers, the size grid,
// and (builtin machines) the paper's per-machine table rows, reusing the
// same formatters as the whole-experiment harness.
func FormatMachineReport(r *MachineReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mdreport: %s (builtin=%v, ops=%d, seed=%d)\n\n",
		r.Machine, r.Builtin, r.Params.NumOps, r.Params.Seed)

	for _, led := range r.Ledgers {
		b.WriteString(obs.FormatLedger(led))
		b.WriteByte('\n')
	}

	gt := textutil.NewTable("Form", "Level", "Options", "Trees", "Usages", "Words", "Bytes", "Compile µs")
	for _, c := range r.Grid {
		gt.Row(c.Form, c.Level, c.Size.Options, c.Size.Trees,
			c.Size.ScalarUsages, c.Size.MaskWords, c.Size.TotalBytes,
			fmt.Sprintf("%.1f", float64(c.CompileNs)/1e3))
	}
	b.WriteString("Size grid (all forms and optimization levels)\n")
	b.WriteString(gt.String())
	b.WriteByte('\n')

	if r.Table5 != nil {
		b.WriteString(FormatTable5([]Table5Row{*r.Table5}))
		b.WriteByte('\n')
	}
	if r.Table7 != nil {
		b.WriteString(FormatSizeRows("Table 7: memory after redundancy elimination", []SizeRow{*r.Table7}))
		b.WriteByte('\n')
	}
	if r.Table8 != nil {
		t := textutil.NewTable("MDES", "Ops", "Att/Op", "Opt/Att before", "Chk/Att before", "Opt/Att after", "Chk/Att after")
		t.Row(r.Machine, r.Table8.TotalOps, r.Table8.AttemptsPerOp,
			r.Table8.OptionsBefore, r.Table8.ChecksBefore,
			r.Table8.OptionsAfter, r.Table8.ChecksAfter)
		b.WriteString("Table 8: dominated-option pruning in isolation\n" + t.String())
		b.WriteByte('\n')
	}
	if r.Table9 != nil {
		b.WriteString(FormatBeforeAfter("Table 9: bit-vector packing", "MDES bytes", []BeforeAfterRow{*r.Table9}))
		b.WriteByte('\n')
	}
	if r.Table10 != nil {
		b.WriteString(FormatBeforeAfter("Table 10: bit-vector packing", "checks/attempt", []BeforeAfterRow{*r.Table10}))
		b.WriteByte('\n')
	}
	if r.Table11 != nil {
		b.WriteString(FormatBeforeAfter("Table 11: usage-time transformation", "MDES bytes", []BeforeAfterRow{*r.Table11}))
		b.WriteByte('\n')
	}
	if r.Table12 != nil {
		b.WriteString(FormatTable12([]Table12Row{*r.Table12}))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "budget quantities: optimized_bytes=%d resource_checks=%d\n",
		r.OptimizedBytes, r.ResourceChecks)
	return b.String()
}
