package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Budget caps one machine's budget-gated quantities: the AND/OR
// LevelFull accounted size and (builtin machines) the deterministic
// workload's total resource checks at that cell. Zero means "not gated".
type Budget struct {
	MaxBytes          int   `json:"max_bytes"`
	MaxResourceChecks int64 `json:"max_resource_checks,omitempty"`
}

// Budgets maps machine name to its budget (the budgets.json schema).
type Budgets map[string]Budget

// LoadBudgets reads a budgets.json file.
func LoadBudgets(path string) (Budgets, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budgets
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("budgets: %s: %w", path, err)
	}
	return b, nil
}

// SeedBudgets derives budgets from measured reports with fractional
// headroom (0.05 = 5%), rounding up so the measured values themselves
// always pass.
func SeedBudgets(reports []*MachineReport, headroom float64) Budgets {
	pad := func(v float64) float64 { return math.Ceil(v * (1 + headroom)) }
	b := Budgets{}
	for _, r := range reports {
		b[r.Machine] = Budget{
			MaxBytes:          int(pad(float64(r.OptimizedBytes))),
			MaxResourceChecks: int64(pad(float64(r.ResourceChecks))),
		}
	}
	return b
}

// MarshalIndent renders the budgets deterministically (sorted keys).
func (b Budgets) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// CheckBudgets compares reports against budgets and returns one
// violation message per exceeded cap (empty = all within budget). A
// machine missing from the budgets file is a violation too: every
// shipped machine must be gated.
func CheckBudgets(b Budgets, reports []*MachineReport) []string {
	var out []string
	for _, r := range reports {
		bud, ok := b[r.Machine]
		if !ok {
			out = append(out, fmt.Sprintf("%s: no budget entry (run -seed-budgets to add one)", r.Machine))
			continue
		}
		if bud.MaxBytes > 0 && r.OptimizedBytes > bud.MaxBytes {
			out = append(out, fmt.Sprintf("%s: optimized size %d bytes exceeds budget %d",
				r.Machine, r.OptimizedBytes, bud.MaxBytes))
		}
		if bud.MaxResourceChecks > 0 && r.ResourceChecks > bud.MaxResourceChecks {
			out = append(out, fmt.Sprintf("%s: %d resource checks exceed budget %d",
				r.Machine, r.ResourceChecks, bud.MaxResourceChecks))
		}
	}
	sort.Strings(out)
	return out
}
