package experiments

import (
	"testing"

	"mdes/internal/lowlevel"
	"mdes/internal/machines"
	"mdes/internal/opt"
)

// The paper's §4 guarantee on the real machine descriptions: every
// representation and optimization level produces the exact same schedule,
// observable here as identical attempt counts and identical options-per-
// attempt histograms of successful first attempts... attempts are the
// invariant; options checked differ by design. We assert attempts and
// total ops.
func TestSchedulesInvariantAcrossConfigsOnBuiltins(t *testing.T) {
	p := Params{NumOps: 1500, Seed: 77}
	for _, name := range machines.All {
		var refAttempts int64
		first := true
		for _, form := range []lowlevel.Form{lowlevel.FormOR, lowlevel.FormAndOr} {
			for lvl := opt.LevelNone; lvl <= opt.LevelFull; lvl++ {
				res, err := Run(RunConfig{Machine: name, Form: form, Level: lvl, Params: p})
				if err != nil {
					t.Fatalf("%s %v %v: %v", name, form, lvl, err)
				}
				if first {
					refAttempts = res.Counters.Attempts
					first = false
					continue
				}
				if res.Counters.Attempts != refAttempts {
					t.Errorf("%s %v %v: attempts %d != reference %d (schedule changed!)",
						name, form, lvl, res.Counters.Attempts, refAttempts)
				}
			}
		}
	}
}
