// Package modsched implements iterative modulo scheduling (Rau, MICRO-27,
// 1994 — the paper's reference [12]) on top of the compiled MDES: software
// pipelining of a loop body at initiation interval II, with a modulo
// resource-usage map and the unscheduling (eviction) step that the paper
// highlights as "straightforward with reservation tables ... but unclear
// ... with finite-state automata" (§10).
//
// The paper also notes that "the number of scheduling attempts required
// per operation can increase significantly with the use of more advanced
// scheduling techniques such as iterative modulo scheduling", making the
// MDES transformations more valuable; the modulo benchmarks measure
// exactly that.
package modsched

import (
	"fmt"
	"time"

	"mdes/internal/check"
	"mdes/internal/ir"
	"mdes/internal/lowlevel"
	"mdes/internal/obs"
	"mdes/internal/resctx"
	"mdes/internal/stats"
)

// Dep is a dependence within or across loop iterations:
//
//	issue(To) >= issue(From) + MinDist - Omega*II
//
// Omega is the iteration distance (0 = same iteration).
type Dep struct {
	From, To int
	MinDist  int
	Omega    int
}

// mdesTiming adapts the compiled MDES's operand-level distances.
type mdesTiming struct{ m *lowlevel.MDES }

func (t mdesTiming) FlowDist(producer, consumer *ir.Operation) int {
	pi, pok := t.m.OpIndex[producer.Opcode]
	ci, cok := t.m.OpIndex[consumer.Opcode]
	if !pok || !cok {
		return 1
	}
	return t.m.FlowDistance(pi, ci)
}

func (t mdesTiming) Latency(opcode string) int {
	if idx, ok := t.m.OpIndex[opcode]; ok {
		return t.m.Operations[idx].Latency
	}
	return 1
}

// Loop is a candidate for software pipelining: a branch-free body plus its
// loop-carried dependences. Intra-iteration dependences are derived from
// the body's registers and memory references exactly as for list
// scheduling.
type Loop struct {
	Body *ir.Block
	// Carried holds the loop-carried (Omega >= 1) dependences.
	Carried []Dep
}

// Schedule is a modulo schedule: issue times within the flat schedule and
// the achieved initiation interval.
type Schedule struct {
	II    int
	Issue []int
	// Counters accumulates the attempts/options/checks of the search,
	// including work discarded by evictions.
	Counters stats.Counters
	// Evictions counts unscheduled operations (the capability reservation
	// tables retain and automata lose).
	Evictions int
	// TriedIIs records how many candidate IIs were attempted.
	TriedIIs int
}

// Scheduler runs iterative modulo scheduling against one compiled MDES.
//
// The compiled description is shared, immutable data (see
// lowlevel.MDES.Freeze). The modulo RU map is private to each Schedule
// call, so a Scheduler is single-goroutine but many Schedulers — each
// with its own borrowed resctx.Context — may pipeline loops against the
// same compiled MDES concurrently.
type Scheduler struct {
	mdes *lowlevel.MDES
	cx   *resctx.Context
	// Budget bounds total placements per candidate II as a multiple of the
	// operation count (Rau's budget_ratio); default 6.
	Budget int
	// MaxII bounds the search; default 4 * (MII + count).
	MaxII int
}

// New returns a modulo scheduler for the compiled description, backed by
// a standalone context.
func New(m *lowlevel.MDES) *Scheduler {
	return NewWithContext(m, resctx.New(m.NumResources))
}

// NewWithContext returns a modulo scheduler over the shared compiled
// description; the search's counters are also accumulated into the
// borrowed context, so pooled contexts aggregate service-wide totals.
func NewWithContext(m *lowlevel.MDES, cx *resctx.Context) *Scheduler {
	return &Scheduler{mdes: m, cx: cx, Budget: 6}
}

// NewWithKind returns a modulo scheduler for a session configured with the
// given checker backend, refusing backends that cannot unschedule:
// iterative modulo scheduling evicts and replaces placements, which needs
// Capabilities.CanRelease — "straightforward with reservation tables ...
// but unclear ... with finite-state automata" (§10). The modulo map itself
// is always the bit-packed check.Modulo; the kind only gates eligibility.
func NewWithKind(m *lowlevel.MDES, cx *resctx.Context, kind check.Kind) (*Scheduler, error) {
	if caps := check.Caps(kind); !caps.CanRelease {
		return nil, fmt.Errorf("modsched: the %s backend cannot release reservations; iterative modulo scheduling requires unscheduling (paper §10)", caps.Backend)
	}
	return NewWithContext(m, cx), nil
}

// deps builds the full dependence set: intra-iteration from the IR graph
// plus the loop's carried edges.
func (s *Scheduler) deps(l *Loop) ([]Dep, error) {
	g := ir.BuildGraphTiming(l.Body, mdesTiming{m: s.mdes})
	var deps []Dep
	for _, edges := range g.Succs {
		for _, e := range edges {
			deps = append(deps, Dep{From: e.From, To: e.To, MinDist: e.MinDist})
		}
	}
	n := len(l.Body.Ops)
	for _, d := range l.Carried {
		if d.Omega < 1 {
			return nil, fmt.Errorf("modsched: carried dependence %d->%d has omega %d < 1", d.From, d.To, d.Omega)
		}
		if d.From < 0 || d.From >= n || d.To < 0 || d.To >= n {
			return nil, fmt.Errorf("modsched: carried dependence %d->%d out of range", d.From, d.To)
		}
		deps = append(deps, d)
	}
	return deps, nil
}

// ResMII computes the resource-constrained lower bound on II: for each
// resource, the number of times the body's highest-priority options use it
// (every resource provides one slot per cycle).
func (s *Scheduler) ResMII(l *Loop) int {
	usage := map[int32]int{}
	for _, op := range l.Body.Ops {
		idx, ok := s.mdes.OpIndex[op.Opcode]
		if !ok {
			continue
		}
		con := s.mdes.ConstraintFor(idx, op.Cascaded)
		for _, tree := range con.Trees {
			// The first option is what an uncontended schedule would pick;
			// alternatives only relax the bound, so this is a valid
			// heuristic lower bound when it is the unique choice and an
			// approximation otherwise (as in Rau's formulation).
			best := tree.Options[0]
			if len(tree.Options) > 1 {
				// With alternatives, charge 1/len to each... integral
				// bound: charge the least-used resource only when unique.
				continue
			}
			for _, u := range best.ExpandedUsages() {
				usage[u.Res]++
			}
		}
	}
	mii := 1
	for _, n := range usage {
		if n > mii {
			mii = n
		}
	}
	return mii
}

// RecMII computes the recurrence-constrained lower bound: the smallest II
// for which no dependence cycle has positive weight under edge weights
// MinDist - II*Omega (checked with Bellman-Ford on the negated graph).
func RecMII(n int, deps []Dep, maxII int) int {
	for ii := 1; ii <= maxII; ii++ {
		if !hasPositiveCycle(n, deps, ii) {
			return ii
		}
	}
	return maxII
}

func hasPositiveCycle(n int, deps []Dep, ii int) bool {
	// Longest-path relaxation; a positive cycle keeps relaxing after n
	// rounds.
	dist := make([]int64, n)
	for round := 0; round < n; round++ {
		changed := false
		for _, d := range deps {
			w := int64(d.MinDist - ii*d.Omega)
			if dist[d.From]+w > dist[d.To] {
				dist[d.To] = dist[d.From] + w
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// One more round: any further relaxation proves a positive cycle.
	for _, d := range deps {
		if dist[d.From]+int64(d.MinDist-ii*d.Omega) > dist[d.To] {
			return true
		}
	}
	return false
}

// MII returns the initiation-interval lower bound max(ResMII, RecMII).
func (s *Scheduler) MII(l *Loop) (int, error) {
	deps, err := s.deps(l)
	if err != nil {
		return 0, err
	}
	res := s.ResMII(l)
	rec := RecMII(len(l.Body.Ops), deps, res+len(l.Body.Ops)*8+64)
	if rec > res {
		return rec, nil
	}
	return res, nil
}

// Schedule software-pipelines the loop, searching IIs upward from MII.
func (s *Scheduler) Schedule(l *Loop) (*Schedule, error) {
	if len(l.Body.Ops) == 0 {
		return &Schedule{II: 1}, nil
	}
	for _, op := range l.Body.Ops {
		if op.Branch {
			return nil, fmt.Errorf("modsched: loop body must be branch-free (op %d)", op.ID)
		}
		if _, ok := s.mdes.OpIndex[op.Opcode]; !ok {
			return nil, fmt.Errorf("modsched: opcode %q not in MDES %s", op.Opcode, s.mdes.MachineName)
		}
	}
	deps, err := s.deps(l)
	if err != nil {
		return nil, err
	}
	mii, err := s.MII(l)
	if err != nil {
		return nil, err
	}
	maxII := s.MaxII
	if maxII == 0 {
		maxII = 4 * (mii + len(l.Body.Ops))
	}
	result := &Schedule{}
	// One bit-packed modulo map serves the whole II search; Configure
	// clears it and grows rows as II increases.
	mm := check.NewModulo(s.mdes.NumResources, mii)
	for ii := mii; ii <= maxII; ii++ {
		result.TriedIIs++
		mm.Configure(ii)
		if s.tryII(mm, l, deps, ii, result) {
			result.II = ii
			s.cx.Counters.Add(result.Counters)
			if s.cx.Obs != nil {
				s.cx.Obs.Backtrack(obs.PhaseModulo, result.Counters.Backtracks)
			}
			return result, nil
		}
	}
	return nil, fmt.Errorf("modsched: no schedule found up to II=%d", maxII)
}

// attempt performs one instrumented modulo-map check: the paper's
// counters always (into c), plus per-class PhaseModulo metrics when the
// borrowed context carries an obs.Local. Each probe of a candidate slot
// is one scheduling attempt — the inflation the paper attributes to
// iterative modulo scheduling shows up directly in this phase's counters.
func (s *Scheduler) attempt(mm *check.Modulo, classIdx int, con *lowlevel.Constraint, issue int, c *stats.Counters) (check.Selection, bool) {
	local := s.cx.Obs
	if local == nil {
		return mm.Check(con, issue, c)
	}
	var t0 time.Time
	timed := local.SampleTime()
	if timed {
		t0 = time.Now()
	}
	beforeOpts := c.OptionsChecked
	beforeChecks := c.ResourceChecks
	se, ok := mm.Check(con, issue, c)
	ns := int64(-1)
	if timed {
		ns = time.Since(t0).Nanoseconds()
	}
	local.Attempt(obs.PhaseModulo, classIdx,
		c.OptionsChecked-beforeOpts, c.ResourceChecks-beforeChecks, ns, ok)
	return se, ok
}

// tryII is one iteration of Rau's algorithm at a fixed II.
func (s *Scheduler) tryII(mm *check.Modulo, l *Loop, deps []Dep, ii int, out *Schedule) bool {
	n := len(l.Body.Ops)
	budget := s.Budget * n

	// Height-based priority from the dependence set (acyclic part).
	height := heights(n, deps, ii)

	issue := make([]int, n)
	placed := make([]bool, n)
	sel := make([]check.Selection, n)
	neverScheduled := make([]bool, n)
	for i := range neverScheduled {
		neverScheduled[i] = true
	}

	preds := make([][]Dep, n)
	succs := make([][]Dep, n)
	for _, d := range deps {
		preds[d.To] = append(preds[d.To], d)
		succs[d.From] = append(succs[d.From], d)
	}

	// Worklist ordered by (height desc, index asc).
	inList := make([]bool, n)
	var list []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			list = append(list, i)
		}
	}
	pop := func() int {
		best := -1
		for _, i := range list {
			if best < 0 || height[i] > height[best] || (height[i] == height[best] && i < best) {
				best = i
			}
		}
		// Remove best.
		for k, i := range list {
			if i == best {
				list = append(list[:k], list[k+1:]...)
				break
			}
		}
		inList[best] = false
		return best
	}
	for i := 0; i < n; i++ {
		push(i)
	}

	lastTried := make([]int, n)
	for budget > 0 && len(list) > 0 {
		opIdx := pop()
		budget--

		// Earliest start from PLACED predecessors.
		estart := 0
		for _, d := range preds[opIdx] {
			if d.From == opIdx || !placed[d.From] {
				continue
			}
			if v := issue[d.From] + d.MinDist - d.Omega*ii; v > estart {
				estart = v
			}
		}

		op := l.Body.Ops[opIdx]
		mdIdx := s.mdes.OpIndex[op.Opcode]
		con := s.mdes.ConstraintFor(mdIdx, op.Cascaded)
		classIdx := s.mdes.ConstraintIndexFor(mdIdx, op.Cascaded)

		// Try II consecutive slots; each try is a scheduling attempt.
		chosen := -1
		var chosenSel check.Selection
		if s.cx.Obs == nil {
			// Batch fast path: one CheckWindow pass over the II-wide
			// window, accounting-equivalent to the serial loop below and
			// allocation-free on failed cycles.
			if se, at, ok := mm.CheckWindow(con, estart, estart+ii, &out.Counters); ok {
				chosen = at
				chosenSel = se
			}
		} else {
			for t := estart; t < estart+ii; t++ {
				se, ok := s.attempt(mm, classIdx, con, t, &out.Counters)
				if ok {
					chosen = t
					chosenSel = se
					break
				}
			}
		}
		if chosen < 0 {
			// Forced placement with eviction (the unscheduling step).
			chosen = estart
			if !neverScheduled[opIdx] && chosen <= lastTried[opIdx] {
				chosen = lastTried[opIdx] + 1
			}
			evicted := mm.EvictConflicts(con, chosen)
			for _, v := range evicted {
				if v != opIdx && placed[v] {
					placed[v] = false
					out.Evictions++
					out.Counters.Backtracks++
					push(v)
				}
			}
			se, ok := s.attempt(mm, classIdx, con, chosen, &out.Counters)
			if !ok {
				// The constraint conflicts with itself at this II (modulo
				// self-collision); this II is infeasible for this op.
				return false
			}
			chosenSel = se
		}
		mm.ReserveFor(chosenSel, int32(opIdx))
		issue[opIdx] = chosen
		sel[opIdx] = chosenSel
		placed[opIdx] = true
		neverScheduled[opIdx] = false
		lastTried[opIdx] = chosen

		// Unschedule placed ops whose dependences the new placement breaks.
		for _, d := range succs[opIdx] {
			if d.To == opIdx || !placed[d.To] {
				continue
			}
			if issue[d.To] < chosen+d.MinDist-d.Omega*ii {
				mm.ReleaseFor(sel[d.To], int32(d.To))
				placed[d.To] = false
				out.Evictions++
				out.Counters.Backtracks++
				push(d.To)
			}
		}
		for _, d := range preds[opIdx] {
			if d.From == opIdx || !placed[d.From] {
				continue
			}
			if chosen < issue[d.From]+d.MinDist-d.Omega*ii {
				mm.ReleaseFor(sel[d.From], int32(d.From))
				placed[d.From] = false
				out.Evictions++
				out.Counters.Backtracks++
				push(d.From)
			}
		}
	}
	if len(list) > 0 {
		return false
	}
	out.Issue = issue
	return true
}

// heights computes a priority from the acyclic subgraph (edges with
// positive slack direction), approximating Rau's height-based priority.
func heights(n int, deps []Dep, ii int) []int {
	h := make([]int, n)
	for round := 0; round < n; round++ {
		changed := false
		for _, d := range deps {
			if d.Omega > 0 {
				continue // carried edges do not feed the acyclic height
			}
			if v := h[d.To] + d.MinDist; v > h[d.From] {
				h[d.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return h
}
